/// \file failure_injection_test.cc
/// \brief Degenerate-input behaviour across the stack: empty tables,
/// all-NULL columns, unmatched foreign keys, constant labels, non-finite
/// losses. The invariant under test is uniform: graceful Status or a
/// well-defined value — never a crash, never silent garbage.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/feature_eval.h"
#include "core/generator.h"
#include "hpo/hyperband.h"
#include "hpo/smac.h"
#include "hpo/tpe.h"
#include "query/executor.h"
#include "stats/stats.h"

namespace featlib {
namespace {

Table EmptyLogs() {
  Table t;
  EXPECT_TRUE(t.AddColumn("cname", Column(DataType::kInt64)).ok());
  EXPECT_TRUE(t.AddColumn("price", Column(DataType::kDouble)).ok());
  EXPECT_TRUE(t.AddColumn("dept", Column(DataType::kString)).ok());
  return t;
}

Table SmallTraining(size_t n = 20) {
  Table t;
  Column id(DataType::kInt64), age(DataType::kDouble), label(DataType::kInt64);
  for (size_t i = 0; i < n; ++i) {
    id.AppendInt(static_cast<int64_t>(i));
    age.AppendDouble(20.0 + static_cast<double>(i));
    label.AppendInt(static_cast<int64_t>(i % 2));
  }
  EXPECT_TRUE(t.AddColumn("cname", std::move(id)).ok());
  EXPECT_TRUE(t.AddColumn("age", std::move(age)).ok());
  EXPECT_TRUE(t.AddColumn("label", std::move(label)).ok());
  return t;
}

AggQuery AvgPriceQuery() {
  AggQuery q;
  q.agg = AggFunction::kAvg;
  q.agg_attr = "price";
  q.group_keys = {"cname"};
  return q;
}

// --- Empty relevant table ----------------------------------------------------

TEST(FailureInjectionTest, EmptyRelevantTableYieldsAllNanFeature) {
  Table training = SmallTraining();
  Table logs = EmptyLogs();
  auto feature = ComputeFeatureColumn(AvgPriceQuery(), training, logs);
  ASSERT_TRUE(feature.ok()) << feature.status().ToString();
  ASSERT_EQ(feature.value().size(), training.num_rows());
  for (double v : feature.value()) EXPECT_TRUE(std::isnan(v));
}

TEST(FailureInjectionTest, EmptyRelevantTableExecutesToEmptyResult) {
  auto result = ExecuteAggQuery(AvgPriceQuery(), EmptyLogs());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().num_rows(), 0u);
}

TEST(FailureInjectionTest, ProxyScoreOnEmptyRelevantIsZero) {
  Table training = SmallTraining(40);
  auto evaluator =
      FeatureEvaluator::Create(training, "label", {"age"}, EmptyLogs(),
                               TaskKind::kBinaryClassification, EvaluatorOptions{});
  ASSERT_TRUE(evaluator.ok()) << evaluator.status().ToString();
  auto score =
      evaluator.value().ProxyScore(AvgPriceQuery(), ProxyKind::kMutualInformation);
  ASSERT_TRUE(score.ok()) << score.status().ToString();
  EXPECT_DOUBLE_EQ(score.value(), 0.0);
}

// --- All-NULL aggregation column ----------------------------------------------

TEST(FailureInjectionTest, AllNullAggColumnGivesNanAggregatesNotCrash) {
  Table logs;
  Column cname(DataType::kInt64), price(DataType::kDouble);
  for (int i = 0; i < 12; ++i) {
    cname.AppendInt(i % 4);
    price.AppendNull();
  }
  ASSERT_TRUE(logs.AddColumn("cname", std::move(cname)).ok());
  ASSERT_TRUE(logs.AddColumn("price", std::move(price)).ok());

  Table training = SmallTraining();
  auto feature = ComputeFeatureColumn(AvgPriceQuery(), training, logs);
  ASSERT_TRUE(feature.ok());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(std::isnan(feature.value()[i])) << i;
  }
}

TEST(FailureInjectionTest, CountOfAllNullColumnIsZero) {
  Table logs;
  Column cname(DataType::kInt64), price(DataType::kDouble);
  cname.AppendInt(0);
  price.AppendNull();
  ASSERT_TRUE(logs.AddColumn("cname", std::move(cname)).ok());
  ASSERT_TRUE(logs.AddColumn("price", std::move(price)).ok());
  AggQuery q = AvgPriceQuery();
  q.agg = AggFunction::kCount;
  auto result = ExecuteAggQuery(q, logs);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().num_rows(), 1u);
  auto col = result.value().GetColumn("feature");
  ASSERT_TRUE(col.ok());
  EXPECT_DOUBLE_EQ(col.value()->DoubleAt(0), 0.0);
}

// --- Foreign keys without matches ---------------------------------------------

TEST(FailureInjectionTest, UnmatchedEntitiesGetNanAndRowCountIsPreserved) {
  Table training = SmallTraining(10);
  Table logs;
  // Logs exist only for entities 0 and 1 (plus an orphan FK 999).
  ASSERT_TRUE(logs.AddColumn("cname", Column::FromInts(DataType::kInt64,
                                                       {0, 0, 1, 999}))
                  .ok());
  ASSERT_TRUE(logs.AddColumn("price", Column::FromDoubles({1, 2, 3, 4})).ok());
  auto augmented = AugmentTable(training, logs, AvgPriceQuery(), "f");
  ASSERT_TRUE(augmented.ok());
  EXPECT_EQ(augmented.value().num_rows(), training.num_rows());
  auto f = augmented.value().GetColumn("f");
  ASSERT_TRUE(f.ok());
  EXPECT_DOUBLE_EQ(f.value()->DoubleAt(0), 1.5);
  EXPECT_DOUBLE_EQ(f.value()->DoubleAt(1), 3.0);
  for (size_t r = 2; r < 10; ++r) EXPECT_TRUE(f.value()->IsNull(r)) << r;
}

// --- Constant / degenerate labels ----------------------------------------------

TEST(FailureInjectionTest, ConstantLabelGivesZeroMutualInformation) {
  std::vector<double> feature{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<double> label(8, 1.0);
  EXPECT_DOUBLE_EQ(MutualInformation(feature, label, true), 0.0);
  EXPECT_DOUBLE_EQ(SpearmanProxy(feature, label), 0.0);
}

TEST(FailureInjectionTest, ConstantFeatureGivesZeroScoresEverywhere) {
  std::vector<double> feature(32, 3.14);
  std::vector<double> label;
  for (int i = 0; i < 32; ++i) label.push_back(i % 2);
  EXPECT_DOUBLE_EQ(MutualInformation(feature, label, true), 0.0);
  EXPECT_DOUBLE_EQ(SpearmanProxy(feature, label), 0.0);
  EXPECT_DOUBLE_EQ(ChiSquareScore(feature, label), 0.0);
}

// --- Training table too small ---------------------------------------------------

TEST(FailureInjectionTest, TinyTrainingTableRejectedAtCreate) {
  Table training = SmallTraining(5);
  auto evaluator =
      FeatureEvaluator::Create(training, "label", {"age"}, EmptyLogs(),
                               TaskKind::kBinaryClassification, EvaluatorOptions{});
  ASSERT_FALSE(evaluator.ok());
  EXPECT_NE(evaluator.status().ToString().find("rows"), std::string::npos);
}

// --- Fidelity argument validation ------------------------------------------------

TEST(FailureInjectionTest, OutOfRangeFidelityRejected) {
  Table training = SmallTraining(40);
  Table logs;
  ASSERT_TRUE(
      logs.AddColumn("cname", Column::FromInts(DataType::kInt64, {0, 1})).ok());
  ASSERT_TRUE(logs.AddColumn("price", Column::FromDoubles({1, 2})).ok());
  auto evaluator =
      FeatureEvaluator::Create(training, "label", {"age"}, logs,
                               TaskKind::kBinaryClassification, EvaluatorOptions{});
  ASSERT_TRUE(evaluator.ok());
  EXPECT_FALSE(evaluator.value().ModelScoreAtFidelity({AvgPriceQuery()}, 0.0).ok());
  EXPECT_FALSE(evaluator.value().ModelScoreAtFidelity({AvgPriceQuery()}, 1.5).ok());
  EXPECT_FALSE(evaluator.value().ModelScoreAtFidelity({AvgPriceQuery()}, -0.2).ok());
}

// --- Non-finite losses fed to the optimizers -------------------------------------

SearchSpace TinySpace() {
  SearchSpace space;
  space.Add(ParamDomain::Numeric("x", 0.0, 1.0));
  space.Add(ParamDomain::Categorical("c", 3));
  return space;
}

TEST(FailureInjectionTest, TpeSurvivesNanAndInfLosses) {
  Tpe tpe(TinySpace(), TpeOptions{.n_startup = 2, .seed = 3});
  for (int i = 0; i < 30; ++i) {
    ParamVector v = tpe.Suggest();
    double loss;
    if (i % 3 == 0) {
      loss = std::nan("");
    } else if (i % 3 == 1) {
      loss = std::numeric_limits<double>::infinity();
    } else {
      loss = v[0];
    }
    tpe.Observe(v, loss);
  }
  // All observations recorded with finite losses; best() is the finite one.
  ASSERT_EQ(tpe.history().size(), 30u);
  for (const Trial& t : tpe.history()) EXPECT_TRUE(std::isfinite(t.loss));
  ASSERT_NE(tpe.best(), nullptr);
  EXPECT_LT(tpe.best()->loss, 1.5);
}

TEST(FailureInjectionTest, SmacSurvivesNanLosses) {
  Smac smac(TinySpace(), SmacOptions{});
  for (int i = 0; i < 20; ++i) {
    ParamVector v = smac.Suggest();
    smac.Observe(v, i % 2 == 0 ? std::nan("") : v[0]);
  }
  for (const Trial& t : smac.history()) EXPECT_TRUE(std::isfinite(t.loss));
}

TEST(FailureInjectionTest, HyperbandDemotesNanLossConfigs) {
  HyperbandOptions options;
  options.max_total_cost = 12.0;
  options.seed = 9;
  Hyperband hb(TinySpace(), options);
  // Configs in the right half of the space "fail" (NaN); the winner must
  // come from the left half.
  auto result = hb.Run([](const ParamVector& v, double) -> Result<double> {
    if (v[0] > 0.5) return std::nan("");
    return v[0];
  });
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.value().has_best);
  EXPECT_LE(result.value().best_params[0], 0.5);
  for (const FidelityTrial& t : result.value().trials) {
    EXPECT_TRUE(std::isfinite(t.loss));
  }
}

// --- Queries against missing schema ----------------------------------------------

TEST(FailureInjectionTest, QueryAgainstMissingColumnsFailsCleanly) {
  Table training = SmallTraining();
  Table logs;
  ASSERT_TRUE(
      logs.AddColumn("cname", Column::FromInts(DataType::kInt64, {0})).ok());
  ASSERT_TRUE(logs.AddColumn("price", Column::FromDoubles({1.0})).ok());

  AggQuery missing_attr = AvgPriceQuery();
  missing_attr.agg_attr = "nope";
  EXPECT_FALSE(ComputeFeatureColumn(missing_attr, training, logs).ok());

  AggQuery missing_key = AvgPriceQuery();
  missing_key.group_keys = {"nope"};
  EXPECT_FALSE(ComputeFeatureColumn(missing_key, training, logs).ok());

  AggQuery missing_pred = AvgPriceQuery();
  missing_pred.predicates = {Predicate::Range("nope", 0.0, 1.0)};
  EXPECT_FALSE(ComputeFeatureColumn(missing_pred, training, logs).ok());

  AggQuery no_keys = AvgPriceQuery();
  no_keys.group_keys = {};
  EXPECT_FALSE(ComputeFeatureColumn(no_keys, training, logs).ok());
}

// --- Single-row groups ------------------------------------------------------------

TEST(FailureInjectionTest, SingleRowGroupsDefineOrderStatsButNotSampleVariance) {
  Table logs;
  ASSERT_TRUE(
      logs.AddColumn("cname", Column::FromInts(DataType::kInt64, {0, 1})).ok());
  ASSERT_TRUE(logs.AddColumn("price", Column::FromDoubles({5.0, 7.0})).ok());
  for (AggFunction fn : {AggFunction::kMedian, AggFunction::kMad,
                         AggFunction::kMode, AggFunction::kVar}) {
    AggQuery q = AvgPriceQuery();
    q.agg = fn;
    auto result = ExecuteAggQuery(q, logs);
    ASSERT_TRUE(result.ok()) << AggFunctionName(fn);
    auto col = result.value().GetColumn("feature");
    ASSERT_TRUE(col.ok());
    EXPECT_FALSE(col.value()->IsNull(0)) << AggFunctionName(fn);
  }
  AggQuery var_sample = AvgPriceQuery();
  var_sample.agg = AggFunction::kVarSample;
  auto result = ExecuteAggQuery(var_sample, logs);
  ASSERT_TRUE(result.ok());
  auto col = result.value().GetColumn("feature");
  ASSERT_TRUE(col.ok());
  // Sample variance of one observation is undefined -> NULL/NaN.
  EXPECT_TRUE(col.value()->IsNull(0) || std::isnan(col.value()->DoubleAt(0)));
}

}  // namespace
}  // namespace featlib

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/codec.h"

namespace featlib {
namespace {

Table MakeLogs() {
  Table t;
  EXPECT_TRUE(t.AddColumn("uid", Column::FromInts(DataType::kInt64, {1, 1, 2})).ok());
  EXPECT_TRUE(t.AddColumn("mid", Column::FromInts(DataType::kInt64, {7, 8, 7})).ok());
  EXPECT_TRUE(t.AddColumn("price", Column::FromDoubles({10, 20, 30})).ok());
  EXPECT_TRUE(t.AddColumn("qty", Column::FromInts(DataType::kInt64, {1, 2, 3})).ok());
  EXPECT_TRUE(
      t.AddColumn("dept", Column::FromStrings({"a", "b", "a"})).ok());
  EXPECT_TRUE(t.AddColumn("ts", Column::FromInts(DataType::kDatetime,
                                                 {100, 200, 300}))
                  .ok());
  Column flag(DataType::kBool);
  flag.AppendInt(0);
  flag.AppendInt(1);
  flag.AppendInt(1);
  EXPECT_TRUE(t.AddColumn("flag", std::move(flag)).ok());
  return t;
}

QueryTemplate MakeTemplate() {
  QueryTemplate t;
  t.agg_functions = {AggFunction::kSum, AggFunction::kAvg, AggFunction::kMax};
  t.agg_attrs = {"price", "qty"};
  t.where_attrs = {"dept", "ts", "flag"};
  t.fk_attrs = {"uid", "mid"};
  return t;
}

TEST(CodecTest, SpaceLayout) {
  Table logs = MakeLogs();
  auto codec = QueryVectorCodec::Create(MakeTemplate(), logs);
  ASSERT_TRUE(codec.ok());
  const SearchSpace& space = codec.value().space();
  // agg_fn, agg_attr, dept(1), ts(2), flag(1), fk(2) = 8 dims.
  EXPECT_EQ(space.NumDims(), 8u);
  EXPECT_EQ(space.dim(0).n_choices, 3);  // three agg functions
  EXPECT_EQ(space.dim(1).n_choices, 2);  // two agg attrs
  EXPECT_EQ(space.dim(2).n_choices, 3);  // {a, b, None}
  EXPECT_EQ(space.dim(3).kind, ParamDomain::Kind::kOptionalNumeric);
  EXPECT_TRUE(space.dim(3).integer);  // datetime snaps to integers
  EXPECT_EQ(space.dim(5).n_choices, 3);  // bool {0, 1, None}
  EXPECT_EQ(space.dim(6).n_choices, 2);  // fk bits
}

TEST(CodecTest, DecodeFullVector) {
  Table logs = MakeLogs();
  auto codec = QueryVectorCodec::Create(MakeTemplate(), logs);
  ASSERT_TRUE(codec.ok());
  // AVG(qty) WHERE dept='b' AND 150<=ts<=250 AND flag=1 GROUP BY uid,mid.
  ParamVector v = {1, 1, 1, 150, 250, 1, 1, 1};
  auto q = codec.value().Decode(v);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().agg, AggFunction::kAvg);
  EXPECT_EQ(q.value().agg_attr, "qty");
  ASSERT_EQ(q.value().predicates.size(), 3u);
  EXPECT_EQ(q.value().predicates[0].equals_value, Value::Str("b"));
  EXPECT_DOUBLE_EQ(q.value().predicates[1].lo, 150.0);
  EXPECT_DOUBLE_EQ(q.value().predicates[1].hi, 250.0);
  EXPECT_EQ(q.value().predicates[2].equals_value, Value::Int(1));
  EXPECT_EQ(q.value().group_keys, (std::vector<std::string>{"uid", "mid"}));
}

TEST(CodecTest, NoneSlotsDropPredicates) {
  Table logs = MakeLogs();
  auto codec = QueryVectorCodec::Create(MakeTemplate(), logs);
  ASSERT_TRUE(codec.ok());
  // dept=None (index 2), ts both None, flag None (index 2).
  ParamVector v = {0, 0, 2, NoneValue(), NoneValue(), 2, 0, 1};
  auto q = codec.value().Decode(v);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q.value().predicates.empty());
  EXPECT_EQ(q.value().group_keys, (std::vector<std::string>{"mid"}));
}

TEST(CodecTest, InvertedBoundsSwapped) {
  Table logs = MakeLogs();
  auto codec = QueryVectorCodec::Create(MakeTemplate(), logs);
  ASSERT_TRUE(codec.ok());
  ParamVector v = {0, 0, 2, 250, 150, 2, 1, 0};
  auto q = codec.value().Decode(v);
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q.value().predicates.size(), 1u);
  EXPECT_LE(q.value().predicates[0].lo, q.value().predicates[0].hi);
}

TEST(CodecTest, EmptyFkSelectionFallsBackToFirstKey) {
  Table logs = MakeLogs();
  auto codec = QueryVectorCodec::Create(MakeTemplate(), logs);
  ASSERT_TRUE(codec.ok());
  ParamVector v = {0, 0, 2, NoneValue(), NoneValue(), 2, 0, 0};
  auto q = codec.value().Decode(v);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().group_keys, (std::vector<std::string>{"uid"}));
}

TEST(CodecTest, OneSidedRangeDecodes) {
  Table logs = MakeLogs();
  auto codec = QueryVectorCodec::Create(MakeTemplate(), logs);
  ASSERT_TRUE(codec.ok());
  ParamVector v = {0, 0, 2, 150, NoneValue(), 2, 1, 0};
  auto q = codec.value().Decode(v);
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q.value().predicates.size(), 1u);
  EXPECT_TRUE(q.value().predicates[0].has_lo);
  EXPECT_FALSE(q.value().predicates[0].has_hi);
}

TEST(CodecTest, EncodeDecodeRoundTrip) {
  Table logs = MakeLogs();
  auto codec = QueryVectorCodec::Create(MakeTemplate(), logs);
  ASSERT_TRUE(codec.ok());
  AggQuery q;
  q.agg = AggFunction::kMax;
  q.agg_attr = "price";
  q.group_keys = {"uid"};
  q.predicates = {Predicate::Equals("dept", Value::Str("a")),
                  Predicate::Range("ts", 120.0, std::nullopt)};
  auto v = codec.value().Encode(q);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  auto back = codec.value().Decode(v.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().CacheKey(), q.CacheKey());
}

TEST(CodecTest, EncodeRejectsOutOfTemplate) {
  Table logs = MakeLogs();
  auto codec = QueryVectorCodec::Create(MakeTemplate(), logs);
  ASSERT_TRUE(codec.ok());
  AggQuery q;
  q.agg = AggFunction::kEntropy;  // not in F
  q.agg_attr = "price";
  q.group_keys = {"uid"};
  EXPECT_FALSE(codec.value().Encode(q).ok());

  q.agg = AggFunction::kSum;
  q.agg_attr = "dept";  // not in A
  EXPECT_FALSE(codec.value().Encode(q).ok());

  q.agg_attr = "price";
  q.predicates = {Predicate::Equals("qty", Value::Int(1))};  // qty not in P
  EXPECT_FALSE(codec.value().Encode(q).ok());

  q.predicates = {Predicate::Equals("dept", Value::Str("zzz"))};  // bad value
  EXPECT_FALSE(codec.value().Encode(q).ok());
}

TEST(CodecTest, CategoricalAggAttrRepairsToCount) {
  Table logs = MakeLogs();
  QueryTemplate t = MakeTemplate();
  t.agg_attrs = {"price", "dept"};  // dept is categorical
  auto codec = QueryVectorCodec::Create(t, logs);
  ASSERT_TRUE(codec.ok());
  ParamVector v = {0 /*SUM*/, 1 /*dept*/, 2, NoneValue(), NoneValue(), 2, 1, 0};
  ASSERT_EQ(codec.value().space().NumDims(), 8u);
  auto q = codec.value().Decode(v);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().agg, AggFunction::kCount);  // SUM(dept) repaired
}

TEST(CodecTest, CreateErrors) {
  Table logs = MakeLogs();
  QueryTemplate t = MakeTemplate();
  t.agg_attrs = {"missing"};
  EXPECT_FALSE(QueryVectorCodec::Create(t, logs).ok());
  t = MakeTemplate();
  t.fk_attrs = {};
  EXPECT_FALSE(QueryVectorCodec::Create(t, logs).ok());
}

class CodecPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(CodecPropertyTest, RandomVectorsAlwaysDecodeToValidQueries) {
  Table logs = MakeLogs();
  auto codec = QueryVectorCodec::Create(MakeTemplate(), logs);
  ASSERT_TRUE(codec.ok());
  Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    const ParamVector v = codec.value().space().Sample(&rng);
    auto q = codec.value().Decode(v);
    ASSERT_TRUE(q.ok());
    EXPECT_TRUE(q.value().Validate(logs).ok())
        << q.value().ToSql("R", logs);
    EXPECT_FALSE(q.value().group_keys.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecPropertyTest,
                         testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace featlib

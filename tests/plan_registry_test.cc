/// \file plan_registry_test.cc
/// \brief Pins the multi-tenant plan registry: lazy single-load per
/// residency, LRU eviction under the warm byte cap, shared_ptr pinning
/// (an evicted plan's store survives for in-flight holders), non-sticky
/// load failures, and byte-identical serving under concurrent
/// load/evict/transform churn (a scripts/ci.sh TSan target).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/plan_io.h"
#include "serve/plan_registry.h"
#include "serve_test_util.h"
#include "table/csv.h"

namespace featlib {
namespace serve {
namespace {

using serve_test::ExpectTablesBitIdentical;
using serve_test::MakeBatch;
using serve_test::MakeTempDir;
using serve_test::WritePlanPair;

// One plan's warm byte estimate for the shared fixture (all plans in these
// tests use the same relevant/queries, so the estimate is uniform).
size_t FixtureWarmBytes(const std::string& dir) {
  PlanRegistry probe(PlanRegistryOptions{/*warm_cap_bytes=*/0});
  size_t found = 0;
  EXPECT_TRUE(probe.DiscoverPlans(dir, &found).ok());
  EXPECT_GE(found, 1u);
  auto handle = probe.Acquire(probe.List().front().name);
  EXPECT_TRUE(handle.ok()) << handle.status().ToString();
  return probe.warm_bytes();
}

TEST(PlanRegistryTest, LazyLoadListAndHit) {
  const std::string dir = MakeTempDir("feataug_reg_");
  WritePlanPair(dir, "alpha");
  WritePlanPair(dir, "beta");

  PlanRegistry registry;
  size_t found = 0;
  ASSERT_TRUE(registry.DiscoverPlans(dir, &found).ok());
  ASSERT_EQ(found, 2u);

  // Registered but cold: nothing loaded yet.
  EXPECT_EQ(registry.num_loads(), 0u);
  EXPECT_EQ(registry.warm_bytes(), 0u);
  auto listed = registry.List();
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0].name, "alpha");
  EXPECT_EQ(listed[1].name, "beta");
  EXPECT_FALSE(listed[0].loaded);

  auto first = registry.Acquire("alpha");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(registry.num_loads(), 1u);
  EXPECT_TRUE(registry.IsResident("alpha"));
  EXPECT_FALSE(registry.IsResident("beta"));
  EXPECT_GT(registry.warm_bytes(), 0u);

  // Second acquire is a hit: same handle, no new load.
  auto second = registry.Acquire("alpha");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().get(), second.value().get());
  EXPECT_EQ(registry.num_loads(), 1u);

  EXPECT_FALSE(registry.Acquire("missing").ok());
  EXPECT_FALSE(registry.AddPlan("alpha", "x.sql", "x.csv").ok());
}

TEST(PlanRegistryTest, EvictsLeastRecentlyAcquiredUnderByteCap) {
  const std::string dir = MakeTempDir("feataug_reg_");
  WritePlanPair(dir, "a");
  WritePlanPair(dir, "b");
  WritePlanPair(dir, "c");
  const size_t w = FixtureWarmBytes(dir);
  ASSERT_GT(w, 0u);

  // Room for two residents; the third load evicts the least recently used.
  PlanRegistry registry(PlanRegistryOptions{/*warm_cap_bytes=*/2 * w + w / 2});
  ASSERT_TRUE(registry.DiscoverPlans(dir).ok());

  ASSERT_TRUE(registry.Acquire("a").ok());
  ASSERT_TRUE(registry.Acquire("b").ok());
  EXPECT_EQ(registry.num_evictions(), 0u);

  // Touch "a" so "b" becomes LRU, then load "c": "b" must be the victim.
  ASSERT_TRUE(registry.Acquire("a").ok());
  ASSERT_TRUE(registry.Acquire("c").ok());
  EXPECT_EQ(registry.num_evictions(), 1u);
  EXPECT_TRUE(registry.IsResident("a"));
  EXPECT_FALSE(registry.IsResident("b"));
  EXPECT_TRUE(registry.IsResident("c"));
  EXPECT_LE(registry.warm_bytes(), 2 * w + w / 2);

  // Reloading an evicted plan works and counts a fresh load.
  const size_t loads_before = registry.num_loads();
  ASSERT_TRUE(registry.Acquire("b").ok());
  EXPECT_EQ(registry.num_loads(), loads_before + 1);
}

TEST(PlanRegistryTest, PinnedHandleSurvivesEviction) {
  const std::string dir = MakeTempDir("feataug_reg_");
  const Table relevant = WritePlanPair(dir, "a");
  WritePlanPair(dir, "b");
  const size_t w = FixtureWarmBytes(dir);

  // Cap fits one resident: loading "b" evicts "a".
  PlanRegistry registry(PlanRegistryOptions{/*warm_cap_bytes=*/w + w / 2});
  ASSERT_TRUE(registry.DiscoverPlans(dir).ok());

  auto pinned = registry.Acquire("a");
  ASSERT_TRUE(pinned.ok());
  const Table batch = MakeBatch(30, 13);
  auto before = pinned.value()->Transform(batch);
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  ASSERT_TRUE(registry.Acquire("b").ok());
  EXPECT_FALSE(registry.IsResident("a"));
  EXPECT_GE(registry.num_evictions(), 1u);

  // The pin keeps the evicted store alive and byte-identical.
  auto after = pinned.value()->Transform(batch);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ExpectTablesBitIdentical(after.value(), before.value(),
                           "evicted-but-pinned transform");
}

TEST(PlanRegistryTest, FailedLoadIsNotSticky) {
  const std::string dir = MakeTempDir("feataug_reg_");
  const Table relevant = WritePlanPair(dir, "real");

  PlanRegistry registry;
  ASSERT_TRUE(registry
                  .AddPlan("late", dir + "/late.sql",
                           dir + "/real.relevant.csv")
                  .ok());
  // The plan file does not exist yet: the load fails, but is not sticky.
  auto missing = registry.Acquire("late");
  EXPECT_FALSE(missing.ok());
  EXPECT_FALSE(registry.IsResident("late"));

  // Ship the artifact, retry: the same entry now loads.
  ASSERT_TRUE(WriteAugmentationPlan(serve_test::MakePlan(), "relevant",
                                    relevant, dir + "/late.sql")
                  .ok());
  auto retried = registry.Acquire("late");
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_TRUE(registry.IsResident("late"));
}

TEST(PlanRegistryTest, ConcurrentFirstAcquiresLoadOnce) {
  const std::string dir = MakeTempDir("feataug_reg_");
  WritePlanPair(dir, "shared");

  PlanRegistry registry;
  ASSERT_TRUE(registry.DiscoverPlans(dir).ok());

  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const FittedAugmenter>> handles(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto handle = registry.Acquire("shared");
      if (handle.ok()) handles[t] = std::move(handle).ValueOrDie();
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Exactly one compile; every thread got the same warm handle.
  EXPECT_EQ(registry.num_loads(), 1u);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_NE(handles[t], nullptr) << "thread " << t;
    EXPECT_EQ(handles[t].get(), handles[0].get());
  }
}

// The TSan target: concurrent acquire/transform across plans with a cap
// small enough to force continuous eviction/reload churn. Every result
// must stay byte-identical to the per-plan reference.
TEST(PlanRegistryTest, ConcurrentLoadEvictTransformStaysByteIdentical) {
  const std::string dir = MakeTempDir("feataug_reg_");
  const std::vector<std::string> names = {"p0", "p1", "p2"};
  Table relevant;
  for (const std::string& name : names) relevant = WritePlanPair(dir, name);
  const size_t w = FixtureWarmBytes(dir);

  // Fits one resident: almost every cross-plan acquire evicts.
  PlanRegistry registry(PlanRegistryOptions{/*warm_cap_bytes=*/w + w / 2});
  ASSERT_TRUE(registry.DiscoverPlans(dir).ok());

  const Table batch = MakeBatch(25, 7);
  // All plans share the same fixture, so one reference serves them all.
  auto reference_handle =
      LoadFittedAugmenter(dir + "/p0.sql", relevant);
  ASSERT_TRUE(reference_handle.ok());
  auto reference = reference_handle.value()->Transform(batch);
  ASSERT_TRUE(reference.ok());
  const std::string reference_bytes = EncodeTable(reference.value());

  constexpr int kThreads = 4;
  constexpr int kIterations = 6;
  std::vector<int> successes(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int it = 0; it < kIterations; ++it) {
        const std::string& name = names[(t + it) % names.size()];
        auto handle = registry.Acquire(name);
        ASSERT_TRUE(handle.ok()) << handle.status().ToString();
        auto out = handle.value()->Transform(batch);
        ASSERT_TRUE(out.ok()) << out.status().ToString();
        ASSERT_EQ(EncodeTable(out.value()), reference_bytes)
            << "thread " << t << " iteration " << it << " plan " << name;
        ++successes[t];
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(successes[t], kIterations);
  EXPECT_GE(registry.num_evictions(), 1u);
}

}  // namespace
}  // namespace serve
}  // namespace featlib

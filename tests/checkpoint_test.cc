/// \file checkpoint_test.cc
/// \brief Durable fit: checkpoint file format (deterministic bytes,
/// bit-exact doubles, corruption -> kDataLoss), the CheckpointWriter's
/// rate-limit/dirty-skip policy, and the headline resume contract — a fit
/// killed at an injected crash point and resumed emits a plan byte-identical
/// to an uninterrupted run.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/file_io.h"
#include "core/checkpoint.h"
#include "core/feataug.h"
#include "core/plan_io.h"
#include "core/search_session.h"
#include "data/synthetic.h"

namespace featlib {
namespace {

std::string CkptPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

SearchSession::Snapshot RichSnapshot() {
  SearchSession::Snapshot s;
  s.proxy = {
      {"mi|plain_key", 0.25},
      {"mi|key with spaces", -1.5},
      {"mi|key\nwith\nnewlines", std::numeric_limits<double>::quiet_NaN()},
      {"mi|key\\with\\backslashes", std::numeric_limits<double>::infinity()},
  };
  s.model = {
      {"model_key_a", {0.81, 0.19}},
      {"model key b", {std::nan("1"), std::numeric_limits<double>::infinity()}},
  };
  s.fidelity = {
      {"3fb999999999999a|sub key", 0.625},
  };
  s.failures = {
      {static_cast<int>(StatusCode::kInvalidArgument),
       "bad predicate: level > 99", "failed_key_z"},
      {static_cast<int>(StatusCode::kInternal), "injected fault at x #1",
       "failed key with spaces"},
  };
  s.digests = {
      {"gen_s1042", 0xdeadbeefu},
      {"qti_s42", 0x00000001u},
  };
  return s;
}

void ExpectSnapshotsEqual(const SearchSession::Snapshot& a,
                          const SearchSession::Snapshot& b) {
  // Compare through serialized bytes: bit-exact doubles (incl. NaN) and
  // every field participate, with no NaN != NaN pitfalls.
  EXPECT_EQ(SerializeCheckpoint(a, 1), SerializeCheckpoint(b, 1));
}

TEST(CheckpointFormatTest, EmptySnapshotRoundtrips) {
  const SearchSession::Snapshot empty;
  const std::string text = SerializeCheckpoint(empty, 0x12345678u);
  uint32_t signature = 0;
  auto parsed = ParseCheckpoint(text, &signature);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(signature, 0x12345678u);
  ExpectSnapshotsEqual(parsed.value(), empty);
}

TEST(CheckpointFormatTest, RichSnapshotRoundtripsBitExactly) {
  const SearchSession::Snapshot snapshot = RichSnapshot();
  const std::string text = SerializeCheckpoint(snapshot, 0xabcdef01u);
  uint32_t signature = 0;
  auto parsed = ParseCheckpoint(text, &signature);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(signature, 0xabcdef01u);
  ExpectSnapshotsEqual(parsed.value(), snapshot);
  // Failure order (first-failure order) survives the sorted file format.
  ASSERT_EQ(parsed.value().failures.size(), 2u);
  EXPECT_EQ(parsed.value().failures[0].key, "failed_key_z");
  EXPECT_EQ(parsed.value().failures[1].key, "failed key with spaces");
}

TEST(CheckpointFormatTest, SerializationIsOrderIndependent) {
  SearchSession::Snapshot forward = RichSnapshot();
  SearchSession::Snapshot reversed = RichSnapshot();
  std::reverse(reversed.proxy.begin(), reversed.proxy.end());
  std::reverse(reversed.model.begin(), reversed.model.end());
  std::reverse(reversed.digests.begin(), reversed.digests.end());
  // Same state in different container order -> identical bytes (failures
  // keep their order: it is semantic).
  EXPECT_EQ(SerializeCheckpoint(forward, 7), SerializeCheckpoint(reversed, 7));
}

TEST(CheckpointFormatTest, BitFlipAnywhereIsDataLoss) {
  const std::string text = SerializeCheckpoint(RichSnapshot(), 99);
  for (size_t i = 0; i < text.size(); i += 3) {
    std::string corrupted = text;
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0x02);
    auto parsed = ParseCheckpoint(corrupted, nullptr);
    ASSERT_FALSE(parsed.ok()) << "flip at byte " << i << " loaded";
    EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss)
        << "flip at byte " << i << ": " << parsed.status().ToString();
  }
}

TEST(CheckpointFormatTest, TruncationAnywhereIsDataLoss) {
  const std::string text = SerializeCheckpoint(RichSnapshot(), 99);
  for (size_t cut = 0; cut + 1 < text.size(); cut += 7) {
    auto parsed = ParseCheckpoint(text.substr(0, cut), nullptr);
    ASSERT_FALSE(parsed.ok()) << "cut at byte " << cut << " loaded";
    EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss)
        << "cut at byte " << cut;
  }
}

TEST(CheckpointFormatTest, SaveLoadRoundtripsThroughDisk) {
  const std::string path = CkptPath("roundtrip.ckpt");
  const SearchSession::Snapshot snapshot = RichSnapshot();
  ASSERT_TRUE(SaveCheckpoint(path, snapshot, 0x5eedu).ok());
  auto loaded = LoadCheckpoint(path, 0x5eedu);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSnapshotsEqual(loaded.value(), snapshot);
  std::remove(path.c_str());
}

TEST(CheckpointFormatTest, SignatureMismatchIsDataLoss) {
  const std::string path = CkptPath("foreign.ckpt");
  ASSERT_TRUE(SaveCheckpoint(path, RichSnapshot(), 0x5eedu).ok());
  auto loaded = LoadCheckpoint(path, 0xfeedu);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(CheckpointFormatTest, MissingFileIsNotFound) {
  auto loaded = LoadCheckpoint(CkptPath("never_saved.ckpt"), 1);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

// ---- CheckpointWriter policy --------------------------------------------

TEST(CheckpointWriterTest, SkipsCleanRoundsAndHonorsRateLimit) {
  const std::string path = CkptPath("writer_policy.ckpt");
  SearchSession session(nullptr);
  CheckpointWriter writer(path, /*signature=*/1, /*every_rounds=*/2);
  session.set_checkpoint(&writer);

  // Round 1: not due (1 % 2 != 0) -> nothing written.
  ASSERT_TRUE(writer.MaybeSnapshot(&session, false).ok());
  EXPECT_EQ(writer.snapshots_written(), 0u);
  // Round 2: due and dirty (initial state counts as unseen) -> written.
  ASSERT_TRUE(writer.MaybeSnapshot(&session, false).ok());
  EXPECT_EQ(writer.snapshots_written(), 1u);
  // Round 3 (not due) and round 4 (due but clean): both skipped.
  ASSERT_TRUE(writer.MaybeSnapshot(&session, false).ok());
  ASSERT_TRUE(writer.MaybeSnapshot(&session, false).ok());
  EXPECT_EQ(writer.snapshots_written(), 1u);
  // Dirty the session; a forced snapshot writes regardless of the rate.
  ASSERT_TRUE(session.RecordTrajectoryDigest("unit", 5).ok());
  ASSERT_TRUE(writer.MaybeSnapshot(&session, true).ok());
  EXPECT_EQ(writer.snapshots_written(), 2u);
  EXPECT_EQ(writer.rounds_seen(), 5u);
  std::remove(path.c_str());
}

TEST(CheckpointWriterTest, RestoredDigestDivergenceIsDataLoss) {
  SearchSession::Snapshot snapshot;
  snapshot.digests = {{"gen_s7", 0x11111111u}};
  SearchSession session(nullptr);
  session.RestoreSnapshot(snapshot);
  // Replay producing the recorded digest is fine...
  EXPECT_TRUE(session.RecordTrajectoryDigest("gen_s7", 0x11111111u).ok());
  // ...a different trajectory under the same label is not.
  Status st = session.RecordTrajectoryDigest("gen_s7", 0x22222222u);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
}

// ---- End-to-end durable fit ---------------------------------------------

SyntheticOptions SmallData() {
  SyntheticOptions options;
  options.n_train = 220;
  options.avg_logs_per_entity = 8;
  options.seed = 21;
  return options;
}

FeatAugOptions FastOptions() {
  FeatAugOptions options;
  options.n_templates = 2;
  options.queries_per_template = 3;
  options.generator.warmup_iterations = 12;
  options.generator.warmup_top_k = 4;
  options.generator.generation_iterations = 6;
  options.qti.beam_width = 2;
  options.qti.max_depth = 2;
  options.qti.node_iterations = 6;
  options.evaluator.model = ModelKind::kLogisticRegression;
  options.evaluator.metric = MetricKind::kAuc;
  options.seed = 5;
  return options;
}

std::string PlanBytes(const AugmentationPlan& plan, const Table& relevant) {
  return SerializeAugmentationPlan(plan, "R", relevant);
}

TEST(DurableFitTest, CheckpointedFitMatchesUncheckpointed) {
  DatasetBundle bundle = MakeTmall(SmallData());

  FeatAug plain(bundle.ToProblem(), FastOptions());
  auto baseline = plain.Fit();
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  FeatAugOptions options = FastOptions();
  options.checkpoint.dir = ::testing::TempDir();
  options.checkpoint.tag = "match";
  FeatAug durable(bundle.ToProblem(), options);
  auto checkpointed = durable.Fit();
  ASSERT_TRUE(checkpointed.ok()) << checkpointed.status().ToString();

  // Checkpointing must not perturb the search: identical plan bytes.
  EXPECT_EQ(PlanBytes(baseline.value(), bundle.relevant),
            PlanBytes(checkpointed.value(), bundle.relevant));
  EXPECT_GT(checkpointed.value().checkpoints_written, 0u);
  EXPECT_FALSE(checkpointed.value().resumed_from_checkpoint);
  std::remove((::testing::TempDir() + "/fit_match.ckpt").c_str());
}

TEST(DurableFitTest, ResumeAfterCompletionIsPureCacheReplay) {
  DatasetBundle bundle = MakeTmall(SmallData());
  FeatAugOptions options = FastOptions();
  options.checkpoint.dir = ::testing::TempDir();
  options.checkpoint.tag = "replay";

  FeatAug first(bundle.ToProblem(), options);
  auto full = first.Fit();
  ASSERT_TRUE(full.ok()) << full.status().ToString();

  options.checkpoint.resume = true;
  FeatAug second(bundle.ToProblem(), options);
  auto resumed = second.Fit();
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();

  EXPECT_TRUE(resumed.value().resumed_from_checkpoint);
  EXPECT_EQ(PlanBytes(full.value(), bundle.relevant),
            PlanBytes(resumed.value(), bundle.relevant));
  // Every evaluation of the replay is a restored-cache hit: the resumed run
  // pays zero model trainings and zero proxy computations.
  EXPECT_EQ(resumed.value().model_evals, 0u);
  EXPECT_EQ(resumed.value().proxy_evals, 0u);
  std::remove((::testing::TempDir() + "/fit_replay.ckpt").c_str());
}

TEST(DurableFitTest, ResumeRefusesForeignCheckpoint) {
  DatasetBundle bundle = MakeTmall(SmallData());
  FeatAugOptions options = FastOptions();
  options.checkpoint.dir = ::testing::TempDir();
  options.checkpoint.tag = "foreign_fit";
  FeatAug first(bundle.ToProblem(), options);
  ASSERT_TRUE(first.Fit().ok());

  // Same checkpoint file, different seed: a different fit entirely.
  options.seed = 6;
  options.checkpoint.resume = true;
  FeatAug second(bundle.ToProblem(), options);
  auto refused = second.Fit();
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kDataLoss);
  std::remove((::testing::TempDir() + "/fit_foreign_fit.ckpt").c_str());
}

TEST(DurableFitTest, ResumeRefusesCorruptedCheckpoint) {
  DatasetBundle bundle = MakeTmall(SmallData());
  FeatAugOptions options = FastOptions();
  options.checkpoint.dir = ::testing::TempDir();
  options.checkpoint.tag = "bitflip";
  FeatAug first(bundle.ToProblem(), options);
  ASSERT_TRUE(first.Fit().ok());

  const std::string path = ::testing::TempDir() + "/fit_bitflip.ckpt";
  auto text = ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  std::string corrupted = text.value();
  corrupted[corrupted.size() / 2] ^= 0x10;
  ASSERT_TRUE(AtomicWriteFile(path, corrupted).ok());

  options.checkpoint.resume = true;
  FeatAug second(bundle.ToProblem(), options);
  auto refused = second.Fit();
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(DurableFitTest, ResumeWithoutCheckpointIsFreshStart) {
  DatasetBundle bundle = MakeTmall(SmallData());
  FeatAug plain(bundle.ToProblem(), FastOptions());
  auto baseline = plain.Fit();
  ASSERT_TRUE(baseline.ok());

  FeatAugOptions options = FastOptions();
  options.checkpoint.dir = ::testing::TempDir();
  options.checkpoint.tag = "fresh";
  options.checkpoint.resume = true;  // nothing on disk yet
  FeatAug durable(bundle.ToProblem(), options);
  auto fresh = durable.Fit();
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_FALSE(fresh.value().resumed_from_checkpoint);
  EXPECT_EQ(PlanBytes(baseline.value(), bundle.relevant),
            PlanBytes(fresh.value(), bundle.relevant));
  std::remove((::testing::TempDir() + "/fit_fresh.ckpt").c_str());
}

#ifdef FEATLIB_FAULT_INJECTION

TEST(DurableFitTest, KillAtEveryEarlyBoundaryThenResumeIsByteIdentical) {
  DatasetBundle bundle = MakeTmall(SmallData());
  FeatAug plain(bundle.ToProblem(), FastOptions());
  auto baseline = plain.Fit();
  ASSERT_TRUE(baseline.ok());
  const std::string want = PlanBytes(baseline.value(), bundle.relevant);

  // Kill at a spread of round boundaries (the full sweep lives in
  // checkpoint_sweep_test.cc; CI rotates its seeds).
  for (uint64_t kill_at : {0ull, 1ull, 3ull, 7ull, 15ull}) {
    const std::string tag = "kill" + std::to_string(kill_at);
    const std::string path = ::testing::TempDir() + "/fit_" + tag + ".ckpt";
    FeatAugOptions options = FastOptions();
    options.checkpoint.dir = ::testing::TempDir();
    options.checkpoint.tag = tag;

    FaultInjector::Global().ArmSite("checkpoint.kill", kill_at);
    FeatAug killed(bundle.ToProblem(), options);
    auto interrupted = killed.Fit();
    FaultInjector::Global().Reset();
    ASSERT_FALSE(interrupted.ok())
        << "kill_at=" << kill_at << " did not interrupt the fit";

    options.checkpoint.resume = true;
    FeatAug resumed(bundle.ToProblem(), options);
    auto plan = resumed.Fit();
    ASSERT_TRUE(plan.ok()) << "kill_at=" << kill_at << ": "
                           << plan.status().ToString();
    EXPECT_EQ(want, PlanBytes(plan.value(), bundle.relevant))
        << "resume after kill_at=" << kill_at << " diverged";
    std::remove(path.c_str());
  }
}

TEST(DurableFitTest, SnapshotWriteFailureSurfacesTyped) {
  DatasetBundle bundle = MakeTmall(SmallData());
  FeatAugOptions options = FastOptions();
  options.checkpoint.dir = ::testing::TempDir();
  options.checkpoint.tag = "enospc";
  // The first snapshot write dies mid-write (ENOSPC-class): the fit must
  // fail loudly with the typed I/O status, not run silently undurable.
  FaultInjector::Global().ArmSite("file_io.write", 0);
  FeatAug feataug(bundle.ToProblem(), options);
  auto plan = feataug.Fit();
  FaultInjector::Global().Reset();
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kIOError)
      << plan.status().ToString();
  std::remove((::testing::TempDir() + "/fit_enospc.ckpt").c_str());
}

#endif  // FEATLIB_FAULT_INJECTION

}  // namespace
}  // namespace featlib

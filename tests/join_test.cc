#include <gtest/gtest.h>

#include <cmath>

#include "query/executor.h"
#include "query/join.h"

namespace featlib {
namespace {

// Instacart-shaped mini schema: order items (one-to-many logs), products
// (unique dimension), departments (unique dimension).
struct Schema {
  Table items;     // order_id, product_id, qty
  Table products;  // product_id, department_id, price
};

Schema MakeSchema() {
  Schema s;
  EXPECT_TRUE(s.items.AddColumn("order_id", Column::FromInts(DataType::kInt64, {1, 1, 2, 3})).ok());
  EXPECT_TRUE(s.items.AddColumn("product_id", Column::FromInts(DataType::kInt64, {10, 11, 10, 99})).ok());
  EXPECT_TRUE(s.items.AddColumn("qty", Column::FromInts(DataType::kInt64, {2, 1, 5, 1})).ok());

  EXPECT_TRUE(s.products.AddColumn("product_id", Column::FromInts(DataType::kInt64, {10, 11, 12})).ok());
  EXPECT_TRUE(s.products.AddColumn("department", Column::FromStrings({"dairy", "bakery", "frozen"})).ok());
  EXPECT_TRUE(s.products.AddColumn("price", Column::FromDoubles({3.5, 2.0, 7.0})).ok());
  return s;
}

TEST(JoinTest, LeftJoinUniqueBasics) {
  Schema s = MakeSchema();
  auto joined = LeftJoinUnique(s.items, s.products, {"product_id"});
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  const Table& t = joined.value();
  EXPECT_EQ(t.num_rows(), 4u);  // left rows preserved
  ASSERT_TRUE(t.HasColumn("department"));
  ASSERT_TRUE(t.HasColumn("price"));
  EXPECT_EQ(t.GetColumn("department").value()->StringAt(0), "dairy");
  EXPECT_EQ(t.GetColumn("department").value()->StringAt(1), "bakery");
  EXPECT_DOUBLE_EQ(t.GetColumn("price").value()->DoubleAt(2), 3.5);
  // product 99 has no dimension row -> NULLs.
  EXPECT_TRUE(t.GetColumn("department").value()->IsNull(3));
  EXPECT_TRUE(t.GetColumn("price").value()->IsNull(3));
}

TEST(JoinTest, LeftJoinRejectsDuplicateRightKeys) {
  Schema s = MakeSchema();
  // items has duplicate product_id values; joining the other way must fail.
  auto joined = LeftJoinUnique(s.products, s.items, {"product_id"});
  EXPECT_FALSE(joined.ok());
}

TEST(JoinTest, NameCollisionGetsPrefix) {
  Table left;
  ASSERT_TRUE(left.AddColumn("k", Column::FromInts(DataType::kInt64, {1})).ok());
  ASSERT_TRUE(left.AddColumn("v", Column::FromDoubles({1.0})).ok());
  Table right;
  ASSERT_TRUE(right.AddColumn("k", Column::FromInts(DataType::kInt64, {1})).ok());
  ASSERT_TRUE(right.AddColumn("v", Column::FromDoubles({2.0})).ok());
  auto joined = LeftJoinUnique(left, right, {"k"});
  ASSERT_TRUE(joined.ok());
  ASSERT_TRUE(joined.value().HasColumn("r_v"));
  EXPECT_DOUBLE_EQ(joined.value().GetColumn("r_v").value()->DoubleAt(0), 2.0);
}

TEST(JoinTest, NullKeysNeverMatch) {
  Table left;
  Column k(DataType::kInt64);
  k.AppendInt(1);
  k.AppendNull();
  ASSERT_TRUE(left.AddColumn("k", std::move(k)).ok());
  Table right;
  ASSERT_TRUE(right.AddColumn("k", Column::FromInts(DataType::kInt64, {1})).ok());
  ASSERT_TRUE(right.AddColumn("x", Column::FromDoubles({9.0})).ok());
  auto joined = LeftJoinUnique(left, right, {"k"});
  ASSERT_TRUE(joined.ok());
  EXPECT_DOUBLE_EQ(joined.value().GetColumn("x").value()->DoubleAt(0), 9.0);
  EXPECT_TRUE(joined.value().GetColumn("x").value()->IsNull(1));
}

TEST(JoinTest, StringKeysJoinAcrossDictionaries) {
  // Dictionaries built in different orders must still match by value.
  Table left;
  ASSERT_TRUE(left.AddColumn("name", Column::FromStrings({"bob", "ann"})).ok());
  Table right;
  ASSERT_TRUE(right.AddColumn("name", Column::FromStrings({"ann", "bob"})).ok());
  ASSERT_TRUE(right.AddColumn("score", Column::FromDoubles({1.0, 2.0})).ok());
  auto joined = LeftJoinUnique(left, right, {"name"});
  ASSERT_TRUE(joined.ok());
  EXPECT_DOUBLE_EQ(joined.value().GetColumn("score").value()->DoubleAt(0), 2.0);
  EXPECT_DOUBLE_EQ(joined.value().GetColumn("score").value()->DoubleAt(1), 1.0);
}

TEST(JoinTest, InnerJoinExpandOneToMany) {
  Schema s = MakeSchema();
  // Expand products against items: one output row per matching item.
  auto joined = InnerJoinExpand(s.products, s.items, {"product_id"});
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  const Table& t = joined.value();
  // product 10 matches 2 items, product 11 matches 1, product 12 matches 0.
  EXPECT_EQ(t.num_rows(), 3u);
  ASSERT_TRUE(t.HasColumn("qty"));
  ASSERT_TRUE(t.HasColumn("order_id"));
  EXPECT_EQ(t.GetColumn("department").value()->StringAt(0), "dairy");
}

TEST(JoinTest, CompositeKeys) {
  Table left;
  ASSERT_TRUE(left.AddColumn("a", Column::FromInts(DataType::kInt64, {1, 1})).ok());
  ASSERT_TRUE(left.AddColumn("b", Column::FromStrings({"x", "y"})).ok());
  Table right;
  ASSERT_TRUE(right.AddColumn("a", Column::FromInts(DataType::kInt64, {1, 1})).ok());
  ASSERT_TRUE(right.AddColumn("b", Column::FromStrings({"y", "x"})).ok());
  ASSERT_TRUE(right.AddColumn("v", Column::FromDoubles({10.0, 20.0})).ok());
  auto joined = LeftJoinUnique(left, right, {"a", "b"});
  ASSERT_TRUE(joined.ok());
  EXPECT_DOUBLE_EQ(joined.value().GetColumn("v").value()->DoubleAt(0), 20.0);
  EXPECT_DOUBLE_EQ(joined.value().GetColumn("v").value()->DoubleAt(1), 10.0);
}

TEST(JoinTest, Errors) {
  Schema s = MakeSchema();
  EXPECT_FALSE(LeftJoinUnique(s.items, s.products, {}).ok());
  EXPECT_FALSE(LeftJoinUnique(s.items, s.products, {"missing"}).ok());
  // Type mismatch: join int key against string key.
  Table right;
  ASSERT_TRUE(right.AddColumn("product_id", Column::FromStrings({"10"})).ok());
  EXPECT_FALSE(LeftJoinUnique(s.items, right, {"product_id"}).ok());
}

// End-to-end §III flow: flatten logs against a dimension table, then run a
// predicate-aware query against the joined relevant table.
TEST(JoinTest, JoinedRelevantTableFeedsExecutor) {
  Schema s = MakeSchema();
  auto relevant = InnerJoinExpand(s.items, s.products, {"product_id"});
  ASSERT_TRUE(relevant.ok());

  Table training;
  ASSERT_TRUE(training.AddColumn("order_id", Column::FromInts(DataType::kInt64, {1, 2, 3})).ok());

  AggQuery q;
  q.agg = AggFunction::kSum;
  q.agg_attr = "qty";
  q.group_keys = {"order_id"};
  q.predicates = {Predicate::Equals("department", Value::Str("dairy"))};
  auto feature = ComputeFeatureColumn(q, training, relevant.value());
  ASSERT_TRUE(feature.ok()) << feature.status().ToString();
  EXPECT_DOUBLE_EQ(feature.value()[0], 2.0);  // order 1: dairy qty 2
  EXPECT_DOUBLE_EQ(feature.value()[1], 5.0);  // order 2: dairy qty 5
  EXPECT_TRUE(std::isnan(feature.value()[2]));  // order 3: product 99 dropped
}

}  // namespace
}  // namespace featlib

#include <gtest/gtest.h>

#include <cmath>

#include "core/feature_eval.h"
#include "data/synthetic.h"

namespace featlib {
namespace {

SyntheticOptions SmallOptions() {
  SyntheticOptions options;
  options.n_train = 300;
  options.avg_logs_per_entity = 10;
  options.seed = 7;
  return options;
}

FeatureEvaluator MakeEvaluator(const DatasetBundle& bundle,
                               ModelKind model = ModelKind::kLogisticRegression) {
  EvaluatorOptions options;
  options.model = model;
  options.metric = bundle.task == TaskKind::kRegression ? MetricKind::kRmse
                                                        : MetricKind::kAuc;
  auto evaluator =
      FeatureEvaluator::Create(bundle.training, bundle.label_col,
                               bundle.base_features, bundle.relevant, bundle.task,
                               options);
  EXPECT_TRUE(evaluator.ok());
  return std::move(evaluator).ValueOrDie();
}

TEST(FeatureEvalTest, FeatureMaterializationAndCaching) {
  DatasetBundle bundle = MakeTmall(SmallOptions());
  FeatureEvaluator evaluator = MakeEvaluator(bundle);
  auto f1 = evaluator.Feature(bundle.golden_query);
  ASSERT_TRUE(f1.ok());
  EXPECT_EQ(f1.value()->size(), bundle.training.num_rows());
  EXPECT_EQ(evaluator.num_feature_materializations(), 1u);
  // Same query again: cache hit, same pointer.
  auto f2 = evaluator.Feature(bundle.golden_query);
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(f1.value(), f2.value());
  EXPECT_EQ(evaluator.num_feature_materializations(), 1u);
}

TEST(FeatureEvalTest, ProxyRanksGoldenAboveNoise) {
  DatasetBundle bundle = MakeTmall(SmallOptions());
  FeatureEvaluator evaluator = MakeEvaluator(bundle);

  AggQuery noise_query;
  noise_query.agg = AggFunction::kAvg;
  noise_query.agg_attr = "discount";  // uninformative by construction
  noise_query.group_keys = {"user_id"};

  for (ProxyKind proxy : {ProxyKind::kMutualInformation, ProxyKind::kSpearman}) {
    auto golden = evaluator.ProxyScore(bundle.golden_query, proxy);
    auto noise = evaluator.ProxyScore(noise_query, proxy);
    ASSERT_TRUE(golden.ok());
    ASSERT_TRUE(noise.ok());
    EXPECT_GT(golden.value(), noise.value())
        << ProxyKindToString(proxy);
  }
}

TEST(FeatureEvalTest, LrProxyRuns) {
  DatasetBundle bundle = MakeTmall(SmallOptions());
  FeatureEvaluator evaluator = MakeEvaluator(bundle);
  auto score =
      evaluator.ProxyScore(bundle.golden_query, ProxyKind::kLogisticRegression);
  ASSERT_TRUE(score.ok());
  EXPECT_TRUE(std::isfinite(score.value()));
}

TEST(FeatureEvalTest, GoldenFeatureImprovesModelScore) {
  DatasetBundle bundle = MakeTmall(SmallOptions());
  FeatureEvaluator evaluator = MakeEvaluator(bundle);
  auto baseline = evaluator.BaselineModelScore();
  auto with_golden = evaluator.ModelScoreSingle(bundle.golden_query);
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(with_golden.ok());
  EXPECT_GT(with_golden.value(), baseline.value() + 0.03);
}

TEST(FeatureEvalTest, BaselineCached) {
  DatasetBundle bundle = MakeTmall(SmallOptions());
  FeatureEvaluator evaluator = MakeEvaluator(bundle);
  ASSERT_TRUE(evaluator.BaselineModelScore().ok());
  const size_t evals = evaluator.num_model_evals();
  ASSERT_TRUE(evaluator.BaselineModelScore().ok());
  EXPECT_EQ(evaluator.num_model_evals(), evals);
}

TEST(FeatureEvalTest, MultiQueryModelScore) {
  DatasetBundle bundle = MakeTmall(SmallOptions());
  FeatureEvaluator evaluator = MakeEvaluator(bundle);
  AggQuery second;
  second.agg = AggFunction::kCount;
  second.agg_attr = "pprice";
  second.group_keys = {"user_id"};
  auto score = evaluator.ModelScore({bundle.golden_query, second});
  ASSERT_TRUE(score.ok());
  EXPECT_GT(score.value(), 0.5);
}

TEST(FeatureEvalTest, TestScoreUsesHeldOutSplit) {
  DatasetBundle bundle = MakeTmall(SmallOptions());
  FeatureEvaluator evaluator = MakeEvaluator(bundle);
  auto test_score = evaluator.TestScore({bundle.golden_query});
  ASSERT_TRUE(test_score.ok());
  EXPECT_GT(test_score.value(), 0.5);  // golden feature generalizes
}

TEST(FeatureEvalTest, ScoreToLossOrientation) {
  DatasetBundle classification = MakeTmall(SmallOptions());
  FeatureEvaluator auc_eval = MakeEvaluator(classification);
  EXPECT_DOUBLE_EQ(auc_eval.ScoreToLoss(0.8), -0.8);  // AUC negated

  DatasetBundle regression = MakeMerchant(SmallOptions());
  FeatureEvaluator rmse_eval = MakeEvaluator(regression);
  EXPECT_DOUBLE_EQ(rmse_eval.ScoreToLoss(2.0), 2.0);  // RMSE already a loss
}

TEST(FeatureEvalTest, RegressionTaskEndToEnd) {
  DatasetBundle bundle = MakeMerchant(SmallOptions());
  FeatureEvaluator evaluator = MakeEvaluator(bundle);
  auto baseline = evaluator.BaselineModelScore();
  auto with_golden = evaluator.ModelScoreSingle(bundle.golden_query);
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(with_golden.ok());
  // RMSE is lower with the golden feature.
  EXPECT_LT(with_golden.value(), baseline.value());
}

TEST(FeatureEvalTest, FeatureCacheIsByteCappedWithInBatchPinning) {
  DatasetBundle bundle = MakeTmall(SmallOptions());
  FeatureEvaluator evaluator = MakeEvaluator(bundle);
  EXPECT_EQ(evaluator.feature_cache_bytes(), 0u);

  std::vector<AggQuery> pool;
  for (AggFunction fn : AllAggFunctions()) {
    AggQuery q = bundle.golden_query;
    q.agg = fn;
    if (q.Validate(bundle.relevant).ok()) pool.push_back(std::move(q));
  }
  ASSERT_GT(pool.size(), 4u);

  // A cap far below the pool's footprint: the batch still completes — its
  // own entries are epoch-pinned, so the cache temporarily exceeds the cap
  // instead of thrashing the in-flight batch.
  evaluator.set_feature_cache_cap_bytes(1);
  auto features = evaluator.Features(pool);
  ASSERT_TRUE(features.ok()) << features.status().ToString();
  EXPECT_EQ(evaluator.num_feature_cache_evictions(), 0u);
  EXPECT_GT(evaluator.feature_cache_bytes(),
            pool.size() * bundle.training.num_rows() * sizeof(double));
  for (const std::vector<double>* f : features.value()) {
    ASSERT_EQ(f->size(), bundle.training.num_rows());
  }

  // The next materializing call unpins the previous epoch and evicts it.
  AggQuery fresh = bundle.golden_query;
  fresh.agg_attr = "discount";
  ASSERT_TRUE(fresh.Validate(bundle.relevant).ok());
  const size_t bytes_before = evaluator.feature_cache_bytes();
  ASSERT_TRUE(evaluator.Feature(fresh).ok());
  EXPECT_GE(evaluator.num_feature_cache_evictions(), pool.size());
  EXPECT_LT(evaluator.feature_cache_bytes(), bytes_before);

  // Evicted columns recompute to the same values (bit-for-bit).
  FeatureEvaluator reference = MakeEvaluator(bundle);
  auto recomputed = evaluator.Features(pool);
  auto expected = reference.Features(pool);
  ASSERT_TRUE(recomputed.ok());
  ASSERT_TRUE(expected.ok());
  for (size_t i = 0; i < pool.size(); ++i) {
    const std::vector<double>& a = *recomputed.value()[i];
    const std::vector<double>& e = *expected.value()[i];
    ASSERT_EQ(a.size(), e.size());
    for (size_t r = 0; r < a.size(); ++r) {
      if (std::isnan(a[r]) && std::isnan(e[r])) continue;
      EXPECT_EQ(a[r], e[r]) << "query " << i << " row " << r;
    }
  }

  // An uncapped evaluator never evicts.
  EXPECT_EQ(reference.num_feature_cache_evictions(), 0u);
  EXPECT_GT(reference.feature_cache_bytes(), 0u);
}

TEST(FeatureEvalTest, InvalidQueryPropagatesError) {
  DatasetBundle bundle = MakeTmall(SmallOptions());
  FeatureEvaluator evaluator = MakeEvaluator(bundle);
  AggQuery bad;
  bad.agg = AggFunction::kAvg;
  bad.agg_attr = "no_such_column";
  bad.group_keys = {"user_id"};
  EXPECT_FALSE(evaluator.Feature(bad).ok());
  EXPECT_FALSE(evaluator.ModelScoreSingle(bad).ok());
}

TEST(FeatureEvalTest, CreateRejectsBadInputs) {
  DatasetBundle bundle = MakeTmall(SmallOptions());
  EvaluatorOptions options;
  EXPECT_FALSE(FeatureEvaluator::Create(bundle.training, "missing_label",
                                        bundle.base_features, bundle.relevant,
                                        bundle.task, options)
                   .ok());
  EXPECT_FALSE(FeatureEvaluator::Create(bundle.training, bundle.label_col,
                                        {"missing_feature"}, bundle.relevant,
                                        bundle.task, options)
                   .ok());
}

}  // namespace
}  // namespace featlib

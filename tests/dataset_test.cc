#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "ml/dataset.h"

namespace featlib {
namespace {

TEST(DatasetTest, WithLabelsAndAddFeature) {
  Dataset ds = Dataset::WithLabels({0, 1, 0}, TaskKind::kBinaryClassification);
  EXPECT_EQ(ds.n, 3u);
  EXPECT_EQ(ds.d, 0u);
  ASSERT_TRUE(ds.AddFeature("f0", {1.0, 2.0, 3.0}).ok());
  ASSERT_TRUE(ds.AddFeature("f1", {4.0, 5.0, 6.0}).ok());
  EXPECT_EQ(ds.d, 2u);
  EXPECT_DOUBLE_EQ(ds.At(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(ds.At(2, 1), 6.0);
  EXPECT_EQ(ds.feature_names[1], "f1");
  EXPECT_FALSE(ds.AddFeature("bad", {1.0}).ok());
}

TEST(DatasetTest, FeatureColumnAndSelect) {
  Dataset ds = Dataset::WithLabels({0, 1}, TaskKind::kBinaryClassification);
  ASSERT_TRUE(ds.AddFeature("a", {1, 2}).ok());
  ASSERT_TRUE(ds.AddFeature("b", {3, 4}).ok());
  ASSERT_TRUE(ds.AddFeature("c", {5, 6}).ok());
  EXPECT_EQ(ds.FeatureColumn(1), (std::vector<double>{3, 4}));
  Dataset sel = ds.SelectFeatures({2, 0});
  EXPECT_EQ(sel.d, 2u);
  EXPECT_DOUBLE_EQ(sel.At(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(sel.At(0, 1), 1.0);
  EXPECT_EQ(sel.feature_names[0], "c");
  EXPECT_EQ(sel.y, ds.y);
}

TEST(DatasetTest, GatherRows) {
  Dataset ds = Dataset::WithLabels({10, 20, 30}, TaskKind::kRegression);
  ASSERT_TRUE(ds.AddFeature("a", {1, 2, 3}).ok());
  Dataset g = ds.GatherRows({2, 0});
  EXPECT_EQ(g.n, 2u);
  EXPECT_DOUBLE_EQ(g.y[0], 30.0);
  EXPECT_DOUBLE_EQ(g.At(1, 0), 1.0);
}

TEST(DatasetTest, FromTable) {
  Table t;
  ASSERT_TRUE(t.AddColumn("y", Column::FromInts(DataType::kInt64, {0, 1, 2})).ok());
  ASSERT_TRUE(t.AddColumn("x", Column::FromDoubles({1.5, 2.5, 3.5})).ok());
  ASSERT_TRUE(t.AddColumn("s", Column::FromStrings({"a", "b", "a"})).ok());
  auto ds = Dataset::FromTable(t, "y", {"x", "s"}, TaskKind::kMultiClassification);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds.value().num_classes, 3);
  EXPECT_DOUBLE_EQ(ds.value().At(0, 0), 1.5);
  // String features map to dictionary codes.
  EXPECT_DOUBLE_EQ(ds.value().At(0, 1), ds.value().At(2, 1));
}

TEST(DatasetTest, FromTableErrors) {
  Table t;
  ASSERT_TRUE(t.AddColumn("y", Column::FromInts(DataType::kInt64, {0, 1})).ok());
  EXPECT_FALSE(
      Dataset::FromTable(t, "missing", {}, TaskKind::kBinaryClassification).ok());
  Table with_null;
  Column y(DataType::kInt64);
  y.AppendNull();
  ASSERT_TRUE(with_null.AddColumn("y", std::move(y)).ok());
  EXPECT_FALSE(
      Dataset::FromTable(with_null, "y", {}, TaskKind::kBinaryClassification).ok());
}

TEST(DatasetTest, SplitRatiosAndDisjointness) {
  const SplitIndices split = MakeSplit(1000, 0.6, 0.2, 7);
  EXPECT_EQ(split.train.size(), 600u);
  EXPECT_EQ(split.valid.size(), 200u);
  EXPECT_EQ(split.test.size(), 200u);
  std::set<uint32_t> all;
  for (auto v : split.train) all.insert(v);
  for (auto v : split.valid) all.insert(v);
  for (auto v : split.test) all.insert(v);
  EXPECT_EQ(all.size(), 1000u);
}

TEST(DatasetTest, SplitDeterministicBySeed) {
  const SplitIndices a = MakeSplit(100, 0.5, 0.25, 3);
  const SplitIndices b = MakeSplit(100, 0.5, 0.25, 3);
  const SplitIndices c = MakeSplit(100, 0.5, 0.25, 4);
  EXPECT_EQ(a.train, b.train);
  EXPECT_NE(a.train, c.train);
}

TEST(DatasetTest, ImputeUsesReferenceMeans) {
  Dataset ref = Dataset::WithLabels({0, 0, 0}, TaskKind::kBinaryClassification);
  ASSERT_TRUE(ref.AddFeature("a", {1.0, 3.0, std::nan("")}).ok());
  Dataset target = Dataset::WithLabels({0}, TaskKind::kBinaryClassification);
  ASSERT_TRUE(target.AddFeature("a", {std::nan("")}).ok());
  ImputeNanInPlace(&target, ref);
  EXPECT_DOUBLE_EQ(target.At(0, 0), 2.0);  // mean of non-NaN reference values
  // Reference untouched; all-NaN reference imputes 0.
  Dataset all_nan_ref = Dataset::WithLabels({0}, TaskKind::kBinaryClassification);
  ASSERT_TRUE(all_nan_ref.AddFeature("a", {std::nan("")}).ok());
  Dataset t2 = Dataset::WithLabels({0}, TaskKind::kBinaryClassification);
  ASSERT_TRUE(t2.AddFeature("a", {std::nan("")}).ok());
  ImputeNanInPlace(&t2, all_nan_ref);
  EXPECT_DOUBLE_EQ(t2.At(0, 0), 0.0);
}

TEST(DatasetTest, StandardizerZeroMeanUnitVar) {
  Dataset ds = Dataset::WithLabels({0, 0, 0, 0}, TaskKind::kBinaryClassification);
  ASSERT_TRUE(ds.AddFeature("a", {1, 2, 3, 4}).ok());
  ASSERT_TRUE(ds.AddFeature("const", {7, 7, 7, 7}).ok());
  Standardizer std_;
  std_.Fit(ds);
  Dataset copy = ds;
  std_.Apply(&copy);
  double mean = 0;
  double var = 0;
  for (size_t r = 0; r < copy.n; ++r) mean += copy.At(r, 0);
  mean /= 4.0;
  for (size_t r = 0; r < copy.n; ++r) var += copy.At(r, 0) * copy.At(r, 0);
  var /= 4.0;
  EXPECT_NEAR(mean, 0.0, 1e-12);
  EXPECT_NEAR(var, 1.0, 1e-12);
  // Constant columns are left centered but not blown up.
  EXPECT_DOUBLE_EQ(copy.At(0, 1), 0.0);
}

}  // namespace
}  // namespace featlib

/// \file query_planner_test.cc
/// \brief Pins the planner layer of the planner / store / kernel split:
/// artifact-DAG deduplication and topology (via PlanStats), publish-once
/// semantics under parallel prepare, determinism of parallel prepare across
/// thread counts, eviction pinning, and error propagation from staged
/// builds.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "golden_util.h"
#include "query/query_planner.h"

namespace featlib {
namespace {

using golden::SameBits;

void ExpectColumnsBitIdentical(const std::vector<double>& actual,
                               const std::vector<double>& expected,
                               const std::string& context) {
  ASSERT_EQ(actual.size(), expected.size()) << context;
  for (size_t i = 0; i < actual.size(); ++i) {
    ASSERT_TRUE(SameBits(actual[i], expected[i])) << context << " row " << i;
  }
}

struct Pair {
  Table relevant;
  Table training;
};

// Small deterministic tables: int key, double value, two predicate columns.
Pair MakePair() {
  Pair out;
  Rng rng(7);
  const char* depts[] = {"a", "b", "c"};
  Column k(DataType::kInt64), v(DataType::kDouble), level(DataType::kInt64),
      dept(DataType::kString);
  for (int i = 0; i < 160; ++i) {
    k.AppendInt(static_cast<int64_t>(rng.UniformInt(12)));
    if (rng.Bernoulli(0.2)) {
      v.AppendNull();
    } else {
      v.AppendDouble(rng.Normal(0, 5));
    }
    level.AppendInt(static_cast<int64_t>(rng.UniformInt(4)));
    dept.AppendString(depts[rng.UniformInt(3)]);
  }
  EXPECT_TRUE(out.relevant.AddColumn("k", std::move(k)).ok());
  EXPECT_TRUE(out.relevant.AddColumn("v", std::move(v)).ok());
  EXPECT_TRUE(out.relevant.AddColumn("level", std::move(level)).ok());
  EXPECT_TRUE(out.relevant.AddColumn("dept", std::move(dept)).ok());
  Column dk(DataType::kInt64);
  for (int i = 0; i < 15; ++i) dk.AppendInt(i);
  EXPECT_TRUE(out.training.AddColumn("k", std::move(dk)).ok());
  return out;
}

AggQuery MakeQuery(AggFunction fn, std::vector<Predicate> preds) {
  AggQuery q;
  q.agg = fn;
  q.agg_attr = "v";
  q.group_keys = {"k"};
  q.predicates = std::move(preds);
  return q;
}

// --- DAG deduplication and topology -----------------------------------------

TEST(QueryPlannerTest, PlanDeduplicatesSharedArtifacts) {
  const Pair tables = MakePair();
  const Predicate pa = Predicate::Equals("dept", Value::Str("a"));
  const Predicate pb = Predicate::Range("level", 1.0, 3.0);

  // 6 candidates: one group-key set, two distinct single predicates, one
  // conjunction (both), one value view, three distinct buckets with >1
  // member each => three materializations.
  std::vector<AggQuery> queries = {
      MakeQuery(AggFunction::kSum, {pa}),    MakeQuery(AggFunction::kAvg, {pa}),
      MakeQuery(AggFunction::kSum, {pb}),    MakeQuery(AggFunction::kMin, {pb}),
      MakeQuery(AggFunction::kSum, {pa, pb}), MakeQuery(AggFunction::kMax, {pa, pb}),
  };

  QueryPlanner planner;
  auto result = planner.EvaluateMany(queries, tables.training, tables.relevant);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const QueryPlanner::PlanStats& stats = planner.last_plan_stats();
  EXPECT_EQ(stats.candidates, 6u);
  EXPECT_EQ(stats.group_requests, 1u);        // one group-key set
  EXPECT_EQ(stats.train_map_requests, 1u);    // one training-row map
  EXPECT_EQ(stats.mask_requests, 2u);         // pa, pb — not one per candidate
  EXPECT_EQ(stats.conjunction_requests, 1u);  // pa&pb
  EXPECT_EQ(stats.view_requests, 1u);         // "v"
  EXPECT_EQ(stats.mat_requests, 3u);          // three shared buckets
  // Conjunctions build after their constituent masks, materializations
  // after group+mask+view: all three dependency stages must have run.
  EXPECT_EQ(stats.stages_run, 3u);
  EXPECT_EQ(stats.builds_run, 1u + 1u + 2u + 1u + 1u + 3u);

  // Store counters agree: exactly one build per unique artifact.
  EXPECT_EQ(planner.store().num_group_builds(), 1u);
  EXPECT_EQ(planner.store().num_mask_builds(), 2u);
  EXPECT_EQ(planner.store().num_conjunction_builds(), 1u);
  EXPECT_EQ(planner.store().num_view_builds(), 1u);
  EXPECT_EQ(planner.store().num_materializations(), 3u);
}

TEST(QueryPlannerTest, SecondIdenticalBatchBuildsNothing) {
  const Pair tables = MakePair();
  std::vector<AggQuery> queries = {
      MakeQuery(AggFunction::kSum, {Predicate::Equals("dept", Value::Str("a"))}),
      MakeQuery(AggFunction::kMedian, {Predicate::Equals("dept", Value::Str("a"))}),
  };
  QueryPlanner planner;
  auto first = planner.EvaluateMany(queries, tables.training, tables.relevant);
  ASSERT_TRUE(first.ok());
  ASSERT_GT(planner.last_plan_stats().builds_run, 0u);

  auto second = planner.EvaluateMany(queries, tables.training, tables.relevant);
  ASSERT_TRUE(second.ok());
  // Everything is cached: the plan requests artifacts but builds none, and
  // no prepare stage runs at all.
  EXPECT_EQ(planner.last_plan_stats().builds_run, 0u);
  EXPECT_EQ(planner.last_plan_stats().stages_run, 0u);
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectColumnsBitIdentical(second.value()[i], first.value()[i], "cached");
  }
}

TEST(QueryPlannerTest, SingletonStreamingCandidateSkipsMaterialization) {
  const Pair tables = MakePair();
  QueryPlanner planner;
  // One streaming aggregate alone in its bucket: streams through the value
  // view, no materialization.
  auto one = planner.ComputeFeatureColumn(MakeQuery(AggFunction::kSum, {}),
                                          tables.training, tables.relevant);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(planner.store().num_materializations(), 0u);
  // An order-statistic aggregate must materialize even alone.
  auto med = planner.ComputeFeatureColumn(MakeQuery(AggFunction::kMedian, {}),
                                          tables.training, tables.relevant);
  ASSERT_TRUE(med.ok());
  EXPECT_EQ(planner.store().num_materializations(), 1u);
}

// --- Publish-once under concurrent builds ------------------------------------

TEST(QueryPlannerTest, ParallelPrepareBuildsEachArtifactExactlyOnce) {
  const Pair tables = MakePair();
  // A wide pool in which every candidate wants the *same* group index,
  // view, and mask: parallel prepare must still build each exactly once
  // (the planner dedups requests; the store publishes once).
  std::vector<AggQuery> queries;
  for (AggFunction fn : AllAggFunctions()) {
    queries.push_back(
        MakeQuery(fn, {Predicate::Equals("dept", Value::Str("b"))}));
  }
  ThreadPool pool(8);
  QueryPlanner planner;
  planner.set_thread_pool(&pool);
  auto result = planner.EvaluateMany(queries, tables.training, tables.relevant);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(planner.store().num_group_builds(), 1u);
  EXPECT_EQ(planner.store().num_mask_builds(), 1u);
  EXPECT_EQ(planner.store().num_view_builds(), 1u);
  EXPECT_EQ(planner.store().num_materializations(), 1u);
  EXPECT_EQ(planner.store().num_train_map_builds(), 1u);
}

// --- Determinism of parallel prepare across thread counts --------------------

TEST(QueryPlannerTest, ParallelPrepareIsByteIdenticalAcrossThreadCounts) {
  const Pair tables = MakePair();
  const Predicate pa = Predicate::Equals("dept", Value::Str("a"));
  const Predicate pb = Predicate::Range("level", std::nullopt, 2.0);
  std::vector<AggQuery> queries;
  for (AggFunction fn : AllAggFunctions()) {
    queries.push_back(MakeQuery(fn, {}));
    queries.push_back(MakeQuery(fn, {pa}));
    queries.push_back(MakeQuery(fn, {pa, pb}));
  }

  QueryPlanner serial;
  auto reference = serial.EvaluateMany(queries, tables.training, tables.relevant);
  ASSERT_TRUE(reference.ok());

  for (const int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    QueryPlanner planner;
    planner.set_thread_pool(&pool);
    auto result = planner.EvaluateMany(queries, tables.training, tables.relevant);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (size_t i = 0; i < queries.size(); ++i) {
      ExpectColumnsBitIdentical(result.value()[i], reference.value()[i],
                                std::to_string(threads) + " threads, q" +
                                    std::to_string(i));
    }
  }
}

// --- Eviction pinning across parallel prepare --------------------------------

TEST(QueryPlannerTest, EvictionPinningHoldsUnderParallelPrepare) {
  const Pair tables = MakePair();
  std::vector<AggQuery> queries;
  for (AggFunction fn : AllAggFunctions()) {
    queries.push_back(
        MakeQuery(fn, {Predicate::Equals("dept", Value::Str("a")),
                       Predicate::Range("level", 1.0, 3.0)}));
  }
  ThreadPool pool(8);
  QueryPlanner planner;
  planner.set_thread_pool(&pool);
  planner.set_mask_cache_cap_bytes(1);
  planner.set_mat_cache_cap_bytes(1);
  auto first = planner.EvaluateMany(queries, tables.training, tables.relevant);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // Every over-cap entry belongs to the in-flight batch: pinned, 0 evicted.
  EXPECT_EQ(planner.num_evictions(), 0u);

  QueryPlanner fresh;
  auto expected = fresh.EvaluateMany(queries, tables.training, tables.relevant);
  ASSERT_TRUE(expected.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectColumnsBitIdentical(first.value()[i], expected.value()[i],
                              "tiny-cap parallel batch");
  }

  // The next batch unpins the previous epoch's entries and evicts them.
  std::vector<AggQuery> second;
  for (AggFunction fn : AllAggFunctions()) {
    second.push_back(MakeQuery(fn, {Predicate::Range("level", 0.0, 1.0)}));
  }
  auto second_result =
      planner.EvaluateMany(second, tables.training, tables.relevant);
  ASSERT_TRUE(second_result.ok());
  EXPECT_GT(planner.num_evictions(), 0u);
}

// --- Compile memoization across overlapping pools ----------------------------

TEST(QueryPlannerTest, CompileMemoServesOverlappingPools) {
  const Pair tables = MakePair();
  const Predicate pa = Predicate::Equals("dept", Value::Str("a"));
  const Predicate pb = Predicate::Range("level", 1.0, 3.0);
  const std::vector<AggQuery> first_pool = {
      MakeQuery(AggFunction::kSum, {pa}),
      MakeQuery(AggFunction::kAvg, {pa}),
      MakeQuery(AggFunction::kSum, {pa, pb}),
      MakeQuery(AggFunction::kMedian, {}),
  };
  // The HPO-round pattern: the next pool overlaps the previous one.
  std::vector<AggQuery> second_pool = first_pool;
  second_pool.push_back(MakeQuery(AggFunction::kMin, {pb}));
  second_pool.push_back(MakeQuery(AggFunction::kMax, {pa, pb}));

  QueryPlanner planner;
  auto first = planner.EvaluateMany(first_pool, tables.training, tables.relevant);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(planner.last_plan_stats().compile_hits, 0u);
  EXPECT_EQ(planner.last_plan_stats().compile_misses, first_pool.size());

  auto second =
      planner.EvaluateMany(second_pool, tables.training, tables.relevant);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  // The overlap re-resolves from the memo; only the two new candidates
  // compile fresh.
  EXPECT_EQ(planner.last_plan_stats().compile_hits, first_pool.size());
  EXPECT_EQ(planner.last_plan_stats().compile_misses, 2u);
  EXPECT_EQ(planner.compile_cache_hits(), first_pool.size());
  EXPECT_EQ(planner.compile_cache_misses(), first_pool.size() + 2u);
  EXPECT_EQ(planner.compile_cache_size(), first_pool.size() + 2u);
}

TEST(QueryPlannerTest, DuplicateCandidatesWithinABatchHitTheMemo) {
  const Pair tables = MakePair();
  const AggQuery q =
      MakeQuery(AggFunction::kSum, {Predicate::Equals("dept", Value::Str("b"))});
  QueryPlanner planner;
  auto result =
      planner.EvaluateMany({q, q, q}, tables.training, tables.relevant);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(planner.last_plan_stats().compile_misses, 1u);
  EXPECT_EQ(planner.last_plan_stats().compile_hits, 2u);
}

TEST(QueryPlannerTest, WarmRecompileIsByteIdenticalToColdAcrossThreadCounts) {
  const Pair tables = MakePair();
  const Predicate pa = Predicate::Equals("dept", Value::Str("a"));
  const Predicate pb = Predicate::Range("level", std::nullopt, 2.0);
  std::vector<AggQuery> first_pool;
  std::vector<AggQuery> second_pool;
  for (AggFunction fn : AllAggFunctions()) {
    first_pool.push_back(MakeQuery(fn, {pa}));
    second_pool.push_back(MakeQuery(fn, {pa}));         // full overlap
    second_pool.push_back(MakeQuery(fn, {pa, pb}));     // new conjunctions
  }

  // Cold reference: a fresh serial planner sees the second pool only.
  QueryPlanner cold;
  auto reference =
      cold.EvaluateMany(second_pool, tables.training, tables.relevant);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(cold.compile_cache_hits(), 0u);

  for (const int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    QueryPlanner warm;
    warm.set_thread_pool(&pool);
    auto warmup =
        warm.EvaluateMany(first_pool, tables.training, tables.relevant);
    ASSERT_TRUE(warmup.ok());
    auto result =
        warm.EvaluateMany(second_pool, tables.training, tables.relevant);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // The warm re-compile is a memo hit for the overlap...
    EXPECT_EQ(warm.last_plan_stats().compile_hits, first_pool.size())
        << threads << " threads";
    // ...and byte-identical to the cold compile.
    for (size_t i = 0; i < second_pool.size(); ++i) {
      ExpectColumnsBitIdentical(result.value()[i], reference.value()[i],
                                std::to_string(threads) + " threads, q" +
                                    std::to_string(i));
    }
  }
}

TEST(QueryPlannerTest, CompileMemoIsEntryCapped) {
  const Pair tables = MakePair();
  std::vector<AggQuery> pool = {
      MakeQuery(AggFunction::kSum, {}),
      MakeQuery(AggFunction::kAvg, {}),
      MakeQuery(AggFunction::kMin, {}),
      MakeQuery(AggFunction::kMax, {}),
  };
  QueryPlanner planner;
  planner.set_compile_cache_cap_entries(2);
  // One batch may exceed the cap (flushes happen between batches only).
  ASSERT_TRUE(
      planner.EvaluateMany(pool, tables.training, tables.relevant).ok());
  EXPECT_EQ(planner.compile_cache_size(), pool.size());
  EXPECT_EQ(planner.compile_cache_flushes(), 0u);
  // The next batch starts above the cap: wholesale flush, then re-miss.
  ASSERT_TRUE(
      planner.EvaluateMany(pool, tables.training, tables.relevant).ok());
  EXPECT_EQ(planner.compile_cache_flushes(), 1u);
  EXPECT_EQ(planner.last_plan_stats().compile_hits, 0u);
  EXPECT_EQ(planner.last_plan_stats().compile_misses, pool.size());
}

TEST(QueryPlannerTest, InvalidCandidatesAreNeverMemoized) {
  const Pair tables = MakePair();
  AggQuery bad = MakeQuery(AggFunction::kSum, {});
  bad.agg_attr = "no_such_column";
  QueryPlanner planner;
  EXPECT_FALSE(
      planner.EvaluateMany({bad}, tables.training, tables.relevant).ok());
  // Validation must run (and fail) again: the memo only holds valid shapes.
  EXPECT_FALSE(
      planner.EvaluateMany({bad}, tables.training, tables.relevant).ok());
  EXPECT_EQ(planner.compile_cache_size(), 0u);
  EXPECT_EQ(planner.compile_cache_hits(), 0u);
}

// --- Error propagation from staged builds ------------------------------------

TEST(QueryPlannerTest, StagedBuildErrorsAbortTheBatch) {
  const Pair tables = MakePair();
  // Training-row mapping fails in stage B: the group key exists in R but
  // not in D.
  AggQuery bad;
  bad.agg = AggFunction::kSum;
  bad.agg_attr = "v";
  bad.group_keys = {"level"};  // in R, not in training
  QueryPlanner planner;
  ThreadPool pool(4);
  planner.set_thread_pool(&pool);
  auto result = planner.EvaluateMany({bad}, tables.training, tables.relevant);
  EXPECT_FALSE(result.ok());

  // Mixed batch: one bad candidate fails the whole batch (all-or-nothing),
  // but the planner instance stays usable afterwards.
  auto mixed = planner.EvaluateMany({MakeQuery(AggFunction::kSum, {}), bad},
                                    tables.training, tables.relevant);
  EXPECT_FALSE(mixed.ok());
  auto good = planner.EvaluateMany({MakeQuery(AggFunction::kSum, {})},
                                   tables.training, tables.relevant);
  EXPECT_TRUE(good.ok()) << good.status().ToString();
}

TEST(RetryPolicyTest, BackoffIsBoundedAndSeedDeterministic) {
  QueryPlanner::RetryPolicy policy;
  policy.backoff_ms = 10;
  policy.max_backoff_ms = 80;
  policy.jitter_seed = 42;
  const uint64_t token = 0x1234abcdull;

  // Deterministic: the same (policy, attempt, token) always yields the same
  // delay, so a retried run replays the same backoff trajectory.
  for (int attempt = 0; attempt < 12; ++attempt) {
    const int a = QueryPlanner::RetryDelayMs(policy, attempt, token);
    const int b = QueryPlanner::RetryDelayMs(policy, attempt, token);
    EXPECT_EQ(a, b) << "attempt " << attempt;

    // Bounded: jittered into [base/2, base] with base = min(10 << attempt, 80)
    // — the cap stops the exponential, the jitter floor keeps real waiting.
    const int base = std::min(80, attempt < 20 ? 10 << attempt : 80);
    EXPECT_GE(a, base / 2) << "attempt " << attempt;
    EXPECT_LE(a, base) << "attempt " << attempt;
  }
  // Late attempts never exceed the cap, no matter how large attempt grows.
  EXPECT_LE(QueryPlanner::RetryDelayMs(policy, 1000, token), 80);

  // Different seeds (and different tokens) de-synchronize concurrent
  // retriers: at least one attempt in a short window must differ.
  QueryPlanner::RetryPolicy other = policy;
  other.jitter_seed = 43;
  bool seed_differs = false;
  bool token_differs = false;
  for (int attempt = 0; attempt < 8; ++attempt) {
    seed_differs |= QueryPlanner::RetryDelayMs(other, attempt, token) !=
                    QueryPlanner::RetryDelayMs(policy, attempt, token);
    token_differs |= QueryPlanner::RetryDelayMs(policy, attempt, token + 1) !=
                     QueryPlanner::RetryDelayMs(policy, attempt, token);
  }
  EXPECT_TRUE(seed_differs);
  EXPECT_TRUE(token_differs);

  // backoff_ms == 0 disables sleeping entirely (the test-suite default).
  QueryPlanner::RetryPolicy none;
  none.backoff_ms = 0;
  EXPECT_EQ(QueryPlanner::RetryDelayMs(none, 0, token), 0);
  EXPECT_EQ(QueryPlanner::RetryDelayMs(none, 5, token), 0);
}

}  // namespace
}  // namespace featlib

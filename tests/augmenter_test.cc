/// \file augmenter_test.cc
/// \brief Pins the unified Augmenter / FittedAugmenter API: every method
/// (FeatAug, MultiTableFeatAug, Random, Featuretools, ARDA, AutoFeature) is
/// reachable through the same Fit() -> handle contract, the deprecated
/// Apply shims match Transform byte for byte, feature-name collisions
/// dedupe deterministically, and serialized plans round-trip into a warm
/// serving handle (LoadFittedAugmenter).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "baselines/augmenters.h"
#include "core/augmenter.h"
#include "core/plan_io.h"
#include "data/synthetic.h"
#include "golden_util.h"

namespace featlib {
namespace {

using golden::SameBits;

SyntheticOptions SmallData() {
  SyntheticOptions options;
  options.n_train = 250;
  options.avg_logs_per_entity = 8;
  options.seed = 33;
  return options;
}

FeatAugOptions FastOptions() {
  FeatAugOptions options;
  options.n_templates = 2;
  options.queries_per_template = 2;
  options.generator.warmup_iterations = 15;
  options.generator.warmup_top_k = 4;
  options.generator.generation_iterations = 5;
  options.qti.beam_width = 2;
  options.qti.max_depth = 2;
  options.qti.node_iterations = 5;
  options.evaluator.model = ModelKind::kLogisticRegression;
  options.evaluator.metric = MetricKind::kAuc;
  options.seed = 9;
  return options;
}

EvaluatorOptions FastEval() {
  EvaluatorOptions eval;
  eval.model = ModelKind::kLogisticRegression;
  eval.metric = MetricKind::kAuc;
  return eval;
}

void ExpectHandleTransforms(Augmenter* augmenter, const Table& batch) {
  auto fitted = augmenter->Fit();
  ASSERT_TRUE(fitted.ok()) << augmenter->name() << ": "
                           << fitted.status().ToString();
  const FittedAugmenter& handle = *fitted.value();
  EXPECT_GT(handle.num_features(), 0u) << augmenter->name();
  EXPECT_EQ(handle.num_features(), handle.feature_names().size());
  EXPECT_EQ(handle.num_features(), handle.AllQueries().size());
  EXPECT_EQ(handle.num_features(), handle.valid_metrics().size());

  auto transformed = handle.Transform(batch);
  ASSERT_TRUE(transformed.ok()) << augmenter->name() << ": "
                                << transformed.status().ToString();
  EXPECT_EQ(transformed.value().num_rows(), batch.num_rows());
  EXPECT_EQ(transformed.value().num_columns(),
            batch.num_columns() + handle.num_features());
  for (const std::string& name : handle.feature_names()) {
    EXPECT_TRUE(transformed.value().HasColumn(name)) << name;
  }
}

TEST(AugmenterTest, FeatAugReachableThroughInterface) {
  DatasetBundle bundle = MakeTmall(SmallData());
  auto augmenter = MakeFeatAugAugmenter(bundle.ToProblem(), FastOptions());
  EXPECT_STREQ(augmenter->name(), "feataug");
  ExpectHandleTransforms(augmenter.get(), bundle.training);
  ASSERT_NE(augmenter->evaluator(), nullptr);
}

TEST(AugmenterTest, MultiTableReachableThroughInterface) {
  DatasetBundle bundle = MakeTmall(SmallData());
  MultiTableProblem problem;
  problem.training = bundle.training;
  problem.label_col = bundle.label_col;
  problem.base_feature_cols = bundle.base_features;
  problem.task = bundle.task;
  RelevantInput input;
  input.name = "logs";
  input.relevant = bundle.relevant;
  input.fk_attrs = bundle.fk_attrs;
  problem.relevants.push_back(std::move(input));
  MultiTableOptions options;
  options.total_features = 4;
  options.queries_per_template = 2;
  options.per_table = FastOptions();
  auto augmenter = MakeMultiTableAugmenter(std::move(problem), options);
  EXPECT_STREQ(augmenter->name(), "multi_table");

  auto fitted = augmenter->Fit();
  ASSERT_TRUE(fitted.ok()) << fitted.status().ToString();
  EXPECT_GT(fitted.value()->num_features(), 0u);
  // Multi-table feature names come out table-qualified.
  for (const std::string& name : fitted.value()->feature_names()) {
    EXPECT_EQ(name.rfind("logs__", 0), 0u) << name;
  }
  auto transformed = fitted.value()->Transform(bundle.training);
  ASSERT_TRUE(transformed.ok()) << transformed.status().ToString();
  EXPECT_EQ(transformed.value().num_columns(),
            bundle.training.num_columns() + fitted.value()->num_features());
}

TEST(AugmenterTest, BaselinesReachableThroughInterface) {
  DatasetBundle bundle = MakeTmall(SmallData());

  RandomAugOptions random_options;
  random_options.n_templates = 2;
  random_options.queries_per_template = 2;
  auto random = MakeRandomAugmenter(bundle.ToProblem(), random_options,
                                    /*max_features=*/4, FastEval());
  EXPECT_STREQ(random->name(), "random");
  ExpectHandleTransforms(random.get(), bundle.training);

  auto featuretools = MakeFeaturetoolsAugmenter(
      bundle.ToProblem(), /*k=*/4, SelectorKind::kMi, {}, FastEval());
  EXPECT_STREQ(featuretools->name(), "featuretools");
  ExpectHandleTransforms(featuretools.get(), bundle.training);

  ArdaOptions arda_options;
  arda_options.rounds = 2;
  auto arda =
      MakeArdaAugmenter(bundle.ToProblem(), /*k=*/3, arda_options, {}, FastEval());
  EXPECT_STREQ(arda->name(), "arda");
  ExpectHandleTransforms(arda.get(), bundle.training);

  AutoFeatureOptions af_options;
  af_options.budget = 6;
  auto autofeature = MakeAutoFeatureAugmenter(bundle.ToProblem(), /*k=*/3,
                                              af_options, {}, FastEval());
  EXPECT_STREQ(autofeature->name(), "autofeature");
  ExpectHandleTransforms(autofeature.get(), bundle.training);
}

TEST(AugmenterTest, ApplyShimMatchesTransform) {
  DatasetBundle bundle = MakeTmall(SmallData());
  FeatAug feataug(bundle.ToProblem(), FastOptions());
  auto plan = feataug.Fit();
  ASSERT_TRUE(plan.ok());
  auto fitted = feataug.MakeFitted(plan.value());
  ASSERT_TRUE(fitted.ok());

  auto via_shim = feataug.Apply(plan.value(), bundle.training);
  auto via_handle = fitted.value()->Transform(bundle.training);
  ASSERT_TRUE(via_shim.ok());
  ASSERT_TRUE(via_handle.ok());
  ASSERT_EQ(via_shim.value().num_columns(), via_handle.value().num_columns());
  for (size_t c = 0; c < via_shim.value().num_columns(); ++c) {
    EXPECT_EQ(via_shim.value().NameAt(c), via_handle.value().NameAt(c));
    const Column& a = via_shim.value().ColumnAt(c);
    const Column& b = via_handle.value().ColumnAt(c);
    ASSERT_EQ(a.size(), b.size());
    for (size_t r = 0; r < a.size(); ++r) {
      EXPECT_TRUE(SameBits(a.AsDouble(r), b.AsDouble(r)))
          << "col " << c << " row " << r;
    }
  }

  // The dataset shim agrees with TransformToDataset.
  auto ds_shim = feataug.ApplyToDataset(plan.value(), bundle.training);
  auto ds_handle = fitted.value()->TransformToDataset(
      bundle.training, bundle.label_col, bundle.base_features, bundle.task);
  ASSERT_TRUE(ds_shim.ok());
  ASSERT_TRUE(ds_handle.ok());
  EXPECT_EQ(ds_shim.value().d, ds_handle.value().d);
  EXPECT_EQ(ds_shim.value().feature_names, ds_handle.value().feature_names);
  ASSERT_EQ(ds_shim.value().x.size(), ds_handle.value().x.size());
  for (size_t i = 0; i < ds_shim.value().x.size(); ++i) {
    EXPECT_TRUE(SameBits(ds_shim.value().x[i], ds_handle.value().x[i]));
  }
}

TEST(AugmenterTest, TransformDedupesCollidingFeatureNames) {
  DatasetBundle bundle = MakeTmall(SmallData());
  AugmentationPlan plan;
  plan.queries.push_back(bundle.golden_query);
  plan.queries.push_back(bundle.golden_query);
  plan.queries.back().agg = AggFunction::kSum;
  // Both plan names collide with each other AND with a batch column.
  plan.feature_names = {"age", "age"};
  auto fitted = MakeFittedAugmenter(plan, bundle.relevant);
  ASSERT_TRUE(fitted.ok()) << fitted.status().ToString();
  // Plan-level dedup first: "age", "age_2".
  EXPECT_EQ(fitted.value()->feature_names(),
            (std::vector<std::string>{"age", "age_2"}));

  ASSERT_TRUE(bundle.training.HasColumn("age"));
  auto transformed = fitted.value()->Transform(bundle.training);
  ASSERT_TRUE(transformed.ok()) << transformed.status().ToString();
  // Batch-level dedup: the plan's "age" collides with the batch column and
  // takes "age_2"; the plan's own "age_2" then suffixes off its base.
  EXPECT_EQ(transformed.value().num_columns(),
            bundle.training.num_columns() + 2);
  EXPECT_TRUE(transformed.value().HasColumn("age_2"));
  EXPECT_TRUE(transformed.value().HasColumn("age_2_2"));

  // Deterministic: a second call produces the same names.
  auto again = fitted.value()->Transform(bundle.training);
  ASSERT_TRUE(again.ok());
  for (size_t c = 0; c < transformed.value().num_columns(); ++c) {
    EXPECT_EQ(transformed.value().NameAt(c), again.value().NameAt(c));
  }
}

TEST(AugmenterTest, PlanRoundTripsIntoFittedAugmenter) {
  DatasetBundle bundle = MakeTmall(SmallData());
  AugmentationPlan plan;
  plan.queries.push_back(bundle.golden_query);
  AggQuery weak = bundle.golden_query;
  weak.predicates.clear();
  weak.agg = AggFunction::kAvg;
  plan.queries.push_back(weak);
  plan.feature_names = {"golden", "weak"};
  plan.valid_metrics = {0.9, 0.6};

  const std::string path = testing::TempDir() + "/augmenter_roundtrip.sql";
  ASSERT_TRUE(WriteAugmentationPlan(plan, "logs", bundle.relevant, path).ok());
  auto loaded = LoadFittedAugmenter(path, bundle.relevant);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value()->feature_names(),
            (std::vector<std::string>{"golden", "weak"}));

  auto direct = MakeFittedAugmenter(plan, bundle.relevant);
  ASSERT_TRUE(direct.ok());
  auto from_file = loaded.value()->ComputeFeatureColumns(bundle.training);
  auto from_plan = direct.value()->ComputeFeatureColumns(bundle.training);
  ASSERT_TRUE(from_file.ok());
  ASSERT_TRUE(from_plan.ok());
  ASSERT_EQ(from_file.value().size(), from_plan.value().size());
  for (size_t c = 0; c < from_file.value().size(); ++c) {
    ASSERT_EQ(from_file.value()[c].size(), from_plan.value()[c].size());
    for (size_t r = 0; r < from_file.value()[c].size(); ++r) {
      EXPECT_TRUE(SameBits(from_file.value()[c][r], from_plan.value()[c][r]))
          << "col " << c << " row " << r;
    }
  }
  std::remove(path.c_str());
}

TEST(AugmenterTest, TransformManyMatchesPerBatchTransforms) {
  DatasetBundle bundle = MakeTmall(SmallData());
  AugmentationPlan plan;
  plan.queries.push_back(bundle.golden_query);
  plan.feature_names = {"f"};
  auto fitted = MakeFittedAugmenter(plan, bundle.relevant);
  ASSERT_TRUE(fitted.ok());

  const Table head = bundle.training.Head(50);
  const std::vector<Table> batches = {bundle.training, head, bundle.training};
  auto many = fitted.value()->TransformMany(batches);
  ASSERT_TRUE(many.ok()) << many.status().ToString();
  ASSERT_EQ(many.value().size(), 3u);
  for (size_t b = 0; b < batches.size(); ++b) {
    auto single = fitted.value()->Transform(batches[b]);
    ASSERT_TRUE(single.ok());
    ASSERT_EQ(many.value()[b].num_columns(), single.value().num_columns());
    ASSERT_EQ(many.value()[b].num_rows(), single.value().num_rows());
    for (size_t c = 0; c < single.value().num_columns(); ++c) {
      const Column& a = many.value()[b].ColumnAt(c);
      const Column& s = single.value().ColumnAt(c);
      for (size_t r = 0; r < a.size(); ++r) {
        EXPECT_TRUE(SameBits(a.AsDouble(r), s.AsDouble(r)))
            << "batch " << b << " col " << c << " row " << r;
      }
    }
  }
}

TEST(AugmenterTest, DiagnosticsCarriedOntoHandle) {
  DatasetBundle bundle = MakeTmall(SmallData());
  auto augmenter = MakeFeatAugAugmenter(bundle.ToProblem(), FastOptions());
  auto fitted = augmenter->Fit();
  ASSERT_TRUE(fitted.ok());
  const FitDiagnostics& diag = fitted.value()->diagnostics();
  EXPECT_GT(diag.model_evals, 0u);
  EXPECT_GT(diag.proxy_evals, 0u);
  EXPECT_GT(diag.templates_considered, 0u);
  EXPECT_GT(diag.qti_seconds, 0.0);
}

}  // namespace
}  // namespace featlib

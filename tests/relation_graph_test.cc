#include "query/relation_graph.h"

#include <gtest/gtest.h>

namespace featlib {
namespace {

/// fact(user_id, product_id, price) -> products(product_id, department_id)
/// -> departments(department_id, dname); base(user_id, label).
struct GraphFixture {
  RelationGraph graph;

  GraphFixture() {
    Table base;
    EXPECT_TRUE(base.AddColumn("user_id", Column::FromInts(DataType::kInt64,
                                                           {0, 1, 2}))
                    .ok());
    EXPECT_TRUE(
        base.AddColumn("label", Column::FromInts(DataType::kInt64, {0, 1, 0})).ok());

    Table fact;
    EXPECT_TRUE(fact.AddColumn("user_id", Column::FromInts(DataType::kInt64,
                                                           {0, 0, 1, 2, 2}))
                    .ok());
    EXPECT_TRUE(fact.AddColumn("product_id", Column::FromInts(DataType::kInt64,
                                                              {10, 11, 10, 12, 99}))
                    .ok());
    EXPECT_TRUE(
        fact.AddColumn("price", Column::FromDoubles({1.5, 2.0, 3.0, 4.0, 5.0})).ok());

    Table products;
    EXPECT_TRUE(products.AddColumn("product_id", Column::FromInts(DataType::kInt64,
                                                                  {10, 11, 12}))
                    .ok());
    EXPECT_TRUE(products.AddColumn("department_id",
                                   Column::FromInts(DataType::kInt64, {100, 100, 200}))
                    .ok());
    // Column name colliding with the fact table.
    EXPECT_TRUE(products.AddColumn("price", Column::FromDoubles({9.0, 8.0, 7.0})).ok());

    Table departments;
    EXPECT_TRUE(departments.AddColumn("department_id",
                                      Column::FromInts(DataType::kInt64, {100, 200}))
                    .ok());
    EXPECT_TRUE(
        departments.AddColumn("dname", Column::FromStrings({"dairy", "toys"})).ok());

    EXPECT_TRUE(graph.AddTable("base", std::move(base)).ok());
    EXPECT_TRUE(graph.AddTable("fact", std::move(fact)).ok());
    EXPECT_TRUE(graph.AddTable("products", std::move(products)).ok());
    EXPECT_TRUE(graph.AddTable("departments", std::move(departments)).ok());
    EXPECT_TRUE(graph.AddFact("base", "fact", {"user_id"}).ok());
    EXPECT_TRUE(graph.AddLookup("fact", "products", {"product_id"}).ok());
    EXPECT_TRUE(graph.AddLookup("products", "departments", {"department_id"}).ok());
  }
};

TEST(RelationGraphTest, FlattenJoinsTheTwoHopChain) {
  GraphFixture fx;
  auto flat = fx.graph.FlattenRelevant("fact");
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();
  const Table& t = flat.value();
  // Row count preserved (left joins never drop fact rows).
  EXPECT_EQ(t.num_rows(), 5u);
  // Fact columns survive, dimension attributes are folded in, the colliding
  // `price` from products is prefixed, the second-hop name column arrives.
  ASSERT_TRUE(t.HasColumn("price"));
  ASSERT_TRUE(t.HasColumn("products_price"));
  ASSERT_TRUE(t.HasColumn("department_id"));
  ASSERT_TRUE(t.HasColumn("dname"));

  auto dname = t.GetColumn("dname");
  ASSERT_TRUE(dname.ok());
  // Row 0: product 10 -> dept 100 -> dairy. Row 3: product 12 -> toys.
  EXPECT_EQ(dname.value()->StringAt(0), "dairy");
  EXPECT_EQ(dname.value()->StringAt(3), "toys");
  // Row 4: product 99 unmatched -> NULL chain.
  EXPECT_TRUE(dname.value()->IsNull(4));
  auto pprice = t.GetColumn("products_price");
  ASSERT_TRUE(pprice.ok());
  EXPECT_DOUBLE_EQ(pprice.value()->DoubleAt(0), 9.0);
  EXPECT_TRUE(pprice.value()->IsNull(4));
}

TEST(RelationGraphTest, BuildScenariosReturnsFactsInDeclarationOrder) {
  GraphFixture fx;
  // Add a second fact table.
  Table clicks;
  ASSERT_TRUE(clicks
                  .AddColumn("user_id", Column::FromInts(DataType::kInt64, {0, 1}))
                  .ok());
  ASSERT_TRUE(clicks.AddColumn("n", Column::FromInts(DataType::kInt64, {7, 8})).ok());
  ASSERT_TRUE(fx.graph.AddTable("clicks", std::move(clicks)).ok());
  ASSERT_TRUE(fx.graph.AddFact("base", "clicks", {"user_id"}).ok());

  auto scenarios = fx.graph.BuildScenarios("base");
  ASSERT_TRUE(scenarios.ok()) << scenarios.status().ToString();
  ASSERT_EQ(scenarios.value().size(), 2u);
  EXPECT_EQ(scenarios.value()[0].name, "fact");
  EXPECT_EQ(scenarios.value()[1].name, "clicks");
  EXPECT_EQ(scenarios.value()[0].fk_attrs, (std::vector<std::string>{"user_id"}));
  EXPECT_EQ(scenarios.value()[0].relevant.num_rows(), 5u);
  EXPECT_EQ(scenarios.value()[1].relevant.num_rows(), 2u);
}

TEST(RelationGraphTest, NoFactsForBaseIsNotFound) {
  GraphFixture fx;
  auto scenarios = fx.graph.BuildScenarios("products");
  ASSERT_FALSE(scenarios.ok());
}

TEST(RelationGraphTest, DiamondJoinsDimensionOnce) {
  // fact -> a -> shared and fact -> b -> shared: `shared` must fold in once.
  RelationGraph graph;
  Table fact, a, b, shared;
  ASSERT_TRUE(fact.AddColumn("ka", Column::FromInts(DataType::kInt64, {1})).ok());
  ASSERT_TRUE(fact.AddColumn("kb", Column::FromInts(DataType::kInt64, {2})).ok());
  ASSERT_TRUE(a.AddColumn("ka", Column::FromInts(DataType::kInt64, {1})).ok());
  ASSERT_TRUE(a.AddColumn("ks", Column::FromInts(DataType::kInt64, {5})).ok());
  ASSERT_TRUE(b.AddColumn("kb", Column::FromInts(DataType::kInt64, {2})).ok());
  ASSERT_TRUE(b.AddColumn("ks", Column::FromInts(DataType::kInt64, {5})).ok());
  ASSERT_TRUE(b.AddColumn("kb_payload", Column::FromDoubles({0.5})).ok());
  ASSERT_TRUE(shared.AddColumn("ks", Column::FromInts(DataType::kInt64, {5})).ok());
  ASSERT_TRUE(shared.AddColumn("payload", Column::FromDoubles({42.0})).ok());
  ASSERT_TRUE(graph.AddTable("fact", std::move(fact)).ok());
  ASSERT_TRUE(graph.AddTable("a", std::move(a)).ok());
  ASSERT_TRUE(graph.AddTable("b", std::move(b)).ok());
  ASSERT_TRUE(graph.AddTable("shared", std::move(shared)).ok());
  ASSERT_TRUE(graph.AddLookup("fact", "a", {"ka"}).ok());
  ASSERT_TRUE(graph.AddLookup("fact", "b", {"kb"}).ok());
  ASSERT_TRUE(graph.AddLookup("a", "shared", {"ks"}).ok());
  ASSERT_TRUE(graph.AddLookup("b", "shared", {"ks"}).ok());

  auto flat = graph.FlattenRelevant("fact");
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();
  size_t payload_columns = 0;
  for (size_t c = 0; c < flat.value().num_columns(); ++c) {
    if (flat.value().NameAt(c).find("payload") != std::string::npos) {
      ++payload_columns;
    }
  }
  // One from `b` (kb_payload) and exactly one from `shared`.
  EXPECT_EQ(payload_columns, 2u);
}

TEST(RelationGraphTest, CycleBackToFactIsAnError) {
  RelationGraph graph;
  Table fact, dim;
  ASSERT_TRUE(fact.AddColumn("k", Column::FromInts(DataType::kInt64, {1})).ok());
  ASSERT_TRUE(fact.AddColumn("j", Column::FromInts(DataType::kInt64, {9})).ok());
  ASSERT_TRUE(dim.AddColumn("k", Column::FromInts(DataType::kInt64, {1})).ok());
  ASSERT_TRUE(dim.AddColumn("j", Column::FromInts(DataType::kInt64, {9})).ok());
  ASSERT_TRUE(graph.AddTable("fact", std::move(fact)).ok());
  ASSERT_TRUE(graph.AddTable("dim", std::move(dim)).ok());
  ASSERT_TRUE(graph.AddLookup("fact", "dim", {"k"}).ok());
  ASSERT_TRUE(graph.AddLookup("dim", "fact", {"j"}).ok());
  auto flat = graph.FlattenRelevant("fact");
  ASSERT_FALSE(flat.ok());
  EXPECT_NE(flat.status().ToString().find("cycle"), std::string::npos);
}

TEST(RelationGraphTest, RegistrationErrors) {
  RelationGraph graph;
  Table t;
  ASSERT_TRUE(t.AddColumn("k", Column::FromInts(DataType::kInt64, {1})).ok());
  EXPECT_FALSE(graph.AddTable("", t).ok());
  ASSERT_TRUE(graph.AddTable("t", t).ok());
  EXPECT_FALSE(graph.AddTable("t", t).ok());  // duplicate
  EXPECT_FALSE(graph.AddLookup("t", "missing", {"k"}).ok());
  EXPECT_FALSE(graph.AddLookup("t", "t", {"k"}).ok());  // self-loop
  Table other;
  ASSERT_TRUE(other.AddColumn("x", Column::FromInts(DataType::kInt64, {1})).ok());
  ASSERT_TRUE(graph.AddTable("other", std::move(other)).ok());
  EXPECT_FALSE(graph.AddLookup("t", "other", {"k"}).ok());   // key missing on `to`
  EXPECT_FALSE(graph.AddLookup("t", "other", {}).ok());      // empty keys
  EXPECT_FALSE(graph.AddFact("t", "other", {"k"}).ok());     // FK missing on fact
  EXPECT_FALSE(graph.AddFact("missing", "t", {"k"}).ok());   // unknown base
}

TEST(RelationGraphTest, DuplicateEdgesRejected) {
  GraphFixture fx;
  EXPECT_FALSE(fx.graph.AddLookup("fact", "products", {"product_id"}).ok());
  EXPECT_FALSE(fx.graph.AddFact("base", "fact", {"user_id"}).ok());
}

TEST(RelationGraphTest, ManyToManyDecomposesThroughBridge) {
  // base 1-* bridge *-1 far: declaring the bridge as fact and far as lookup
  // implements the paper's many-to-many future-work reduction.
  RelationGraph graph;
  Table base, bridge, far;
  ASSERT_TRUE(base.AddColumn("uid", Column::FromInts(DataType::kInt64, {0, 1})).ok());
  ASSERT_TRUE(base.AddColumn("label", Column::FromInts(DataType::kInt64, {0, 1})).ok());
  ASSERT_TRUE(
      bridge.AddColumn("uid", Column::FromInts(DataType::kInt64, {0, 0, 1})).ok());
  ASSERT_TRUE(
      bridge.AddColumn("gid", Column::FromInts(DataType::kInt64, {7, 8, 7})).ok());
  ASSERT_TRUE(far.AddColumn("gid", Column::FromInts(DataType::kInt64, {7, 8})).ok());
  ASSERT_TRUE(far.AddColumn("size", Column::FromDoubles({10.0, 20.0})).ok());
  ASSERT_TRUE(graph.AddTable("base", std::move(base)).ok());
  ASSERT_TRUE(graph.AddTable("bridge", std::move(bridge)).ok());
  ASSERT_TRUE(graph.AddTable("far", std::move(far)).ok());
  ASSERT_TRUE(graph.AddFact("base", "bridge", {"uid"}).ok());
  ASSERT_TRUE(graph.AddLookup("bridge", "far", {"gid"}).ok());

  auto scenarios = graph.BuildScenarios("base");
  ASSERT_TRUE(scenarios.ok());
  ASSERT_EQ(scenarios.value().size(), 1u);
  const Table& rel = scenarios.value()[0].relevant;
  EXPECT_EQ(rel.num_rows(), 3u);
  ASSERT_TRUE(rel.HasColumn("size"));
  auto size = rel.GetColumn("size");
  ASSERT_TRUE(size.ok());
  EXPECT_DOUBLE_EQ(size.value()->DoubleAt(0), 10.0);
  EXPECT_DOUBLE_EQ(size.value()->DoubleAt(1), 20.0);
  EXPECT_DOUBLE_EQ(size.value()->DoubleAt(2), 10.0);
}

}  // namespace
}  // namespace featlib

/// \file artifact_store_test.cc
/// \brief Pins the ArtifactStore contract: build-then-publish ownership
/// (publish-once, stable pointers), per-shard byte accounting, and
/// epoch-pinned eviction.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "query/artifact_store.h"
#include "table/table.h"

namespace featlib {
namespace {

Bitset MakeBits(size_t n, size_t stride) {
  Bitset bits(n);
  for (size_t i = 0; i < n; i += stride) bits.Set(i);
  return bits;
}

Table MakeRelevant() {
  Table t;
  EXPECT_TRUE(t.AddColumn("k", Column::FromDoubles({1.0, 1.0, 2.0})).ok());
  EXPECT_TRUE(t.AddColumn("v", Column::FromDoubles({3.0, 4.0, 5.0})).ok());
  return t;
}

TEST(ArtifactStoreTest, PublishThenFindReturnsTheSamePointer) {
  ArtifactStore store;
  store.BeginEpoch();
  EXPECT_EQ(store.FindMask("p1"), nullptr);
  const Bitset* published = store.PublishMask("p1", MakeBits(256, 3),
                                              /*is_conjunction=*/false);
  ASSERT_NE(published, nullptr);
  // The store owns the artifact; lookups return the same stable pointer
  // (the fan-out contract: raw pointers stay valid across later publishes).
  EXPECT_EQ(store.FindMask("p1"), published);
  for (int i = 0; i < 64; ++i) {
    store.PublishMask("filler" + std::to_string(i), MakeBits(256, 2), false);
  }
  EXPECT_EQ(store.FindMask("p1"), published);
  EXPECT_EQ(store.num_mask_builds(), 65u);
  EXPECT_EQ(store.num_conjunction_builds(), 0u);
}

TEST(ArtifactStoreTest, GroupArtifactCarriesTrainMap) {
  ArtifactStore store;
  store.BeginEpoch();
  const Table relevant = MakeRelevant();
  auto index = GroupIndex::Build(relevant, {"k"});
  ASSERT_TRUE(index.ok());
  ArtifactStore::GroupArtifact* g =
      store.PublishGroup("k", std::move(index).ValueOrDie());
  ASSERT_NE(g, nullptr);
  EXPECT_FALSE(g->has_train_map);
  store.PublishTrainMap(g, {0u, 1u});
  EXPECT_TRUE(g->has_train_map);
  EXPECT_EQ(store.FindGroup("k"), g);
  EXPECT_EQ(store.FindGroup("k")->train_map.size(), 2u);
  EXPECT_EQ(store.num_group_builds(), 1u);
  EXPECT_EQ(store.num_train_map_builds(), 1u);
}

TEST(ArtifactStoreTest, MaskShardEvictsOnlyUnpinnedEntries) {
  ArtifactStore store;
  const size_t entry_bytes = MakeBits(1024, 2).SizeBytes();
  // Cap fits exactly two entries.
  store.set_mask_cache_cap_bytes(2 * entry_bytes);

  store.BeginEpoch();  // epoch 1
  store.PublishMask("old1", MakeBits(1024, 2), false);
  store.PublishMask("old2", MakeBits(1024, 3), false);
  EXPECT_EQ(store.num_evictions(), 0u);
  EXPECT_EQ(store.mask_cache_bytes(), 2 * entry_bytes);

  store.BeginEpoch();  // epoch 2: old1/old2 now unpinned
  // Re-finding old2 pins it for the new epoch.
  ASSERT_NE(store.FindMask("old2"), nullptr);
  const Bitset* fresh = store.PublishMask("new1", MakeBits(1024, 5), false);
  // Over cap: old1 (unpinned) is evicted; old2 (pinned) and new1 survive.
  EXPECT_EQ(store.num_evictions(), 1u);
  EXPECT_EQ(store.FindMask("old1"), nullptr);
  EXPECT_NE(store.FindMask("old2"), nullptr);
  EXPECT_EQ(store.FindMask("new1"), fresh);
  EXPECT_EQ(store.mask_cache_bytes(), 2 * entry_bytes);
}

TEST(ArtifactStoreTest, PinnedEntriesMayExceedTheCapMidBatch) {
  ArtifactStore store;
  store.set_mask_cache_cap_bytes(1);  // nothing fits
  store.BeginEpoch();
  for (int i = 0; i < 8; ++i) {
    ASSERT_NE(store.PublishMask("p" + std::to_string(i), MakeBits(512, 2),
                                false),
              nullptr);
  }
  // All entries belong to the current epoch: pinned, zero evictions, the
  // shard temporarily exceeds its cap rather than thrash the batch.
  EXPECT_EQ(store.num_evictions(), 0u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_NE(store.FindMask("p" + std::to_string(i)), nullptr) << i;
  }

  store.BeginEpoch();
  // First publish of the new epoch evicts every now-unpinned entry.
  store.PublishMask("q", MakeBits(512, 2), false);
  EXPECT_EQ(store.num_evictions(), 8u);
}

TEST(ArtifactStoreTest, MatShardTracksBytesAndEpochs) {
  ArtifactStore store;
  store.BeginEpoch();
  MaterializedValues m;
  m.present = {2u, 1u};
  m.offsets = {0u, 2u, 3u};
  m.flat = {1.0, 2.0, 3.0};
  const size_t bytes = m.SizeBytes();
  const MaterializedValues* stored = store.PublishMaterialized("b1", std::move(m));
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(store.mat_cache_bytes(), bytes);
  EXPECT_EQ(store.FindMaterialized("b1"), stored);
  EXPECT_EQ(store.FindMaterialized("absent"), nullptr);
  EXPECT_EQ(store.num_materializations(), 1u);

  // A tiny cap evicts the unpinned entry on the next epoch's publish.
  store.set_mat_cache_cap_bytes(1);
  store.BeginEpoch();
  MaterializedValues m2;
  m2.present = {1u};
  m2.offsets = {0u, 1u};
  m2.flat = {9.0};
  store.PublishMaterialized("b2", std::move(m2));
  EXPECT_EQ(store.FindMaterialized("b1"), nullptr);
  EXPECT_EQ(store.num_evictions(), 1u);
}

TEST(ArtifactStoreTest, ViewShardIsNeverEvicted) {
  ArtifactStore store;
  store.BeginEpoch();
  const std::vector<double>* v = store.PublishView("attr", {1.0, 2.0});
  store.BeginEpoch();
  store.BeginEpoch();
  EXPECT_EQ(store.FindView("attr"), v);
  EXPECT_EQ(store.num_view_builds(), 1u);
}

}  // namespace
}  // namespace featlib

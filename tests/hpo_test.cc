#include <gtest/gtest.h>

#include <cmath>

#include "hpo/random_search.h"
#include "hpo/tpe.h"

namespace featlib {
namespace {

TEST(SpaceTest, DomainConstruction) {
  auto cat = ParamDomain::Categorical("c", 4);
  EXPECT_EQ(cat.kind, ParamDomain::Kind::kCategorical);
  EXPECT_EQ(cat.n_choices, 4);
  auto num = ParamDomain::Numeric("n", -1.0, 1.0);
  EXPECT_EQ(num.kind, ParamDomain::Kind::kNumeric);
  auto opt = ParamDomain::OptionalNumeric("o", 0.0, 10.0, true);
  EXPECT_EQ(opt.kind, ParamDomain::Kind::kOptionalNumeric);
  EXPECT_TRUE(opt.integer);
}

TEST(SpaceTest, SampleRespectsDomains) {
  SearchSpace space;
  space.Add(ParamDomain::Categorical("c", 3));
  space.Add(ParamDomain::Numeric("n", 5.0, 6.0));
  space.Add(ParamDomain::OptionalNumeric("o", 0.0, 1.0));
  Rng rng(1);
  int none_seen = 0;
  for (int i = 0; i < 200; ++i) {
    const ParamVector v = space.Sample(&rng);
    ASSERT_TRUE(space.Validate(v).ok());
    EXPECT_GE(v[0], 0.0);
    EXPECT_LE(v[0], 2.0);
    EXPECT_GE(v[1], 5.0);
    EXPECT_LE(v[1], 6.0);
    if (IsNone(v[2])) ++none_seen;
  }
  // Optional dims take None roughly half the time.
  EXPECT_GT(none_seen, 50);
  EXPECT_LT(none_seen, 150);
}

TEST(SpaceTest, IntegerSnapping) {
  SearchSpace space;
  space.Add(ParamDomain::Numeric("i", 0.0, 10.0, true));
  Rng rng(2);
  for (int k = 0; k < 50; ++k) {
    const ParamVector v = space.Sample(&rng);
    EXPECT_DOUBLE_EQ(v[0], std::round(v[0]));
  }
}

TEST(SpaceTest, ValidateRejectsBadVectors) {
  SearchSpace space;
  space.Add(ParamDomain::Categorical("c", 3));
  space.Add(ParamDomain::Numeric("n", 0.0, 1.0));
  EXPECT_FALSE(space.Validate({0.0}).ok());            // wrong arity
  EXPECT_FALSE(space.Validate({5.0, 0.5}).ok());       // out-of-range category
  EXPECT_FALSE(space.Validate({1.0, 2.0}).ok());       // numeric out of range
  EXPECT_FALSE(space.Validate({NoneValue(), 0.5}).ok());  // None on required dim
  EXPECT_TRUE(space.Validate({2.0, 1.0}).ok());
}

TEST(SpaceTest, ClipBehaviour) {
  auto cat = ParamDomain::Categorical("c", 3);
  EXPECT_DOUBLE_EQ(cat.Clip(7.0), 2.0);
  EXPECT_DOUBLE_EQ(cat.Clip(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(cat.Clip(NoneValue()), 0.0);
  auto num = ParamDomain::Numeric("n", 0.0, 1.0);
  EXPECT_DOUBLE_EQ(num.Clip(5.0), 1.0);
  EXPECT_DOUBLE_EQ(num.Clip(NoneValue()), 0.5);
  auto opt = ParamDomain::OptionalNumeric("o", 0.0, 1.0);
  EXPECT_TRUE(IsNone(opt.Clip(NoneValue())));
}

double Quadratic(const ParamVector& v) {
  // Minimum at (0.3, 0.7); categorical dim adds a penalty except choice 2.
  const double a = v[1] - 0.3;
  const double b = v[2] - 0.7;
  const double cat_penalty = v[0] == 2.0 ? 0.0 : 0.5;
  return a * a + b * b + cat_penalty;
}

SearchSpace QuadraticSpace() {
  SearchSpace space;
  space.Add(ParamDomain::Categorical("c", 4));
  space.Add(ParamDomain::Numeric("x", 0.0, 1.0));
  space.Add(ParamDomain::Numeric("y", 0.0, 1.0));
  return space;
}

double RunOptimizer(Optimizer* optimizer, int iters) {
  double best = 1e300;
  for (int i = 0; i < iters; ++i) {
    const ParamVector v = optimizer->Suggest();
    const double loss = Quadratic(v);
    optimizer->Observe(v, loss);
    best = std::min(best, loss);
  }
  return best;
}

class TpeVsRandomTest : public testing::TestWithParam<uint64_t> {};

TEST_P(TpeVsRandomTest, TpeAtLeastMatchesRandomOnQuadratic) {
  const uint64_t seed = GetParam();
  TpeOptions tpe_options;
  tpe_options.seed = seed;
  Tpe tpe(QuadraticSpace(), tpe_options);
  RandomSearch random(QuadraticSpace(), seed);
  const double tpe_best = RunOptimizer(&tpe, 80);
  const double random_best = RunOptimizer(&random, 80);
  // TPE should essentially never lose badly to random on a smooth bowl.
  EXPECT_LE(tpe_best, random_best + 0.05) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TpeVsRandomTest,
                         testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(TpeTest, ConvergesToGoodRegion) {
  // Across several seeds, the average best loss should be small and the
  // categorical penalty avoided most of the time.
  double total = 0.0;
  int good_cat = 0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    TpeOptions options;
    options.seed = seed;
    Tpe tpe(QuadraticSpace(), options);
    total += RunOptimizer(&tpe, 100);
    if (tpe.best()->params[0] == 2.0) ++good_cat;
  }
  EXPECT_LT(total / 5.0, 0.08);
  EXPECT_GE(good_cat, 4);
}

TEST(TpeTest, HistoryAndBestTracked) {
  TpeOptions options;
  Tpe tpe(QuadraticSpace(), options);
  EXPECT_EQ(tpe.best(), nullptr);
  RunOptimizer(&tpe, 20);
  EXPECT_EQ(tpe.history().size(), 20u);
  const Trial* best = tpe.best();
  ASSERT_NE(best, nullptr);
  for (const Trial& t : tpe.history()) EXPECT_LE(best->loss, t.loss);
}

TEST(TpeTest, WarmStartSeedsSurrogate) {
  // Give TPE oracle-quality warm trials; its first post-warm-up suggestions
  // should concentrate near the optimum faster than cold TPE.
  const int kBudget = 15;
  TpeOptions options;
  options.seed = 9;
  options.n_startup = 5;

  Tpe cold(QuadraticSpace(), options);
  const double cold_best = RunOptimizer(&cold, kBudget);

  Tpe warm(QuadraticSpace(), options);
  std::vector<Trial> prior;
  for (int i = 0; i < 30; ++i) {
    const double x = 0.3 + 0.01 * i / 30.0;
    prior.push_back(Trial{{2.0, x, 0.7}, Quadratic({2.0, x, 0.7})});
    prior.push_back(Trial{{0.0, 0.9, 0.1}, Quadratic({0.0, 0.9, 0.1})});
  }
  warm.WarmStart(prior);
  const double warm_best = RunOptimizer(&warm, kBudget);
  EXPECT_LE(warm_best, cold_best + 1e-9);
}

TEST(TpeTest, OptionalDimsLearnNonePreference) {
  // Loss is low only when the optional dim IS None: TPE should propose None
  // increasingly often.
  SearchSpace space;
  space.Add(ParamDomain::OptionalNumeric("o", 0.0, 1.0));
  TpeOptions options;
  options.seed = 4;
  options.n_startup = 8;
  Tpe tpe(space, options);
  for (int i = 0; i < 60; ++i) {
    const ParamVector v = tpe.Suggest();
    tpe.Observe(v, IsNone(v[0]) ? 0.0 : 1.0);
  }
  int none_late = 0;
  const auto& history = tpe.history();
  for (size_t i = history.size() - 20; i < history.size(); ++i) {
    if (IsNone(history[i].params[0])) ++none_late;
  }
  EXPECT_GE(none_late, 12);
}

TEST(TpeTest, DeterministicBySeed) {
  TpeOptions options;
  options.seed = 11;
  Tpe a(QuadraticSpace(), options);
  Tpe b(QuadraticSpace(), options);
  for (int i = 0; i < 30; ++i) {
    const ParamVector va = a.Suggest();
    const ParamVector vb = b.Suggest();
    for (size_t d = 0; d < va.size(); ++d) {
      if (IsNone(va[d])) {
        EXPECT_TRUE(IsNone(vb[d]));
      } else {
        EXPECT_DOUBLE_EQ(va[d], vb[d]);
      }
    }
    a.Observe(va, Quadratic(va));
    b.Observe(vb, Quadratic(vb));
  }
}

TEST(RandomSearchTest, RecordsHistory) {
  RandomSearch rs(QuadraticSpace(), 3);
  RunOptimizer(&rs, 10);
  EXPECT_EQ(rs.history().size(), 10u);
  EXPECT_NE(rs.best(), nullptr);
}

// --- SuggestBatch ------------------------------------------------------------

void ExpectSameVector(const ParamVector& a, const ParamVector& b,
                      const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (size_t d = 0; d < a.size(); ++d) {
    if (IsNone(a[d])) {
      EXPECT_TRUE(IsNone(b[d])) << context << " dim " << d;
    } else {
      EXPECT_DOUBLE_EQ(a[d], b[d]) << context << " dim " << d;
    }
  }
}

// The batch=1 contract: a SuggestBatch(1)/Observe loop reproduces the
// sequential Suggest/Observe trajectory seed-for-seed (same proposals, same
// RNG consumption). Pinned for TPE and RandomSearch here, SMAC in
// smac_test.cc.
TEST(SuggestBatchTest, BatchOfOneMatchesSequentialTrajectoryTpe) {
  TpeOptions options;
  options.seed = 13;
  options.n_startup = 6;
  Tpe sequential(QuadraticSpace(), options);
  Tpe batched(QuadraticSpace(), options);
  for (int i = 0; i < 40; ++i) {
    const ParamVector a = sequential.Suggest();
    const std::vector<ParamVector> pool = batched.SuggestBatch(1);
    ASSERT_EQ(pool.size(), 1u);
    ExpectSameVector(a, pool[0], "iter " + std::to_string(i));
    sequential.Observe(a, Quadratic(a));
    batched.Observe(pool[0], Quadratic(pool[0]));
  }
}

TEST(SuggestBatchTest, BatchOfOneMatchesSequentialTrajectoryRandom) {
  RandomSearch sequential(QuadraticSpace(), 7);
  RandomSearch batched(QuadraticSpace(), 7);
  for (int i = 0; i < 25; ++i) {
    const ParamVector a = sequential.Suggest();
    const std::vector<ParamVector> pool = batched.SuggestBatch(1);
    ASSERT_EQ(pool.size(), 1u);
    ExpectSameVector(a, pool[0], "iter " + std::to_string(i));
    sequential.Observe(a, Quadratic(a));
    batched.Observe(pool[0], Quadratic(pool[0]));
  }
}

TEST(SuggestBatchTest, TpeBatchIsDeterministicAndDistinct) {
  TpeOptions options;
  options.seed = 21;
  options.n_startup = 5;
  Tpe a(QuadraticSpace(), options);
  Tpe b(QuadraticSpace(), options);
  Rng rng(3);
  const SearchSpace space = QuadraticSpace();
  for (int i = 0; i < 30; ++i) {
    const ParamVector v = space.Sample(&rng);
    const double loss = Quadratic(v);
    a.Observe(v, loss);
    b.Observe(v, loss);
  }
  const std::vector<ParamVector> pool_a = a.SuggestBatch(6);
  const std::vector<ParamVector> pool_b = b.SuggestBatch(6);
  ASSERT_EQ(pool_a.size(), 6u);
  ASSERT_EQ(pool_b.size(), 6u);
  for (size_t i = 0; i < pool_a.size(); ++i) {
    ExpectSameVector(pool_a[i], pool_b[i], "slot " + std::to_string(i));
    ASSERT_TRUE(space.Validate(pool_a[i]).ok());
  }
  // Exploit slots are top-n *distinct* EI candidates, and the numeric dims
  // make random collisions measure-zero: the pool is pairwise distinct.
  for (size_t i = 0; i < pool_a.size(); ++i) {
    for (size_t j = i + 1; j < pool_a.size(); ++j) {
      EXPECT_FALSE(SameParamVector(pool_a[i], pool_a[j]))
          << "slots " << i << "," << j;
    }
  }
}

TEST(SuggestBatchTest, DefaultBatchFallsBackToSequentialSuggests) {
  // The base-class default (n sequential Suggests) must match a loop of
  // Suggest() calls — exercised through RandomSearch, which inherits it,
  // and pinned here for the observable contract.
  RandomSearch batched(QuadraticSpace(), 5);
  RandomSearch looped(QuadraticSpace(), 5);
  const std::vector<ParamVector> pool = batched.SuggestBatch(4);
  ASSERT_EQ(pool.size(), 4u);
  for (size_t i = 0; i < pool.size(); ++i) {
    ExpectSameVector(looped.Suggest(), pool[i], "slot " + std::to_string(i));
  }
}

TEST(SuggestBatchTest, TpeBatchInterleavesWithObservations) {
  // A batched optimize loop still converges: observe each pool, repeat.
  TpeOptions options;
  options.seed = 31;
  Tpe tpe(QuadraticSpace(), options);
  double best = 1e300;
  for (int round = 0; round < 20; ++round) {
    const std::vector<ParamVector> pool = tpe.SuggestBatch(5);
    for (const ParamVector& v : pool) {
      const double loss = Quadratic(v);
      tpe.Observe(v, loss);
      best = std::min(best, loss);
    }
  }
  EXPECT_EQ(tpe.history().size(), 100u);
  EXPECT_LT(best, 0.15);
}

}  // namespace
}  // namespace featlib

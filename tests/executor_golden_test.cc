/// \file executor_golden_test.cc
/// \brief Equivalence tests of the planner execution path against the
/// recorded-golden oracle.
///
/// Historically these tests compared the batched executor bit-for-bit
/// against the legacy per-candidate path (ComputeFeatureColumnLegacy /
/// ExecuteAggQueryLegacy). That path is retired; its validated outputs are
/// frozen in tests/golden/ (regenerated via scripts/regen_goldens.sh), so
/// the planner must still reproduce them byte for byte — including which
/// trials error out.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <optional>

#include "common/rng.h"
#include "golden_util.h"
#include "query/executor.h"
#include "query/group_index.h"
#include "query/query_planner.h"

namespace featlib {
namespace {

using golden::SameBits;

void ExpectColumnsBitIdentical(const std::vector<double>& actual,
                               const std::vector<double>& expected,
                               const std::string& context) {
  ASSERT_EQ(actual.size(), expected.size()) << context;
  for (size_t i = 0; i < actual.size(); ++i) {
    ASSERT_TRUE(SameBits(actual[i], expected[i]))
        << context << " row " << i << ": actual=" << actual[i]
        << " expected=" << expected[i];
  }
}

// Random relevant table with a compound (int, string) key, a double key
// column holding both signed zeros, NULL-heavy values and predicate
// attributes; random training table keyed over a partially-overlapping
// domain (some entities never occur in R). The Rng consumption order is
// part of the golden contract: changing it generates different tables, so
// the fixtures must be regenerated with it.
struct RandomPair {
  Table relevant;
  Table training;
};

RandomPair MakeRandomPair(Rng* rng, bool null_heavy) {
  const double null_p = null_heavy ? 0.45 : 0.1;
  const char* cities[] = {"ber", "nyc", "sfo", "tok"};
  const char* depts[] = {"a", "b", "c"};

  RandomPair out;
  const size_t n_rel = 60 + rng->UniformInt(140);
  Column uid(DataType::kInt64), city(DataType::kString), zkey(DataType::kDouble);
  Column value(DataType::kDouble), level(DataType::kInt64), dept(DataType::kString);
  for (size_t i = 0; i < n_rel; ++i) {
    if (rng->Bernoulli(0.05)) {
      uid.AppendNull();
    } else {
      uid.AppendInt(static_cast<int64_t>(rng->UniformInt(10)));
    }
    city.AppendString(cities[rng->UniformInt(4)]);
    // Mixes 0.0 and -0.0 into a double-typed join key.
    const int zi = static_cast<int>(rng->UniformInt(4));
    zkey.AppendDouble(zi == 0 ? 0.0 : (zi == 1 ? -0.0 : static_cast<double>(zi)));
    if (rng->Bernoulli(null_p)) {
      value.AppendNull();
    } else {
      value.AppendDouble(rng->Normal(0, 10));
    }
    level.AppendInt(static_cast<int64_t>(rng->UniformInt(5)));
    dept.AppendString(depts[rng->UniformInt(3)]);
  }
  EXPECT_TRUE(out.relevant.AddColumn("uid", std::move(uid)).ok());
  EXPECT_TRUE(out.relevant.AddColumn("city", std::move(city)).ok());
  EXPECT_TRUE(out.relevant.AddColumn("zkey", std::move(zkey)).ok());
  EXPECT_TRUE(out.relevant.AddColumn("value", std::move(value)).ok());
  EXPECT_TRUE(out.relevant.AddColumn("level", std::move(level)).ok());
  EXPECT_TRUE(out.relevant.AddColumn("dept", std::move(dept)).ok());

  const char* d_cities[] = {"ber", "nyc", "sfo", "tok", "lis"};  // lis not in R
  const size_t n_train = 30 + rng->UniformInt(40);
  Column d_uid(DataType::kInt64), d_city(DataType::kString), d_zkey(DataType::kDouble);
  for (size_t i = 0; i < n_train; ++i) {
    if (rng->Bernoulli(0.05)) {
      d_uid.AppendNull();
    } else {
      d_uid.AppendInt(static_cast<int64_t>(rng->UniformInt(12)));  // 10,11 miss
    }
    d_city.AppendString(d_cities[rng->UniformInt(5)]);
    const int zi = static_cast<int>(rng->UniformInt(4));
    d_zkey.AppendDouble(zi == 0 ? 0.0 : (zi == 1 ? -0.0 : static_cast<double>(zi)));
  }
  EXPECT_TRUE(out.training.AddColumn("uid", std::move(d_uid)).ok());
  EXPECT_TRUE(out.training.AddColumn("city", std::move(d_city)).ok());
  EXPECT_TRUE(out.training.AddColumn("zkey", std::move(d_zkey)).ok());
  return out;
}

AggQuery MakeRandomQuery(Rng* rng) {
  AggQuery q;
  auto fns = AllAggFunctions();
  q.agg = fns[rng->UniformInt(fns.size())];
  // Categorical agg attribute for the functions defined on it, half the time.
  if (SupportsCategorical(q.agg) && rng->Bernoulli(0.3)) {
    q.agg_attr = "dept";
  } else {
    q.agg_attr = "value";
  }
  switch (rng->UniformInt(4)) {
    case 0:
      q.group_keys = {"uid"};
      break;
    case 1:
      q.group_keys = {"uid", "city"};
      break;
    case 2:
      q.group_keys = {"zkey"};
      break;
    default:
      q.group_keys = {"city", "zkey"};
      break;
  }
  if (rng->Bernoulli(0.5)) {
    const char* depts[] = {"a", "b", "c", "zz"};  // zz: empty selection
    q.predicates.push_back(
        Predicate::Equals("dept", Value::Str(depts[rng->UniformInt(4)])));
  }
  if (rng->Bernoulli(0.5)) {
    q.predicates.push_back(Predicate::Range(
        "level", rng->Bernoulli(0.5) ? std::optional<double>(1.0) : std::nullopt,
        static_cast<double>(rng->UniformInt(5))));
  }
  return q;
}

// --- Feature columns pinned byte-for-byte to the recorded goldens -----------

TEST(ExecutorGoldenTest, FeatureColumnsMatchRecordedGoldens) {
  golden::GoldenFile goldens("feature_columns.golden");
  Rng rng(2024);
  QueryPlanner planner;  // shared across trials: exercises artifact reuse
  RandomPair tables = MakeRandomPair(&rng, /*null_heavy=*/false);
  for (int trial = 0; trial < 200; ++trial) {
    if (trial == 100) {
      // Fresh NULL-heavy tables (and a fresh planner: new table contents).
      tables = MakeRandomPair(&rng, /*null_heavy=*/true);
      planner = QueryPlanner();
    }
    AggQuery q = MakeRandomQuery(&rng);
    auto column = planner.ComputeFeatureColumn(q, tables.training, tables.relevant);
    const std::string key = "trial" + std::to_string(trial);
    // Which trials fail is part of the recorded contract.
    goldens.Check(key, column.ok() ? golden::EncodeColumn(column.value())
                                   : std::string("ERR"));
  }
}

TEST(ExecutorGoldenTest, ExecuteAggQueryMatchesRecordedGoldens) {
  golden::GoldenFile goldens("agg_query_tables.golden");
  Rng rng(77);
  QueryPlanner planner;
  RandomPair tables = MakeRandomPair(&rng, /*null_heavy=*/true);
  for (int trial = 0; trial < 120; ++trial) {
    AggQuery q = MakeRandomQuery(&rng);
    auto grouped = planner.ExecuteAggQuery(q, tables.relevant);
    const std::string key = "trial" + std::to_string(trial);
    goldens.Check(key, grouped.ok() ? golden::EncodeTable(grouped.value())
                                    : std::string("ERR"));
  }
}

// --- Batched vs per-candidate self-consistency ------------------------------

TEST(ExecutorGoldenTest, EvaluateManyMatchesPerCandidateCalls) {
  Rng rng(5);
  RandomPair tables = MakeRandomPair(&rng, /*null_heavy=*/false);
  std::vector<AggQuery> queries;
  for (int i = 0; i < 24; ++i) queries.push_back(MakeRandomQuery(&rng));

  QueryPlanner batch;
  auto many = batch.EvaluateMany(queries, tables.training, tables.relevant);
  ASSERT_TRUE(many.ok()) << many.status().ToString();
  ASSERT_EQ(many.value().size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto single =
        ComputeFeatureColumn(queries[i], tables.training, tables.relevant);
    ASSERT_TRUE(single.ok());
    ExpectColumnsBitIdentical(many.value()[i], single.value(),
                              queries[i].CacheKey());
  }
  // Candidates draw from 4 group-key sets; the shared index must be built
  // once per set, not once per candidate.
  EXPECT_LE(batch.num_group_index_builds(), 4u);
}

TEST(ExecutorGoldenTest, PredicateMasksAreSharedAcrossCandidates) {
  Rng rng(8);
  RandomPair tables = MakeRandomPair(&rng, /*null_heavy=*/false);
  // Same predicate under every agg function: one mask build, 15 candidates.
  std::vector<AggQuery> queries;
  for (AggFunction fn : AllAggFunctions()) {
    AggQuery q;
    q.agg = fn;
    q.agg_attr = "value";
    q.group_keys = {"uid"};
    q.predicates = {Predicate::Equals("dept", Value::Str("a"))};
    queries.push_back(std::move(q));
  }
  QueryPlanner batch;
  auto many = batch.EvaluateMany(queries, tables.training, tables.relevant);
  ASSERT_TRUE(many.ok()) << many.status().ToString();
  EXPECT_EQ(batch.num_mask_builds(), 1u);
  EXPECT_EQ(batch.num_group_index_builds(), 1u);
}

// --- Signed-zero join keys (the -0.0 vs 0.0 encoding fix) -------------------

TEST(ExecutorGoldenTest, SignedZeroKeysJoinAcrossTables) {
  Table relevant;
  ASSERT_TRUE(relevant.AddColumn("k", Column::FromDoubles({-0.0, 1.0})).ok());
  ASSERT_TRUE(relevant.AddColumn("v", Column::FromDoubles({5.0, 9.0})).ok());
  Table training;
  ASSERT_TRUE(training.AddColumn("k", Column::FromDoubles({0.0, -0.0, 1.0})).ok());

  AggQuery q;
  q.agg = AggFunction::kSum;
  q.agg_attr = "v";
  q.group_keys = {"k"};

  auto feature = ComputeFeatureColumn(q, training, relevant);
  ASSERT_TRUE(feature.ok());
  // 0.0 == -0.0: both spellings of zero must join the same group.
  EXPECT_DOUBLE_EQ(feature.value()[0], 5.0);
  EXPECT_DOUBLE_EQ(feature.value()[1], 5.0);
  EXPECT_DOUBLE_EQ(feature.value()[2], 9.0);

  // Rows with either zero spelling collapse into one group.
  auto grouped = ExecuteAggQuery(q, relevant);
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped.value().num_rows(), 2u);
}

// --- Determinism ------------------------------------------------------------

TEST(ExecutorGoldenTest, GroupOrderingIsDeterministic) {
  Rng rng(99);
  RandomPair tables = MakeRandomPair(&rng, /*null_heavy=*/true);
  AggQuery q = MakeRandomQuery(&rng);
  q.group_keys = {"uid", "city"};

  auto first = ExecuteAggQuery(q, tables.relevant);
  ASSERT_TRUE(first.ok());
  const std::string expected = golden::EncodeTable(first.value());
  for (int repeat = 0; repeat < 3; ++repeat) {
    QueryPlanner fresh;
    auto again = fresh.ExecuteAggQuery(q, tables.relevant);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(golden::EncodeTable(again.value()), expected)
        << "repeat " << repeat;
  }
}

TEST(ExecutorGoldenTest, EvaluateManyIsOrderInsensitive) {
  Rng rng(31);
  RandomPair tables = MakeRandomPair(&rng, /*null_heavy=*/false);
  std::vector<AggQuery> queries;
  for (int i = 0; i < 12; ++i) queries.push_back(MakeRandomQuery(&rng));
  std::vector<AggQuery> reversed(queries.rbegin(), queries.rend());

  QueryPlanner a, b;
  auto fwd = a.EvaluateMany(queries, tables.training, tables.relevant);
  auto rev = b.EvaluateMany(reversed, tables.training, tables.relevant);
  ASSERT_TRUE(fwd.ok() && rev.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectColumnsBitIdentical(fwd.value()[i],
                              rev.value()[queries.size() - 1 - i],
                              queries[i].CacheKey());
  }
}

// --- Error handling ----------------------------------------------------------

TEST(ExecutorGoldenTest, InvalidQueriesAreRejected) {
  Rng rng(12);
  RandomPair tables = MakeRandomPair(&rng, /*null_heavy=*/false);

  AggQuery no_keys;
  no_keys.agg = AggFunction::kSum;
  no_keys.agg_attr = "value";
  EXPECT_FALSE(ComputeFeatureColumn(no_keys, tables.training, tables.relevant).ok());

  AggQuery missing_attr;
  missing_attr.agg = AggFunction::kSum;
  missing_attr.agg_attr = "nope";
  missing_attr.group_keys = {"uid"};
  EXPECT_FALSE(
      ComputeFeatureColumn(missing_attr, tables.training, tables.relevant).ok());

  AggQuery key_not_in_training;
  key_not_in_training.agg = AggFunction::kSum;
  key_not_in_training.agg_attr = "value";
  key_not_in_training.group_keys = {"level"};  // in R, not in D
  EXPECT_FALSE(
      ComputeFeatureColumn(key_not_in_training, tables.training, tables.relevant)
          .ok());

  AggQuery sum_over_string;
  sum_over_string.agg = AggFunction::kSum;
  sum_over_string.agg_attr = "dept";
  sum_over_string.group_keys = {"uid"};
  EXPECT_FALSE(
      ComputeFeatureColumn(sum_over_string, tables.training, tables.relevant).ok());
}

}  // namespace
}  // namespace featlib

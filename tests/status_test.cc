/// \file status_test.cc
/// \brief Pins the Status/StatusCode surface: every code round-trips through
/// its static constructor, code(), StatusCodeToString and ToString — so a
/// new code (the execution-limit family: kCancelled, kDeadlineExceeded,
/// kResourceExhausted) cannot silently miss a switch arm.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/status.h"

namespace featlib {
namespace {

TEST(StatusTest, OkIsOkAndEmpty) {
  const Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);
  EXPECT_TRUE(ok.message().empty());
  const Status default_constructed;
  EXPECT_TRUE(default_constructed.ok());
}

struct CodeCase {
  StatusCode code;
  Status status;
  const char* name;
};

std::vector<CodeCase> AllErrorCodes() {
  return {
      {StatusCode::kInvalidArgument, Status::InvalidArgument("m"),
       "InvalidArgument"},
      {StatusCode::kNotFound, Status::NotFound("m"), "NotFound"},
      {StatusCode::kOutOfRange, Status::OutOfRange("m"), "OutOfRange"},
      {StatusCode::kIOError, Status::IOError("m"), "IOError"},
      {StatusCode::kNotImplemented, Status::NotImplemented("m"),
       "NotImplemented"},
      {StatusCode::kInternal, Status::Internal("m"), "Internal"},
      {StatusCode::kCancelled, Status::Cancelled("m"), "Cancelled"},
      {StatusCode::kDeadlineExceeded, Status::DeadlineExceeded("m"),
       "DeadlineExceeded"},
      {StatusCode::kResourceExhausted, Status::ResourceExhausted("m"),
       "ResourceExhausted"},
      {StatusCode::kDataLoss, Status::DataLoss("m"), "DataLoss"},
  };
}

TEST(StatusTest, EveryCodeRoundTripsThroughConstructorAndToString) {
  for (const CodeCase& c : AllErrorCodes()) {
    EXPECT_FALSE(c.status.ok()) << c.name;
    EXPECT_EQ(c.status.code(), c.code) << c.name;
    EXPECT_EQ(c.status.message(), "m") << c.name;
    // StatusCodeToString names the code (no fallthrough to a default arm).
    EXPECT_STREQ(StatusCodeToString(c.code), c.name);
    // ToString renders "<code>: <message>".
    const std::string rendered = c.status.ToString();
    EXPECT_NE(rendered.find(c.name), std::string::npos) << rendered;
    EXPECT_NE(rendered.find("m"), std::string::npos) << rendered;
  }
}

TEST(StatusTest, EveryCodeIsDistinct) {
  const std::vector<CodeCase> cases = AllErrorCodes();
  for (size_t i = 0; i < cases.size(); ++i) {
    for (size_t j = i + 1; j < cases.size(); ++j) {
      EXPECT_NE(cases[i].code, cases[j].code)
          << cases[i].name << " vs " << cases[j].name;
      EXPECT_NE(std::string(StatusCodeToString(cases[i].code)),
                std::string(StatusCodeToString(cases[j].code)));
    }
  }
}

TEST(StatusTest, ConstructorFromCodeAndMessageMatchesFactories) {
  const Status direct(StatusCode::kDeadlineExceeded, "late");
  EXPECT_EQ(direct.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(direct.message(), "late");
  // operator== compares codes (message is diagnostic payload).
  EXPECT_EQ(direct, Status::DeadlineExceeded("different text"));
  EXPECT_FALSE(direct == Status::Cancelled("late"));
}

TEST(StatusTest, ResultPropagatesErrorCode) {
  auto fail = []() -> Result<int> {
    return Status::ResourceExhausted("budget");
  };
  Result<int> r = fail();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  Result<int> ok = 7;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
}

}  // namespace
}  // namespace featlib

#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/featuretools.h"
#include "baselines/selectors.h"
#include "data/synthetic.h"

namespace featlib {
namespace {

struct Fixture {
  DatasetBundle bundle;
  FeatureEvaluator evaluator;
  std::vector<AggQuery> candidates;
};

Fixture MakeFixture(ModelKind model = ModelKind::kLogisticRegression) {
  SyntheticOptions data_options;
  data_options.n_train = 250;
  data_options.avg_logs_per_entity = 10;
  data_options.seed = 33;
  DatasetBundle bundle = MakeTmall(data_options);
  EvaluatorOptions eval_options;
  eval_options.model = model;
  eval_options.metric = MetricKind::kAuc;
  auto evaluator = FeatureEvaluator::Create(bundle.training, bundle.label_col,
                                            bundle.base_features, bundle.relevant,
                                            bundle.task, eval_options);
  EXPECT_TRUE(evaluator.ok());
  auto candidates = GenerateFeaturetoolsQueries(
      bundle.relevant, bundle.agg_functions, bundle.agg_attrs, bundle.fk_attrs);
  return Fixture{std::move(bundle), std::move(evaluator).ValueOrDie(),
                 std::move(candidates)};
}

TEST(SelectorsTest, NamesAndTaskSupport) {
  EXPECT_STREQ(SelectorKindToString(SelectorKind::kNone), "FT");
  EXPECT_STREQ(SelectorKindToString(SelectorKind::kForward), "FT+Forward");
  EXPECT_TRUE(SelectorSupportsTask(SelectorKind::kMi, TaskKind::kRegression));
  EXPECT_FALSE(SelectorSupportsTask(SelectorKind::kChi2, TaskKind::kRegression));
  EXPECT_FALSE(SelectorSupportsTask(SelectorKind::kGini, TaskKind::kRegression));
  EXPECT_TRUE(
      SelectorSupportsTask(SelectorKind::kChi2, TaskKind::kBinaryClassification));
}

TEST(SelectorsTest, NoneKeepsFirstK) {
  Fixture fx = MakeFixture();
  auto selected = SelectQueries(&fx.evaluator, fx.candidates, SelectorKind::kNone, 5);
  ASSERT_TRUE(selected.ok());
  ASSERT_EQ(selected.value().size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(selected.value()[i].CacheKey(), fx.candidates[i].CacheKey());
  }
}

class FilterSelectorTest : public testing::TestWithParam<SelectorKind> {};

TEST_P(FilterSelectorTest, ReturnsKDistinctCandidates) {
  Fixture fx = MakeFixture();
  auto selected = SelectQueries(&fx.evaluator, fx.candidates, GetParam(), 6);
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected.value().size(), 6u);
  std::vector<std::string> keys;
  for (const auto& q : selected.value()) keys.push_back(q.CacheKey());
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::unique(keys.begin(), keys.end()), keys.end());
  // Every selection came from the candidate pool.
  for (const auto& key : keys) {
    EXPECT_TRUE(std::any_of(fx.candidates.begin(), fx.candidates.end(),
                            [&](const AggQuery& q) { return q.CacheKey() == key; }));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSelectors, FilterSelectorTest,
    testing::Values(SelectorKind::kLr, SelectorKind::kGbdt, SelectorKind::kMi,
                    SelectorKind::kChi2, SelectorKind::kGini,
                    SelectorKind::kForward, SelectorKind::kBackward),
    [](const testing::TestParamInfo<SelectorKind>& info) {
      std::string name = SelectorKindToString(info.param);
      name.erase(std::remove(name.begin(), name.end(), '+'), name.end());
      return name;
    });

TEST(SelectorsTest, MiSelectorPrefersInformativeAggregates) {
  // COUNT-family features recover the weak latent by construction; the MI
  // selector should rank at least one of them into its picks.
  Fixture fx = MakeFixture();
  auto selected = SelectQueries(&fx.evaluator, fx.candidates, SelectorKind::kMi, 8);
  ASSERT_TRUE(selected.ok());
  bool has_informative = false;
  for (const auto& q : selected.value()) {
    if (q.agg == AggFunction::kCount || q.agg == AggFunction::kAvg ||
        q.agg == AggFunction::kSum || q.agg == AggFunction::kMedian) {
      has_informative = true;
    }
  }
  EXPECT_TRUE(has_informative);
}

TEST(SelectorsTest, ForwardSelectionImprovesOverFirstK) {
  Fixture fx = MakeFixture();
  auto forward =
      SelectQueries(&fx.evaluator, fx.candidates, SelectorKind::kForward, 4);
  auto none = SelectQueries(&fx.evaluator, fx.candidates, SelectorKind::kNone, 4);
  ASSERT_TRUE(forward.ok());
  ASSERT_TRUE(none.ok());
  auto forward_score = fx.evaluator.ModelScore(forward.value());
  auto none_score = fx.evaluator.ModelScore(none.value());
  ASSERT_TRUE(forward_score.ok());
  ASSERT_TRUE(none_score.ok());
  EXPECT_GE(forward_score.value(), none_score.value() - 0.02);
}

TEST(SelectorsTest, RegressionTaskSelectors) {
  SyntheticOptions data_options;
  data_options.n_train = 250;
  data_options.seed = 17;
  DatasetBundle bundle = MakeMerchant(data_options);
  EvaluatorOptions eval_options;
  eval_options.model = ModelKind::kLogisticRegression;  // ridge for regression
  eval_options.metric = MetricKind::kRmse;
  auto evaluator = FeatureEvaluator::Create(bundle.training, bundle.label_col,
                                            bundle.base_features, bundle.relevant,
                                            bundle.task, eval_options);
  ASSERT_TRUE(evaluator.ok());
  auto candidates = GenerateFeaturetoolsQueries(
      bundle.relevant, bundle.agg_functions, bundle.agg_attrs, bundle.fk_attrs);
  FeatureEvaluator eval = std::move(evaluator).ValueOrDie();
  for (SelectorKind kind : {SelectorKind::kMi, SelectorKind::kLr,
                            SelectorKind::kGbdt}) {
    auto selected = SelectQueries(&eval, candidates, kind, 5);
    ASSERT_TRUE(selected.ok()) << SelectorKindToString(kind);
    EXPECT_EQ(selected.value().size(), 5u);
  }
  // Chi2/Gini rejected for regression.
  EXPECT_FALSE(SelectQueries(&eval, candidates, SelectorKind::kChi2, 5).ok());
  EXPECT_FALSE(SelectQueries(&eval, candidates, SelectorKind::kGini, 5).ok());
}

TEST(SelectorsTest, SmallCandidatePoolShortCircuits) {
  Fixture fx = MakeFixture();
  std::vector<AggQuery> two(fx.candidates.begin(), fx.candidates.begin() + 2);
  auto selected = SelectQueries(&fx.evaluator, two, SelectorKind::kMi, 10);
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected.value().size(), 2u);
}

}  // namespace
}  // namespace featlib

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/timer.h"

namespace featlib {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotImplemented), "NotImplemented");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Half(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> Quarter(int v) {
  FEAT_ASSIGN_OR_RETURN(int h, Half(v));
  FEAT_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());
  EXPECT_FALSE(Quarter(3).ok());
}

TEST(RngTest, DeterministicBySeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformIntCoversRangeUnbiased) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.UniformInt(10)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 400);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, PoissonMeanMatchesLambda) {
  Rng rng(17);
  for (double lambda : {0.5, 3.0, 20.0, 100.0}) {
    double sum = 0.0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(lambda));
    EXPECT_NEAR(sum / n, lambda, lambda * 0.1 + 0.1) << "lambda=" << lambda;
  }
}

TEST(RngTest, PoissonZeroLambda) {
  Rng rng(1);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(19);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(RngTest, SampleIndicesDistinct) {
  Rng rng(23);
  auto sample = rng.SampleIndices(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleIndicesKExceedsN) {
  Rng rng(23);
  auto sample = rng.SampleIndices(5, 50);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.Fork();
  EXPECT_NE(a.NextU64(), child.NextU64());
}

TEST(StrUtilTest, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
}

TEST(StrUtilTest, JoinAndSplit) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  const auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StrUtilTest, TrimAndLower) {
  EXPECT_EQ(StrTrim("  hi \t\n"), "hi");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrLower("AbC"), "abc");
}

TEST(StrUtilTest, ParseDouble) {
  double d = 0.0;
  EXPECT_TRUE(ParseDouble("3.5", &d));
  EXPECT_DOUBLE_EQ(d, 3.5);
  EXPECT_FALSE(ParseDouble("3.5x", &d));
  EXPECT_FALSE(ParseDouble("", &d));
  EXPECT_FALSE(ParseDouble("nan", &d));
}

TEST(StrUtilTest, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(ParseInt64("4.2", &v));
  EXPECT_FALSE(ParseInt64("x", &v));
}

TEST(TimerTest, MeasuresElapsed) {
  WallTimer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GE(t.Seconds(), 0.0);
  EXPECT_GE(t.Millis(), t.Seconds() * 1000.0 - 1e-9);
}

}  // namespace
}  // namespace featlib

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "stats/stats.h"

namespace featlib {
namespace {

TEST(StatsTest, MeanAndVariance) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({2, 4, 4, 4, 5, 5, 7, 9}), 4.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
}

TEST(StatsTest, PearsonPerfectAndConstant) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {3, 2, 1}), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(StatsTest, RankDataWithTies) {
  const auto ranks = RankData({10, 20, 20, 30});
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(StatsTest, SpearmanMonotone) {
  // Monotone non-linear relation: Spearman 1, Pearson < 1.
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 1; i <= 20; ++i) {
    x.push_back(i);
    y.push_back(std::exp(0.5 * i));
  }
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
  EXPECT_LT(PearsonCorrelation(x, y), 0.95);
}

TEST(StatsTest, DiscretizeBins) {
  const auto bins = Discretize({0.0, 0.5, 1.0}, 2);
  EXPECT_EQ(bins[0], 0);
  EXPECT_EQ(bins[2], 1);  // max clamps into last bin
  // NaN gets its own bucket.
  const auto with_nan = Discretize({0.0, std::nan(""), 1.0}, 4);
  EXPECT_EQ(with_nan[1], 4);
  // Constant vector maps to bucket 0.
  const auto constant = Discretize({5, 5, 5}, 8);
  EXPECT_EQ(constant[0], 0);
  EXPECT_EQ(constant[2], 0);
}

TEST(StatsTest, DiscreteEntropy) {
  EXPECT_DOUBLE_EQ(DiscreteEntropy({1, 1, 1}), 0.0);
  EXPECT_NEAR(DiscreteEntropy({0, 1, 2, 3}), std::log(4.0), 1e-12);
}

TEST(StatsTest, DiscreteMiIdenticalEqualsEntropy) {
  const std::vector<int> x = {0, 1, 0, 1, 2, 2, 0, 1};
  EXPECT_NEAR(DiscreteMutualInformation(x, x), DiscreteEntropy(x), 1e-12);
}

TEST(StatsTest, DiscreteMiIndependentNearZero) {
  Rng rng(5);
  std::vector<int> x(4000);
  std::vector<int> y(4000);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<int>(rng.UniformInt(4));
    y[i] = static_cast<int>(rng.UniformInt(4));
  }
  EXPECT_LT(DiscreteMutualInformation(x, y), 0.01);
}

TEST(StatsTest, MutualInformationDetectsDependence) {
  Rng rng(7);
  std::vector<double> strong(2000);
  std::vector<double> noise(2000);
  std::vector<double> label(2000);
  for (size_t i = 0; i < strong.size(); ++i) {
    const double latent = rng.Normal();
    strong[i] = latent + 0.3 * rng.Normal();
    noise[i] = rng.Normal();
    label[i] = latent > 0.0 ? 1.0 : 0.0;
  }
  const double mi_strong = MutualInformation(strong, label, true);
  const double mi_noise = MutualInformation(noise, label, true);
  EXPECT_GT(mi_strong, 5.0 * mi_noise + 0.05);
}

TEST(StatsTest, MutualInformationRegressionLabels) {
  Rng rng(9);
  std::vector<double> x(2000);
  std::vector<double> y(2000);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Normal();
    y[i] = 2.0 * x[i] + 0.2 * rng.Normal();
  }
  EXPECT_GT(MutualInformation(x, y, false), 0.5);
}

TEST(StatsTest, MutualInformationHandlesNaN) {
  std::vector<double> x = {1.0, std::nan(""), 3.0, 4.0, std::nan(""), 6.0};
  std::vector<double> y = {0, 0, 1, 1, 0, 1};
  const double mi = MutualInformation(x, y, true);
  EXPECT_GE(mi, 0.0);
  EXPECT_TRUE(std::isfinite(mi));
}

TEST(StatsTest, ChiSquareDetectsAssociation) {
  Rng rng(11);
  std::vector<double> dependent(3000);
  std::vector<double> independent(3000);
  std::vector<double> label(3000);
  for (size_t i = 0; i < label.size(); ++i) {
    label[i] = rng.Bernoulli(0.5) ? 1.0 : 0.0;
    dependent[i] = label[i] * 2.0 + rng.Normal() * 0.5;
    independent[i] = rng.Normal();
  }
  EXPECT_GT(ChiSquareScore(dependent, label), 3.0 * ChiSquareScore(independent, label));
}

TEST(StatsTest, GiniScoreDetectsAssociation) {
  Rng rng(13);
  std::vector<double> dependent(3000);
  std::vector<double> independent(3000);
  std::vector<double> label(3000);
  for (size_t i = 0; i < label.size(); ++i) {
    label[i] = rng.Bernoulli(0.5) ? 1.0 : 0.0;
    dependent[i] = label[i] * 2.0 + rng.Normal() * 0.5;
    independent[i] = rng.Normal();
  }
  EXPECT_GT(GiniScore(dependent, label), 0.1);
  EXPECT_LT(GiniScore(independent, label), GiniScore(dependent, label));
}

TEST(StatsTest, ImputeNanWithMean) {
  const auto out = ImputeNanWithMean({1.0, std::nan(""), 3.0});
  EXPECT_DOUBLE_EQ(out[1], 2.0);
  const auto all_nan = ImputeNanWithMean({std::nan(""), std::nan("")});
  EXPECT_DOUBLE_EQ(all_nan[0], 0.0);
}

TEST(StatsTest, SpearmanProxyIsAbsolute) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y_up = {1, 2, 3, 4, 5};
  std::vector<double> y_down = {5, 4, 3, 2, 1};
  EXPECT_NEAR(SpearmanProxy(x, y_up), 1.0, 1e-12);
  EXPECT_NEAR(SpearmanProxy(x, y_down), 1.0, 1e-12);
}


TEST(StatsTest, DiscretizeQuantileBalancedBuckets) {
  // 100 distinct values into 4 buckets: exactly 25 per bucket.
  std::vector<double> v(100);
  for (size_t i = 0; i < 100; ++i) v[i] = static_cast<double>(i * i);  // skewed
  const auto bins = DiscretizeQuantile(v, 4);
  std::vector<int> counts(4, 0);
  for (int b : bins) {
    ASSERT_GE(b, 0);
    ASSERT_LT(b, 4);
    ++counts[b];
  }
  for (int c : counts) EXPECT_EQ(c, 25);
}

TEST(StatsTest, DiscretizeQuantileMonotone) {
  std::vector<double> v = {5, 1, 9, 3, 7};
  const auto bins = DiscretizeQuantile(v, 5);
  // Rank order preserved: smaller values get smaller bucket ids.
  EXPECT_LT(bins[1], bins[3]);
  EXPECT_LT(bins[3], bins[0]);
  EXPECT_LT(bins[0], bins[4]);
  EXPECT_LT(bins[4], bins[2]);
}

TEST(StatsTest, DiscretizeQuantileNaNOwnBucket) {
  std::vector<double> v = {1.0, std::nan(""), 2.0};
  const auto bins = DiscretizeQuantile(v, 3);
  EXPECT_EQ(bins[1], 3);
  EXPECT_NE(bins[0], 3);
}

TEST(StatsTest, DiscretizeQuantileTiesShareBucket) {
  std::vector<double> v = {7, 7, 7, 7};
  const auto bins = DiscretizeQuantile(v, 2);
  EXPECT_EQ(bins[0], bins[1]);
  EXPECT_EQ(bins[1], bins[2]);
  EXPECT_EQ(bins[2], bins[3]);
}

TEST(StatsTest, DiscretizeQuantileRobustToOutliers) {
  // One huge outlier: equi-width packs everything else into bucket 0,
  // quantile binning keeps the bulk distinguishable.
  std::vector<double> v;
  for (int i = 0; i < 99; ++i) v.push_back(static_cast<double>(i));
  v.push_back(1e12);
  const auto widths = Discretize(v, 10);
  const auto quantiles = DiscretizeQuantile(v, 10);
  std::set<int> width_buckets(widths.begin(), widths.end());
  std::set<int> quantile_buckets(quantiles.begin(), quantiles.end());
  EXPECT_LE(width_buckets.size(), 2u);
  EXPECT_EQ(quantile_buckets.size(), 10u);
}

}  // namespace
}  // namespace featlib

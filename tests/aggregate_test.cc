#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "common/rng.h"
#include "query/aggregate.h"

namespace featlib {
namespace {

TEST(AggregateTest, NamesRoundTrip) {
  for (AggFunction fn : AllAggFunctions()) {
    auto parsed = ParseAggFunction(AggFunctionName(fn));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), fn);
  }
  EXPECT_TRUE(ParseAggFunction("avg").ok());
  EXPECT_FALSE(ParseAggFunction("nope").ok());
}

TEST(AggregateTest, FifteenFunctions) {
  EXPECT_EQ(AllAggFunctions().size(), 15u);
}

TEST(AggregateTest, KnownValues) {
  const std::vector<double> v = {1, 2, 2, 3, 4};
  EXPECT_DOUBLE_EQ(ComputeAggregate(AggFunction::kSum, v), 12.0);
  EXPECT_DOUBLE_EQ(ComputeAggregate(AggFunction::kMin, v), 1.0);
  EXPECT_DOUBLE_EQ(ComputeAggregate(AggFunction::kMax, v), 4.0);
  EXPECT_DOUBLE_EQ(ComputeAggregate(AggFunction::kCount, v), 5.0);
  EXPECT_DOUBLE_EQ(ComputeAggregate(AggFunction::kAvg, v), 2.4);
  EXPECT_DOUBLE_EQ(ComputeAggregate(AggFunction::kCountDistinct, v), 4.0);
  EXPECT_DOUBLE_EQ(ComputeAggregate(AggFunction::kMode, v), 2.0);
  EXPECT_DOUBLE_EQ(ComputeAggregate(AggFunction::kMedian, v), 2.0);
}

TEST(AggregateTest, CountDistinctIsNanSafe) {
  // NaN != NaN, so a naive hash set counts every NaN separately; all NaNs
  // must collapse into a single distinct value.
  const double nan = std::nan("");
  EXPECT_DOUBLE_EQ(
      ComputeAggregate(AggFunction::kCountDistinct, {nan, nan, nan}), 1.0);
  EXPECT_DOUBLE_EQ(
      ComputeAggregate(AggFunction::kCountDistinct, {1.0, nan, 2.0, nan}), 3.0);
  EXPECT_DOUBLE_EQ(ComputeAggregate(AggFunction::kCountDistinct, {}), 0.0);
}

TEST(AggregateTest, VarianceFamilies) {
  const std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(ComputeAggregate(AggFunction::kVar, v), 4.0);
  EXPECT_DOUBLE_EQ(ComputeAggregate(AggFunction::kStd, v), 2.0);
  EXPECT_NEAR(ComputeAggregate(AggFunction::kVarSample, v), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(ComputeAggregate(AggFunction::kStdSample, v),
              std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(AggregateTest, EntropyUniformAndConstant) {
  EXPECT_NEAR(ComputeAggregate(AggFunction::kEntropy, {1, 2, 3, 4}),
              std::log(4.0), 1e-12);
  EXPECT_DOUBLE_EQ(ComputeAggregate(AggFunction::kEntropy, {5, 5, 5}), 0.0);
}

TEST(AggregateTest, KurtosisOfSymmetricPair) {
  // Two-point symmetric distribution has excess kurtosis -2.
  EXPECT_NEAR(ComputeAggregate(AggFunction::kKurtosis, {-1, 1, -1, 1}), -2.0,
              1e-12);
  // Constant group is undefined.
  EXPECT_TRUE(std::isnan(ComputeAggregate(AggFunction::kKurtosis, {3, 3, 3})));
}

TEST(AggregateTest, MadKnownValue) {
  // median=3, deviations {2,1,0,1,2} -> median 1.
  EXPECT_DOUBLE_EQ(ComputeAggregate(AggFunction::kMad, {1, 2, 3, 4, 5}), 1.0);
}

TEST(AggregateTest, MedianEvenCount) {
  EXPECT_DOUBLE_EQ(ComputeAggregate(AggFunction::kMedian, {1, 2, 3, 4}), 2.5);
}

TEST(AggregateTest, ModeTieBreaksSmallest) {
  EXPECT_DOUBLE_EQ(ComputeAggregate(AggFunction::kMode, {3, 1, 3, 1}), 1.0);
}

TEST(AggregateTest, EmptyGroupSemantics) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(ComputeAggregate(AggFunction::kCount, empty), 0.0);
  EXPECT_DOUBLE_EQ(ComputeAggregate(AggFunction::kCountDistinct, empty), 0.0);
  for (AggFunction fn :
       {AggFunction::kSum, AggFunction::kAvg, AggFunction::kMin, AggFunction::kMax,
        AggFunction::kVar, AggFunction::kStd, AggFunction::kEntropy,
        AggFunction::kMode, AggFunction::kMad, AggFunction::kMedian}) {
    EXPECT_TRUE(std::isnan(ComputeAggregate(fn, empty)))
        << AggFunctionName(fn);
  }
}

TEST(AggregateTest, SingleElementSampleVarianceUndefined) {
  EXPECT_TRUE(std::isnan(ComputeAggregate(AggFunction::kVarSample, {5.0})));
  EXPECT_TRUE(std::isnan(ComputeAggregate(AggFunction::kStdSample, {5.0})));
  EXPECT_DOUBLE_EQ(ComputeAggregate(AggFunction::kVar, {5.0}), 0.0);
}

TEST(AggregateTest, ColumnOverloadSkipsNulls) {
  Column col(DataType::kDouble);
  col.AppendDouble(1.0);
  col.AppendNull();
  col.AppendDouble(3.0);
  const std::vector<uint32_t> rows = {0, 1, 2};
  EXPECT_DOUBLE_EQ(ComputeAggregate(AggFunction::kCount, col, rows), 2.0);
  EXPECT_DOUBLE_EQ(ComputeAggregate(AggFunction::kAvg, col, rows), 2.0);
}

TEST(AggregateTest, CategoricalSupportMatrix) {
  EXPECT_TRUE(SupportsCategorical(AggFunction::kCount));
  EXPECT_TRUE(SupportsCategorical(AggFunction::kCountDistinct));
  EXPECT_TRUE(SupportsCategorical(AggFunction::kEntropy));
  EXPECT_TRUE(SupportsCategorical(AggFunction::kMode));
  EXPECT_FALSE(SupportsCategorical(AggFunction::kSum));
  EXPECT_FALSE(SupportsCategorical(AggFunction::kMedian));
}

// ---------------------------------------------------------------------------
// Property sweep: every aggregate matches an independent naive reference on
// random inputs across seeds.
// ---------------------------------------------------------------------------

double NaiveReference(AggFunction fn, std::vector<double> v) {
  const size_t n = v.size();
  auto mean = [&] {
    double s = 0;
    for (double x : v) s += x;
    return s / static_cast<double>(n);
  };
  switch (fn) {
    case AggFunction::kCount:
      return static_cast<double>(n);
    case AggFunction::kSum: {
      if (n == 0) return std::nan("");
      double s = 0;
      for (double x : v) s += x;
      return s;
    }
    case AggFunction::kMin:
      return n == 0 ? std::nan("") : *std::min_element(v.begin(), v.end());
    case AggFunction::kMax:
      return n == 0 ? std::nan("") : *std::max_element(v.begin(), v.end());
    case AggFunction::kAvg:
      return n == 0 ? std::nan("") : mean();
    case AggFunction::kCountDistinct: {
      std::sort(v.begin(), v.end());
      return static_cast<double>(std::unique(v.begin(), v.end()) - v.begin());
    }
    case AggFunction::kVar:
    case AggFunction::kStd: {
      if (n == 0) return std::nan("");
      const double m = mean();
      double ss = 0;
      for (double x : v) ss += (x - m) * (x - m);
      const double var = ss / static_cast<double>(n);
      return fn == AggFunction::kStd ? std::sqrt(var) : var;
    }
    case AggFunction::kVarSample:
    case AggFunction::kStdSample: {
      if (n < 2) return std::nan("");
      const double m = mean();
      double ss = 0;
      for (double x : v) ss += (x - m) * (x - m);
      const double var = ss / static_cast<double>(n - 1);
      return fn == AggFunction::kStdSample ? std::sqrt(var) : var;
    }
    case AggFunction::kEntropy: {
      if (n == 0) return std::nan("");
      std::map<double, int> c;
      for (double x : v) ++c[x];
      double h = 0;
      for (auto& [k, cnt] : c) {
        double p = static_cast<double>(cnt) / static_cast<double>(n);
        h -= p * std::log(p);
      }
      return h;
    }
    case AggFunction::kKurtosis: {
      if (n < 2) return std::nan("");
      const double m = mean();
      double m2 = 0, m4 = 0;
      for (double x : v) {
        m2 += (x - m) * (x - m);
        m4 += (x - m) * (x - m) * (x - m) * (x - m);
      }
      m2 /= static_cast<double>(n);
      m4 /= static_cast<double>(n);
      if (m2 <= 0) return std::nan("");
      return m4 / (m2 * m2) - 3.0;
    }
    case AggFunction::kMode: {
      if (n == 0) return std::nan("");
      std::map<double, int> c;
      for (double x : v) ++c[x];
      double best = c.begin()->first;
      int bc = 0;
      for (auto& [k, cnt] : c) {
        if (cnt > bc) {
          bc = cnt;
          best = k;
        }
      }
      return best;
    }
    case AggFunction::kMad: {
      if (n == 0) return std::nan("");
      std::sort(v.begin(), v.end());
      const double med =
          n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
      std::vector<double> dev;
      for (double x : v) dev.push_back(std::fabs(x - med));
      std::sort(dev.begin(), dev.end());
      return n % 2 ? dev[n / 2] : 0.5 * (dev[n / 2 - 1] + dev[n / 2]);
    }
    case AggFunction::kMedian: {
      if (n == 0) return std::nan("");
      std::sort(v.begin(), v.end());
      return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
    }
  }
  return std::nan("");
}

class AggregatePropertyTest
    : public testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(AggregatePropertyTest, MatchesNaiveReferenceOnRandomData) {
  const AggFunction fn = static_cast<AggFunction>(std::get<0>(GetParam()));
  const uint64_t seed = std::get<1>(GetParam());
  Rng rng(seed);
  const size_t n = 1 + rng.UniformInt(60);
  std::vector<double> v(n);
  for (double& x : v) {
    // Mix of continuous values and repeated small ints (exercises mode,
    // entropy, distinct).
    x = rng.Bernoulli(0.5) ? std::round(rng.Normal() * 2.0)
                           : rng.Normal() * 10.0;
  }
  const double expected = NaiveReference(fn, v);
  const double actual = ComputeAggregate(fn, v);
  if (std::isnan(expected)) {
    EXPECT_TRUE(std::isnan(actual)) << AggFunctionName(fn);
  } else {
    EXPECT_NEAR(actual, expected, 1e-9 * (1.0 + std::fabs(expected)))
        << AggFunctionName(fn) << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFunctionsAcrossSeeds, AggregatePropertyTest,
    testing::Combine(testing::Range(0, kNumAggFunctions),
                     testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u)),
    [](const testing::TestParamInfo<std::tuple<int, uint64_t>>& info) {
      return std::string(AggFunctionName(
                 static_cast<AggFunction>(std::get<0>(info.param)))) +
             "_seed" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace featlib

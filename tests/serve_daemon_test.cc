/// \file serve_daemon_test.cc
/// \brief End-to-end daemon contract: >= 8 concurrent client connections
/// receive responses byte-identical to direct in-process TransformMany on
/// the same fitted plan, concurrent requests coalesce (>= 2 merged into
/// one fan-out), deadlines travel with requests, TCP works, and SIGTERM
/// drains gracefully — every in-flight response delivered, new
/// connections refused. Runs under TSan in scripts/ci.sh.

#include <gtest/gtest.h>

#include <csignal>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/plan_io.h"
#include "serve/client.h"
#include "serve/plan_registry.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve_test_util.h"

namespace featlib {
namespace serve {
namespace {

using serve_test::MakeBatch;
using serve_test::MakeTempDir;
using serve_test::WritePlanPair;

struct DaemonFixture {
  std::string dir;
  std::unique_ptr<PlanRegistry> registry;
  std::unique_ptr<Server> server;
  /// Per-batch reference encodings from a direct in-process handle loaded
  /// from the same artifacts the daemon serves.
  std::vector<Table> batches;
  std::vector<std::string> reference;
};

DaemonFixture StartDaemon(const std::string& prefix, ServerOptions options) {
  DaemonFixture f;
  f.dir = MakeTempDir(prefix);
  EXPECT_FALSE(f.dir.empty());
  const Table relevant = WritePlanPair(f.dir, "demo");

  f.registry = std::make_unique<PlanRegistry>();
  size_t found = 0;
  EXPECT_TRUE(f.registry->DiscoverPlans(f.dir, &found).ok());
  EXPECT_EQ(found, 1u);

  if (options.unix_socket_path.empty() && options.tcp_port < 0) {
    options.unix_socket_path = f.dir + "/daemon.sock";
  }
  f.server = std::make_unique<Server>(f.registry.get(), options);
  Status started = f.server->Start();
  EXPECT_TRUE(started.ok()) << started.ToString();

  // Direct in-process reference: same plan file, same CSV-round-tripped
  // relevant table, TransformMany exactly as a non-daemon user would.
  for (uint64_t seed : {101, 202, 303, 404}) {
    f.batches.push_back(MakeBatch(20 + 5 * (seed % 4), seed));
  }
  auto direct = LoadFittedAugmenter(f.dir + "/demo.sql", relevant);
  EXPECT_TRUE(direct.ok()) << direct.status().ToString();
  auto many = direct.value()->TransformMany(f.batches);
  EXPECT_TRUE(many.ok()) << many.status().ToString();
  for (const Table& table : many.value()) {
    f.reference.push_back(EncodeTable(table));
  }
  return f;
}

TEST(ServeDaemonTest, EightConcurrentConnectionsAreByteIdenticalAndCoalesce) {
  ServerOptions options;
  // A generous window so concurrent requests reliably land in one group.
  options.batcher.max_delay_us = 20 * 1000;
  DaemonFixture f = StartDaemon("feataug_daemon_", std::move(options));
  const std::string socket = f.dir + "/daemon.sock";

  constexpr int kClients = 8;
  constexpr int kIterations = 3;
  std::vector<int> matches(kClients, 0);
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = ServeClient::ConnectUnix(socket);
      if (!client.ok()) {
        failures[c] = client.status().ToString();
        return;
      }
      for (int it = 0; it < kIterations; ++it) {
        const size_t b = (c + it) % f.batches.size();
        auto out = client.value().Transform("demo", f.batches[b]);
        if (!out.ok()) {
          failures[c] = out.status().ToString();
          return;
        }
        if (EncodeTable(out.value()) != f.reference[b]) {
          failures[c] = "response not byte-identical";
          return;
        }
        ++matches[c];
      }
    });
  }
  for (std::thread& client : clients) client.join();

  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(matches[c], kIterations) << "client " << c << ": " << failures[c];
  }
  EXPECT_EQ(f.server->num_connections_accepted(),
            static_cast<uint64_t>(kClients));
  EXPECT_EQ(f.server->num_requests_served(),
            static_cast<uint64_t>(kClients * kIterations));
  // The acceptance bar: coalescing actually merged concurrent requests.
  EXPECT_GE(f.server->batcher().num_coalesced_flushes(), 1u);
  EXPECT_GE(f.server->batcher().max_flush_size(), 2u);

  f.server->Shutdown();
}

TEST(ServeDaemonTest, DeadlineTravelsWithTheRequest) {
  DaemonFixture f = StartDaemon("feataug_daemon_", ServerOptions());
  auto client = ServeClient::ConnectUnix(f.dir + "/daemon.sock");
  ASSERT_TRUE(client.ok());

  // 1µs from receipt: expires while coalescing -> typed failure, and the
  // connection remains usable for a follow-up with no deadline.
  auto expired = client.value().Transform("demo", f.batches[0], /*deadline_us=*/1);
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded)
      << expired.status().ToString();

  auto fine = client.value().Transform("demo", f.batches[0]);
  ASSERT_TRUE(fine.ok()) << fine.status().ToString();
  EXPECT_EQ(EncodeTable(fine.value()), f.reference[0]);

  f.server->Shutdown();
}

TEST(ServeDaemonTest, TcpLoopbackServes) {
  ServerOptions options;
  options.tcp_port = 0;  // ephemeral
  DaemonFixture f = StartDaemon("feataug_daemon_", std::move(options));
  ASSERT_GT(f.server->tcp_port(), 0);

  auto client = ServeClient::ConnectTcp("127.0.0.1", f.server->tcp_port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE(client.value().Ping().ok());

  auto plans = client.value().ListPlans();
  ASSERT_TRUE(plans.ok());
  ASSERT_EQ(plans.value().size(), 1u);
  EXPECT_EQ(plans.value()[0].name, "demo");

  auto out = client.value().Transform("demo", f.batches[1]);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(EncodeTable(out.value()), f.reference[1]);
  // The plan loaded on first use; a second listing reports it resident.
  auto after = client.value().ListPlans();
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value()[0].loaded);

  f.server->Shutdown();
}

// The ONE test that installs the process-wide signal handler: SIGTERM must
// drain gracefully — every request admitted before the signal gets its
// byte-identical response, then new connections are refused.
TEST(ServeDaemonTest, SigtermDrainsInFlightThenRefusesNewConnections) {
  ServerOptions options;
  // Requests sit in the coalescing window long enough for SIGTERM to land
  // while they are genuinely in flight.
  options.batcher.max_delay_us = 300 * 1000;
  DaemonFixture f = StartDaemon("feataug_daemon_", std::move(options));
  const std::string socket = f.dir + "/daemon.sock";
  ASSERT_TRUE(f.server->EnableSignalDrain().ok());
  // Warm the plan up front so request handling is a map hit — the clients
  // below must reach the batcher window before the signal lands.
  ASSERT_TRUE(f.registry->Acquire("demo").ok());

  constexpr int kClients = 4;
  std::vector<Status> results(kClients, Status::Internal("never ran"));
  std::vector<bool> identical(kClients, false);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = ServeClient::ConnectUnix(socket);
      if (!client.ok()) {
        results[c] = client.status();
        return;
      }
      const size_t b = c % f.batches.size();
      auto out = client.value().Transform("demo", f.batches[b]);
      results[c] = out.ok() ? Status::OK() : out.status();
      identical[c] = out.ok() && EncodeTable(out.value()) == f.reference[b];
    });
  }

  // Let the requests reach the batcher's pending window, then signal.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_EQ(std::raise(SIGTERM), 0);
  f.server->Wait();

  // Drain contract: every admitted request completed with its real result.
  for (std::thread& client : clients) client.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(results[c].ok()) << "client " << c << ": "
                                 << results[c].ToString();
    EXPECT_TRUE(identical[c]) << "client " << c;
  }

  // Refusal contract: the listening socket is gone (or closes on contact).
  auto late = ServeClient::ConnectUnix(socket);
  if (late.ok()) {
    EXPECT_FALSE(late.value().Ping().ok());
  }
}

}  // namespace
}  // namespace serve
}  // namespace featlib

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ml/gbdt.h"
#include "ml/metrics.h"

namespace featlib {
namespace {

TEST(GbdtTest, BinaryClassificationOnInteraction) {
  Rng rng(1);
  Dataset train = Dataset::WithLabels({}, TaskKind::kBinaryClassification);
  const size_t n = 600;
  std::vector<double> x1(n);
  std::vector<double> x2(n);
  train.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    x1[i] = rng.Normal();
    x2[i] = rng.Normal();
    train.y[i] = (x1[i] * x2[i] > 0) ? 1.0 : 0.0;  // XOR-like quadrant rule
  }
  train.n = n;
  ASSERT_TRUE(train.AddFeature("x1", x1).ok());
  ASSERT_TRUE(train.AddFeature("x2", x2).ok());
  GbdtModel model(TaskKind::kBinaryClassification);
  ASSERT_TRUE(model.Fit(train).ok());
  EXPECT_GT(Auc(train.y, model.PredictScore(train)), 0.95);
}

TEST(GbdtTest, RegressionFitsSmoothFunction) {
  Rng rng(2);
  Dataset ds = Dataset::WithLabels({}, TaskKind::kRegression);
  const size_t n = 500;
  std::vector<double> x(n);
  ds.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.UniformReal(-3, 3);
    ds.y[i] = x[i] * x[i] + 0.1 * rng.Normal();
  }
  ds.n = n;
  ASSERT_TRUE(ds.AddFeature("x", x).ok());
  GbdtModel model(TaskKind::kRegression);
  ASSERT_TRUE(model.Fit(ds).ok());
  EXPECT_LT(Rmse(ds.y, model.PredictScore(ds)), 0.6);
}

TEST(GbdtTest, RegressionBaseScoreIsMean) {
  Dataset ds = Dataset::WithLabels({10, 10, 10, 10}, TaskKind::kRegression);
  ASSERT_TRUE(ds.AddFeature("x", {1, 2, 3, 4}).ok());
  GbdtOptions options;
  options.n_rounds = 1;
  GbdtModel model(TaskKind::kRegression, options);
  ASSERT_TRUE(model.Fit(ds).ok());
  EXPECT_NEAR(model.PredictScore(ds)[0], 10.0, 0.5);
}

TEST(GbdtTest, MulticlassOneVsRest) {
  Rng rng(3);
  Dataset ds = Dataset::WithLabels({}, TaskKind::kMultiClassification, 4);
  const size_t n = 600;
  std::vector<double> x(n);
  ds.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(rng.UniformInt(4));
    x[i] = 3.0 * cls + rng.Normal() * 0.7;
    ds.y[i] = cls;
  }
  ds.n = n;
  ds.num_classes = 4;
  ASSERT_TRUE(ds.AddFeature("x", x).ok());
  GbdtOptions options;
  options.n_rounds = 20;
  GbdtModel model(TaskKind::kMultiClassification, options);
  ASSERT_TRUE(model.Fit(ds).ok());
  const auto pred = model.PredictClass(ds);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) labels[i] = static_cast<int>(ds.y[i]);
  EXPECT_GT(F1Macro(labels, pred, 4), 0.85);
}

TEST(GbdtTest, ImportancesFavorSignal) {
  Rng rng(4);
  Dataset ds = Dataset::WithLabels({}, TaskKind::kBinaryClassification);
  const size_t n = 400;
  std::vector<double> signal(n);
  std::vector<double> noise(n);
  ds.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    signal[i] = rng.Normal();
    noise[i] = rng.Normal();
    ds.y[i] = signal[i] > 0 ? 1.0 : 0.0;
  }
  ds.n = n;
  ASSERT_TRUE(ds.AddFeature("noise", noise).ok());
  ASSERT_TRUE(ds.AddFeature("signal", signal).ok());
  GbdtModel model(TaskKind::kBinaryClassification);
  ASSERT_TRUE(model.Fit(ds).ok());
  const auto imp = model.FeatureImportances();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_GT(imp[1], 5.0 * imp[0]);
}

TEST(GbdtTest, MoreRoundsReduceTrainingLoss) {
  Rng rng(5);
  Dataset ds = Dataset::WithLabels({}, TaskKind::kRegression);
  const size_t n = 300;
  std::vector<double> x(n);
  ds.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Normal();
    ds.y[i] = 2.0 * x[i] + rng.Normal() * 0.1;
  }
  ds.n = n;
  ASSERT_TRUE(ds.AddFeature("x", x).ok());

  GbdtOptions few;
  few.n_rounds = 3;
  GbdtModel small(TaskKind::kRegression, few);
  ASSERT_TRUE(small.Fit(ds).ok());
  GbdtOptions many;
  many.n_rounds = 40;
  GbdtModel large(TaskKind::kRegression, many);
  ASSERT_TRUE(large.Fit(ds).ok());
  EXPECT_LT(Rmse(ds.y, large.PredictScore(ds)), Rmse(ds.y, small.PredictScore(ds)));
}

TEST(GbdtTest, DeterministicBySeed) {
  Rng rng(6);
  Dataset ds = Dataset::WithLabels({}, TaskKind::kBinaryClassification);
  const size_t n = 200;
  std::vector<double> x(n);
  ds.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Normal();
    ds.y[i] = rng.Bernoulli(0.5) ? 1.0 : 0.0;
  }
  ds.n = n;
  ASSERT_TRUE(ds.AddFeature("x", x).ok());
  GbdtOptions options;
  options.subsample = 0.7;  // exercises the stochastic path
  GbdtModel a(TaskKind::kBinaryClassification, options);
  GbdtModel b(TaskKind::kBinaryClassification, options);
  ASSERT_TRUE(a.Fit(ds).ok());
  ASSERT_TRUE(b.Fit(ds).ok());
  EXPECT_EQ(a.PredictScore(ds), b.PredictScore(ds));
}

TEST(GbdtTest, EmptyDataRejected) {
  GbdtModel model(TaskKind::kRegression);
  Dataset empty = Dataset::WithLabels({}, TaskKind::kRegression);
  EXPECT_FALSE(model.Fit(empty).ok());
}

}  // namespace
}  // namespace featlib

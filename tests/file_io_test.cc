/// \file file_io_test.cc
/// \brief Crash-safe file primitives: CRC32, the shared integrity footer,
/// and AtomicWriteFile's all-or-nothing contract under injected open /
/// short-write / fsync (ENOSPC-class) / rename failures.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/fault_injection.h"
#include "common/file_io.h"

namespace featlib {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

TEST(Crc32Test, KnownValues) {
  EXPECT_EQ(Crc32(""), 0u);
  // The standard CRC-32 check value.
  EXPECT_EQ(Crc32("123456789"), 0xcbf43926u);
  // Incremental == one-shot.
  uint32_t crc = 0;
  crc = Crc32Update(crc, "1234", 4);
  crc = Crc32Update(crc, "56789", 5);
  EXPECT_EQ(crc, 0xcbf43926u);
}

TEST(CrcFooterTest, AppendThenCheckRoundtrips) {
  std::string contents = "line one\nline two\n";
  AppendCrcFooter(&contents);
  EXPECT_NE(contents.find(kCrcFooterPrefix), std::string::npos);
  EXPECT_TRUE(CheckCrcFooter(contents).ok());
}

TEST(CrcFooterTest, AnySingleBitFlipIsDataLoss) {
  std::string contents = "the payload that must survive intact\n";
  AppendCrcFooter(&contents);
  // Every byte except the footer's own trailing newline: trailing whitespace
  // after the checksum digits is tolerated by design (it cannot alter the
  // decoded payload), so a flip there is harmless rather than corruption.
  for (size_t i = 0; i + 1 < contents.size(); ++i) {
    std::string corrupted = contents;
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0x01);
    Status st = CheckCrcFooter(corrupted);
    EXPECT_FALSE(st.ok()) << "flip at byte " << i << " went undetected";
    EXPECT_EQ(st.code(), StatusCode::kDataLoss) << st.ToString();
  }
}

TEST(CrcFooterTest, MissingOrTrailingFooterRejected) {
  EXPECT_EQ(CheckCrcFooter("no footer here\n").code(), StatusCode::kDataLoss);
  std::string contents = "payload\n";
  AppendCrcFooter(&contents);
  // Anything after the footer line means the footer did not cover the tail.
  EXPECT_EQ(CheckCrcFooter(contents + "trailing\n").code(),
            StatusCode::kDataLoss);
}

TEST(AtomicWriteFileTest, WritesReadableContents) {
  const std::string path = TempPath("atomic_basic.txt");
  ASSERT_TRUE(AtomicWriteFile(path, "hello\n").ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "hello\n");
  std::remove(path.c_str());
}

TEST(AtomicWriteFileTest, ReadMissingFileIsNotFound) {
  EXPECT_EQ(ReadFileToString(TempPath("never_written.txt")).status().code(),
            StatusCode::kNotFound);
}

#ifdef FEATLIB_FAULT_INJECTION

// The satellite contract: a failed save — whatever step fails — leaves the
// previous file byte-identical and readable, and leaves no temp debris.
class AtomicWriteFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Reset(); }

  void ExpectFailedSaveKeepsPrevious(const char* site) {
    const std::string path = TempPath("atomic_fault.txt");
    const std::string previous = "generation 1: the durable bytes\n";
    ASSERT_TRUE(AtomicWriteFile(path, previous).ok());

    FaultInjector::Global().ArmSite(site, 0);
    Status st = AtomicWriteFile(path, "generation 2: never lands\n");
    FaultInjector::Global().Reset();
    EXPECT_FALSE(st.ok()) << "site " << site << " did not inject";

    auto read = ReadFileToString(path);
    ASSERT_TRUE(read.ok()) << site;
    EXPECT_EQ(read.value(), previous) << site;
    // The half-written temp never survives a failed save.
    EXPECT_FALSE(FileExists(path + ".tmp")) << site;
    std::remove(path.c_str());
  }
};

TEST_F(AtomicWriteFaultTest, OpenFailureKeepsPrevious) {
  ExpectFailedSaveKeepsPrevious("file_io.open");
}

TEST_F(AtomicWriteFaultTest, ShortWriteKeepsPrevious) {
  ExpectFailedSaveKeepsPrevious("file_io.write");
}

TEST_F(AtomicWriteFaultTest, FsyncFailureKeepsPrevious) {
  // fsync is where a real ENOSPC on a journaled filesystem surfaces.
  ExpectFailedSaveKeepsPrevious("file_io.fsync");
}

TEST_F(AtomicWriteFaultTest, RenameFailureKeepsPrevious) {
  ExpectFailedSaveKeepsPrevious("file_io.rename");
}

// Sequential saves are linearizable at the file level: after any prefix of
// saves (with arbitrary injected failures between them) the file holds
// exactly one generation's bytes, never a mix.
TEST_F(AtomicWriteFaultTest, SequentialSavesNeverExposeMixedState) {
  const std::string path = TempPath("atomic_seq.txt");
  const std::string gen1(4096, 'a');
  const std::string gen2(9000, 'b');  // longer: a torn overwrite would mix
  ASSERT_TRUE(AtomicWriteFile(path, gen1 + "\n").ok());

  FaultInjector::Global().ArmSite("file_io.write", 0);
  EXPECT_FALSE(AtomicWriteFile(path, gen2 + "\n").ok());
  FaultInjector::Global().Reset();
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), gen1 + "\n");

  ASSERT_TRUE(AtomicWriteFile(path, gen2 + "\n").ok());
  read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), gen2 + "\n");
  std::remove(path.c_str());
}

#endif  // FEATLIB_FAULT_INJECTION

}  // namespace
}  // namespace featlib

/// \file search_session_test.cc
/// \brief Pins the SearchSession layer of the batched search pipeline:
/// pooled proxy/model scoring equals the singleton evaluator entry points
/// bit-for-bit, score caches absorb repeat proposals within and across
/// stages, per-stage counters attribute work correctly, and the evaluator's
/// byte-capped feature cache interplays with the planner's compile memo
/// (evicted columns re-materialize without re-compiling).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/search_session.h"
#include "data/synthetic.h"

namespace featlib {
namespace {

SyntheticOptions SmallOptions() {
  SyntheticOptions options;
  options.n_train = 300;
  options.avg_logs_per_entity = 10;
  options.seed = 7;
  return options;
}

FeatureEvaluator MakeEvaluator(const DatasetBundle& bundle) {
  EvaluatorOptions options;
  options.model = ModelKind::kLogisticRegression;
  options.metric = MetricKind::kAuc;
  auto evaluator =
      FeatureEvaluator::Create(bundle.training, bundle.label_col,
                               bundle.base_features, bundle.relevant,
                               bundle.task, options);
  EXPECT_TRUE(evaluator.ok());
  return std::move(evaluator).ValueOrDie();
}

// A small pool of distinct valid queries over the Tmall bundle.
std::vector<AggQuery> MakePool(const DatasetBundle& bundle, size_t n) {
  std::vector<AggQuery> pool;
  for (AggFunction fn : AllAggFunctions()) {
    if (pool.size() == n) break;
    AggQuery q = bundle.golden_query;
    q.agg = fn;
    if (q.Validate(bundle.relevant).ok()) pool.push_back(std::move(q));
  }
  EXPECT_EQ(pool.size(), n);
  return pool;
}

TEST(SearchSessionTest, PooledProxyScoresMatchSingletonPath) {
  DatasetBundle bundle = MakeTmall(SmallOptions());
  FeatureEvaluator pooled_eval = MakeEvaluator(bundle);
  FeatureEvaluator singleton_eval = MakeEvaluator(bundle);
  SearchSession session(&pooled_eval);
  const std::vector<AggQuery> pool = MakePool(bundle, 6);

  auto pooled = session.ProxyScores(pool, ProxyKind::kMutualInformation);
  ASSERT_TRUE(pooled.ok()) << pooled.status().ToString();
  ASSERT_EQ(pooled.value().size(), pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    auto single =
        singleton_eval.ProxyScore(pool[i], ProxyKind::kMutualInformation);
    ASSERT_TRUE(single.ok());
    EXPECT_DOUBLE_EQ(pooled.value()[i], single.value()) << "query " << i;
  }
}

TEST(SearchSessionTest, PooledModelScoresMatchSingletonPath) {
  DatasetBundle bundle = MakeTmall(SmallOptions());
  FeatureEvaluator pooled_eval = MakeEvaluator(bundle);
  FeatureEvaluator singleton_eval = MakeEvaluator(bundle);
  SearchSession session(&pooled_eval);
  const std::vector<AggQuery> pool = MakePool(bundle, 4);

  auto pooled = session.ModelScores(pool);
  ASSERT_TRUE(pooled.ok()) << pooled.status().ToString();
  for (size_t i = 0; i < pool.size(); ++i) {
    auto single = singleton_eval.ModelScoreSingle(pool[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_DOUBLE_EQ(pooled.value()[i].metric, single.value()) << "query " << i;
    EXPECT_DOUBLE_EQ(pooled.value()[i].loss,
                     singleton_eval.ScoreToLoss(single.value()));
  }
}

TEST(SearchSessionTest, ScoreCachesAbsorbRepeatProposals) {
  DatasetBundle bundle = MakeTmall(SmallOptions());
  FeatureEvaluator evaluator = MakeEvaluator(bundle);
  SearchSession session(&evaluator);
  session.BeginStage(SearchStage::kWarmup);
  const std::vector<AggQuery> pool = MakePool(bundle, 5);

  ASSERT_TRUE(session.ProxyScores(pool, ProxyKind::kMutualInformation).ok());
  const size_t proxy_after_first = evaluator.num_proxy_evals();
  EXPECT_EQ(proxy_after_first, pool.size());
  EXPECT_EQ(session.stage(SearchStage::kWarmup).proxy_evals, pool.size());
  EXPECT_EQ(session.stage(SearchStage::kWarmup).proxy_cache_hits, 0u);

  // Re-proposing the same pool computes nothing new.
  auto again = session.ProxyScores(pool, ProxyKind::kMutualInformation);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(evaluator.num_proxy_evals(), proxy_after_first);
  EXPECT_EQ(session.stage(SearchStage::kWarmup).proxy_cache_hits, pool.size());

  // Duplicates *within* one pool are scored once.
  std::vector<AggQuery> with_dups = {pool[0], pool[0], pool[1]};
  AggQuery fresh = bundle.golden_query;
  fresh.agg_attr = "discount";
  ASSERT_TRUE(fresh.Validate(bundle.relevant).ok());
  with_dups.push_back(fresh);
  const size_t before = evaluator.num_proxy_evals();
  auto mixed = session.ProxyScores(with_dups, ProxyKind::kMutualInformation);
  ASSERT_TRUE(mixed.ok());
  EXPECT_EQ(evaluator.num_proxy_evals(), before + 1);  // only `fresh`
  EXPECT_DOUBLE_EQ(mixed.value()[0], mixed.value()[1]);

  // Model outcomes cache the same way.
  session.BeginStage(SearchStage::kGeneration);
  ASSERT_TRUE(session.ModelScores(pool).ok());
  const size_t model_after_first = evaluator.num_model_evals();
  EXPECT_EQ(model_after_first, pool.size());
  ASSERT_TRUE(session.ModelScores(pool).ok());
  EXPECT_EQ(evaluator.num_model_evals(), model_after_first);
  EXPECT_EQ(session.stage(SearchStage::kGeneration).model_cache_hits,
            pool.size());
}

TEST(SearchSessionTest, StageCountersAttributeWorkToTheActiveStage) {
  DatasetBundle bundle = MakeTmall(SmallOptions());
  FeatureEvaluator evaluator = MakeEvaluator(bundle);
  SearchSession session(&evaluator);
  const std::vector<AggQuery> pool = MakePool(bundle, 3);

  session.BeginStage(SearchStage::kQti);
  ASSERT_TRUE(session.ProxyScores(pool, ProxyKind::kMutualInformation).ok());
  session.BeginStage(SearchStage::kGeneration);
  ASSERT_TRUE(session.ModelScores(pool).ok());

  EXPECT_EQ(session.stage(SearchStage::kQti).proxy_evals, pool.size());
  EXPECT_EQ(session.stage(SearchStage::kQti).model_evals, 0u);
  EXPECT_EQ(session.stage(SearchStage::kGeneration).model_evals, pool.size());
  EXPECT_EQ(session.stage(SearchStage::kWarmup).proxy_evals, 0u);
  EXPECT_EQ(session.stage(SearchStage::kWarmup).model_evals, 0u);
}

TEST(SearchSessionTest, FidelityLossesMatchSingletonsAndAreNotCached) {
  DatasetBundle bundle = MakeTmall(SmallOptions());
  FeatureEvaluator pooled_eval = MakeEvaluator(bundle);
  FeatureEvaluator singleton_eval = MakeEvaluator(bundle);
  SearchSession session(&pooled_eval);
  const std::vector<AggQuery> pool = MakePool(bundle, 3);

  auto losses = session.FidelityLosses(pool, 0.5);
  ASSERT_TRUE(losses.ok()) << losses.status().ToString();
  for (size_t i = 0; i < pool.size(); ++i) {
    auto single = singleton_eval.ModelScoreAtFidelity({pool[i]}, 0.5);
    ASSERT_TRUE(single.ok());
    EXPECT_DOUBLE_EQ(losses.value()[i],
                     singleton_eval.ScoreToLoss(single.value()));
  }
  // Reduced-fidelity evaluations are never cached (the cost ledger must
  // reflect every subsample training).
  const size_t evals = pooled_eval.num_model_evals();
  ASSERT_TRUE(session.FidelityLosses(pool, 0.5).ok());
  EXPECT_EQ(pooled_eval.num_model_evals(), evals + pool.size());
}

TEST(SearchSessionTest, EvictedFeaturesRecomputeThroughTheCompileMemo) {
  DatasetBundle bundle = MakeTmall(SmallOptions());
  FeatureEvaluator evaluator = MakeEvaluator(bundle);
  SearchSession session(&evaluator);
  const std::vector<AggQuery> pool = MakePool(bundle, 6);

  // Cap the feature cache below one column: any later insert evicts the
  // previous epochs' entries (in-batch entries stay pinned).
  evaluator.set_feature_cache_cap_bytes(1);
  ASSERT_TRUE(session.ProxyScores(pool, ProxyKind::kMutualInformation).ok());
  const size_t materializations = evaluator.num_feature_materializations();
  EXPECT_EQ(materializations, pool.size());
  EXPECT_EQ(evaluator.planner().compile_cache_misses(), pool.size());
  EXPECT_EQ(evaluator.num_feature_cache_evictions(), 0u);

  // The proxy cache answers the repeat pool without re-materializing.
  ASSERT_TRUE(session.ProxyScores(pool, ProxyKind::kMutualInformation).ok());
  EXPECT_EQ(evaluator.num_feature_materializations(), materializations);

  // A fresh query's insert pushes the over-cap pool columns out.
  AggQuery fresh = bundle.golden_query;
  fresh.agg_attr = "discount";
  ASSERT_TRUE(fresh.Validate(bundle.relevant).ok());
  ASSERT_TRUE(evaluator.Feature(fresh).ok());
  EXPECT_GE(evaluator.num_feature_cache_evictions(), pool.size());

  // A model pass needs the evicted columns again: they re-materialize, but
  // planning is served from the compile memo — no fresh compiles.
  ASSERT_TRUE(session.ModelScores(pool).ok());
  EXPECT_EQ(evaluator.num_feature_materializations(),
            materializations + 1 + pool.size());
  EXPECT_GE(evaluator.planner().compile_cache_hits(), pool.size());
  EXPECT_EQ(evaluator.planner().compile_cache_misses(), pool.size() + 1);
}

}  // namespace
}  // namespace featlib

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "core/generator.h"
#include "data/synthetic.h"

namespace featlib {
namespace {

struct Fixture {
  DatasetBundle bundle;
  FeatureEvaluator evaluator;
};

Fixture MakeFixture(uint64_t seed = 7) {
  SyntheticOptions data_options;
  data_options.n_train = 300;
  data_options.avg_logs_per_entity = 10;
  data_options.seed = seed;
  DatasetBundle bundle = MakeTmall(data_options);
  EvaluatorOptions eval_options;
  eval_options.model = ModelKind::kLogisticRegression;
  eval_options.metric = MetricKind::kAuc;
  auto evaluator = FeatureEvaluator::Create(bundle.training, bundle.label_col,
                                            bundle.base_features, bundle.relevant,
                                            bundle.task, eval_options);
  EXPECT_TRUE(evaluator.ok());
  return Fixture{std::move(bundle), std::move(evaluator).ValueOrDie()};
}

GeneratorOptions FastOptions() {
  GeneratorOptions options;
  options.warmup_iterations = 30;
  options.warmup_top_k = 6;
  options.generation_iterations = 10;
  options.n_queries = 5;
  options.seed = 11;
  return options;
}

TEST(GeneratorTest, ProducesSortedDedupedQueries) {
  Fixture fx = MakeFixture();
  SqlQueryGenerator generator(&fx.evaluator, FastOptions());
  auto result = generator.Run(fx.bundle.golden_template);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const GenerationResult& gen = result.value();
  ASSERT_GT(gen.queries.size(), 0u);
  ASSERT_LE(gen.queries.size(), 5u);
  for (size_t i = 1; i < gen.queries.size(); ++i) {
    EXPECT_LE(gen.queries[i - 1].loss, gen.queries[i].loss);
  }
  // Dedup by cache key.
  for (size_t i = 0; i < gen.queries.size(); ++i) {
    for (size_t j = i + 1; j < gen.queries.size(); ++j) {
      EXPECT_NE(gen.queries[i].query.CacheKey(), gen.queries[j].query.CacheKey());
    }
  }
}

TEST(GeneratorTest, BestQueryBeatsBaseline) {
  Fixture fx = MakeFixture();
  SqlQueryGenerator generator(&fx.evaluator, FastOptions());
  auto result = generator.Run(fx.bundle.golden_template);
  ASSERT_TRUE(result.ok());
  auto baseline = fx.evaluator.BaselineModelScore();
  ASSERT_TRUE(baseline.ok());
  // Searching the golden template's pool should find a feature that improves
  // on the no-augmentation baseline.
  EXPECT_GT(result.value().queries.front().model_metric, baseline.value());
}

TEST(GeneratorTest, WarmupSpendsProxyEvals) {
  Fixture fx = MakeFixture();
  GeneratorOptions options = FastOptions();
  SqlQueryGenerator generator(&fx.evaluator, options);
  auto result = generator.Run(fx.bundle.golden_template);
  ASSERT_TRUE(result.ok());
  // Every warm-up proposal is either a fresh proxy computation or a
  // session-cache hit (repeat proposal); together they account for the
  // full iteration budget.
  EXPECT_EQ(result.value().proxy_evals + result.value().proxy_cache_hits,
            static_cast<size_t>(options.warmup_iterations));
  EXPECT_GT(result.value().proxy_evals, 0u);
  // Model evals <= top_k + generation iterations (dedup may reduce).
  EXPECT_LE(result.value().model_evals,
            static_cast<size_t>(options.warmup_top_k +
                                options.generation_iterations));
  EXPECT_GT(result.value().model_evals, 0u);
  // The per-stage split decomposes the total.
  EXPECT_EQ(result.value().warmup_model_evals +
                result.value().generation_model_evals,
            result.value().model_evals);
}

TEST(GeneratorTest, NoWarmupUsesFairBudget) {
  Fixture fx = MakeFixture();
  GeneratorOptions options = FastOptions();
  options.enable_warmup = false;
  SqlQueryGenerator generator(&fx.evaluator, options);
  auto result = generator.Run(fx.bundle.golden_template);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().proxy_evals, 0u);
  EXPECT_DOUBLE_EQ(result.value().warmup_seconds, 0.0);
  EXPECT_LE(result.value().model_evals,
            static_cast<size_t>(options.warmup_top_k +
                                options.generation_iterations));
}

TEST(GeneratorTest, DeterministicBySeed) {
  Fixture fx1 = MakeFixture();
  Fixture fx2 = MakeFixture();
  SqlQueryGenerator g1(&fx1.evaluator, FastOptions());
  SqlQueryGenerator g2(&fx2.evaluator, FastOptions());
  auto r1 = g1.Run(fx1.bundle.golden_template);
  auto r2 = g2.Run(fx2.bundle.golden_template);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r1.value().queries.size(), r2.value().queries.size());
  for (size_t i = 0; i < r1.value().queries.size(); ++i) {
    EXPECT_EQ(r1.value().queries[i].query.CacheKey(),
              r2.value().queries[i].query.CacheKey());
  }
}

// Reference implementation of the pre-batching search loop: one candidate
// per suggest/observe round-trip, evaluated through the evaluator's
// singleton entry points. Pins that suggest_batch_size=1 reproduces the
// sequential trajectory seed-for-seed.
Result<std::vector<GeneratedQuery>> RunSequentialReference(
    FeatureEvaluator* evaluator, const QueryTemplate& tmpl,
    const GeneratorOptions& options) {
  FEAT_ASSIGN_OR_RETURN(QueryVectorCodec codec,
                        QueryVectorCodec::Create(tmpl, evaluator->relevant()));
  std::vector<Trial> warm_trials;
  std::unordered_map<std::string, GeneratedQuery> evaluated;
  auto evaluate_with_model = [&](const ParamVector& v) -> Status {
    FEAT_ASSIGN_OR_RETURN(AggQuery q, codec.Decode(v));
    const std::string key = q.CacheKey();
    auto it = evaluated.find(key);
    double loss;
    if (it != evaluated.end()) {
      loss = it->second.loss;
    } else {
      FEAT_ASSIGN_OR_RETURN(double metric, evaluator->ModelScoreSingle(q));
      loss = evaluator->ScoreToLoss(metric);
      evaluated.emplace(key, GeneratedQuery{std::move(q), metric, loss});
    }
    warm_trials.push_back(Trial{v, loss});
    return Status::OK();
  };

  TpeOptions proxy_tpe = options.tpe;
  proxy_tpe.seed = options.seed;
  Tpe proxy_search(codec.space(), proxy_tpe);
  std::vector<std::pair<ParamVector, double>> proxy_history;
  std::unordered_set<std::string> proxy_seen;
  for (int i = 0; i < options.warmup_iterations; ++i) {
    ParamVector v = proxy_search.Suggest();
    FEAT_ASSIGN_OR_RETURN(AggQuery q, codec.Decode(v));
    FEAT_ASSIGN_OR_RETURN(double score,
                          evaluator->ProxyScore(q, options.proxy));
    proxy_search.Observe(v, -score);
    if (proxy_seen.insert(q.CacheKey()).second) {
      proxy_history.emplace_back(std::move(v), -score);
    }
  }
  std::sort(proxy_history.begin(), proxy_history.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  const size_t top_k = std::min<size_t>(
      proxy_history.size(), static_cast<size_t>(options.warmup_top_k));
  for (size_t i = 0; i < top_k; ++i) {
    FEAT_RETURN_NOT_OK(evaluate_with_model(proxy_history[i].first));
  }

  TpeOptions gen_tpe = options.tpe;
  gen_tpe.seed = options.seed + 1;
  Tpe generation_search(codec.space(), gen_tpe);
  generation_search.WarmStart(warm_trials);
  for (int i = 0; i < options.generation_iterations; ++i) {
    ParamVector v = generation_search.Suggest();
    FEAT_ASSIGN_OR_RETURN(AggQuery q, codec.Decode(v));
    const std::string key = q.CacheKey();
    double loss;
    auto it = evaluated.find(key);
    if (it != evaluated.end()) {
      loss = it->second.loss;
    } else {
      FEAT_ASSIGN_OR_RETURN(double metric, evaluator->ModelScoreSingle(q));
      loss = evaluator->ScoreToLoss(metric);
      evaluated.emplace(key, GeneratedQuery{std::move(q), metric, loss});
    }
    generation_search.Observe(v, loss);
  }

  std::vector<GeneratedQuery> queries;
  queries.reserve(evaluated.size());
  for (auto& [key, gq] : evaluated) queries.push_back(std::move(gq));
  std::sort(queries.begin(), queries.end(),
            [](const GeneratedQuery& a, const GeneratedQuery& b) {
              return a.loss < b.loss;
            });
  if (queries.size() > static_cast<size_t>(options.n_queries)) {
    queries.resize(static_cast<size_t>(options.n_queries));
  }
  return queries;
}

TEST(GeneratorTest, BatchOfOneReproducesSequentialTrajectory) {
  Fixture reference_fx = MakeFixture();
  Fixture batched_fx = MakeFixture();
  GeneratorOptions options = FastOptions();

  auto reference = RunSequentialReference(
      &reference_fx.evaluator, reference_fx.bundle.golden_template, options);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  options.suggest_batch_size = 1;
  SqlQueryGenerator generator(&batched_fx.evaluator, options);
  auto batched = generator.Run(batched_fx.bundle.golden_template);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();

  const std::vector<GeneratedQuery>& expected = reference.value();
  const std::vector<GeneratedQuery>& actual = batched.value().queries;
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].query.CacheKey(), expected[i].query.CacheKey())
        << "rank " << i;
    EXPECT_DOUBLE_EQ(actual[i].model_metric, expected[i].model_metric);
    EXPECT_DOUBLE_EQ(actual[i].loss, expected[i].loss);
  }
  // The reference loop spent one model training per distinct promoted /
  // generated query; the batched pipeline must match it exactly.
  EXPECT_EQ(batched.value().model_evals,
            reference_fx.evaluator.num_model_evals());
}

TEST(GeneratorTest, BatchSizesAgreeOnEvaluationBudget) {
  // Different pool sizes explore differently (the whole point of batching)
  // but must spend the same proposal budget and stay deterministic.
  for (int batch : {2, 8}) {
    Fixture fx = MakeFixture();
    GeneratorOptions options = FastOptions();
    options.suggest_batch_size = batch;
    SqlQueryGenerator generator(&fx.evaluator, options);
    auto result = generator.Run(fx.bundle.golden_template);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().proxy_evals + result.value().proxy_cache_hits,
              static_cast<size_t>(options.warmup_iterations))
        << "batch " << batch;
    EXPECT_GT(result.value().queries.size(), 0u);
  }
}

TEST(GeneratorTest, SpearmanProxyAlsoWorks) {
  Fixture fx = MakeFixture();
  GeneratorOptions options = FastOptions();
  options.proxy = ProxyKind::kSpearman;
  SqlQueryGenerator generator(&fx.evaluator, options);
  auto result = generator.Run(fx.bundle.golden_template);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().queries.size(), 0u);
}

TEST(GeneratorTest, EmptyWhereTemplateStillSearches) {
  // A template with no WHERE attributes degenerates to Featuretools' space
  // plus FK-subset choice; the generator must still work.
  Fixture fx = MakeFixture();
  QueryTemplate t = fx.bundle.golden_template;
  t.where_attrs.clear();
  SqlQueryGenerator generator(&fx.evaluator, FastOptions());
  auto result = generator.Run(t);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().queries.size(), 0u);
  for (const auto& gq : result.value().queries) {
    EXPECT_TRUE(gq.query.predicates.empty());
  }
}

TEST(GeneratorTest, InvalidTemplateRejected) {
  Fixture fx = MakeFixture();
  QueryTemplate t = fx.bundle.golden_template;
  t.agg_attrs = {"missing"};
  SqlQueryGenerator generator(&fx.evaluator, FastOptions());
  EXPECT_FALSE(generator.Run(t).ok());
}

}  // namespace
}  // namespace featlib

#include <gtest/gtest.h>

#include "core/generator.h"
#include "data/synthetic.h"

namespace featlib {
namespace {

struct Fixture {
  DatasetBundle bundle;
  FeatureEvaluator evaluator;
};

Fixture MakeFixture(uint64_t seed = 7) {
  SyntheticOptions data_options;
  data_options.n_train = 300;
  data_options.avg_logs_per_entity = 10;
  data_options.seed = seed;
  DatasetBundle bundle = MakeTmall(data_options);
  EvaluatorOptions eval_options;
  eval_options.model = ModelKind::kLogisticRegression;
  eval_options.metric = MetricKind::kAuc;
  auto evaluator = FeatureEvaluator::Create(bundle.training, bundle.label_col,
                                            bundle.base_features, bundle.relevant,
                                            bundle.task, eval_options);
  EXPECT_TRUE(evaluator.ok());
  return Fixture{std::move(bundle), std::move(evaluator).ValueOrDie()};
}

GeneratorOptions FastOptions() {
  GeneratorOptions options;
  options.warmup_iterations = 30;
  options.warmup_top_k = 6;
  options.generation_iterations = 10;
  options.n_queries = 5;
  options.seed = 11;
  return options;
}

TEST(GeneratorTest, ProducesSortedDedupedQueries) {
  Fixture fx = MakeFixture();
  SqlQueryGenerator generator(&fx.evaluator, FastOptions());
  auto result = generator.Run(fx.bundle.golden_template);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const GenerationResult& gen = result.value();
  ASSERT_GT(gen.queries.size(), 0u);
  ASSERT_LE(gen.queries.size(), 5u);
  for (size_t i = 1; i < gen.queries.size(); ++i) {
    EXPECT_LE(gen.queries[i - 1].loss, gen.queries[i].loss);
  }
  // Dedup by cache key.
  for (size_t i = 0; i < gen.queries.size(); ++i) {
    for (size_t j = i + 1; j < gen.queries.size(); ++j) {
      EXPECT_NE(gen.queries[i].query.CacheKey(), gen.queries[j].query.CacheKey());
    }
  }
}

TEST(GeneratorTest, BestQueryBeatsBaseline) {
  Fixture fx = MakeFixture();
  SqlQueryGenerator generator(&fx.evaluator, FastOptions());
  auto result = generator.Run(fx.bundle.golden_template);
  ASSERT_TRUE(result.ok());
  auto baseline = fx.evaluator.BaselineModelScore();
  ASSERT_TRUE(baseline.ok());
  // Searching the golden template's pool should find a feature that improves
  // on the no-augmentation baseline.
  EXPECT_GT(result.value().queries.front().model_metric, baseline.value());
}

TEST(GeneratorTest, WarmupSpendsProxyEvals) {
  Fixture fx = MakeFixture();
  GeneratorOptions options = FastOptions();
  SqlQueryGenerator generator(&fx.evaluator, options);
  auto result = generator.Run(fx.bundle.golden_template);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().proxy_evals,
            static_cast<size_t>(options.warmup_iterations));
  // Model evals <= top_k + generation iterations (dedup may reduce).
  EXPECT_LE(result.value().model_evals,
            static_cast<size_t>(options.warmup_top_k +
                                options.generation_iterations));
  EXPECT_GT(result.value().model_evals, 0u);
}

TEST(GeneratorTest, NoWarmupUsesFairBudget) {
  Fixture fx = MakeFixture();
  GeneratorOptions options = FastOptions();
  options.enable_warmup = false;
  SqlQueryGenerator generator(&fx.evaluator, options);
  auto result = generator.Run(fx.bundle.golden_template);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().proxy_evals, 0u);
  EXPECT_DOUBLE_EQ(result.value().warmup_seconds, 0.0);
  EXPECT_LE(result.value().model_evals,
            static_cast<size_t>(options.warmup_top_k +
                                options.generation_iterations));
}

TEST(GeneratorTest, DeterministicBySeed) {
  Fixture fx1 = MakeFixture();
  Fixture fx2 = MakeFixture();
  SqlQueryGenerator g1(&fx1.evaluator, FastOptions());
  SqlQueryGenerator g2(&fx2.evaluator, FastOptions());
  auto r1 = g1.Run(fx1.bundle.golden_template);
  auto r2 = g2.Run(fx2.bundle.golden_template);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r1.value().queries.size(), r2.value().queries.size());
  for (size_t i = 0; i < r1.value().queries.size(); ++i) {
    EXPECT_EQ(r1.value().queries[i].query.CacheKey(),
              r2.value().queries[i].query.CacheKey());
  }
}

TEST(GeneratorTest, SpearmanProxyAlsoWorks) {
  Fixture fx = MakeFixture();
  GeneratorOptions options = FastOptions();
  options.proxy = ProxyKind::kSpearman;
  SqlQueryGenerator generator(&fx.evaluator, options);
  auto result = generator.Run(fx.bundle.golden_template);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().queries.size(), 0u);
}

TEST(GeneratorTest, EmptyWhereTemplateStillSearches) {
  // A template with no WHERE attributes degenerates to Featuretools' space
  // plus FK-subset choice; the generator must still work.
  Fixture fx = MakeFixture();
  QueryTemplate t = fx.bundle.golden_template;
  t.where_attrs.clear();
  SqlQueryGenerator generator(&fx.evaluator, FastOptions());
  auto result = generator.Run(t);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().queries.size(), 0u);
  for (const auto& gq : result.value().queries) {
    EXPECT_TRUE(gq.query.predicates.empty());
  }
}

TEST(GeneratorTest, InvalidTemplateRejected) {
  Fixture fx = MakeFixture();
  QueryTemplate t = fx.bundle.golden_template;
  t.agg_attrs = {"missing"};
  SqlQueryGenerator generator(&fx.evaluator, FastOptions());
  EXPECT_FALSE(generator.Run(t).ok());
}

}  // namespace
}  // namespace featlib

/// \file kernel_dispatch_test.cc
/// \brief Pins the kernel-backend contract (query/kernel_dispatch.h): the
/// simd table is byte-identical to the scalar oracle across every aggregate
/// kind, mask density, and slice alignment; backend selection resolves
/// planner-override > environment > config > detection; and the fused
/// Bitset AND+popcount drives the planner's empty-selection short-circuit.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "golden_util.h"
#include "query/bitset.h"
#include "query/group_index.h"
#include "query/kernel_dispatch.h"
#include "query/kernels.h"
#include "query/predicate.h"
#include "query/query_planner.h"

namespace featlib {
namespace {

using golden::SameBits;

void ExpectBitIdentical(const std::vector<double>& actual,
                        const std::vector<double>& expected,
                        const std::string& context) {
  ASSERT_EQ(actual.size(), expected.size()) << context;
  for (size_t i = 0; i < actual.size(); ++i) {
    ASSERT_TRUE(SameBits(actual[i], expected[i]))
        << context << " slot " << i << ": simd=" << actual[i]
        << " scalar=" << expected[i];
  }
}

// Random (relevant, training) pair with NULL-heavy values, compound keys,
// and predicate attributes of every vectorizable and non-vectorizable
// column type (double, int64, string).
struct RandomPair {
  Table relevant;
  Table training;
};

RandomPair MakePair(Rng* rng, size_t n_rel) {
  const char* cities[] = {"ber", "nyc", "sfo", "tok"};
  const char* depts[] = {"a", "b", "c"};
  RandomPair out;
  Column uid(DataType::kInt64), city(DataType::kString);
  Column value(DataType::kDouble), level(DataType::kInt64),
      dept(DataType::kString);
  for (size_t i = 0; i < n_rel; ++i) {
    if (rng->Bernoulli(0.05)) {
      uid.AppendNull();
    } else {
      uid.AppendInt(static_cast<int64_t>(rng->UniformInt(10)));
    }
    city.AppendString(cities[rng->UniformInt(4)]);
    if (rng->Bernoulli(0.3)) {
      value.AppendNull();
    } else if (rng->Bernoulli(0.05)) {
      // Signed zeros: the one equal-doubles case where bit patterns differ,
      // exercising the vector MIN/MAX first-occurrence fix-up.
      value.AppendDouble(rng->Bernoulli(0.5) ? 0.0 : -0.0);
    } else {
      value.AppendDouble(rng->Normal(0, 10));
    }
    level.AppendInt(static_cast<int64_t>(rng->UniformInt(5)));
    if (rng->Bernoulli(0.1)) {
      dept.AppendNull();
    } else {
      dept.AppendString(depts[rng->UniformInt(3)]);
    }
  }
  EXPECT_TRUE(out.relevant.AddColumn("uid", std::move(uid)).ok());
  EXPECT_TRUE(out.relevant.AddColumn("city", std::move(city)).ok());
  EXPECT_TRUE(out.relevant.AddColumn("value", std::move(value)).ok());
  EXPECT_TRUE(out.relevant.AddColumn("level", std::move(level)).ok());
  EXPECT_TRUE(out.relevant.AddColumn("dept", std::move(dept)).ok());

  Column d_uid(DataType::kInt64), d_city(DataType::kString);
  for (size_t i = 0; i < 64; ++i) {
    if (rng->Bernoulli(0.05)) {
      d_uid.AppendNull();
    } else {
      d_uid.AppendInt(static_cast<int64_t>(rng->UniformInt(12)));
    }
    d_city.AppendString(cities[rng->UniformInt(4)]);
  }
  EXPECT_TRUE(out.training.AddColumn("uid", std::move(d_uid)).ok());
  EXPECT_TRUE(out.training.AddColumn("city", std::move(d_city)).ok());
  return out;
}

// Bernoulli mask of the given density (nullopt = no mask / all rows).
std::optional<Bitset> MakeMask(Rng* rng, size_t n, double density) {
  Bitset bits(n);
  for (size_t i = 0; i < n; ++i) {
    if (density >= 1.0 || (density > 0.0 && rng->Bernoulli(density))) {
      bits.Set(i);
    }
  }
  return bits;
}

// ---- Raw kernel parity: every agg kind x mask density x view shape ---------

TEST(KernelDispatchTest, StreamingAndMaterializedParityAcrossDensities) {
  Rng rng(20260808);
  // 197 rows: not a multiple of 64, so every mask has a partial tail word.
  RandomPair pair = MakePair(&rng, 197);
  auto index_or = GroupIndex::Build(pair.relevant, {"uid", "city"});
  ASSERT_TRUE(index_or.ok());
  const GroupIndex& index = index_or.value();
  std::vector<double> view(pair.relevant.num_rows());
  auto col = pair.relevant.GetColumn("value");
  ASSERT_TRUE(col.ok());
  for (size_t r = 0; r < view.size(); ++r) {
    view[r] = col.value()->AsDouble(r);
  }

  const KernelOps& scalar = ScalarKernelOps();
  const KernelOps& simd = SimdKernelOps();
  const double densities[] = {0.0, 0.05, 0.7, 1.0};
  for (double density : densities) {
    std::optional<Bitset> mask = MakeMask(&rng, view.size(), density);
    const Bitset* mask_ptr = &*mask;
    const std::string ctx = "density=" + std::to_string(density);

    // Bucket materialization must match byte for byte: slice lengths vary
    // per group, so flat offsets land on every alignment.
    const MaterializedValues m_scalar =
        scalar.build_materialized(index, mask_ptr, view.data());
    const MaterializedValues m_simd =
        simd.build_materialized(index, mask_ptr, view.data());
    ASSERT_EQ(m_scalar.present, m_simd.present) << ctx;
    ASSERT_EQ(m_scalar.offsets, m_simd.offsets) << ctx;
    ExpectBitIdentical(
        std::vector<double>(m_simd.flat.begin(), m_simd.flat.end()),
        std::vector<double>(m_scalar.flat.begin(), m_scalar.flat.end()), ctx);

    for (AggFunction fn : AllAggFunctions()) {
      const std::string fctx = ctx + " fn=" + AggFunctionName(fn);
      std::vector<uint32_t> first_scalar, first_simd;
      ExpectBitIdentical(
          simd.aggregate_streaming(fn, index, mask_ptr, view.data(),
                                   &first_simd),
          scalar.aggregate_streaming(fn, index, mask_ptr, view.data(),
                                     &first_scalar),
          "streaming " + fctx);
      ASSERT_EQ(first_scalar, first_simd) << fctx;
      ExpectBitIdentical(simd.aggregate_from_materialized(fn, m_scalar),
                         scalar.aggregate_from_materialized(fn, m_scalar),
                         "materialized " + fctx);
    }

    // COUNT(*) without a value view (null view pointer).
    std::vector<uint32_t> first_scalar, first_simd;
    ExpectBitIdentical(
        simd.aggregate_streaming(AggFunction::kCount, index, mask_ptr, nullptr,
                                 &first_simd),
        scalar.aggregate_streaming(AggFunction::kCount, index, mask_ptr,
                                   nullptr, &first_scalar),
        "count-star " + ctx);
    ASSERT_EQ(first_scalar, first_simd) << ctx;
  }

  // Null mask (all rows selected).
  for (AggFunction fn : AllAggFunctions()) {
    ExpectBitIdentical(
        simd.aggregate_streaming(fn, index, nullptr, view.data(), nullptr),
        scalar.aggregate_streaming(fn, index, nullptr, view.data(), nullptr),
        std::string("no-mask fn=") + AggFunctionName(fn));
  }
}

// Slice MIN/MAX at deliberately unaligned offsets and signed-zero ties: the
// vector reduction must reproduce min_element/max_element's
// first-among-equals result bit for bit (including the sign of zero).
TEST(KernelDispatchTest, SliceMinMaxUnalignedAndSignedZero) {
  const KernelOps& scalar = ScalarKernelOps();
  const KernelOps& simd = SimdKernelOps();
  Rng rng(7);
  for (size_t offset = 0; offset < 9; ++offset) {
    for (size_t len : {0ul, 1ul, 3ul, 15ul, 16ul, 64ul, 257ul}) {
      MaterializedValues m;
      m.present = {1, 1};
      m.offsets = {0, offset, offset + len};
      m.flat.resize(offset + len);
      for (size_t i = 0; i < m.flat.size(); ++i) {
        // Dense zero ties with mixed signs, plus ordinary values.
        const int pick = static_cast<int>(rng.UniformInt(4));
        m.flat[i] = pick == 0 ? 0.0 : pick == 1 ? -0.0 : rng.Normal(0, 1);
      }
      for (AggFunction fn : {AggFunction::kMin, AggFunction::kMax}) {
        ExpectBitIdentical(
            simd.aggregate_from_materialized(fn, m),
            scalar.aggregate_from_materialized(fn, m),
            "offset=" + std::to_string(offset) + " len=" +
                std::to_string(len) + " fn=" + AggFunctionName(fn));
      }
    }
  }
}

// ---- Predicate-mask parity across column types, nulls, and tails -----------

TEST(KernelDispatchTest, FilterMaskParity) {
  Rng rng(99);
  // Straddles several words with a partial tail.
  RandomPair pair = MakePair(&rng, 331);
  const size_t n = pair.relevant.num_rows();

  std::vector<std::vector<Predicate>> pred_sets;
  pred_sets.push_back({Predicate::Equals("dept", Value::Str("a"))});
  pred_sets.push_back({Predicate::Equals("dept", Value::Str("zz"))});  // absent
  pred_sets.push_back({Predicate::Range("value", -5.0, 5.0)});
  pred_sets.push_back({Predicate::Range("value", std::nullopt, 0.0)});
  pred_sets.push_back({Predicate::Range("value", 0.0, std::nullopt)});
  pred_sets.push_back({Predicate::Range("level", 1.0, 3.0)});  // int64-backed
  pred_sets.push_back({Predicate::Equals("uid", Value::Int(3))});
  pred_sets.push_back({Predicate::Equals("dept", Value::Str("b")),
                       Predicate::Range("value", -2.0, std::nullopt),
                       Predicate::Range("level", std::nullopt, 3.0)});
  pred_sets.push_back(
      {Predicate::Range("value", std::nullopt, std::nullopt)});  // trivial

  const KernelOps& scalar = ScalarKernelOps();
  const KernelOps& simd = SimdKernelOps();
  for (size_t s = 0; s < pred_sets.size(); ++s) {
    auto filter = CompiledFilter::Compile(pred_sets[s], pair.relevant);
    ASSERT_TRUE(filter.ok()) << "set " << s;
    Bitset from_scalar(n), from_simd(n);
    scalar.build_filter_mask(filter.value(), &from_scalar);
    simd.build_filter_mask(filter.value(), &from_simd);
    ASSERT_EQ(from_scalar.num_words(), from_simd.num_words());
    for (size_t w = 0; w < from_scalar.num_words(); ++w) {
      ASSERT_EQ(from_scalar.words()[w], from_simd.words()[w])
          << "set " << s << " word " << w;
    }
    // Tail invariant survives the bulk word writes.
    ASSERT_EQ(from_simd.Count(), from_scalar.Count()) << "set " << s;
  }
}

// The int64-backed predicate path converts lanes to double before
// comparing, exactly as the scalar `static_cast<double>(ints[row])` does.
// The conversion must be bit-exact over the full 64-bit range — including
// magnitudes past 2^53, where the cast rounds — so sweep the extremes and
// the rounding boundaries against the scalar oracle.
TEST(KernelDispatchTest, FilterMaskParityInt64FullRange) {
  constexpr int64_t kBig = int64_t{1} << 53;
  std::vector<int64_t> values = {
      0,           1,          -1,         42,
      kBig - 1,    kBig,       kBig + 1,   kBig + 2,   kBig + 3,
      -kBig + 1,   -kBig,      -kBig - 1,  -kBig - 3,
      (int64_t{1} << 62) + 12345,          -(int64_t{1} << 62) - 999,
      std::numeric_limits<int64_t>::max(),
      std::numeric_limits<int64_t>::min(),
      std::numeric_limits<int64_t>::max() - 1,
  };
  Rng rng(1234);
  // Pad past several mask words so the vector path (not just the scalar
  // tail finisher) sees the extremes, and scatter nulls through it.
  Column col(DataType::kInt64);
  std::vector<int64_t> expect_rows;
  for (size_t row = 0; row < 320; ++row) {
    if (row % 13 == 5) {
      col.AppendNull();
    } else {
      col.AppendInt(values[rng.UniformInt(values.size())] +
                    static_cast<int64_t>(rng.UniformInt(7)));
    }
  }
  Table table;
  ASSERT_TRUE(table.AddColumn("huge", std::move(col)).ok());
  const size_t n = table.num_rows();

  std::vector<std::vector<Predicate>> pred_sets;
  pred_sets.push_back({Predicate::Range(
      "huge", static_cast<double>(kBig), std::nullopt)});
  pred_sets.push_back({Predicate::Range(
      "huge", std::nullopt, -static_cast<double>(kBig))});
  pred_sets.push_back({Predicate::Range(
      "huge", -9.3e18, 9.3e18)});  // brackets INT64_MIN/MAX after rounding
  pred_sets.push_back(
      {Predicate::Equals("huge", Value::Double(static_cast<double>(kBig)))});
  pred_sets.push_back({Predicate::Equals(
      "huge",
      Value::Double(static_cast<double>(
          std::numeric_limits<int64_t>::max())))});  // rounds to 2^63
  pred_sets.push_back({Predicate::Range("huge", 0.0, 100.0)});

  const KernelOps& scalar = ScalarKernelOps();
  const KernelOps& simd = SimdKernelOps();
  for (size_t s = 0; s < pred_sets.size(); ++s) {
    auto filter = CompiledFilter::Compile(pred_sets[s], table);
    ASSERT_TRUE(filter.ok()) << "set " << s;
    Bitset from_scalar(n), from_simd(n);
    scalar.build_filter_mask(filter.value(), &from_scalar);
    simd.build_filter_mask(filter.value(), &from_simd);
    for (size_t w = 0; w < from_scalar.num_words(); ++w) {
      ASSERT_EQ(from_scalar.words()[w], from_simd.words()[w])
          << "set " << s << " word " << w;
    }
  }
}

// ---- Fused AND+popcount (satellite kernels) --------------------------------

TEST(KernelDispatchTest, BitsetAndWithCountMatchesAndPlusCount) {
  Rng rng(5);
  for (size_t n : {1ul, 63ul, 64ul, 65ul, 500ul}) {
    Bitset a = *MakeMask(&rng, n, 0.4);
    const Bitset b = *MakeMask(&rng, n, 0.6);
    const size_t probe = a.AndCount(b);
    Bitset reference = a;
    reference.AndWith(b);
    const size_t fused = a.AndWithCount(b);
    ASSERT_EQ(fused, reference.Count()) << n;
    ASSERT_EQ(probe, fused) << n;
    for (size_t w = 0; w < a.num_words(); ++w) {
      ASSERT_EQ(a.words()[w], reference.words()[w]) << n;
    }
  }
}

// ---- End-to-end planner parity at several thread counts --------------------

std::vector<AggQuery> MakePool() {
  std::vector<std::vector<Predicate>> pred_sets;
  pred_sets.push_back({});
  pred_sets.push_back({Predicate::Equals("dept", Value::Str("a"))});
  pred_sets.push_back({Predicate::Equals("dept", Value::Str("b")),
                       Predicate::Range("level", std::nullopt, 3.0)});
  // Contradictory conjunction: the fused count proves it empty, the planner
  // short-circuits its shared-bucket materialization.
  pred_sets.push_back({Predicate::Equals("dept", Value::Str("a")),
                       Predicate::Equals("dept", Value::Str("b"))});
  std::vector<AggQuery> out;
  for (const auto& preds : pred_sets) {
    for (AggFunction fn : AllAggFunctions()) {
      AggQuery q;
      q.agg = fn;
      q.agg_attr = "value";
      q.group_keys = {"uid"};
      q.predicates = preds;
      out.push_back(std::move(q));
    }
  }
  return out;
}

TEST(KernelDispatchTest, EvaluateManyBackendParityAcrossThreadCounts) {
  Rng rng(321);
  RandomPair pair = MakePair(&rng, 400);
  const std::vector<AggQuery> pool = MakePool();

  QueryPlanner scalar_planner;
  scalar_planner.set_kernel_backend(KernelBackend::kScalar);
  auto expected = scalar_planner.EvaluateMany(pool, pair.training,
                                              pair.relevant);
  ASSERT_TRUE(expected.ok());

  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool_threads(threads);
    QueryPlanner simd_planner;
    simd_planner.set_kernel_backend(KernelBackend::kSimd);
    simd_planner.set_thread_pool(threads > 1 ? &pool_threads : nullptr);
    auto actual =
        simd_planner.EvaluateMany(pool, pair.training, pair.relevant);
    ASSERT_TRUE(actual.ok()) << threads;
    ASSERT_EQ(actual.value().size(), expected.value().size());
    for (size_t i = 0; i < expected.value().size(); ++i) {
      ExpectBitIdentical(actual.value()[i], expected.value()[i],
                         "threads=" + std::to_string(threads) +
                             " candidate=" + std::to_string(i));
    }
    // The contradictory conjunction's bucket was proven empty by the fused
    // count and never streamed.
    EXPECT_GE(simd_planner.last_plan_stats().empty_selections, 1u) << threads;
  }
}

TEST(KernelDispatchTest, ServingPlanDispatchesPerBackend) {
  Rng rng(11);
  RandomPair pair = MakePair(&rng, 256);
  const std::vector<AggQuery> pool = MakePool();

  QueryPlanner scalar_planner, simd_planner;
  scalar_planner.set_kernel_backend(KernelBackend::kScalar);
  simd_planner.set_kernel_backend(KernelBackend::kSimd);
  auto scalar_plan = scalar_planner.CompileServingPlan(pool, pair.relevant);
  auto simd_plan = simd_planner.CompileServingPlan(pool, pair.relevant);
  ASSERT_TRUE(scalar_plan.ok());
  ASSERT_TRUE(simd_plan.ok());
  EXPECT_EQ(scalar_plan.value().kernel_backend, KernelBackend::kScalar);
  EXPECT_EQ(simd_plan.value().kernel_backend, KernelBackend::kSimd);

  auto expected = ExecuteServingPlan(scalar_plan.value(), pair.training);
  auto actual = ExecuteServingPlan(simd_plan.value(), pair.training);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(actual.ok());
  ASSERT_EQ(actual.value().size(), expected.value().size());
  for (size_t i = 0; i < expected.value().size(); ++i) {
    ExpectBitIdentical(actual.value()[i], expected.value()[i],
                       "serving candidate " + std::to_string(i));
  }
}

// ---- Backend selection: override > environment > config > detection --------

TEST(KernelDispatchTest, SelectionResolutionOrder) {
  // Explicit override wins regardless of environment.
  EXPECT_EQ(ResolveKernelOps(KernelBackend::kScalar).backend,
            KernelBackend::kScalar);
  EXPECT_EQ(ResolveKernelOps(KernelBackend::kSimd).backend,
            KernelBackend::kSimd);

  // Environment steers kAuto.
  ASSERT_EQ(setenv("FEATLIB_KERNEL_BACKEND", "scalar", 1), 0);
  EXPECT_EQ(ResolveKernelOps(KernelBackend::kAuto).backend,
            KernelBackend::kScalar);
  EXPECT_EQ(ResolveKernelOps(KernelBackend::kSimd).backend,
            KernelBackend::kSimd);  // override still beats env
  ASSERT_EQ(setenv("FEATLIB_KERNEL_BACKEND", "simd", 1), 0);
  EXPECT_EQ(ResolveKernelOps(KernelBackend::kAuto).backend,
            KernelBackend::kSimd);
  // Malformed value falls through to the config field.
  ASSERT_EQ(setenv("FEATLIB_KERNEL_BACKEND", "avx9000", 1), 0);
  FeatAugConfig::Global().kernel_backend = KernelBackend::kScalar;
  EXPECT_EQ(ResolveKernelOps(KernelBackend::kAuto).backend,
            KernelBackend::kScalar);
  FeatAugConfig::Global().kernel_backend = KernelBackend::kAuto;
  ASSERT_EQ(unsetenv("FEATLIB_KERNEL_BACKEND"), 0);

  // kAuto with nothing set resolves via detection: simd iff a vector ISA
  // was found.
  const KernelBackend resolved = KernelOpsFor(KernelBackend::kAuto).backend;
  if (DetectedSimdLevel() == SimdLevel::kScalarOnly) {
    EXPECT_EQ(resolved, KernelBackend::kScalar);
  } else {
    EXPECT_EQ(resolved, KernelBackend::kSimd);
  }
}

TEST(KernelDispatchTest, DetectionReporting) {
  const SimdLevel level = DetectedSimdLevel();
  EXPECT_EQ(SimdKernelOps().level, level);
  EXPECT_EQ(ScalarKernelOps().level, SimdLevel::kScalarOnly);
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalarOnly), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kNeon), "neon");
  EXPECT_STREQ(KernelBackendName(KernelBackend::kScalar), "scalar");
  EXPECT_STREQ(KernelBackendName(KernelBackend::kSimd), "simd");
  EXPECT_STREQ(KernelBackendName(KernelBackend::kAuto), "auto");
#if defined(FEATLIB_DISABLE_SIMD)
  EXPECT_EQ(level, SimdLevel::kScalarOnly);
#endif
}

// ---- Aligned-buffer byte accounting (MaterializedValues::SizeBytes) --------

TEST(KernelDispatchTest, SizeBytesCountsCapacityAndAlignment) {
  MaterializedValues m;
  EXPECT_EQ(m.SizeBytes(), 0u);
  m.present.assign(10, 0);
  m.offsets.assign(11, 0);
  m.flat.resize(3);  // 24 bytes of doubles -> one 64-byte aligned block
  const size_t expected = 64 + m.offsets.capacity() * sizeof(size_t) +
                          m.present.capacity() * sizeof(uint32_t);
  EXPECT_EQ(m.SizeBytes(), expected);

  // Capacity, not size: shrinking the logical size must not shrink the
  // accounted footprint while the allocation is retained.
  m.flat.resize(100);
  const size_t grown = m.SizeBytes();
  m.flat.resize(1);
  EXPECT_EQ(m.SizeBytes(), grown);
}

}  // namespace
}  // namespace featlib

#include <gtest/gtest.h>

#include <cmath>

#include "table/table.h"

namespace featlib {
namespace {

TEST(ValueTest, TagsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(3).int_value(), 3);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::Str("hi").string_value(), "hi");
  EXPECT_EQ(Value::Bool(true).int_value(), 1);
}

TEST(ValueTest, AsDouble) {
  EXPECT_DOUBLE_EQ(Value::Int(3).AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Double(1.5).AsDouble(), 1.5);
  EXPECT_TRUE(std::isnan(Value::Null().AsDouble()));
  EXPECT_TRUE(std::isnan(Value::Str("x").AsDouble()));
}

TEST(ValueTest, SqlLiteral) {
  EXPECT_EQ(Value::Null().ToSqlLiteral(), "NULL");
  EXPECT_EQ(Value::Int(-7).ToSqlLiteral(), "-7");
  EXPECT_EQ(Value::Str("a").ToSqlLiteral(), "'a'");
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_FALSE(Value::Int(1) == Value::Double(1.0));
  EXPECT_EQ(Value::Str("x"), Value::Str("x"));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(DataTypeTest, RangeTypes) {
  EXPECT_TRUE(IsRangeType(DataType::kInt64));
  EXPECT_TRUE(IsRangeType(DataType::kDouble));
  EXPECT_TRUE(IsRangeType(DataType::kDatetime));
  EXPECT_FALSE(IsRangeType(DataType::kString));
  EXPECT_FALSE(IsRangeType(DataType::kBool));
}

TEST(ColumnTest, IntAppendAndAccess) {
  Column col(DataType::kInt64);
  col.AppendInt(1);
  col.AppendNull();
  col.AppendInt(-5);
  EXPECT_EQ(col.size(), 3u);
  EXPECT_EQ(col.null_count(), 1u);
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.IntAt(2), -5);
  EXPECT_TRUE(std::isnan(col.AsDouble(1)));
  EXPECT_DOUBLE_EQ(col.AsDouble(2), -5.0);
}

TEST(ColumnTest, DoubleNanBecomesNull) {
  Column col(DataType::kDouble);
  col.AppendDouble(1.0);
  col.AppendDouble(std::nan(""));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.null_count(), 1u);
}

TEST(ColumnTest, StringDictionaryEncoding) {
  Column col(DataType::kString);
  col.AppendString("a");
  col.AppendString("b");
  col.AppendString("a");
  EXPECT_EQ(col.dictionary().size(), 2u);
  EXPECT_EQ(col.CodeAt(0), col.CodeAt(2));
  EXPECT_NE(col.CodeAt(0), col.CodeAt(1));
  EXPECT_EQ(col.StringAt(1), "b");
  EXPECT_EQ(col.FindCode("a"), col.CodeAt(0));
  EXPECT_EQ(col.FindCode("zzz"), -1);
}

TEST(ColumnTest, TakeSharesDictionaryCopyOnWrite) {
  Column col(DataType::kString);
  col.AppendString("a");
  col.AppendString("b");
  col.AppendString("a");

  // Take is O(1) on the dictionary: the taken column shares storage
  // instead of deep-copying every string (the old hot-path cost).
  Column taken = col.Take({2u, 1u});
  EXPECT_TRUE(taken.SharesDictionaryWith(col));
  EXPECT_EQ(taken.StringAt(0), "a");
  EXPECT_EQ(taken.StringAt(1), "b");
  EXPECT_EQ(taken.CodeAt(0), col.CodeAt(2));

  // Appending an already-known string needs no mutation: still shared.
  taken.AppendString("b");
  EXPECT_TRUE(taken.SharesDictionaryWith(col));

  // A new string clones the shared dictionary (copy-on-write): the
  // sibling's dictionary is unaffected, codes stay consistent.
  taken.AppendString("zz");
  EXPECT_FALSE(taken.SharesDictionaryWith(col));
  EXPECT_EQ(taken.dictionary().size(), 3u);
  EXPECT_EQ(col.dictionary().size(), 2u);
  EXPECT_EQ(col.FindCode("zz"), -1);
  EXPECT_EQ(taken.StringAt(3), "zz");
  EXPECT_EQ(taken.StringAt(0), "a");

  // And mutating the original never leaks into the (now detached) copy.
  col.AppendString("yy");
  EXPECT_EQ(taken.FindCode("yy"), -1);
}

TEST(ColumnTest, ValueAtRoundTrip) {
  Column col(DataType::kString);
  col.AppendString("x");
  col.AppendNull();
  EXPECT_EQ(col.ValueAt(0), Value::Str("x"));
  EXPECT_TRUE(col.ValueAt(1).is_null());
}

TEST(ColumnTest, AppendValueDispatch) {
  Column ints(DataType::kInt64);
  EXPECT_TRUE(ints.AppendValue(Value::Int(2)).ok());
  EXPECT_TRUE(ints.AppendValue(Value::Double(3.7)).ok());
  EXPECT_EQ(ints.IntAt(1), 3);
  EXPECT_FALSE(ints.AppendValue(Value::Str("no")).ok());

  Column strs(DataType::kString);
  EXPECT_TRUE(strs.AppendValue(Value::Str("ok")).ok());
  EXPECT_TRUE(strs.AppendValue(Value::Null()).ok());
  EXPECT_EQ(strs.null_count(), 1u);
}

TEST(ColumnTest, MinMaxAsDouble) {
  Column col(DataType::kDouble);
  col.AppendDouble(3.0);
  col.AppendNull();
  col.AppendDouble(-1.0);
  auto mm = col.MinMaxAsDouble();
  ASSERT_TRUE(mm.ok());
  EXPECT_DOUBLE_EQ(mm.value().first, -1.0);
  EXPECT_DOUBLE_EQ(mm.value().second, 3.0);
}

TEST(ColumnTest, MinMaxErrors) {
  Column empty(DataType::kInt64);
  EXPECT_FALSE(empty.MinMaxAsDouble().ok());
  Column strs(DataType::kString);
  strs.AppendString("a");
  EXPECT_FALSE(strs.MinMaxAsDouble().ok());
  Column all_null(DataType::kDouble);
  all_null.AppendNull();
  EXPECT_FALSE(all_null.MinMaxAsDouble().ok());
}

TEST(ColumnTest, CountDistinct) {
  Column col(DataType::kInt64);
  for (int64_t v : {1, 2, 2, 3, 1}) col.AppendInt(v);
  col.AppendNull();
  EXPECT_EQ(col.CountDistinct(), 3u);

  Column strs(DataType::kString);
  strs.AppendString("a");
  strs.AppendString("b");
  strs.AppendString("a");
  EXPECT_EQ(strs.CountDistinct(), 2u);
}

TEST(ColumnTest, TakePreservesValuesAndNulls) {
  Column col(DataType::kString);
  col.AppendString("x");
  col.AppendNull();
  col.AppendString("y");
  Column taken = col.Take({2, 0, 1});
  EXPECT_EQ(taken.size(), 3u);
  EXPECT_EQ(taken.StringAt(0), "y");
  EXPECT_EQ(taken.StringAt(1), "x");
  EXPECT_TRUE(taken.IsNull(2));
  // Dictionary is shared by copy.
  EXPECT_EQ(taken.FindCode("x"), col.FindCode("x"));
}

TEST(ColumnTest, Factories) {
  auto ints = Column::FromInts(DataType::kDatetime, {10, 20});
  EXPECT_EQ(ints.type(), DataType::kDatetime);
  EXPECT_EQ(ints.IntAt(1), 20);
  auto dbls = Column::FromDoubles({1.5});
  EXPECT_DOUBLE_EQ(dbls.DoubleAt(0), 1.5);
  auto strs = Column::FromStrings({"p", "q"});
  EXPECT_EQ(strs.StringAt(0), "p");
}

Table MakeToyTable() {
  Table t;
  EXPECT_TRUE(t.AddColumn("id", Column::FromInts(DataType::kInt64, {1, 2, 3})).ok());
  EXPECT_TRUE(t.AddColumn("v", Column::FromDoubles({0.1, 0.2, 0.3})).ok());
  EXPECT_TRUE(t.AddColumn("s", Column::FromStrings({"a", "b", "c"})).ok());
  return t;
}

TEST(TableTest, BasicShape) {
  Table t = MakeToyTable();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_TRUE(t.HasColumn("v"));
  EXPECT_FALSE(t.HasColumn("nope"));
  EXPECT_EQ(t.NameAt(2), "s");
}

TEST(TableTest, DuplicateColumnRejected) {
  Table t = MakeToyTable();
  EXPECT_FALSE(t.AddColumn("id", Column::FromInts(DataType::kInt64, {1, 2, 3})).ok());
}

TEST(TableTest, SizeMismatchRejected) {
  Table t = MakeToyTable();
  EXPECT_FALSE(t.AddColumn("bad", Column::FromDoubles({1.0})).ok());
}

TEST(TableTest, GetColumnAndIndex) {
  Table t = MakeToyTable();
  auto col = t.GetColumn("v");
  ASSERT_TRUE(col.ok());
  EXPECT_DOUBLE_EQ(col.value()->DoubleAt(1), 0.2);
  EXPECT_FALSE(t.GetColumn("missing").ok());
  EXPECT_EQ(t.ColumnIndex("s").value(), 2u);
}

TEST(TableTest, SelectProjectsInOrder) {
  Table t = MakeToyTable();
  auto sel = t.Select({"s", "id"});
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel.value().num_columns(), 2u);
  EXPECT_EQ(sel.value().NameAt(0), "s");
  EXPECT_FALSE(t.Select({"nope"}).ok());
}

TEST(TableTest, TakeAndHead) {
  Table t = MakeToyTable();
  Table taken = t.Take({2, 0});
  EXPECT_EQ(taken.num_rows(), 2u);
  EXPECT_EQ(taken.ColumnAt(0).IntAt(0), 3);
  Table head = t.Head(2);
  EXPECT_EQ(head.num_rows(), 2u);
  EXPECT_EQ(t.Head(99).num_rows(), 3u);
}

TEST(TableTest, ReplaceAndDrop) {
  Table t = MakeToyTable();
  EXPECT_TRUE(t.ReplaceColumn("v", Column::FromDoubles({9.0, 8.0, 7.0})).ok());
  EXPECT_DOUBLE_EQ(t.GetColumn("v").value()->DoubleAt(0), 9.0);
  EXPECT_FALSE(t.ReplaceColumn("zz", Column::FromDoubles({1, 2, 3})).ok());
  EXPECT_TRUE(t.DropColumn("v").ok());
  EXPECT_FALSE(t.HasColumn("v"));
  EXPECT_EQ(t.num_columns(), 2u);
  // Index remap still works after drop.
  EXPECT_EQ(t.ColumnIndex("s").value(), 1u);
  EXPECT_FALSE(t.DropColumn("v").ok());
}

TEST(TableTest, ToStringRenders) {
  Table t = MakeToyTable();
  const std::string s = t.ToString(2);
  EXPECT_NE(s.find("id"), std::string::npos);
  EXPECT_NE(s.find("'a'"), std::string::npos);
  EXPECT_NE(s.find("3 rows total"), std::string::npos);
}

}  // namespace
}  // namespace featlib

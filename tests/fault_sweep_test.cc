/// \file fault_sweep_test.cc
/// \brief Randomized fault-injection sweep: under EnableRandom(seed, p) every
/// injected fault must surface as a clean typed Status — never a crash, a
/// deadlock, or silent garbage — and every slot that *does* succeed must be
/// byte-identical to an uninjected run.
///
/// CI drives this binary across seeds (scripts/ci.sh fault-sweep job) via:
///   FEATLIB_FAULT_SEED — base seed (default 1)
///   FEATLIB_FAULT_SWEEP_SEEDS — number of consecutive seeds (default 8)
///   FEATLIB_FAULT_PROB — per-site failure probability (default 0.08)

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "core/plan_io.h"
#include "golden_util.h"
#include "query/query_planner.h"

namespace featlib {
namespace {

using golden::SameBits;

#ifdef FEATLIB_FAULT_INJECTION

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtod(v, nullptr) : fallback;
}

struct Pair {
  Table relevant;
  Table training;
};

Pair MakePair() {
  Pair out;
  Rng rng(7);
  const char* depts[] = {"a", "b", "c"};
  Column k(DataType::kInt64), v(DataType::kDouble), level(DataType::kInt64),
      dept(DataType::kString);
  for (int i = 0; i < 160; ++i) {
    k.AppendInt(static_cast<int64_t>(rng.UniformInt(12)));
    if (rng.Bernoulli(0.2)) {
      v.AppendNull();
    } else {
      v.AppendDouble(rng.Normal(0, 5));
    }
    level.AppendInt(static_cast<int64_t>(rng.UniformInt(4)));
    dept.AppendString(depts[rng.UniformInt(3)]);
  }
  EXPECT_TRUE(out.relevant.AddColumn("k", std::move(k)).ok());
  EXPECT_TRUE(out.relevant.AddColumn("v", std::move(v)).ok());
  EXPECT_TRUE(out.relevant.AddColumn("level", std::move(level)).ok());
  EXPECT_TRUE(out.relevant.AddColumn("dept", std::move(dept)).ok());
  Column dk(DataType::kInt64);
  for (int i = 0; i < 15; ++i) dk.AppendInt(i);
  EXPECT_TRUE(out.training.AddColumn("k", std::move(dk)).ok());
  return out;
}

std::vector<AggQuery> SweepQueries() {
  auto make = [](AggFunction fn, std::vector<Predicate> preds) {
    AggQuery q;
    q.agg = fn;
    q.agg_attr = "v";
    q.group_keys = {"k"};
    q.predicates = std::move(preds);
    return q;
  };
  const Predicate pa = Predicate::Equals("dept", Value::Str("a"));
  const Predicate pb = Predicate::Range("level", 1.0, 3.0);
  return {
      make(AggFunction::kSum, {pa}),   make(AggFunction::kAvg, {pa}),
      make(AggFunction::kSum, {}),     make(AggFunction::kMax, {pb}),
      make(AggFunction::kCount, {pb}), make(AggFunction::kMin, {pa, pb}),
  };
}

// A failure escaping the harness as anything but these codes is a bug: the
// injector produces kInternal, inheritance preserves it, retries keep the
// last typed Status, and plan_io maps I/O trouble to kIOError/kNotFound.
bool IsCleanFailure(const Status& s) {
  switch (s.code()) {
    case StatusCode::kInternal:
    case StatusCode::kIOError:
    case StatusCode::kNotFound:
    case StatusCode::kInvalidArgument:
      return true;
    default:
      return false;
  }
}

TEST(FaultSweepTest, RandomFaultsSurfaceAsCleanTypedStatuses) {
  const Pair tables = MakePair();
  const std::vector<AggQuery> queries = SweepQueries();

  // Uninjected byte-identity reference.
  FaultInjector::Global().Reset();
  std::vector<std::vector<double>> expected;
  {
    QueryPlanner planner;
    auto r = planner.EvaluateMany(queries, tables.training, tables.relevant);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expected = std::move(r).ValueOrDie();
  }

  const uint64_t base_seed = EnvU64("FEATLIB_FAULT_SEED", 1);
  const uint64_t num_seeds = EnvU64("FEATLIB_FAULT_SWEEP_SEEDS", 8);
  const double prob = EnvDouble("FEATLIB_FAULT_PROB", 0.08);

  uint64_t total_faults = 0;
  for (uint64_t seed = base_seed; seed < base_seed + num_seeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    FaultInjector::Global().EnableRandom(seed, prob);

    // Serial planner: deterministic per-site call indices, so one seed is
    // one reproducible fault pattern (re-run a failing seed locally).
    QueryPlanner planner;
    auto r = planner.EvaluateManyIsolated(queries, tables.training,
                                          tables.relevant);
    if (!r.ok()) {
      EXPECT_TRUE(IsCleanFailure(r.status())) << r.status().ToString();
    } else {
      ASSERT_EQ(r.value().size(), queries.size());
      for (size_t i = 0; i < queries.size(); ++i) {
        const QueryPlanner::CandidateResult& slot = r.value()[i];
        if (!slot.status.ok()) {
          EXPECT_TRUE(IsCleanFailure(slot.status)) << slot.status.ToString();
          continue;
        }
        // Surviving under injection must mean *unchanged*: same bytes as a
        // run that never saw a fault.
        ASSERT_EQ(slot.values.size(), expected[i].size());
        for (size_t row = 0; row < slot.values.size(); ++row) {
          ASSERT_TRUE(SameBits(slot.values[row], expected[i][row]))
              << "candidate " << i << " row " << row;
        }
      }
    }

    // plan_io under the same fault pattern: write + read + parse round-trip
    // either succeeds whole or fails with a typed Status.
    AugmentationPlan plan;
    plan.queries = queries;
    const std::string path =
        ::testing::TempDir() + "/fault_sweep_plan_" + std::to_string(seed) +
        ".sql";
    const Status wrote =
        WriteAugmentationPlan(plan, "logs", tables.relevant, path);
    if (wrote.ok()) {
      auto read = ReadAugmentationPlan(path);
      if (read.ok()) {
        EXPECT_EQ(read.value().queries.size(), queries.size());
      } else {
        EXPECT_TRUE(IsCleanFailure(read.status())) << read.status().ToString();
      }
    } else {
      EXPECT_TRUE(IsCleanFailure(wrote)) << wrote.ToString();
    }
    std::remove(path.c_str());

    total_faults += FaultInjector::Global().faults_injected();
    FaultInjector::Global().Reset();
  }
  // The sweep is vacuous if nothing was ever injected; with the default 8
  // seeds x ~dozens of site calls x p=0.08 this fires with near certainty.
  if (num_seeds >= 4 && prob >= 0.05) EXPECT_GT(total_faults, 0u);
}

#else

TEST(FaultSweepTest, SkippedWithoutFaultInjectionBuild) { SUCCEED(); }

#endif  // FEATLIB_FAULT_INJECTION

}  // namespace
}  // namespace featlib

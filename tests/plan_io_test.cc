#include "core/plan_io.h"

#include <cmath>
#include <cstdio>
#include <gtest/gtest.h>

namespace featlib {
namespace {

Table MakeLogs() {
  Table t;
  EXPECT_TRUE(t.AddColumn("cname", Column::FromStrings({"u1", "u2"})).ok());
  EXPECT_TRUE(t.AddColumn("pprice", Column::FromDoubles({10, 20})).ok());
  EXPECT_TRUE(
      t.AddColumn("department", Column::FromStrings({"Electronics", "Toys"})).ok());
  EXPECT_TRUE(
      t.AddColumn("ts", Column::FromInts(DataType::kDatetime, {100, 200})).ok());
  return t;
}

AugmentationPlan MakePlan() {
  AugmentationPlan plan;
  AggQuery q1;
  q1.agg = AggFunction::kAvg;
  q1.agg_attr = "pprice";
  q1.group_keys = {"cname"};
  q1.predicates = {Predicate::Equals("department", Value::Str("Electronics")),
                   Predicate::Range("ts", 150.0, std::nullopt)};
  AggQuery q2;
  q2.agg = AggFunction::kCountDistinct;
  q2.agg_attr = "pprice";
  q2.group_keys = {"cname"};
  plan.queries = {q1, q2};
  plan.feature_names = {"avg_electronics_recent", "n_distinct_prices"};
  plan.valid_metrics = {0.7421, 0.6513};
  return plan;
}

TEST(PlanIoTest, RoundTripPreservesQueriesNamesAndMetrics) {
  Table logs = MakeLogs();
  AugmentationPlan plan = MakePlan();
  const std::string text = SerializeAugmentationPlan(plan, "logs", logs);
  auto loaded = ParseAugmentationPlan(text, logs);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString() << "\n" << text;
  ASSERT_EQ(loaded.value().queries.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(loaded.value().queries[i].CacheKey(), plan.queries[i].CacheKey());
    EXPECT_EQ(loaded.value().feature_names[i], plan.feature_names[i]);
    EXPECT_NEAR(loaded.value().valid_metrics[i], plan.valid_metrics[i], 1e-6);
  }
}

TEST(PlanIoTest, SerializedFormHasHeaderAndComments) {
  const std::string text =
      SerializeAugmentationPlan(MakePlan(), "logs", MakeLogs());
  EXPECT_NE(text.find("-- feataug plan v1"), std::string::npos);
  EXPECT_NE(text.find("-- queries: 2"), std::string::npos);
  EXPECT_NE(text.find("-- feature: avg_electronics_recent"), std::string::npos);
  EXPECT_NE(text.find("-- valid_metric: 0.742100"), std::string::npos);
}

TEST(PlanIoTest, HandEditedPlanWithoutMetadataLoads) {
  // A reviewer deleted the comments and one query, and edited a predicate.
  const std::string text =
      "SELECT cname, AVG(pprice) AS recent_avg FROM logs\n"
      "WHERE department = 'Toys' AND ts >= 120\n"
      "GROUP BY cname;\n";
  auto loaded = ParseAugmentationPlan(text, MakeLogs());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().queries.size(), 1u);
  // Name falls back to the SQL alias; metric is NaN (unknown).
  EXPECT_EQ(loaded.value().feature_names[0], "recent_avg");
  EXPECT_TRUE(std::isnan(loaded.value().valid_metrics[0]));
}

TEST(PlanIoTest, AliaslessStatementsGetGeneratedNames) {
  const std::string text =
      "SELECT cname, SUM(pprice) FROM logs GROUP BY cname;\n"
      "SELECT cname, MAX(pprice) FROM logs GROUP BY cname;\n";
  auto loaded = ParseAugmentationPlan(text);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().feature_names[0], "feature_0");
  EXPECT_EQ(loaded.value().feature_names[1], "feature_1");
}

TEST(PlanIoTest, CollidingNamesDedupeWithSuffixRule) {
  // An explicit name colliding with a regenerated "feature_<i>" (and an
  // exact duplicate of an explicit name) must come out unique.
  const std::string text =
      "-- feature: feature_1\n"
      "SELECT cname, SUM(pprice) FROM logs GROUP BY cname;\n"
      "SELECT cname, MAX(pprice) FROM logs GROUP BY cname;\n"
      "-- feature: feature_1\n"
      "SELECT cname, MIN(pprice) FROM logs GROUP BY cname;\n";
  auto loaded = ParseAugmentationPlan(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().feature_names.size(), 3u);
  EXPECT_EQ(loaded.value().feature_names[0], "feature_1");
  EXPECT_EQ(loaded.value().feature_names[1], "feature_1_2");
  EXPECT_EQ(loaded.value().feature_names[2], "feature_1_3");
}

TEST(PlanIoTest, DuplicateSqlAliasesDedupe) {
  const std::string text =
      "SELECT cname, SUM(pprice) AS spend FROM logs GROUP BY cname;\n"
      "SELECT cname, MAX(pprice) AS spend FROM logs GROUP BY cname;\n";
  auto loaded = ParseAugmentationPlan(text);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().feature_names[0], "spend");
  EXPECT_EQ(loaded.value().feature_names[1], "spend_2");
}

TEST(PlanIoTest, MalformedSqlFails) {
  EXPECT_FALSE(ParseAugmentationPlan("-- feataug plan v1\nSELECT oops;").ok());
}

TEST(PlanIoTest, SchemaValidationCatchesEditsAgainstWrongColumns) {
  const std::string text =
      "SELECT cname, AVG(pprice) FROM logs WHERE nope >= 1 GROUP BY cname;";
  EXPECT_TRUE(ParseAugmentationPlan(text).ok());  // grammar-valid
  EXPECT_FALSE(ParseAugmentationPlan(text, MakeLogs()).ok());  // schema-invalid
}

TEST(PlanIoTest, FileRoundTrip) {
  Table logs = MakeLogs();
  AugmentationPlan plan = MakePlan();
  const std::string path = ::testing::TempDir() + "/plan_io_test.sql";
  ASSERT_TRUE(WriteAugmentationPlan(plan, "logs", logs, path).ok());
  auto loaded = ReadAugmentationPlan(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().queries.size(), 2u);
  EXPECT_EQ(loaded.value().queries[0].CacheKey(), plan.queries[0].CacheKey());
  std::remove(path.c_str());
}

TEST(PlanIoTest, MissingFileIsNotFound) {
  auto loaded = ReadAugmentationPlan("/nonexistent/plan.sql");
  ASSERT_FALSE(loaded.ok());
}

TEST(PlanIoTest, CommentsInsideScriptsAreIgnoredByTheParser) {
  const std::string text =
      "-- a stray remark\n"
      "SELECT cname, AVG(pprice) -- trailing comment\n"
      "FROM logs\n"
      "-- mid-query comment\n"
      "GROUP BY cname;\n";
  auto loaded = ParseAugmentationPlan(text, MakeLogs());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().queries.size(), 1u);
}

}  // namespace
}  // namespace featlib

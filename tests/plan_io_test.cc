#include "core/plan_io.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>

#include "common/fault_injection.h"

namespace featlib {
namespace {

Table MakeLogs() {
  Table t;
  EXPECT_TRUE(t.AddColumn("cname", Column::FromStrings({"u1", "u2"})).ok());
  EXPECT_TRUE(t.AddColumn("pprice", Column::FromDoubles({10, 20})).ok());
  EXPECT_TRUE(
      t.AddColumn("department", Column::FromStrings({"Electronics", "Toys"})).ok());
  EXPECT_TRUE(
      t.AddColumn("ts", Column::FromInts(DataType::kDatetime, {100, 200})).ok());
  return t;
}

AugmentationPlan MakePlan() {
  AugmentationPlan plan;
  AggQuery q1;
  q1.agg = AggFunction::kAvg;
  q1.agg_attr = "pprice";
  q1.group_keys = {"cname"};
  q1.predicates = {Predicate::Equals("department", Value::Str("Electronics")),
                   Predicate::Range("ts", 150.0, std::nullopt)};
  AggQuery q2;
  q2.agg = AggFunction::kCountDistinct;
  q2.agg_attr = "pprice";
  q2.group_keys = {"cname"};
  plan.queries = {q1, q2};
  plan.feature_names = {"avg_electronics_recent", "n_distinct_prices"};
  plan.valid_metrics = {0.7421, 0.6513};
  return plan;
}

TEST(PlanIoTest, RoundTripPreservesQueriesNamesAndMetrics) {
  Table logs = MakeLogs();
  AugmentationPlan plan = MakePlan();
  const std::string text = SerializeAugmentationPlan(plan, "logs", logs);
  auto loaded = ParseAugmentationPlan(text, logs);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString() << "\n" << text;
  ASSERT_EQ(loaded.value().queries.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(loaded.value().queries[i].CacheKey(), plan.queries[i].CacheKey());
    EXPECT_EQ(loaded.value().feature_names[i], plan.feature_names[i]);
    EXPECT_NEAR(loaded.value().valid_metrics[i], plan.valid_metrics[i], 1e-6);
  }
}

TEST(PlanIoTest, SerializedFormHasHeaderAndComments) {
  const std::string text =
      SerializeAugmentationPlan(MakePlan(), "logs", MakeLogs());
  EXPECT_NE(text.find("-- feataug plan v2"), std::string::npos);
  EXPECT_NE(text.find("-- queries: 2"), std::string::npos);
  EXPECT_NE(text.find("-- feature: avg_electronics_recent"), std::string::npos);
  EXPECT_NE(text.find("-- valid_metric: 0.742100"), std::string::npos);
  // v2 integrity envelope: the file ends with a crc32 footer line.
  EXPECT_NE(text.find("\n-- crc32: "), std::string::npos);
}

TEST(PlanIoTest, BitFlipAnywhereInV2PlanIsDataLoss) {
  Table logs = MakeLogs();
  const std::string full = SerializeAugmentationPlan(MakePlan(), "logs", logs);
  // Flip one bit at a stride of positions across the file. Every corruption
  // must surface as a typed kDataLoss (crc mismatch / bad header / bad
  // footer) or kInvalidArgument (the flip made the SQL unparseable before
  // metadata checks ran) — never a silent partial plan and never a crash.
  for (size_t pos = 0; pos < full.size(); pos += 5) {
    std::string corrupt = full;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x04);
    if (corrupt == full) continue;
    auto loaded = ParseAugmentationPlan(corrupt);
    ASSERT_FALSE(loaded.ok()) << "flip at " << pos << " went undetected";
    EXPECT_TRUE(loaded.status().code() == StatusCode::kDataLoss ||
                loaded.status().code() == StatusCode::kInvalidArgument)
        << "flip at " << pos << ": " << loaded.status().ToString();
  }
}

TEST(PlanIoTest, HandEditedPlanWithoutMetadataLoads) {
  // A reviewer deleted the comments and one query, and edited a predicate.
  const std::string text =
      "SELECT cname, AVG(pprice) AS recent_avg FROM logs\n"
      "WHERE department = 'Toys' AND ts >= 120\n"
      "GROUP BY cname;\n";
  auto loaded = ParseAugmentationPlan(text, MakeLogs());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().queries.size(), 1u);
  // Name falls back to the SQL alias; metric is NaN (unknown).
  EXPECT_EQ(loaded.value().feature_names[0], "recent_avg");
  EXPECT_TRUE(std::isnan(loaded.value().valid_metrics[0]));
}

TEST(PlanIoTest, AliaslessStatementsGetGeneratedNames) {
  const std::string text =
      "SELECT cname, SUM(pprice) FROM logs GROUP BY cname;\n"
      "SELECT cname, MAX(pprice) FROM logs GROUP BY cname;\n";
  auto loaded = ParseAugmentationPlan(text);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().feature_names[0], "feature_0");
  EXPECT_EQ(loaded.value().feature_names[1], "feature_1");
}

TEST(PlanIoTest, CollidingNamesDedupeWithSuffixRule) {
  // An explicit name colliding with a regenerated "feature_<i>" (and an
  // exact duplicate of an explicit name) must come out unique.
  const std::string text =
      "-- feature: feature_1\n"
      "SELECT cname, SUM(pprice) FROM logs GROUP BY cname;\n"
      "SELECT cname, MAX(pprice) FROM logs GROUP BY cname;\n"
      "-- feature: feature_1\n"
      "SELECT cname, MIN(pprice) FROM logs GROUP BY cname;\n";
  auto loaded = ParseAugmentationPlan(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().feature_names.size(), 3u);
  EXPECT_EQ(loaded.value().feature_names[0], "feature_1");
  EXPECT_EQ(loaded.value().feature_names[1], "feature_1_2");
  EXPECT_EQ(loaded.value().feature_names[2], "feature_1_3");
}

TEST(PlanIoTest, DuplicateSqlAliasesDedupe) {
  const std::string text =
      "SELECT cname, SUM(pprice) AS spend FROM logs GROUP BY cname;\n"
      "SELECT cname, MAX(pprice) AS spend FROM logs GROUP BY cname;\n";
  auto loaded = ParseAugmentationPlan(text);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().feature_names[0], "spend");
  EXPECT_EQ(loaded.value().feature_names[1], "spend_2");
}

TEST(PlanIoTest, MalformedSqlFails) {
  EXPECT_FALSE(ParseAugmentationPlan("-- feataug plan v1\nSELECT oops;").ok());
}

TEST(PlanIoTest, SchemaValidationCatchesEditsAgainstWrongColumns) {
  const std::string text =
      "SELECT cname, AVG(pprice) FROM logs WHERE nope >= 1 GROUP BY cname;";
  EXPECT_TRUE(ParseAugmentationPlan(text).ok());  // grammar-valid
  EXPECT_FALSE(ParseAugmentationPlan(text, MakeLogs()).ok());  // schema-invalid
}

TEST(PlanIoTest, FileRoundTrip) {
  Table logs = MakeLogs();
  AugmentationPlan plan = MakePlan();
  const std::string path = ::testing::TempDir() + "/plan_io_test.sql";
  ASSERT_TRUE(WriteAugmentationPlan(plan, "logs", logs, path).ok());
  auto loaded = ReadAugmentationPlan(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().queries.size(), 2u);
  EXPECT_EQ(loaded.value().queries[0].CacheKey(), plan.queries[0].CacheKey());
  std::remove(path.c_str());
}

TEST(PlanIoTest, MissingFileIsNotFound) {
  auto loaded = ReadAugmentationPlan("/nonexistent/plan.sql");
  ASSERT_FALSE(loaded.ok());
}

#ifdef FEATLIB_FAULT_INJECTION

TEST(PlanIoTest, FailedSaveLeavesPreviousPlanIntact) {
  // The durable-save contract at the plan level: an ENOSPC-class failure
  // while writing a new plan (injected at the shared file_io.write site,
  // which tears the temp file mid-write) leaves the previously saved plan
  // byte-identical and loadable.
  Table logs = MakeLogs();
  AugmentationPlan first = MakePlan();
  const std::string path = ::testing::TempDir() + "/plan_io_durable.sql";
  ASSERT_TRUE(WriteAugmentationPlan(first, "logs", logs, path).ok());

  AugmentationPlan second = MakePlan();
  second.queries.pop_back();  // a different plan entirely
  second.feature_names.pop_back();
  second.valid_metrics.pop_back();
  FaultInjector::Global().ArmSite("file_io.write", 0);
  Status st = WriteAugmentationPlan(second, "logs", logs, path);
  FaultInjector::Global().Reset();
  ASSERT_FALSE(st.ok());

  auto loaded = ReadAugmentationPlan(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().queries.size(), first.queries.size());
  EXPECT_EQ(loaded.value().queries[0].CacheKey(), first.queries[0].CacheKey());

  // The retried save lands the new generation whole.
  ASSERT_TRUE(WriteAugmentationPlan(second, "logs", logs, path).ok());
  loaded = ReadAugmentationPlan(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().queries.size(), second.queries.size());
  std::remove(path.c_str());
}

#endif  // FEATLIB_FAULT_INJECTION

// --- Corruption corpus -------------------------------------------------------
//
// Every corrupt input must fail with a clean typed Status (kInvalidArgument
// from the parser, kIOError/kNotFound from the file layer) — never a crash,
// an uncaught exception, or a silently-wrong plan.

TEST(PlanIoTest, TruncatedMidStatementFailsCleanly) {
  Table logs = MakeLogs();
  const std::string full = SerializeAugmentationPlan(MakePlan(), "logs", logs);
  // Chop the script at every prefix length. Once enough of the v2 header
  // survives to identify the format (the "-- feataug plan" prefix), any
  // truncation short of the complete file must fail kDataLoss: the crc32
  // footer is gone or partial. Cuts inside the first few header bytes
  // degrade to the lenient legacy path (they look like a hand comment) and
  // parse as an empty script — the atomic writer is what makes such torn
  // destination files unobservable in practice.
  const size_t header_prefix = std::string("-- feataug plan").size();
  for (size_t cut = 0; cut < full.size(); cut += 7) {
    auto loaded = ParseAugmentationPlan(full.substr(0, cut));
    if (cut >= header_prefix && cut + 1 < full.size()) {
      ASSERT_FALSE(loaded.ok()) << "torn v2 file loaded at cut=" << cut;
      EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
          << "cut=" << cut << ": " << loaded.status().ToString();
    } else if (!loaded.ok()) {
      EXPECT_TRUE(loaded.status().code() == StatusCode::kInvalidArgument ||
                  loaded.status().code() == StatusCode::kDataLoss)
          << "cut=" << cut << ": " << loaded.status().ToString();
    } else {
      EXPECT_LE(loaded.value().queries.size(), MakePlan().queries.size())
          << "cut=" << cut;
    }
  }
}

TEST(PlanIoTest, GarbageBytesFailCleanly) {
  const std::string garbage_cases[] = {
      "\xff\xfe\x01\x02 not sql at all",
      "SELECT cname, AVG(pprice FROM logs GROUP BY cname;",  // unbalanced
      "SELECT cname, AVG(pprice) FROM logs GROUP BY cname WHERE;",
      "GROUP BY; SELECT;",
      std::string(4096, ';'),
      "SELECT cname, AVG(pprice) FROM logs WHERE ts >= 1e99999 GROUP BY cname;",
  };
  for (const std::string& text : garbage_cases) {
    auto loaded = ParseAugmentationPlan(text);
    if (!loaded.ok()) {
      EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument)
          << loaded.status().ToString();
    }
  }
}

TEST(PlanIoTest, NulBytesAreRejectedAsCorrupt) {
  std::string text =
      "SELECT cname, AVG(pprice) FROM logs GROUP BY cname;";
  text[10] = '\0';
  auto loaded = ParseAugmentationPlan(text);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("NUL"), std::string::npos);
}

TEST(PlanIoTest, EmptyAndHeaderlessInputs) {
  // An empty script is an empty plan, not an error (a fresh file is valid).
  auto empty = ParseAugmentationPlan("");
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  EXPECT_TRUE(empty.value().queries.empty());
  // Whitespace/comments only: same.
  auto comments = ParseAugmentationPlan("-- just a note\n\n  \n");
  ASSERT_TRUE(comments.ok());
  EXPECT_TRUE(comments.value().queries.empty());
}

TEST(PlanIoTest, BadMetadataDegradesToDefaultsNotFailure) {
  // Unparseable valid_metric and stray metadata keys must not sink a plan
  // whose SQL is fine.
  const std::string text =
      "-- feature: spend\n"
      "-- valid_metric: not-a-number\n"
      "-- unknown_key: whatever\n"
      "SELECT cname, SUM(pprice) FROM logs GROUP BY cname;\n";
  auto loaded = ParseAugmentationPlan(text, MakeLogs());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().queries.size(), 1u);
  EXPECT_EQ(loaded.value().feature_names[0], "spend");
  EXPECT_TRUE(std::isnan(loaded.value().valid_metrics[0]));
}

TEST(PlanIoTest, CorruptFileOnDiskFailsCleanly) {
  const std::string path = ::testing::TempDir() + "/plan_io_corrupt.sql";
  {
    std::ofstream out(path, std::ios::binary);
    out << "SELECT cname, AVG(pp";  // truncated mid-token
    out << '\0';
    out << "\xde\xad\xbe\xef";
  }
  auto loaded = ReadAugmentationPlan(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(PlanIoTest, ReadingADirectoryIsATypedError) {
  auto loaded = ReadAugmentationPlan(::testing::TempDir());
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().code() == StatusCode::kIOError ||
              loaded.status().code() == StatusCode::kNotFound ||
              loaded.status().code() == StatusCode::kInvalidArgument)
      << loaded.status().ToString();
}

TEST(PlanIoTest, WriteToUnwritablePathIsIOError) {
  const Status s = WriteAugmentationPlan(MakePlan(), "logs", MakeLogs(),
                                         "/nonexistent_dir/plan.sql");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError) << s.ToString();
}

TEST(PlanIoTest, CommentsInsideScriptsAreIgnoredByTheParser) {
  const std::string text =
      "-- a stray remark\n"
      "SELECT cname, AVG(pprice) -- trailing comment\n"
      "FROM logs\n"
      "-- mid-query comment\n"
      "GROUP BY cname;\n";
  auto loaded = ParseAugmentationPlan(text, MakeLogs());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().queries.size(), 1u);
}

}  // namespace
}  // namespace featlib

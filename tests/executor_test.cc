#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>

#include "common/rng.h"

#include "query/executor.h"

namespace featlib {
namespace {

// The running example of the paper: User_Logs with purchases per customer.
Table MakeUserLogs() {
  Table t;
  EXPECT_TRUE(t.AddColumn("cname",
                          Column::FromStrings({"ann", "ann", "bob", "bob", "bob",
                                               "cat"}))
                  .ok());
  EXPECT_TRUE(
      t.AddColumn("pprice", Column::FromDoubles({10, 30, 5, 15, 100, 7})).ok());
  EXPECT_TRUE(t.AddColumn("department",
                          Column::FromStrings({"Electronics", "Books",
                                               "Electronics", "Electronics",
                                               "Books", "Toys"}))
                  .ok());
  EXPECT_TRUE(t.AddColumn("ts", Column::FromInts(DataType::kDatetime,
                                                 {100, 200, 100, 300, 300, 100}))
                  .ok());
  return t;
}

AggQuery AvgPriceQuery() {
  AggQuery q;
  q.agg = AggFunction::kAvg;
  q.agg_attr = "pprice";
  q.group_keys = {"cname"};
  return q;
}

TEST(ExecutorTest, GroupByWithoutPredicates) {
  Table logs = MakeUserLogs();
  auto result = ExecuteAggQuery(AvgPriceQuery(), logs);
  ASSERT_TRUE(result.ok());
  const Table& out = result.value();
  EXPECT_EQ(out.num_rows(), 3u);
  ASSERT_TRUE(out.HasColumn("feature"));
  // First-seen group order: ann, bob, cat.
  EXPECT_EQ(out.GetColumn("cname").value()->StringAt(0), "ann");
  EXPECT_DOUBLE_EQ(out.GetColumn("feature").value()->DoubleAt(0), 20.0);
  EXPECT_DOUBLE_EQ(out.GetColumn("feature").value()->DoubleAt(1), 40.0);
  EXPECT_DOUBLE_EQ(out.GetColumn("feature").value()->DoubleAt(2), 7.0);
}

TEST(ExecutorTest, PredicateAwareQueryFromThePaper) {
  // SELECT cname, AVG(pprice) WHERE department='Electronics' AND ts >= 150.
  Table logs = MakeUserLogs();
  AggQuery q = AvgPriceQuery();
  q.predicates = {Predicate::Equals("department", Value::Str("Electronics")),
                  Predicate::Range("ts", 150.0, std::nullopt)};
  auto result = ExecuteAggQuery(q, logs);
  ASSERT_TRUE(result.ok());
  // Only bob's row (15, ts=300, Electronics) qualifies.
  EXPECT_EQ(result.value().num_rows(), 1u);
  EXPECT_EQ(result.value().GetColumn("cname").value()->StringAt(0), "bob");
  EXPECT_DOUBLE_EQ(result.value().GetColumn("feature").value()->DoubleAt(0), 15.0);
}

TEST(ExecutorTest, EmptyFilterResultYieldsEmptyTable) {
  Table logs = MakeUserLogs();
  AggQuery q = AvgPriceQuery();
  q.predicates = {Predicate::Range("ts", 1e9, std::nullopt)};
  auto result = ExecuteAggQuery(q, logs);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_rows(), 0u);
}

TEST(ExecutorTest, NullGroupKeysDropped) {
  Table t;
  Column key(DataType::kInt64);
  key.AppendInt(1);
  key.AppendNull();
  key.AppendInt(1);
  EXPECT_TRUE(t.AddColumn("k", std::move(key)).ok());
  EXPECT_TRUE(t.AddColumn("v", Column::FromDoubles({1, 2, 3})).ok());
  AggQuery q;
  q.agg = AggFunction::kSum;
  q.agg_attr = "v";
  q.group_keys = {"k"};
  auto result = ExecuteAggQuery(q, t);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_rows(), 1u);
  EXPECT_DOUBLE_EQ(result.value().GetColumn("feature").value()->DoubleAt(0), 4.0);
}

TEST(ExecutorTest, NullAggregateBecomesNullFeature) {
  Table t;
  EXPECT_TRUE(t.AddColumn("k", Column::FromInts(DataType::kInt64, {1})).ok());
  EXPECT_TRUE(t.AddColumn("v", Column::FromDoubles({1.0})).ok());
  AggQuery q;
  q.agg = AggFunction::kVarSample;  // undefined for single-row group
  q.agg_attr = "v";
  q.group_keys = {"k"};
  auto result = ExecuteAggQuery(q, t);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().GetColumn("feature").value()->IsNull(0));
}

TEST(ExecutorTest, CompoundGroupKeys) {
  Table t;
  EXPECT_TRUE(t.AddColumn("a", Column::FromInts(DataType::kInt64, {1, 1, 2, 1})).ok());
  EXPECT_TRUE(t.AddColumn("b", Column::FromInts(DataType::kInt64, {7, 8, 7, 7})).ok());
  EXPECT_TRUE(t.AddColumn("v", Column::FromDoubles({1, 2, 3, 4})).ok());
  AggQuery q;
  q.agg = AggFunction::kSum;
  q.agg_attr = "v";
  q.group_keys = {"a", "b"};
  auto result = ExecuteAggQuery(q, t);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_rows(), 3u);  // (1,7), (1,8), (2,7)
  EXPECT_DOUBLE_EQ(result.value().GetColumn("feature").value()->DoubleAt(0), 5.0);
}

TEST(ExecutorTest, ValidationErrors) {
  Table logs = MakeUserLogs();
  AggQuery q = AvgPriceQuery();
  q.group_keys = {};
  EXPECT_FALSE(ExecuteAggQuery(q, logs).ok());

  q = AvgPriceQuery();
  q.agg_attr = "missing";
  EXPECT_FALSE(ExecuteAggQuery(q, logs).ok());

  q = AvgPriceQuery();
  q.agg = AggFunction::kSum;
  q.agg_attr = "department";  // SUM over categorical
  EXPECT_FALSE(ExecuteAggQuery(q, logs).ok());

  q = AvgPriceQuery();
  q.predicates = {Predicate::Range("department", 0.0, 1.0)};
  EXPECT_FALSE(ExecuteAggQuery(q, logs).ok());
}

TEST(ExecutorTest, CategoricalAggregations) {
  Table logs = MakeUserLogs();
  AggQuery q;
  q.agg = AggFunction::kCountDistinct;
  q.agg_attr = "department";
  q.group_keys = {"cname"};
  auto result = ExecuteAggQuery(q, logs);
  ASSERT_TRUE(result.ok());
  // ann: Electronics+Books=2, bob: 2, cat: 1.
  EXPECT_DOUBLE_EQ(result.value().GetColumn("feature").value()->DoubleAt(0), 2.0);
  EXPECT_DOUBLE_EQ(result.value().GetColumn("feature").value()->DoubleAt(2), 1.0);
}

TEST(ExecutorTest, SqlRendering) {
  Table logs = MakeUserLogs();
  AggQuery q = AvgPriceQuery();
  q.predicates = {Predicate::Equals("department", Value::Str("Electronics")),
                  Predicate::Range("ts", 150.0, std::nullopt)};
  const std::string sql = q.ToSql("User_Logs", logs);
  EXPECT_NE(sql.find("SELECT cname, AVG(pprice) AS feature"), std::string::npos);
  EXPECT_NE(sql.find("FROM User_Logs"), std::string::npos);
  EXPECT_NE(sql.find("department = 'Electronics'"), std::string::npos);
  EXPECT_NE(sql.find("ts >= 150"), std::string::npos);
  EXPECT_NE(sql.find("GROUP BY cname"), std::string::npos);
}

// --- Randomized executor-vs-naive reference ---------------------------------

/// Brute-force evaluation of a query: manual predicate check per row, rows
/// grouped through a map, aggregates delegated to ComputeAggregate (whose
/// own correctness is covered against naive formulas in aggregate_test).
/// This pins down the executor's filter + group-by + alignment plumbing.
std::unordered_map<int64_t, double> NaiveEvaluate(const AggQuery& q,
                                                  const Table& r) {
  const Column* key = r.GetColumn(q.group_keys[0]).value();
  const Column* agg = r.GetColumn(q.agg_attr).value();
  std::unordered_map<int64_t, std::vector<uint32_t>> groups;
  for (size_t row = 0; row < r.num_rows(); ++row) {
    if (key->IsNull(row)) continue;
    bool pass = true;
    for (const Predicate& p : q.predicates) {
      const Column* col = r.GetColumn(p.attr).value();
      if (col->IsNull(row)) {
        pass = false;
        break;
      }
      if (p.kind == Predicate::Kind::kEquals) {
        if (col->type() == DataType::kString) {
          pass = col->StringAt(row) == p.equals_value.string_value();
        } else {
          pass = col->AsDouble(row) == p.equals_value.AsDouble();
        }
      } else {
        const double v = col->AsDouble(row);
        if (p.has_lo && v < p.lo) pass = false;
        if (p.has_hi && v > p.hi) pass = false;
      }
      if (!pass) break;
    }
    if (pass) groups[key->IntAt(row)].push_back(static_cast<uint32_t>(row));
  }
  std::unordered_map<int64_t, double> out;
  for (const auto& [k, rows] : groups) {
    out[k] = ComputeAggregate(q.agg, *agg, rows);
  }
  return out;
}

TEST(ExecutorTest, RandomizedAgainstNaiveReference) {
  Rng rng(314);
  for (int trial = 0; trial < 60; ++trial) {
    // Random relevant table: int64 key, double value with nulls, int level,
    // string dept.
    const size_t n = 30 + rng.UniformInt(120);
    Table r;
    Column key(DataType::kInt64), value(DataType::kDouble);
    Column level(DataType::kInt64), dept(DataType::kString);
    const char* depts[] = {"a", "b", "c"};
    for (size_t i = 0; i < n; ++i) {
      key.AppendInt(static_cast<int64_t>(rng.UniformInt(8)));
      if (rng.Bernoulli(0.15)) {
        value.AppendNull();
      } else {
        value.AppendDouble(rng.Normal(0, 10));
      }
      level.AppendInt(static_cast<int64_t>(rng.UniformInt(5)));
      dept.AppendString(depts[rng.UniformInt(3)]);
    }
    ASSERT_TRUE(r.AddColumn("key", std::move(key)).ok());
    ASSERT_TRUE(r.AddColumn("value", std::move(value)).ok());
    ASSERT_TRUE(r.AddColumn("level", std::move(level)).ok());
    ASSERT_TRUE(r.AddColumn("dept", std::move(dept)).ok());

    // Random query over it.
    AggQuery q;
    auto fns = AllAggFunctions();
    q.agg = fns[rng.UniformInt(fns.size())];
    q.agg_attr = "value";
    q.group_keys = {"key"};
    if (rng.Bernoulli(0.5)) {
      q.predicates.push_back(
          Predicate::Equals("dept", Value::Str(depts[rng.UniformInt(3)])));
    }
    if (rng.Bernoulli(0.5)) {
      const double lo = rng.Normal(0, 5);
      q.predicates.push_back(Predicate::Range(
          "level", 0.0, static_cast<double>(rng.UniformInt(5))));
      (void)lo;
    }

    const auto expected = NaiveEvaluate(q, r);
    auto result = ExecuteAggQuery(q, r);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const Table& out = result.value();
    ASSERT_EQ(out.num_rows(), expected.size()) << "trial " << trial;
    const Column* out_key = out.GetColumn("key").value();
    const Column* out_feature = out.GetColumn("feature").value();
    for (size_t row = 0; row < out.num_rows(); ++row) {
      auto it = expected.find(out_key->IntAt(row));
      ASSERT_NE(it, expected.end()) << "trial " << trial;
      const bool out_nan =
          out_feature->IsNull(row) || std::isnan(out_feature->AsDouble(row));
      if (std::isnan(it->second)) {
        EXPECT_TRUE(out_nan) << "trial " << trial;
      } else {
        ASSERT_FALSE(out_nan) << "trial " << trial;
        EXPECT_NEAR(out_feature->DoubleAt(row), it->second, 1e-9)
            << "trial " << trial << " agg " << AggFunctionName(q.agg);
      }
    }
  }
}

TEST(ExecutorTest, CacheKeyDistinguishesQueries) {
  AggQuery a = AvgPriceQuery();
  AggQuery b = AvgPriceQuery();
  EXPECT_EQ(a.CacheKey(), b.CacheKey());
  b.agg = AggFunction::kSum;
  EXPECT_NE(a.CacheKey(), b.CacheKey());
  b = AvgPriceQuery();
  b.predicates = {Predicate::Range("ts", 1.0, std::nullopt)};
  EXPECT_NE(a.CacheKey(), b.CacheKey());
}

}  // namespace
}  // namespace featlib

#include "query/sql_parser.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace featlib {
namespace {

Table MakeLogs() {
  Table t;
  EXPECT_TRUE(t.AddColumn("cname", Column::FromStrings({"u1", "u2", "u1"})).ok());
  EXPECT_TRUE(t.AddColumn("pprice", Column::FromDoubles({10, 20, 30})).ok());
  EXPECT_TRUE(
      t.AddColumn("department", Column::FromStrings({"Electronics", "Toys", "Toys"}))
          .ok());
  EXPECT_TRUE(
      t.AddColumn("ts", Column::FromInts(DataType::kDatetime, {100, 200, 300})).ok());
  EXPECT_TRUE(t.AddColumn("level", Column::FromInts(DataType::kInt64, {1, 2, 3})).ok());
  return t;
}

TEST(SqlParserTest, ParsesThePaperExampleQuery) {
  // Example 4 of the paper, modulo the datetime spelling.
  auto parsed = ParseAggQuerySql(
      "SELECT cname, AVG(pprice) AS avgprice\n"
      "FROM User_Logs\n"
      "WHERE department = 'Electronics' AND ts >= 200\n"
      "GROUP BY cname");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const ParsedAggQuery& q = parsed.value();
  EXPECT_EQ(q.relation, "User_Logs");
  EXPECT_EQ(q.feature_alias, "avgprice");
  EXPECT_EQ(q.query.agg, AggFunction::kAvg);
  EXPECT_EQ(q.query.agg_attr, "pprice");
  EXPECT_EQ(q.query.group_keys, (std::vector<std::string>{"cname"}));
  ASSERT_EQ(q.query.predicates.size(), 2u);
  EXPECT_EQ(q.query.predicates[0].kind, Predicate::Kind::kEquals);
  EXPECT_EQ(q.query.predicates[0].equals_value.string_value(), "Electronics");
  EXPECT_EQ(q.query.predicates[1].kind, Predicate::Kind::kRange);
  EXPECT_TRUE(q.query.predicates[1].has_lo);
  EXPECT_FALSE(q.query.predicates[1].has_hi);
  EXPECT_DOUBLE_EQ(q.query.predicates[1].lo, 200.0);
}

TEST(SqlParserTest, KeywordsAreCaseInsensitive) {
  auto parsed = ParseAggQuerySql(
      "select cname, sum(pprice) as f from r where ts between 1 and 5 "
      "group by cname");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().query.agg, AggFunction::kSum);
  ASSERT_EQ(parsed.value().query.predicates.size(), 1u);
  EXPECT_TRUE(parsed.value().query.predicates[0].has_lo);
  EXPECT_TRUE(parsed.value().query.predicates[0].has_hi);
}

TEST(SqlParserTest, MultiKeyGroupBy) {
  auto parsed = ParseAggQuerySql(
      "SELECT user_id, merchant_id, COUNT(rid) AS feature FROM logs "
      "GROUP BY user_id, merchant_id");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().query.group_keys,
            (std::vector<std::string>{"user_id", "merchant_id"}));
}

TEST(SqlParserTest, AliasDefaultsToFeature) {
  auto parsed =
      ParseAggQuerySql("SELECT k, MAX(x) FROM r GROUP BY k");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().feature_alias, "feature");
}

TEST(SqlParserTest, EscapedQuoteInStringLiteral) {
  auto parsed = ParseAggQuerySql(
      "SELECT k, COUNT(x) FROM r WHERE dept = 'it''s' GROUP BY k");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().query.predicates[0].equals_value.string_value(), "it's");
}

TEST(SqlParserTest, IntegerAndFloatEqualityLiterals) {
  auto p1 = ParseAggQuerySql("SELECT k, COUNT(x) FROM r WHERE lvl = 3 GROUP BY k");
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(p1.value().query.predicates[0].equals_value.tag(), Value::Tag::kInt);
  auto p2 = ParseAggQuerySql("SELECT k, COUNT(x) FROM r WHERE lvl = 3.5 GROUP BY k");
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p2.value().query.predicates[0].equals_value.tag(), Value::Tag::kDouble);
}

TEST(SqlParserTest, NegativeAndScientificBounds) {
  auto parsed = ParseAggQuerySql(
      "SELECT k, AVG(x) FROM r WHERE a >= -2.5 AND b <= 1e+06 GROUP BY k");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed.value().query.predicates[0].lo, -2.5);
  EXPECT_DOUBLE_EQ(parsed.value().query.predicates[1].hi, 1e6);
}

TEST(SqlParserTest, TrueConjunctContributesNoPredicate) {
  auto parsed = ParseAggQuerySql(
      "SELECT k, COUNT(x) FROM r WHERE TRUE AND a >= 1 GROUP BY k");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().query.predicates.size(), 1u);
}

TEST(SqlParserTest, ScriptParsesMultipleStatements) {
  auto parsed = ParseAggQueryScript(
      ";SELECT k, COUNT(x) FROM r GROUP BY k;\n"
      "SELECT k, AVG(y) AS f2 FROM r WHERE y >= 0 GROUP BY k;");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(parsed.value()[1].feature_alias, "f2");
}

TEST(SqlParserTest, EmptyScriptIsEmpty) {
  auto parsed = ParseAggQueryScript("  ;; ");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().empty());
}

// --- Rejection paths -------------------------------------------------------

struct BadSqlCase {
  const char* name;
  const char* sql;
  const char* expect_substr;
};

class SqlParserRejects : public ::testing::TestWithParam<BadSqlCase> {};

TEST_P(SqlParserRejects, WithHelpfulMessage) {
  auto parsed = ParseAggQuerySql(GetParam().sql);
  ASSERT_FALSE(parsed.ok()) << "accepted: " << GetParam().sql;
  EXPECT_NE(parsed.status().ToString().find(GetParam().expect_substr),
            std::string::npos)
      << parsed.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Dialect, SqlParserRejects,
    ::testing::Values(
        BadSqlCase{"NoSelect", "FROM r GROUP BY k", "expected SELECT"},
        BadSqlCase{"NoAggregate", "SELECT k FROM r GROUP BY k",
                   "lacks an aggregate"},
        BadSqlCase{"TwoAggregates",
                   "SELECT k, SUM(x), AVG(y) FROM r GROUP BY k",
                   "exactly one aggregate"},
        BadSqlCase{"UnknownAgg", "SELECT k, FOO(x) FROM r GROUP BY k",
                   "unknown aggregation function"},
        BadSqlCase{"StrictGreater",
                   "SELECT k, SUM(x) FROM r WHERE a > 1 GROUP BY k",
                   "strict comparisons"},
        BadSqlCase{"StrictLess",
                   "SELECT k, SUM(x) FROM r WHERE a < 1 GROUP BY k",
                   "strict comparisons"},
        BadSqlCase{"NotEquals",
                   "SELECT k, SUM(x) FROM r WHERE a != 1 GROUP BY k",
                   "outside the Def. 2 query class"},
        BadSqlCase{"NullLiteral",
                   "SELECT k, SUM(x) FROM r WHERE a = NULL GROUP BY k",
                   "NULL comparisons"},
        BadSqlCase{"InvertedBetween",
                   "SELECT k, SUM(x) FROM r WHERE a BETWEEN 5 AND 1 GROUP BY k",
                   "inverted"},
        BadSqlCase{"MissingGroupBy", "SELECT k, SUM(x) FROM r", "expected GROUP"},
        BadSqlCase{"SelectKeyNotGrouped",
                   "SELECT k, j, SUM(x) FROM r GROUP BY k",
                   "missing from GROUP BY"},
        BadSqlCase{"GroupKeyNotSelected",
                   "SELECT k, SUM(x) FROM r GROUP BY k, j",
                   "missing from the SELECT list"},
        BadSqlCase{"UnterminatedString",
                   "SELECT k, SUM(x) FROM r WHERE d = 'oops GROUP BY k",
                   "unterminated string"},
        BadSqlCase{"TrailingGarbage",
                   "SELECT k, SUM(x) FROM r GROUP BY k extra", "trailing input"},
        BadSqlCase{"StrayCharacter",
                   "SELECT k, SUM(x) FROM r GROUP BY k @", "unexpected character"}),
    [](const ::testing::TestParamInfo<BadSqlCase>& info) {
      return info.param.name;
    });

// --- Schema-validated overload ---------------------------------------------

TEST(SqlParserSchemaTest, AcceptsWellTypedQuery) {
  Table logs = MakeLogs();
  auto parsed = ParseAggQuerySql(
      "SELECT cname, AVG(pprice) FROM logs WHERE department = 'Toys' "
      "AND ts >= 150 GROUP BY cname",
      logs);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
}

TEST(SqlParserSchemaTest, RejectsUnknownColumn) {
  Table logs = MakeLogs();
  auto parsed =
      ParseAggQuerySql("SELECT cname, AVG(nope) FROM logs GROUP BY cname", logs);
  ASSERT_FALSE(parsed.ok());
}

TEST(SqlParserSchemaTest, RejectsNumericLiteralOnStringColumn) {
  Table logs = MakeLogs();
  auto parsed = ParseAggQuerySql(
      "SELECT cname, COUNT(pprice) FROM logs WHERE department = 7 GROUP BY cname",
      logs);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("type mismatch"), std::string::npos);
}

TEST(SqlParserSchemaTest, RejectsStringLiteralOnIntColumn) {
  Table logs = MakeLogs();
  auto parsed = ParseAggQuerySql(
      "SELECT cname, COUNT(pprice) FROM logs WHERE level = 'three' GROUP BY cname",
      logs);
  ASSERT_FALSE(parsed.ok());
}

TEST(SqlParserSchemaTest, RejectsRangeOnStringColumn) {
  Table logs = MakeLogs();
  auto parsed = ParseAggQuerySql(
      "SELECT cname, COUNT(pprice) FROM logs WHERE department >= 1 GROUP BY cname",
      logs);
  ASSERT_FALSE(parsed.ok());
}

// --- Round-trip property ----------------------------------------------------

/// Draws a random query against MakeLogs()'s schema.
AggQuery RandomQuery(Rng* rng) {
  AggQuery q;
  auto fns = AllAggFunctions();
  q.agg = fns[rng->UniformInt(fns.size())];
  q.agg_attr = "pprice";
  q.group_keys = {"cname"};
  if (rng->Uniform() < 0.5) {
    const char* depts[] = {"Electronics", "Toys", "it's"};
    q.predicates.push_back(
        Predicate::Equals("department", Value::Str(depts[rng->UniformInt(3)])));
  }
  if (rng->Uniform() < 0.7) {
    const int pick = static_cast<int>(rng->UniformInt(3));
    std::optional<double> lo, hi;
    if (pick == 0 || pick == 2) lo = static_cast<double>(rng->UniformRange(0, 200));
    if (pick == 1 || pick == 2) hi = static_cast<double>(rng->UniformRange(200, 400));
    q.predicates.push_back(Predicate::Range("ts", lo, hi));
  }
  if (rng->Uniform() < 0.3) {
    q.predicates.push_back(
        Predicate::Equals("level", Value::Int(rng->UniformRange(1, 3))));
  }
  return q;
}

TEST(SqlParserRoundTripTest, SqlOfParseOfSqlIsAFixedPoint) {
  Table logs = MakeLogs();
  Rng rng(2024);
  for (int i = 0; i < 200; ++i) {
    const AggQuery q = RandomQuery(&rng);
    const std::string sql = q.ToSql("logs", logs);
    auto parsed = ParseAggQuerySql(sql, logs);
    ASSERT_TRUE(parsed.ok()) << sql << "\n" << parsed.status().ToString();
    EXPECT_EQ(parsed.value().query.ToSql("logs", logs), sql) << "iteration " << i;
    EXPECT_EQ(parsed.value().query.CacheKey(), q.CacheKey()) << sql;
    EXPECT_EQ(parsed.value().relation, "logs");
  }
}

}  // namespace
}  // namespace featlib

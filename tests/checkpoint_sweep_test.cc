/// \file checkpoint_sweep_test.cc
/// \brief Seeded kill-resume sweep: simulate a crash at *every* checkpoint
/// round boundary of a durable fit (or a rotating subset under CI), resume
/// from whatever the dying run left on disk, and require the resumed plan to
/// be byte-identical to an uninterrupted run's.
///
/// CI drives this binary with a date-rotated seed (scripts/ci.sh
/// kill-resume job) via:
///   FEATLIB_FAULT_SEED — rotation offset into the kill points (default 0)
///   FEATLIB_KILL_POINTS — kill points exercised per run (default 6)
/// A full sweep (every boundary) runs when FEATLIB_KILL_POINTS >= the
/// fit's boundary count.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "core/feataug.h"
#include "core/plan_io.h"
#include "data/synthetic.h"

namespace featlib {
namespace {

#ifdef FEATLIB_FAULT_INJECTION

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

SyntheticOptions SweepData() {
  SyntheticOptions options;
  options.n_train = 200;
  options.avg_logs_per_entity = 8;
  options.seed = 33;
  return options;
}

FeatAugOptions SweepOptions() {
  FeatAugOptions options;
  options.n_templates = 2;
  options.queries_per_template = 2;
  options.generator.warmup_iterations = 10;
  options.generator.warmup_top_k = 3;
  options.generator.generation_iterations = 5;
  options.qti.beam_width = 2;
  options.qti.max_depth = 2;
  options.qti.node_iterations = 5;
  options.evaluator.model = ModelKind::kLogisticRegression;
  options.evaluator.metric = MetricKind::kAuc;
  options.seed = 11;
  return options;
}

TEST(CheckpointSweepTest, KillResumeEveryBoundaryIsByteIdentical) {
  DatasetBundle bundle = MakeTmall(SweepData());

  // Reference run, instrumented at zero probability: armed but never
  // failing, so the injector counts how many "checkpoint.kill" boundaries
  // the fit crosses — the sweep space.
  FeatAugOptions options = SweepOptions();
  options.checkpoint.dir = ::testing::TempDir();
  options.checkpoint.tag = "sweep";
  const std::string path = ::testing::TempDir() + "/fit_sweep.ckpt";

  FaultInjector::Global().EnableRandom(/*seed=*/1, /*probability=*/0.0);
  FeatAug reference(bundle.ToProblem(), options);
  auto baseline = reference.Fit();
  const uint64_t boundaries = FaultInjector::Global().calls("checkpoint.kill");
  FaultInjector::Global().Reset();
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_GT(boundaries, 0u);
  const std::string want =
      SerializeAugmentationPlan(baseline.value(), "R", bundle.relevant);
  std::remove(path.c_str());

  // Rotate through the boundary space: CI varies FEATLIB_FAULT_SEED by date
  // so successive days cover different kill points at bounded cost per run.
  const uint64_t per_run =
      std::min<uint64_t>(EnvU64("FEATLIB_KILL_POINTS", 6), boundaries);
  const uint64_t offset = EnvU64("FEATLIB_FAULT_SEED", 0) % boundaries;
  uint64_t exercised = 0;
  for (uint64_t i = 0; i < per_run; ++i) {
    const uint64_t kill_at = (offset + i * (boundaries / per_run + 1)) % boundaries;

    std::remove(path.c_str());  // each kill point starts from no checkpoint
    FaultInjector::Global().ArmSite("checkpoint.kill", kill_at);
    FeatAug killed(bundle.ToProblem(), options);
    auto interrupted = killed.Fit();
    FaultInjector::Global().Reset();
    ASSERT_FALSE(interrupted.ok()) << "kill_at=" << kill_at;
    EXPECT_EQ(interrupted.status().code(), StatusCode::kInternal)
        << interrupted.status().ToString();

    FeatAugOptions resume_options = options;
    resume_options.checkpoint.resume = true;
    FeatAug resumed(bundle.ToProblem(), resume_options);
    auto plan = resumed.Fit();
    ASSERT_TRUE(plan.ok()) << "resume after kill_at=" << kill_at << ": "
                           << plan.status().ToString();
    EXPECT_EQ(want,
              SerializeAugmentationPlan(plan.value(), "R", bundle.relevant))
        << "resume after kill_at=" << kill_at << " diverged";
    ++exercised;
  }
  std::printf("kill-resume sweep: %llu/%llu boundaries exercised\n",
              static_cast<unsigned long long>(exercised),
              static_cast<unsigned long long>(boundaries));
  std::remove(path.c_str());
}

#else

TEST(CheckpointSweepTest, RequiresFaultInjectionBuild) { GTEST_SKIP(); }

#endif  // FEATLIB_FAULT_INJECTION

}  // namespace
}  // namespace featlib

#include <gtest/gtest.h>

#include <cmath>

#include "ml/metrics.h"

namespace featlib {
namespace {

TEST(MetricsTest, AucPerfectAndInverted) {
  const std::vector<double> y = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(Auc(y, {0.1, 0.2, 0.8, 0.9}), 1.0);
  EXPECT_DOUBLE_EQ(Auc(y, {0.9, 0.8, 0.2, 0.1}), 0.0);
}

TEST(MetricsTest, AucRandomScoresNearHalf) {
  const std::vector<double> y = {0, 1, 0, 1, 0, 1, 0, 1};
  const std::vector<double> s = {0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(Auc(y, s), 0.5);  // all ties
}

TEST(MetricsTest, AucSingleClassIsHalf) {
  EXPECT_DOUBLE_EQ(Auc({1, 1, 1}, {0.1, 0.5, 0.9}), 0.5);
  EXPECT_DOUBLE_EQ(Auc({0, 0}, {0.1, 0.9}), 0.5);
}

TEST(MetricsTest, AucKnownPartialValue) {
  // One inversion among 2x2 pairs -> AUC = 3/4.
  EXPECT_DOUBLE_EQ(Auc({0, 1, 0, 1}, {0.1, 0.4, 0.5, 0.9}), 0.75);
}

TEST(MetricsTest, F1BinaryKnown) {
  // tp=2, fp=1, fn=1 -> F1 = 2*2/(4+1+1) = 2/3.
  const std::vector<int> y = {1, 1, 1, 0, 0};
  const std::vector<int> p = {1, 1, 0, 1, 0};
  EXPECT_NEAR(F1Binary(y, p), 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, F1BinaryDegenerate) {
  EXPECT_DOUBLE_EQ(F1Binary({0, 0}, {0, 0}), 0.0);
}

TEST(MetricsTest, F1MacroPerfect) {
  const std::vector<int> y = {0, 1, 2, 0, 1, 2};
  EXPECT_DOUBLE_EQ(F1Macro(y, y, 3), 1.0);
}

TEST(MetricsTest, F1MacroAveragesPresentClasses) {
  // Class 2 absent from labels: excluded from the average.
  const std::vector<int> y = {0, 0, 1, 1};
  const std::vector<int> p = {0, 0, 1, 0};
  // class0: tp=2, fp=1, fn=0 -> 4/5; class1: tp=1, fp=0, fn=1 -> 2/3.
  EXPECT_NEAR(F1Macro(y, p, 3), 0.5 * (0.8 + 2.0 / 3.0), 1e-12);
}

TEST(MetricsTest, Accuracy) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 2, 3}, {1, 2, 0}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
}

TEST(MetricsTest, Rmse) {
  EXPECT_DOUBLE_EQ(Rmse({1, 2, 3}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(Rmse({0, 0}, {3, 4}), std::sqrt(12.5));
}

TEST(MetricsTest, LogLossClipsProbabilities) {
  const double loss = LogLoss({1, 0}, {1.0, 0.0});
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_LT(loss, 1e-9);
  EXPECT_GT(LogLoss({1}, {0.1}), LogLoss({1}, {0.9}));
}

TEST(MetricsTest, OrientationFlags) {
  EXPECT_TRUE(MetricHigherIsBetter(MetricKind::kAuc));
  EXPECT_TRUE(MetricHigherIsBetter(MetricKind::kF1Macro));
  EXPECT_TRUE(MetricHigherIsBetter(MetricKind::kAccuracy));
  EXPECT_FALSE(MetricHigherIsBetter(MetricKind::kRmse));
  EXPECT_FALSE(MetricHigherIsBetter(MetricKind::kLogLoss));
}

TEST(MetricsTest, Names) {
  EXPECT_STREQ(MetricKindToString(MetricKind::kAuc), "AUC");
  EXPECT_STREQ(MetricKindToString(MetricKind::kRmse), "RMSE");
  EXPECT_STREQ(MetricKindToString(MetricKind::kF1Macro), "F1");
}

}  // namespace
}  // namespace featlib

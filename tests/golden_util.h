#pragma once

/// \file golden_util.h
/// \brief Recorded-golden oracle for the executor equivalence tests.
///
/// The legacy per-candidate executor used to serve as the bit-identical
/// reference for the planner path. It is retired; its validated outputs are
/// frozen as checked-in fixture files under tests/golden/ instead. Tests
/// construct a GoldenFile and Check(key, value): in normal runs the value
/// must equal the recorded one bit for bit; with FEATLIB_REGEN_GOLDENS=1 in
/// the environment the file is rewritten from the current engine instead
/// (scripts/regen_goldens.sh). Regenerate only after an *intentional*
/// output change, and review the fixture diff like code.
///
/// Encodings are exact: doubles are serialized as 16-hex-digit IEEE bit
/// patterns (NaN kept as its canonical quiet pattern via a normalization
/// step, since "which NaN" is not part of the executor contract).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "table/table.h"

#ifndef FEATLIB_SOURCE_DIR
#define FEATLIB_SOURCE_DIR "."
#endif

namespace featlib {
namespace golden {

inline bool RegenMode() {
  return std::getenv("FEATLIB_REGEN_GOLDENS") != nullptr;
}

inline std::string GoldenPath(const std::string& name) {
  return std::string(FEATLIB_SOURCE_DIR) + "/tests/golden/" + name;
}

/// The repo's canonical bit-identical double comparison: exact IEEE bit
/// equality, with every NaN treated as equal to every NaN (the payload is
/// not part of the executor contract). Shared by the golden, planner,
/// parallel-executor and serving tests.
inline bool SameBits(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
  int64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

/// 16-hex-digit IEEE-754 bit pattern; all NaNs map to one canonical
/// pattern (NaN payload is not part of the executor contract).
inline std::string HexDouble(double v) {
  if (std::isnan(v)) v = std::numeric_limits<double>::quiet_NaN();
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(bits));
  return std::string(buf);
}

inline std::string EncodeColumn(const std::vector<double>& column) {
  std::string out = std::to_string(column.size());
  for (double v : column) {
    out += ' ';
    out += HexDouble(v);
  }
  return out;
}

/// Deterministic one-line table encoding: schema, then row-major cells.
/// Null cells render as "_", strings verbatim (fixture tables use simple
/// identifiers), numerics as exact hex bit patterns of their double view.
inline std::string EncodeTable(const Table& t) {
  std::string out = "cols=" + std::to_string(t.num_columns()) +
                    " rows=" + std::to_string(t.num_rows());
  for (size_t c = 0; c < t.num_columns(); ++c) {
    out += " ";
    out += t.NameAt(c);
    out += ":";
    out += std::to_string(static_cast<int>(t.ColumnAt(c).type()));
  }
  for (size_t r = 0; r < t.num_rows(); ++r) {
    out += " |";
    for (size_t c = 0; c < t.num_columns(); ++c) {
      const Column& col = t.ColumnAt(c);
      out += " ";
      if (col.IsNull(r)) {
        out += "_";
      } else if (col.type() == DataType::kString) {
        out += col.StringAt(r);
      } else {
        out += HexDouble(col.AsDouble(r));
      }
    }
  }
  return out;
}

/// One fixture file of "key<TAB>value" lines. Keys must be unique and
/// tab/newline-free; values newline-free (the encoders above qualify).
class GoldenFile {
 public:
  explicit GoldenFile(const std::string& name) : path_(GoldenPath(name)) {
    if (RegenMode()) return;
    std::ifstream in(path_);
    EXPECT_TRUE(in.good()) << "missing golden fixture " << path_
                           << " — run scripts/regen_goldens.sh";
    std::string line;
    while (std::getline(in, line)) {
      const size_t tab = line.find('\t');
      if (tab == std::string::npos) continue;
      recorded_[line.substr(0, tab)] = line.substr(tab + 1);
    }
  }

  ~GoldenFile() {
    if (!RegenMode()) return;
    if (::testing::Test::HasFailure()) {
      // A failed test recorded only a prefix of its keys; truncating the
      // fixture now would destroy the last known-good recording.
      std::fprintf(stderr,
                   "golden: test failed mid-regen, leaving %s untouched\n",
                   path_.c_str());
      return;
    }
    std::ofstream out(path_, std::ios::trunc);
    for (const std::string& key : order_) {
      out << key << '\t' << recorded_.at(key) << '\n';
    }
  }

  GoldenFile(const GoldenFile&) = delete;
  GoldenFile& operator=(const GoldenFile&) = delete;

  /// Regen mode: records. Check mode: exact string (= bit) equality with
  /// the recorded value.
  void Check(const std::string& key, const std::string& value) {
    if (RegenMode()) {
      if (recorded_.emplace(key, value).second) order_.push_back(key);
      return;
    }
    auto it = recorded_.find(key);
    ASSERT_TRUE(it != recorded_.end())
        << "no recorded golden for key '" << key << "' in " << path_
        << " — run scripts/regen_goldens.sh";
    EXPECT_EQ(it->second, value) << "golden mismatch at key '" << key << "'";
  }

 private:
  std::string path_;
  std::map<std::string, std::string> recorded_;
  std::vector<std::string> order_;  // regen: preserve insertion order
};

}  // namespace golden
}  // namespace featlib

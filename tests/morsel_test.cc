/// \file morsel_test.cc
/// \brief Pins the out-of-core morsel executor's contract (query/morsel.h):
/// the row-range partition itself, byte-identity of every aggregate against
/// the single-pass oracle across morsel sizes and thread counts, boundary-
/// spanning groups, all-null morsels, prefetch on/off equivalence, isolated
/// per-candidate failure, serving-plan identity, the "morsel.build" /
/// "morsel.merge" fault sites, and the bounded-memory guarantee (a budget
/// the in-RAM path exhausts while the morsel path fits).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/fault_injection.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "query/morsel.h"
#include "query/query_planner.h"

namespace featlib {
namespace {

// NaN-tolerant bit equality: the determinism contract is "same bytes", and
// NaN payloads produced by the same code path are identical.
bool SameBits(double a, double b) {
  uint64_t ab, bb;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  return ab == bb;
}

void ExpectColumnsBitIdentical(const std::vector<double>& actual,
                               const std::vector<double>& expected,
                               const std::string& context) {
  ASSERT_EQ(actual.size(), expected.size()) << context;
  for (size_t i = 0; i < actual.size(); ++i) {
    ASSERT_TRUE(SameBits(actual[i], expected[i]))
        << context << " row " << i << ": actual=" << actual[i]
        << " expected=" << expected[i];
  }
}

// Random (relevant, training) pair in the executor_parallel_test shape:
// compound keys, NULL-heavy values, predicate attributes.
struct RandomPair {
  Table relevant;
  Table training;
};

RandomPair MakeRandomPair(Rng* rng) {
  const char* cities[] = {"ber", "nyc", "sfo", "tok"};
  const char* depts[] = {"a", "b", "c"};

  RandomPair out;
  const size_t n_rel = 80 + rng->UniformInt(120);
  Column uid(DataType::kInt64), city(DataType::kString);
  Column value(DataType::kDouble), level(DataType::kInt64),
      dept(DataType::kString);
  for (size_t i = 0; i < n_rel; ++i) {
    if (rng->Bernoulli(0.05)) {
      uid.AppendNull();
    } else {
      uid.AppendInt(static_cast<int64_t>(rng->UniformInt(10)));
    }
    city.AppendString(cities[rng->UniformInt(4)]);
    if (rng->Bernoulli(0.3)) {
      value.AppendNull();
    } else {
      value.AppendDouble(rng->Normal(0, 10));
    }
    level.AppendInt(static_cast<int64_t>(rng->UniformInt(5)));
    dept.AppendString(depts[rng->UniformInt(3)]);
  }
  EXPECT_TRUE(out.relevant.AddColumn("uid", std::move(uid)).ok());
  EXPECT_TRUE(out.relevant.AddColumn("city", std::move(city)).ok());
  EXPECT_TRUE(out.relevant.AddColumn("value", std::move(value)).ok());
  EXPECT_TRUE(out.relevant.AddColumn("level", std::move(level)).ok());
  EXPECT_TRUE(out.relevant.AddColumn("dept", std::move(dept)).ok());

  const size_t n_train = 40 + rng->UniformInt(30);
  Column d_uid(DataType::kInt64), d_city(DataType::kString);
  for (size_t i = 0; i < n_train; ++i) {
    if (rng->Bernoulli(0.05)) {
      d_uid.AppendNull();
    } else {
      d_uid.AppendInt(static_cast<int64_t>(rng->UniformInt(12)));
    }
    d_city.AppendString(cities[rng->UniformInt(4)]);
  }
  EXPECT_TRUE(out.training.AddColumn("uid", std::move(d_uid)).ok());
  EXPECT_TRUE(out.training.AddColumn("city", std::move(d_city)).ok());
  return out;
}

// Every aggregate crossed with predicate combos (none / single / conjunction
// / empty selection), plus compound-key COUNT(*) variants — the pool shape
// the search produces, covering all 15 kernels.
std::vector<AggQuery> MakeCandidatePool() {
  std::vector<std::vector<Predicate>> pred_sets;
  pred_sets.push_back({});
  pred_sets.push_back({Predicate::Equals("dept", Value::Str("a"))});
  pred_sets.push_back({Predicate::Equals("dept", Value::Str("b")),
                       Predicate::Range("level", std::nullopt, 3.0)});
  pred_sets.push_back({Predicate::Equals("dept", Value::Str("zz"))});  // empty

  std::vector<AggQuery> out;
  for (const auto& preds : pred_sets) {
    for (AggFunction fn : AllAggFunctions()) {
      AggQuery q;
      q.agg = fn;
      q.agg_attr = "value";
      q.group_keys = {"uid"};
      q.predicates = preds;
      out.push_back(std::move(q));
    }
    AggQuery count_star;
    count_star.agg = AggFunction::kCount;
    count_star.group_keys = {"uid", "city"};
    count_star.predicates = preds;
    out.push_back(std::move(count_star));
  }
  return out;
}

// --- The partition itself ----------------------------------------------------

TEST(MorselTest, SplitCoversRowsExactly) {
  {
    const MorselSet set = MorselSet::Split(10, 4);
    ASSERT_EQ(set.size(), 3u);
    EXPECT_EQ(set[0].begin, 0u);
    EXPECT_EQ(set[0].end, 4u);
    EXPECT_EQ(set[1].begin, 4u);
    EXPECT_EQ(set[1].end, 8u);
    EXPECT_EQ(set[2].begin, 8u);
    EXPECT_EQ(set[2].end, 10u);  // short trailing morsel, never empty
    EXPECT_EQ(set[2].rows(), 2u);
  }
  {
    // Exact division: no empty trailing morsel.
    const MorselSet set = MorselSet::Split(8, 4);
    ASSERT_EQ(set.size(), 2u);
    EXPECT_EQ(set[1].end, 8u);
  }
  {
    // morsel_rows > n_rows degenerates to one whole-table morsel.
    const MorselSet set = MorselSet::Split(3, 1024);
    ASSERT_EQ(set.size(), 1u);
    EXPECT_EQ(set[0].rows(), 3u);
  }
  {
    // morsel_rows == 0 is the explicit whole-table spelling.
    const MorselSet set = MorselSet::Split(5, 0);
    ASSERT_EQ(set.size(), 1u);
    EXPECT_EQ(set[0].rows(), 5u);
  }
  EXPECT_TRUE(MorselSet::Split(0, 16).empty());
}

// --- Byte-identity against the single-pass oracle ----------------------------

TEST(MorselTest, EveryAggregateBitIdenticalAcrossMorselSizesAndThreads) {
  Rng rng(611);
  const RandomPair tables = MakeRandomPair(&rng);
  const std::vector<AggQuery> queries = MakeCandidatePool();
  const size_t n = tables.relevant.num_rows();

  // Oracle: the in-RAM single-pass path (morsel_rows == 0).
  QueryPlanner oracle;
  auto reference =
      oracle.EvaluateMany(queries, tables.training, tables.relevant);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  EXPECT_EQ(oracle.last_morsel_stats().morsels, 0u);

  const size_t morsel_sizes[] = {1, 7, 1024, n - 1, n};
  for (const size_t morsel_rows : morsel_sizes) {
    for (const int threads : {1, 2, 8}) {
      ThreadPool pool(threads);
      QueryPlanner planner;
      planner.set_thread_pool(&pool);
      planner.set_morsel_rows(morsel_rows);
      auto streamed =
          planner.EvaluateMany(queries, tables.training, tables.relevant);
      ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
      ASSERT_EQ(streamed.value().size(), queries.size());
      const std::string context = "morsel_rows=" + std::to_string(morsel_rows) +
                                  " threads=" + std::to_string(threads);
      for (size_t i = 0; i < queries.size(); ++i) {
        ExpectColumnsBitIdentical(streamed.value()[i], reference.value()[i],
                                  context + " " + queries[i].CacheKey());
      }
      // The pool contains VAR/STD/KURTOSIS candidates, so the pipeline must
      // have re-streamed a second sweep over all morsels.
      const MorselExecStats& stats = planner.last_morsel_stats();
      EXPECT_EQ(stats.morsels, (n + morsel_rows - 1) / morsel_rows) << context;
      EXPECT_EQ(stats.sweeps, 2u) << context;
    }
  }
}

TEST(MorselTest, PrefetchOffProducesIdenticalBytes) {
  Rng rng(612);
  const RandomPair tables = MakeRandomPair(&rng);
  const std::vector<AggQuery> queries = MakeCandidatePool();

  QueryPlanner with_prefetch;
  with_prefetch.set_morsel_rows(13);
  auto a = with_prefetch.EvaluateMany(queries, tables.training, tables.relevant);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_GT(with_prefetch.last_morsel_stats().prefetched_builds, 0u);

  QueryPlanner without_prefetch;
  without_prefetch.set_morsel_rows(13);
  without_prefetch.set_morsel_prefetch(false);
  auto b = without_prefetch.EvaluateMany(queries, tables.training,
                                         tables.relevant);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(without_prefetch.last_morsel_stats().prefetched_builds, 0u);

  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectColumnsBitIdentical(b.value()[i], a.value()[i], "prefetch off");
  }
}

TEST(MorselTest, GroupsSpanningMorselBoundaries) {
  // Group 7 contributes rows to every morsel; group ids must come out
  // first-seen across the whole table, not per-morsel.
  Table relevant;
  Column uid(DataType::kInt64), value(DataType::kDouble);
  for (int i = 0; i < 30; ++i) {
    uid.AppendInt(i % 3 == 0 ? 7 : (i % 5));
    value.AppendDouble(0.1 * i - 1.5);
  }
  ASSERT_TRUE(relevant.AddColumn("uid", std::move(uid)).ok());
  ASSERT_TRUE(relevant.AddColumn("value", std::move(value)).ok());
  Table training;
  ASSERT_TRUE(training
                  .AddColumn("uid", Column::FromInts(DataType::kInt64,
                                                     {7, 0, 1, 2, 3, 4, 9}))
                  .ok());

  std::vector<AggQuery> queries;
  for (AggFunction fn : AllAggFunctions()) {
    AggQuery q;
    q.agg = fn;
    q.agg_attr = "value";
    q.group_keys = {"uid"};
    queries.push_back(std::move(q));
  }

  QueryPlanner oracle;
  auto reference = oracle.EvaluateMany(queries, training, relevant);
  ASSERT_TRUE(reference.ok());
  for (const size_t morsel_rows : {1u, 4u, 29u}) {
    QueryPlanner planner;
    planner.set_morsel_rows(morsel_rows);
    auto streamed = planner.EvaluateMany(queries, training, relevant);
    ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
    for (size_t i = 0; i < queries.size(); ++i) {
      ExpectColumnsBitIdentical(
          streamed.value()[i], reference.value()[i],
          "boundary morsel_rows=" + std::to_string(morsel_rows));
    }
  }
}

TEST(MorselTest, AllNullMorselsAndNullGroupKeys) {
  // Rows 8..15 are entirely null in both the value and the group key: one
  // whole morsel (at morsel_rows=4) contributes nothing to any group, and
  // null-keyed rows join no group at all.
  Table relevant;
  Column uid(DataType::kInt64), value(DataType::kDouble);
  for (int i = 0; i < 24; ++i) {
    if (i >= 8 && i < 16) {
      uid.AppendNull();
      value.AppendNull();
    } else {
      uid.AppendInt(i % 2);
      // Null-heavy values elsewhere too (COUNT vs COUNT(*) divergence).
      if (i % 3 == 0) {
        value.AppendNull();
      } else {
        value.AppendDouble(static_cast<double>(i));
      }
    }
  }
  ASSERT_TRUE(relevant.AddColumn("uid", std::move(uid)).ok());
  ASSERT_TRUE(relevant.AddColumn("value", std::move(value)).ok());
  Table training;
  ASSERT_TRUE(
      training.AddColumn("uid", Column::FromInts(DataType::kInt64, {0, 1, 2}))
          .ok());

  std::vector<AggQuery> queries;
  for (AggFunction fn : AllAggFunctions()) {
    AggQuery q;
    q.agg = fn;
    q.agg_attr = "value";
    q.group_keys = {"uid"};
    queries.push_back(std::move(q));
  }
  AggQuery count_star;
  count_star.agg = AggFunction::kCount;
  count_star.group_keys = {"uid"};
  queries.push_back(std::move(count_star));

  QueryPlanner oracle;
  auto reference = oracle.EvaluateMany(queries, training, relevant);
  ASSERT_TRUE(reference.ok());
  QueryPlanner planner;
  planner.set_morsel_rows(4);
  auto streamed = planner.EvaluateMany(queries, training, relevant);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectColumnsBitIdentical(streamed.value()[i], reference.value()[i],
                              "all-null morsel");
  }
}

TEST(MorselTest, ComputeFeatureColumnRoutesThroughMorsels) {
  Rng rng(613);
  const RandomPair tables = MakeRandomPair(&rng);
  AggQuery q;
  q.agg = AggFunction::kAvg;
  q.agg_attr = "value";
  q.group_keys = {"uid"};

  QueryPlanner oracle;
  auto reference =
      oracle.ComputeFeatureColumn(q, tables.training, tables.relevant);
  ASSERT_TRUE(reference.ok());
  QueryPlanner planner;
  planner.set_morsel_rows(9);
  auto streamed =
      planner.ComputeFeatureColumn(q, tables.training, tables.relevant);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  ExpectColumnsBitIdentical(streamed.value(), reference.value(),
                            "ComputeFeatureColumn");
  EXPECT_GT(planner.last_morsel_stats().morsels, 1u);
}

// --- Isolated per-candidate failure ------------------------------------------

TEST(MorselTest, IsolatedInvalidCandidateFailsAloneUnderMorsels) {
  Rng rng(614);
  const RandomPair tables = MakeRandomPair(&rng);
  std::vector<AggQuery> queries = MakeCandidatePool();
  AggQuery bad;
  bad.agg = AggFunction::kSum;
  bad.agg_attr = "no_such_column";
  bad.group_keys = {"uid"};
  const size_t bad_slot = 3;
  queries.insert(queries.begin() + bad_slot, bad);

  // Oracle: the isolated in-RAM path over the same batch.
  QueryPlanner oracle;
  auto reference =
      oracle.EvaluateManyIsolated(queries, tables.training, tables.relevant);
  ASSERT_TRUE(reference.ok());

  QueryPlanner planner;
  planner.set_morsel_rows(11);
  auto streamed =
      planner.EvaluateManyIsolated(queries, tables.training, tables.relevant);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  ASSERT_EQ(streamed.value().size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    if (i == bad_slot) {
      EXPECT_FALSE(streamed.value()[i].status.ok());
      EXPECT_FALSE(reference.value()[i].status.ok());
      continue;
    }
    ASSERT_TRUE(streamed.value()[i].status.ok())
        << streamed.value()[i].status.ToString();
    ExpectColumnsBitIdentical(streamed.value()[i].values,
                              reference.value()[i].values, "isolated slot");
  }
}

// --- Serving plan ------------------------------------------------------------

TEST(MorselTest, ServingPlanMorselStreamedMatchesLegacyExecution) {
  Rng rng(615);
  const RandomPair tables = MakeRandomPair(&rng);
  const std::vector<AggQuery> queries = MakeCandidatePool();

  QueryPlanner legacy_planner;
  auto legacy_plan =
      legacy_planner.CompileServingPlan(queries, tables.relevant);
  ASSERT_TRUE(legacy_plan.ok()) << legacy_plan.status().ToString();
  EXPECT_FALSE(legacy_plan.value().morsel_streamed);
  auto legacy_out = ExecuteServingPlan(legacy_plan.value(), tables.training);
  ASSERT_TRUE(legacy_out.ok()) << legacy_out.status().ToString();

  QueryPlanner morsel_planner;
  morsel_planner.set_morsel_rows(17);
  auto morsel_plan =
      morsel_planner.CompileServingPlan(queries, tables.relevant);
  ASSERT_TRUE(morsel_plan.ok()) << morsel_plan.status().ToString();
  EXPECT_TRUE(morsel_plan.value().morsel_streamed);
  EXPECT_TRUE(morsel_plan.value().candidates.empty());
  ASSERT_EQ(morsel_plan.value().per_group_features.size(), queries.size());

  for (const int threads : {0, 2}) {
    ThreadPool pool(threads == 0 ? 1 : threads);
    auto morsel_out = ExecuteServingPlan(
        morsel_plan.value(), tables.training, threads == 0 ? nullptr : &pool);
    ASSERT_TRUE(morsel_out.ok()) << morsel_out.status().ToString();
    ASSERT_EQ(morsel_out.value().size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      ExpectColumnsBitIdentical(morsel_out.value()[i], legacy_out.value()[i],
                                "serving threads=" + std::to_string(threads));
    }
  }
}

// --- Fault sites -------------------------------------------------------------

#ifdef FEATLIB_FAULT_INJECTION

class MorselFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Reset(); }
};

TEST_F(MorselFaultTest, MergeFaultFailsFastWithoutIsolation) {
  Rng rng(616);
  const RandomPair tables = MakeRandomPair(&rng);
  const std::vector<AggQuery> queries = MakeCandidatePool();

  FaultInjector::Global().ArmSite("morsel.merge", 2);
  QueryPlanner planner;  // no pool: deterministic combine order
  planner.set_morsel_rows(16);
  auto streamed =
      planner.EvaluateMany(queries, tables.training, tables.relevant);
  EXPECT_FALSE(streamed.ok());
  EXPECT_GE(FaultInjector::Global().faults_injected(), 1u);
}

TEST_F(MorselFaultTest, MergeFaultIsolatesToItsOwnSlot) {
  Rng rng(616);  // same tables as the fail-fast case
  const RandomPair tables = MakeRandomPair(&rng);
  const std::vector<AggQuery> queries = MakeCandidatePool();

  QueryPlanner oracle;
  auto reference =
      oracle.EvaluateManyIsolated(queries, tables.training, tables.relevant);
  ASSERT_TRUE(reference.ok());

  // Serial combine order is candidate order within each morsel, so call #2
  // of the per-candidate merge site belongs to candidate 2's first morsel.
  FaultInjector::Global().ArmSite("morsel.merge", 2);
  QueryPlanner planner;
  planner.set_morsel_rows(16);
  auto streamed =
      planner.EvaluateManyIsolated(queries, tables.training, tables.relevant);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  size_t failed = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (!streamed.value()[i].status.ok()) {
      ++failed;
      EXPECT_EQ(i, 2u);
      continue;
    }
    ASSERT_TRUE(reference.value()[i].status.ok());
    ExpectColumnsBitIdentical(streamed.value()[i].values,
                              reference.value()[i].values,
                              "merge-fault survivor");
  }
  EXPECT_EQ(failed, 1u);

  // Disarmed, the identical call succeeds — the planner held no poisoned
  // state from the injected failure.
  FaultInjector::Global().Reset();
  auto retry =
      planner.EvaluateManyIsolated(queries, tables.training, tables.relevant);
  ASSERT_TRUE(retry.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(retry.value()[i].status.ok());
    ExpectColumnsBitIdentical(retry.value()[i].values,
                              reference.value()[i].values, "disarmed retry");
  }
}

TEST_F(MorselFaultTest, BuildFaultIsBatchWideEvenWhenIsolated) {
  Rng rng(617);
  const RandomPair tables = MakeRandomPair(&rng);
  const std::vector<AggQuery> queries = MakeCandidatePool();

  FaultInjector::Global().ArmSite("morsel.build", 1);
  QueryPlanner planner;
  planner.set_morsel_rows(16);
  auto streamed =
      planner.EvaluateManyIsolated(queries, tables.training, tables.relevant);
  EXPECT_FALSE(streamed.ok());  // a lost morsel poisons every candidate
}

#endif  // FEATLIB_FAULT_INJECTION

// --- The bounded-memory guarantee --------------------------------------------

TEST(MorselTest, PeakMemoryBoundedByMorselsNotTable) {
  // A table big enough that whole-table artifacts dominate: the morsel
  // path's peak (2 in-flight morsels + per-group state) must undercut the
  // in-RAM path's, and a budget between the two peaks must pass the morsel
  // path while exhausting the in-RAM one.
  const size_t n = 20000;
  Table relevant;
  Column uid(DataType::kInt64), value(DataType::kDouble);
  Rng rng(618);
  for (size_t i = 0; i < n; ++i) {
    uid.AppendInt(static_cast<int64_t>(i % 500));
    value.AppendDouble(rng.Normal(0, 1));
  }
  ASSERT_TRUE(relevant.AddColumn("uid", std::move(uid)).ok());
  ASSERT_TRUE(relevant.AddColumn("value", std::move(value)).ok());
  Table training;
  Column d_uid(DataType::kInt64);
  for (int i = 0; i < 600; ++i) d_uid.AppendInt(i);
  ASSERT_TRUE(training.AddColumn("uid", std::move(d_uid)).ok());

  // Streaming + two-sweep candidates only (buffered aggregates like MEDIAN
  // legitimately hold all selected values, which is not the bound under
  // test).
  std::vector<AggQuery> queries;
  for (AggFunction fn : {AggFunction::kSum, AggFunction::kAvg,
                         AggFunction::kMin, AggFunction::kVar}) {
    AggQuery q;
    q.agg = fn;
    q.agg_attr = "value";
    q.group_keys = {"uid"};
    queries.push_back(std::move(q));
  }

  ExecContext legacy_ctx;
  QueryPlanner legacy;
  auto legacy_out =
      legacy.EvaluateMany(queries, training, relevant, &legacy_ctx);
  ASSERT_TRUE(legacy_out.ok()) << legacy_out.status().ToString();
  const size_t legacy_peak = legacy_ctx.peak_charged_bytes();

  ExecContext morsel_ctx;
  QueryPlanner morsel;
  morsel.set_morsel_rows(512);
  auto morsel_out =
      morsel.EvaluateMany(queries, training, relevant, &morsel_ctx);
  ASSERT_TRUE(morsel_out.ok()) << morsel_out.status().ToString();
  const size_t morsel_peak = morsel_ctx.peak_charged_bytes();

  ASSERT_GT(legacy_peak, 0u);
  ASSERT_GT(morsel_peak, 0u);
  EXPECT_LT(morsel_peak, legacy_peak)
      << "morsel=" << morsel_peak << " legacy=" << legacy_peak;
  EXPECT_EQ(morsel.last_morsel_stats().peak_artifact_bytes > 0, true);

  // Identical bytes while we are here.
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectColumnsBitIdentical(morsel_out.value()[i], legacy_out.value()[i],
                              "bounded-memory run");
  }

  // The budget with teeth: midway between the two peaks, the morsel path
  // fits and the whole-table path must refuse rather than overshoot.
  const size_t budget = morsel_peak + (legacy_peak - morsel_peak) / 2;
  ExecContext bounded_ok;
  bounded_ok.set_memory_budget_bytes(budget);
  QueryPlanner bounded_morsel;
  bounded_morsel.set_morsel_rows(512);
  auto fits =
      bounded_morsel.EvaluateMany(queries, training, relevant, &bounded_ok);
  ASSERT_TRUE(fits.ok()) << fits.status().ToString();

  ExecContext bounded_fail;
  bounded_fail.set_memory_budget_bytes(budget);
  QueryPlanner bounded_legacy;
  auto refused =
      bounded_legacy.EvaluateMany(queries, training, relevant, &bounded_fail);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted)
      << refused.status().ToString();
}

}  // namespace
}  // namespace featlib

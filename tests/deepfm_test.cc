#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/deepfm.h"
#include "ml/metrics.h"

namespace featlib {
namespace {

Dataset MakeInteractionData(size_t n, uint64_t seed) {
  // Label depends on a multiplicative interaction — exactly what the FM
  // component is built to capture.
  Rng rng(seed);
  Dataset ds = Dataset::WithLabels({}, TaskKind::kBinaryClassification);
  std::vector<double> x1(n);
  std::vector<double> x2(n);
  std::vector<double> x3(n);
  ds.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    x1[i] = rng.Normal();
    x2[i] = rng.Normal();
    x3[i] = rng.Normal();
    ds.y[i] = (x1[i] * x2[i] + 0.3 * x3[i] > 0) ? 1.0 : 0.0;
  }
  ds.n = n;
  EXPECT_TRUE(ds.AddFeature("x1", x1).ok());
  EXPECT_TRUE(ds.AddFeature("x2", x2).ok());
  EXPECT_TRUE(ds.AddFeature("x3", x3).ok());
  return ds;
}

TEST(DeepFmTest, LearnsFeatureInteraction) {
  Dataset train = MakeInteractionData(800, 1);
  Dataset test = MakeInteractionData(400, 2);
  DeepFmOptions options;
  options.epochs = 25;
  DeepFmModel model(TaskKind::kBinaryClassification, options);
  ASSERT_TRUE(model.Fit(train).ok());
  EXPECT_GT(Auc(test.y, model.PredictScore(test)), 0.8);
}

TEST(DeepFmTest, MulticlassRejected) {
  DeepFmModel multi(TaskKind::kMultiClassification);
  Dataset ds = Dataset::WithLabels({0, 1, 2}, TaskKind::kMultiClassification, 3);
  ASSERT_TRUE(ds.AddFeature("x", {1, 2, 3}).ok());
  EXPECT_FALSE(multi.Fit(ds).ok());
}

TEST(DeepFmTest, RegressionHeadLearnsLinearTarget) {
  Rng rng(8);
  Dataset ds = Dataset::WithLabels({}, TaskKind::kRegression);
  const size_t n = 500;
  std::vector<double> x1(n);
  std::vector<double> x2(n);
  ds.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    x1[i] = rng.Normal();
    x2[i] = rng.Normal();
    ds.y[i] = 2.0 * x1[i] - x2[i] + 0.5 * x1[i] * x2[i] + 0.05 * rng.Normal();
  }
  ds.n = n;
  ASSERT_TRUE(ds.AddFeature("x1", x1).ok());
  ASSERT_TRUE(ds.AddFeature("x2", x2).ok());
  DeepFmOptions options;
  options.epochs = 30;
  DeepFmModel model(TaskKind::kRegression, options);
  ASSERT_TRUE(model.Fit(ds).ok());
  EXPECT_LT(Rmse(ds.y, model.PredictScore(ds)), 1.0);
}

TEST(DeepFmTest, EmptyDataRejected) {
  DeepFmModel model(TaskKind::kBinaryClassification);
  Dataset empty = Dataset::WithLabels({}, TaskKind::kBinaryClassification);
  EXPECT_FALSE(model.Fit(empty).ok());
}

TEST(DeepFmTest, ScoresAreProbabilities) {
  Dataset train = MakeInteractionData(300, 3);
  DeepFmOptions options;
  options.epochs = 5;
  DeepFmModel model(TaskKind::kBinaryClassification, options);
  ASSERT_TRUE(model.Fit(train).ok());
  for (double p : model.PredictScore(train)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(DeepFmTest, PredictClassThresholds) {
  Dataset train = MakeInteractionData(300, 4);
  DeepFmOptions options;
  options.epochs = 10;
  DeepFmModel model(TaskKind::kBinaryClassification, options);
  ASSERT_TRUE(model.Fit(train).ok());
  const auto scores = model.PredictScore(train);
  const auto classes = model.PredictClass(train);
  for (size_t i = 0; i < train.n; ++i) {
    EXPECT_EQ(classes[i], scores[i] >= 0.5 ? 1 : 0);
  }
}

TEST(DeepFmTest, DeterministicBySeed) {
  Dataset train = MakeInteractionData(200, 5);
  DeepFmOptions options;
  options.epochs = 3;
  options.seed = 17;
  DeepFmModel a(TaskKind::kBinaryClassification, options);
  DeepFmModel b(TaskKind::kBinaryClassification, options);
  ASSERT_TRUE(a.Fit(train).ok());
  ASSERT_TRUE(b.Fit(train).ok());
  EXPECT_EQ(a.PredictScore(train), b.PredictScore(train));
}

TEST(DeepFmTest, MoreEpochsImproveTrainingFit) {
  Dataset train = MakeInteractionData(500, 6);
  DeepFmOptions quick;
  quick.epochs = 1;
  DeepFmModel small(TaskKind::kBinaryClassification, quick);
  ASSERT_TRUE(small.Fit(train).ok());
  DeepFmOptions longer;
  longer.epochs = 20;
  DeepFmModel large(TaskKind::kBinaryClassification, longer);
  ASSERT_TRUE(large.Fit(train).ok());
  EXPECT_GT(Auc(train.y, large.PredictScore(train)),
            Auc(train.y, small.PredictScore(train)));
}

}  // namespace
}  // namespace featlib

#pragma once

/// \file serve_test_util.h
/// \brief Shared fixture for the serving-daemon tests: a deterministic
/// relevant/query pair, batch makers, the on-disk `<name>.sql` +
/// `<name>.relevant.csv` artifact pair feataug_serve discovers, and a
/// byte-identity check routed through the wire codec itself (the codec
/// canonicalizes null placeholders, so equal tables encode to equal
/// bytes — and byte-equal encodings are exactly the serving contract).

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/feataug.h"
#include "core/plan_io.h"
#include "serve/protocol.h"
#include "table/csv.h"
#include "table/table.h"

namespace featlib {
namespace serve_test {

/// Deterministic one-to-many relevant table: two join-key columns, nulls,
/// strings and a numeric predicate attribute (mirrors the serving
/// concurrency fixture so every kernel family is exercised).
inline Table MakeRelevant() {
  Table relevant;
  Rng rng(29);
  const char* depts[] = {"x", "y", "z"};
  Column k(DataType::kInt64), k2(DataType::kString), v(DataType::kDouble),
      level(DataType::kInt64), dept(DataType::kString);
  for (int i = 0; i < 400; ++i) {
    k.AppendInt(static_cast<int64_t>(rng.UniformInt(20)));
    k2.AppendString(depts[rng.UniformInt(3)]);
    if (rng.Bernoulli(0.15)) {
      v.AppendNull();
    } else {
      v.AppendDouble(rng.Normal(0, 10));
    }
    level.AppendInt(static_cast<int64_t>(rng.UniformInt(5)));
    dept.AppendString(depts[rng.UniformInt(3)]);
  }
  EXPECT_TRUE(relevant.AddColumn("k", std::move(k)).ok());
  EXPECT_TRUE(relevant.AddColumn("k2", std::move(k2)).ok());
  EXPECT_TRUE(relevant.AddColumn("v", std::move(v)).ok());
  EXPECT_TRUE(relevant.AddColumn("level", std::move(level)).ok());
  EXPECT_TRUE(relevant.AddColumn("dept", std::move(dept)).ok());
  return relevant;
}

inline Table MakeBatch(size_t n, uint64_t seed) {
  const char* depts[] = {"x", "y", "z"};
  Rng rng(seed);
  Table batch;
  Column k(DataType::kInt64), k2(DataType::kString), age(DataType::kDouble);
  for (size_t i = 0; i < n; ++i) {
    k.AppendInt(static_cast<int64_t>(rng.UniformInt(24)));
    k2.AppendString(depts[rng.UniformInt(3)]);
    age.AppendDouble(20.0 + static_cast<double>(rng.UniformInt(40)));
  }
  EXPECT_TRUE(batch.AddColumn("k", std::move(k)).ok());
  EXPECT_TRUE(batch.AddColumn("k2", std::move(k2)).ok());
  EXPECT_TRUE(batch.AddColumn("age", std::move(age)).ok());
  return batch;
}

/// Query set spanning streaming, conjunction-mask, COUNT(*), shared-bucket
/// and two-key-set kernels.
inline std::vector<AggQuery> MakeQueries() {
  auto query = [](AggFunction fn, std::vector<std::string> keys,
                  std::string attr, std::vector<Predicate> preds) {
    AggQuery q;
    q.agg = fn;
    q.agg_attr = std::move(attr);
    q.group_keys = std::move(keys);
    q.predicates = std::move(preds);
    return q;
  };
  const Predicate dept_x = Predicate::Equals("dept", Value::Str("x"));
  const Predicate lvl = Predicate::Range("level", 1.0, 3.0);
  std::vector<AggQuery> queries;
  queries.push_back(query(AggFunction::kAvg, {"k"}, "v", {}));
  queries.push_back(query(AggFunction::kSum, {"k"}, "v", {dept_x}));
  queries.push_back(query(AggFunction::kMax, {"k"}, "v", {dept_x, lvl}));
  queries.push_back(query(AggFunction::kCount, {"k"}, "", {lvl}));
  queries.push_back(query(AggFunction::kMedian, {"k"}, "v", {dept_x}));
  queries.push_back(
      query(AggFunction::kCountDistinct, {"k", "k2"}, "v", {}));
  return queries;
}

inline AugmentationPlan MakePlan() {
  AugmentationPlan plan;
  plan.queries = MakeQueries();
  for (size_t i = 0; i < plan.queries.size(); ++i) {
    plan.feature_names.push_back("f" + std::to_string(i));
    plan.valid_metrics.push_back(0.5 + 0.01 * static_cast<double>(i));
  }
  return plan;
}

/// In-process warm handle over the fixture (no files involved).
inline std::shared_ptr<const FittedAugmenter> MakeHandle() {
  FittedAugmenter::Source source;
  source.relevant = MakeRelevant();
  source.queries = MakeQueries();
  std::vector<FittedAugmenter::Source> sources;
  sources.push_back(std::move(source));
  auto created = FittedAugmenter::Create(std::move(sources));
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  return created.ok()
             ? std::shared_ptr<const FittedAugmenter>(
                   std::move(created).ValueOrDie())
             : nullptr;
}

inline std::string MakeTempDir(const std::string& prefix) {
  std::string templ = "/tmp/" + prefix + "XXXXXX";
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  char* dir = ::mkdtemp(buf.data());
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

/// Writes the `<name>.sql` + `<name>.relevant.csv` pair DiscoverPlans
/// expects. Returns the relevant table as re-read from its CSV — the exact
/// table the daemon will load, which reference handles must also use for
/// byte-identity comparisons (CSV round-trips are not bit-preserving).
inline Table WritePlanPair(const std::string& dir, const std::string& name) {
  const Table relevant = MakeRelevant();
  const std::string csv_path = dir + "/" + name + ".relevant.csv";
  EXPECT_TRUE(WriteCsv(relevant, csv_path).ok());
  EXPECT_TRUE(WriteAugmentationPlan(MakePlan(), "relevant", relevant,
                                    dir + "/" + name + ".sql")
                  .ok());
  auto reread = ReadCsv(csv_path);
  EXPECT_TRUE(reread.ok()) << reread.status().ToString();
  return reread.ok() ? std::move(reread).ValueOrDie() : Table();
}

inline void ExpectTablesBitIdentical(const Table& actual,
                                     const Table& expected,
                                     const std::string& context) {
  ASSERT_EQ(actual.num_rows(), expected.num_rows()) << context;
  ASSERT_EQ(actual.num_columns(), expected.num_columns()) << context;
  EXPECT_EQ(serve::EncodeTable(actual), serve::EncodeTable(expected))
      << context;
}

}  // namespace serve_test
}  // namespace featlib

#include "query/bitset.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace featlib {
namespace {

std::vector<size_t> SetBits(const Bitset& b) {
  std::vector<size_t> out;
  b.ForEachSetBit([&](size_t i) { out.push_back(i); });
  return out;
}

TEST(BitsetTest, EmptyAndSizing) {
  Bitset empty;
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.num_words(), 0u);
  EXPECT_EQ(empty.Count(), 0u);
  EXPECT_TRUE(SetBits(empty).empty());

  // Word-boundary sizes: 63/64 fit one word, 65 spills into a second.
  EXPECT_EQ(Bitset(63).num_words(), 1u);
  EXPECT_EQ(Bitset(64).num_words(), 1u);
  EXPECT_EQ(Bitset(65).num_words(), 2u);
  EXPECT_EQ(Bitset(64).SizeBytes(), 8u);
  EXPECT_EQ(Bitset(65).SizeBytes(), 16u);
}

TEST(BitsetTest, SetTestAndCountAcrossWordBoundaries) {
  // 130 bits = two full words + a 2-bit tail.
  Bitset b(130);
  EXPECT_EQ(b.Count(), 0u);
  const size_t positions[] = {0, 1, 62, 63, 64, 65, 127, 128, 129};
  for (size_t p : positions) b.Set(p);
  for (size_t p : positions) EXPECT_TRUE(b.Test(p)) << p;
  EXPECT_FALSE(b.Test(2));
  EXPECT_FALSE(b.Test(61));
  EXPECT_FALSE(b.Test(126));
  EXPECT_EQ(b.Count(), 9u);
  EXPECT_EQ(SetBits(b),
            (std::vector<size_t>{0, 1, 62, 63, 64, 65, 127, 128, 129}));
}

TEST(BitsetTest, ForEachSetBitVisitsAscendingRowOrder) {
  Bitset b(200);
  for (size_t i = 0; i < 200; i += 7) b.Set(i);
  const std::vector<size_t> seen = SetBits(b);
  ASSERT_FALSE(seen.empty());
  for (size_t i = 1; i < seen.size(); ++i) {
    EXPECT_LT(seen[i - 1], seen[i]);
  }
  EXPECT_EQ(seen.size(), b.Count());
}

TEST(BitsetTest, AndIsIntersectionAndPreservesTailInvariant) {
  const size_t n = 100;  // 36 tail bits in the last word
  Bitset a(n), b(n);
  for (size_t i = 0; i < n; i += 2) a.Set(i);
  for (size_t i = 0; i < n; i += 3) b.Set(i);
  a.AndWith(b);
  // Intersection = multiples of 6.
  std::vector<size_t> expected;
  for (size_t i = 0; i < n; i += 6) expected.push_back(i);
  EXPECT_EQ(SetBits(a), expected);
  EXPECT_EQ(a.Count(), expected.size());
  // Tail bits beyond size() stay zero (Count would overreport otherwise).
  EXPECT_EQ(a.words()[1] >> (n - 64), 0u);
}

TEST(BitsetTest, AndWithEmptySelectionClearsEverything) {
  Bitset a(70), none(70);
  for (size_t i = 0; i < 70; ++i) a.Set(i);
  a.AndWith(none);
  EXPECT_EQ(a.Count(), 0u);
  EXPECT_TRUE(SetBits(a).empty());
}

TEST(BitsetTest, FromBytesMatchesBytePerRowMask) {
  std::vector<uint8_t> bytes(77, 0);
  for (size_t i = 0; i < bytes.size(); i += 5) bytes[i] = 1;
  bytes[76] = 255;  // any non-zero byte counts as selected
  const Bitset b = Bitset::FromBytes(bytes.data(), bytes.size());
  ASSERT_EQ(b.size(), bytes.size());
  for (size_t i = 0; i < bytes.size(); ++i) {
    EXPECT_EQ(b.Test(i), bytes[i] != 0) << i;
  }
}

}  // namespace
}  // namespace featlib

/// \file fault_tolerance_test.cc
/// \brief Fault-tolerant execution, end to end: injected build/kernel faults
/// surface as clean typed Statuses, failed candidates are isolated while the
/// survivors stay byte-identical to an uninjected run, bounded retry absorbs
/// transient build failures, and cancellation mid-prepare never publishes a
/// half-built stage (a later run on the same store is byte-identical to a
/// fresh one).
///
/// Targeted armings count per-site calls, which are deterministic only when
/// builds run serially — every planner here stays on the default (serial)
/// execution path; the thread-pool interaction is covered by
/// exec_context_test.cc.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/fault_injection.h"
#include "common/rng.h"
#include "core/augmenter.h"
#include "core/feature_eval.h"
#include "core/search_session.h"
#include "golden_util.h"
#include "query/query_planner.h"

namespace featlib {
namespace {

using golden::SameBits;

void ExpectColumnsBitIdentical(const std::vector<double>& actual,
                               const std::vector<double>& expected,
                               const std::string& context) {
  ASSERT_EQ(actual.size(), expected.size()) << context;
  for (size_t i = 0; i < actual.size(); ++i) {
    ASSERT_TRUE(SameBits(actual[i], expected[i])) << context << " row " << i;
  }
}

struct Pair {
  Table relevant;
  Table training;
};

// Small deterministic tables: int key, double value, two predicate columns.
Pair MakePair() {
  Pair out;
  Rng rng(7);
  const char* depts[] = {"a", "b", "c"};
  Column k(DataType::kInt64), v(DataType::kDouble), level(DataType::kInt64),
      dept(DataType::kString);
  for (int i = 0; i < 160; ++i) {
    k.AppendInt(static_cast<int64_t>(rng.UniformInt(12)));
    if (rng.Bernoulli(0.2)) {
      v.AppendNull();
    } else {
      v.AppendDouble(rng.Normal(0, 5));
    }
    level.AppendInt(static_cast<int64_t>(rng.UniformInt(4)));
    dept.AppendString(depts[rng.UniformInt(3)]);
  }
  EXPECT_TRUE(out.relevant.AddColumn("k", std::move(k)).ok());
  EXPECT_TRUE(out.relevant.AddColumn("v", std::move(v)).ok());
  EXPECT_TRUE(out.relevant.AddColumn("level", std::move(level)).ok());
  EXPECT_TRUE(out.relevant.AddColumn("dept", std::move(dept)).ok());
  Column dk(DataType::kInt64);
  for (int i = 0; i < 15; ++i) dk.AppendInt(i);
  EXPECT_TRUE(out.training.AddColumn("k", std::move(dk)).ok());
  return out;
}

AggQuery MakeQuery(AggFunction fn, std::vector<Predicate> preds) {
  AggQuery q;
  q.agg = fn;
  q.agg_attr = "v";
  q.group_keys = {"k"};
  q.predicates = std::move(preds);
  return q;
}

// The canonical batch: one group-key set, two distinct predicate masks, a
// shared bucket (Sum/Avg over pa) so all three prepare stages (group/mask/
// view, train-map, materialization) schedule builds.
std::vector<AggQuery> CanonicalQueries() {
  const Predicate pa = Predicate::Equals("dept", Value::Str("a"));
  const Predicate pb = Predicate::Range("level", 1.0, 3.0);
  return {
      MakeQuery(AggFunction::kSum, {pa}),
      MakeQuery(AggFunction::kAvg, {pa}),
      MakeQuery(AggFunction::kSum, {}),
      MakeQuery(AggFunction::kMax, {pb}),
  };
}

// Expected columns from a fresh, uninjected planner (the byte-identity
// reference every isolation test compares against).
std::vector<std::vector<double>> Reference(const Pair& tables,
                                           const std::vector<AggQuery>& qs) {
  QueryPlanner planner;
  auto r = planner.EvaluateMany(qs, tables.training, tables.relevant);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r.value() : std::vector<std::vector<double>>{};
}

#ifdef FEATLIB_FAULT_INJECTION

// Every test arms the process-wide injector; the fixture guarantees no
// arming leaks into neighbouring tests.
class FaultToleranceTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

TEST_F(FaultToleranceTest, IsolatedBuildFaultSparesSurvivingCandidates) {
  const Pair tables = MakePair();
  const std::vector<AggQuery> queries = CanonicalQueries();
  const std::vector<std::vector<double>> expected = Reference(tables, queries);

  // Mask build #0 is pa (first-seen request order): candidates 0 and 1
  // depend on it (directly and through their shared bucket), 2 and 3 do not.
  FaultInjector::Global().ArmSite("prepare.mask", 0);
  QueryPlanner planner;
  auto r = planner.EvaluateManyIsolated(queries, tables.training,
                                        tables.relevant);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const std::vector<QueryPlanner::CandidateResult>& slots = r.value();
  ASSERT_EQ(slots.size(), queries.size());
  for (size_t i : {size_t{0}, size_t{1}}) {
    EXPECT_EQ(slots[i].status.code(), StatusCode::kInternal) << i;
    EXPECT_NE(slots[i].status.message().find("injected fault"),
              std::string::npos)
        << slots[i].status.ToString();
  }
  for (size_t i : {size_t{2}, size_t{3}}) {
    ASSERT_TRUE(slots[i].status.ok()) << slots[i].status.ToString();
    ExpectColumnsBitIdentical(slots[i].values, expected[i],
                              "survivor " + std::to_string(i));
  }
  EXPECT_EQ(FaultInjector::Global().faults_injected(), 1u);

  // The failed artifact was never published: after disarming, the same
  // planner re-evaluates the full batch byte-identically to fresh.
  FaultInjector::Global().Reset();
  auto again = planner.EvaluateManyIsolated(queries, tables.training,
                                            tables.relevant);
  ASSERT_TRUE(again.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(again.value()[i].status.ok())
        << again.value()[i].status.ToString();
    ExpectColumnsBitIdentical(again.value()[i].values, expected[i],
                              "recovered " + std::to_string(i));
  }
}

TEST_F(FaultToleranceTest, FailFastBatchSurfacesInjectedFaultAndRecovers) {
  const Pair tables = MakePair();
  const std::vector<AggQuery> queries = CanonicalQueries();
  const std::vector<std::vector<double>> expected = Reference(tables, queries);

  FaultInjector::Global().ArmSite("prepare.group", 0);
  QueryPlanner planner;
  auto r = planner.EvaluateMany(queries, tables.training, tables.relevant);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_NE(r.status().message().find("injected fault"), std::string::npos);

  FaultInjector::Global().Reset();
  auto again = planner.EvaluateMany(queries, tables.training, tables.relevant);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectColumnsBitIdentical(again.value()[i], expected[i],
                              "post-failure " + std::to_string(i));
  }
}

TEST_F(FaultToleranceTest, RetryAbsorbsTransientBuildFailures) {
  const Pair tables = MakePair();
  const std::vector<AggQuery> queries = CanonicalQueries();
  const std::vector<std::vector<double>> expected = Reference(tables, queries);

  // First two attempts of the group build fail, the third succeeds.
  FaultInjector::Global().ArmSite("prepare.group", 0, /*count=*/2);
  QueryPlanner planner;
  planner.set_retry_policy({/*max_attempts=*/3, /*backoff_ms=*/0});
  auto r = planner.EvaluateMany(queries, tables.training, tables.relevant);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(planner.last_plan_stats().build_retries, 2u);
  EXPECT_EQ(FaultInjector::Global().faults_injected(), 2u);
  EXPECT_EQ(FaultInjector::Global().calls("prepare.group"), 3u);
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectColumnsBitIdentical(r.value()[i], expected[i],
                              "retried " + std::to_string(i));
  }
}

TEST_F(FaultToleranceTest, RetryExhaustionYieldsCleanTypedStatus) {
  const Pair tables = MakePair();
  const std::vector<AggQuery> queries = CanonicalQueries();

  FaultInjector::Global().ArmSite("prepare.group", 0, /*count=*/5);
  QueryPlanner planner;
  planner.set_retry_policy({/*max_attempts=*/2, /*backoff_ms=*/0});
  auto r = planner.EvaluateMany(queries, tables.training, tables.relevant);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_NE(r.status().message().find("injected fault"), std::string::npos);
  // Both attempts were consumed before giving up.
  EXPECT_EQ(FaultInjector::Global().calls("prepare.group"), 2u);
  EXPECT_EQ(planner.last_plan_stats().build_retries, 1u);
}

TEST_F(FaultToleranceTest, KernelFaultIsolatesOneCandidate) {
  const Pair tables = MakePair();
  const std::vector<AggQuery> queries = CanonicalQueries();
  const std::vector<std::vector<double>> expected = Reference(tables, queries);

  // Serial fan-out hits exec.kernel in candidate order: #1 is candidate 1.
  FaultInjector::Global().ArmSite("exec.kernel", 1);
  QueryPlanner planner;
  auto r = planner.EvaluateManyIsolated(queries, tables.training,
                                        tables.relevant);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  for (size_t i = 0; i < queries.size(); ++i) {
    if (i == 1) {
      EXPECT_EQ(r.value()[i].status.code(), StatusCode::kInternal);
      EXPECT_NE(r.value()[i].status.message().find("injected fault"),
                std::string::npos);
      continue;
    }
    ASSERT_TRUE(r.value()[i].status.ok()) << r.value()[i].status.ToString();
    ExpectColumnsBitIdentical(r.value()[i].values, expected[i],
                              "kernel survivor " + std::to_string(i));
  }
}

TEST_F(FaultToleranceTest, CancelMidPrepareNeverPublishesHalfBuiltStage) {
  // One sub-case per DAG stage: the hook cancels the context from inside the
  // stage's first build. The abandoned stage must publish nothing, and after
  // disarming, the same planner (same store) must produce byte-identical
  // results to a fresh run — i.e. the store holds only fully-published
  // artifacts, never a half-built layer.
  const Pair tables = MakePair();
  const std::vector<AggQuery> queries = CanonicalQueries();
  const std::vector<std::vector<double>> expected = Reference(tables, queries);
  const char* sites[] = {"prepare.group", "prepare.train_map", "prepare.mat"};

  for (const char* site : sites) {
    SCOPED_TRACE(site);
    ExecContext ctx;
    FaultInjector::Global().Reset();
    FaultInjector::Global().ArmHook(site, 0, [&ctx] { ctx.Cancel(); });

    QueryPlanner planner;
    auto r = planner.EvaluateManyIsolated(queries, tables.training,
                                          tables.relevant, &ctx);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
    // The cancelled stage committed nothing. Materializations are the last
    // stage, so they must be absent in every sub-case; cancelling inside the
    // first stage additionally means no group index was published.
    EXPECT_EQ(planner.store().num_materializations(), 0u);
    if (std::string(site) == "prepare.group") {
      EXPECT_EQ(planner.store().num_group_builds(), 0u);
      EXPECT_EQ(planner.store().num_mask_builds(), 0u);
    }

    FaultInjector::Global().Reset();
    auto again = planner.EvaluateManyIsolated(queries, tables.training,
                                              tables.relevant);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_TRUE(again.value()[i].status.ok())
          << again.value()[i].status.ToString();
      ExpectColumnsBitIdentical(again.value()[i].values, expected[i],
                                "post-cancel " + std::to_string(i));
    }
  }
}

TEST_F(FaultToleranceTest, RandomSweepIsDeterministicPerSeed) {
  const Pair tables = MakePair();
  const std::vector<AggQuery> queries = CanonicalQueries();

  auto run_once = [&](uint64_t seed) {
    FaultInjector::Global().EnableRandom(seed, 0.5);
    QueryPlanner planner;
    auto r = planner.EvaluateManyIsolated(queries, tables.training,
                                          tables.relevant);
    std::vector<std::string> pattern;
    if (r.ok()) {
      for (const auto& slot : r.value()) {
        pattern.push_back(slot.status.ToString());
      }
    } else {
      pattern.push_back("OUTER:" + r.status().ToString());
    }
    pattern.push_back(
        "faults=" + std::to_string(FaultInjector::Global().faults_injected()));
    return pattern;
  };

  const auto first = run_once(42);
  FaultInjector::Global().Reset();
  const auto second = run_once(42);
  EXPECT_EQ(first, second);

  // Probability zero injects nothing.
  FaultInjector::Global().Reset();
  FaultInjector::Global().EnableRandom(7, 0.0);
  QueryPlanner planner;
  auto clean = planner.EvaluateManyIsolated(queries, tables.training,
                                            tables.relevant);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(FaultInjector::Global().faults_injected(), 0u);
}

TEST_F(FaultToleranceTest, TransformManyIsolatedSparesSiblingBatches) {
  const Pair tables = MakePair();
  AugmentationPlan plan;
  plan.queries = CanonicalQueries();
  for (size_t i = 0; i < plan.queries.size(); ++i) {
    plan.feature_names.push_back("f" + std::to_string(i));
    plan.valid_metrics.push_back(std::nan(""));
  }
  Table relevant_copy = tables.relevant;
  auto fitted = MakeFittedAugmenter(std::move(plan), std::move(relevant_copy));
  ASSERT_TRUE(fitted.ok()) << fitted.status().ToString();
  // Inline execution: kernel call order (and so the targeted arming) is
  // deterministic, batch 0 first.
  fitted.value()->set_thread_pool(nullptr);

  std::vector<Table> batches;
  for (int b = 0; b < 3; ++b) {
    Table t;
    Column k(DataType::kInt64);
    for (int i = 0; i < 5; ++i) k.AppendInt((b * 5 + i) % 12);
    ASSERT_TRUE(t.AddColumn("k", std::move(k)).ok());
    batches.push_back(std::move(t));
  }
  std::vector<Table> expected;
  for (const Table& b : batches) {
    auto t = fitted.value()->Transform(b);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    expected.push_back(std::move(t).ValueOrDie());
  }

  FaultInjector::Global().ArmSite("exec.kernel", 0);
  auto r = fitted.value()->TransformManyIsolated(batches);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().size(), batches.size());
  EXPECT_EQ(r.value()[0].status.code(), StatusCode::kInternal);
  EXPECT_NE(r.value()[0].status.message().find("injected fault"),
            std::string::npos);
  for (size_t b = 1; b < batches.size(); ++b) {
    const FittedAugmenter::BatchResult& slot = r.value()[b];
    ASSERT_TRUE(slot.status.ok()) << slot.status.ToString();
    ASSERT_EQ(slot.table.num_columns(), expected[b].num_columns());
    for (size_t c = 0; c < slot.table.num_columns(); ++c) {
      const Column& actual_col = slot.table.ColumnAt(c);
      const Column& expected_col = expected[b].ColumnAt(c);
      ASSERT_EQ(actual_col.size(), expected_col.size());
      for (size_t row = 0; row < actual_col.size(); ++row) {
        ASSERT_TRUE(
            SameBits(actual_col.AsDouble(row), expected_col.AsDouble(row)))
            << "batch " << b << " col " << c << " row " << row;
      }
    }
  }
}

#endif  // FEATLIB_FAULT_INJECTION

// ---------------------------------------------------------------------------
// Context-limit behaviour that needs no injector.
// ---------------------------------------------------------------------------

TEST(ExecLimitsTest, PreExpiredDeadlineFailsBeforeAnyPublish) {
  const Pair tables = MakePair();
  ExecContext ctx;
  ctx.set_deadline_after(std::chrono::nanoseconds(0));
  QueryPlanner planner;
  auto r = planner.EvaluateMany(CanonicalQueries(), tables.training,
                                tables.relevant, &ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(planner.store().num_group_builds(), 0u);
  EXPECT_EQ(planner.store().num_mask_builds(), 0u);
  EXPECT_EQ(planner.store().num_materializations(), 0u);
}

TEST(ExecLimitsTest, TinyMemoryBudgetIsResourceExhaustedUpFront) {
  const Pair tables = MakePair();
  ExecContext ctx;
  ctx.set_memory_budget_bytes(16);
  QueryPlanner planner;
  auto fail_fast = planner.EvaluateMany(CanonicalQueries(), tables.training,
                                        tables.relevant, &ctx);
  ASSERT_FALSE(fail_fast.ok());
  EXPECT_EQ(fail_fast.status().code(), StatusCode::kResourceExhausted);

  // The isolated entry point reports budget exhaustion batch-wide, not as a
  // per-slot failure (nothing was attributable to one candidate).
  ExecContext ctx2;
  ctx2.set_memory_budget_bytes(16);
  auto isolated = planner.EvaluateManyIsolated(
      CanonicalQueries(), tables.training, tables.relevant, &ctx2);
  ASSERT_FALSE(isolated.ok());
  EXPECT_EQ(isolated.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(planner.store().num_group_builds(), 0u);
}

TEST(ExecLimitsTest, GenerousBudgetSucceedsAndChargesAreVisible) {
  const Pair tables = MakePair();
  const std::vector<AggQuery> queries = CanonicalQueries();
  const std::vector<std::vector<double>> expected = Reference(tables, queries);
  ExecContext ctx;
  ctx.set_memory_budget_bytes(size_t{64} << 20);
  QueryPlanner planner;
  auto r =
      planner.EvaluateMany(queries, tables.training, tables.relevant, &ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(ctx.charged_bytes(), 0u);
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectColumnsBitIdentical(r.value()[i], expected[i],
                              "budgeted " + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------
// SearchSession skip-and-record: a genuinely bad candidate (missing column)
// is recorded and sentinel-scored while the rest of the pool proceeds.
// ---------------------------------------------------------------------------

Table SessionTraining(size_t n = 40) {
  Table t;
  Column id(DataType::kInt64), age(DataType::kDouble), label(DataType::kInt64);
  for (size_t i = 0; i < n; ++i) {
    id.AppendInt(static_cast<int64_t>(i % 12));
    age.AppendDouble(20.0 + static_cast<double>(i));
    label.AppendInt(static_cast<int64_t>(i % 2));
  }
  EXPECT_TRUE(t.AddColumn("cname", std::move(id)).ok());
  EXPECT_TRUE(t.AddColumn("age", std::move(age)).ok());
  EXPECT_TRUE(t.AddColumn("label", std::move(label)).ok());
  return t;
}

Table SessionLogs() {
  Table t;
  Rng rng(11);
  Column cname(DataType::kInt64), price(DataType::kDouble);
  for (int i = 0; i < 120; ++i) {
    cname.AppendInt(static_cast<int64_t>(rng.UniformInt(12)));
    price.AppendDouble(rng.Normal(10, 3));
  }
  EXPECT_TRUE(t.AddColumn("cname", std::move(cname)).ok());
  EXPECT_TRUE(t.AddColumn("price", std::move(price)).ok());
  return t;
}

AggQuery SessionQuery(AggFunction fn, const std::string& attr) {
  AggQuery q;
  q.agg = fn;
  q.agg_attr = attr;
  q.group_keys = {"cname"};
  return q;
}

TEST(SearchSessionIsolationTest, BadCandidateIsSkippedAndRecorded) {
  Table training = SessionTraining();
  Table logs = SessionLogs();
  auto evaluator = FeatureEvaluator::Create(training, "label", {"age"}, logs,
                                            TaskKind::kBinaryClassification,
                                            EvaluatorOptions{});
  ASSERT_TRUE(evaluator.ok()) << evaluator.status().ToString();
  SearchSession session(&evaluator.value());

  const std::vector<AggQuery> pool = {
      SessionQuery(AggFunction::kAvg, "price"),
      SessionQuery(AggFunction::kSum, "no_such_column"),
      SessionQuery(AggFunction::kMax, "price"),
  };

  auto proxies = session.ProxyScores(pool, ProxyKind::kMutualInformation);
  ASSERT_TRUE(proxies.ok()) << proxies.status().ToString();
  ASSERT_EQ(proxies.value().size(), pool.size());
  // The sentinel is -inf (not NaN): strictly worse than any real proxy and
  // safe under std::sort's strict-weak-ordering requirement.
  EXPECT_TRUE(std::isfinite(proxies.value()[0]));
  EXPECT_TRUE(std::isinf(proxies.value()[1]));
  EXPECT_LT(proxies.value()[1], 0.0);
  EXPECT_TRUE(std::isfinite(proxies.value()[2]));
  ASSERT_EQ(session.failed_candidates().size(), 1u);
  EXPECT_FALSE(session.failed_candidates()[0].status.ok());

  auto outcomes = session.ModelScores(pool);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  EXPECT_TRUE(std::isnan(outcomes.value()[1].metric));
  EXPECT_TRUE(std::isinf(outcomes.value()[1].loss));
  EXPECT_GT(outcomes.value()[1].loss, 0.0);
  EXPECT_TRUE(std::isfinite(outcomes.value()[0].loss));
  EXPECT_TRUE(std::isfinite(outcomes.value()[2].loss));
  // Still the same single distinct failure (recorded once by content key).
  EXPECT_EQ(session.failed_candidates().size(), 1u);
}

TEST(SearchSessionIsolationTest, CancelledContextIsBatchFatal) {
  Table training = SessionTraining();
  Table logs = SessionLogs();
  auto evaluator = FeatureEvaluator::Create(training, "label", {"age"}, logs,
                                            TaskKind::kBinaryClassification,
                                            EvaluatorOptions{});
  ASSERT_TRUE(evaluator.ok()) << evaluator.status().ToString();
  ExecContext ctx;
  ctx.Cancel();
  evaluator.value().set_exec_context(&ctx);
  SearchSession session(&evaluator.value());
  auto proxies = session.ProxyScores({SessionQuery(AggFunction::kAvg, "price")},
                                     ProxyKind::kMutualInformation);
  ASSERT_FALSE(proxies.ok());
  EXPECT_EQ(proxies.status().code(), StatusCode::kCancelled);
  // A tripped context is never downgraded to a skip-and-record entry.
  EXPECT_TRUE(session.failed_candidates().empty());
}

}  // namespace
}  // namespace featlib

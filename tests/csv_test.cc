#include <gtest/gtest.h>

#include <cstdio>

#include "table/csv.h"

namespace featlib {
namespace {

TEST(CsvTest, ParsesTypedColumns) {
  auto result = ReadCsvFromString("a,b,c\n1,2.5,x\n2,3.5,y\n");
  ASSERT_TRUE(result.ok());
  const Table& t = result.value();
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.GetColumn("a").value()->type(), DataType::kInt64);
  EXPECT_EQ(t.GetColumn("b").value()->type(), DataType::kDouble);
  EXPECT_EQ(t.GetColumn("c").value()->type(), DataType::kString);
  EXPECT_EQ(t.GetColumn("c").value()->StringAt(1), "y");
}

TEST(CsvTest, IntPromotesToDouble) {
  auto result = ReadCsvFromString("x\n1\n2.5\n3\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().GetColumn("x").value()->type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(result.value().GetColumn("x").value()->DoubleAt(0), 1.0);
}

TEST(CsvTest, EmptyFieldsAreNull) {
  auto result = ReadCsvFromString("a,b\n1,\n,2\n");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().GetColumn("b").value()->IsNull(0));
  EXPECT_TRUE(result.value().GetColumn("a").value()->IsNull(1));
}

TEST(CsvTest, QuotedFieldsWithCommasAndQuotes) {
  auto result = ReadCsvFromString("s\n\"a,b\"\n\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(result.ok());
  const Column* col = result.value().GetColumn("s").value();
  EXPECT_EQ(col->StringAt(0), "a,b");
  EXPECT_EQ(col->StringAt(1), "he said \"hi\"");
}

TEST(CsvTest, CrlfHandled) {
  auto result = ReadCsvFromString("a,b\r\n1,2\r\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_rows(), 1u);
  EXPECT_EQ(result.value().GetColumn("b").value()->IntAt(0), 2);
}

TEST(CsvTest, NoHeaderNamesColumns) {
  CsvReadOptions options;
  options.has_header = false;
  auto result = ReadCsvFromString("1,2\n3,4\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().HasColumn("c0"));
  EXPECT_EQ(result.value().num_rows(), 2u);
}

TEST(CsvTest, RaggedRowRejected) {
  EXPECT_FALSE(ReadCsvFromString("a,b\n1\n").ok());
}

TEST(CsvTest, EmptyInputRejected) {
  EXPECT_FALSE(ReadCsvFromString("").ok());
}

TEST(CsvTest, MissingFileIsIOError) {
  auto result = ReadCsv("/nonexistent/path.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(CsvTest, RoundTripPreservesData) {
  Table t;
  ASSERT_TRUE(t.AddColumn("i", Column::FromInts(DataType::kInt64, {1, -2})).ok());
  ASSERT_TRUE(t.AddColumn("d", Column::FromDoubles({0.25, 1e-3})).ok());
  ASSERT_TRUE(t.AddColumn("s", Column::FromStrings({"plain", "with,comma"})).ok());
  Column with_null(DataType::kDouble);
  with_null.AppendNull();
  with_null.AppendDouble(7.0);
  ASSERT_TRUE(t.AddColumn("n", std::move(with_null)).ok());

  const std::string text = WriteCsvToString(t);
  auto back = ReadCsvFromString(text);
  ASSERT_TRUE(back.ok());
  const Table& u = back.value();
  EXPECT_EQ(u.num_rows(), 2u);
  EXPECT_EQ(u.GetColumn("i").value()->IntAt(1), -2);
  EXPECT_DOUBLE_EQ(u.GetColumn("d").value()->DoubleAt(0), 0.25);
  EXPECT_EQ(u.GetColumn("s").value()->StringAt(1), "with,comma");
  EXPECT_TRUE(u.GetColumn("n").value()->IsNull(0));
  EXPECT_DOUBLE_EQ(u.GetColumn("n").value()->AsDouble(1), 7.0);
}

TEST(CsvTest, FileRoundTrip) {
  Table t;
  ASSERT_TRUE(t.AddColumn("x", Column::FromInts(DataType::kInt64, {5, 6})).ok());
  const std::string path = testing::TempDir() + "/featlib_csv_test.csv";
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto back = ReadCsv(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().GetColumn("x").value()->IntAt(1), 6);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace featlib

#include <gtest/gtest.h>

#include <cmath>

#include "core/generator.h"
#include "data/synthetic.h"
#include "hpo/random_search.h"
#include "hpo/smac.h"

namespace featlib {
namespace {

double Quadratic(const ParamVector& v) {
  const double a = v[1] - 0.3;
  const double b = v[2] - 0.7;
  const double cat_penalty = v[0] == 2.0 ? 0.0 : 0.5;
  return a * a + b * b + cat_penalty;
}

SearchSpace QuadraticSpace() {
  SearchSpace space;
  space.Add(ParamDomain::Categorical("c", 4));
  space.Add(ParamDomain::Numeric("x", 0.0, 1.0));
  space.Add(ParamDomain::Numeric("y", 0.0, 1.0));
  return space;
}

double RunOptimizer(Optimizer* optimizer, int iters) {
  double best = 1e300;
  for (int i = 0; i < iters; ++i) {
    const ParamVector v = optimizer->Suggest();
    const double loss = Quadratic(v);
    optimizer->Observe(v, loss);
    best = std::min(best, loss);
  }
  return best;
}

class SmacVsRandomTest : public testing::TestWithParam<uint64_t> {};

TEST_P(SmacVsRandomTest, AtLeastMatchesRandomOnQuadratic) {
  const uint64_t seed = GetParam();
  SmacOptions options;
  options.seed = seed;
  Smac smac(QuadraticSpace(), options);
  RandomSearch random(QuadraticSpace(), seed);
  EXPECT_LE(RunOptimizer(&smac, 80), RunOptimizer(&random, 80) + 0.05)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmacVsRandomTest,
                         testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(SmacTest, ConvergesToGoodRegion) {
  double total = 0.0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    SmacOptions options;
    options.seed = seed;
    Smac smac(QuadraticSpace(), options);
    total += RunOptimizer(&smac, 100);
  }
  EXPECT_LT(total / 5.0, 0.15);
}

TEST(SmacTest, HandlesOptionalDims) {
  SearchSpace space;
  space.Add(ParamDomain::OptionalNumeric("o", 0.0, 1.0));
  SmacOptions options;
  options.seed = 3;
  Smac smac(space, options);
  // Loss favors None; SMAC must handle NaN configurations throughout.
  for (int i = 0; i < 50; ++i) {
    const ParamVector v = smac.Suggest();
    smac.Observe(v, IsNone(v[0]) ? 0.0 : 1.0 + v[0]);
  }
  const Trial* best = smac.best();
  ASSERT_NE(best, nullptr);
  EXPECT_TRUE(IsNone(best->params[0]));
}

TEST(SmacTest, DeterministicBySeed) {
  SmacOptions options;
  options.seed = 11;
  Smac a(QuadraticSpace(), options);
  Smac b(QuadraticSpace(), options);
  for (int i = 0; i < 30; ++i) {
    const ParamVector va = a.Suggest();
    const ParamVector vb = b.Suggest();
    for (size_t d = 0; d < va.size(); ++d) {
      if (IsNone(va[d])) {
        EXPECT_TRUE(IsNone(vb[d]));
      } else {
        EXPECT_DOUBLE_EQ(va[d], vb[d]);
      }
    }
    a.Observe(va, Quadratic(va));
    b.Observe(vb, Quadratic(vb));
  }
}

TEST(SmacTest, SuggestBatchOfOneMatchesSequentialTrajectory) {
  // The batch=1 contract (see hpo_test): identical proposals and RNG
  // consumption, seed-for-seed.
  SmacOptions options;
  options.seed = 17;
  options.n_startup = 6;
  Smac sequential(QuadraticSpace(), options);
  Smac batched(QuadraticSpace(), options);
  for (int i = 0; i < 25; ++i) {
    const ParamVector a = sequential.Suggest();
    const std::vector<ParamVector> pool = batched.SuggestBatch(1);
    ASSERT_EQ(pool.size(), 1u);
    ASSERT_EQ(a.size(), pool[0].size());
    for (size_t d = 0; d < a.size(); ++d) {
      if (IsNone(a[d])) {
        EXPECT_TRUE(IsNone(pool[0][d])) << "iter " << i << " dim " << d;
      } else {
        EXPECT_DOUBLE_EQ(a[d], pool[0][d]) << "iter " << i << " dim " << d;
      }
    }
    sequential.Observe(a, Quadratic(a));
    batched.Observe(pool[0], Quadratic(pool[0]));
  }
}

TEST(SmacTest, SuggestBatchProposesDistinctConfigurations) {
  SmacOptions options;
  options.seed = 23;
  options.n_startup = 5;
  options.exploration_fraction = 0.0;  // all slots exploit the surrogate
  Smac smac(QuadraticSpace(), options);
  Rng rng(9);
  const SearchSpace space = QuadraticSpace();
  for (int i = 0; i < 20; ++i) {
    const ParamVector v = space.Sample(&rng);
    smac.Observe(v, Quadratic(v));
  }
  const std::vector<ParamVector> pool = smac.SuggestBatch(5);
  ASSERT_EQ(pool.size(), 5u);
  for (size_t i = 0; i < pool.size(); ++i) {
    ASSERT_TRUE(space.Validate(pool[i]).ok());
    for (size_t j = i + 1; j < pool.size(); ++j) {
      EXPECT_FALSE(SameParamVector(pool[i], pool[j]))
          << "slots " << i << "," << j;
    }
  }
}

TEST(SmacTest, WarmStartAccepted) {
  SmacOptions options;
  options.seed = 7;
  options.n_startup = 2;
  Smac smac(QuadraticSpace(), options);
  std::vector<Trial> prior;
  for (int i = 0; i < 20; ++i) {
    prior.push_back(Trial{{2.0, 0.3, 0.7}, 0.0});
  }
  smac.WarmStart(prior);
  EXPECT_EQ(smac.history().size(), 20u);
  // Post-warm-start suggestions are in-domain.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(smac.space().Validate(smac.Suggest()).ok());
  }
}

TEST(SmacBackendTest, GeneratorRunsWithSmac) {
  SyntheticOptions data_options;
  data_options.n_train = 300;
  data_options.avg_logs_per_entity = 10;
  data_options.seed = 7;
  DatasetBundle bundle = MakeTmall(data_options);
  EvaluatorOptions eval_options;
  eval_options.model = ModelKind::kLogisticRegression;
  eval_options.metric = MetricKind::kAuc;
  auto evaluator = FeatureEvaluator::Create(bundle.training, bundle.label_col,
                                            bundle.base_features, bundle.relevant,
                                            bundle.task, eval_options);
  ASSERT_TRUE(evaluator.ok());
  FeatureEvaluator eval = std::move(evaluator).ValueOrDie();

  GeneratorOptions options;
  options.backend = HpoBackend::kSmac;
  options.warmup_iterations = 30;
  options.warmup_top_k = 5;
  options.generation_iterations = 10;
  options.seed = 11;
  SqlQueryGenerator generator(&eval, options);
  auto result = generator.Run(bundle.golden_template);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.value().queries.size(), 0u);
}

TEST(SmacBackendTest, BackendNames) {
  EXPECT_STREQ(HpoBackendToString(HpoBackend::kTpe), "TPE");
  EXPECT_STREQ(HpoBackendToString(HpoBackend::kSmac), "SMAC");
  EXPECT_STREQ(HpoBackendToString(HpoBackend::kRandom), "Random");
}

}  // namespace
}  // namespace featlib

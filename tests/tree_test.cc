#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "ml/metrics.h"
#include "ml/tree.h"

namespace featlib {
namespace {

std::vector<uint32_t> AllRows(size_t n) {
  std::vector<uint32_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0u);
  return rows;
}

TEST(GradientTreeTest, SingleSplitStepFunction) {
  // y = 0 for x<0, 10 for x>=0; grad=-y, hess=1 -> leaves predict means.
  Dataset ds = Dataset::WithLabels({}, TaskKind::kRegression);
  const size_t n = 100;
  std::vector<double> x(n);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = static_cast<double>(i) - 50.0;
    y[i] = x[i] >= 0 ? 10.0 : 0.0;
  }
  ds.n = n;
  ds.y = y;
  ASSERT_TRUE(ds.AddFeature("x", x).ok());
  std::vector<double> grad(n);
  std::vector<double> hess(n, 1.0);
  for (size_t i = 0; i < n; ++i) grad[i] = -y[i];

  TreeOptions options;
  options.max_depth = 2;
  options.lambda = 1e-6;
  Rng rng(1);
  GradientTree tree;
  tree.Fit(ds, AllRows(n), grad, hess, options, &rng);
  EXPECT_NEAR(tree.PredictRow(ds, 10), 0.0, 0.2);
  EXPECT_NEAR(tree.PredictRow(ds, 90), 10.0, 0.2);
  EXPECT_GT(tree.num_nodes(), 1u);
}

TEST(GradientTreeTest, RespectsMaxDepthZero) {
  Dataset ds = Dataset::WithLabels({}, TaskKind::kRegression);
  ds.n = 4;
  ds.y = {1, 2, 3, 4};
  ASSERT_TRUE(ds.AddFeature("x", {1, 2, 3, 4}).ok());
  std::vector<double> grad = {-1, -2, -3, -4};
  std::vector<double> hess(4, 1.0);
  TreeOptions options;
  options.max_depth = 0;
  options.lambda = 0.0;
  Rng rng(1);
  GradientTree tree;
  tree.Fit(ds, AllRows(4), grad, hess, options, &rng);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_NEAR(tree.PredictRow(ds, 0), 2.5, 1e-9);  // mean of y
}

TEST(GradientTreeTest, LambdaShrinksLeaves) {
  Dataset ds = Dataset::WithLabels({}, TaskKind::kRegression);
  ds.n = 2;
  ds.y = {4, 4};
  ASSERT_TRUE(ds.AddFeature("x", {1, 2}).ok());
  std::vector<double> grad = {-4, -4};
  std::vector<double> hess = {1, 1};
  TreeOptions options;
  options.max_depth = 0;
  options.lambda = 2.0;  // leaf = 8 / (2 + 2) = 2 instead of 4
  Rng rng(1);
  GradientTree tree;
  tree.Fit(ds, AllRows(2), grad, hess, options, &rng);
  EXPECT_NEAR(tree.PredictRow(ds, 0), 2.0, 1e-9);
}

TEST(GradientTreeTest, FeatureGainsIdentifySignal) {
  Rng rng(3);
  Dataset ds = Dataset::WithLabels({}, TaskKind::kRegression);
  const size_t n = 300;
  std::vector<double> signal(n);
  std::vector<double> noise(n);
  std::vector<double> grad(n);
  std::vector<double> hess(n, 1.0);
  ds.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    signal[i] = rng.Normal();
    noise[i] = rng.Normal();
    ds.y[i] = signal[i] > 0 ? 5.0 : -5.0;
    grad[i] = -ds.y[i];
  }
  ds.n = n;
  ASSERT_TRUE(ds.AddFeature("noise", noise).ok());
  ASSERT_TRUE(ds.AddFeature("signal", signal).ok());
  GradientTree tree;
  TreeOptions options;
  options.max_depth = 3;
  tree.Fit(ds, AllRows(n), grad, hess, options, &rng);
  const auto& gains = tree.feature_gains();
  EXPECT_GT(gains[1], gains[0]);
}

TEST(ClassificationTreeTest, LearnsXor) {
  // XOR is the canonical single-split-impossible pattern; depth 2 solves it.
  Rng rng(7);
  Dataset ds = Dataset::WithLabels({}, TaskKind::kBinaryClassification);
  const size_t n = 400;
  std::vector<double> x1(n);
  std::vector<double> x2(n);
  ds.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    x1[i] = rng.Bernoulli(0.5) ? 1.0 : 0.0;
    x2[i] = rng.Bernoulli(0.5) ? 1.0 : 0.0;
    ds.y[i] = (x1[i] != x2[i]) ? 1.0 : 0.0;
  }
  ds.n = n;
  ASSERT_TRUE(ds.AddFeature("x1", x1).ok());
  ASSERT_TRUE(ds.AddFeature("x2", x2).ok());
  ClassificationTree tree;
  TreeOptions options;
  options.max_depth = 3;
  options.min_samples_leaf = 1;
  options.min_samples_split = 2;
  Rng tree_rng(1);
  tree.Fit(ds, AllRows(n), 2, options, &tree_rng);
  size_t correct = 0;
  for (size_t i = 0; i < n; ++i) {
    const auto& dist = tree.PredictDistribution(ds, i);
    const int pred = dist[1] > dist[0] ? 1 : 0;
    if (pred == static_cast<int>(ds.y[i])) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / n, 0.98);
}

TEST(ClassificationTreeTest, PureNodeStopsSplitting) {
  Dataset ds = Dataset::WithLabels({1, 1, 1, 1}, TaskKind::kBinaryClassification);
  ASSERT_TRUE(ds.AddFeature("x", {1, 2, 3, 4}).ok());
  ClassificationTree tree;
  TreeOptions options;
  Rng rng(1);
  tree.Fit(ds, AllRows(4), 2, options, &rng);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_DOUBLE_EQ(tree.PredictDistribution(ds, 0)[1], 1.0);
}

TEST(ClassificationTreeTest, DistributionSumsToOne) {
  Rng rng(9);
  Dataset ds = Dataset::WithLabels({}, TaskKind::kMultiClassification, 3);
  const size_t n = 200;
  std::vector<double> x(n);
  ds.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Normal();
    ds.y[i] = static_cast<double>(rng.UniformInt(3));
  }
  ds.n = n;
  ds.num_classes = 3;
  ASSERT_TRUE(ds.AddFeature("x", x).ok());
  ClassificationTree tree;
  TreeOptions options;
  Rng tree_rng(2);
  tree.Fit(ds, AllRows(n), 3, options, &tree_rng);
  for (size_t i = 0; i < 20; ++i) {
    const auto& dist = tree.PredictDistribution(ds, i);
    double total = 0;
    for (double p : dist) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(ClassificationTreeTest, GiniGainsTracked) {
  Rng rng(11);
  Dataset ds = Dataset::WithLabels({}, TaskKind::kBinaryClassification);
  const size_t n = 200;
  std::vector<double> signal(n);
  std::vector<double> noise(n);
  ds.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    signal[i] = rng.Normal();
    noise[i] = rng.Normal();
    ds.y[i] = signal[i] > 0 ? 1.0 : 0.0;
  }
  ds.n = n;
  ASSERT_TRUE(ds.AddFeature("noise", noise).ok());
  ASSERT_TRUE(ds.AddFeature("signal", signal).ok());
  ClassificationTree tree;
  TreeOptions options;
  options.max_depth = 4;
  Rng tree_rng(3);
  tree.Fit(ds, AllRows(n), 2, options, &tree_rng);
  const auto& gains = tree.feature_gains();
  ASSERT_EQ(gains.size(), 2u);
  EXPECT_GT(gains[1], gains[0]);
}

}  // namespace
}  // namespace featlib

#include <gtest/gtest.h>

#include "baselines/featuretools.h"
#include "baselines/selectors.h"
#include "core/feataug.h"
#include "data/synthetic.h"

namespace featlib {
namespace {

SyntheticOptions SmallData() {
  SyntheticOptions options;
  options.n_train = 300;
  options.avg_logs_per_entity = 10;
  options.seed = 21;
  return options;
}

FeatAugOptions FastOptions() {
  FeatAugOptions options;
  options.n_templates = 3;
  options.queries_per_template = 3;
  options.generator.warmup_iterations = 25;
  options.generator.warmup_top_k = 5;
  options.generator.generation_iterations = 8;
  options.qti.beam_width = 2;
  options.qti.max_depth = 2;
  options.qti.node_iterations = 8;
  options.evaluator.model = ModelKind::kLogisticRegression;
  options.evaluator.metric = MetricKind::kAuc;
  options.seed = 5;
  return options;
}

TEST(FeatAugTest, EndToEndFitProducesPlan) {
  DatasetBundle bundle = MakeTmall(SmallData());
  FeatAug feataug(bundle.ToProblem(), FastOptions());
  auto plan = feataug.Fit();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_GT(plan.value().queries.size(), 0u);
  EXPECT_LE(plan.value().queries.size(), 9u);  // 3 templates x 3 queries
  EXPECT_EQ(plan.value().queries.size(), plan.value().feature_names.size());
  EXPECT_EQ(plan.value().queries.size(), plan.value().valid_metrics.size());
  EXPECT_EQ(plan.value().templates_considered, 3u);
  EXPECT_GT(plan.value().model_evals, 0u);
  EXPECT_GT(plan.value().proxy_evals, 0u);
  EXPECT_GT(plan.value().qti_seconds, 0.0);
}

TEST(FeatAugTest, ApplyAppendsFeatureColumns) {
  DatasetBundle bundle = MakeTmall(SmallData());
  FeatAug feataug(bundle.ToProblem(), FastOptions());
  auto plan = feataug.Fit();
  ASSERT_TRUE(plan.ok());
  auto augmented = feataug.Apply(plan.value(), bundle.training);
  ASSERT_TRUE(augmented.ok());
  EXPECT_EQ(augmented.value().num_rows(), bundle.training.num_rows());
  EXPECT_EQ(augmented.value().num_columns(),
            bundle.training.num_columns() + plan.value().queries.size());
  for (const auto& name : plan.value().feature_names) {
    EXPECT_TRUE(augmented.value().HasColumn(name));
  }
}

TEST(FeatAugTest, ApplyToDatasetMatchesPlanWidth) {
  DatasetBundle bundle = MakeTmall(SmallData());
  FeatAug feataug(bundle.ToProblem(), FastOptions());
  auto plan = feataug.Fit();
  ASSERT_TRUE(plan.ok());
  auto ds = feataug.ApplyToDataset(plan.value(), bundle.training);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds.value().d,
            bundle.base_features.size() + plan.value().queries.size());
  EXPECT_EQ(ds.value().n, bundle.training.num_rows());
}

TEST(FeatAugTest, NoQtiUsesSingleTemplate) {
  DatasetBundle bundle = MakeTmall(SmallData());
  FeatAugOptions options = FastOptions();
  options.enable_qti = false;
  FeatAug feataug(bundle.ToProblem(), options);
  auto plan = feataug.Fit();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().templates_considered, 1u);
  EXPECT_DOUBLE_EQ(plan.value().qti_seconds, 0.0);
}

TEST(FeatAugTest, EvaluatorAccessibleAfterFit) {
  DatasetBundle bundle = MakeTmall(SmallData());
  FeatAug feataug(bundle.ToProblem(), FastOptions());
  EXPECT_EQ(feataug.evaluator(), nullptr);
  auto plan = feataug.Fit();
  ASSERT_TRUE(plan.ok());
  ASSERT_NE(feataug.evaluator(), nullptr);
  auto test_score = feataug.evaluator()->TestScore(plan.value().queries);
  ASSERT_TRUE(test_score.ok());
  EXPECT_GT(test_score.value(), 0.4);
}

// The headline integration property (Table III's direction): FeatAug's
// features outperform Featuretools' predicate-free features on the
// held-out test split of the planted-signal data.
TEST(FeatAugTest, BeatsFeaturetoolsOnPlantedSignal) {
  // Needs enough rows that the validation split is not pure noise — with
  // tiny splits the search can only overfit (see generator_test).
  SyntheticOptions data_options = SmallData();
  data_options.n_train = 1200;
  DatasetBundle bundle = MakeTmall(data_options);
  FeatAugOptions options = FastOptions();
  options.n_templates = 4;
  options.queries_per_template = 5;
  options.generator.warmup_iterations = 120;
  options.generator.warmup_top_k = 12;
  options.generator.generation_iterations = 25;
  options.qti.node_iterations = 25;
  FeatAug feataug(bundle.ToProblem(), options);
  auto plan = feataug.Fit();
  ASSERT_TRUE(plan.ok());
  auto feataug_score = feataug.evaluator()->TestScore(plan.value().queries);
  ASSERT_TRUE(feataug_score.ok());

  // Featuretools: all predicate-free queries, same feature budget.
  const auto ft_all = GenerateFeaturetoolsQueries(
      bundle.relevant, bundle.agg_functions, bundle.agg_attrs, bundle.fk_attrs);
  std::vector<AggQuery> ft_budgeted(
      ft_all.begin(),
      ft_all.begin() + std::min(ft_all.size(), plan.value().queries.size()));
  auto ft_score = feataug.evaluator()->TestScore(ft_budgeted);
  ASSERT_TRUE(ft_score.ok());

  EXPECT_GT(feataug_score.value(), ft_score.value())
      << "FeatAug AUC " << feataug_score.value() << " vs FT "
      << ft_score.value();
}

TEST(FeatAugTest, RegressionTaskEndToEnd) {
  DatasetBundle bundle = MakeMerchant(SmallData());
  FeatAugOptions options = FastOptions();
  options.evaluator.metric = MetricKind::kRmse;
  FeatAug feataug(bundle.ToProblem(), options);
  auto plan = feataug.Fit();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_GT(plan.value().queries.size(), 0u);
}

TEST(FeatAugTest, OneToOneMulticlassEndToEnd) {
  // Covtype-style single-table scenario (§VII.C): R is a self-joined
  // one-to-one table, the task is 4-class F1. The augmented feature set
  // must beat the base features (the signal lives entirely in R).
  SyntheticOptions data_options = SmallData();
  data_options.n_train = 600;
  DatasetBundle bundle = MakeCovtype(data_options);
  FeatAugOptions options = FastOptions();
  options.evaluator.metric = MetricKind::kF1Macro;
  FeatAug feataug(bundle.ToProblem(), options);
  auto plan = feataug.Fit();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto baseline = feataug.evaluator()->BaselineModelScore();
  auto augmented = feataug.evaluator()->TestScore(plan.value().queries);
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(augmented.ok());
  EXPECT_GT(augmented.value(), baseline.value());
}

TEST(FeatAugTest, InvalidProblemRejected) {
  DatasetBundle bundle = MakeTmall(SmallData());
  FeatAugProblem problem = bundle.ToProblem();
  problem.agg_attrs = {"missing_attr"};
  FeatAug feataug(problem, FastOptions());
  EXPECT_FALSE(feataug.Fit().ok());
}

}  // namespace
}  // namespace featlib

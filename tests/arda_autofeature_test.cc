#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/arda.h"
#include "baselines/autofeature.h"
#include "baselines/featuretools.h"
#include "baselines/random_aug.h"
#include "data/synthetic.h"

namespace featlib {
namespace {

struct Fixture {
  DatasetBundle bundle;
  FeatureEvaluator evaluator;
  std::vector<AggQuery> candidates;
};

// One-to-one fixture (the scenario ARDA / AutoFeature target in the paper).
Fixture MakeOneToOneFixture() {
  SyntheticOptions data_options;
  data_options.n_train = 300;
  data_options.seed = 11;
  DatasetBundle bundle = MakeCovtype(data_options);
  EvaluatorOptions eval_options;
  eval_options.model = ModelKind::kLogisticRegression;
  eval_options.metric = MetricKind::kF1Macro;
  auto evaluator = FeatureEvaluator::Create(bundle.training, bundle.label_col,
                                            bundle.base_features, bundle.relevant,
                                            bundle.task, eval_options);
  EXPECT_TRUE(evaluator.ok());
  // Identity features: AVG(attr) per data_index row.
  std::vector<AggQuery> candidates;
  for (const auto& attr : bundle.agg_attrs) {
    AggQuery q;
    q.agg = AggFunction::kAvg;
    q.agg_attr = attr;
    q.group_keys = bundle.fk_attrs;
    candidates.push_back(std::move(q));
  }
  return Fixture{std::move(bundle), std::move(evaluator).ValueOrDie(),
                 std::move(candidates)};
}

TEST(ArdaTest, SelectsRequestedCount) {
  Fixture fx = MakeOneToOneFixture();
  ArdaOptions options;
  options.rounds = 2;
  auto selected = ArdaSelect(&fx.evaluator, fx.candidates, 6, options);
  ASSERT_TRUE(selected.ok()) << selected.status().ToString();
  EXPECT_EQ(selected.value().size(), 6u);
}

TEST(ArdaTest, SignalAttributesRankAboveNoise) {
  // attr_0 and attr_1 carry the label signal in the one-to-one generators.
  Fixture fx = MakeOneToOneFixture();
  ArdaOptions options;
  options.rounds = 3;
  auto selected = ArdaSelect(&fx.evaluator, fx.candidates, 4, options);
  ASSERT_TRUE(selected.ok());
  bool has_signal = false;
  for (const auto& q : selected.value()) {
    if (q.agg_attr == "attr_0" || q.agg_attr == "attr_1") has_signal = true;
  }
  EXPECT_TRUE(has_signal);
}

TEST(ArdaTest, EmptyCandidates) {
  Fixture fx = MakeOneToOneFixture();
  auto selected = ArdaSelect(&fx.evaluator, {}, 4, ArdaOptions{});
  ASSERT_TRUE(selected.ok());
  EXPECT_TRUE(selected.value().empty());
}

TEST(AutoFeatureTest, MabSelectsK) {
  Fixture fx = MakeOneToOneFixture();
  AutoFeatureOptions options;
  options.policy = AutoFeaturePolicy::kMab;
  options.budget = 25;
  auto selected = AutoFeatureSelect(&fx.evaluator, fx.candidates, 5, options);
  ASSERT_TRUE(selected.ok()) << selected.status().ToString();
  EXPECT_EQ(selected.value().size(), 5u);
}

TEST(AutoFeatureTest, DqnSelectsK) {
  Fixture fx = MakeOneToOneFixture();
  AutoFeatureOptions options;
  options.policy = AutoFeaturePolicy::kDqn;
  options.budget = 25;
  auto selected = AutoFeatureSelect(&fx.evaluator, fx.candidates, 5, options);
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected.value().size(), 5u);
}

TEST(AutoFeatureTest, SelectionsAreDistinctCandidates) {
  Fixture fx = MakeOneToOneFixture();
  AutoFeatureOptions options;
  options.budget = 20;
  auto selected = AutoFeatureSelect(&fx.evaluator, fx.candidates, 6, options);
  ASSERT_TRUE(selected.ok());
  std::vector<std::string> keys;
  for (const auto& q : selected.value()) keys.push_back(q.CacheKey());
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::unique(keys.begin(), keys.end()), keys.end());
}

TEST(AutoFeatureTest, RespectsModelBudget) {
  Fixture fx = MakeOneToOneFixture();
  AutoFeatureOptions options;
  options.budget = 10;
  const size_t evals_before = fx.evaluator.num_model_evals();
  auto selected = AutoFeatureSelect(&fx.evaluator, fx.candidates, 5, options);
  ASSERT_TRUE(selected.ok());
  // budget steps + at most one baseline evaluation.
  EXPECT_LE(fx.evaluator.num_model_evals() - evals_before, 11u);
}

TEST(RandomAugTest, GeneratesBudgetedQueries) {
  SyntheticOptions data_options;
  data_options.n_train = 200;
  DatasetBundle bundle = MakeTmall(data_options);
  QueryTemplate base = bundle.golden_template;
  base.where_attrs.clear();
  RandomAugOptions options;
  options.n_templates = 4;
  options.queries_per_template = 3;
  auto queries = RandomAugmentation(bundle.relevant, base,
                                    bundle.where_candidates, options);
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
  EXPECT_GT(queries.value().size(), 0u);
  EXPECT_LE(queries.value().size(), 12u);
  for (const auto& q : queries.value()) {
    EXPECT_TRUE(q.Validate(bundle.relevant).ok());
  }
}

TEST(RandomAugTest, DeterministicBySeed) {
  SyntheticOptions data_options;
  data_options.n_train = 200;
  DatasetBundle bundle = MakeTmall(data_options);
  QueryTemplate base = bundle.golden_template;
  base.where_attrs.clear();
  RandomAugOptions options;
  options.seed = 77;
  auto a = RandomAugmentation(bundle.relevant, base, bundle.where_candidates,
                              options);
  auto b = RandomAugmentation(bundle.relevant, base, bundle.where_candidates,
                              options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().size(), b.value().size());
  for (size_t i = 0; i < a.value().size(); ++i) {
    EXPECT_EQ(a.value()[i].CacheKey(), b.value()[i].CacheKey());
  }
}

TEST(RandomAugTest, QueriesComeWithPredicates) {
  // With five candidate attributes, random queries should regularly carry
  // at least one predicate.
  SyntheticOptions data_options;
  data_options.n_train = 200;
  DatasetBundle bundle = MakeTmall(data_options);
  QueryTemplate base = bundle.golden_template;
  base.where_attrs.clear();
  RandomAugOptions options;
  options.n_templates = 8;
  options.queries_per_template = 5;
  auto queries = RandomAugmentation(bundle.relevant, base,
                                    bundle.where_candidates, options);
  ASSERT_TRUE(queries.ok());
  size_t with_predicates = 0;
  for (const auto& q : queries.value()) {
    if (!q.predicates.empty()) ++with_predicates;
  }
  EXPECT_GT(with_predicates, 0u);
}

}  // namespace
}  // namespace featlib

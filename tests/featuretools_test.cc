#include <gtest/gtest.h>

#include "baselines/featuretools.h"
#include "data/synthetic.h"

namespace featlib {
namespace {

Table MakeLogs() {
  Table t;
  EXPECT_TRUE(t.AddColumn("uid", Column::FromInts(DataType::kInt64, {1, 2})).ok());
  EXPECT_TRUE(t.AddColumn("price", Column::FromDoubles({1.0, 2.0})).ok());
  EXPECT_TRUE(t.AddColumn("qty", Column::FromInts(DataType::kInt64, {3, 4})).ok());
  EXPECT_TRUE(t.AddColumn("dept", Column::FromStrings({"a", "b"})).ok());
  return t;
}

TEST(FeaturetoolsTest, EnumeratesAggByAttrGrid) {
  Table logs = MakeLogs();
  const auto queries = GenerateFeaturetoolsQueries(
      logs, {AggFunction::kSum, AggFunction::kAvg}, {"price", "qty"}, {"uid"});
  // 2 functions x 2 attributes, no predicates anywhere.
  EXPECT_EQ(queries.size(), 4u);
  for (const auto& q : queries) {
    EXPECT_TRUE(q.predicates.empty());
    EXPECT_EQ(q.group_keys, (std::vector<std::string>{"uid"}));
    EXPECT_TRUE(q.Validate(logs).ok());
  }
}

TEST(FeaturetoolsTest, CountEmittedOnce) {
  Table logs = MakeLogs();
  const auto queries = GenerateFeaturetoolsQueries(
      logs, {AggFunction::kCount, AggFunction::kSum}, {"price", "qty"}, {"uid"});
  size_t count_queries = 0;
  for (const auto& q : queries) {
    if (q.agg == AggFunction::kCount) ++count_queries;
  }
  EXPECT_EQ(count_queries, 1u);
  EXPECT_EQ(queries.size(), 3u);  // COUNT once + SUM x 2
}

TEST(FeaturetoolsTest, SkipsNumericOnlyFunctionsOnCategoricalAttrs) {
  Table logs = MakeLogs();
  const auto queries = GenerateFeaturetoolsQueries(
      logs, {AggFunction::kSum, AggFunction::kMode}, {"dept"}, {"uid"});
  ASSERT_EQ(queries.size(), 1u);  // SUM(dept) skipped, MODE(dept) kept
  EXPECT_EQ(queries[0].agg, AggFunction::kMode);
}

TEST(FeaturetoolsTest, MaxFeaturesCap) {
  Table logs = MakeLogs();
  FeaturetoolsOptions options;
  options.max_features = 3;
  const auto queries = GenerateFeaturetoolsQueries(
      logs, AllAggFunctions(), {"price", "qty"}, {"uid"}, options);
  EXPECT_EQ(queries.size(), 3u);
}

TEST(FeaturetoolsTest, FullGridOnSyntheticDataset) {
  SyntheticOptions options;
  options.n_train = 100;
  DatasetBundle bundle = MakeTmall(options);
  const auto queries = GenerateFeaturetoolsQueries(
      bundle.relevant, bundle.agg_functions, bundle.agg_attrs, bundle.fk_attrs);
  // 15 functions x 6 numeric attrs, COUNT collapsed to one = 14*6 + 1.
  EXPECT_EQ(queries.size(), 14u * 6u + 1u);
  for (const auto& q : queries) {
    EXPECT_TRUE(q.Validate(bundle.relevant).ok());
  }
}

TEST(FeaturetoolsTest, UnknownAttrsSkippedSilently) {
  Table logs = MakeLogs();
  const auto queries = GenerateFeaturetoolsQueries(
      logs, {AggFunction::kSum}, {"price", "does_not_exist"}, {"uid"});
  EXPECT_EQ(queries.size(), 1u);
}

}  // namespace
}  // namespace featlib

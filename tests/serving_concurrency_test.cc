/// \file serving_concurrency_test.cc
/// \brief Pins the FittedAugmenter serving contract: N threads sharing one
/// handle produce byte-identical output to serial execution at 1/2/4/8
/// threads, across Transform / TransformMany / ComputeFeatureColumns and
/// across batches with different rows. Runs under TSan in scripts/ci.sh —
/// the handle's store is frozen after Create and every per-call artifact
/// (training-row maps, outputs) is call-local, so no locks are needed.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/augmenter.h"
#include "golden_util.h"

namespace featlib {
namespace {

using golden::SameBits;

struct Fixture {
  Table relevant;
  Table batch_a;
  Table batch_b;
  std::vector<AggQuery> queries;
};

// Deterministic one-to-many pair with two join-key columns, nulls, strings
// and a numeric predicate attribute — plus a query set that exercises every
// kernel family: streaming, conjunction masks, COUNT(*), and shared-bucket
// materializations.
Fixture MakeFixture() {
  Fixture f;
  Rng rng(29);
  const char* depts[] = {"x", "y", "z"};
  Column k(DataType::kInt64), k2(DataType::kString), v(DataType::kDouble),
      level(DataType::kInt64), dept(DataType::kString);
  for (int i = 0; i < 400; ++i) {
    k.AppendInt(static_cast<int64_t>(rng.UniformInt(20)));
    k2.AppendString(depts[rng.UniformInt(3)]);
    if (rng.Bernoulli(0.15)) {
      v.AppendNull();
    } else {
      v.AppendDouble(rng.Normal(0, 10));
    }
    level.AppendInt(static_cast<int64_t>(rng.UniformInt(5)));
    dept.AppendString(depts[rng.UniformInt(3)]);
  }
  EXPECT_TRUE(f.relevant.AddColumn("k", std::move(k)).ok());
  EXPECT_TRUE(f.relevant.AddColumn("k2", std::move(k2)).ok());
  EXPECT_TRUE(f.relevant.AddColumn("v", std::move(v)).ok());
  EXPECT_TRUE(f.relevant.AddColumn("level", std::move(level)).ok());
  EXPECT_TRUE(f.relevant.AddColumn("dept", std::move(dept)).ok());

  auto make_batch = [&](size_t n, uint64_t seed) {
    Rng batch_rng(seed);
    Table batch;
    Column bk(DataType::kInt64), bk2(DataType::kString),
        age(DataType::kDouble);
    for (size_t i = 0; i < n; ++i) {
      bk.AppendInt(static_cast<int64_t>(batch_rng.UniformInt(24)));
      bk2.AppendString(depts[batch_rng.UniformInt(3)]);
      age.AppendDouble(20.0 + static_cast<double>(batch_rng.UniformInt(40)));
    }
    EXPECT_TRUE(batch.AddColumn("k", std::move(bk)).ok());
    EXPECT_TRUE(batch.AddColumn("k2", std::move(bk2)).ok());
    EXPECT_TRUE(batch.AddColumn("age", std::move(age)).ok());
    return batch;
  };
  f.batch_a = make_batch(60, 5);
  f.batch_b = make_batch(35, 11);

  auto query = [&](AggFunction fn, std::vector<std::string> keys,
                   std::string attr, std::vector<Predicate> preds) {
    AggQuery q;
    q.agg = fn;
    q.agg_attr = std::move(attr);
    q.group_keys = std::move(keys);
    q.predicates = std::move(preds);
    return q;
  };
  const Predicate dept_x = Predicate::Equals("dept", Value::Str("x"));
  const Predicate lvl = Predicate::Range("level", 1.0, 3.0);
  // Streaming singleton buckets.
  f.queries.push_back(query(AggFunction::kAvg, {"k"}, "v", {}));
  f.queries.push_back(query(AggFunction::kSum, {"k"}, "v", {dept_x}));
  // Conjunction mask.
  f.queries.push_back(query(AggFunction::kMax, {"k"}, "v", {dept_x, lvl}));
  // COUNT(*) — no agg attribute, no value view.
  f.queries.push_back(query(AggFunction::kCount, {"k"}, "", {lvl}));
  // Shared bucket: same (keys, preds, attr), different agg -> one
  // materialization serves both.
  f.queries.push_back(query(AggFunction::kMedian, {"k"}, "v", {dept_x}));
  f.queries.push_back(query(AggFunction::kMode, {"k"}, "v", {dept_x}));
  // Second group-key set (two train maps per call).
  f.queries.push_back(query(AggFunction::kCountDistinct, {"k", "k2"}, "v", {}));
  return f;
}

std::unique_ptr<FittedAugmenter> MakeHandle(const Fixture& f) {
  FittedAugmenter::Source source;
  source.relevant = f.relevant;
  source.queries = f.queries;
  std::vector<FittedAugmenter::Source> sources;
  sources.push_back(std::move(source));
  auto created = FittedAugmenter::Create(std::move(sources));
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  return std::move(created).ValueOrDie();
}

using Columns = std::vector<std::vector<double>>;

void ExpectColumnsIdentical(const Columns& actual, const Columns& expected,
                            const std::string& context) {
  ASSERT_EQ(actual.size(), expected.size()) << context;
  for (size_t c = 0; c < actual.size(); ++c) {
    ASSERT_EQ(actual[c].size(), expected[c].size()) << context << " col " << c;
    for (size_t r = 0; r < actual[c].size(); ++r) {
      ASSERT_TRUE(SameBits(actual[c][r], expected[c][r]))
          << context << " col " << c << " row " << r;
    }
  }
}

// Extracts the appended feature columns of a transformed table (everything
// past the batch's own columns) as doubles (null -> NaN).
Columns AppendedColumns(const Table& transformed, size_t batch_columns) {
  Columns out;
  for (size_t c = batch_columns; c < transformed.num_columns(); ++c) {
    const Column& col = transformed.ColumnAt(c);
    std::vector<double> values(col.size());
    for (size_t r = 0; r < col.size(); ++r) values[r] = col.AsDouble(r);
    out.push_back(std::move(values));
  }
  return out;
}

TEST(ServingConcurrencyTest, ConcurrentTransformIsByteIdenticalToSerial) {
  const Fixture f = MakeFixture();
  std::unique_ptr<FittedAugmenter> handle = MakeHandle(f);
  ASSERT_EQ(handle->num_features(), f.queries.size());

  // Serial reference, computed once up front.
  auto ref_a = handle->ComputeFeatureColumns(f.batch_a);
  auto ref_b = handle->ComputeFeatureColumns(f.batch_b);
  ASSERT_TRUE(ref_a.ok()) << ref_a.status().ToString();
  ASSERT_TRUE(ref_b.ok()) << ref_b.status().ToString();

  for (int n_threads : {1, 2, 4, 8}) {
    std::vector<std::vector<Columns>> results_a(n_threads);
    std::vector<std::vector<Columns>> results_b(n_threads);
    std::vector<std::thread> threads;
    threads.reserve(n_threads);
    for (int t = 0; t < n_threads; ++t) {
      threads.emplace_back([&, t]() {
        constexpr int kIterations = 3;
        for (int it = 0; it < kIterations; ++it) {
          auto a = handle->ComputeFeatureColumns(f.batch_a);
          auto b = handle->Transform(f.batch_b);
          if (a.ok()) results_a[t].push_back(std::move(a).ValueOrDie());
          if (b.ok()) {
            results_b[t].push_back(
                AppendedColumns(b.value(), f.batch_b.num_columns()));
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();

    for (int t = 0; t < n_threads; ++t) {
      ASSERT_EQ(results_a[t].size(), 3u) << "thread " << t << " had failures";
      ASSERT_EQ(results_b[t].size(), 3u) << "thread " << t << " had failures";
      for (const Columns& got : results_a[t]) {
        ExpectColumnsIdentical(got, ref_a.value(),
                               "batch A @" + std::to_string(n_threads));
      }
      for (const Columns& got : results_b[t]) {
        ExpectColumnsIdentical(got, ref_b.value(),
                               "batch B @" + std::to_string(n_threads));
      }
    }
  }
}

TEST(ServingConcurrencyTest, ConcurrentTransformManyMatchesPerBatch) {
  const Fixture f = MakeFixture();
  std::unique_ptr<FittedAugmenter> handle = MakeHandle(f);

  auto ref_a = handle->Transform(f.batch_a);
  auto ref_b = handle->Transform(f.batch_b);
  ASSERT_TRUE(ref_a.ok());
  ASSERT_TRUE(ref_b.ok());
  const Columns ref_cols_a = AppendedColumns(ref_a.value(), f.batch_a.num_columns());
  const Columns ref_cols_b = AppendedColumns(ref_b.value(), f.batch_b.num_columns());

  const std::vector<Table> batches = {f.batch_a, f.batch_b, f.batch_a};
  for (int n_threads : {2, 4}) {
    std::vector<std::vector<std::vector<Table>>> results(n_threads);
    std::vector<std::thread> threads;
    for (int t = 0; t < n_threads; ++t) {
      threads.emplace_back([&, t]() {
        for (int it = 0; it < 2; ++it) {
          auto many = handle->TransformMany(batches);
          if (many.ok()) results[t].push_back(std::move(many).ValueOrDie());
        }
      });
    }
    for (std::thread& thread : threads) thread.join();

    for (int t = 0; t < n_threads; ++t) {
      ASSERT_EQ(results[t].size(), 2u) << "thread " << t << " had failures";
      for (const std::vector<Table>& many : results[t]) {
        ASSERT_EQ(many.size(), 3u);
        ExpectColumnsIdentical(
            AppendedColumns(many[0], f.batch_a.num_columns()), ref_cols_a,
            "many[0]");
        ExpectColumnsIdentical(
            AppendedColumns(many[1], f.batch_b.num_columns()), ref_cols_b,
            "many[1]");
        ExpectColumnsIdentical(
            AppendedColumns(many[2], f.batch_a.num_columns()), ref_cols_a,
            "many[2]");
      }
    }
  }
}

TEST(ServingConcurrencyTest, TransformRejectsBatchMissingJoinKeys) {
  const Fixture f = MakeFixture();
  std::unique_ptr<FittedAugmenter> handle = MakeHandle(f);
  Table bad;
  Column c(DataType::kInt64);
  c.AppendInt(1);
  ASSERT_TRUE(bad.AddColumn("unrelated", std::move(c)).ok());
  EXPECT_FALSE(handle->Transform(bad).ok());
}

}  // namespace
}  // namespace featlib

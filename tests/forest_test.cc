#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ml/forest.h"
#include "ml/metrics.h"

namespace featlib {
namespace {

Dataset MakeNonlinearBinary(size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset ds = Dataset::WithLabels({}, TaskKind::kBinaryClassification);
  std::vector<double> x1(n);
  std::vector<double> x2(n);
  ds.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    x1[i] = rng.Normal();
    x2[i] = rng.Normal();
    // Ring pattern: positive inside the annulus.
    const double r = x1[i] * x1[i] + x2[i] * x2[i];
    ds.y[i] = (r > 0.5 && r < 2.5) ? 1.0 : 0.0;
  }
  ds.n = n;
  EXPECT_TRUE(ds.AddFeature("x1", x1).ok());
  EXPECT_TRUE(ds.AddFeature("x2", x2).ok());
  return ds;
}

TEST(RandomForestTest, BeatsChanceOnNonlinearPattern) {
  Dataset train = MakeNonlinearBinary(600, 1);
  Dataset test = MakeNonlinearBinary(300, 2);
  RandomForestOptions options;
  options.n_trees = 30;
  RandomForestModel model(TaskKind::kBinaryClassification, options);
  ASSERT_TRUE(model.Fit(train).ok());
  EXPECT_GT(Auc(test.y, model.PredictScore(test)), 0.85);
}

TEST(RandomForestTest, RegressionPredictsMeans) {
  Rng rng(3);
  Dataset ds = Dataset::WithLabels({}, TaskKind::kRegression);
  const size_t n = 400;
  std::vector<double> x(n);
  ds.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.UniformReal(-3, 3);
    ds.y[i] = std::sin(x[i]) * 3.0 + 0.1 * rng.Normal();
  }
  ds.n = n;
  ASSERT_TRUE(ds.AddFeature("x", x).ok());
  RandomForestModel model(TaskKind::kRegression);
  ASSERT_TRUE(model.Fit(ds).ok());
  EXPECT_LT(Rmse(ds.y, model.PredictScore(ds)), 1.0);
}

TEST(RandomForestTest, MulticlassPredictsClasses) {
  Rng rng(5);
  Dataset ds = Dataset::WithLabels({}, TaskKind::kMultiClassification, 3);
  const size_t n = 450;
  std::vector<double> x(n);
  ds.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(rng.UniformInt(3));
    x[i] = 4.0 * cls + rng.Normal();
    ds.y[i] = cls;
  }
  ds.n = n;
  ds.num_classes = 3;
  ASSERT_TRUE(ds.AddFeature("x", x).ok());
  RandomForestModel model(TaskKind::kMultiClassification);
  ASSERT_TRUE(model.Fit(ds).ok());
  const auto pred = model.PredictClass(ds);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) labels[i] = static_cast<int>(ds.y[i]);
  EXPECT_GT(F1Macro(labels, pred, 3), 0.9);
}

TEST(RandomForestTest, DeterministicBySeed) {
  Dataset train = MakeNonlinearBinary(200, 7);
  RandomForestOptions options;
  options.n_trees = 10;
  options.seed = 99;
  RandomForestModel a(TaskKind::kBinaryClassification, options);
  RandomForestModel b(TaskKind::kBinaryClassification, options);
  ASSERT_TRUE(a.Fit(train).ok());
  ASSERT_TRUE(b.Fit(train).ok());
  EXPECT_EQ(a.PredictScore(train), b.PredictScore(train));
}

TEST(RandomForestTest, ImportancesFavorSignal) {
  Rng rng(9);
  Dataset ds = Dataset::WithLabels({}, TaskKind::kBinaryClassification);
  const size_t n = 400;
  std::vector<double> signal(n);
  std::vector<double> noise(n);
  ds.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    signal[i] = rng.Normal();
    noise[i] = rng.Normal();
    ds.y[i] = signal[i] + 0.2 * rng.Normal() > 0 ? 1.0 : 0.0;
  }
  ds.n = n;
  ASSERT_TRUE(ds.AddFeature("noise", noise).ok());
  ASSERT_TRUE(ds.AddFeature("signal", signal).ok());
  RandomForestModel model(TaskKind::kBinaryClassification);
  ASSERT_TRUE(model.Fit(ds).ok());
  const auto imp = model.FeatureImportances();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_GT(imp[1], 2.0 * imp[0]);
}

TEST(RandomForestTest, EmptyDataRejected) {
  RandomForestModel model(TaskKind::kBinaryClassification);
  Dataset empty = Dataset::WithLabels({}, TaskKind::kBinaryClassification);
  EXPECT_FALSE(model.Fit(empty).ok());
}

}  // namespace
}  // namespace featlib

#include <gtest/gtest.h>

#include <cmath>

#include "core/feature_eval.h"
#include "data/synthetic.h"
#include "stats/stats.h"

namespace featlib {
namespace {

SyntheticOptions SmallOptions() {
  SyntheticOptions options;
  options.n_train = 400;
  options.avg_logs_per_entity = 12;
  options.seed = 42;
  return options;
}

// Reads the label column as doubles.
std::vector<double> LabelVector(const DatasetBundle& b) {
  const Column* col = b.training.GetColumn(b.label_col).value();
  std::vector<double> out(col->size());
  for (size_t i = 0; i < col->size(); ++i) out[i] = col->AsDouble(i);
  return out;
}

class BundleShapeTest : public testing::TestWithParam<const char*> {};

TEST_P(BundleShapeTest, WellFormedBundle) {
  auto bundle_result = MakeDatasetByName(GetParam(), SmallOptions());
  ASSERT_TRUE(bundle_result.ok());
  const DatasetBundle& b = bundle_result.value();
  EXPECT_EQ(b.training.num_rows(), 400u);
  EXPECT_TRUE(b.training.HasColumn(b.label_col));
  for (const auto& f : b.base_features) EXPECT_TRUE(b.training.HasColumn(f));
  for (const auto& k : b.fk_attrs) {
    EXPECT_TRUE(b.training.HasColumn(k));
    EXPECT_TRUE(b.relevant.HasColumn(k));
  }
  for (const auto& a : b.agg_attrs) EXPECT_TRUE(b.relevant.HasColumn(a));
  for (const auto& p : b.where_candidates) EXPECT_TRUE(b.relevant.HasColumn(p));
  EXPECT_EQ(b.agg_functions.size(), 15u);
  EXPECT_GT(b.relevant.num_rows(), 0u);
  // Golden query is valid and inside the golden template.
  EXPECT_TRUE(b.golden_query.Validate(b.relevant).ok());
  EXPECT_TRUE(b.golden_template.Validate(b.relevant).ok());
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, BundleShapeTest,
                         testing::Values("tmall", "instacart", "student",
                                         "merchant", "covtype", "household"));

TEST(DataTest, UnknownNameRejected) {
  EXPECT_FALSE(MakeDatasetByName("nope", SmallOptions()).ok());
}

TEST(DataTest, DeterministicBySeed) {
  DatasetBundle a = MakeTmall(SmallOptions());
  DatasetBundle b = MakeTmall(SmallOptions());
  EXPECT_EQ(a.relevant.num_rows(), b.relevant.num_rows());
  EXPECT_EQ(LabelVector(a), LabelVector(b));
}

TEST(DataTest, DifferentSeedsDiffer) {
  SyntheticOptions options = SmallOptions();
  DatasetBundle a = MakeTmall(options);
  options.seed = 43;
  DatasetBundle b = MakeTmall(options);
  EXPECT_NE(a.relevant.num_rows(), b.relevant.num_rows());
}

TEST(DataTest, BinaryLabelsRoughlyBalanced) {
  for (const char* name : {"tmall", "instacart", "student"}) {
    auto bundle = MakeDatasetByName(name, SmallOptions());
    ASSERT_TRUE(bundle.ok());
    const auto labels = LabelVector(bundle.value());
    double positives = 0;
    for (double y : labels) positives += y;
    EXPECT_NEAR(positives / labels.size(), 0.5, 0.05) << name;
  }
}

TEST(DataTest, MulticlassLabelsCoverFourClasses) {
  DatasetBundle b = MakeCovtype(SmallOptions());
  const auto labels = LabelVector(b);
  std::vector<int> counts(4, 0);
  for (double y : labels) {
    ASSERT_GE(y, 0.0);
    ASSERT_LE(y, 3.0);
    ++counts[static_cast<int>(y)];
  }
  for (int c : counts) EXPECT_GT(c, 50);
}

// The central planted-signal property: the golden (predicate-aware) feature
// carries materially more mutual information about the label than the same
// aggregate without predicates. This is the premise of the whole paper.
class PlantedSignalTest : public testing::TestWithParam<const char*> {};

TEST_P(PlantedSignalTest, GoldenFeatureBeatsUnpredicatedVersion) {
  auto bundle_result = MakeDatasetByName(GetParam(), SmallOptions());
  ASSERT_TRUE(bundle_result.ok());
  const DatasetBundle& b = bundle_result.value();

  auto golden = ComputeFeatureColumn(b.golden_query, b.training, b.relevant);
  ASSERT_TRUE(golden.ok());
  AggQuery unpredicated = b.golden_query;
  unpredicated.predicates.clear();
  auto plain = ComputeFeatureColumn(unpredicated, b.training, b.relevant);
  ASSERT_TRUE(plain.ok());

  const auto labels = LabelVector(b);
  const bool discrete = b.task != TaskKind::kRegression;
  const double mi_golden = MutualInformation(golden.value(), labels, discrete);
  const double mi_plain = MutualInformation(plain.value(), labels, discrete);
  EXPECT_GT(mi_golden, mi_plain * 1.3 + 0.01)
      << GetParam() << ": golden=" << mi_golden << " plain=" << mi_plain;
}

INSTANTIATE_TEST_SUITE_P(OneToManyDatasets, PlantedSignalTest,
                         testing::Values("tmall", "instacart", "student",
                                         "merchant"));

TEST(DataTest, WideningAddsColumnsAndCandidates) {
  SyntheticOptions options = SmallOptions();
  const DatasetBundle narrow = MakeStudent(options);
  options.extra_numeric_cols = 10;
  const DatasetBundle wide = MakeStudent(options);
  EXPECT_EQ(wide.relevant.num_columns(), narrow.relevant.num_columns() + 10);
  EXPECT_EQ(wide.where_candidates.size(), narrow.where_candidates.size() + 10);
  EXPECT_TRUE(wide.relevant.HasColumn("extra_0"));
}

TEST(DataTest, AvgLogsScalesRelevantRows) {
  SyntheticOptions options = SmallOptions();
  const DatasetBundle small = MakeMerchant(options);
  options.avg_logs_per_entity = 40;
  const DatasetBundle large = MakeMerchant(options);
  EXPECT_GT(large.relevant.num_rows(), 2 * small.relevant.num_rows());
}

TEST(DataTest, ToProblemMapsAllFields) {
  DatasetBundle b = MakeInstacart(SmallOptions());
  const FeatAugProblem p = b.ToProblem();
  EXPECT_EQ(p.label_col, b.label_col);
  EXPECT_EQ(p.base_feature_cols, b.base_features);
  EXPECT_EQ(p.fk_attrs, b.fk_attrs);
  EXPECT_EQ(p.candidate_where_attrs, b.where_candidates);
  EXPECT_EQ(p.task, b.task);
  EXPECT_EQ(p.training.num_rows(), b.training.num_rows());
}

TEST(DataTest, OneToOneRelevantMatchesTraining) {
  DatasetBundle b = MakeHousehold(SmallOptions());
  EXPECT_EQ(b.relevant.num_rows(), b.training.num_rows());
  // Identity aggregation (AVG over the single row) recovers the attribute.
  auto f = ComputeFeatureColumn(b.golden_query, b.training, b.relevant);
  ASSERT_TRUE(f.ok());
  const Column* attr = b.relevant.GetColumn(b.golden_query.agg_attr).value();
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(f.value()[i], attr->AsDouble(i));
  }
}

}  // namespace
}  // namespace featlib

#include "core/multi_table.h"

#include <gtest/gtest.h>

#include "data/multi_table_data.h"
#include "query/executor.h"
#include "stats/stats.h"

namespace featlib {
namespace {

SyntheticOptions SmallOptions() {
  SyntheticOptions options;
  options.n_train = 250;
  options.avg_logs_per_entity = 8;
  options.seed = 17;
  return options;
}

// --- InferTemplateIngredients -----------------------------------------------

Table MakeMixedTable() {
  Table t;
  EXPECT_TRUE(t.AddColumn("fk", Column::FromInts(DataType::kInt64, {0, 1, 2})).ok());
  EXPECT_TRUE(t.AddColumn("price", Column::FromDoubles({1, 2, 3})).ok());
  EXPECT_TRUE(
      t.AddColumn("ts", Column::FromInts(DataType::kDatetime, {10, 20, 30})).ok());
  EXPECT_TRUE(
      t.AddColumn("flag", Column::FromInts(DataType::kBool, {0, 1, 0})).ok());
  EXPECT_TRUE(t.AddColumn("dept", Column::FromStrings({"a", "b", "a"})).ok());
  EXPECT_TRUE(
      t.AddColumn("free_text", Column::FromStrings({"x1", "x2", "x3"})).ok());
  return t;
}

TEST(InferTemplateIngredientsTest, RolesFollowColumnTypes) {
  Table t = MakeMixedTable();
  TemplateIngredients ingredients = InferTemplateIngredients(t, {"fk"});
  EXPECT_EQ(ingredients.agg_attrs,
            (std::vector<std::string>{"price", "ts", "flag"}));
  // dept (cardinality 2) qualifies; free_text (cardinality 3 <= 64) too.
  EXPECT_EQ(ingredients.where_candidates,
            (std::vector<std::string>{"price", "ts", "flag", "dept", "free_text"}));
}

TEST(InferTemplateIngredientsTest, HighCardinalityStringsSkipped) {
  Table t = MakeMixedTable();
  TemplateIngredients ingredients =
      InferTemplateIngredients(t, {"fk"}, /*max_categorical_cardinality=*/2);
  // free_text has 3 distinct values > 2 -> dropped; dept (2 values) stays.
  EXPECT_EQ(ingredients.where_candidates,
            (std::vector<std::string>{"price", "ts", "flag", "dept"}));
}

TEST(InferTemplateIngredientsTest, FkExcludedFromBothRoles) {
  Table t = MakeMixedTable();
  TemplateIngredients ingredients = InferTemplateIngredients(t, {"fk", "price"});
  for (const auto& name : ingredients.agg_attrs) {
    EXPECT_NE(name, "fk");
    EXPECT_NE(name, "price");
  }
}

TEST(InferTemplateIngredientsTest, AllColumnsExcludedYieldsEmptyRoles) {
  Table t = MakeMixedTable();
  TemplateIngredients ingredients = InferTemplateIngredients(
      t, {"fk", "price", "ts", "flag", "dept", "free_text"});
  EXPECT_TRUE(ingredients.agg_attrs.empty());
  EXPECT_TRUE(ingredients.where_candidates.empty());
}

TEST(MultiTableProblemTest, MissingLabelRejected) {
  MultiTableBundle bundle = MakeInstacartMultiTable(SmallOptions());
  auto graph = bundle.BuildGraph();
  ASSERT_TRUE(graph.ok());
  auto problem = MultiTableProblem::FromGraph(graph.value(), "training", "nope",
                                              TaskKind::kBinaryClassification);
  ASSERT_FALSE(problem.ok());
  EXPECT_NE(problem.status().ToString().find("label"), std::string::npos);
}

TEST(MultiTableProblemTest, UnknownBaseRejected) {
  MultiTableBundle bundle = MakeInstacartMultiTable(SmallOptions());
  auto graph = bundle.BuildGraph();
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(MultiTableProblem::FromGraph(graph.value(), "nope", "label",
                                            TaskKind::kBinaryClassification)
                   .ok());
}

// --- The raw multi-table bundle ---------------------------------------------

TEST(MultiTableDataTest, SchemaShapesAreConsistent) {
  MultiTableBundle bundle = MakeInstacartMultiTable(SmallOptions());
  EXPECT_EQ(bundle.training.num_rows(), 250u);
  EXPECT_GT(bundle.order_items.num_rows(), 250u * 4);
  EXPECT_GT(bundle.browse_log.num_rows(), 250u);
  EXPECT_EQ(bundle.products.num_rows(), 150u);
  EXPECT_EQ(bundle.departments.num_rows(), 10u);
  // Raw fact lacks the department name; only the flatten exposes it.
  EXPECT_FALSE(bundle.order_items.HasColumn("department"));
}

TEST(MultiTableDataTest, GoldenQueryValidOnlyAfterFlatten) {
  MultiTableBundle bundle = MakeInstacartMultiTable(SmallOptions());
  EXPECT_FALSE(bundle.golden_query.Validate(bundle.order_items).ok());
  auto graph = bundle.BuildGraph();
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  auto flat = graph.value().FlattenRelevant("order_items");
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();
  EXPECT_TRUE(bundle.golden_query.Validate(flat.value()).ok());
  EXPECT_EQ(flat.value().num_rows(), bundle.order_items.num_rows());
}

TEST(MultiTableDataTest, PlantedSignalSurvivesTheFlatten) {
  MultiTableBundle bundle = MakeInstacartMultiTable(SmallOptions());
  auto graph = bundle.BuildGraph();
  ASSERT_TRUE(graph.ok());
  auto flat = graph.value().FlattenRelevant("order_items");
  ASSERT_TRUE(flat.ok());

  auto labels_col = bundle.training.GetColumn("label");
  ASSERT_TRUE(labels_col.ok());
  std::vector<double> labels(bundle.training.num_rows());
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = labels_col.value()->AsDouble(i);
  }

  auto golden = ComputeFeatureColumn(bundle.golden_query, bundle.training,
                                     flat.value());
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();
  AggQuery unpredicated = bundle.golden_query;
  unpredicated.predicates.clear();
  auto weak = ComputeFeatureColumn(unpredicated, bundle.training, flat.value());
  ASSERT_TRUE(weak.ok());

  const double golden_mi = MutualInformation(golden.value(), labels, true);
  const double weak_mi = MutualInformation(weak.value(), labels, true);
  EXPECT_GT(golden_mi, weak_mi)
      << "golden " << golden_mi << " vs unpredicated " << weak_mi;
}

// --- MultiTableProblem / MultiTableFeatAug ----------------------------------

MultiTableProblem MakeProblem(const MultiTableBundle& bundle) {
  auto graph = bundle.BuildGraph();
  EXPECT_TRUE(graph.ok());
  auto problem = MultiTableProblem::FromGraph(graph.value(), "training", "label",
                                              TaskKind::kBinaryClassification);
  EXPECT_TRUE(problem.ok()) << problem.status().ToString();
  return std::move(problem).ValueOrDie();
}

TEST(MultiTableProblemTest, FromGraphBuildsBothScenarios) {
  MultiTableBundle bundle = MakeInstacartMultiTable(SmallOptions());
  MultiTableProblem problem = MakeProblem(bundle);
  ASSERT_EQ(problem.relevants.size(), 2u);
  EXPECT_EQ(problem.relevants[0].name, "order_items");
  EXPECT_EQ(problem.relevants[1].name, "browse_log");
  // Flattened order_items got the chain attributes inferred.
  const auto& where0 = problem.relevants[0].candidate_where_attrs;
  EXPECT_NE(std::find(where0.begin(), where0.end(), "department"), where0.end());
  // Base features exclude label and FK.
  EXPECT_EQ(problem.base_feature_cols,
            (std::vector<std::string>{"household", "tenure"}));
}

MultiTableOptions FastMultiOptions() {
  MultiTableOptions options;
  options.total_features = 8;
  options.queries_per_template = 2;
  options.seed = 23;
  options.per_table.generator.warmup_iterations = 25;
  options.per_table.generator.warmup_top_k = 5;
  options.per_table.generator.generation_iterations = 6;
  options.per_table.qti.beam_width = 1;
  options.per_table.qti.max_depth = 2;
  options.per_table.qti.node_iterations = 8;
  options.per_table.evaluator.model = ModelKind::kLogisticRegression;
  options.per_table.evaluator.metric = MetricKind::kAuc;
  return options;
}

TEST(MultiTableFeatAugTest, EqualAllocationSplitsBudget) {
  MultiTableBundle bundle = MakeInstacartMultiTable(SmallOptions());
  MultiTableProblem problem = MakeProblem(bundle);
  MultiTableOptions options = FastMultiOptions();
  options.allocation = BudgetAllocation::kEqual;
  MultiTableFeatAug feataug(std::move(problem), options);
  auto plan = feataug.Fit();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan.value().tables.size(), 2u);
  EXPECT_EQ(plan.value().tables[0].budget_features, 4);
  EXPECT_EQ(plan.value().tables[1].budget_features, 4);
  for (const auto& tp : plan.value().tables) {
    EXPECT_LE(tp.plan.queries.size(), 4u);
    EXPECT_GT(tp.plan.queries.size(), 0u) << tp.name;
  }
  EXPECT_LE(plan.value().total_features, 8u);
}

TEST(MultiTableFeatAugTest, ProxyWeightedAllocationSumsToTotalAndProbes) {
  MultiTableBundle bundle = MakeInstacartMultiTable(SmallOptions());
  MultiTableProblem problem = MakeProblem(bundle);
  MultiTableOptions options = FastMultiOptions();
  options.total_features = 10;
  options.allocation = BudgetAllocation::kProxyWeighted;
  options.min_features_per_table = 2;
  MultiTableFeatAug feataug(std::move(problem), options);
  auto plan = feataug.Fit();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  int budget_sum = 0;
  for (const auto& tp : plan.value().tables) {
    budget_sum += tp.budget_features;
    EXPECT_GE(tp.budget_features, 2);
    EXPECT_GT(tp.probe_score, 0.0) << tp.name;
  }
  EXPECT_EQ(budget_sum, 10);
}

TEST(MultiTableFeatAugTest, ApplyAppendsQualifiedFeatures) {
  MultiTableBundle bundle = MakeInstacartMultiTable(SmallOptions());
  MultiTableProblem problem = MakeProblem(bundle);
  const Table training = problem.training;
  MultiTableFeatAug feataug(std::move(problem), FastMultiOptions());
  auto plan = feataug.Fit();
  ASSERT_TRUE(plan.ok());
  auto augmented = feataug.Apply(plan.value(), training);
  ASSERT_TRUE(augmented.ok()) << augmented.status().ToString();
  EXPECT_EQ(augmented.value().num_rows(), training.num_rows());
  EXPECT_EQ(augmented.value().num_columns(),
            training.num_columns() + plan.value().total_features);
  // Every appended column is table-qualified.
  size_t qualified = 0;
  for (size_t c = training.num_columns(); c < augmented.value().num_columns(); ++c) {
    const std::string& name = augmented.value().NameAt(c);
    EXPECT_TRUE(name.rfind("order_items__", 0) == 0 ||
                name.rfind("browse_log__", 0) == 0)
        << name;
    ++qualified;
  }
  EXPECT_EQ(qualified, plan.value().total_features);
}

TEST(MultiTableFeatAugTest, ApplyToDatasetMatchesApply) {
  MultiTableBundle bundle = MakeInstacartMultiTable(SmallOptions());
  MultiTableProblem problem = MakeProblem(bundle);
  const Table training = problem.training;
  MultiTableFeatAug feataug(std::move(problem), FastMultiOptions());
  auto plan = feataug.Fit();
  ASSERT_TRUE(plan.ok());
  auto ds = feataug.ApplyToDataset(plan.value(), training);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  // Base features (2) plus every generated feature, aligned to D's rows.
  EXPECT_EQ(ds.value().n, training.num_rows());
  EXPECT_EQ(ds.value().d, 2 + plan.value().total_features);
}

TEST(MultiTableFeatAugTest, EmptyProblemRejected) {
  MultiTableProblem problem;
  problem.task = TaskKind::kBinaryClassification;
  MultiTableFeatAug feataug(std::move(problem), MultiTableOptions{});
  EXPECT_FALSE(feataug.Fit().ok());
}

TEST(MultiTableFeatAugTest, TableWithoutAggregableAttrsRejected) {
  MultiTableBundle bundle = MakeInstacartMultiTable(SmallOptions());
  MultiTableProblem problem = MakeProblem(bundle);
  // Strip the second table down to FK + string column only.
  Table strings_only;
  ASSERT_TRUE(strings_only
                  .AddColumn("user_id", Column::FromInts(
                                            DataType::kInt64,
                                            {0, 1, 2}))
                  .ok());
  ASSERT_TRUE(
      strings_only.AddColumn("tag", Column::FromStrings({"a", "b", "c"})).ok());
  problem.relevants[1].relevant = std::move(strings_only);
  problem.relevants[1].agg_attrs.clear();
  problem.relevants[1].candidate_where_attrs.clear();
  MultiTableFeatAug feataug(std::move(problem), FastMultiOptions());
  auto plan = feataug.Fit();
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().ToString().find("no aggregable"), std::string::npos);
}

}  // namespace
}  // namespace featlib

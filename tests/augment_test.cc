#include <gtest/gtest.h>

#include <cmath>

#include "query/executor.h"

namespace featlib {
namespace {

// Training table with string keys whose dictionary codes deliberately differ
// from the relevant table's (insertion order reversed).
struct Tables {
  Table d;
  Table r;
};

Tables MakeJoinTables() {
  Tables t;
  EXPECT_TRUE(t.d.AddColumn("cname",
                            Column::FromStrings({"cat", "bob", "ann", "dee"}))
                  .ok());
  EXPECT_TRUE(t.d.AddColumn("age", Column::FromDoubles({30, 40, 50, 60})).ok());

  EXPECT_TRUE(t.r.AddColumn("cname",
                            Column::FromStrings({"ann", "ann", "bob", "cat"}))
                  .ok());
  EXPECT_TRUE(t.r.AddColumn("pprice", Column::FromDoubles({10, 20, 7, 5})).ok());
  return t;
}

AggQuery SumQuery() {
  AggQuery q;
  q.agg = AggFunction::kSum;
  q.agg_attr = "pprice";
  q.group_keys = {"cname"};
  return q;
}

TEST(AugmentTest, FeatureAlignedToTrainingRows) {
  Tables t = MakeJoinTables();
  auto feature = ComputeFeatureColumn(SumQuery(), t.d, t.r);
  ASSERT_TRUE(feature.ok());
  const auto& f = feature.value();
  ASSERT_EQ(f.size(), 4u);
  EXPECT_DOUBLE_EQ(f[0], 5.0);   // cat
  EXPECT_DOUBLE_EQ(f[1], 7.0);   // bob
  EXPECT_DOUBLE_EQ(f[2], 30.0);  // ann
  EXPECT_TRUE(std::isnan(f[3])); // dee: no logs -> NULL (LEFT JOIN)
}

TEST(AugmentTest, AugmentTablePreservesRowCountAndAddsColumn) {
  Tables t = MakeJoinTables();
  auto augmented = AugmentTable(t.d, t.r, SumQuery(), "total_spent");
  ASSERT_TRUE(augmented.ok());
  const Table& out = augmented.value();
  EXPECT_EQ(out.num_rows(), t.d.num_rows());
  EXPECT_EQ(out.num_columns(), t.d.num_columns() + 1);
  ASSERT_TRUE(out.HasColumn("total_spent"));
  EXPECT_TRUE(out.GetColumn("total_spent").value()->IsNull(3));
  EXPECT_DOUBLE_EQ(out.GetColumn("total_spent").value()->DoubleAt(2), 30.0);
}

TEST(AugmentTest, DuplicateFeatureNameRejected) {
  Tables t = MakeJoinTables();
  EXPECT_FALSE(AugmentTable(t.d, t.r, SumQuery(), "age").ok());
}

TEST(AugmentTest, IntegerJoinKeys) {
  Table d;
  EXPECT_TRUE(d.AddColumn("uid", Column::FromInts(DataType::kInt64, {7, 9})).ok());
  Table r;
  EXPECT_TRUE(
      r.AddColumn("uid", Column::FromInts(DataType::kInt64, {9, 9, 7})).ok());
  EXPECT_TRUE(r.AddColumn("v", Column::FromDoubles({1, 2, 10})).ok());
  AggQuery q;
  q.agg = AggFunction::kSum;
  q.agg_attr = "v";
  q.group_keys = {"uid"};
  auto f = ComputeFeatureColumn(q, d, r);
  ASSERT_TRUE(f.ok());
  EXPECT_DOUBLE_EQ(f.value()[0], 10.0);
  EXPECT_DOUBLE_EQ(f.value()[1], 3.0);
}

TEST(AugmentTest, CompoundKeySubsetChangesGranularity) {
  Table d;
  EXPECT_TRUE(d.AddColumn("u", Column::FromInts(DataType::kInt64, {1, 2})).ok());
  EXPECT_TRUE(d.AddColumn("m", Column::FromInts(DataType::kInt64, {10, 10})).ok());
  Table r;
  EXPECT_TRUE(
      r.AddColumn("u", Column::FromInts(DataType::kInt64, {1, 1, 2})).ok());
  EXPECT_TRUE(
      r.AddColumn("m", Column::FromInts(DataType::kInt64, {10, 99, 10})).ok());
  EXPECT_TRUE(r.AddColumn("v", Column::FromDoubles({1, 100, 5})).ok());

  AggQuery q;
  q.agg = AggFunction::kSum;
  q.agg_attr = "v";
  q.group_keys = {"u", "m"};
  auto both = ComputeFeatureColumn(q, d, r);
  ASSERT_TRUE(both.ok());
  EXPECT_DOUBLE_EQ(both.value()[0], 1.0);  // only (1,10)
  EXPECT_DOUBLE_EQ(both.value()[1], 5.0);

  q.group_keys = {"u"};  // k subset of K: aggregates across merchants
  auto user_only = ComputeFeatureColumn(q, d, r);
  ASSERT_TRUE(user_only.ok());
  EXPECT_DOUBLE_EQ(user_only.value()[0], 101.0);
  EXPECT_DOUBLE_EQ(user_only.value()[1], 5.0);
}

TEST(AugmentTest, NullTrainingKeyGetsNaN) {
  Table d;
  Column key(DataType::kInt64);
  key.AppendInt(1);
  key.AppendNull();
  EXPECT_TRUE(d.AddColumn("uid", std::move(key)).ok());
  Table r;
  EXPECT_TRUE(r.AddColumn("uid", Column::FromInts(DataType::kInt64, {1})).ok());
  EXPECT_TRUE(r.AddColumn("v", Column::FromDoubles({2.0})).ok());
  AggQuery q;
  q.agg = AggFunction::kAvg;
  q.agg_attr = "v";
  q.group_keys = {"uid"};
  auto f = ComputeFeatureColumn(q, d, r);
  ASSERT_TRUE(f.ok());
  EXPECT_DOUBLE_EQ(f.value()[0], 2.0);
  EXPECT_TRUE(std::isnan(f.value()[1]));
}

TEST(AugmentTest, TrainingKeyAbsentFromRelevantDictionary) {
  // "eve" never appears in R's dictionary: the code map must yield NaN, not
  // a collision with another customer's group.
  Tables t = MakeJoinTables();
  Table d2;
  EXPECT_TRUE(d2.AddColumn("cname", Column::FromStrings({"eve"})).ok());
  auto f = ComputeFeatureColumn(SumQuery(), d2, t.r);
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(std::isnan(f.value()[0]));
}

TEST(AugmentTest, MissingKeyColumnInTrainingIsError) {
  Tables t = MakeJoinTables();
  AggQuery q = SumQuery();
  q.group_keys = {"pprice"};  // exists in R, not in D
  EXPECT_FALSE(ComputeFeatureColumn(q, t.d, t.r).ok());
}

TEST(AugmentTest, KeyTypeMismatchIsError) {
  Table d;
  EXPECT_TRUE(d.AddColumn("k", Column::FromInts(DataType::kInt64, {1})).ok());
  Table r;
  EXPECT_TRUE(r.AddColumn("k", Column::FromStrings({"1"})).ok());
  EXPECT_TRUE(r.AddColumn("v", Column::FromDoubles({1.0})).ok());
  AggQuery q;
  q.agg = AggFunction::kAvg;
  q.agg_attr = "v";
  q.group_keys = {"k"};
  EXPECT_FALSE(ComputeFeatureColumn(q, d, r).ok());
}

TEST(AugmentTest, ExecuteAndComputeAgree) {
  // Property: ComputeFeatureColumn matches a manual join against
  // ExecuteAggQuery's result table.
  Tables t = MakeJoinTables();
  AggQuery q = SumQuery();
  q.predicates = {Predicate::Range("pprice", 6.0, std::nullopt)};
  auto feature = ComputeFeatureColumn(q, t.d, t.r);
  auto table = ExecuteAggQuery(q, t.r);
  ASSERT_TRUE(feature.ok());
  ASSERT_TRUE(table.ok());
  const Column* keys = table.value().GetColumn("cname").value();
  const Column* vals = table.value().GetColumn("feature").value();
  const Column* d_keys = t.d.GetColumn("cname").value();
  for (size_t row = 0; row < t.d.num_rows(); ++row) {
    double expected = std::nan("");
    for (size_t g = 0; g < table.value().num_rows(); ++g) {
      if (keys->StringAt(g) == d_keys->StringAt(row) && !vals->IsNull(g)) {
        expected = vals->DoubleAt(g);
      }
    }
    if (std::isnan(expected)) {
      EXPECT_TRUE(std::isnan(feature.value()[row])) << "row " << row;
    } else {
      EXPECT_DOUBLE_EQ(feature.value()[row], expected) << "row " << row;
    }
  }
}

}  // namespace
}  // namespace featlib

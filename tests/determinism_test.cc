/// \file determinism_test.cc
/// \brief DESIGN.md promises "every stochastic component takes an explicit
/// seed; no global RNG". These tests pin that down: run twice with the same
/// seed, demand bit-identical outcomes; run with a different seed, demand a
/// different trajectory (to catch seeds that are silently ignored).

#include <gtest/gtest.h>

#include "common/str_util.h"
#include "core/feataug.h"
#include "core/generator.h"
#include "data/multi_table_data.h"
#include "data/synthetic.h"
#include "hpo/hyperband.h"
#include "hpo/tpe.h"

namespace featlib {
namespace {

// --- Synthetic data ---------------------------------------------------------

std::string TableFingerprint(const Table& t) {
  // Cheap structural + content digest; ToString renders values.
  return StrFormat("%zux%zu|", t.num_rows(), t.num_columns()) + t.ToString(50);
}

TEST(DeterminismTest, SyntheticGeneratorsReproduceBitwise) {
  for (const char* name :
       {"tmall", "instacart", "student", "merchant", "covtype", "household"}) {
    SyntheticOptions options;
    options.n_train = 200;
    options.avg_logs_per_entity = 6;
    options.seed = 99;
    auto a = MakeDatasetByName(name, options);
    auto b = MakeDatasetByName(name, options);
    ASSERT_TRUE(a.ok() && b.ok()) << name;
    EXPECT_EQ(TableFingerprint(a.value().training),
              TableFingerprint(b.value().training))
        << name;
    EXPECT_EQ(TableFingerprint(a.value().relevant),
              TableFingerprint(b.value().relevant))
        << name;
    options.seed = 100;
    auto c = MakeDatasetByName(name, options);
    ASSERT_TRUE(c.ok());
    EXPECT_NE(TableFingerprint(a.value().relevant),
              TableFingerprint(c.value().relevant))
        << name << " ignores its seed";
  }
}

TEST(DeterminismTest, MultiTableBundleReproduces) {
  SyntheticOptions options;
  options.n_train = 150;
  options.seed = 7;
  MultiTableBundle a = MakeInstacartMultiTable(options);
  MultiTableBundle b = MakeInstacartMultiTable(options);
  EXPECT_EQ(TableFingerprint(a.order_items), TableFingerprint(b.order_items));
  EXPECT_EQ(TableFingerprint(a.browse_log), TableFingerprint(b.browse_log));
  EXPECT_EQ(TableFingerprint(a.training), TableFingerprint(b.training));
}

// --- Optimizers -------------------------------------------------------------

SearchSpace MixedSpace() {
  SearchSpace space;
  space.Add(ParamDomain::Numeric("x", -2.0, 2.0));
  space.Add(ParamDomain::OptionalNumeric("o", 0.0, 10.0));
  space.Add(ParamDomain::Categorical("c", 5));
  return space;
}

double ToyLoss(const ParamVector& v) {
  double loss = v[0] * v[0];
  if (!IsNone(v[1])) loss += 0.1 * v[1];
  loss += (static_cast<int>(v[2]) == 3) ? 0.0 : 0.5;
  return loss;
}

TEST(DeterminismTest, TpeTrajectoryReproduces) {
  auto run = [](uint64_t seed) {
    TpeOptions options;
    options.seed = seed;
    Tpe tpe(MixedSpace(), options);
    std::vector<double> losses;
    for (int i = 0; i < 40; ++i) {
      ParamVector v = tpe.Suggest();
      const double loss = ToyLoss(v);
      tpe.Observe(v, loss);
      losses.push_back(loss);
    }
    return losses;
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));
}

TEST(DeterminismTest, HyperbandRunReproduces) {
  auto run = [](uint64_t seed) {
    HyperbandOptions options;
    options.max_total_cost = 20.0;
    options.seed = seed;
    Hyperband hb(MixedSpace(), options);
    auto result = hb.Run([](const ParamVector& v, double f) -> Result<double> {
      return ToyLoss(v) + 0.01 * (1.0 - f);
    });
    EXPECT_TRUE(result.ok());
    std::vector<double> losses;
    for (const FidelityTrial& t : result.value().trials) losses.push_back(t.loss);
    return losses;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

// --- End-to-end FeatAug -----------------------------------------------------

std::vector<std::string> PlanKeys(const AugmentationPlan& plan) {
  std::vector<std::string> keys;
  for (const AggQuery& q : plan.queries) keys.push_back(q.CacheKey());
  return keys;
}

TEST(DeterminismTest, FeatAugPlanReproduces) {
  SyntheticOptions data_options;
  data_options.n_train = 250;
  data_options.avg_logs_per_entity = 8;
  data_options.seed = 31;
  DatasetBundle bundle = MakeTmall(data_options);

  auto fit = [&](uint64_t seed) {
    FeatAugOptions options;
    options.n_templates = 2;
    options.queries_per_template = 3;
    options.generator.warmup_iterations = 20;
    options.generator.warmup_top_k = 4;
    options.generator.generation_iterations = 6;
    options.qti.beam_width = 1;
    options.qti.max_depth = 2;
    options.qti.node_iterations = 6;
    options.evaluator.model = ModelKind::kLogisticRegression;
    options.seed = seed;
    FeatAug feataug(bundle.ToProblem(), options);
    auto plan = feataug.Fit();
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return PlanKeys(plan.value());
  };
  const auto first = fit(3);
  const auto second = fit(3);
  EXPECT_EQ(first, second);
  ASSERT_FALSE(first.empty());
}

}  // namespace
}  // namespace featlib

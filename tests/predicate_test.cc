#include <gtest/gtest.h>

#include "query/predicate.h"

namespace featlib {
namespace {

Table MakeLogs() {
  Table t;
  EXPECT_TRUE(t.AddColumn("price", Column::FromDoubles({10, 20, 30, 40})).ok());
  EXPECT_TRUE(
      t.AddColumn("dept", Column::FromStrings({"a", "b", "a", "c"})).ok());
  EXPECT_TRUE(
      t.AddColumn("ts", Column::FromInts(DataType::kDatetime, {100, 200, 300, 400}))
          .ok());
  return t;
}

TEST(PredicateTest, EqualsOnString) {
  Table t = MakeLogs();
  auto filter = CompiledFilter::Compile(
      {Predicate::Equals("dept", Value::Str("a"))}, t);
  ASSERT_TRUE(filter.ok());
  EXPECT_EQ(filter.value().Apply(), (std::vector<uint32_t>{0, 2}));
}

TEST(PredicateTest, EqualsOnMissingDictionaryValueMatchesNothing) {
  Table t = MakeLogs();
  auto filter = CompiledFilter::Compile(
      {Predicate::Equals("dept", Value::Str("zzz"))}, t);
  ASSERT_TRUE(filter.ok());
  EXPECT_TRUE(filter.value().Apply().empty());
}

TEST(PredicateTest, TwoSidedRange) {
  Table t = MakeLogs();
  auto filter =
      CompiledFilter::Compile({Predicate::Range("price", 15.0, 35.0)}, t);
  ASSERT_TRUE(filter.ok());
  EXPECT_EQ(filter.value().Apply(), (std::vector<uint32_t>{1, 2}));
}

TEST(PredicateTest, OneSidedRanges) {
  Table t = MakeLogs();
  auto ge = CompiledFilter::Compile(
      {Predicate::Range("ts", 300.0, std::nullopt)}, t);
  ASSERT_TRUE(ge.ok());
  EXPECT_EQ(ge.value().Apply(), (std::vector<uint32_t>{2, 3}));
  auto le = CompiledFilter::Compile(
      {Predicate::Range("ts", std::nullopt, 200.0)}, t);
  ASSERT_TRUE(le.ok());
  EXPECT_EQ(le.value().Apply(), (std::vector<uint32_t>{0, 1}));
}

TEST(PredicateTest, ConjunctionIntersects) {
  Table t = MakeLogs();
  auto filter = CompiledFilter::Compile(
      {Predicate::Equals("dept", Value::Str("a")),
       Predicate::Range("price", 15.0, std::nullopt)},
      t);
  ASSERT_TRUE(filter.ok());
  EXPECT_EQ(filter.value().Apply(), (std::vector<uint32_t>{2}));
}

TEST(PredicateTest, TrivialPredicateSkipped) {
  Table t = MakeLogs();
  Predicate trivial = Predicate::Range("price", std::nullopt, std::nullopt);
  EXPECT_TRUE(trivial.IsTrivial());
  auto filter = CompiledFilter::Compile({trivial}, t);
  ASSERT_TRUE(filter.ok());
  EXPECT_EQ(filter.value().Apply().size(), 4u);
}

TEST(PredicateTest, NullNeverMatches) {
  Table t;
  Column price(DataType::kDouble);
  price.AppendDouble(5.0);
  price.AppendNull();
  ASSERT_TRUE(t.AddColumn("price", std::move(price)).ok());
  auto filter = CompiledFilter::Compile(
      {Predicate::Range("price", 0.0, std::nullopt)}, t);
  ASSERT_TRUE(filter.ok());
  EXPECT_EQ(filter.value().Apply(), (std::vector<uint32_t>{0}));
}

TEST(PredicateTest, CompileErrors) {
  Table t = MakeLogs();
  // Unknown attribute.
  EXPECT_FALSE(CompiledFilter::Compile(
                   {Predicate::Equals("nope", Value::Int(1))}, t)
                   .ok());
  // Range on string column.
  EXPECT_FALSE(
      CompiledFilter::Compile({Predicate::Range("dept", 0.0, 1.0)}, t).ok());
  // String operand against numeric column.
  EXPECT_FALSE(CompiledFilter::Compile(
                   {Predicate::Equals("price", Value::Str("x"))}, t)
                   .ok());
  // Non-string operand against string column.
  EXPECT_FALSE(CompiledFilter::Compile(
                   {Predicate::Equals("dept", Value::Int(1))}, t)
                   .ok());
  // Inverted bounds.
  EXPECT_FALSE(
      CompiledFilter::Compile({Predicate::Range("price", 10.0, 5.0)}, t).ok());
}

TEST(PredicateTest, NumericEquality) {
  Table t = MakeLogs();
  auto filter = CompiledFilter::Compile(
      {Predicate::Equals("ts", Value::Int(200))}, t);
  ASSERT_TRUE(filter.ok());
  EXPECT_EQ(filter.value().Apply(), (std::vector<uint32_t>{1}));
}

TEST(PredicateTest, SqlRendering) {
  EXPECT_EQ(Predicate::Equals("dept", Value::Str("a")).ToSql(DataType::kString),
            "dept = 'a'");
  EXPECT_EQ(Predicate::Range("ts", 100.0, std::nullopt).ToSql(DataType::kDatetime),
            "ts >= 100");
  EXPECT_EQ(Predicate::Range("p", std::nullopt, 2.5).ToSql(DataType::kDouble),
            "p <= 2.5");
  EXPECT_EQ(Predicate::Range("p", 1.0, 2.0).ToSql(DataType::kDouble),
            "p BETWEEN 1 AND 2");
  EXPECT_EQ(Predicate::Range("p", std::nullopt, std::nullopt).ToSql(DataType::kDouble),
            "TRUE");
}

}  // namespace
}  // namespace featlib

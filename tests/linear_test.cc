#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ml/linear.h"
#include "ml/metrics.h"

namespace featlib {
namespace {

Dataset MakeSeparable(size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset ds = Dataset::WithLabels({}, TaskKind::kBinaryClassification);
  std::vector<double> x1(n);
  std::vector<double> x2(n);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    const bool pos = rng.Bernoulli(0.5);
    x1[i] = rng.Normal() + (pos ? 2.0 : -2.0);
    x2[i] = rng.Normal();
    y[i] = pos ? 1.0 : 0.0;
  }
  ds.n = n;
  ds.y = y;
  EXPECT_TRUE(ds.AddFeature("x1", x1).ok());
  EXPECT_TRUE(ds.AddFeature("x2", x2).ok());
  return ds;
}

TEST(SolveRidgeTest, SolvesKnownSystem) {
  // A = [[4,1],[1,3]], b = [1,2] -> x = [1/11, 7/11].
  std::vector<double> a = {4, 1, 1, 3};
  std::vector<double> b = {1, 2};
  ASSERT_TRUE(SolveRidgeSystem(&a, &b, 2, 0.0).ok());
  EXPECT_NEAR(b[0], 1.0 / 11.0, 1e-10);
  EXPECT_NEAR(b[1], 7.0 / 11.0, 1e-10);
}

TEST(SolveRidgeTest, SingularMatrixRejectedWithoutRidge) {
  std::vector<double> a = {1, 1, 1, 1};
  std::vector<double> b = {1, 1};
  EXPECT_FALSE(SolveRidgeSystem(&a, &b, 2, 0.0).ok());
  // A ridge term fixes it.
  std::vector<double> a2 = {1, 1, 1, 1};
  std::vector<double> b2 = {1, 1};
  EXPECT_TRUE(SolveRidgeSystem(&a2, &b2, 2, 0.1).ok());
}

TEST(LogisticRegressionTest, LearnsSeparableData) {
  Dataset train = MakeSeparable(400, 1);
  Dataset test = MakeSeparable(200, 2);
  LogisticRegressionModel model(TaskKind::kBinaryClassification);
  ASSERT_TRUE(model.Fit(train).ok());
  const auto scores = model.PredictScore(test);
  EXPECT_GT(Auc(test.y, scores), 0.95);
}

TEST(LogisticRegressionTest, PredictClassThresholds) {
  Dataset train = MakeSeparable(300, 3);
  LogisticRegressionModel model(TaskKind::kBinaryClassification);
  ASSERT_TRUE(model.Fit(train).ok());
  const auto classes = model.PredictClass(train);
  size_t correct = 0;
  for (size_t i = 0; i < train.n; ++i) {
    if (classes[i] == static_cast<int>(train.y[i])) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / train.n, 0.9);
}

TEST(LogisticRegressionTest, ImportancesFavorInformativeFeature) {
  Dataset train = MakeSeparable(400, 4);
  LogisticRegressionModel model(TaskKind::kBinaryClassification);
  ASSERT_TRUE(model.Fit(train).ok());
  const auto imp = model.FeatureImportances();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_GT(imp[0], 3.0 * imp[1]);
}

TEST(LogisticRegressionTest, MulticlassOneVsRest) {
  Rng rng(5);
  Dataset ds = Dataset::WithLabels({}, TaskKind::kMultiClassification, 3);
  const size_t n = 600;
  std::vector<double> x1(n);
  std::vector<double> x2(n);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(rng.UniformInt(3));
    const double angle = 2.0943951023931953 * cls;  // 120 degrees apart
    x1[i] = 3.0 * std::cos(angle) + rng.Normal() * 0.6;
    x2[i] = 3.0 * std::sin(angle) + rng.Normal() * 0.6;
    y[i] = cls;
  }
  ds.n = n;
  ds.y = y;
  ds.num_classes = 3;
  ASSERT_TRUE(ds.AddFeature("x1", x1).ok());
  ASSERT_TRUE(ds.AddFeature("x2", x2).ok());
  LogisticRegressionModel model(TaskKind::kMultiClassification);
  ASSERT_TRUE(model.Fit(ds).ok());
  const auto pred = model.PredictClass(ds);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) labels[i] = static_cast<int>(y[i]);
  EXPECT_GT(Accuracy(labels, pred), 0.85);
}

TEST(LogisticRegressionTest, RejectsRegressionTask) {
  LogisticRegressionModel model(TaskKind::kRegression);
  Dataset ds = Dataset::WithLabels({1.0, 2.0}, TaskKind::kRegression);
  ASSERT_TRUE(ds.AddFeature("x", {1, 2}).ok());
  EXPECT_FALSE(model.Fit(ds).ok());
}

TEST(LinearRegressionTest, RecoversLinearFunction) {
  Rng rng(6);
  Dataset ds = Dataset::WithLabels({}, TaskKind::kRegression);
  const size_t n = 300;
  std::vector<double> x1(n);
  std::vector<double> x2(n);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x1[i] = rng.Normal();
    x2[i] = rng.Normal();
    y[i] = 3.0 * x1[i] - 2.0 * x2[i] + 5.0 + 0.01 * rng.Normal();
  }
  ds.n = n;
  ds.y = y;
  ASSERT_TRUE(ds.AddFeature("x1", x1).ok());
  ASSERT_TRUE(ds.AddFeature("x2", x2).ok());
  LinearRegressionModel model;
  ASSERT_TRUE(model.Fit(ds).ok());
  const auto pred = model.PredictScore(ds);
  EXPECT_LT(Rmse(y, pred), 0.05);
  const auto imp = model.FeatureImportances();
  EXPECT_GT(imp[0], imp[1]);  // |3| vs |-2| on standardized scale
}

TEST(LinearRegressionTest, HandlesConstantFeature) {
  Dataset ds = Dataset::WithLabels({1, 2, 3, 4}, TaskKind::kRegression);
  ASSERT_TRUE(ds.AddFeature("x", {1, 2, 3, 4}).ok());
  ASSERT_TRUE(ds.AddFeature("const", {5, 5, 5, 5}).ok());
  LinearRegressionModel model;
  ASSERT_TRUE(model.Fit(ds).ok());
  EXPECT_LT(Rmse(ds.y, model.PredictScore(ds)), 0.1);
}

}  // namespace
}  // namespace featlib

#include <gtest/gtest.h>

#include <algorithm>

#include "core/template_id.h"
#include "data/synthetic.h"

namespace featlib {
namespace {

struct Fixture {
  DatasetBundle bundle;
  FeatureEvaluator evaluator;
};

Fixture MakeFixture(uint64_t seed = 9) {
  SyntheticOptions data_options;
  data_options.n_train = 300;
  data_options.avg_logs_per_entity = 10;
  data_options.seed = seed;
  DatasetBundle bundle = MakeTmall(data_options);
  EvaluatorOptions eval_options;
  eval_options.model = ModelKind::kLogisticRegression;
  eval_options.metric = MetricKind::kAuc;
  auto evaluator = FeatureEvaluator::Create(bundle.training, bundle.label_col,
                                            bundle.base_features, bundle.relevant,
                                            bundle.task, eval_options);
  EXPECT_TRUE(evaluator.ok());
  return Fixture{std::move(bundle), std::move(evaluator).ValueOrDie()};
}

TemplateIdOptions FastOptions() {
  TemplateIdOptions options;
  options.beam_width = 2;
  options.max_depth = 2;
  options.n_templates = 4;
  options.node_iterations = 8;
  options.seed = 3;
  return options;
}

QueryTemplate BaseTemplate(const DatasetBundle& bundle) {
  QueryTemplate base;
  base.agg_functions = bundle.agg_functions;
  base.agg_attrs = bundle.agg_attrs;
  base.fk_attrs = bundle.fk_attrs;
  return base;
}

TEST(TemplateIdTest, ReturnsRequestedTemplates) {
  Fixture fx = MakeFixture();
  TemplateIdentifier identifier(&fx.evaluator, FastOptions());
  auto result = identifier.Run(BaseTemplate(fx.bundle), fx.bundle.where_candidates);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().templates.size(), 4u);
  // Scores sorted best-first.
  for (size_t i = 1; i < result.value().templates.size(); ++i) {
    EXPECT_GE(result.value().templates[i - 1].score,
              result.value().templates[i].score);
  }
}

TEST(TemplateIdTest, GoldenAttributesSurfaceInTopTemplates) {
  // The golden predicate uses {action, ts}; at least one of the recommended
  // templates should contain a golden attribute.
  Fixture fx = MakeFixture();
  TemplateIdOptions options = FastOptions();
  options.node_iterations = 14;
  TemplateIdentifier identifier(&fx.evaluator, options);
  auto result = identifier.Run(BaseTemplate(fx.bundle), fx.bundle.where_candidates);
  ASSERT_TRUE(result.ok());
  bool found = false;
  for (const auto& scored : result.value().templates) {
    for (const auto& attr : scored.tmpl.where_attrs) {
      if (attr == "action" || attr == "ts") found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TemplateIdTest, NodeBudgetRespectsLayerStructure) {
  Fixture fx = MakeFixture();
  TemplateIdOptions options = FastOptions();
  TemplateIdentifier identifier(&fx.evaluator, options);
  auto result = identifier.Run(BaseTemplate(fx.bundle), fx.bundle.where_candidates);
  ASSERT_TRUE(result.ok());
  const size_t n_attrs = fx.bundle.where_candidates.size();
  // Layer 1 evaluates all singletons (plus the beam-inheritance root);
  // with Opt. 2 each further layer evaluates at most beam_width nodes.
  const size_t max_nodes =
      1 + n_attrs + static_cast<size_t>(options.beam_width) *
                        static_cast<size_t>(options.max_depth - 1);
  EXPECT_LE(result.value().nodes_evaluated, max_nodes);
  EXPECT_GE(result.value().nodes_evaluated, n_attrs);
}

TEST(TemplateIdTest, WithoutPredictorEvaluatesMoreNodes) {
  Fixture with = MakeFixture();
  Fixture without = MakeFixture();
  TemplateIdOptions options = FastOptions();
  TemplateIdentifier pruned(&with.evaluator, options);
  auto pruned_result =
      pruned.Run(BaseTemplate(with.bundle), with.bundle.where_candidates);
  options.use_predictor = false;
  TemplateIdentifier full(&without.evaluator, options);
  auto full_result =
      full.Run(BaseTemplate(without.bundle), without.bundle.where_candidates);
  ASSERT_TRUE(pruned_result.ok());
  ASSERT_TRUE(full_result.ok());
  EXPECT_GT(full_result.value().nodes_evaluated,
            pruned_result.value().nodes_evaluated);
  EXPECT_GT(pruned_result.value().nodes_pruned_by_predictor, 0u);
}

TEST(TemplateIdTest, WithoutProxyUsesModelEvaluations) {
  Fixture fx = MakeFixture();
  TemplateIdOptions options = FastOptions();
  options.use_low_cost_proxy = false;
  options.node_iterations = 3;
  options.max_depth = 1;
  TemplateIdentifier identifier(&fx.evaluator, options);
  const size_t model_evals_before = fx.evaluator.num_model_evals();
  auto result = identifier.Run(BaseTemplate(fx.bundle), fx.bundle.where_candidates);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(fx.evaluator.num_model_evals(), model_evals_before);
}

TEST(TemplateIdTest, TemplatesAreDistinctCombinations) {
  Fixture fx = MakeFixture();
  TemplateIdentifier identifier(&fx.evaluator, FastOptions());
  auto result = identifier.Run(BaseTemplate(fx.bundle), fx.bundle.where_candidates);
  ASSERT_TRUE(result.ok());
  std::vector<std::string> keys;
  for (const auto& scored : result.value().templates) {
    keys.push_back(scored.tmpl.WhereKey());
  }
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::unique(keys.begin(), keys.end()), keys.end());
}

TEST(TemplateIdTest, EmptyCandidatesRejected) {
  Fixture fx = MakeFixture();
  TemplateIdentifier identifier(&fx.evaluator, FastOptions());
  EXPECT_FALSE(identifier.Run(BaseTemplate(fx.bundle), {}).ok());
}

TEST(TemplateIdTest, DepthOneEvaluatesOnlySingletons) {
  Fixture fx = MakeFixture();
  TemplateIdOptions options = FastOptions();
  options.max_depth = 1;
  TemplateIdentifier identifier(&fx.evaluator, options);
  auto result = identifier.Run(BaseTemplate(fx.bundle), fx.bundle.where_candidates);
  ASSERT_TRUE(result.ok());
  // All singletons plus the beam-inheritance root node.
  EXPECT_EQ(result.value().nodes_evaluated, fx.bundle.where_candidates.size() + 1);
  for (const auto& scored : result.value().templates) {
    EXPECT_LE(scored.tmpl.where_attrs.size(), 1u);
  }
}

}  // namespace
}  // namespace featlib

#include "hpo/hyperband.h"

#include <cmath>
#include <gtest/gtest.h>

#include "core/generator.h"
#include "data/synthetic.h"

namespace featlib {
namespace {

SearchSpace QuadraticSpace() {
  SearchSpace space;
  space.Add(ParamDomain::Numeric("x", -5.0, 5.0));
  space.Add(ParamDomain::Numeric("y", -5.0, 5.0));
  space.Add(ParamDomain::Categorical("c", 4));
  return space;
}

/// Smooth test objective: paraboloid centered at (1, -2) with the right
/// category; low fidelity adds deterministic pseudo-noise shrinking as
/// fidelity grows (mimicking subsampled model evaluation).
double Quadratic(const ParamVector& v, double fidelity) {
  double loss = (v[0] - 1.0) * (v[0] - 1.0) + (v[1] + 2.0) * (v[1] + 2.0);
  if (static_cast<int>(v[2]) != 2) loss += 4.0;
  const double phase = std::sin(37.0 * v[0] + 53.0 * v[1]);
  loss += (1.0 - fidelity) * 1.5 * phase;
  return loss;
}

MultiFidelityObjective MakeObjective() {
  return [](const ParamVector& v, double fidelity) -> Result<double> {
    return Quadratic(v, fidelity);
  };
}

TEST(HyperbandTest, RungLadderFollowsEta) {
  HyperbandOptions options;
  options.eta = 3.0;
  options.min_fidelity = 1.0 / 9.0;
  Hyperband hb(QuadraticSpace(), options);
  EXPECT_EQ(hb.s_max(), 2);
  const std::vector<double> rungs = hb.RungFidelities();
  ASSERT_EQ(rungs.size(), 3u);
  EXPECT_NEAR(rungs[0], 1.0 / 9.0, 1e-12);
  EXPECT_NEAR(rungs[1], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(rungs[2], 1.0, 1e-12);
}

TEST(HyperbandTest, RungLadderWithEtaTwo) {
  HyperbandOptions options;
  options.eta = 2.0;
  options.min_fidelity = 1.0 / 8.0;
  Hyperband hb(QuadraticSpace(), options);
  EXPECT_EQ(hb.s_max(), 3);
  const std::vector<double> rungs = hb.RungFidelities();
  ASSERT_EQ(rungs.size(), 4u);
  EXPECT_NEAR(rungs[0], 0.125, 1e-12);
  EXPECT_NEAR(rungs[1], 0.25, 1e-12);
  EXPECT_NEAR(rungs[2], 0.5, 1e-12);
  EXPECT_NEAR(rungs[3], 1.0, 1e-12);
}

TEST(HyperbandTest, FullFidelityOnlyWhenMinFidelityIsOne) {
  HyperbandOptions options;
  options.min_fidelity = 1.0;
  options.max_total_cost = 12.0;
  Hyperband hb(QuadraticSpace(), options);
  EXPECT_EQ(hb.s_max(), 0);
  auto result = hb.Run(MakeObjective());
  ASSERT_TRUE(result.ok());
  for (const FidelityTrial& t : result.value().trials) {
    EXPECT_DOUBLE_EQ(t.fidelity, 1.0);
  }
  EXPECT_EQ(result.value().trials.size(), result.value().full_fidelity_trials.size());
}

TEST(HyperbandTest, EveryTrialFidelityIsARungValue) {
  HyperbandOptions options;
  options.max_total_cost = 25.0;
  Hyperband hb(QuadraticSpace(), options);
  const std::vector<double> rungs = hb.RungFidelities();
  auto result = hb.Run(MakeObjective());
  ASSERT_TRUE(result.ok());
  for (const FidelityTrial& t : result.value().trials) {
    bool is_rung = false;
    for (double r : rungs) is_rung |= std::abs(t.fidelity - r) < 1e-12;
    EXPECT_TRUE(is_rung) << t.fidelity;
  }
}

TEST(HyperbandTest, BudgetLedgerMatchesTrials) {
  HyperbandOptions options;
  options.max_total_cost = 20.0;
  Hyperband hb(QuadraticSpace(), options);
  auto result = hb.Run(MakeObjective());
  ASSERT_TRUE(result.ok());
  double recount = 0.0;
  for (const FidelityTrial& t : result.value().trials) recount += t.fidelity;
  EXPECT_NEAR(result.value().total_cost, recount, 1e-9);
  EXPECT_GE(result.value().total_cost, options.max_total_cost);
  // Overshoot is bounded by one bracket.
  EXPECT_LE(result.value().total_cost, options.max_total_cost + 30.0);
  EXPECT_EQ(result.value().n_evals, result.value().trials.size());
}

TEST(HyperbandTest, SuccessiveHalvingShrinksRungs) {
  // In the most aggressive bracket (s = s_max), the number of evaluations
  // per fidelity level must be non-increasing.
  HyperbandOptions options;
  options.eta = 3.0;
  options.min_fidelity = 1.0 / 9.0;
  options.max_total_cost = 8.0;  // roughly one bracket
  Hyperband hb(QuadraticSpace(), options);
  auto result = hb.Run(MakeObjective());
  ASSERT_TRUE(result.ok());
  size_t at_low = 0, at_mid = 0, at_full = 0;
  for (const FidelityTrial& t : result.value().trials) {
    if (t.fidelity < 0.2) {
      ++at_low;
    } else if (t.fidelity < 0.5) {
      ++at_mid;
    } else {
      ++at_full;
    }
  }
  EXPECT_GT(at_low, 0u);
  EXPECT_GE(at_low, at_mid);
  EXPECT_GE(at_mid, at_full);
}

TEST(HyperbandTest, BestComesFromFullFidelityPool) {
  HyperbandOptions options;
  options.max_total_cost = 30.0;
  Hyperband hb(QuadraticSpace(), options);
  auto result = hb.Run(MakeObjective());
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.value().has_best);
  double best_full = 1e300;
  for (const Trial& t : result.value().full_fidelity_trials) {
    best_full = std::min(best_full, t.loss);
  }
  EXPECT_DOUBLE_EQ(result.value().best_loss, best_full);
}

TEST(HyperbandTest, BohbBeatsPlainHyperbandOnSmoothObjective) {
  // With equal budgets and matched seeds, model-based sampling should find
  // a lower (or equal) full-fidelity loss on a smooth landscape. Averaged
  // over seeds to keep the assertion robust.
  double bohb_sum = 0.0, hyper_sum = 0.0;
  const int kSeeds = 5;
  for (int s = 0; s < kSeeds; ++s) {
    HyperbandOptions options;
    options.max_total_cost = 40.0;
    options.seed = 100 + static_cast<uint64_t>(s);
    options.model_based = true;
    Hyperband bohb(QuadraticSpace(), options);
    auto bohb_result = bohb.Run(MakeObjective());
    ASSERT_TRUE(bohb_result.ok());
    bohb_sum += bohb_result.value().best_loss;

    options.model_based = false;
    Hyperband hyper(QuadraticSpace(), options);
    auto hyper_result = hyper.Run(MakeObjective());
    ASSERT_TRUE(hyper_result.ok());
    hyper_sum += hyper_result.value().best_loss;
  }
  EXPECT_LE(bohb_sum / kSeeds, hyper_sum / kSeeds + 0.25);
}

TEST(HyperbandTest, WarmStartSteersTheModel) {
  // Seeding the full-fidelity pool with points around the optimum should
  // not hurt, and on average helps: compare warm vs cold runs pairwise
  // across seeds at a small budget.
  double warm_sum = 0.0, cold_sum = 0.0;
  const int kSeeds = 5;
  for (int s = 0; s < kSeeds; ++s) {
    HyperbandOptions options;
    options.max_total_cost = 15.0;
    options.random_fraction = 0.1;
    options.seed = 5 + static_cast<uint64_t>(s);

    Hyperband warm(QuadraticSpace(), options);
    std::vector<Trial> seeds;
    Rng rng(99 + static_cast<uint64_t>(s));
    for (int i = 0; i < 20; ++i) {
      ParamVector v{1.0 + 0.1 * rng.Normal(), -2.0 + 0.1 * rng.Normal(), 2.0};
      seeds.push_back(Trial{v, Quadratic(v, 1.0)});
    }
    warm.WarmStart(seeds);
    auto warm_result = warm.Run(MakeObjective());
    ASSERT_TRUE(warm_result.ok());
    warm_sum += warm_result.value().best_loss;

    Hyperband cold(QuadraticSpace(), options);
    auto cold_result = cold.Run(MakeObjective());
    ASSERT_TRUE(cold_result.ok());
    cold_sum += cold_result.value().best_loss;
  }
  EXPECT_LE(warm_sum / kSeeds, cold_sum / kSeeds + 0.25);
}

TEST(HyperbandTest, ObjectiveErrorAbortsRun) {
  HyperbandOptions options;
  options.max_total_cost = 10.0;
  Hyperband hb(QuadraticSpace(), options);
  auto result = hb.Run([](const ParamVector&, double) -> Result<double> {
    return Status::InvalidArgument("boom");
  });
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("boom"), std::string::npos);
}

// --- Integration with the SQL Query Generation component -------------------

TEST(HyperbandGeneratorTest, BohbBackendGeneratesQueries) {
  SyntheticOptions data_options;
  data_options.n_train = 300;
  data_options.avg_logs_per_entity = 10;
  data_options.seed = 7;
  DatasetBundle bundle = MakeTmall(data_options);
  EvaluatorOptions eval_options;
  eval_options.model = ModelKind::kLogisticRegression;
  eval_options.metric = MetricKind::kAuc;
  auto evaluator = FeatureEvaluator::Create(bundle.training, bundle.label_col,
                                            bundle.base_features, bundle.relevant,
                                            bundle.task, eval_options);
  ASSERT_TRUE(evaluator.ok());

  for (HpoBackend backend : {HpoBackend::kBohb, HpoBackend::kHyperband}) {
    GeneratorOptions options;
    options.backend = backend;
    options.warmup_iterations = 30;
    options.warmup_top_k = 6;
    options.generation_iterations = 12;  // full-eval-equivalent budget
    options.n_queries = 5;
    options.seed = 11;
    SqlQueryGenerator generator(&evaluator.value(), options);
    auto result = generator.Run(bundle.golden_template);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const GenerationResult& gen = result.value();
    ASSERT_GT(gen.queries.size(), 0u) << HpoBackendToString(backend);
    ASSERT_LE(gen.queries.size(), 5u);
    for (size_t i = 1; i < gen.queries.size(); ++i) {
      EXPECT_LE(gen.queries[i - 1].loss, gen.queries[i].loss);
    }
    // The budget ledger means more raw model calls than iterations, but
    // bounded: every evaluation costs at least min_fidelity.
    EXPECT_GT(gen.model_evals, 0u);
    auto baseline = evaluator.value().BaselineModelScore();
    ASSERT_TRUE(baseline.ok());
    EXPECT_GT(gen.queries.front().model_metric, baseline.value() - 0.05)
        << HpoBackendToString(backend);
  }
}

TEST(HyperbandGeneratorTest, BackendNamesCoverNewBackends) {
  EXPECT_STREQ(HpoBackendToString(HpoBackend::kHyperband), "Hyperband");
  EXPECT_STREQ(HpoBackendToString(HpoBackend::kBohb), "BOHB");
}

TEST(HyperbandGeneratorTest, FullFidelityEqualsModelScore) {
  SyntheticOptions data_options;
  data_options.n_train = 200;
  data_options.seed = 3;
  DatasetBundle bundle = MakeTmall(data_options);
  EvaluatorOptions eval_options;
  eval_options.model = ModelKind::kLogisticRegression;
  auto evaluator = FeatureEvaluator::Create(bundle.training, bundle.label_col,
                                            bundle.base_features, bundle.relevant,
                                            bundle.task, eval_options);
  ASSERT_TRUE(evaluator.ok());
  auto full = evaluator.value().ModelScoreSingle(bundle.golden_query);
  auto at_one =
      evaluator.value().ModelScoreAtFidelity({bundle.golden_query}, 1.0);
  ASSERT_TRUE(full.ok() && at_one.ok());
  EXPECT_DOUBLE_EQ(full.value(), at_one.value());
  // Reduced fidelity is deterministic (prefix subsample, fixed model seed).
  auto lo_a = evaluator.value().ModelScoreAtFidelity({bundle.golden_query}, 0.4);
  auto lo_b = evaluator.value().ModelScoreAtFidelity({bundle.golden_query}, 0.4);
  ASSERT_TRUE(lo_a.ok() && lo_b.ok());
  EXPECT_DOUBLE_EQ(lo_a.value(), lo_b.value());
}

}  // namespace
}  // namespace featlib

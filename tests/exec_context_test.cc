/// \file exec_context_test.cc
/// \brief Unit tests for ExecContext (deadline / cancellation / memory
/// budget) and for the ThreadPool contract around it: a tripped context
/// abandons the unclaimed remainder within one chunk, a pre-tripped context
/// never publishes a stage, and task failures surface as Status while the
/// siblings still complete.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <vector>

#include "common/exec_context.h"
#include "common/thread_pool.h"

namespace featlib {
namespace {

TEST(ExecContextTest, DefaultIsUnlimitedAndOk) {
  ExecContext ctx;
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_FALSE(ctx.cancelled());
  EXPECT_EQ(ctx.memory_budget_bytes(), 0u);
  EXPECT_EQ(ctx.charged_bytes(), 0u);
  EXPECT_TRUE(ctx.Check().ok());
}

TEST(ExecContextTest, CancelTripsCheck) {
  ExecContext ctx;
  ctx.Cancel();
  EXPECT_TRUE(ctx.cancelled());
  const Status s = ctx.Check();
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
}

TEST(ExecContextTest, ExpiredDeadlineTripsCheck) {
  ExecContext ctx;
  ctx.set_deadline_after(std::chrono::nanoseconds(0));
  EXPECT_TRUE(ctx.has_deadline());
  const Status s = ctx.Check();
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
}

TEST(ExecContextTest, FutureDeadlineDoesNotTrip) {
  ExecContext ctx;
  ctx.set_deadline_after(std::chrono::hours(1));
  EXPECT_TRUE(ctx.has_deadline());
  EXPECT_TRUE(ctx.Check().ok());
  ctx.clear_deadline();
  EXPECT_FALSE(ctx.has_deadline());
}

TEST(ExecContextTest, CancellationWinsOverDeadline) {
  ExecContext ctx;
  ctx.set_deadline_after(std::chrono::nanoseconds(0));
  ctx.Cancel();
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCancelled);
}

TEST(ExecContextTest, ClearedDeadlineRecovers) {
  ExecContext ctx;
  ctx.set_deadline_after(std::chrono::nanoseconds(0));
  EXPECT_EQ(ctx.Check().code(), StatusCode::kDeadlineExceeded);
  ctx.clear_deadline();
  EXPECT_TRUE(ctx.Check().ok());
}

TEST(ExecContextTest, MemoryBudgetEnforced) {
  ExecContext ctx;
  ctx.set_memory_budget_bytes(100);
  EXPECT_TRUE(ctx.ChargeMemory(60).ok());
  EXPECT_EQ(ctx.charged_bytes(), 60u);
  EXPECT_TRUE(ctx.ChargeMemory(40).ok());
  EXPECT_EQ(ctx.charged_bytes(), 100u);
  const Status over = ctx.ChargeMemory(1);
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);
  // A rejected charge must not count against the budget.
  EXPECT_EQ(ctx.charged_bytes(), 100u);
  ctx.ReleaseMemory(50);
  EXPECT_EQ(ctx.charged_bytes(), 50u);
  EXPECT_TRUE(ctx.ChargeMemory(50).ok());
}

TEST(ExecContextTest, ReleaseClampsAtZero) {
  ExecContext ctx;
  ctx.set_memory_budget_bytes(10);
  EXPECT_TRUE(ctx.ChargeMemory(4).ok());
  ctx.ReleaseMemory(1000);
  EXPECT_EQ(ctx.charged_bytes(), 0u);
}

TEST(ExecContextTest, ZeroBudgetMeansUnlimited) {
  ExecContext ctx;
  EXPECT_TRUE(ctx.ChargeMemory(size_t{1} << 40).ok());
  EXPECT_TRUE(ctx.Check().ok());
}

TEST(ExecContextTest, NullToleratedStatics) {
  EXPECT_TRUE(ExecContext::CheckFor(nullptr).ok());
  EXPECT_TRUE(ExecContext::ChargeFor(nullptr, 1 << 20).ok());
  ExecContext::ReleaseFor(nullptr, 1 << 20);  // must not crash
  ExecContext ctx;
  ctx.set_memory_budget_bytes(8);
  EXPECT_EQ(ExecContext::ChargeFor(&ctx, 16).code(),
            StatusCode::kResourceExhausted);
  ctx.Cancel();
  EXPECT_EQ(ExecContext::CheckFor(&ctx).code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------------------------
// ThreadPool integration: cooperative checks at chunk-claim boundaries.
// ---------------------------------------------------------------------------

TEST(ThreadPoolExecContextTest, PreCancelledContextRunsNothing) {
  ThreadPool pool(4);
  ExecContext ctx;
  ctx.Cancel();
  std::atomic<size_t> ran{0};
  const Status s = pool.ParallelFor(
      1000, [&](size_t) { ran.fetch_add(1); }, 0, &ctx);
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_EQ(ran.load(), 0u);
}

TEST(ThreadPoolExecContextTest, ExpiredDeadlineSurfacesFromParallelFor) {
  ThreadPool pool(4);
  ExecContext ctx;
  ctx.set_deadline_after(std::chrono::nanoseconds(0));
  std::atomic<size_t> ran{0};
  const Status s = pool.ParallelFor(
      1000, [&](size_t) { ran.fetch_add(1); }, 0, &ctx);
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ran.load(), 0u);
}

TEST(ThreadPoolExecContextTest, CancelMidRunAbandonsRemainderOnSerialPool) {
  // Serial path (no workers) claims indices one at a time, so cancelling
  // from inside the body gives a deterministic cutoff: exactly the indices
  // before and including the cancelling one ran.
  ThreadPool pool(1);
  ExecContext ctx;
  size_t ran = 0;
  const Status s = pool.ParallelFor(
      100,
      [&](size_t i) {
        ++ran;
        if (i == 9) ctx.Cancel();
      },
      0, &ctx);
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_EQ(ran, 10u);
}

TEST(ThreadPoolExecContextTest, CancelMidRunStopsParallelPoolWithinChunks) {
  ThreadPool pool(4);
  ExecContext ctx;
  std::atomic<size_t> ran{0};
  const Status s = pool.ParallelFor(
      10000,
      [&](size_t) {
        if (ran.fetch_add(1) == 64) ctx.Cancel();
      },
      /*chunk=*/8, &ctx);
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  // Already-claimed chunks finish (cooperative cancellation), but the bulk
  // of the range must be abandoned.
  EXPECT_LT(ran.load(), 10000u);
}

TEST(ThreadPoolExecContextTest, NullContextIsUnlimitedParallelFor) {
  ThreadPool pool(4);
  std::atomic<size_t> ran{0};
  EXPECT_TRUE(pool.ParallelFor(257, [&](size_t) { ran.fetch_add(1); }).ok());
  EXPECT_EQ(ran.load(), 257u);
}

TEST(ThreadPoolExecContextTest, TrippedContextSkipsStagePublish) {
  ThreadPool pool(2);
  ExecContext ctx;
  std::atomic<size_t> stage1_ran{0};
  bool published1 = false;
  bool stage2_ran = false;
  std::vector<ThreadPool::Stage> stages;
  stages.push_back({100,
                    [&](size_t i) {
                      stage1_ran.fetch_add(1);
                      if (i == 0) ctx.Cancel();
                    },
                    [&] { published1 = true; }});
  stages.push_back({10, [&](size_t) { stage2_ran = true; },
                    [&] { stage2_ran = true; }});
  const Status s = pool.ParallelForStages(stages, &ctx);
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  // The failed stage never commits and later stages never start: this is the
  // "cancellation mid-prepare never publishes a half-built artifact" edge.
  EXPECT_FALSE(published1);
  EXPECT_FALSE(stage2_ran);
}

TEST(ThreadPoolExecContextTest, StagesPublishInOrderWhenContextStaysClean) {
  ThreadPool pool(2);
  ExecContext ctx;
  std::vector<int> order;
  std::vector<ThreadPool::Stage> stages;
  stages.push_back({4, [](size_t) {}, [&] { order.push_back(1); }});
  stages.push_back({4, [](size_t) {}, [&] { order.push_back(2); }});
  EXPECT_TRUE(pool.ParallelForStages(stages, &ctx).ok());
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(ThreadPoolExecContextTest, TaskFailurePreferredOverLaterContextTrip) {
  // When a task throws and the context trips afterwards, the caller should
  // see the task's kInternal error, not the context status: the failure is
  // the root cause.
  ThreadPool pool(1);
  ExecContext ctx;
  const Status s = pool.ParallelFor(
      10,
      [&](size_t i) {
        if (i == 2) throw std::runtime_error("task exploded");
        if (i == 4) ctx.Cancel();
      },
      0, &ctx);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("task exploded"), std::string::npos);
}

}  // namespace
}  // namespace featlib

/// \file serve_protocol_test.cc
/// \brief Pins the serving wire protocol's robustness contract: frames and
/// tables round-trip bit-exactly, every corrupt envelope decodes to a typed
/// error (never a crash, never an over-allocation), and a live daemon fed
/// garbage, truncated, or hostile-length frames keeps serving fresh
/// connections.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "serve/client.h"
#include "serve/plan_registry.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve_test_util.h"

namespace featlib {
namespace serve {
namespace {

using serve_test::ExpectTablesBitIdentical;
using serve_test::MakeBatch;
using serve_test::MakeTempDir;
using serve_test::WritePlanPair;

std::string SmallRequestFrame() {
  TransformRequest req;
  req.request_id = 7;
  req.plan = "demo";
  req.deadline_us = 1234;
  req.batch = MakeBatch(5, 3);
  return EncodeFrame(MessageType::kTransformRequest,
                     EncodeTransformRequest(req));
}

TEST(ServeProtocolTest, FrameRoundTripAndIncrementalDecode) {
  const std::string payload = "hello frames";
  const std::string wire = EncodeFrame(MessageType::kPing, payload);
  ASSERT_EQ(wire.size(), kFrameHeaderBytes + payload.size());

  // Byte-at-a-time arrival: every strict prefix is "need more", the full
  // buffer decodes, and trailing bytes of a following frame are untouched.
  for (size_t len = 0; len < wire.size(); ++len) {
    Frame frame;
    size_t consumed = 0;
    Status error;
    EXPECT_EQ(TryDecodeFrame(wire.substr(0, len), 0, &frame, &consumed, &error),
              DecodeOutcome::kNeedMore)
        << "prefix " << len;
  }
  const std::string two = wire + EncodeFrame(MessageType::kPong, "x");
  Frame frame;
  size_t consumed = 0;
  Status error;
  ASSERT_EQ(TryDecodeFrame(two, 0, &frame, &consumed, &error),
            DecodeOutcome::kFrame);
  EXPECT_EQ(frame.type, MessageType::kPing);
  EXPECT_EQ(frame.payload, payload);
  EXPECT_EQ(consumed, wire.size());
  ASSERT_EQ(TryDecodeFrame(two, consumed, &frame, &consumed, &error),
            DecodeOutcome::kFrame);
  EXPECT_EQ(frame.type, MessageType::kPong);
  EXPECT_EQ(frame.payload, "x");
}

TEST(ServeProtocolTest, CorruptEnvelopesAreTypedErrors) {
  const std::string good = EncodeFrame(MessageType::kPing, "payload");
  auto expect_corrupt = [](std::string wire, StatusCode code,
                           const std::string& what) {
    Frame frame;
    size_t consumed = 0;
    Status error;
    EXPECT_EQ(TryDecodeFrame(wire, 0, &frame, &consumed, &error),
              DecodeOutcome::kCorrupt)
        << what;
    EXPECT_EQ(error.code(), code) << what << ": " << error.ToString();
  };

  std::string bad = good;
  bad[0] = 'X';
  expect_corrupt(bad, StatusCode::kInvalidArgument, "bad magic");

  bad = good;
  bad[4] = static_cast<char>(kProtocolVersion + 1);
  expect_corrupt(bad, StatusCode::kInvalidArgument, "bad version");

  bad = good;
  bad[5] = 0;  // below the valid MessageType range
  expect_corrupt(bad, StatusCode::kInvalidArgument, "type underflow");
  bad[5] = static_cast<char>(200);
  expect_corrupt(bad, StatusCode::kInvalidArgument, "type overflow");

  bad = good;
  bad[6] = 1;  // reserved must be zero
  expect_corrupt(bad, StatusCode::kInvalidArgument, "reserved bytes");

  // A hostile length prefix is rejected from the header alone — before any
  // payload allocation — even though only 16 bytes arrived.
  bad = good.substr(0, kFrameHeaderBytes);
  const uint32_t huge = kMaxPayloadBytes + 1;
  std::memcpy(&bad[8], &huge, sizeof(huge));
  expect_corrupt(bad, StatusCode::kInvalidArgument, "oversized length");

  // Payload bit flip: the envelope is fine, the checksum catches it.
  bad = good;
  bad[kFrameHeaderBytes + 2] ^= 0x40;
  expect_corrupt(bad, StatusCode::kDataLoss, "payload bit flip");
}

TEST(ServeProtocolTest, BitFlipSweepNeverCrashes) {
  const std::string wire = SmallRequestFrame();
  for (size_t i = 0; i < wire.size(); ++i) {
    for (int bit : {0, 3, 7}) {
      std::string flipped = wire;
      flipped[i] = static_cast<char>(flipped[i] ^ (1u << bit));
      Frame frame;
      size_t consumed = 0;
      Status error;
      const DecodeOutcome outcome =
          TryDecodeFrame(flipped, 0, &frame, &consumed, &error);
      if (outcome == DecodeOutcome::kCorrupt) {
        EXPECT_FALSE(error.ok());
      } else if (outcome == DecodeOutcome::kFrame) {
        // A flip the CRC missed is impossible for single bits, but the
        // payload decoder must not rely on that: it is bounds-checked too.
        auto decoded = DecodeTransformRequest(frame.payload);
        (void)decoded;
      }
    }
  }
}

TEST(ServeProtocolTest, TableCodecRoundTripsBitExact) {
  Table table;
  Column d(DataType::kDouble), i(DataType::kInt64), b(DataType::kBool),
      t(DataType::kDatetime), s(DataType::kString);
  d.AppendDouble(1.5);
  d.AppendDouble(-0.0);
  d.AppendDouble(std::numeric_limits<double>::denorm_min());
  d.AppendNull();
  d.AppendDouble(-std::numeric_limits<double>::infinity());
  for (int64_t v : {int64_t{-1}, int64_t{1} << 62}) i.AppendInt(v);
  i.AppendNull();
  i.AppendInt(0);
  i.AppendInt(42);
  b.AppendInt(1);
  b.AppendInt(0);
  b.AppendNull();
  b.AppendInt(1);
  b.AppendInt(0);
  t.AppendInt(1700000000);
  t.AppendNull();
  t.AppendInt(0);
  t.AppendInt(-86400);
  t.AppendInt(1);
  // Dictionary in first-seen storage order; codes must survive verbatim
  // (AsDouble maps a string cell to its code).
  s.AppendString("b");
  s.AppendString("a");
  s.AppendNull();
  s.AppendString("b");
  s.AppendString("c");
  ASSERT_TRUE(table.AddColumn("d", std::move(d)).ok());
  ASSERT_TRUE(table.AddColumn("i", std::move(i)).ok());
  ASSERT_TRUE(table.AddColumn("b", std::move(b)).ok());
  ASSERT_TRUE(table.AddColumn("t", std::move(t)).ok());
  ASSERT_TRUE(table.AddColumn("s", std::move(s)).ok());

  const std::string wire = EncodeTable(table);
  size_t cursor = 0;
  auto decoded = DecodeTable(wire, &cursor);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(cursor, wire.size());

  const Table& got = decoded.value();
  ASSERT_EQ(got.num_rows(), table.num_rows());
  ASSERT_EQ(got.num_columns(), table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    EXPECT_EQ(got.NameAt(c), table.NameAt(c));
    EXPECT_EQ(got.ColumnAt(c).type(), table.ColumnAt(c).type());
  }
  // -0.0 survives as -0.0 (sign bit set), not canonicalized to +0.0.
  EXPECT_TRUE(std::signbit(got.ColumnAt(0).AsDouble(1)));
  // String codes verbatim: "b"=0, "a"=1, "c"=2 in first-seen order.
  EXPECT_EQ(got.ColumnAt(4).raw_codes()[0], 0);
  EXPECT_EQ(got.ColumnAt(4).raw_codes()[1], 1);
  EXPECT_EQ(got.ColumnAt(4).raw_codes()[4], 2);
  // The decoded table re-encodes to the exact same bytes.
  EXPECT_EQ(EncodeTable(got), wire);
}

TEST(ServeProtocolTest, MessageRoundTrips) {
  TransformRequest req;
  req.request_id = 99;
  req.plan = "fraud_v2";
  req.deadline_us = 250000;
  req.batch = MakeBatch(9, 21);
  auto req2 = DecodeTransformRequest(EncodeTransformRequest(req));
  ASSERT_TRUE(req2.ok()) << req2.status().ToString();
  EXPECT_EQ(req2.value().request_id, 99u);
  EXPECT_EQ(req2.value().plan, "fraud_v2");
  EXPECT_EQ(req2.value().deadline_us, 250000u);
  ExpectTablesBitIdentical(req2.value().batch, req.batch, "request batch");

  TransformResponse ok_resp;
  ok_resp.request_id = 99;
  ok_resp.status = Status::OK();
  ok_resp.table = MakeBatch(4, 8);
  auto ok2 = DecodeTransformResponse(EncodeTransformResponse(ok_resp));
  ASSERT_TRUE(ok2.ok()) << ok2.status().ToString();
  ExpectTablesBitIdentical(ok2.value().table, ok_resp.table, "response table");

  TransformResponse err_resp;
  err_resp.request_id = 100;
  err_resp.status = Status::DeadlineExceeded("too slow");
  auto err2 = DecodeTransformResponse(EncodeTransformResponse(err_resp));
  ASSERT_TRUE(err2.ok()) << err2.status().ToString();
  EXPECT_EQ(err2.value().status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(err2.value().status.message(), "too slow");

  PlanList list;
  list.plans.push_back({"alpha", true, 1024});
  list.plans.push_back({"beta", false, 0});
  auto list2 = DecodePlanList(EncodePlanList(list));
  ASSERT_TRUE(list2.ok());
  ASSERT_EQ(list2.value().plans.size(), 2u);
  EXPECT_EQ(list2.value().plans[0].name, "alpha");
  EXPECT_TRUE(list2.value().plans[0].loaded);
  EXPECT_EQ(list2.value().plans[1].warm_bytes, 0u);
}

TEST(ServeProtocolTest, TruncatedPayloadsDecodeToTypedErrors) {
  TransformRequest req;
  req.request_id = 5;
  req.plan = "p";
  req.batch = MakeBatch(6, 2);
  const std::string enc_req = EncodeTransformRequest(req);
  for (size_t len = 0; len < enc_req.size(); ++len) {
    auto decoded = DecodeTransformRequest(enc_req.substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix " << len << " decoded";
  }

  TransformResponse resp;
  resp.request_id = 5;
  resp.status = Status::OK();
  resp.table = MakeBatch(3, 4);
  const std::string enc_resp = EncodeTransformResponse(resp);
  for (size_t len = 0; len < enc_resp.size(); ++len) {
    auto decoded = DecodeTransformResponse(enc_resp.substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix " << len << " decoded";
  }
}

// ---- Live daemon robustness -------------------------------------------------

int RawConnect(const std::string& socket_path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

// Sends raw bytes, then reads until the server closes; returns what came
// back (empty if the server closed without a best-effort error frame).
std::string SendRawAndDrain(const std::string& socket_path,
                            const std::string& bytes) {
  const int fd = RawConnect(socket_path);
  EXPECT_EQ(::write(fd, bytes.data(), bytes.size()),
            static_cast<ssize_t>(bytes.size()));
  ::shutdown(fd, SHUT_WR);
  std::string reply;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    reply.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return reply;
}

TEST(ServeProtocolTest, DaemonSurvivesGarbageAndKeepsServing) {
  const std::string dir = MakeTempDir("feataug_proto_");
  ASSERT_FALSE(dir.empty());
  WritePlanPair(dir, "demo");

  PlanRegistry registry;
  size_t num_found = 0;
  ASSERT_TRUE(registry.DiscoverPlans(dir, &num_found).ok());
  ASSERT_EQ(num_found, 1u);

  ServerOptions options;
  options.unix_socket_path = dir + "/daemon.sock";
  Server server(&registry, options);
  ASSERT_TRUE(server.Start().ok());

  // (1) Plain garbage: not even a magic. Expect a typed kError frame (best
  // effort) and a clean close — never a crash.
  const std::string reply =
      SendRawAndDrain(options.unix_socket_path, "GET / HTTP/1.1\r\n\r\n");
  if (!reply.empty()) {
    Frame frame;
    size_t consumed = 0;
    Status error;
    ASSERT_EQ(TryDecodeFrame(reply, 0, &frame, &consumed, &error),
              DecodeOutcome::kFrame);
    EXPECT_EQ(frame.type, MessageType::kError);
    auto msg = DecodeErrorMessage(frame.payload);
    ASSERT_TRUE(msg.ok());
    EXPECT_FALSE(msg.value().message.empty());
  }

  // (2) Truncated frame: a valid header promising 100 payload bytes, then
  // the connection dies after 10. The reader must give up cleanly.
  {
    std::string partial = EncodeFrame(MessageType::kPing, std::string(100, 'p'));
    partial.resize(kFrameHeaderBytes + 10);
    SendRawAndDrain(options.unix_socket_path, partial);
  }

  // (3) Hostile length prefix: 512MB claimed. Rejected from the header —
  // the daemon must not try to allocate or read it.
  {
    std::string hostile = EncodeFrame(MessageType::kPing, "x");
    const uint32_t huge = 512u << 20;
    std::memcpy(&hostile[8], &huge, sizeof(huge));
    const std::string r = SendRawAndDrain(options.unix_socket_path, hostile);
    if (!r.empty()) {
      Frame frame;
      size_t consumed = 0;
      Status error;
      EXPECT_EQ(TryDecodeFrame(r, 0, &frame, &consumed, &error),
                DecodeOutcome::kFrame);
      EXPECT_EQ(frame.type, MessageType::kError);
    }
  }

  // (4) A bit-flipped payload on an otherwise valid frame.
  {
    std::string flipped = SmallRequestFrame();
    flipped[kFrameHeaderBytes + 3] ^= 0x10;
    SendRawAndDrain(options.unix_socket_path, flipped);
  }

  EXPECT_GE(server.num_protocol_errors(), 3u);

  // After all of that, a fresh connection still gets full service.
  auto client = ServeClient::ConnectUnix(options.unix_socket_path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE(client.value().Ping().ok());
  auto transformed = client.value().Transform("demo", MakeBatch(10, 17));
  ASSERT_TRUE(transformed.ok()) << transformed.status().ToString();
  EXPECT_GT(transformed.value().num_columns(), 3u);

  // Unknown plan fails that request only; the connection stays usable.
  auto unknown = client.value().Transform("nope", MakeBatch(2, 1));
  EXPECT_FALSE(unknown.ok());
  EXPECT_TRUE(client.value().Ping().ok());

  server.Shutdown();
}

}  // namespace
}  // namespace serve
}  // namespace featlib

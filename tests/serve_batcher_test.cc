/// \file serve_batcher_test.cc
/// \brief Pins the coalescing batcher: concurrent same-plan requests merge
/// into one fan-out whose per-slot results are byte-identical to direct
/// Transform calls, per-slot failures stay isolated, queue-expired
/// deadlines fail typed without poisoning siblings, and Shutdown delivers
/// every admitted callback before returning.

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/batcher.h"
#include "serve/protocol.h"
#include "serve_test_util.h"

namespace featlib {
namespace serve {
namespace {

using serve_test::MakeBatch;
using serve_test::MakeHandle;

/// Collects callback results and lets the test block until N arrived.
struct Collector {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Status> statuses;
  std::vector<Table> tables;

  Batcher::Callback Slot(size_t i) {
    return [this, i](Status status, Table table) {
      std::lock_guard<std::mutex> lock(mu);
      statuses[i] = std::move(status);
      tables[i] = std::move(table);
      cv.notify_all();
    };
  }

  void Resize(size_t n) {
    statuses.assign(n, Status::Internal("callback never ran"));
    tables.assign(n, Table());
  }

  void AwaitAll() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] {
      for (const Status& s : statuses) {
        if (s.message() == "callback never ran") return false;
      }
      return true;
    });
  }
};

Batcher::Request MakeRequest(std::shared_ptr<const FittedAugmenter> handle,
                             Table batch, Batcher::Callback done) {
  Batcher::Request request;
  request.handle = std::move(handle);
  request.batch = std::move(batch);
  request.done = std::move(done);
  return request;
}

TEST(ServeBatcherTest, CoalescesIntoOneByteIdenticalFanOut) {
  auto handle = MakeHandle();
  ASSERT_NE(handle, nullptr);

  const std::vector<Table> batches = {MakeBatch(20, 1), MakeBatch(15, 2),
                                      MakeBatch(25, 3), MakeBatch(10, 4)};
  std::vector<std::string> reference;
  for (const Table& batch : batches) {
    auto direct = handle->Transform(batch);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    reference.push_back(EncodeTable(direct.value()));
  }

  // A wide-open window guarantees all four requests land in one group.
  BatcherOptions options;
  options.max_batch_size = 16;
  options.max_delay_us = 200 * 1000;
  options.num_workers = 2;
  Batcher batcher(options);

  Collector collector;
  collector.Resize(batches.size());
  for (size_t i = 0; i < batches.size(); ++i) {
    ASSERT_TRUE(
        batcher.Submit("plan", MakeRequest(handle, batches[i],
                                           collector.Slot(i)))
            .ok());
  }
  collector.AwaitAll();

  EXPECT_EQ(batcher.num_requests(), batches.size());
  EXPECT_EQ(batcher.num_flushes(), 1u);
  EXPECT_EQ(batcher.num_coalesced_flushes(), 1u);
  EXPECT_EQ(batcher.max_flush_size(), batches.size());
  for (size_t i = 0; i < batches.size(); ++i) {
    ASSERT_TRUE(collector.statuses[i].ok())
        << i << ": " << collector.statuses[i].ToString();
    EXPECT_EQ(EncodeTable(collector.tables[i]), reference[i])
        << "slot " << i << " not byte-identical";
  }
  batcher.Shutdown();
}

TEST(ServeBatcherTest, FullGroupFlushesWithoutWaitingForTheWindow) {
  auto handle = MakeHandle();
  BatcherOptions options;
  options.max_batch_size = 2;
  options.max_delay_us = 60 * 1000 * 1000;  // would stall a minute if waited
  Batcher batcher(options);

  Collector collector;
  collector.Resize(2);
  ASSERT_TRUE(batcher
                  .Submit("plan", MakeRequest(handle, MakeBatch(5, 1),
                                              collector.Slot(0)))
                  .ok());
  ASSERT_TRUE(batcher
                  .Submit("plan", MakeRequest(handle, MakeBatch(5, 2),
                                              collector.Slot(1)))
                  .ok());
  collector.AwaitAll();
  EXPECT_TRUE(collector.statuses[0].ok());
  EXPECT_TRUE(collector.statuses[1].ok());
  EXPECT_EQ(batcher.max_flush_size(), 2u);
  batcher.Shutdown();
}

TEST(ServeBatcherTest, PerSlotFailureIsIsolated) {
  auto handle = MakeHandle();
  Table bad;  // missing the join-key columns -> that slot fails
  Column c(DataType::kInt64);
  c.AppendInt(1);
  ASSERT_TRUE(bad.AddColumn("unrelated", std::move(c)).ok());

  const Table good = MakeBatch(12, 9);
  auto direct = handle->Transform(good);
  ASSERT_TRUE(direct.ok());

  BatcherOptions options;
  options.max_delay_us = 100 * 1000;
  Batcher batcher(options);
  Collector collector;
  collector.Resize(3);
  ASSERT_TRUE(batcher
                  .Submit("plan",
                          MakeRequest(handle, good, collector.Slot(0)))
                  .ok());
  ASSERT_TRUE(
      batcher.Submit("plan", MakeRequest(handle, bad, collector.Slot(1)))
          .ok());
  ASSERT_TRUE(batcher
                  .Submit("plan",
                          MakeRequest(handle, good, collector.Slot(2)))
                  .ok());
  collector.AwaitAll();

  EXPECT_TRUE(collector.statuses[0].ok());
  EXPECT_FALSE(collector.statuses[1].ok());
  EXPECT_TRUE(collector.statuses[2].ok());
  EXPECT_EQ(EncodeTable(collector.tables[0]), EncodeTable(direct.value()));
  EXPECT_EQ(EncodeTable(collector.tables[2]), EncodeTable(direct.value()));
  batcher.Shutdown();
}

TEST(ServeBatcherTest, QueueExpiredDeadlineFailsTypedWithoutPoisoningSiblings) {
  auto handle = MakeHandle();
  BatcherOptions options;
  options.max_delay_us = 30 * 1000;
  Batcher batcher(options);

  Collector collector;
  collector.Resize(2);
  // Already expired on arrival: must fail kDeadlineExceeded before any
  // work, and must not take the sibling (which has no deadline) with it.
  Batcher::Request expired =
      MakeRequest(handle, MakeBatch(8, 5), collector.Slot(0));
  expired.deadline = Batcher::Clock::now() - std::chrono::milliseconds(5);
  ASSERT_TRUE(batcher.Submit("plan", std::move(expired)).ok());
  ASSERT_TRUE(batcher
                  .Submit("plan", MakeRequest(handle, MakeBatch(8, 6),
                                              collector.Slot(1)))
                  .ok());
  collector.AwaitAll();

  EXPECT_EQ(collector.statuses[0].code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(collector.statuses[1].ok())
      << collector.statuses[1].ToString();
  batcher.Shutdown();
}

TEST(ServeBatcherTest, ShutdownDrainsAdmittedRequestsThenRefuses) {
  auto handle = MakeHandle();
  BatcherOptions options;
  options.max_delay_us = 60 * 1000 * 1000;  // window far in the future
  Batcher batcher(options);

  Collector collector;
  collector.Resize(3);
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(batcher
                    .Submit("plan", MakeRequest(handle, MakeBatch(6, i + 1),
                                                collector.Slot(i)))
                    .ok());
  }
  // Shutdown must flush the pending group despite its distant window and
  // deliver all three callbacks before returning.
  batcher.Shutdown();
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(collector.statuses[i].ok())
        << i << ": " << collector.statuses[i].ToString();
  }

  Status refused = batcher.Submit(
      "plan", MakeRequest(handle, MakeBatch(2, 9), collector.Slot(0)));
  EXPECT_EQ(refused.code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace serve
}  // namespace featlib

/// \file executor_parallel_test.cc
/// \brief Pins the parallel EvaluateMany contract: byte-identical columns at
/// every thread count (against the recorded goldens), the COUNT(*)
/// no-value-view path, the eviction pinning of in-batch store entries, and
/// the ThreadPool contract (chunk-claimed fan-out + staged scheduling).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "golden_util.h"
#include "query/executor.h"
#include "query/query_planner.h"
#include "query/sql_parser.h"

namespace featlib {
namespace {

using golden::SameBits;

void ExpectColumnsBitIdentical(const std::vector<double>& actual,
                               const std::vector<double>& expected,
                               const std::string& context) {
  ASSERT_EQ(actual.size(), expected.size()) << context;
  for (size_t i = 0; i < actual.size(); ++i) {
    ASSERT_TRUE(SameBits(actual[i], expected[i]))
        << context << " row " << i << ": actual=" << actual[i]
        << " expected=" << expected[i];
  }
}

// Random (relevant, training) pair: compound keys, NULL-heavy values,
// predicate attributes — the same shape executor_golden_test uses. The Rng
// consumption order is part of the golden contract.
struct RandomPair {
  Table relevant;
  Table training;
};

RandomPair MakeRandomPair(Rng* rng) {
  const char* cities[] = {"ber", "nyc", "sfo", "tok"};
  const char* depts[] = {"a", "b", "c"};

  RandomPair out;
  const size_t n_rel = 80 + rng->UniformInt(120);
  Column uid(DataType::kInt64), city(DataType::kString);
  Column value(DataType::kDouble), level(DataType::kInt64), dept(DataType::kString);
  for (size_t i = 0; i < n_rel; ++i) {
    if (rng->Bernoulli(0.05)) {
      uid.AppendNull();
    } else {
      uid.AppendInt(static_cast<int64_t>(rng->UniformInt(10)));
    }
    city.AppendString(cities[rng->UniformInt(4)]);
    if (rng->Bernoulli(0.3)) {
      value.AppendNull();
    } else {
      value.AppendDouble(rng->Normal(0, 10));
    }
    level.AppendInt(static_cast<int64_t>(rng->UniformInt(5)));
    dept.AppendString(depts[rng->UniformInt(3)]);
  }
  EXPECT_TRUE(out.relevant.AddColumn("uid", std::move(uid)).ok());
  EXPECT_TRUE(out.relevant.AddColumn("city", std::move(city)).ok());
  EXPECT_TRUE(out.relevant.AddColumn("value", std::move(value)).ok());
  EXPECT_TRUE(out.relevant.AddColumn("level", std::move(level)).ok());
  EXPECT_TRUE(out.relevant.AddColumn("dept", std::move(dept)).ok());

  const size_t n_train = 40 + rng->UniformInt(30);
  Column d_uid(DataType::kInt64), d_city(DataType::kString);
  for (size_t i = 0; i < n_train; ++i) {
    if (rng->Bernoulli(0.05)) {
      d_uid.AppendNull();
    } else {
      d_uid.AppendInt(static_cast<int64_t>(rng->UniformInt(12)));
    }
    d_city.AppendString(cities[rng->UniformInt(4)]);
  }
  EXPECT_TRUE(out.training.AddColumn("uid", std::move(d_uid)).ok());
  EXPECT_TRUE(out.training.AddColumn("city", std::move(d_city)).ok());
  return out;
}

// A template-shaped pool: every agg function crossed with predicate combos
// (none / single / conjunction / empty selection), plus COUNT(*) variants.
std::vector<AggQuery> MakeCandidatePool() {
  std::vector<std::vector<Predicate>> pred_sets;
  pred_sets.push_back({});
  pred_sets.push_back({Predicate::Equals("dept", Value::Str("a"))});
  pred_sets.push_back({Predicate::Equals("dept", Value::Str("b")),
                       Predicate::Range("level", std::nullopt, 3.0)});
  pred_sets.push_back({Predicate::Equals("dept", Value::Str("zz"))});  // empty

  std::vector<AggQuery> out;
  for (const auto& preds : pred_sets) {
    for (AggFunction fn : AllAggFunctions()) {
      AggQuery q;
      q.agg = fn;
      q.agg_attr = "value";
      q.group_keys = {"uid"};
      q.predicates = preds;
      out.push_back(std::move(q));
    }
    AggQuery count_star;
    count_star.agg = AggFunction::kCount;
    count_star.group_keys = {"uid", "city"};
    count_star.predicates = preds;
    out.push_back(std::move(count_star));
  }
  return out;
}

// --- Determinism across thread counts, pinned to the recorded goldens -------

TEST(ExecutorParallelTest, EvaluateManyMatchesGoldensAtEveryThreadCount) {
  golden::GoldenFile goldens("parallel_pool_columns.golden");
  Rng rng(501);
  const RandomPair tables = MakeRandomPair(&rng);
  const std::vector<AggQuery> queries = MakeCandidatePool();

  // The serial run records (or is checked against) the goldens; every
  // parallel-prepare run must reproduce its bytes exactly.
  QueryPlanner serial;
  auto reference = serial.EvaluateMany(queries, tables.training, tables.relevant);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_EQ(reference.value().size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    goldens.Check("q" + std::to_string(i),
                  golden::EncodeColumn(reference.value()[i]));
  }

  for (const int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    ASSERT_EQ(pool.num_threads(), threads);
    QueryPlanner planner;
    planner.set_thread_pool(&pool);
    auto many = planner.EvaluateMany(queries, tables.training, tables.relevant);
    ASSERT_TRUE(many.ok()) << many.status().ToString();
    ASSERT_EQ(many.value().size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      ExpectColumnsBitIdentical(many.value()[i], reference.value()[i],
                                std::to_string(threads) + " threads, " +
                                    queries[i].CacheKey());
      goldens.Check("q" + std::to_string(i),
                    golden::EncodeColumn(many.value()[i]));
    }
  }
}

TEST(ExecutorParallelTest, RepeatedParallelRunsAreDeterministic) {
  Rng rng(733);
  const RandomPair tables = MakeRandomPair(&rng);
  const std::vector<AggQuery> queries = MakeCandidatePool();

  ThreadPool pool(8);
  QueryPlanner first_planner;
  first_planner.set_thread_pool(&pool);
  auto first =
      first_planner.EvaluateMany(queries, tables.training, tables.relevant);
  ASSERT_TRUE(first.ok());
  for (int repeat = 0; repeat < 3; ++repeat) {
    QueryPlanner planner;
    planner.set_thread_pool(&pool);
    auto again = planner.EvaluateMany(queries, tables.training, tables.relevant);
    ASSERT_TRUE(again.ok());
    for (size_t i = 0; i < queries.size(); ++i) {
      ExpectColumnsBitIdentical(again.value()[i], first.value()[i],
                                "repeat " + std::to_string(repeat));
    }
  }
}

// --- COUNT(*) ----------------------------------------------------------------

TEST(ExecutorParallelTest, CountStarCountsAllSelectedRows) {
  Table relevant;
  ASSERT_TRUE(relevant
                  .AddColumn("k", Column::FromDoubles({1.0, 1.0, 1.0, 2.0, 2.0}))
                  .ok());
  Column v(DataType::kDouble);
  v.AppendDouble(10.0);
  v.AppendNull();  // COUNT(value) skips this row, COUNT(*) keeps it
  v.AppendDouble(30.0);
  v.AppendNull();
  v.AppendNull();
  ASSERT_TRUE(relevant.AddColumn("value", std::move(v)).ok());
  Table training;
  ASSERT_TRUE(training.AddColumn("k", Column::FromDoubles({1.0, 2.0, 3.0})).ok());

  AggQuery count_star;
  count_star.agg = AggFunction::kCount;
  count_star.group_keys = {"k"};
  auto counts = ComputeFeatureColumn(count_star, training, relevant);
  ASSERT_TRUE(counts.ok()) << counts.status().ToString();
  EXPECT_DOUBLE_EQ(counts.value()[0], 3.0);  // nulls counted
  EXPECT_DOUBLE_EQ(counts.value()[1], 2.0);
  EXPECT_TRUE(std::isnan(counts.value()[2]));  // entity absent from R

  // COUNT(value) counts non-null cells only: 2 and 0 — distinct from above.
  AggQuery count_value = count_star;
  count_value.agg_attr = "value";
  auto value_counts = ComputeFeatureColumn(count_value, training, relevant);
  ASSERT_TRUE(value_counts.ok());
  EXPECT_DOUBLE_EQ(value_counts.value()[0], 2.0);
  EXPECT_DOUBLE_EQ(value_counts.value()[1], 0.0);

  // COUNT(*) is the only attribute-less form.
  AggQuery sum_star;
  sum_star.agg = AggFunction::kSum;
  sum_star.group_keys = {"k"};
  EXPECT_FALSE(ComputeFeatureColumn(sum_star, training, relevant).ok());

  // The COUNT(*) rendering round-trips through the SQL parser.
  const std::string sql = count_star.ToSql("relevant", relevant);
  EXPECT_NE(sql.find("COUNT(*)"), std::string::npos) << sql;
  auto parsed = ParseAggQuerySql(sql);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().query.CacheKey(), count_star.CacheKey());
  EXPECT_FALSE(ParseAggQuerySql("SELECT k, SUM(*) AS feature FROM r GROUP BY k")
                   .ok());
}

// --- Eviction pinning --------------------------------------------------------

TEST(ExecutorParallelTest, BatchPinnedStoreEntriesSurviveTinyCap) {
  Rng rng(42);
  const RandomPair tables = MakeRandomPair(&rng);
  const std::vector<AggQuery> queries = MakeCandidatePool();

  QueryPlanner planner;
  // A cap below a single mask's footprint: every publish would previously
  // mass-evict the whole shard, invalidating masks the in-flight batch still
  // references. Pinning keeps current-batch entries alive instead.
  planner.set_mask_cache_cap_bytes(1);
  planner.set_mat_cache_cap_bytes(1);
  auto many = planner.EvaluateMany(queries, tables.training, tables.relevant);
  ASSERT_TRUE(many.ok()) << many.status().ToString();
  // Nothing is evictable mid-batch — all entries belong to the current one.
  EXPECT_EQ(planner.num_evictions(), 0u);
  for (size_t i = 0; i < queries.size(); ++i) {
    // Cache-free per-candidate evaluation is the correctness reference.
    QueryPlanner fresh;
    auto expected =
        fresh.ComputeFeatureColumn(queries[i], tables.training, tables.relevant);
    ASSERT_TRUE(expected.ok());
    ExpectColumnsBitIdentical(many.value()[i], expected.value(),
                              queries[i].CacheKey());
  }

  // A second batch over *different* predicates unpins the first batch's
  // entries; the over-cap shards now evict them (and only them).
  std::vector<AggQuery> second;
  for (AggFunction fn : AllAggFunctions()) {
    AggQuery q;
    q.agg = fn;
    q.agg_attr = "value";
    q.group_keys = {"uid"};
    q.predicates = {Predicate::Range("level", 1.0, 4.0)};
    second.push_back(std::move(q));
  }
  auto second_result =
      planner.EvaluateMany(second, tables.training, tables.relevant);
  ASSERT_TRUE(second_result.ok()) << second_result.status().ToString();
  EXPECT_GT(planner.num_evictions(), 0u);
  for (size_t i = 0; i < second.size(); ++i) {
    QueryPlanner fresh;
    auto expected =
        fresh.ComputeFeatureColumn(second[i], tables.training, tables.relevant);
    ASSERT_TRUE(expected.ok());
    ExpectColumnsBitIdentical(second_result.value()[i], expected.value(),
                              second[i].CacheKey());
  }
}

// --- ThreadPool contract -----------------------------------------------------

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, ChunkClaimingCoversEveryIndexAtEveryChunkSize) {
  ThreadPool pool(4);
  constexpr size_t kN = 1003;  // not a multiple of any chunk size below
  for (const size_t chunk : {size_t{1}, size_t{3}, size_t{16}, size_t{64},
                             size_t{500}, size_t{5000}}) {
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(
        kN, [&](size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); },
        chunk);
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "chunk=" << chunk << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, HandlesEdgeSizesAndSerialPool) {
  ThreadPool serial(1);
  EXPECT_EQ(serial.num_threads(), 1);
  std::atomic<size_t> count{0};
  serial.ParallelFor(0, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0u);
  serial.ParallelFor(5, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 5u);

  ThreadPool pool(8);
  count.store(0);
  pool.ParallelFor(1, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1u);
  // Many small jobs in sequence: exercises the job-id handshake.
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(3, [&](size_t) { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 1u + 150u);
}

TEST(ThreadPoolTest, TaskFailureReturnsStatusAndSiblingsStillComplete) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  const Status status = pool.ParallelFor(100, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
    if (i == 13) throw std::runtime_error("boom");
  });
  // Failure = Status, not poison: the first exception is surfaced as
  // kInternal with the what() text...
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.ToString().find("boom"), std::string::npos)
      << status.ToString();
  // ...and every sibling index still ran exactly once.
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
  // The failed job is fully drained: the pool accepts later batches.
  std::atomic<size_t> count{0};
  ASSERT_TRUE(pool.ParallelFor(50, [&](size_t) { count.fetch_add(1); }).ok());
  EXPECT_EQ(count.load(), 50u);

  // The serial path mirrors the contract byte for byte.
  ThreadPool serial(1);
  std::atomic<size_t> serial_hits{0};
  const Status serial_status = serial.ParallelFor(10, [&](size_t i) {
    serial_hits.fetch_add(1);
    if (i == 3) throw std::runtime_error("serial boom");
  });
  ASSERT_FALSE(serial_status.ok());
  EXPECT_EQ(serial_status.code(), StatusCode::kInternal);
  EXPECT_EQ(serial_hits.load(), 10u);
}

TEST(ThreadPoolTest, ParallelForStagesPublishesBetweenStages) {
  ThreadPool pool(4);
  constexpr size_t kN = 64;
  std::vector<int> built_a(kN, 0);
  std::atomic<int> published_a{0};
  std::vector<int> observed_publish(kN, 0);
  std::vector<ThreadPool::Stage> stages;
  stages.push_back({kN, [&](size_t i) { built_a[i] = 1; },
                    [&] {
                      // Barrier: every stage-A task write is visible here.
                      int sum = 0;
                      for (int v : built_a) sum += v;
                      published_a.store(sum);
                    }});
  stages.push_back({kN,
                    [&](size_t i) {
                      // Stage B tasks observe stage A fully built+published.
                      observed_publish[i] = published_a.load();
                    },
                    nullptr});
  pool.ParallelForStages(stages);
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(observed_publish[i], static_cast<int>(kN)) << i;
  }
}

}  // namespace
}  // namespace featlib

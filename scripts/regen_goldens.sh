#!/usr/bin/env bash
# Regenerates the recorded-golden fixtures under tests/golden/ from the
# current engine.
#
# The goldens froze the outputs of the legacy per-candidate executor (they
# were recorded while the batched path was still pinned bit-identical to it)
# and now serve as the oracle for the planner path. Regenerate them ONLY
# after an intentional output change, and review the fixture diff like code:
# an unexplained diff is a correctness regression, not noise.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc)"

cmake -B "$ROOT/build" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$ROOT/build" -j "$JOBS" \
  --target executor_golden_test executor_parallel_test

mkdir -p "$ROOT/tests/golden"
FEATLIB_REGEN_GOLDENS=1 "$ROOT/build/executor_golden_test"
FEATLIB_REGEN_GOLDENS=1 "$ROOT/build/executor_parallel_test"

# Verify the freshly written fixtures round-trip in check mode.
"$ROOT/build/executor_golden_test"
"$ROOT/build/executor_parallel_test"

echo "regen_goldens.sh: fixtures rewritten under tests/golden/ — review the diff"

#!/usr/bin/env bash
# CI entry point: Release build + full ctest suite, then a ThreadSanitizer
# build of the concurrency tests. The planner's parallel prepare
# (build-then-publish into the ArtifactStore) and the EvaluateMany fan-out
# are the multi-threaded code; TSan pins the "no locks needed" design of
# both phases.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc)"

# ---- Release: build everything, run the whole suite ------------------------
cmake -B "$ROOT/build" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$ROOT/build" -j "$JOBS"
ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS"

# ---- TSan: planner / artifact-store / executor concurrency tests ------------
# (Benches/examples are skipped: TSan only needs the threaded paths, and the
# instrumented build is slow.)
TSAN_TESTS=(
  executor_golden_test
  executor_parallel_test
  query_planner_test
  artifact_store_test
)
cmake -B "$ROOT/build-tsan" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFEATLIB_SANITIZE=thread \
  -DFEATLIB_BUILD_BENCHES=OFF \
  -DFEATLIB_BUILD_EXAMPLES=OFF
cmake --build "$ROOT/build-tsan" -j "$JOBS" --target "${TSAN_TESTS[@]}"
for test in "${TSAN_TESTS[@]}"; do
  "$ROOT/build-tsan/$test"
done

echo "ci.sh: all green"

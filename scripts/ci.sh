#!/usr/bin/env bash
# CI entry point: Release build + full ctest suite, then a ThreadSanitizer
# build of the concurrency tests. The planner's parallel prepare
# (build-then-publish into the ArtifactStore), the EvaluateMany fan-out, and
# concurrent FittedAugmenter::Transform on one shared serving handle are the
# multi-threaded code; TSan pins the "no locks needed" design of all three.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc)"

# ---- Release: build everything, run the whole suite ------------------------
cmake -B "$ROOT/build" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$ROOT/build" -j "$JOBS"
ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS"

# ---- Kernel-backend pinning: goldens + parity under scalar and simd --------
# (Backend choice is a pure performance knob: the recorded goldens and the
# dispatch parity sweep must pass byte-identically with either table pinned
# via the env var. On hosts without a vector ISA "simd" resolves to the
# run-decoded scalar loops, so the pinned runs stay meaningful everywhere.)
for backend in scalar simd; do
  echo "ci.sh: golden + parity suite under FEATLIB_KERNEL_BACKEND=$backend"
  FEATLIB_KERNEL_BACKEND="$backend" ctest --test-dir "$ROOT/build" \
    --output-on-failure -j "$JOBS" \
    -R 'executor_golden_test|executor_parallel_test|kernel_dispatch_test|serving_concurrency_test'
done

# ---- Bench record: serving warm-vs-cold + the search-pipeline comparison ---
# (bench_micro writes BENCH_executor.json at the repo root; the record
# carries the transform_warm_vs_cold fields of the FittedAugmenter path, the
# search_batched_* fields of the batched suggest -> pooled evaluate ->
# observe-all pipeline, and the plan_compile_* fields of the repeated-pool
# compile-memoization workload. It fails on any output divergence.)
if [[ -x "$ROOT/build/bench_micro" ]]; then
  "$ROOT/build/bench_micro" --benchmark_filter='BM_TransformWarmVsCold' \
    >/dev/null
  [[ -f "$ROOT/BENCH_executor.json" ]] || {
    echo "ci.sh: BENCH_executor.json was not produced" >&2
    exit 1
  }
  for field in transform_warm_vs_cold search_sequential_seconds \
               search_batched_seconds search_batched_speedup \
               plan_compile_hit_rate exec_context_overhead \
               checkpoint_off_seconds checkpoint_on_seconds \
               checkpoint_overhead checkpoint_plan_identical \
               kernel_scalar_seconds kernel_simd_seconds \
               kernel_simd_speedup kernel_dispatch_level \
               kernel_simd_bit_identical \
               morsel_peak_bytes morsel_single_pass_peak_bytes \
               morsel_bit_identical morsel_prefetch_speedup; do
    grep -q "\"$field\"" "$ROOT/BENCH_executor.json" || {
      echo "ci.sh: $field missing from BENCH_executor.json" >&2
      exit 1
    }
  done
  # The cooperative ExecContext checks must stay free when no limit is set,
  # and durable fit (atomic snapshot writes at round boundaries) must stay
  # within noise of an uncheckpointed fit: gate both ratios at < 1.02 (2%).
  # The durable fit's plan must also be byte-identical to the plain fit's.
  python3 - "$ROOT/BENCH_executor.json" <<'EOF'
import json, sys
record = json.load(open(sys.argv[1]))
for field in ("exec_context_overhead", "checkpoint_overhead"):
    overhead = record[field]
    if overhead >= 1.02:
        sys.exit(f"ci.sh: {field} {overhead:.4f} >= 1.02")
    print(f"ci.sh: {field} {overhead:.4f} (< 1.02)")
if not record["checkpoint_plan_identical"]:
    sys.exit("ci.sh: durable fit's plan diverged from the plain fit's")
# Kernel backend: the simd table must be byte-identical to the scalar
# oracle on the composite dense-mask workload, and on hosts where a vector
# ISA engaged it must actually pay (>= 1.5x on the composite; ISA-less
# hosts run the same run-decoded loops on both sides, so only identity is
# gated there).
if not record["kernel_simd_bit_identical"]:
    sys.exit("ci.sh: simd kernel outputs diverged from the scalar oracle")
level = record["kernel_dispatch_level"]
speedup = record["kernel_simd_speedup"]
if level != "scalar" and speedup < 1.5:
    sys.exit(f"ci.sh: kernel_simd_speedup {speedup:.2f} < 1.5 at level {level}")
print(f"ci.sh: kernel_simd_speedup {speedup:.2f} at level {level} (bit-identical)")
# Out-of-core morsel execution: every streamed column must be byte-identical
# to the single pass, and the bounded pipeline's peak artifact memory on the
# 10x table must stay under half the whole-table peak (~2 in-flight morsels
# + per-group state vs full-table artifacts). The prefetch overlap is
# recorded, not gated: on a single-core host it is legitimately ~1.0.
if not record["morsel_bit_identical"]:
    sys.exit("ci.sh: morsel-streamed columns diverged from the single pass")
peak = record["morsel_peak_bytes"]
single = record["morsel_single_pass_peak_bytes"]
if single <= 0:
    sys.exit("ci.sh: morsel_single_pass_peak_bytes not measured")
ratio = peak / single
if ratio >= 0.5:
    sys.exit(f"ci.sh: morsel peak ratio {ratio:.3f} >= 0.5 "
             f"({peak:.0f} / {single:.0f} bytes)")
print(f"ci.sh: morsel peak {peak/1e6:.2f}MB vs single-pass {single/1e6:.2f}MB "
      f"(ratio {ratio:.3f} < 0.5), prefetch speedup "
      f"{record['morsel_prefetch_speedup']:.2f}x (bit-identical)")
EOF
else
  echo "ci.sh: bench_micro not built (google-benchmark missing?)" >&2
  exit 1
fi

# ---- Serving daemon smoke: socket round-trip latency + byte identity --------
# (bench_serve stands up a live daemon on a unix socket, drives concurrent
# client connections through the framing/registry/batcher stack, and merges
# serve_p50/p99/throughput plus the byte-identity verdict into the record
# bench_micro just wrote. Byte identity — every socket response equal to
# direct in-process TransformMany — is the serving contract and is gated.)
if [[ -x "$ROOT/build/bench_serve" ]]; then
  "$ROOT/build/bench_serve" --out="$ROOT/BENCH_executor.json"
  for field in serve_p50_seconds serve_p99_seconds serve_throughput_rps \
               serve_bit_identical serve_coalesced_flushes; do
    grep -q "\"$field\"" "$ROOT/BENCH_executor.json" || {
      echo "ci.sh: $field missing from BENCH_executor.json" >&2
      exit 1
    }
  done
  python3 - "$ROOT/BENCH_executor.json" <<'EOF'
import json, sys
record = json.load(open(sys.argv[1]))
if not record["serve_bit_identical"]:
    sys.exit("ci.sh: daemon responses diverged from in-process TransformMany")
if record["serve_coalesced_flushes"] < 1:
    sys.exit("ci.sh: the batcher never coalesced concurrent requests")
print(f"ci.sh: serve p50 {record['serve_p50_seconds']*1e3:.3f}ms "
      f"p99 {record['serve_p99_seconds']*1e3:.3f}ms "
      f"{record['serve_throughput_rps']:.0f} req/s (bit-identical)")
EOF
else
  echo "ci.sh: bench_serve not built" >&2
  exit 1
fi

# ---- Fault-injection sweep: randomized seeds, typed-Status invariant --------
# (fault_sweep_test runs EnableRandom(seed, p) sweeps: every injected fault
# must surface as a clean typed Status and every surviving slot must be
# byte-identical to an uninjected run. Seeds rotate with the date so CI
# coverage accumulates across runs while any one run stays reproducible from
# its printed seed.)
FAULT_BASE_SEED="${FEATLIB_FAULT_SEED:-$(( $(date +%s) / 86400 * 16 ))}"
echo "ci.sh: fault sweep base seed $FAULT_BASE_SEED"
FEATLIB_FAULT_SEED="$FAULT_BASE_SEED" \
FEATLIB_FAULT_SWEEP_SEEDS="${FEATLIB_FAULT_SWEEP_SEEDS:-16}" \
FEATLIB_FAULT_PROB="${FEATLIB_FAULT_PROB:-0.08}" \
  "$ROOT/build/fault_sweep_test"

# ---- Kill-resume sweep: durable fit crash-safety invariant ------------------
# (checkpoint_sweep_test kills a checkpointed fit at injected crash points
# (checkpoint round boundaries), resumes from whatever the dying run left on
# disk, and requires the resumed plan to be byte-identical to an
# uninterrupted run's. The rotation offset follows the date — day N starts
# the kill-point rotation at a different boundary than day N+1 — so CI
# coverage accumulates across the whole boundary space while any one run
# stays reproducible from its printed offset.)
KILL_OFFSET="${FEATLIB_KILL_OFFSET:-$(( $(date +%s) / 86400 ))}"
echo "ci.sh: kill-resume sweep rotation offset $KILL_OFFSET"
FEATLIB_FAULT_SEED="$KILL_OFFSET" \
FEATLIB_KILL_POINTS="${FEATLIB_KILL_POINTS:-6}" \
  "$ROOT/build/checkpoint_sweep_test"

# ---- ASan+UBSan: full suite under address + undefined sanitizers ------------
# (The fault-tolerance paths exercise error unwinding through every layer;
# ASan/UBSan verifies no leak, use-after-free, or UB hides in the unwind or
# in the publish-skipping cancellation paths.)
cmake -B "$ROOT/build-asan" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFEATLIB_SANITIZE=asan-ubsan \
  -DFEATLIB_BUILD_BENCHES=OFF \
  -DFEATLIB_BUILD_EXAMPLES=OFF
cmake --build "$ROOT/build-asan" -j "$JOBS"
ctest --test-dir "$ROOT/build-asan" --output-on-failure -j "$JOBS"
# The vectorized kernels do word-granular loads/stores around mask tails
# and aligned flat buffers; pin both backends under ASan/UBSan so an
# out-of-bounds lane or misaligned assumption cannot hide behind dispatch.
for backend in scalar simd; do
  FEATLIB_KERNEL_BACKEND="$backend" "$ROOT/build-asan/kernel_dispatch_test"
  FEATLIB_KERNEL_BACKEND="$backend" "$ROOT/build-asan/executor_golden_test"
done

# ---- TSan: planner / store / executor / serving concurrency tests ----------
# (Benches/examples are skipped: TSan only needs the threaded paths, and the
# instrumented build is slow. generator_test and search_session_test drive
# the batched search pipeline end to end — SuggestBatch pools through
# FeatureEvaluator::Features into the parallel EvaluateMany prepare/fan-out —
# so they pin the pipeline's thread-safety claims too. checkpoint_test
# exercises the async CheckpointWriter: fit-thread enqueue vs background
# writer vs destructor drain. The serve_* tests cover the daemon stack:
# registry load/evict/pin races, batcher coalescing + drain, and the full
# socket path with 8 concurrent connections and a SIGTERM drain.
# morsel_test pins the out-of-core pipeline: the AsyncStage prefetch thread
# writing morsel i+1 while the pool's combine fan-out reads morsel i.)
TSAN_TESTS=(
  executor_golden_test
  executor_parallel_test
  morsel_test
  query_planner_test
  artifact_store_test
  serving_concurrency_test
  generator_test
  search_session_test
  checkpoint_test
  plan_registry_test
  serve_batcher_test
  serve_daemon_test
)
cmake -B "$ROOT/build-tsan" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFEATLIB_SANITIZE=thread \
  -DFEATLIB_BUILD_BENCHES=OFF \
  -DFEATLIB_BUILD_EXAMPLES=OFF
cmake --build "$ROOT/build-tsan" -j "$JOBS" --target "${TSAN_TESTS[@]}"
for test in "${TSAN_TESTS[@]}"; do
  "$ROOT/build-tsan/$test"
done

echo "ci.sh: all green"

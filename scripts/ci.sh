#!/usr/bin/env bash
# CI entry point: Release build + full ctest suite, then a ThreadSanitizer
# build of the concurrency tests. The planner's parallel prepare
# (build-then-publish into the ArtifactStore), the EvaluateMany fan-out, and
# concurrent FittedAugmenter::Transform on one shared serving handle are the
# multi-threaded code; TSan pins the "no locks needed" design of all three.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc)"

# ---- Release: build everything, run the whole suite ------------------------
cmake -B "$ROOT/build" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$ROOT/build" -j "$JOBS"
ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS"

# ---- Bench record: serving warm-vs-cold + the search-pipeline comparison ---
# (bench_micro writes BENCH_executor.json at the repo root; the record
# carries the transform_warm_vs_cold fields of the FittedAugmenter path, the
# search_batched_* fields of the batched suggest -> pooled evaluate ->
# observe-all pipeline, and the plan_compile_* fields of the repeated-pool
# compile-memoization workload. It fails on any output divergence.)
if [[ -x "$ROOT/build/bench_micro" ]]; then
  "$ROOT/build/bench_micro" --benchmark_filter='BM_TransformWarmVsCold' \
    >/dev/null
  [[ -f "$ROOT/BENCH_executor.json" ]] || {
    echo "ci.sh: BENCH_executor.json was not produced" >&2
    exit 1
  }
  for field in transform_warm_vs_cold search_sequential_seconds \
               search_batched_seconds search_batched_speedup \
               plan_compile_hit_rate; do
    grep -q "\"$field\"" "$ROOT/BENCH_executor.json" || {
      echo "ci.sh: $field missing from BENCH_executor.json" >&2
      exit 1
    }
  done
else
  echo "ci.sh: bench_micro not built (google-benchmark missing?)" >&2
  exit 1
fi

# ---- TSan: planner / store / executor / serving concurrency tests ----------
# (Benches/examples are skipped: TSan only needs the threaded paths, and the
# instrumented build is slow. generator_test and search_session_test drive
# the batched search pipeline end to end — SuggestBatch pools through
# FeatureEvaluator::Features into the parallel EvaluateMany prepare/fan-out —
# so they pin the pipeline's thread-safety claims too.)
TSAN_TESTS=(
  executor_golden_test
  executor_parallel_test
  query_planner_test
  artifact_store_test
  serving_concurrency_test
  generator_test
  search_session_test
)
cmake -B "$ROOT/build-tsan" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFEATLIB_SANITIZE=thread \
  -DFEATLIB_BUILD_BENCHES=OFF \
  -DFEATLIB_BUILD_EXAMPLES=OFF
cmake --build "$ROOT/build-tsan" -j "$JOBS" --target "${TSAN_TESTS[@]}"
for test in "${TSAN_TESTS[@]}"; do
  "$ROOT/build-tsan/$test"
done

echo "ci.sh: all green"

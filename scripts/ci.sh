#!/usr/bin/env bash
# CI entry point: Release build + full ctest suite, then a ThreadSanitizer
# build of the executor concurrency tests (the EvaluateMany fan-out is the
# only multi-threaded code; TSan pins the "no locks needed" cache design).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc)"

# ---- Release: build everything, run the whole suite ------------------------
cmake -B "$ROOT/build" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$ROOT/build" -j "$JOBS"
ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS"

# ---- TSan: the executor + parallel determinism tests ------------------------
# (Benches/examples are skipped: TSan only needs the threaded paths, and the
# instrumented build is slow.)
cmake -B "$ROOT/build-tsan" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFEATLIB_SANITIZE=thread \
  -DFEATLIB_BUILD_BENCHES=OFF \
  -DFEATLIB_BUILD_EXAMPLES=OFF
cmake --build "$ROOT/build-tsan" -j "$JOBS" \
  --target batch_executor_test executor_parallel_test
"$ROOT/build-tsan/batch_executor_test"
"$ROOT/build-tsan/executor_parallel_test"

echo "ci.sh: all green"

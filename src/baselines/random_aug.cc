#include "baselines/random_aug.h"

#include <unordered_set>

#include "common/rng.h"
#include "core/codec.h"

namespace featlib {

Result<std::vector<AggQuery>> RandomAugmentation(
    const Table& relevant, const QueryTemplate& base,
    const std::vector<std::string>& candidate_attrs,
    const RandomAugOptions& options) {
  Rng rng(options.seed);
  std::vector<AggQuery> out;
  std::unordered_set<std::string> seen;
  const int max_attempts = options.n_templates * 4;

  for (int t = 0; t < max_attempts &&
                  out.size() < static_cast<size_t>(options.n_templates *
                                                   options.queries_per_template);
       ++t) {
    // Random non-empty attribute subset (uniform over the template set).
    QueryTemplate tmpl = base;
    tmpl.where_attrs.clear();
    if (!candidate_attrs.empty()) {
      for (const auto& attr : candidate_attrs) {
        if (rng.Bernoulli(0.5)) tmpl.where_attrs.push_back(attr);
      }
      if (tmpl.where_attrs.empty()) {
        tmpl.where_attrs.push_back(
            candidate_attrs[rng.UniformInt(candidate_attrs.size())]);
      }
    }
    FEAT_ASSIGN_OR_RETURN(QueryVectorCodec codec,
                          QueryVectorCodec::Create(tmpl, relevant));
    for (int q = 0; q < options.queries_per_template; ++q) {
      Rng sample_rng = rng.Fork();
      ParamVector v = codec.space().Sample(&sample_rng);
      FEAT_ASSIGN_OR_RETURN(AggQuery query, codec.Decode(v));
      if (seen.insert(query.CacheKey()).second) {
        out.push_back(std::move(query));
      }
    }
  }
  return out;
}

}  // namespace featlib

#include "baselines/arda.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "ml/forest.h"

namespace featlib {

Result<std::vector<AggQuery>> ArdaSelect(FeatureEvaluator* evaluator,
                                         const std::vector<AggQuery>& candidates,
                                         size_t k, const ArdaOptions& options) {
  if (candidates.empty()) return std::vector<AggQuery>{};
  Rng rng(options.seed);
  const SplitIndices& split = evaluator->split();

  // Base + candidates over the train split (computed once, reused per round).
  Dataset base = evaluator->base_dataset();
  for (size_t i = 0; i < candidates.size(); ++i) {
    FEAT_ASSIGN_OR_RETURN(const std::vector<double>* f,
                          evaluator->Feature(candidates[i]));
    FEAT_RETURN_NOT_OK(base.AddFeature("cand" + std::to_string(i), *f));
  }
  Dataset train = base.GatherRows(split.train);
  ImputeNanInPlace(&train, train);

  const size_t base_d = evaluator->base_dataset().d;
  const size_t n_noise = std::max<size_t>(
      2, static_cast<size_t>(std::ceil(options.noise_fraction *
                                       static_cast<double>(candidates.size()))));

  std::vector<int> votes(candidates.size(), 0);
  std::vector<double> total_importance(candidates.size(), 0.0);
  for (int round = 0; round < options.rounds; ++round) {
    Dataset injected = train;
    for (size_t j = 0; j < n_noise; ++j) {
      std::vector<double> noise(train.n);
      for (double& v : noise) v = rng.Normal();
      FEAT_RETURN_NOT_OK(injected.AddFeature("noise" + std::to_string(j), noise));
    }
    RandomForestOptions rf_options;
    rf_options.n_trees = 25;
    rf_options.seed = rng.NextU64();
    RandomForestModel forest(evaluator->task(), rf_options);
    FEAT_RETURN_NOT_OK(forest.Fit(injected));
    std::vector<double> importances = forest.FeatureImportances();
    importances.resize(injected.d, 0.0);

    // Noise threshold: the tau-quantile of noise importances.
    std::vector<double> noise_imp(importances.end() - static_cast<ptrdiff_t>(n_noise),
                                  importances.end());
    std::sort(noise_imp.begin(), noise_imp.end());
    const size_t qi = std::min(
        noise_imp.size() - 1,
        static_cast<size_t>(options.noise_quantile *
                            static_cast<double>(noise_imp.size())));
    const double threshold = noise_imp[qi];

    for (size_t i = 0; i < candidates.size(); ++i) {
      const double imp = importances[base_d + i];
      total_importance[i] += imp;
      if (imp > threshold) ++votes[i];
    }
  }

  // Survivors (majority of rounds), ordered by total importance; pad with
  // the best non-survivors if fewer than k survive.
  std::vector<size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const bool sa = votes[a] * 2 > options.rounds;
    const bool sb = votes[b] * 2 > options.rounds;
    if (sa != sb) return sa;
    return total_importance[a] > total_importance[b];
  });
  std::vector<AggQuery> out;
  for (size_t i = 0; i < order.size() && out.size() < k; ++i) {
    out.push_back(candidates[order[i]]);
  }
  return out;
}

}  // namespace featlib

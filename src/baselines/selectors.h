#pragma once

/// \file selectors.h
/// \brief The seven feature selectors paired with Featuretools in the
/// paper's baselines (§VII.A.3): LR / GBDT importance, MI / Chi2 / Gini
/// filters, and Forward / Backward wrappers.

#include <vector>

#include "core/feature_eval.h"
#include "query/agg_query.h"

namespace featlib {

enum class SelectorKind {
  kNone = 0,  // keep all candidates (plain "FT")
  kLr,        // |weight| of a linear model over all candidates
  kGbdt,      // split-gain importance of a GBDT over all candidates
  kMi,        // mutual information filter
  kChi2,      // chi-square filter (classification only)
  kGini,      // Gini impurity-reduction filter (classification only)
  kForward,   // greedy forward wrapper around the downstream model
  kBackward,  // greedy backward elimination wrapper
};

const char* SelectorKindToString(SelectorKind kind);

/// True when the selector applies to the task (Chi2/Gini are
/// classification-only; the paper leaves those cells empty for Merchant).
bool SelectorSupportsTask(SelectorKind kind, TaskKind task);

/// Cost bounds for the wrapper (Forward/Backward) selectors. The paper runs
/// them unbounded on a 32-vCPU box; these caps keep the benchmark harness
/// tractable without changing the greedy semantics of the evaluated steps.
struct SelectorBudget {
  /// Greedy model-evaluated rounds; remaining slots are filled by the MI
  /// ranking of the unused pool (Forward) or kept as-is (Backward).
  size_t max_wrapper_steps = 10;
  /// Candidate-pool cap before the wrapper loops (MI pre-trim), as a
  /// multiple of k.
  size_t forward_pool_factor = 3;
};

/// \brief Selects up to `k` queries from `candidates`.
///
/// Filter and embedded selectors score features on the evaluator's training
/// split; wrapper selectors train the evaluator's downstream model each
/// step (expensive, as in the paper). Returns the selected queries in
/// descending usefulness order.
Result<std::vector<AggQuery>> SelectQueries(FeatureEvaluator* evaluator,
                                            const std::vector<AggQuery>& candidates,
                                            SelectorKind kind, size_t k,
                                            const SelectorBudget& budget = {});

}  // namespace featlib

#include "baselines/selectors.h"

#include <algorithm>
#include <numeric>

#include "ml/gbdt.h"
#include "ml/linear.h"
#include "stats/stats.h"

namespace featlib {

namespace {

/// Restricts a full-length feature column to the evaluator's train rows.
std::vector<double> TrainSlice(const std::vector<double>& full,
                               const SplitIndices& split) {
  std::vector<double> out;
  out.reserve(split.train.size());
  for (uint32_t r : split.train) out.push_back(full[r]);
  return out;
}

/// Builds base + all candidate features over the train split.
Result<Dataset> BuildCandidateDataset(FeatureEvaluator* evaluator,
                                      const std::vector<AggQuery>& candidates) {
  Dataset full = evaluator->base_dataset();
  for (size_t i = 0; i < candidates.size(); ++i) {
    FEAT_ASSIGN_OR_RETURN(const std::vector<double>* f,
                          evaluator->Feature(candidates[i]));
    FEAT_RETURN_NOT_OK(full.AddFeature("cand" + std::to_string(i), *f));
  }
  Dataset train = full.GatherRows(evaluator->split().train);
  ImputeNanInPlace(&train, train);
  return train;
}

std::vector<AggQuery> TakeTop(const std::vector<AggQuery>& candidates,
                              const std::vector<double>& scores, size_t k) {
  std::vector<size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return scores[a] > scores[b]; });
  std::vector<AggQuery> out;
  for (size_t i = 0; i < order.size() && out.size() < k; ++i) {
    out.push_back(candidates[order[i]]);
  }
  return out;
}

/// Pre-trims a candidate pool by MI so the wrapper selectors' model-training
/// loops stay tractable (the paper runs them on a beefy EC2 box; we cap the
/// pool instead of the semantics).
Result<std::vector<AggQuery>> TrimByMi(FeatureEvaluator* evaluator,
                                       const std::vector<AggQuery>& candidates,
                                       size_t cap) {
  if (candidates.size() <= cap) return candidates;
  std::vector<double> labels;
  for (uint32_t r : evaluator->split().train) {
    labels.push_back(evaluator->base_dataset().y[r]);
  }
  std::vector<double> scores(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    FEAT_ASSIGN_OR_RETURN(const std::vector<double>* f,
                          evaluator->Feature(candidates[i]));
    scores[i] = MutualInformation(TrainSlice(*f, evaluator->split()), labels,
                                  evaluator->task() != TaskKind::kRegression);
  }
  return TakeTop(candidates, scores, cap);
}

}  // namespace

const char* SelectorKindToString(SelectorKind kind) {
  switch (kind) {
    case SelectorKind::kNone:
      return "FT";
    case SelectorKind::kLr:
      return "FT+LR";
    case SelectorKind::kGbdt:
      return "FT+GBDT";
    case SelectorKind::kMi:
      return "FT+MI";
    case SelectorKind::kChi2:
      return "FT+Chi2";
    case SelectorKind::kGini:
      return "FT+Gini";
    case SelectorKind::kForward:
      return "FT+Forward";
    case SelectorKind::kBackward:
      return "FT+Backward";
  }
  return "?";
}

bool SelectorSupportsTask(SelectorKind kind, TaskKind task) {
  if (kind == SelectorKind::kChi2 || kind == SelectorKind::kGini) {
    return task != TaskKind::kRegression;
  }
  return true;
}

Result<std::vector<AggQuery>> SelectQueries(FeatureEvaluator* evaluator,
                                            const std::vector<AggQuery>& candidates,
                                            SelectorKind kind, size_t k,
                                            const SelectorBudget& budget) {
  if (!SelectorSupportsTask(kind, evaluator->task())) {
    return Status::InvalidArgument("selector unsupported for this task");
  }
  if (kind == SelectorKind::kNone || candidates.size() <= k) {
    std::vector<AggQuery> out = candidates;
    if (out.size() > k) out.resize(k);
    return out;
  }

  const SplitIndices& split = evaluator->split();
  std::vector<double> labels;
  labels.reserve(split.train.size());
  for (uint32_t r : split.train) labels.push_back(evaluator->base_dataset().y[r]);

  switch (kind) {
    case SelectorKind::kMi:
    case SelectorKind::kChi2:
    case SelectorKind::kGini: {
      std::vector<double> scores(candidates.size());
      for (size_t i = 0; i < candidates.size(); ++i) {
        FEAT_ASSIGN_OR_RETURN(const std::vector<double>* f,
                              evaluator->Feature(candidates[i]));
        const std::vector<double> x = TrainSlice(*f, split);
        if (kind == SelectorKind::kMi) {
          scores[i] = MutualInformation(x, labels,
                                        evaluator->task() != TaskKind::kRegression);
        } else if (kind == SelectorKind::kChi2) {
          scores[i] = ChiSquareScore(x, labels);
        } else {
          scores[i] = GiniScore(x, labels);
        }
      }
      return TakeTop(candidates, scores, k);
    }

    case SelectorKind::kLr: {
      FEAT_ASSIGN_OR_RETURN(Dataset train,
                            BuildCandidateDataset(evaluator, candidates));
      const size_t base_d = evaluator->base_dataset().d;
      std::vector<double> importances;
      if (evaluator->task() == TaskKind::kRegression) {
        LinearRegressionModel model;
        FEAT_RETURN_NOT_OK(model.Fit(train));
        importances = model.FeatureImportances();
      } else {
        LinearModelOptions lr_options;
        lr_options.epochs = 80;
        LogisticRegressionModel model(evaluator->task(), lr_options);
        FEAT_RETURN_NOT_OK(model.Fit(train));
        importances = model.FeatureImportances();
      }
      std::vector<double> scores(candidates.size());
      for (size_t i = 0; i < candidates.size(); ++i) {
        scores[i] = importances[base_d + i];
      }
      return TakeTop(candidates, scores, k);
    }

    case SelectorKind::kGbdt: {
      FEAT_ASSIGN_OR_RETURN(Dataset train,
                            BuildCandidateDataset(evaluator, candidates));
      const size_t base_d = evaluator->base_dataset().d;
      GbdtOptions gbdt_options;
      gbdt_options.n_rounds = 30;
      GbdtModel model(evaluator->task(), gbdt_options);
      FEAT_RETURN_NOT_OK(model.Fit(train));
      const auto importances = model.FeatureImportances();
      std::vector<double> scores(candidates.size());
      for (size_t i = 0; i < candidates.size(); ++i) {
        scores[i] = importances[base_d + i];
      }
      return TakeTop(candidates, scores, k);
    }

    case SelectorKind::kForward: {
      FEAT_ASSIGN_OR_RETURN(
          std::vector<AggQuery> pool,
          TrimByMi(evaluator, candidates, budget.forward_pool_factor * k));
      std::vector<AggQuery> selected;
      std::vector<bool> used(pool.size(), false);
      size_t steps = 0;
      while (selected.size() < k && steps < budget.max_wrapper_steps) {
        ++steps;
        double best_loss = std::numeric_limits<double>::infinity();
        size_t best_i = pool.size();
        for (size_t i = 0; i < pool.size(); ++i) {
          if (used[i]) continue;
          std::vector<AggQuery> trial = selected;
          trial.push_back(pool[i]);
          FEAT_ASSIGN_OR_RETURN(double metric, evaluator->ModelScore(trial));
          const double loss = evaluator->ScoreToLoss(metric);
          if (loss < best_loss) {
            best_loss = loss;
            best_i = i;
          }
        }
        if (best_i == pool.size()) break;
        used[best_i] = true;
        selected.push_back(pool[best_i]);
      }
      // Budget exhausted: fill the remaining slots in pool (MI) order.
      for (size_t i = 0; i < pool.size() && selected.size() < k; ++i) {
        if (!used[i]) {
          used[i] = true;
          selected.push_back(pool[i]);
        }
      }
      return selected;
    }

    case SelectorKind::kBackward: {
      // Pool sized so the elimination loop runs at most max_wrapper_steps
      // rounds (each round trains |pool| models).
      FEAT_ASSIGN_OR_RETURN(
          std::vector<AggQuery> pool,
          TrimByMi(evaluator, candidates,
                   std::min(2 * k, k + budget.max_wrapper_steps)));
      while (pool.size() > k) {
        double best_loss = std::numeric_limits<double>::infinity();
        size_t drop_i = pool.size();
        for (size_t i = 0; i < pool.size(); ++i) {
          std::vector<AggQuery> trial;
          for (size_t j = 0; j < pool.size(); ++j) {
            if (j != i) trial.push_back(pool[j]);
          }
          FEAT_ASSIGN_OR_RETURN(double metric, evaluator->ModelScore(trial));
          const double loss = evaluator->ScoreToLoss(metric);
          if (loss < best_loss) {
            best_loss = loss;
            drop_i = i;
          }
        }
        if (drop_i == pool.size()) break;
        pool.erase(pool.begin() + static_cast<ptrdiff_t>(drop_i));
      }
      return pool;
    }

    case SelectorKind::kNone:
      break;
  }
  return Status::InvalidArgument("unhandled selector");
}

}  // namespace featlib

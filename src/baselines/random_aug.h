#pragma once

/// \file random_aug.h
/// \brief The Random baseline (§VII.A.3): uniformly picks query templates
/// from the template set, then uniformly samples predicate-aware queries
/// from each template's pool — no evaluation in the loop.

#include <vector>

#include "core/query_template.h"
#include "query/agg_query.h"
#include "table/table.h"

namespace featlib {

struct RandomAugOptions {
  int n_templates = 8;
  int queries_per_template = 5;
  uint64_t seed = 42;
};

/// \brief Samples n_templates random WHERE-attribute subsets of
/// `candidate_attrs` and queries_per_template random queries per pool.
/// `base` supplies F, A and K. Deduplicates by query cache key.
Result<std::vector<AggQuery>> RandomAugmentation(
    const Table& relevant, const QueryTemplate& base,
    const std::vector<std::string>& candidate_attrs,
    const RandomAugOptions& options);

}  // namespace featlib

#include "baselines/autofeature.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace featlib {

namespace {

/// Shared episode state: the growing feature set and its score.
struct EpisodeState {
  std::vector<size_t> selected;
  std::vector<bool> used;
  double current_loss = 0.0;
};

Result<double> LossOf(FeatureEvaluator* evaluator,
                      const std::vector<AggQuery>& candidates,
                      const std::vector<size_t>& selected) {
  std::vector<AggQuery> queries;
  queries.reserve(selected.size());
  for (size_t i : selected) queries.push_back(candidates[i]);
  if (queries.empty()) {
    FEAT_ASSIGN_OR_RETURN(double metric, evaluator->BaselineModelScore());
    return evaluator->ScoreToLoss(metric);
  }
  FEAT_ASSIGN_OR_RETURN(double metric, evaluator->ModelScore(queries));
  return evaluator->ScoreToLoss(metric);
}

}  // namespace

Result<std::vector<AggQuery>> AutoFeatureSelect(
    FeatureEvaluator* evaluator, const std::vector<AggQuery>& candidates,
    size_t k, const AutoFeatureOptions& options) {
  if (candidates.empty()) return std::vector<AggQuery>{};
  Rng rng(options.seed);
  const size_t n = candidates.size();

  EpisodeState state;
  state.used.assign(n, false);
  FEAT_ASSIGN_OR_RETURN(state.current_loss, LossOf(evaluator, candidates, {}));

  // Arm statistics (MAB) / Q-values (DQN-lite; action-value plus a bias per
  // selected-set size, the "state" signal that matters for greedy growth).
  std::vector<double> value(n, 0.0);
  std::vector<int> pulls(n, 0);
  int total_pulls = 0;

  int budget = options.budget;
  while (budget > 0 && state.selected.size() < k) {
    // Pick an action among unused candidates.
    size_t action = n;
    if (options.policy == AutoFeaturePolicy::kMab) {
      double best_ucb = -std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < n; ++i) {
        if (state.used[i]) continue;
        const double mean = pulls[i] > 0 ? value[i] : 0.0;
        const double bonus =
            pulls[i] > 0
                ? options.ucb_c *
                      std::sqrt(std::log(static_cast<double>(total_pulls + 1)) /
                                static_cast<double>(pulls[i]))
                : std::numeric_limits<double>::infinity();  // force exploration
        const double ucb = mean + bonus;
        if (ucb > best_ucb) {
          best_ucb = ucb;
          action = i;
        }
      }
    } else {
      // DQN-lite: epsilon-greedy over the linear Q estimates.
      std::vector<size_t> available;
      for (size_t i = 0; i < n; ++i) {
        if (!state.used[i]) available.push_back(i);
      }
      if (available.empty()) break;
      if (rng.Bernoulli(options.epsilon)) {
        action = available[rng.UniformInt(available.size())];
      } else {
        action = available[0];
        for (size_t i : available) {
          if (value[i] > value[action]) action = i;
        }
      }
    }
    if (action == n) break;

    // Environment step: add the feature, observe the reward.
    std::vector<size_t> trial = state.selected;
    trial.push_back(action);
    FEAT_ASSIGN_OR_RETURN(double trial_loss, LossOf(evaluator, candidates, trial));
    --budget;
    const double reward = state.current_loss - trial_loss;  // positive = better

    ++pulls[action];
    ++total_pulls;
    if (options.policy == AutoFeaturePolicy::kMab) {
      value[action] += (reward - value[action]) / static_cast<double>(pulls[action]);
    } else {
      // TD(0) with max-over-remaining as the bootstrap target.
      double max_next = 0.0;
      for (size_t i = 0; i < n; ++i) {
        if (!state.used[i] && i != action) max_next = std::max(max_next, value[i]);
      }
      const double target = reward + options.q_discount * max_next;
      value[action] += options.q_learning_rate * (target - value[action]);
    }

    // Greedy commit: keep the feature when it did not hurt; always commit
    // when the remaining budget cannot cover further exploration.
    if (reward >= 0.0 ||
        budget <= static_cast<int>(k - state.selected.size())) {
      state.selected.push_back(action);
      state.used[action] = true;
      state.current_loss = trial_loss;
    }
  }

  // Fill any remaining slots by learned value.
  if (state.selected.size() < k) {
    std::vector<size_t> order;
    for (size_t i = 0; i < n; ++i) {
      if (!state.used[i]) order.push_back(i);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) { return value[a] > value[b]; });
    for (size_t i : order) {
      if (state.selected.size() >= k) break;
      state.selected.push_back(i);
    }
  }

  std::vector<AggQuery> out;
  for (size_t i : state.selected) out.push_back(candidates[i]);
  return out;
}

}  // namespace featlib

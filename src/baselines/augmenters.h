#pragma once

/// \file augmenters.h
/// \brief The four baseline methods behind the unified Augmenter interface
/// (core/augmenter.h): Random, Featuretools (+selectors), ARDA and
/// AutoFeature each fit into the same Fit() -> FittedAugmenter contract the
/// FeatAug drivers use, so the evaluation harness, examples and CLI program
/// against one API.
///
/// Every factory takes the same FeatAugProblem the FeatAug driver does —
/// the baselines read the subset they need (template ingredients, FKs,
/// candidate attributes) — plus the method's own options. `eval` configures
/// the FeatureEvaluator the adapter creates during Fit (the search loop for
/// ARDA/AutoFeature/wrapper selectors, test-split scoring for the benches);
/// it is exposed through Augmenter::evaluator() after Fit.

#include <memory>
#include <vector>

#include "baselines/arda.h"
#include "baselines/autofeature.h"
#include "baselines/featuretools.h"
#include "baselines/random_aug.h"
#include "baselines/selectors.h"
#include "core/augmenter.h"

namespace featlib {

/// Random baseline: uniform templates + uniform queries, no evaluation in
/// the fitting loop (the evaluator is still created for scoring).
/// `max_features` > 0 truncates the sampled set to the budget.
std::unique_ptr<Augmenter> MakeRandomAugmenter(FeatAugProblem problem,
                                               RandomAugOptions options,
                                               size_t max_features = 0,
                                               EvaluatorOptions eval = {});

/// Featuretools-style enumeration, optionally trimmed to `k` by one of the
/// seven selectors (SelectorKind::kNone keeps the first k enumerated).
std::unique_ptr<Augmenter> MakeFeaturetoolsAugmenter(
    FeatAugProblem problem, size_t k,
    SelectorKind selector = SelectorKind::kNone, SelectorBudget budget = {},
    EvaluatorOptions eval = {});

/// ARDA random-injection selection over `candidates` (empty = the
/// predicate-free Featuretools enumeration of the problem).
std::unique_ptr<Augmenter> MakeArdaAugmenter(FeatAugProblem problem, size_t k,
                                             ArdaOptions options = {},
                                             std::vector<AggQuery> candidates = {},
                                             EvaluatorOptions eval = {});

/// AutoFeature RL selection over `candidates` (empty = the predicate-free
/// Featuretools enumeration of the problem).
std::unique_ptr<Augmenter> MakeAutoFeatureAugmenter(
    FeatAugProblem problem, size_t k, AutoFeatureOptions options = {},
    std::vector<AggQuery> candidates = {}, EvaluatorOptions eval = {});

}  // namespace featlib

#include "baselines/augmenters.h"

#include <optional>
#include <utility>

#include "common/str_util.h"
#include "core/query_template.h"

namespace featlib {

namespace {

/// Shared adapter scaffolding: owns the problem, creates the evaluator at
/// Fit time, and wraps a selected query set into a single-source handle.
class BaselineAdapter : public Augmenter {
 public:
  FeatureEvaluator* evaluator() override {
    return evaluator_.has_value() ? &*evaluator_ : nullptr;
  }

 protected:
  BaselineAdapter(FeatAugProblem problem, EvaluatorOptions eval)
      : problem_(std::move(problem)), eval_options_(eval) {}

  Status EnsureEvaluator() {
    if (evaluator_.has_value()) return Status::OK();
    auto created = FeatureEvaluator::Create(
        problem_.training, problem_.label_col, problem_.base_feature_cols,
        problem_.relevant, problem_.task, eval_options_);
    if (!created.ok()) return created.status();
    evaluator_.emplace(std::move(created).ValueOrDie());
    return Status::OK();
  }

  /// The predicate-free enumeration the selection baselines default to.
  std::vector<AggQuery> DefaultCandidates() const {
    return GenerateFeaturetoolsQueries(problem_.relevant,
                                       problem_.agg_functions,
                                       problem_.agg_attrs, problem_.fk_attrs);
  }

  Result<std::unique_ptr<FittedAugmenter>> Finish(
      std::vector<AggQuery> queries) const {
    FittedAugmenter::Source source;
    source.relevant = problem_.relevant;
    source.feature_names.reserve(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      source.feature_names.push_back(
          StrFormat("%s_%s_%s_q%zu", name(), AggFunctionName(queries[i].agg),
                    queries[i].agg_attr.c_str(), i));
    }
    source.queries = std::move(queries);
    std::vector<FittedAugmenter::Source> sources;
    sources.push_back(std::move(source));
    return FittedAugmenter::Create(std::move(sources));
  }

  FeatAugProblem problem_;
  EvaluatorOptions eval_options_;
  std::optional<FeatureEvaluator> evaluator_;
};

class RandomAdapter final : public BaselineAdapter {
 public:
  RandomAdapter(FeatAugProblem problem, RandomAugOptions options,
                size_t max_features, EvaluatorOptions eval)
      : BaselineAdapter(std::move(problem), eval),
        options_(options),
        max_features_(max_features) {}
  const char* name() const override { return "random"; }
  Result<std::unique_ptr<FittedAugmenter>> Fit() override {
    FEAT_RETURN_NOT_OK(EnsureEvaluator());
    QueryTemplate base;
    base.agg_functions = problem_.agg_functions;
    base.agg_attrs = problem_.agg_attrs;
    base.fk_attrs = problem_.fk_attrs;
    FEAT_ASSIGN_OR_RETURN(
        std::vector<AggQuery> queries,
        RandomAugmentation(problem_.relevant, base,
                           problem_.candidate_where_attrs, options_));
    if (max_features_ > 0 && queries.size() > max_features_) {
      queries.resize(max_features_);
    }
    return Finish(std::move(queries));
  }

 private:
  RandomAugOptions options_;
  size_t max_features_;
};

class FeaturetoolsAdapter final : public BaselineAdapter {
 public:
  FeaturetoolsAdapter(FeatAugProblem problem, size_t k, SelectorKind selector,
                      SelectorBudget budget, EvaluatorOptions eval)
      : BaselineAdapter(std::move(problem), eval),
        k_(k),
        selector_(selector),
        budget_(budget) {}
  const char* name() const override { return "featuretools"; }
  Result<std::unique_ptr<FittedAugmenter>> Fit() override {
    FEAT_RETURN_NOT_OK(EnsureEvaluator());
    FEAT_ASSIGN_OR_RETURN(
        std::vector<AggQuery> selected,
        SelectQueries(&*evaluator_, DefaultCandidates(), selector_, k_,
                      budget_));
    return Finish(std::move(selected));
  }

 private:
  size_t k_;
  SelectorKind selector_;
  SelectorBudget budget_;
};

class ArdaAdapter final : public BaselineAdapter {
 public:
  ArdaAdapter(FeatAugProblem problem, size_t k, ArdaOptions options,
              std::vector<AggQuery> candidates, EvaluatorOptions eval)
      : BaselineAdapter(std::move(problem), eval),
        k_(k),
        options_(options),
        candidates_(std::move(candidates)) {}
  const char* name() const override { return "arda"; }
  Result<std::unique_ptr<FittedAugmenter>> Fit() override {
    FEAT_RETURN_NOT_OK(EnsureEvaluator());
    FEAT_ASSIGN_OR_RETURN(
        std::vector<AggQuery> selected,
        ArdaSelect(&*evaluator_,
                   candidates_.empty() ? DefaultCandidates() : candidates_, k_,
                   options_));
    return Finish(std::move(selected));
  }

 private:
  size_t k_;
  ArdaOptions options_;
  std::vector<AggQuery> candidates_;
};

class AutoFeatureAdapter final : public BaselineAdapter {
 public:
  AutoFeatureAdapter(FeatAugProblem problem, size_t k,
                     AutoFeatureOptions options,
                     std::vector<AggQuery> candidates, EvaluatorOptions eval)
      : BaselineAdapter(std::move(problem), eval),
        k_(k),
        options_(options),
        candidates_(std::move(candidates)) {}
  const char* name() const override { return "autofeature"; }
  Result<std::unique_ptr<FittedAugmenter>> Fit() override {
    FEAT_RETURN_NOT_OK(EnsureEvaluator());
    FEAT_ASSIGN_OR_RETURN(
        std::vector<AggQuery> selected,
        AutoFeatureSelect(&*evaluator_,
                          candidates_.empty() ? DefaultCandidates() : candidates_,
                          k_, options_));
    return Finish(std::move(selected));
  }

 private:
  size_t k_;
  AutoFeatureOptions options_;
  std::vector<AggQuery> candidates_;
};

}  // namespace

std::unique_ptr<Augmenter> MakeRandomAugmenter(FeatAugProblem problem,
                                               RandomAugOptions options,
                                               size_t max_features,
                                               EvaluatorOptions eval) {
  return std::make_unique<RandomAdapter>(std::move(problem), options,
                                         max_features, eval);
}

std::unique_ptr<Augmenter> MakeFeaturetoolsAugmenter(FeatAugProblem problem,
                                                     size_t k,
                                                     SelectorKind selector,
                                                     SelectorBudget budget,
                                                     EvaluatorOptions eval) {
  return std::make_unique<FeaturetoolsAdapter>(std::move(problem), k, selector,
                                               budget, eval);
}

std::unique_ptr<Augmenter> MakeArdaAugmenter(FeatAugProblem problem, size_t k,
                                             ArdaOptions options,
                                             std::vector<AggQuery> candidates,
                                             EvaluatorOptions eval) {
  return std::make_unique<ArdaAdapter>(std::move(problem), k, options,
                                       std::move(candidates), eval);
}

std::unique_ptr<Augmenter> MakeAutoFeatureAugmenter(
    FeatAugProblem problem, size_t k, AutoFeatureOptions options,
    std::vector<AggQuery> candidates, EvaluatorOptions eval) {
  return std::make_unique<AutoFeatureAdapter>(std::move(problem), k, options,
                                              std::move(candidates), eval);
}

}  // namespace featlib

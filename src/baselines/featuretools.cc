#include "baselines/featuretools.h"

namespace featlib {

std::vector<AggQuery> GenerateFeaturetoolsQueries(
    const Table& relevant, const std::vector<AggFunction>& agg_functions,
    const std::vector<std::string>& agg_attrs,
    const std::vector<std::string>& fk_attrs, const FeaturetoolsOptions& options) {
  std::vector<AggQuery> out;
  bool count_emitted = false;
  for (AggFunction fn : agg_functions) {
    for (const auto& attr : agg_attrs) {
      if (fn == AggFunction::kCount) {
        // COUNT(a) is attribute-independent up to null handling; one copy.
        if (count_emitted) continue;
        count_emitted = true;
      }
      auto col = relevant.GetColumn(attr);
      if (!col.ok()) continue;
      if (col.value()->type() == DataType::kString && !SupportsCategorical(fn)) {
        continue;
      }
      AggQuery q;
      q.agg = fn;
      q.agg_attr = attr;
      q.group_keys = fk_attrs;
      out.push_back(std::move(q));
      if (options.max_features > 0 && out.size() >= options.max_features) {
        return out;
      }
    }
  }
  return out;
}

}  // namespace featlib

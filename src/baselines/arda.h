#pragma once

/// \file arda.h
/// \brief ARDA baseline [Chepurko et al., VLDB'20]: random-injection feature
/// selection for one-to-one relationship tables. Candidate features are
/// ranked by random-forest importance against injected noise features; a
/// feature survives when it beats the noise quantile in a majority of
/// injection rounds.

#include <vector>

#include "core/feature_eval.h"
#include "query/agg_query.h"

namespace featlib {

struct ArdaOptions {
  /// Injection rounds (majority vote across rounds).
  int rounds = 3;
  /// Noise features injected per round, as a fraction of candidates.
  double noise_fraction = 0.5;
  /// Quantile of noise importances a real feature must exceed (tau).
  double noise_quantile = 0.9;
  uint64_t seed = 42;
};

/// \brief Selects up to `k` of `candidates` by random injection. Falls back
/// to importance order when fewer than `k` survive the noise test.
Result<std::vector<AggQuery>> ArdaSelect(FeatureEvaluator* evaluator,
                                         const std::vector<AggQuery>& candidates,
                                         size_t k, const ArdaOptions& options);

}  // namespace featlib

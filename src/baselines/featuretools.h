#pragma once

/// \file featuretools.h
/// \brief Featuretools-style Deep Feature Synthesis baseline [Kanter &
/// Veeramachaneni, DSAA'15]: enumerates every `SELECT k, agg(a) FROM R GROUP
/// BY k` query — no WHERE clause — exactly the query space §I/Example 3
/// attributes to Featuretools.

#include <vector>

#include "query/agg_query.h"
#include "table/table.h"

namespace featlib {

struct FeaturetoolsOptions {
  /// Cap on generated queries (0 = all valid agg x attr combinations).
  size_t max_features = 0;
};

/// \brief Generates the full predicate-free query enumeration.
///
/// Skips (fn, attr) pairs where the function is undefined on a categorical
/// attribute; COUNT is emitted once (per attribute it is redundant).
std::vector<AggQuery> GenerateFeaturetoolsQueries(
    const Table& relevant, const std::vector<AggFunction>& agg_functions,
    const std::vector<std::string>& agg_attrs,
    const std::vector<std::string>& fk_attrs,
    const FeaturetoolsOptions& options = {});

}  // namespace featlib

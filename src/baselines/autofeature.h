#pragma once

/// \file autofeature.h
/// \brief AutoFeature baseline [Liu et al., ICDE'22]: reinforcement-learning
/// feature augmentation. Each step the agent picks the next candidate
/// feature to add; the reward is the change in downstream validation
/// performance. Two policies, as in the paper's Table VI: multi-armed bandit
/// (UCB1) and a DQN variant (here a linear Q-function over state/action
/// one-hots with epsilon-greedy exploration and TD updates).

#include <vector>

#include "core/feature_eval.h"
#include "query/agg_query.h"

namespace featlib {

enum class AutoFeaturePolicy { kMab, kDqn };

struct AutoFeatureOptions {
  AutoFeaturePolicy policy = AutoFeaturePolicy::kMab;
  /// Model-evaluation budget (each step trains the downstream model once).
  int budget = 30;
  /// UCB1 exploration constant.
  double ucb_c = 0.5;
  /// DQN-lite exploration and learning parameters.
  double epsilon = 0.2;
  double q_learning_rate = 0.3;
  double q_discount = 0.9;
  uint64_t seed = 42;
};

/// \brief Selects up to `k` candidates via RL-driven incremental addition.
Result<std::vector<AggQuery>> AutoFeatureSelect(
    FeatureEvaluator* evaluator, const std::vector<AggQuery>& candidates,
    size_t k, const AutoFeatureOptions& options);

}  // namespace featlib

#include "serve/client.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace featlib {
namespace serve {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

Result<ServeClient> ServeClient::ConnectUnix(const std::string& socket_path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket(AF_UNIX)");
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return Status::InvalidArgument("unix socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return ErrnoStatus("connect(" + socket_path + ")");
  }
  return ServeClient(fd);
}

Result<ServeClient> ServeClient::ConnectTcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket(AF_INET)");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return ErrnoStatus("connect(" + host + ":" + std::to_string(port) + ")");
  }
  return ServeClient(fd);
}

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_request_id_(other.next_request_id_) {}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    next_request_id_ = other.next_request_id_;
  }
  return *this;
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<Frame> ServeClient::RoundTrip(MessageType type,
                                     const std::string& payload,
                                     MessageType expect) {
  if (fd_ < 0) return Status::IOError("client is not connected");
  FEAT_RETURN_NOT_OK(WriteFrame(fd_, type, payload));
  FEAT_ASSIGN_OR_RETURN(Frame frame, ReadFrame(fd_));
  if (frame.type == MessageType::kError) {
    auto msg = DecodeErrorMessage(frame.payload);
    return Status::DataLoss(
        "daemon reported a protocol error: " +
        (msg.ok() ? msg.value().message : std::string("<unparseable>")));
  }
  if (frame.type != expect) {
    return Status::DataLoss("unexpected response type " +
                            std::to_string(static_cast<int>(frame.type)));
  }
  return frame;
}

Result<Table> ServeClient::Transform(const std::string& plan_name,
                                     const Table& batch,
                                     uint64_t deadline_us) {
  TransformRequest req;
  req.request_id = next_request_id_++;
  req.plan = plan_name;
  req.deadline_us = deadline_us;
  req.batch = batch;
  FEAT_ASSIGN_OR_RETURN(
      Frame frame, RoundTrip(MessageType::kTransformRequest,
                             EncodeTransformRequest(req),
                             MessageType::kTransformResponse));
  FEAT_ASSIGN_OR_RETURN(TransformResponse resp,
                        DecodeTransformResponse(frame.payload));
  // request_id 0 marks a response to a request the daemon could not parse.
  if (resp.request_id != req.request_id && resp.request_id != 0) {
    return Status::DataLoss("response for request " +
                            std::to_string(resp.request_id) + ", expected " +
                            std::to_string(req.request_id));
  }
  if (!resp.status.ok()) return resp.status;
  return std::move(resp.table);
}

Status ServeClient::Ping() {
  const std::string payload = "ping";
  auto frame = RoundTrip(MessageType::kPing, payload, MessageType::kPong);
  if (!frame.ok()) return frame.status();
  if (frame.value().payload != payload) {
    return Status::DataLoss("pong payload mismatch");
  }
  return Status::OK();
}

Result<std::vector<PlanInfo>> ServeClient::ListPlans() {
  FEAT_ASSIGN_OR_RETURN(Frame frame,
                        RoundTrip(MessageType::kListPlans, std::string(),
                                  MessageType::kPlanList));
  FEAT_ASSIGN_OR_RETURN(PlanList list, DecodePlanList(frame.payload));
  return std::move(list.plans);
}

}  // namespace serve
}  // namespace featlib

#include "serve/batcher.h"

#include <algorithm>

namespace featlib {
namespace serve {

Batcher::Batcher(BatcherOptions options) : options_(options) {
  const int workers = std::max(1, options_.num_workers);
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Batcher::~Batcher() { Shutdown(); }

Status Batcher::Submit(const std::string& plan_name, Request request) {
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_) {
    return Status::Cancelled("batcher is draining; request refused");
  }
  ++num_requests_;
  auto it = pending_.find(plan_name);
  if (it == pending_.end()) {
    auto group = std::make_shared<Group>();
    group->plan = plan_name;
    group->flush_at =
        Clock::now() + std::chrono::microseconds(options_.max_delay_us);
    group->requests.push_back(std::move(request));
    if (group->requests.size() >= options_.max_batch_size ||
        options_.max_delay_us <= 0) {
      ready_.push_back(std::move(group));
    } else {
      pending_.emplace(plan_name, std::move(group));
    }
  } else {
    it->second->requests.push_back(std::move(request));
    if (it->second->requests.size() >= options_.max_batch_size) {
      ready_.push_back(std::move(it->second));
      pending_.erase(it);
    }
  }
  // Wake a worker either way: one must (re)compute the nearest flush_at.
  work_cv_.notify_one();
  return Status::OK();
}

std::shared_ptr<Batcher::Group> Batcher::NextReadyGroupLocked(
    std::unique_lock<std::mutex>& lock) {
  for (;;) {
    if (!ready_.empty()) {
      auto group = std::move(ready_.front());
      ready_.pop_front();
      return group;
    }
    if (draining_) {
      // Drain: every pending group flushes now, regardless of its window.
      if (!pending_.empty()) {
        auto it = pending_.begin();
        auto group = std::move(it->second);
        pending_.erase(it);
        return group;
      }
      return nullptr;  // fully drained; worker exits
    }
    if (pending_.empty()) {
      work_cv_.wait(lock);
      continue;
    }
    // This worker doubles as the timer for the nearest window.
    Clock::time_point nearest = Clock::time_point::max();
    for (const auto& [name, group] : pending_) {
      nearest = std::min(nearest, group->flush_at);
    }
    if (Clock::now() >= nearest) {
      for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        if (it->second->flush_at == nearest) {
          auto group = std::move(it->second);
          pending_.erase(it);
          return group;
        }
      }
      continue;  // raced with another worker; re-evaluate
    }
    work_cv_.wait_until(lock, nearest);
  }
}

void Batcher::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    std::shared_ptr<Group> group = NextReadyGroupLocked(lock);
    if (group == nullptr) return;
    ++in_flight_groups_;
    ++num_flushes_;
    if (group->requests.size() >= 2) ++num_coalesced_flushes_;
    max_flush_size_ = std::max(max_flush_size_, group->requests.size());
    lock.unlock();
    ExecuteGroup(group.get());
    lock.lock();
    --in_flight_groups_;
    drain_cv_.notify_all();
  }
}

void Batcher::ExecuteGroup(Group* group) {
  const Clock::time_point now = Clock::now();
  // Slot requests that expired while coalescing fail up front and are
  // excluded from the fan-out; live slots map to positions in `batches`.
  std::vector<size_t> live;
  std::vector<Table> batches;
  Clock::time_point latest_deadline = Clock::time_point::min();
  bool all_have_deadlines = true;
  for (size_t i = 0; i < group->requests.size(); ++i) {
    Request& req = group->requests[i];
    if (req.deadline != Clock::time_point::max()) {
      latest_deadline = std::max(latest_deadline, req.deadline);
      if (req.deadline <= now) {
        req.done(Status::DeadlineExceeded(
                     "request deadline expired while coalescing"),
                 Table());
        continue;
      }
    } else {
      all_have_deadlines = false;
    }
    live.push_back(i);
    batches.push_back(req.batch);
  }
  if (live.empty()) return;

  // The group context's deadline is the latest request deadline: a batch-
  // wide ExecContext trip fails every slot, so the tightest request must
  // not be the one to pull the trigger — it is late-checked below instead.
  ExecContext ctx;
  const FittedAugmenter& handle = *group->requests[live.front()].handle;
  if (all_have_deadlines) ctx.set_deadline(latest_deadline);
  if (options_.memory_budget_bytes > 0) {
    ctx.set_memory_budget_bytes(options_.memory_budget_bytes);
  }

  auto results = handle.TransformManyIsolated(batches, &ctx);
  const Clock::time_point done_at = Clock::now();
  if (!results.ok()) {
    // Batch-wide failure (tripped group context): every live slot reports
    // it, with per-request deadline attribution where that is the cause.
    for (size_t i : live) {
      Request& req = group->requests[i];
      if (req.deadline <= done_at) {
        req.done(Status::DeadlineExceeded("request deadline exceeded"),
                 Table());
      } else {
        req.done(results.status(), Table());
      }
    }
    return;
  }
  std::vector<FittedAugmenter::BatchResult>& slots = results.value();
  FEAT_CHECK(slots.size() == live.size(),
             "TransformManyIsolated returned wrong slot count");
  for (size_t s = 0; s < live.size(); ++s) {
    Request& req = group->requests[live[s]];
    if (req.deadline <= done_at) {
      req.done(
          Status::DeadlineExceeded("request deadline exceeded during fan-out"),
          Table());
    } else if (slots[s].status.ok()) {
      req.done(Status::OK(), std::move(slots[s].table));
    } else {
      req.done(slots[s].status, Table());
    }
  }
}

void Batcher::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_ && workers_.empty()) return;
    draining_ = true;
    work_cv_.notify_all();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

size_t Batcher::num_requests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_requests_;
}

size_t Batcher::num_flushes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_flushes_;
}

size_t Batcher::num_coalesced_flushes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_coalesced_flushes_;
}

size_t Batcher::max_flush_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_flush_size_;
}

}  // namespace serve
}  // namespace featlib

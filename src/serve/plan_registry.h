#pragma once

/// \file plan_registry.h
/// \brief Multi-tenant registry of fitted plans: N serialized plans keyed by
/// name, lazily compiled into warm FittedAugmenter handles on first request
/// and kept resident under an LRU byte cap.
///
/// The daemon serves many plans from one process; keeping every warm
/// artifact store (group indexes, masks, materializations) resident forever
/// would not scale, and reloading per request would throw away the entire
/// point of the serving handle. The registry sits between: Acquire(name)
/// returns a shared warm handle, compiling it from the on-disk plan
/// (plan_io::LoadFittedAugmenter) exactly once per residency — concurrent
/// first requests for the same plan wait for the one in-flight load instead
/// of duplicating the compile — and when the sum of warm-handle byte
/// estimates exceeds the cap, the least-recently-acquired resident plans
/// are evicted.
///
/// **Pinning.** Eviction only drops the registry's reference; the handle
/// itself is returned as shared_ptr<const FittedAugmenter>, so every
/// in-flight request pins the store it is using exactly like
/// ArtifactStore's epoch pinning — an evicted plan's artifacts survive
/// until the last outstanding request releases them, and a running
/// Transform can never lose its store mid-flight. The byte cap therefore
/// bounds *registry-resident* warm bytes; transient overshoot while evicted
/// handles drain is possible and intended (the alternative is thrashing
/// in-flight requests).
///
/// Thread-safety: all public methods are safe to call concurrently. Loads
/// run outside the registry lock (a slow compile of plan A never blocks a
/// hit on plan B); the waiting/loading handshake is a per-entry state
/// machine guarded by the one registry mutex.
///
/// On-disk layout (DiscoverPlans): a plan named `<name>` is the pair
/// `<name>.sql` (the serialized plan, plan_io format) and
/// `<name>.relevant.csv` (the relevant table it joins against).

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "core/augmenter.h"
#include "serve/protocol.h"

namespace featlib {
namespace serve {

struct PlanRegistryOptions {
  /// Cap on the summed byte estimates of registry-resident warm handles.
  /// 0 = unlimited. Exceeding it evicts least-recently-acquired residents
  /// (never the one being acquired).
  size_t warm_cap_bytes = 512u << 20;
};

class PlanRegistry {
 public:
  explicit PlanRegistry(PlanRegistryOptions options = {})
      : options_(options) {}

  PlanRegistry(const PlanRegistry&) = delete;
  PlanRegistry& operator=(const PlanRegistry&) = delete;

  /// Registers a plan by its file pair without loading it. Fails on a
  /// duplicate name.
  Status AddPlan(const std::string& name, const std::string& plan_path,
                 const std::string& relevant_csv_path);

  /// Scans `dir` for `<name>.sql` + `<name>.relevant.csv` pairs and
  /// registers each. Unpaired files are ignored. Returns the number of
  /// plans found via *out (optional).
  Status DiscoverPlans(const std::string& dir, size_t* num_found = nullptr);

  /// Returns the warm handle for `name`, compiling it on first request.
  /// The returned shared_ptr pins the handle (and its artifact store)
  /// against eviction for as long as the caller holds it. A failed load is
  /// not sticky: the error is returned and the next Acquire retries.
  Result<std::shared_ptr<const FittedAugmenter>> Acquire(
      const std::string& name);

  /// All registered plans, alphabetical, with residency and byte estimate.
  std::vector<PlanInfo> List() const;

  /// \name Introspection (tests, stats endpoint).
  /// @{
  bool IsResident(const std::string& name) const;
  size_t warm_bytes() const;
  size_t num_loads() const;
  size_t num_evictions() const;
  /// @}

  /// Rough residency cost of one warm handle: the relevant table's storage
  /// plus a fixed per-query artifact charge. An estimate — artifacts are
  /// not individually sized — but proportional and stable, which is what
  /// LRU accounting needs.
  static size_t EstimateWarmBytes(const Table& relevant, size_t num_queries);

 private:
  struct Entry {
    std::string plan_path;
    std::string relevant_csv_path;
    /// Resident handle; null while cold or mid-load.
    std::shared_ptr<const FittedAugmenter> handle;
    size_t warm_bytes = 0;
    /// Monotonic acquisition stamp for LRU ordering.
    uint64_t last_used = 0;
    bool loading = false;
  };

  /// Evicts least-recently-used residents (excluding `keep`) until the cap
  /// holds. Caller holds mu_.
  void EvictForLocked(const std::string& keep);

  PlanRegistryOptions options_;
  mutable std::mutex mu_;
  std::condition_variable load_cv_;
  std::unordered_map<std::string, Entry> entries_;
  uint64_t use_tick_ = 0;
  size_t warm_bytes_ = 0;
  size_t num_loads_ = 0;
  size_t num_evictions_ = 0;
};

}  // namespace serve
}  // namespace featlib

#pragma once

/// \file protocol.h
/// \brief The serving daemon's wire protocol: versioned, CRC32-enveloped
/// binary frames over a stream socket, carrying typed request/response
/// messages and a byte-exact columnar table encoding.
///
/// Every frame is a fixed 16-byte header followed by the payload:
///
///   offset  size  field
///   0       4     magic "FAUG"
///   4       1     protocol version (kProtocolVersion)
///   5       1     message type (MessageType)
///   6       2     reserved (must be zero)
///   8       4     payload length, little-endian
///   12      4     CRC-32 of the payload (common/file_io.h Crc32)
///   16      ...   payload
///
/// The envelope makes corruption detectable before any payload parsing: a
/// bad magic/version/reserved field or an oversized length prefix rejects
/// the frame as kInvalidArgument (the stream is unsynchronized — the peer
/// must close), a checksum mismatch rejects it as kDataLoss, and a short
/// buffer is simply "need more bytes" (TryDecodeFrame). Payload decoding is
/// bounds-checked end to end, so a truncated or bit-flipped payload that
/// slips past the CRC (it cannot, but the decoder does not rely on that)
/// yields a typed error, never undefined behavior — the robustness contract
/// tests/serve_protocol_test.cc pins byte by byte.
///
/// Tables travel in a columnar little-endian encoding that round-trips
/// bit-exactly: doubles are copied as raw bit patterns (NaN payloads, -0.0
/// preserved), string dictionaries are shipped in storage order with codes
/// verbatim, and null rows are canonicalized to placeholder zeros so equal
/// tables always encode to equal bytes. Responses decoded by the client are
/// therefore byte-identical to the in-process Transform output they mirror.
///
/// Status travels as (StatusCode byte, message); the numeric code values
/// are frozen by kProtocolVersion — bumping either side's enum requires a
/// version bump.

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "table/table.h"

namespace featlib {
namespace serve {

inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr char kMagic[4] = {'F', 'A', 'U', 'G'};
inline constexpr size_t kFrameHeaderBytes = 16;
/// Upper bound on a payload; a length prefix past this is rejected before
/// any allocation, so a hostile or corrupt 4GB length cannot OOM the
/// daemon.
inline constexpr uint32_t kMaxPayloadBytes = 256u << 20;

enum class MessageType : uint8_t {
  kTransformRequest = 1,
  kTransformResponse = 2,
  /// Connection-level protocol error report, sent by the server before it
  /// closes a connection whose stream it can no longer trust.
  kError = 3,
  kPing = 4,
  kPong = 5,
  kListPlans = 6,
  kPlanList = 7,
};

/// One decoded frame: the message type and its raw payload (still to be
/// parsed by the matching Decode* function).
struct Frame {
  MessageType type = MessageType::kError;
  std::string payload;
};

/// \name Framing
/// @{

/// Renders the 16-byte envelope + payload.
std::string EncodeFrame(MessageType type, const std::string& payload);

enum class DecodeOutcome {
  kFrame,     ///< *out holds a verified frame; *consumed bytes were eaten.
  kNeedMore,  ///< the buffer holds a valid prefix; read more and retry.
  kCorrupt,   ///< unrecoverable: *error holds the typed reason, close.
};

/// Attempts to decode one frame from buf[offset..). Never throws, never
/// reads out of bounds, never allocates more than the (validated) payload
/// length.
DecodeOutcome TryDecodeFrame(const std::string& buf, size_t offset,
                             Frame* out, size_t* consumed, Status* error);

/// Blocking fd variants used by the server's reader threads and the client.
/// ReadFrame returns kIOError("connection closed") on clean EOF at a frame
/// boundary, kDataLoss/kInvalidArgument on a corrupt envelope, and retries
/// EINTR internally.
Status WriteFrame(int fd, MessageType type, const std::string& payload);
Result<Frame> ReadFrame(int fd);
/// @}

/// \name Table wire codec (byte-exact round trip)
/// @{
void AppendTable(std::string* out, const Table& table);
std::string EncodeTable(const Table& table);
/// Decodes a table starting at *cursor; advances *cursor past it.
Result<Table> DecodeTable(const std::string& payload, size_t* cursor);
/// @}

/// \name Messages
/// @{

struct TransformRequest {
  uint64_t request_id = 0;
  std::string plan;
  /// Relative deadline in microseconds from server receipt; 0 = none. The
  /// server arms an ExecContext deadline and also refuses to start work on
  /// a request that already expired while coalescing.
  uint64_t deadline_us = 0;
  Table batch;
};

struct TransformResponse {
  uint64_t request_id = 0;
  Status status;   // non-OK => `table` is empty and meaningless
  Table table;
};

struct ErrorMessage {
  std::string message;
};

struct PlanInfo {
  std::string name;
  bool loaded = false;
  uint64_t warm_bytes = 0;
};

struct PlanList {
  std::vector<PlanInfo> plans;
};

std::string EncodeTransformRequest(const TransformRequest& req);
Result<TransformRequest> DecodeTransformRequest(const std::string& payload);

std::string EncodeTransformResponse(const TransformResponse& resp);
Result<TransformResponse> DecodeTransformResponse(const std::string& payload);

std::string EncodeErrorMessage(const ErrorMessage& msg);
Result<ErrorMessage> DecodeErrorMessage(const std::string& payload);

std::string EncodePlanList(const PlanList& list);
Result<PlanList> DecodePlanList(const std::string& payload);
/// @}

}  // namespace serve
}  // namespace featlib

#include "serve/protocol.h"

#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>

#include "common/file_io.h"

namespace featlib {
namespace serve {

namespace {

// ---- Little-endian scalar append/read ------------------------------------
// memcpy-based so the encoding is defined regardless of alignment; every
// supported host (x86-64, aarch64) is little-endian, which the protocol
// freezes as the on-wire order.

template <typename T>
void AppendScalar(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

void AppendString(std::string* out, const std::string& s) {
  AppendScalar<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked cursor over a payload: every read validates the remaining
/// byte count first, so arbitrarily corrupt payloads decode to a typed
/// kDataLoss, never an out-of-bounds read.
class ByteReader {
 public:
  ByteReader(const std::string& data, size_t cursor)
      : data_(data), cursor_(cursor) {}

  template <typename T>
  Status Read(T* out) {
    if (data_.size() - cursor_ < sizeof(T)) return Truncated();
    std::memcpy(out, data_.data() + cursor_, sizeof(T));
    cursor_ += sizeof(T);
    return Status::OK();
  }

  Status ReadString(std::string* out) {
    uint32_t len = 0;
    FEAT_RETURN_NOT_OK(Read(&len));
    if (data_.size() - cursor_ < len) return Truncated();
    out->assign(data_.data() + cursor_, len);
    cursor_ += len;
    return Status::OK();
  }

  /// Raw byte run of known length (validity vectors, typed column arrays).
  Status ReadBytes(void* out, size_t n) {
    if (n == 0) return Status::OK();
    if (data_.size() - cursor_ < n) return Truncated();
    std::memcpy(out, data_.data() + cursor_, n);
    cursor_ += n;
    return Status::OK();
  }

  size_t cursor() const { return cursor_; }
  size_t remaining() const { return data_.size() - cursor_; }

 private:
  static Status Truncated() {
    return Status::DataLoss("truncated message payload");
  }

  const std::string& data_;
  size_t cursor_;
};

}  // namespace

// ---- Framing --------------------------------------------------------------

std::string EncodeFrame(MessageType type, const std::string& payload) {
  FEAT_CHECK(payload.size() <= kMaxPayloadBytes, "oversized frame payload");
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.append(kMagic, sizeof(kMagic));
  out.push_back(static_cast<char>(kProtocolVersion));
  out.push_back(static_cast<char>(type));
  out.push_back(0);  // reserved
  out.push_back(0);
  AppendScalar<uint32_t>(&out, static_cast<uint32_t>(payload.size()));
  AppendScalar<uint32_t>(&out, Crc32(payload));
  out.append(payload);
  return out;
}

DecodeOutcome TryDecodeFrame(const std::string& buf, size_t offset,
                             Frame* out, size_t* consumed, Status* error) {
  const size_t available = buf.size() - offset;
  if (available < kFrameHeaderBytes) return DecodeOutcome::kNeedMore;
  const char* h = buf.data() + offset;
  if (std::memcmp(h, kMagic, sizeof(kMagic)) != 0) {
    *error = Status::InvalidArgument("bad frame magic");
    return DecodeOutcome::kCorrupt;
  }
  const uint8_t version = static_cast<uint8_t>(h[4]);
  if (version != kProtocolVersion) {
    *error = Status::InvalidArgument(
        "unsupported protocol version " + std::to_string(version));
    return DecodeOutcome::kCorrupt;
  }
  const uint8_t raw_type = static_cast<uint8_t>(h[5]);
  if (raw_type < static_cast<uint8_t>(MessageType::kTransformRequest) ||
      raw_type > static_cast<uint8_t>(MessageType::kPlanList)) {
    *error = Status::InvalidArgument("unknown message type " +
                                     std::to_string(raw_type));
    return DecodeOutcome::kCorrupt;
  }
  if (h[6] != 0 || h[7] != 0) {
    *error = Status::InvalidArgument("nonzero reserved frame bytes");
    return DecodeOutcome::kCorrupt;
  }
  uint32_t payload_len = 0;
  uint32_t payload_crc = 0;
  std::memcpy(&payload_len, h + 8, sizeof(payload_len));
  std::memcpy(&payload_crc, h + 12, sizeof(payload_crc));
  if (payload_len > kMaxPayloadBytes) {
    *error = Status::InvalidArgument(
        "frame payload length " + std::to_string(payload_len) +
        " exceeds the " + std::to_string(kMaxPayloadBytes) + "-byte cap");
    return DecodeOutcome::kCorrupt;
  }
  if (available < kFrameHeaderBytes + payload_len) {
    return DecodeOutcome::kNeedMore;
  }
  const char* payload = h + kFrameHeaderBytes;
  if (Crc32Update(0, payload, payload_len) != payload_crc) {
    *error = Status::DataLoss("frame payload checksum mismatch");
    return DecodeOutcome::kCorrupt;
  }
  out->type = static_cast<MessageType>(raw_type);
  out->payload.assign(payload, payload_len);
  *consumed = kFrameHeaderBytes + payload_len;
  return DecodeOutcome::kFrame;
}

namespace {

Status WriteAll(int fd, const char* data, size_t len) {
  size_t written = 0;
  while (written < len) {
    const ssize_t n = ::write(fd, data + written, len - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("socket write failed: " +
                             std::string(std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `len` bytes. `eof_ok_at_start`: a clean EOF before the
/// first byte is the peer hanging up between frames — reported distinctly so
/// reader loops can exit quietly.
Status ReadAll(int fd, char* data, size_t len, bool eof_ok_at_start) {
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, data + got, len - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("socket read failed: " +
                             std::string(std::strerror(errno)));
    }
    if (n == 0) {
      if (got == 0 && eof_ok_at_start) {
        return Status::IOError("connection closed");
      }
      return Status::DataLoss("connection closed mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, MessageType type, const std::string& payload) {
  const std::string frame = EncodeFrame(type, payload);
  return WriteAll(fd, frame.data(), frame.size());
}

Result<Frame> ReadFrame(int fd) {
  std::string buf(kFrameHeaderBytes, '\0');
  FEAT_RETURN_NOT_OK(ReadAll(fd, buf.data(), kFrameHeaderBytes,
                             /*eof_ok_at_start=*/true));
  // Validate the envelope before trusting the length prefix.
  Frame frame;
  size_t consumed = 0;
  Status error;
  DecodeOutcome outcome = TryDecodeFrame(buf, 0, &frame, &consumed, &error);
  if (outcome == DecodeOutcome::kCorrupt) return error;
  uint32_t payload_len = 0;
  std::memcpy(&payload_len, buf.data() + 8, sizeof(payload_len));
  buf.resize(kFrameHeaderBytes + payload_len);
  FEAT_RETURN_NOT_OK(ReadAll(fd, buf.data() + kFrameHeaderBytes, payload_len,
                             /*eof_ok_at_start=*/false));
  outcome = TryDecodeFrame(buf, 0, &frame, &consumed, &error);
  if (outcome != DecodeOutcome::kFrame) return error;
  return frame;
}

// ---- Table wire codec ------------------------------------------------------

void AppendTable(std::string* out, const Table& table) {
  AppendScalar<uint32_t>(out, static_cast<uint32_t>(table.num_columns()));
  AppendScalar<uint64_t>(out, static_cast<uint64_t>(table.num_rows()));
  const size_t rows = table.num_rows();
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.ColumnAt(c);
    AppendString(out, table.NameAt(c));
    out->push_back(static_cast<char>(col.type()));
    if (rows > 0) {
      out->append(reinterpret_cast<const char*>(col.raw_validity()), rows);
    }
    switch (col.type()) {
      case DataType::kInt64:
      case DataType::kDatetime:
      case DataType::kBool:
        // Null rows are canonicalized so equal tables encode to equal
        // bytes regardless of how their placeholders were produced.
        for (size_t r = 0; r < rows; ++r) {
          AppendScalar<int64_t>(out, col.IsNull(r) ? 0 : col.raw_ints()[r]);
        }
        break;
      case DataType::kDouble:
        for (size_t r = 0; r < rows; ++r) {
          const double v = col.IsNull(r) ? 0.0 : col.raw_doubles()[r];
          AppendScalar<double>(out, v);  // raw bit pattern
        }
        break;
      case DataType::kString: {
        const std::vector<std::string>& dict = col.dictionary();
        AppendScalar<uint32_t>(out, static_cast<uint32_t>(dict.size()));
        for (const std::string& s : dict) AppendString(out, s);
        for (size_t r = 0; r < rows; ++r) {
          AppendScalar<int32_t>(out, col.IsNull(r) ? -1 : col.raw_codes()[r]);
        }
        break;
      }
    }
  }
}

std::string EncodeTable(const Table& table) {
  std::string out;
  AppendTable(&out, table);
  return out;
}

Result<Table> DecodeTable(const std::string& payload, size_t* cursor) {
  ByteReader reader(payload, *cursor);
  uint32_t num_columns = 0;
  uint64_t num_rows = 0;
  FEAT_RETURN_NOT_OK(reader.Read(&num_columns));
  FEAT_RETURN_NOT_OK(reader.Read(&num_rows));
  // A corrupt count cannot claim more cells than bytes remain (each row of
  // each column costs at least one validity byte).
  if (num_columns > reader.remaining() ||
      (num_columns > 0 && num_rows > reader.remaining() / num_columns)) {
    return Status::DataLoss("table header claims more cells than the payload holds");
  }
  Table table;
  for (uint32_t c = 0; c < num_columns; ++c) {
    std::string name;
    FEAT_RETURN_NOT_OK(reader.ReadString(&name));
    uint8_t raw_type = 0;
    FEAT_RETURN_NOT_OK(reader.Read(&raw_type));
    if (raw_type > static_cast<uint8_t>(DataType::kBool)) {
      return Status::DataLoss("unknown column type " + std::to_string(raw_type));
    }
    const DataType type = static_cast<DataType>(raw_type);
    std::vector<uint8_t> validity(num_rows);
    FEAT_RETURN_NOT_OK(reader.ReadBytes(validity.data(), num_rows));
    Column col(type);
    col.Reserve(num_rows);
    switch (type) {
      case DataType::kInt64:
      case DataType::kDatetime:
      case DataType::kBool:
        for (uint64_t r = 0; r < num_rows; ++r) {
          int64_t v = 0;
          FEAT_RETURN_NOT_OK(reader.Read(&v));
          if (validity[r]) {
            col.AppendInt(v);
          } else {
            col.AppendNull();
          }
        }
        break;
      case DataType::kDouble:
        for (uint64_t r = 0; r < num_rows; ++r) {
          double v = 0;
          FEAT_RETURN_NOT_OK(reader.Read(&v));
          if (validity[r] && !std::isnan(v)) {
            col.AppendDouble(v);
          } else {
            col.AppendNull();
          }
        }
        break;
      case DataType::kString: {
        uint32_t dict_size = 0;
        FEAT_RETURN_NOT_OK(reader.Read(&dict_size));
        if (dict_size > reader.remaining()) {
          return Status::DataLoss("string dictionary larger than payload");
        }
        // Seed the dictionary in storage order so decoded codes are
        // verbatim — AsDouble (which maps strings to their code) stays
        // byte-identical across the wire.
        std::vector<std::string> dict(dict_size);
        for (uint32_t i = 0; i < dict_size; ++i) {
          FEAT_RETURN_NOT_OK(reader.ReadString(&dict[i]));
        }
        for (uint32_t i = 0; i < dict_size; ++i) {
          const int32_t code = col.GetOrAddCode(dict[i]);
          if (code != static_cast<int32_t>(i)) {
            return Status::DataLoss("duplicate string dictionary entry");
          }
        }
        for (uint64_t r = 0; r < num_rows; ++r) {
          int32_t code = 0;
          FEAT_RETURN_NOT_OK(reader.Read(&code));
          if (!validity[r]) {
            col.AppendNull();
          } else if (code < 0 || code >= static_cast<int32_t>(dict_size)) {
            return Status::DataLoss("string code out of dictionary range");
          } else {
            col.AppendCode(code);
          }
        }
        break;
      }
    }
    FEAT_RETURN_NOT_OK(table.AddColumn(name, std::move(col)));
  }
  *cursor = reader.cursor();
  return table;
}

// ---- Messages --------------------------------------------------------------

std::string EncodeTransformRequest(const TransformRequest& req) {
  std::string out;
  AppendScalar<uint64_t>(&out, req.request_id);
  AppendString(&out, req.plan);
  AppendScalar<uint64_t>(&out, req.deadline_us);
  AppendTable(&out, req.batch);
  return out;
}

Result<TransformRequest> DecodeTransformRequest(const std::string& payload) {
  TransformRequest req;
  ByteReader reader(payload, 0);
  FEAT_RETURN_NOT_OK(reader.Read(&req.request_id));
  FEAT_RETURN_NOT_OK(reader.ReadString(&req.plan));
  FEAT_RETURN_NOT_OK(reader.Read(&req.deadline_us));
  size_t cursor = reader.cursor();
  FEAT_ASSIGN_OR_RETURN(req.batch, DecodeTable(payload, &cursor));
  if (cursor != payload.size()) {
    return Status::DataLoss("trailing bytes after transform request");
  }
  return req;
}

std::string EncodeTransformResponse(const TransformResponse& resp) {
  std::string out;
  AppendScalar<uint64_t>(&out, resp.request_id);
  out.push_back(static_cast<char>(resp.status.code()));
  AppendString(&out, resp.status.message());
  if (resp.status.ok()) AppendTable(&out, resp.table);
  return out;
}

Result<TransformResponse> DecodeTransformResponse(const std::string& payload) {
  TransformResponse resp;
  ByteReader reader(payload, 0);
  FEAT_RETURN_NOT_OK(reader.Read(&resp.request_id));
  uint8_t raw_code = 0;
  FEAT_RETURN_NOT_OK(reader.Read(&raw_code));
  if (raw_code > static_cast<uint8_t>(StatusCode::kDataLoss)) {
    return Status::DataLoss("unknown status code " + std::to_string(raw_code));
  }
  std::string message;
  FEAT_RETURN_NOT_OK(reader.ReadString(&message));
  resp.status = Status(static_cast<StatusCode>(raw_code), std::move(message));
  if (resp.status.ok()) {
    size_t cursor = reader.cursor();
    FEAT_ASSIGN_OR_RETURN(resp.table, DecodeTable(payload, &cursor));
    if (cursor != payload.size()) {
      return Status::DataLoss("trailing bytes after transform response");
    }
  } else if (reader.remaining() != 0) {
    return Status::DataLoss("trailing bytes after error response");
  }
  return resp;
}

std::string EncodeErrorMessage(const ErrorMessage& msg) {
  std::string out;
  AppendString(&out, msg.message);
  return out;
}

Result<ErrorMessage> DecodeErrorMessage(const std::string& payload) {
  ErrorMessage msg;
  ByteReader reader(payload, 0);
  FEAT_RETURN_NOT_OK(reader.ReadString(&msg.message));
  if (reader.remaining() != 0) {
    return Status::DataLoss("trailing bytes after error message");
  }
  return msg;
}

std::string EncodePlanList(const PlanList& list) {
  std::string out;
  AppendScalar<uint32_t>(&out, static_cast<uint32_t>(list.plans.size()));
  for (const PlanInfo& info : list.plans) {
    AppendString(&out, info.name);
    out.push_back(info.loaded ? 1 : 0);
    AppendScalar<uint64_t>(&out, info.warm_bytes);
  }
  return out;
}

Result<PlanList> DecodePlanList(const std::string& payload) {
  PlanList list;
  ByteReader reader(payload, 0);
  uint32_t count = 0;
  FEAT_RETURN_NOT_OK(reader.Read(&count));
  if (count > reader.remaining()) {
    return Status::DataLoss("plan list count exceeds payload");
  }
  list.plans.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    FEAT_RETURN_NOT_OK(reader.ReadString(&list.plans[i].name));
    uint8_t loaded = 0;
    FEAT_RETURN_NOT_OK(reader.Read(&loaded));
    list.plans[i].loaded = loaded != 0;
    FEAT_RETURN_NOT_OK(reader.Read(&list.plans[i].warm_bytes));
  }
  if (reader.remaining() != 0) {
    return Status::DataLoss("trailing bytes after plan list");
  }
  return list;
}

}  // namespace serve
}  // namespace featlib

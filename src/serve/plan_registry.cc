#include "serve/plan_registry.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>

#include "core/plan_io.h"
#include "table/csv.h"

namespace featlib {
namespace serve {

Status PlanRegistry::AddPlan(const std::string& name,
                             const std::string& plan_path,
                             const std::string& relevant_csv_path) {
  if (name.empty()) return Status::InvalidArgument("empty plan name");
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.count(name) > 0) {
    return Status::InvalidArgument("duplicate plan name: " + name);
  }
  Entry entry;
  entry.plan_path = plan_path;
  entry.relevant_csv_path = relevant_csv_path;
  entries_.emplace(name, std::move(entry));
  return Status::OK();
}

Status PlanRegistry::DiscoverPlans(const std::string& dir, size_t* num_found) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::IOError("cannot open plan directory " + dir);
  }
  std::vector<std::string> names;
  constexpr const char* kPlanSuffix = ".sql";
  while (struct dirent* ent = ::readdir(d)) {
    const std::string file = ent->d_name;
    if (file.size() <= 4 || file.substr(file.size() - 4) != kPlanSuffix) {
      continue;
    }
    const std::string name = file.substr(0, file.size() - 4);
    // A plan needs its relevant table beside it; skip unpaired files.
    struct stat st;
    const std::string relevant = dir + "/" + name + ".relevant.csv";
    if (::stat(relevant.c_str(), &st) != 0) continue;
    names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  size_t found = 0;
  for (const std::string& name : names) {
    Status st = AddPlan(name, dir + "/" + name + ".sql",
                        dir + "/" + name + ".relevant.csv");
    if (st.ok()) ++found;
  }
  if (num_found != nullptr) *num_found = found;
  return Status::OK();
}

size_t PlanRegistry::EstimateWarmBytes(const Table& relevant,
                                       size_t num_queries) {
  size_t bytes = 0;
  const size_t rows = relevant.num_rows();
  for (size_t c = 0; c < relevant.num_columns(); ++c) {
    const Column& col = relevant.ColumnAt(c);
    bytes += rows;  // validity
    switch (col.type()) {
      case DataType::kString: {
        bytes += rows * sizeof(int32_t);
        for (const std::string& s : col.dictionary()) bytes += s.size() + 16;
        break;
      }
      default:
        bytes += rows * 8;
        break;
    }
  }
  // Masks/materializations scale with rows per query; group indexes and
  // views are shared. One byte-per-row-per-query is the order of a packed
  // mask plus its share of the bucket materializations.
  bytes += num_queries * (rows + 4096);
  return bytes;
}

Result<std::shared_ptr<const FittedAugmenter>> PlanRegistry::Acquire(
    const std::string& name) {
  std::string plan_path;
  std::string relevant_path;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      return Status::NotFound("unknown plan: " + name);
    }
    // Wait out a concurrent load of the same plan rather than duplicating
    // the compile; the loader wakes every waiter on completion or failure.
    load_cv_.wait(lock, [&] { return !it->second.loading; });
    if (it->second.handle != nullptr) {
      it->second.last_used = ++use_tick_;
      return it->second.handle;
    }
    it->second.loading = true;
    plan_path = it->second.plan_path;
    relevant_path = it->second.relevant_csv_path;
  }

  // Load + compile outside the lock: a slow plan never blocks hits on
  // other plans. Exactly one thread is here per (plan, residency episode).
  // A failed load clears `loading` so the next Acquire retries (transient
  // IO errors should not poison the plan forever).
  auto fail = [&](const Status& status)
      -> Result<std::shared_ptr<const FittedAugmenter>> {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.at(name).loading = false;
    load_cv_.notify_all();
    return status;
  };

  auto relevant = ReadCsv(relevant_path);
  if (!relevant.ok()) {
    return fail(Status(relevant.status().code(),
                       "loading relevant table " + relevant_path + ": " +
                           relevant.status().message()));
  }
  auto fitted = LoadFittedAugmenter(plan_path, relevant.value());
  if (!fitted.ok()) {
    return fail(Status(fitted.status().code(),
                       "loading plan " + plan_path + ": " +
                           fitted.status().message()));
  }
  const size_t warm_bytes = EstimateWarmBytes(
      relevant.value(), fitted.value()->num_features());
  std::shared_ptr<const FittedAugmenter> handle(std::move(fitted).ValueOrDie());

  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_.at(name);
  entry.loading = false;
  entry.handle = handle;
  entry.warm_bytes = warm_bytes;
  entry.last_used = ++use_tick_;
  warm_bytes_ += warm_bytes;
  ++num_loads_;
  EvictForLocked(name);
  load_cv_.notify_all();
  return handle;
}

void PlanRegistry::EvictForLocked(const std::string& keep) {
  if (options_.warm_cap_bytes == 0) return;
  while (warm_bytes_ > options_.warm_cap_bytes) {
    // Least-recently-acquired resident other than the protected one.
    Entry* victim = nullptr;
    for (auto& [name, entry] : entries_) {
      if (entry.handle == nullptr || name == keep) continue;
      if (victim == nullptr || entry.last_used < victim->last_used) {
        victim = &entry;
      }
    }
    if (victim == nullptr) break;  // only the protected plan is resident
    warm_bytes_ -= victim->warm_bytes;
    victim->warm_bytes = 0;
    // Dropping the reference is the whole eviction: in-flight holders of
    // this shared_ptr keep the store alive until they finish.
    victim->handle.reset();
    ++num_evictions_;
  }
}

std::vector<PlanInfo> PlanRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PlanInfo> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    PlanInfo info;
    info.name = name;
    info.loaded = entry.handle != nullptr;
    info.warm_bytes = entry.warm_bytes;
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const PlanInfo& a, const PlanInfo& b) { return a.name < b.name; });
  return out;
}

bool PlanRegistry::IsResident(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.handle != nullptr;
}

size_t PlanRegistry::warm_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return warm_bytes_;
}

size_t PlanRegistry::num_loads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_loads_;
}

size_t PlanRegistry::num_evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_evictions_;
}

}  // namespace serve
}  // namespace featlib

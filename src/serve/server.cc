#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace featlib {
namespace serve {

namespace {

/// Signal-delivery state for EnableSignalDrain: async-signal-safe (one
/// atomic store + one pipe write). Process-global because sigaction is.
std::atomic<int> g_signal_wake_fd{-1};

void DrainSignalHandler(int /*signo*/) {
  const int fd = g_signal_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    // Best effort; if the pipe is full the watcher is already waking.
    [[maybe_unused]] ssize_t n = ::write(fd, &byte, 1);
  }
}

Status ErrnoStatus(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

void Server::Connection::Close() {
  bool expected = false;
  if (closed.compare_exchange_strong(expected, true)) {
    // Shutdown first so a blocked reader wakes with EOF; close under the
    // write mutex so no writer races the fd teardown.
    ::shutdown(fd, SHUT_RDWR);
    std::lock_guard<std::mutex> lock(write_mu);
    ::close(fd);
    fd = -1;
  }
}

bool Server::Connection::Write(MessageType type, const std::string& payload) {
  std::lock_guard<std::mutex> lock(write_mu);
  if (closed.load(std::memory_order_acquire) || fd < 0) return false;
  return WriteFrame(fd, type, payload).ok();
}

Server::Server(PlanRegistry* registry, ServerOptions options)
    : registry_(registry), options_(std::move(options)),
      batcher_(options_.batcher) {}

Server::~Server() {
  Shutdown();
  if (signal_thread_.joinable()) signal_thread_.join();
}

Status Server::Start() {
  if (options_.unix_socket_path.empty() && options_.tcp_port < 0) {
    return Status::InvalidArgument("no listener configured");
  }
  if (::pipe(wake_pipe_) != 0) return ErrnoStatus("pipe");

  if (!options_.unix_socket_path.empty()) {
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd_ < 0) return ErrnoStatus("socket(AF_UNIX)");
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " +
                                     options_.unix_socket_path);
    }
    std::strncpy(addr.sun_path, options_.unix_socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_socket_path.c_str());  // stale socket from a prior run
    if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      return ErrnoStatus("bind(" + options_.unix_socket_path + ")");
    }
    if (::listen(unix_fd_, 64) != 0) return ErrnoStatus("listen(unix)");
  }

  if (options_.tcp_port >= 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd_ < 0) return ErrnoStatus("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      return ErrnoStatus("bind(tcp port " + std::to_string(options_.tcp_port) + ")");
    }
    if (::listen(tcp_fd_, 64) != 0) return ErrnoStatus("listen(tcp)");
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      return ErrnoStatus("getsockname");
    }
    bound_tcp_port_ = ntohs(bound.sin_port);
  }

  started_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::AcceptLoop() {
  for (;;) {
    pollfd fds[3];
    nfds_t nfds = 0;
    int unix_slot = -1;
    int tcp_slot = -1;
    fds[nfds] = {wake_pipe_[0], POLLIN, 0};
    ++nfds;
    if (unix_fd_ >= 0) {
      unix_slot = static_cast<int>(nfds);
      fds[nfds] = {unix_fd_, POLLIN, 0};
      ++nfds;
    }
    if (tcp_fd_ >= 0) {
      tcp_slot = static_cast<int>(nfds);
      fds[nfds] = {tcp_fd_, POLLIN, 0};
      ++nfds;
    }
    const int rc = ::poll(fds, nfds, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[0].revents != 0 || draining_.load(std::memory_order_acquire)) {
      return;  // shutdown woke us; stop accepting
    }
    for (int slot : {unix_slot, tcp_slot}) {
      if (slot < 0 || (fds[slot].revents & POLLIN) == 0) continue;
      const int client = ::accept(fds[slot].fd, nullptr, nullptr);
      if (client < 0) continue;
      auto conn = std::make_shared<Connection>();
      conn->fd = client;
      connections_accepted_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (draining_.load(std::memory_order_acquire)) {
        // Raced with shutdown: refuse rather than strand a reader.
        ::close(client);
        continue;
      }
      connections_.push_back(conn);
      reader_threads_.emplace_back([this, conn] { ReaderLoop(conn); });
    }
  }
}

void Server::ReaderLoop(std::shared_ptr<Connection> conn) {
  for (;;) {
    auto frame = ReadFrame(conn->fd);
    if (!frame.ok()) {
      // EOF at a frame boundary is the peer hanging up; anything else is a
      // corrupt stream — report it (best effort) before closing, so a
      // well-behaved client learns why instead of seeing a bare hangup.
      const bool clean_eof = frame.status().code() == StatusCode::kIOError &&
                             frame.status().message() == "connection closed";
      if (!clean_eof && !conn->closed.load(std::memory_order_acquire)) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        ErrorMessage msg;
        msg.message = frame.status().ToString();
        conn->Write(MessageType::kError, EncodeErrorMessage(msg));
      }
      conn->Close();
      return;
    }
    if (!HandleFrame(conn, std::move(frame).ValueOrDie())) {
      conn->Close();
      return;
    }
  }
}

bool Server::HandleFrame(const std::shared_ptr<Connection>& conn,
                         Frame frame) {
  switch (frame.type) {
    case MessageType::kPing:
      return conn->Write(MessageType::kPong, frame.payload);
    case MessageType::kListPlans: {
      PlanList list;
      list.plans = registry_->List();
      return conn->Write(MessageType::kPlanList, EncodePlanList(list));
    }
    case MessageType::kTransformRequest:
      HandleTransform(conn, frame.payload);
      return true;
    default: {
      // A syntactically valid frame the server does not expect (responses,
      // errors): the stream is healthy but the peer is confused — answer
      // with a typed error and keep the connection.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      ErrorMessage msg;
      msg.message = "unexpected message type " +
                    std::to_string(static_cast<int>(frame.type));
      return conn->Write(MessageType::kError, EncodeErrorMessage(msg));
    }
  }
}

void Server::HandleTransform(const std::shared_ptr<Connection>& conn,
                             const std::string& payload) {
  auto decoded = DecodeTransformRequest(payload);
  if (!decoded.ok()) {
    // The frame envelope was valid (CRC passed) but the payload does not
    // parse: the stream itself is still synchronized, so fail the request,
    // not the connection. request_id is unknown — echo 0.
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    TransformResponse resp;
    resp.request_id = 0;
    resp.status = decoded.status();
    conn->Write(MessageType::kTransformResponse,
                EncodeTransformResponse(resp));
    return;
  }
  TransformRequest req = std::move(decoded).ValueOrDie();
  const uint64_t request_id = req.request_id;

  auto respond = [this, conn, request_id](Status status, Table table) {
    TransformResponse resp;
    resp.request_id = request_id;
    resp.status = std::move(status);
    resp.table = std::move(table);
    // Count before the write: a client that already read its response must
    // never observe a stale counter.
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    conn->Write(MessageType::kTransformResponse,
                EncodeTransformResponse(resp));
  };

  auto handle = registry_->Acquire(req.plan);
  if (!handle.ok()) {
    respond(handle.status(), Table());
    return;
  }

  Batcher::Request batch_req;
  batch_req.handle = handle.value();
  batch_req.batch = std::move(req.batch);
  if (req.deadline_us > 0) {
    batch_req.deadline = Batcher::Clock::now() +
                         std::chrono::microseconds(req.deadline_us);
  }
  batch_req.done = respond;
  Status admitted = batcher_.Submit(req.plan, std::move(batch_req));
  if (!admitted.ok()) {
    respond(admitted, Table());
  }
}

Status Server::EnableSignalDrain() {
  if (!started_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("EnableSignalDrain before Start");
  }
  // The watcher owns its own pipe: the handler writes one byte, the
  // watcher blocks on read and runs the drain on its own (non-signal)
  // thread, where locks are safe.
  static int signal_pipe[2] = {-1, -1};
  if (signal_pipe[0] < 0 && ::pipe(signal_pipe) != 0) {
    return ErrnoStatus("pipe(signal)");
  }
  g_signal_wake_fd.store(signal_pipe[1], std::memory_order_relaxed);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = DrainSignalHandler;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  if (::sigaction(SIGTERM, &sa, nullptr) != 0 ||
      ::sigaction(SIGINT, &sa, nullptr) != 0) {
    return ErrnoStatus("sigaction");
  }
  signal_thread_ = std::thread([this] {
    char byte;
    while (::read(signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    Shutdown();
  });
  return Status::OK();
}

void Server::Shutdown() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) {
    Wait();  // another thread is draining; join its completion
    return;
  }
  if (!started_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_complete_ = true;
    shutdown_cv_.notify_all();
    return;
  }

  // 1. Refuse new connections: close the listeners, wake the accept poll.
  if (wake_pipe_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    ::unlink(options_.unix_socket_path.c_str());
    unix_fd_ = -1;
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }

  // 2. Drain: flush every pending group and deliver every admitted
  // response. Readers are still alive, so responses still have their
  // connections; requests arriving during the drain are refused by the
  // batcher with kCancelled and answered immediately.
  batcher_.Shutdown();

  // 3. Tear down connections (wakes blocked readers with EOF) and join.
  std::vector<std::shared_ptr<Connection>> conns;
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(connections_);
    readers.swap(reader_threads_);
  }
  for (auto& conn : conns) conn->Close();
  for (std::thread& reader : readers) {
    if (reader.joinable()) reader.join();
  }

  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;

  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_complete_ = true;
    shutdown_cv_.notify_all();
  }
  // Wake a signal watcher that never saw its signal so ~Server can join it
  // (the watcher's own Shutdown call is an idempotent no-op by then).
  DrainSignalHandler(0);
}

void Server::Wait() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_complete_; });
}

}  // namespace serve
}  // namespace featlib

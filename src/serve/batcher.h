#pragma once

/// \file batcher.h
/// \brief Admission/batching policy: coalesces small concurrent Transform
/// requests for the same plan into one TransformManyIsolated fan-out.
///
/// Serving traffic arrives as many small independent batches; executing
/// each as its own TransformMany call pays the per-call fan-out and train-
/// map binding once per request. The batcher holds the first request of a
/// plan for at most `max_delay_us`, merging every request for that plan
/// that arrives in the window (up to `max_batch_size`), and executes the
/// group as a single TransformManyIsolated call — one fan-out over the
/// pool, per-slot failure isolation mapping each slot's Status back to its
/// own request.
///
/// **Deadlines.** Each request may carry its own deadline. It is honored at
/// three points: a request whose deadline passed while coalescing is failed
/// with kDeadlineExceeded before any work starts (it never poisons its
/// group); the group's ExecContext deadline is the *latest* finite request
/// deadline (so the tightest request cannot kill its siblings' work — a
/// batch-wide ExecContext trip fails the whole call); and after execution,
/// a slot whose own deadline passed during the fan-out reports
/// kDeadlineExceeded instead of a result that arrived too late.
///
/// **Happens-before.** The callback for a request runs exactly once, on a
/// batcher worker thread, after the fan-out for its group completed; the
/// enqueue in Submit synchronizes-with the dequeue in the worker (one
/// mutex), and TransformManyIsolated's internal pool join orders every
/// kernel write before the callback reads the result. Callbacks must not
/// call Submit (they run on the worker that would execute it).
///
/// Shutdown() stops admission (Submit then fails kCancelled("draining")),
/// flushes every pending group, and joins the workers — every request
/// admitted before Shutdown gets its callback before Shutdown returns,
/// which is exactly the drain step of the server's SIGTERM handling.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/augmenter.h"

namespace featlib {
namespace serve {

struct BatcherOptions {
  /// Groups flush as soon as they reach this many requests.
  size_t max_batch_size = 16;
  /// A group with fewer requests flushes this long after its first request
  /// arrived. 0 = flush immediately (coalescing only merges requests that
  /// were already queued while a worker was busy).
  int64_t max_delay_us = 500;
  /// Worker threads executing flushed groups. Distinct plans execute
  /// concurrently up to this limit; one plan's group is one fan-out.
  int num_workers = 2;
  /// Cooperative ExecContext memory budget applied to each fan-out
  /// (the group's combined output columns); 0 = unlimited. A tripped
  /// budget fails the whole group with kResourceExhausted.
  size_t memory_budget_bytes = 0;
};

class Batcher {
 public:
  using Clock = std::chrono::steady_clock;
  /// Exactly-once completion callback: per-slot Status + transformed table
  /// (meaningless unless the status is OK).
  using Callback = std::function<void(Status, Table)>;

  struct Request {
    /// Pinned handle the request executes against (see PlanRegistry —
    /// holding it here keeps an evicted plan's store alive mid-flight).
    std::shared_ptr<const FittedAugmenter> handle;
    Table batch;
    /// Absolute per-request deadline; Clock::time_point::max() = none.
    Clock::time_point deadline = Clock::time_point::max();
    Callback done;
  };

  explicit Batcher(BatcherOptions options = {});
  ~Batcher();

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Enqueues a request for `plan_name`. Requests sharing a plan name (and
  /// therefore a handle) coalesce. Fails immediately — without invoking
  /// the callback — when the batcher is draining.
  Status Submit(const std::string& plan_name, Request request);

  /// Stops admission, flushes all pending groups, waits for every
  /// in-flight callback, joins the workers. Idempotent.
  void Shutdown();

  /// \name Coalescing stats (tests and the bench assert merging happens).
  /// @{
  size_t num_requests() const;
  size_t num_flushes() const;
  /// Flushes that merged >= 2 requests into one fan-out.
  size_t num_coalesced_flushes() const;
  size_t max_flush_size() const;
  /// @}

 private:
  /// A pending group: requests for one plan awaiting flush.
  struct Group {
    std::string plan;
    std::vector<Request> requests;
    Clock::time_point flush_at;  // first-request arrival + max_delay
  };

  void WorkerLoop();
  /// Waits for due/full groups and hands them to workers (runs inline in
  /// the workers: the earliest-deadline waiter doubles as the timer).
  std::shared_ptr<Group> NextReadyGroupLocked(std::unique_lock<std::mutex>& lock);
  void ExecuteGroup(Group* group);

  const BatcherOptions options_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable drain_cv_;
  /// Plan name -> pending group (insertion-ordered flush among equally due
  /// groups via the deque of ready groups).
  std::map<std::string, std::shared_ptr<Group>> pending_;
  std::deque<std::shared_ptr<Group>> ready_;
  bool draining_ = false;
  size_t in_flight_groups_ = 0;

  size_t num_requests_ = 0;
  size_t num_flushes_ = 0;
  size_t num_coalesced_flushes_ = 0;
  size_t max_flush_size_ = 0;

  std::vector<std::thread> workers_;
};

}  // namespace serve
}  // namespace featlib

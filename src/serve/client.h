#pragma once

/// \file client.h
/// \brief Client side of the serving protocol: connect to a running
/// `feataug_serve` daemon over its Unix-domain or TCP socket and issue
/// Transform / Ping / ListPlans calls.
///
/// The client is synchronous — one request in flight per connection — and
/// deliberately thin: framing, request-id bookkeeping, and decode live
/// here; retries, pooling, and load balancing are the caller's business.
/// Transform sends the batch, blocks for the daemon's response (which the
/// daemon may have coalesced with concurrent requests from other
/// connections), verifies the echoed request id, and returns either the
/// transformed table — byte-identical to an in-process Transform on the
/// same fitted plan — or the typed Status the daemon reported for this
/// request (unknown plan, expired deadline, tripped limits, ...).
///
/// A kError frame from the daemon (it could not trust our stream) and any
/// envelope corruption on the way back surface as kDataLoss /
/// kInvalidArgument; the connection is then unusable and should be
/// reconnected. Instances are movable, not copyable, and not thread-safe:
/// use one client per thread (the daemon is built for many connections).

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/protocol.h"
#include "table/table.h"

namespace featlib {
namespace serve {

class ServeClient {
 public:
  static Result<ServeClient> ConnectUnix(const std::string& socket_path);
  static Result<ServeClient> ConnectTcp(const std::string& host, int port);

  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ~ServeClient();

  /// Transforms `batch` against the daemon's plan `plan_name`.
  /// `deadline_us` > 0 asks the daemon to fail the request (typed
  /// kDeadlineExceeded) if it cannot finish within that many microseconds
  /// of receipt; 0 = no deadline.
  Result<Table> Transform(const std::string& plan_name, const Table& batch,
                          uint64_t deadline_us = 0);

  /// Round-trips a small payload through the daemon.
  Status Ping();

  /// Plans the daemon serves, with residency and warm-byte estimates.
  Result<std::vector<PlanInfo>> ListPlans();

  bool connected() const { return fd_ >= 0; }

 private:
  explicit ServeClient(int fd) : fd_(fd) {}

  /// Sends one frame and reads one frame back, expecting `expect` (a
  /// kError frame decodes into its carried message instead).
  Result<Frame> RoundTrip(MessageType type, const std::string& payload,
                          MessageType expect);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
};

}  // namespace serve
}  // namespace featlib

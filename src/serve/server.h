#pragma once

/// \file server.h
/// \brief The serving daemon's core: listening sockets (Unix domain + TCP),
/// per-connection reader threads feeding the coalescing Batcher over a
/// shared PlanRegistry, and graceful drain.
///
/// Connection model: one accept thread polls the listening fds; each
/// accepted connection gets a reader thread that decodes frames and
/// dispatches them. Transform requests are admitted to the Batcher with a
/// callback that serializes the response and writes it back on the
/// requesting connection — writes are serialized per connection by a write
/// mutex, so responses from concurrent flushes never interleave mid-frame.
/// Responses may arrive out of request order (coalescing reorders across
/// plans); the request_id echoes back so clients can pipeline.
///
/// Error containment: a corrupt frame (bad magic/version, oversized length
/// prefix, checksum mismatch) or an unparseable payload gets a typed
/// kError frame back on a best-effort basis, then the connection closes —
/// the stream cannot be resynchronized — while the daemon and every other
/// connection keep serving. A request for an unknown or unloadable plan
/// fails only that request (kTransformResponse with the load's Status);
/// the connection stays usable.
///
/// Graceful drain (Shutdown, or SIGTERM via EnableSignalDrain): the
/// listening sockets close first — new connections are refused — then the
/// batcher drains (every admitted request's response is written), then
/// reader threads are woken by closing their sockets and joined. Wait()
/// blocks until a drain completes, so `feataug_serve` is just
/// Start + EnableSignalDrain + Wait.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "serve/batcher.h"
#include "serve/plan_registry.h"

namespace featlib {
namespace serve {

struct ServerOptions {
  /// Unix-domain listening socket path; empty disables. An existing socket
  /// file at the path is replaced (the common daemon-restart case).
  std::string unix_socket_path;
  /// TCP listening port on 127.0.0.1; -1 disables, 0 binds an ephemeral
  /// port (read it back via tcp_port() — how the tests avoid collisions).
  int tcp_port = -1;
  BatcherOptions batcher;
};

class Server {
 public:
  /// `registry` is borrowed and must outlive the server.
  Server(PlanRegistry* registry, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the configured sockets and starts the accept loop. Fails if
  /// neither listener is configured or a bind fails.
  Status Start();

  /// The TCP port actually bound (after Start); -1 when TCP is disabled.
  int tcp_port() const { return bound_tcp_port_; }

  /// Graceful drain: refuse new connections, deliver every in-flight
  /// response, close connections, join threads. Idempotent; safe from any
  /// thread (including the signal-watcher thread).
  void Shutdown();

  /// Installs a SIGTERM/SIGINT handler (signal-safe: a flag plus a
  /// self-pipe write) and a watcher thread that runs Shutdown() when the
  /// signal arrives. Call at most once, after Start().
  Status EnableSignalDrain();

  /// Blocks until Shutdown() completed (whoever triggered it).
  void Wait();

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// \name Introspection.
  /// @{
  const Batcher& batcher() const { return batcher_; }
  uint64_t num_connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  uint64_t num_requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  uint64_t num_protocol_errors() const {
    return protocol_errors_.load(std::memory_order_relaxed);
  }
  /// @}

 private:
  /// One accepted connection. Reader thread + mutex-serialized writes;
  /// shared_ptr-held by the server and by every in-flight batcher
  /// callback, so a response can always be attempted even if the reader
  /// already saw EOF.
  struct Connection {
    int fd = -1;
    std::mutex write_mu;
    std::atomic<bool> closed{false};

    void Close();
    /// Best-effort framed write; false when the peer is gone.
    bool Write(MessageType type, const std::string& payload);
  };

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Connection> conn);
  /// Dispatches one decoded frame; false => unrecoverable for this
  /// connection (an error frame was attempted), reader should close.
  bool HandleFrame(const std::shared_ptr<Connection>& conn, Frame frame);
  void HandleTransform(const std::shared_ptr<Connection>& conn,
                       const std::string& payload);

  PlanRegistry* registry_;
  ServerOptions options_;
  Batcher batcher_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int bound_tcp_port_ = -1;
  /// Self-pipe waking the accept poll on shutdown.
  int wake_pipe_[2] = {-1, -1};

  std::thread accept_thread_;
  std::thread signal_thread_;

  std::mutex conn_mu_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> reader_threads_;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_complete_ = false;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> protocol_errors_{0};
};

}  // namespace serve
}  // namespace featlib

#pragma once

/// \file value.h
/// \brief Scalar values and logical data types for the table engine.

#include <cstdint>
#include <string>

#include "common/status.h"

namespace featlib {

/// Logical column types. DATETIME is stored as int64 seconds since epoch;
/// BOOL as int64 0/1. STRING columns are dictionary-encoded.
enum class DataType {
  kInt64 = 0,
  kDouble,
  kString,
  kDatetime,
  kBool,
};

/// \brief Returns the canonical lowercase name of a data type.
const char* DataTypeToString(DataType type);

/// True for types whose predicates are range predicates (Def. 2 of the
/// paper): numeric and datetime. STRING and BOOL take equality predicates.
bool IsRangeType(DataType type);

/// \brief A dynamically-typed nullable scalar.
///
/// Used at API boundaries (predicates, cell access, CSV parsing); the hot
/// paths work directly on column storage.
class Value {
 public:
  enum class Tag { kNull, kInt, kDouble, kString };

  Value() : tag_(Tag::kNull) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) {
    Value out;
    out.tag_ = Tag::kInt;
    out.int_ = v;
    return out;
  }
  static Value Double(double v) {
    Value out;
    out.tag_ = Tag::kDouble;
    out.double_ = v;
    return out;
  }
  static Value Str(std::string v) {
    Value out;
    out.tag_ = Tag::kString;
    out.str_ = std::move(v);
    return out;
  }
  static Value Bool(bool v) { return Int(v ? 1 : 0); }

  Tag tag() const { return tag_; }
  bool is_null() const { return tag_ == Tag::kNull; }

  int64_t int_value() const {
    FEAT_CHECK(tag_ == Tag::kInt, "Value is not an int");
    return int_;
  }
  double double_value() const {
    FEAT_CHECK(tag_ == Tag::kDouble, "Value is not a double");
    return double_;
  }
  const std::string& string_value() const {
    FEAT_CHECK(tag_ == Tag::kString, "Value is not a string");
    return str_;
  }

  /// Numeric view: ints and doubles convert; null and strings are NaN.
  double AsDouble() const;

  /// Renders the value for SQL text and debugging (strings are quoted).
  std::string ToSqlLiteral() const;

  bool operator==(const Value& other) const;

 private:
  Tag tag_;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string str_;
};

}  // namespace featlib

#pragma once

/// \file column.h
/// \brief Nullable, typed columnar storage with dictionary-encoded strings.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "table/value.h"

namespace featlib {

/// \brief A single nullable column.
///
/// Storage layout by type:
///  - kInt64 / kDatetime / kBool : vector<int64_t>
///  - kDouble                    : vector<double>
///  - kString                    : vector<int32_t> codes + shared dictionary
/// Validity is a per-row byte vector (favoring simplicity over bit packing;
/// the engine's workloads are algorithm-bound, not memory-bound).
class Column {
 public:
  explicit Column(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const { return valid_.size(); }
  size_t null_count() const { return null_count_; }
  bool IsNull(size_t row) const { return valid_[row] == 0; }

  /// \name Appending
  /// @{
  void AppendNull();
  /// Appends to an int-backed column (kInt64/kDatetime/kBool).
  void AppendInt(int64_t v);
  /// Appends to a kDouble column.
  void AppendDouble(double v);
  /// Appends to a kString column; dictionary-encodes the value.
  void AppendString(const std::string& v);
  /// Appends a dictionary code directly (must be valid for this column).
  void AppendCode(int32_t code);
  /// Type-dispatched append from a dynamic Value (used by CSV and builders).
  Status AppendValue(const Value& v);
  void Reserve(size_t n);
  /// @}

  /// \name Row access (row must be non-null unless stated otherwise)
  /// @{
  int64_t IntAt(size_t row) const;
  double DoubleAt(size_t row) const;
  int32_t CodeAt(size_t row) const;
  const std::string& StringAt(size_t row) const;
  /// Dynamic cell access; returns Value::Null() for null rows.
  Value ValueAt(size_t row) const;
  /// Numeric view used by ML/stats: ints and doubles convert, strings map to
  /// their dictionary code, nulls are NaN.
  double AsDouble(size_t row) const;
  /// @}

  /// \name Dictionary (kString only)
  ///
  /// The dictionary (values + reverse index) lives behind a shared_ptr:
  /// copying a column — and Take(), which used to deep-copy the whole
  /// dictionary per call on the ExecuteAggQuery hot path — shares it in
  /// O(1). Mutation (GetOrAddCode via AppendString) is copy-on-write: a
  /// column whose dictionary is shared clones it before inserting, so
  /// sibling columns never observe each other's appends. Sharing is not
  /// synchronized — concurrent readers are fine, but mutation requires the
  /// column (not just the dictionary) to be exclusively owned by the
  /// writing thread, which matches the engine's single-writer table
  /// construction.
  /// @{
  const std::vector<std::string>& dictionary() const {
    static const std::vector<std::string> kEmpty;
    return dict_ == nullptr ? kEmpty : dict_->values;
  }
  /// Returns the code for `s`, inserting it if absent.
  int32_t GetOrAddCode(const std::string& s);
  /// Returns the code for `s`, or -1 if `s` is not in the dictionary.
  int32_t FindCode(const std::string& s) const;
  /// True when this column shares its dictionary storage with `other`
  /// (introspection for tests pinning the O(1) Take behavior).
  bool SharesDictionaryWith(const Column& other) const {
    return dict_ != nullptr && dict_ == other.dict_;
  }
  /// @}

  /// \name Raw storage views (vectorized kernel backend)
  ///
  /// Direct pointers into the typed backing arrays so the SIMD predicate
  /// evaluator can stream whole cache lines instead of calling the per-row
  /// accessors. Each pointer is meaningful only for the matching type()
  /// (see the storage-layout table above); cells whose validity byte is 0
  /// hold unspecified placeholder values and must be masked out by the
  /// reader, exactly as IsNull() gates the scalar accessors.
  /// @{
  const uint8_t* raw_validity() const { return valid_.data(); }
  const double* raw_doubles() const { return doubles_.data(); }
  const int64_t* raw_ints() const { return ints_.data(); }
  const int32_t* raw_codes() const { return codes_.data(); }
  /// @}

  /// Min/max over non-null rows as doubles. Error if the column is empty,
  /// all-null, or a string column.
  Result<std::pair<double, double>> MinMaxAsDouble() const;

  /// Number of distinct non-null values (exact; hashes the numeric view).
  size_t CountDistinct() const;

  /// Gathers the given rows into a new column (dictionary shared by copy).
  Column Take(const std::vector<uint32_t>& indices) const;

  /// Builds an all-valid int column.
  static Column FromInts(DataType type, const std::vector<int64_t>& values);
  /// Builds a double column; NaN values map to null (AppendDouble rule).
  static Column FromDoubles(const std::vector<double>& values);
  /// Builds an all-valid string column.
  static Column FromStrings(const std::vector<std::string>& values);

 private:
  /// Dictionary storage shared across columns (values + reverse index move
  /// together; they are always mutated as a pair).
  struct Dictionary {
    std::vector<std::string> values;
    std::unordered_map<std::string, int32_t> index;
  };

  bool IsIntBacked() const {
    return type_ == DataType::kInt64 || type_ == DataType::kDatetime ||
           type_ == DataType::kBool;
  }

  /// Returns a dictionary this column may mutate: creates one if absent,
  /// clones the shared one if another column also points at it.
  Dictionary* MutableDictionary();

  DataType type_;
  std::vector<uint8_t> valid_;
  size_t null_count_ = 0;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<int32_t> codes_;
  std::shared_ptr<Dictionary> dict_;  // null until first string appended
};

}  // namespace featlib

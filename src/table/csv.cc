#include "table/csv.h"

#include <fstream>
#include <sstream>

#include "common/str_util.h"

namespace featlib {

namespace {

// Splits one CSV record honoring quotes. `pos` advances past the record.
std::vector<std::string> ParseRecord(const std::string& text, size_t* pos,
                                     char delim) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  size_t i = *pos;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delim) {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      ++i;
      break;
    } else if (c == '\r') {
      // swallow; newline handled next iteration
    } else {
      field += c;
    }
  }
  fields.push_back(std::move(field));
  *pos = i;
  return fields;
}

bool NeedsQuoting(const std::string& s) {
  for (char c : s) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

std::string QuoteField(const std::string& s) {
  if (!NeedsQuoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

Result<Table> ReadCsvFromString(const std::string& text,
                                const CsvReadOptions& options) {
  std::vector<std::vector<std::string>> records;
  size_t pos = 0;
  while (pos < text.size()) {
    auto rec = ParseRecord(text, &pos, options.delimiter);
    if (rec.size() == 1 && rec[0].empty()) continue;  // blank line
    records.push_back(std::move(rec));
  }
  if (records.empty()) return Status::InvalidArgument("empty CSV input");

  std::vector<std::string> names;
  size_t first_data = 0;
  if (options.has_header) {
    names = records[0];
    first_data = 1;
  } else {
    for (size_t c = 0; c < records[0].size(); ++c) {
      names.push_back(StrFormat("c%zu", c));
    }
  }
  const size_t ncols = names.size();
  for (size_t r = first_data; r < records.size(); ++r) {
    if (records[r].size() != ncols) {
      return Status::InvalidArgument(
          StrFormat("row %zu has %zu fields, expected %zu", r,
                    records[r].size(), ncols));
    }
  }

  // Infer types: int64 unless any field needs double, string as fallback.
  std::vector<DataType> types(ncols, DataType::kInt64);
  for (size_t c = 0; c < ncols; ++c) {
    for (size_t r = first_data; r < records.size(); ++r) {
      const std::string& f = records[r][c];
      if (f.empty()) continue;
      int64_t iv;
      double dv;
      if (ParseInt64(f, &iv)) continue;
      if (ParseDouble(f, &dv)) {
        if (types[c] == DataType::kInt64) types[c] = DataType::kDouble;
        continue;
      }
      types[c] = DataType::kString;
      break;
    }
  }

  Table out;
  for (size_t c = 0; c < ncols; ++c) {
    Column col(types[c]);
    col.Reserve(records.size() - first_data);
    for (size_t r = first_data; r < records.size(); ++r) {
      const std::string& f = records[r][c];
      if (f.empty()) {
        col.AppendNull();
      } else if (types[c] == DataType::kInt64) {
        int64_t iv = 0;
        ParseInt64(f, &iv);
        col.AppendInt(iv);
      } else if (types[c] == DataType::kDouble) {
        double dv = 0.0;
        ParseDouble(f, &dv);
        col.AppendDouble(dv);
      } else {
        col.AppendString(f);
      }
    }
    FEAT_RETURN_NOT_OK(out.AddColumn(names[c], std::move(col)));
  }
  return out;
}

Result<Table> ReadCsv(const std::string& path, const CsvReadOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReadCsvFromString(buf.str(), options);
}

std::string WriteCsvToString(const Table& table) {
  std::string out;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out += ",";
    out += QuoteField(table.NameAt(c));
  }
  out += "\n";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += ",";
      const Column& col = table.ColumnAt(c);
      if (col.IsNull(r)) continue;
      switch (col.type()) {
        case DataType::kInt64:
        case DataType::kDatetime:
        case DataType::kBool:
          out += StrFormat("%lld", static_cast<long long>(col.IntAt(r)));
          break;
        case DataType::kDouble:
          out += StrFormat("%.17g", col.DoubleAt(r));
          break;
        case DataType::kString:
          out += QuoteField(col.StringAt(r));
          break;
      }
    }
    out += "\n";
  }
  return out;
}

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << WriteCsvToString(table);
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace featlib

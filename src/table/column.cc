#include "table/column.h"

#include <cmath>
#include <unordered_set>

#include "common/str_util.h"

namespace featlib {

void Column::AppendNull() {
  valid_.push_back(0);
  ++null_count_;
  if (IsIntBacked()) {
    ints_.push_back(0);
  } else if (type_ == DataType::kDouble) {
    doubles_.push_back(0.0);
  } else {
    codes_.push_back(-1);
  }
}

void Column::AppendInt(int64_t v) {
  FEAT_CHECK(IsIntBacked(), "AppendInt on non-int column");
  valid_.push_back(1);
  ints_.push_back(v);
}

void Column::AppendDouble(double v) {
  FEAT_CHECK(type_ == DataType::kDouble, "AppendDouble on non-double column");
  if (std::isnan(v)) {
    AppendNull();
    return;
  }
  valid_.push_back(1);
  doubles_.push_back(v);
}

void Column::AppendString(const std::string& v) {
  FEAT_CHECK(type_ == DataType::kString, "AppendString on non-string column");
  valid_.push_back(1);
  codes_.push_back(GetOrAddCode(v));
}

void Column::AppendCode(int32_t code) {
  FEAT_CHECK(type_ == DataType::kString, "AppendCode on non-string column");
  FEAT_CHECK(code >= 0 && dict_ != nullptr &&
                 code < static_cast<int32_t>(dict_->values.size()),
             "dictionary code out of range");
  valid_.push_back(1);
  codes_.push_back(code);
}

Status Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_) {
    case DataType::kInt64:
    case DataType::kDatetime:
    case DataType::kBool:
      if (v.tag() == Value::Tag::kInt) {
        AppendInt(v.int_value());
      } else if (v.tag() == Value::Tag::kDouble) {
        AppendInt(static_cast<int64_t>(v.double_value()));
      } else {
        return Status::InvalidArgument("cannot append string to int column");
      }
      return Status::OK();
    case DataType::kDouble:
      if (v.tag() == Value::Tag::kDouble) {
        AppendDouble(v.double_value());
      } else if (v.tag() == Value::Tag::kInt) {
        AppendDouble(static_cast<double>(v.int_value()));
      } else {
        return Status::InvalidArgument("cannot append string to double column");
      }
      return Status::OK();
    case DataType::kString:
      if (v.tag() == Value::Tag::kString) {
        AppendString(v.string_value());
      } else {
        AppendString(v.ToSqlLiteral());
      }
      return Status::OK();
  }
  return Status::Internal("unreachable column type");
}

void Column::Reserve(size_t n) {
  valid_.reserve(n);
  if (IsIntBacked()) {
    ints_.reserve(n);
  } else if (type_ == DataType::kDouble) {
    doubles_.reserve(n);
  } else {
    codes_.reserve(n);
  }
}

int64_t Column::IntAt(size_t row) const {
  FEAT_CHECK(IsIntBacked(), "IntAt on non-int column");
  return ints_[row];
}

double Column::DoubleAt(size_t row) const {
  FEAT_CHECK(type_ == DataType::kDouble, "DoubleAt on non-double column");
  return doubles_[row];
}

int32_t Column::CodeAt(size_t row) const {
  FEAT_CHECK(type_ == DataType::kString, "CodeAt on non-string column");
  return codes_[row];
}

const std::string& Column::StringAt(size_t row) const {
  FEAT_CHECK(type_ == DataType::kString && dict_ != nullptr,
             "StringAt on non-string column");
  return dict_->values[static_cast<size_t>(codes_[row])];
}

Value Column::ValueAt(size_t row) const {
  if (IsNull(row)) return Value::Null();
  switch (type_) {
    case DataType::kInt64:
    case DataType::kDatetime:
    case DataType::kBool:
      return Value::Int(ints_[row]);
    case DataType::kDouble:
      return Value::Double(doubles_[row]);
    case DataType::kString:
      return Value::Str(StringAt(row));
  }
  return Value::Null();
}

double Column::AsDouble(size_t row) const {
  if (IsNull(row)) return std::nan("");
  switch (type_) {
    case DataType::kInt64:
    case DataType::kDatetime:
    case DataType::kBool:
      return static_cast<double>(ints_[row]);
    case DataType::kDouble:
      return doubles_[row];
    case DataType::kString:
      return static_cast<double>(codes_[row]);
  }
  return std::nan("");
}

Column::Dictionary* Column::MutableDictionary() {
  if (dict_ == nullptr) {
    dict_ = std::make_shared<Dictionary>();
  } else if (dict_.use_count() > 1) {
    // Copy-on-write: another column shares this dictionary (e.g. via
    // Take); clone before mutating so siblings never see the append.
    dict_ = std::make_shared<Dictionary>(*dict_);
  }
  return dict_.get();
}

int32_t Column::GetOrAddCode(const std::string& s) {
  if (dict_ != nullptr) {
    auto it = dict_->index.find(s);
    if (it != dict_->index.end()) return it->second;
  }
  Dictionary* dict = MutableDictionary();
  const int32_t code = static_cast<int32_t>(dict->values.size());
  dict->values.push_back(s);
  dict->index.emplace(s, code);
  return code;
}

int32_t Column::FindCode(const std::string& s) const {
  if (dict_ == nullptr) return -1;
  auto it = dict_->index.find(s);
  return it == dict_->index.end() ? -1 : it->second;
}

Result<std::pair<double, double>> Column::MinMaxAsDouble() const {
  if (type_ == DataType::kString) {
    return Status::InvalidArgument("MinMaxAsDouble on string column");
  }
  bool seen = false;
  double lo = 0.0;
  double hi = 0.0;
  for (size_t i = 0; i < size(); ++i) {
    if (IsNull(i)) continue;
    const double v = AsDouble(i);
    if (!seen) {
      lo = hi = v;
      seen = true;
    } else {
      if (v < lo) lo = v;
      if (v > hi) hi = v;
    }
  }
  if (!seen) return Status::InvalidArgument("MinMaxAsDouble on empty/all-null column");
  return std::make_pair(lo, hi);
}

size_t Column::CountDistinct() const {
  if (type_ == DataType::kString) {
    std::unordered_set<int32_t> seen;
    for (size_t i = 0; i < size(); ++i) {
      if (!IsNull(i)) seen.insert(codes_[i]);
    }
    return seen.size();
  }
  std::unordered_set<double> seen;
  for (size_t i = 0; i < size(); ++i) {
    if (!IsNull(i)) seen.insert(AsDouble(i));
  }
  return seen.size();
}

Column Column::Take(const std::vector<uint32_t>& indices) const {
  Column out(type_);
  out.Reserve(indices.size());
  // O(1): the dictionary is shared, not copied — Take on a string column
  // used to deep-copy every dictionary string per call (hot in
  // ExecuteAggQuery's key-column gather). Copy-on-write in GetOrAddCode
  // keeps later appends to either column private.
  out.dict_ = dict_;
  for (uint32_t idx : indices) {
    FEAT_CHECK(idx < size(), "Take index out of range");
    if (IsNull(idx)) {
      out.AppendNull();
    } else if (IsIntBacked()) {
      out.AppendInt(ints_[idx]);
    } else if (type_ == DataType::kDouble) {
      out.AppendDouble(doubles_[idx]);
    } else {
      out.valid_.push_back(1);
      out.codes_.push_back(codes_[idx]);
    }
  }
  return out;
}

Column Column::FromInts(DataType type, const std::vector<int64_t>& values) {
  Column out(type);
  out.Reserve(values.size());
  for (int64_t v : values) out.AppendInt(v);
  return out;
}

Column Column::FromDoubles(const std::vector<double>& values) {
  Column out(DataType::kDouble);
  out.Reserve(values.size());
  for (double v : values) out.AppendDouble(v);
  return out;
}

Column Column::FromStrings(const std::vector<std::string>& values) {
  Column out(DataType::kString);
  out.Reserve(values.size());
  for (const auto& v : values) out.AppendString(v);
  return out;
}

}  // namespace featlib

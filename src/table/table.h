#pragma once

/// \file table.h
/// \brief Named-column table: the unit the whole framework operates on.

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "table/column.h"

namespace featlib {

/// \brief An ordered collection of equally-sized named columns.
///
/// Tables are value types; Take/Select copy the referenced data. The engine
/// targets datasets in the 10^4..10^7 row range where this is cheap relative
/// to model training, which dominates FeatAug's runtime.
class Table {
 public:
  Table() = default;

  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }
  size_t num_columns() const { return columns_.size(); }

  /// Appends a column. Fails if the name exists or sizes mismatch.
  Status AddColumn(const std::string& name, Column column);

  /// Replaces an existing column (same size required).
  Status ReplaceColumn(const std::string& name, Column column);

  /// Removes a column by name.
  Status DropColumn(const std::string& name);

  bool HasColumn(const std::string& name) const {
    return index_.count(name) > 0;
  }

  /// Borrowing accessor; the pointer is invalidated by column mutations.
  Result<const Column*> GetColumn(const std::string& name) const;

  /// Column position, or error if absent.
  Result<size_t> ColumnIndex(const std::string& name) const;

  const Column& ColumnAt(size_t i) const { return columns_[i]; }
  Column* MutableColumnAt(size_t i) { return &columns_[i]; }
  const std::string& NameAt(size_t i) const { return names_[i]; }
  const std::vector<std::string>& column_names() const { return names_; }

  /// Projects the named columns into a new table (in the given order).
  Result<Table> Select(const std::vector<std::string>& names) const;

  /// Gathers rows by index into a new table.
  Table Take(const std::vector<uint32_t>& indices) const;

  /// First min(n, num_rows) rows.
  Table Head(size_t n) const;

  /// Renders up to `max_rows` rows as an aligned-ish text block (debugging).
  std::string ToString(size_t max_rows = 10) const;

 private:
  std::vector<std::string> names_;
  std::vector<Column> columns_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace featlib

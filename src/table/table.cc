#include "table/table.h"

#include <numeric>

#include "common/str_util.h"

namespace featlib {

Status Table::AddColumn(const std::string& name, Column column) {
  if (index_.count(name) > 0) {
    return Status::InvalidArgument("duplicate column name: " + name);
  }
  if (!columns_.empty() && column.size() != num_rows()) {
    return Status::InvalidArgument(
        StrFormat("column '%s' has %zu rows, table has %zu", name.c_str(),
                  column.size(), num_rows()));
  }
  index_.emplace(name, columns_.size());
  names_.push_back(name);
  columns_.push_back(std::move(column));
  return Status::OK();
}

Status Table::ReplaceColumn(const std::string& name, Column column) {
  auto it = index_.find(name);
  if (it == index_.end()) return Status::NotFound("no column named " + name);
  if (column.size() != num_rows()) {
    return Status::InvalidArgument("replacement column size mismatch for " + name);
  }
  columns_[it->second] = std::move(column);
  return Status::OK();
}

Status Table::DropColumn(const std::string& name) {
  auto it = index_.find(name);
  if (it == index_.end()) return Status::NotFound("no column named " + name);
  const size_t pos = it->second;
  columns_.erase(columns_.begin() + static_cast<ptrdiff_t>(pos));
  names_.erase(names_.begin() + static_cast<ptrdiff_t>(pos));
  index_.erase(it);
  for (auto& [k, v] : index_) {
    if (v > pos) --v;
  }
  return Status::OK();
}

Result<const Column*> Table::GetColumn(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return Status::NotFound("no column named " + name);
  return &columns_[it->second];
}

Result<size_t> Table::ColumnIndex(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return Status::NotFound("no column named " + name);
  return it->second;
}

Result<Table> Table::Select(const std::vector<std::string>& names) const {
  Table out;
  for (const auto& name : names) {
    FEAT_ASSIGN_OR_RETURN(const Column* col, GetColumn(name));
    FEAT_RETURN_NOT_OK(out.AddColumn(name, *col));
  }
  return out;
}

Table Table::Take(const std::vector<uint32_t>& indices) const {
  Table out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    Status st = out.AddColumn(names_[i], columns_[i].Take(indices));
    FEAT_CHECK(st.ok(), "Take: internal AddColumn failure");
  }
  return out;
}

Table Table::Head(size_t n) const {
  const size_t take = n < num_rows() ? n : num_rows();
  std::vector<uint32_t> idx(take);
  std::iota(idx.begin(), idx.end(), 0u);
  return Take(idx);
}

std::string Table::ToString(size_t max_rows) const {
  std::string out;
  for (size_t c = 0; c < names_.size(); ++c) {
    if (c > 0) out += "\t";
    out += names_[c];
  }
  out += "\n";
  const size_t rows = num_rows() < max_rows ? num_rows() : max_rows;
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out += "\t";
      out += columns_[c].ValueAt(r).ToSqlLiteral();
    }
    out += "\n";
  }
  if (rows < num_rows()) {
    out += StrFormat("... (%zu rows total)\n", num_rows());
  }
  return out;
}

}  // namespace featlib

#include "table/value.h"

#include <cmath>

#include "common/str_util.h"

namespace featlib {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
    case DataType::kDatetime:
      return "datetime";
    case DataType::kBool:
      return "bool";
  }
  return "unknown";
}

bool IsRangeType(DataType type) {
  return type == DataType::kInt64 || type == DataType::kDouble ||
         type == DataType::kDatetime;
}

double Value::AsDouble() const {
  switch (tag_) {
    case Tag::kInt:
      return static_cast<double>(int_);
    case Tag::kDouble:
      return double_;
    default:
      return std::nan("");
  }
}

std::string Value::ToSqlLiteral() const {
  switch (tag_) {
    case Tag::kNull:
      return "NULL";
    case Tag::kInt:
      return StrFormat("%lld", static_cast<long long>(int_));
    case Tag::kDouble:
      return StrFormat("%g", double_);
    case Tag::kString: {
      // Standard SQL escaping: embedded quotes double.
      std::string quoted = "'";
      for (char c : str_) {
        quoted += c;
        if (c == '\'') quoted += '\'';
      }
      quoted += '\'';
      return quoted;
    }
  }
  return "NULL";
}

bool Value::operator==(const Value& other) const {
  if (tag_ != other.tag_) return false;
  switch (tag_) {
    case Tag::kNull:
      return true;
    case Tag::kInt:
      return int_ == other.int_;
    case Tag::kDouble:
      return double_ == other.double_;
    case Tag::kString:
      return str_ == other.str_;
  }
  return false;
}

}  // namespace featlib

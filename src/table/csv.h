#pragma once

/// \file csv.h
/// \brief Minimal CSV reader/writer with type inference.
///
/// Supports quoted fields with embedded commas and doubled quotes. Type
/// inference promotes int64 -> double -> string per column; empty fields are
/// nulls. Intended for loading user datasets and round-tripping benchmark
/// artifacts, not for adversarial inputs.

#include <string>

#include "common/status.h"
#include "table/table.h"

namespace featlib {

struct CsvReadOptions {
  char delimiter = ',';
  /// When true, the first row provides column names; otherwise columns are
  /// named c0, c1, ...
  bool has_header = true;
};

/// Reads a CSV file into a Table, inferring per-column types.
Result<Table> ReadCsv(const std::string& path, const CsvReadOptions& options = {});

/// Parses CSV text (same semantics as ReadCsv).
Result<Table> ReadCsvFromString(const std::string& text,
                                const CsvReadOptions& options = {});

/// Writes a table as RFC-4180-ish CSV (header row, quoted when needed).
Status WriteCsv(const Table& table, const std::string& path);

/// Serializes a table to CSV text.
std::string WriteCsvToString(const Table& table);

}  // namespace featlib

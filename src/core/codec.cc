#include "core/codec.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"

namespace featlib {

Result<QueryVectorCodec> QueryVectorCodec::Create(const QueryTemplate& tmpl,
                                                  const Table& relevant) {
  FEAT_RETURN_NOT_OK(tmpl.Validate(relevant));
  QueryVectorCodec codec;
  codec.template_ = tmpl;

  SearchSpace space;
  space.Add(ParamDomain::Categorical("agg_fn",
                                     static_cast<int>(tmpl.agg_functions.size())));
  space.Add(
      ParamDomain::Categorical("agg_attr", static_cast<int>(tmpl.agg_attrs.size())));

  for (const auto& attr : tmpl.agg_attrs) {
    FEAT_ASSIGN_OR_RETURN(const Column* col, relevant.GetColumn(attr));
    codec.agg_attr_categorical_.push_back(col->type() == DataType::kString);
  }

  for (const auto& attr : tmpl.where_attrs) {
    FEAT_ASSIGN_OR_RETURN(const Column* col, relevant.GetColumn(attr));
    WhereSlot slot;
    slot.attr = attr;
    slot.dim = space.NumDims();
    if (col->type() == DataType::kString || col->type() == DataType::kBool) {
      slot.categorical = true;
      if (col->type() == DataType::kString) {
        for (const auto& s : col->dictionary()) slot.values.push_back(Value::Str(s));
      } else {
        slot.values.push_back(Value::Int(0));
        slot.values.push_back(Value::Int(1));
      }
      if (slot.values.empty()) {
        return Status::InvalidArgument("categorical WHERE attribute " + attr +
                                       " has empty domain");
      }
      // Last index encodes "no predicate on this attribute" (None).
      space.Add(ParamDomain::Categorical(
          "where_" + attr, static_cast<int>(slot.values.size()) + 1));
    } else {
      auto minmax = col->MinMaxAsDouble();
      if (!minmax.ok()) {
        return Status::InvalidArgument("numeric WHERE attribute " + attr +
                                       " has no observable domain");
      }
      slot.lo = minmax.value().first;
      slot.hi = minmax.value().second;
      slot.integer =
          col->type() == DataType::kInt64 || col->type() == DataType::kDatetime;
      space.Add(ParamDomain::OptionalNumeric("where_" + attr + "_lo", slot.lo,
                                             slot.hi, slot.integer));
      space.Add(ParamDomain::OptionalNumeric("where_" + attr + "_hi", slot.lo,
                                             slot.hi, slot.integer));
    }
    codec.where_slots_.push_back(std::move(slot));
  }

  codec.fk_dim_begin_ = space.NumDims();
  for (const auto& k : tmpl.fk_attrs) {
    space.Add(ParamDomain::Categorical("fk_" + k, 2));
  }
  codec.space_ = std::move(space);
  return codec;
}

Result<std::vector<AggQuery>> QueryVectorCodec::DecodeAll(
    const std::vector<ParamVector>& vs) const {
  std::vector<AggQuery> pool;
  pool.reserve(vs.size());
  for (const ParamVector& v : vs) {
    FEAT_ASSIGN_OR_RETURN(AggQuery q, Decode(v));
    pool.push_back(std::move(q));
  }
  return pool;
}

Result<AggQuery> QueryVectorCodec::Decode(const ParamVector& v) const {
  FEAT_RETURN_NOT_OK(space_.Validate(v));
  AggQuery q;
  const size_t fn_idx = static_cast<size_t>(std::llround(v[0]));
  const size_t attr_idx = static_cast<size_t>(std::llround(v[1]));
  q.agg = template_.agg_functions[fn_idx];
  q.agg_attr = template_.agg_attrs[attr_idx];
  // Lossy repair: numeric-only functions degrade to COUNT on categorical
  // aggregation attributes so every in-domain vector decodes to an
  // executable query (TPE learns to avoid the repaired corner).
  if (agg_attr_categorical_[attr_idx] && !SupportsCategorical(q.agg)) {
    q.agg = AggFunction::kCount;
  }

  for (const WhereSlot& slot : where_slots_) {
    if (slot.categorical) {
      const size_t choice = static_cast<size_t>(std::llround(v[slot.dim]));
      if (choice >= slot.values.size()) continue;  // None: no predicate
      q.predicates.push_back(Predicate::Equals(slot.attr, slot.values[choice]));
    } else {
      double lo = v[slot.dim];
      double hi = v[slot.dim + 1];
      const bool has_lo = !IsNone(lo);
      const bool has_hi = !IsNone(hi);
      if (!has_lo && !has_hi) continue;  // no predicate on this attribute
      if (has_lo && has_hi && lo > hi) std::swap(lo, hi);
      q.predicates.push_back(Predicate::Range(
          slot.attr, has_lo ? std::optional<double>(lo) : std::nullopt,
          has_hi ? std::optional<double>(hi) : std::nullopt));
    }
  }

  for (size_t i = 0; i < template_.fk_attrs.size(); ++i) {
    if (std::llround(v[fk_dim_begin_ + i]) == 1) {
      q.group_keys.push_back(template_.fk_attrs[i]);
    }
  }
  if (q.group_keys.empty()) q.group_keys.push_back(template_.fk_attrs.front());
  return q;
}

Result<ParamVector> QueryVectorCodec::Encode(const AggQuery& q) const {
  ParamVector v(space_.NumDims(), NoneValue());

  auto fn_it = std::find(template_.agg_functions.begin(),
                         template_.agg_functions.end(), q.agg);
  if (fn_it == template_.agg_functions.end()) {
    return Status::InvalidArgument("agg function not in template F");
  }
  v[0] = static_cast<double>(fn_it - template_.agg_functions.begin());

  auto attr_it =
      std::find(template_.agg_attrs.begin(), template_.agg_attrs.end(), q.agg_attr);
  if (attr_it == template_.agg_attrs.end()) {
    return Status::InvalidArgument("agg attribute not in template A");
  }
  v[1] = static_cast<double>(attr_it - template_.agg_attrs.begin());

  // Default: no predicate -> categorical None index / numeric NaN slots.
  for (const WhereSlot& slot : where_slots_) {
    if (slot.categorical) {
      v[slot.dim] = static_cast<double>(slot.values.size());
    }
  }

  for (const Predicate& p : q.predicates) {
    if (p.IsTrivial()) continue;
    const WhereSlot* slot = nullptr;
    for (const WhereSlot& s : where_slots_) {
      if (s.attr == p.attr) {
        slot = &s;
        break;
      }
    }
    if (slot == nullptr) {
      return Status::InvalidArgument("predicate attribute not in template P: " +
                                     p.attr);
    }
    if (slot->categorical) {
      if (p.kind != Predicate::Kind::kEquals) {
        return Status::InvalidArgument("range predicate on categorical " + p.attr);
      }
      auto val_it = std::find(slot->values.begin(), slot->values.end(),
                              p.equals_value);
      if (val_it == slot->values.end()) {
        return Status::InvalidArgument("predicate value outside domain of " +
                                       p.attr);
      }
      v[slot->dim] = static_cast<double>(val_it - slot->values.begin());
    } else {
      if (p.kind != Predicate::Kind::kRange) {
        return Status::InvalidArgument("equality predicate on numeric " + p.attr);
      }
      if (p.has_lo) v[slot->dim] = p.lo;
      if (p.has_hi) v[slot->dim + 1] = p.hi;
    }
  }

  for (size_t i = 0; i < template_.fk_attrs.size(); ++i) {
    const bool selected =
        std::find(q.group_keys.begin(), q.group_keys.end(),
                  template_.fk_attrs[i]) != q.group_keys.end();
    v[fk_dim_begin_ + i] = selected ? 1.0 : 0.0;
  }
  FEAT_RETURN_NOT_OK(space_.Validate(v));
  return v;
}

}  // namespace featlib

#include "core/template_id.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "common/file_io.h"
#include "common/str_util.h"
#include "common/timer.h"
#include "core/codec.h"
#include "hpo/tpe.h"
#include "ml/linear.h"

namespace featlib {

namespace {

/// Node in the attribute-combination lattice: a bitmask over candidate
/// attributes (limited to 63 candidates, far above practical widths).
using AttrMask = uint64_t;

std::vector<std::string> MaskToAttrs(AttrMask mask,
                                     const std::vector<std::string>& attrs) {
  std::vector<std::string> out;
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (mask & (AttrMask{1} << i)) out.push_back(attrs[i]);
  }
  return out;
}

int PopCount(AttrMask mask) {
  int count = 0;
  while (mask != 0) {
    mask &= mask - 1;
    ++count;
  }
  return count;
}

/// Ridge performance predictor over one-hot template encodings (Opt. 2).
class TemplatePredictor {
 public:
  explicit TemplatePredictor(size_t n_attrs) : n_attrs_(n_attrs) {}

  void AddExample(AttrMask mask, double score) {
    masks_.push_back(mask);
    scores_.push_back(score);
  }

  /// Refits the ridge model; returns false with too little data.
  bool Fit() {
    if (masks_.size() < 2) return false;
    const size_t dim = n_attrs_ + 1;  // + bias
    std::vector<double> xtx(dim * dim, 0.0);
    std::vector<double> xty(dim, 0.0);
    std::vector<double> row(dim, 0.0);
    for (size_t e = 0; e < masks_.size(); ++e) {
      for (size_t i = 0; i < n_attrs_; ++i) {
        row[i] = (masks_[e] & (AttrMask{1} << i)) ? 1.0 : 0.0;
      }
      row[n_attrs_] = 1.0;
      for (size_t i = 0; i < dim; ++i) {
        xty[i] += row[i] * scores_[e];
        for (size_t j = i; j < dim; ++j) xtx[i * dim + j] += row[i] * row[j];
      }
    }
    for (size_t i = 0; i < dim; ++i) {
      for (size_t j = 0; j < i; ++j) xtx[i * dim + j] = xtx[j * dim + i];
    }
    Status st = SolveRidgeSystem(&xtx, &xty, dim, 1e-2);
    if (!st.ok()) return false;
    weights_ = std::move(xty);
    return true;
  }

  double Predict(AttrMask mask) const {
    double z = weights_.back();
    for (size_t i = 0; i < n_attrs_; ++i) {
      if (mask & (AttrMask{1} << i)) z += weights_[i];
    }
    return z;
  }

 private:
  size_t n_attrs_;
  std::vector<AttrMask> masks_;
  std::vector<double> scores_;
  std::vector<double> weights_;
};

}  // namespace

Result<NodeEvaluation> TemplateIdentifier::EvaluateNode(
    const QueryTemplate& tmpl,
    const std::vector<std::pair<AggQuery, double>>& seeds) {
  FeatureEvaluator* evaluator = session_->evaluator();
  FEAT_ASSIGN_OR_RETURN(QueryVectorCodec codec,
                        QueryVectorCodec::Create(tmpl, evaluator->relevant()));
  TpeOptions tpe_options;
  tpe_options.seed = options_.seed ^ std::hash<std::string>{}(tmpl.WhereKey());
  tpe_options.n_startup = std::max(2, options_.node_iterations / 3);
  Tpe search(codec.space(), tpe_options);

  NodeEvaluation node;
  node.score = -std::numeric_limits<double>::infinity();
  std::unordered_set<std::string> top_keys;
  auto record = [&](const AggQuery& q, double score) {
    node.score = std::max(node.score, score);
    const std::string key = q.CacheKey();
    if (!top_keys.insert(key).second) return;
    node.top_queries.emplace_back(q, score);
    std::sort(node.top_queries.begin(), node.top_queries.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    if (node.top_queries.size() > static_cast<size_t>(options_.seeds_per_node)) {
      top_keys.erase(node.top_queries.back().first.CacheKey());
      node.top_queries.pop_back();
    }
  };

  // Beam inheritance: parent-pool bests are valid (and proxy-cached)
  // observations in this pool; they both warm the surrogate and floor the
  // node's score at its parents' level.
  for (const auto& [q, score] : seeds) {
    auto encoded = codec.Encode(q);
    if (!encoded.ok()) continue;  // seed outside this pool (shouldn't happen)
    search.Observe(encoded.value(), -score);
    record(q, score);
  }

  // Batched node search: each round proposes a pool, materializes its
  // features in one EvaluateMany pass, then observes every member.
  const int batch = std::max(1, options_.suggest_batch_size);
  for (int done = 0; done < options_.node_iterations;) {
    const int b = std::min(batch, options_.node_iterations - done);
    std::vector<ParamVector> vs = search.SuggestBatch(b);
    FEAT_ASSIGN_OR_RETURN(std::vector<AggQuery> pool, codec.DecodeAll(vs));
    std::vector<double> scores(pool.size());
    if (options_.use_low_cost_proxy) {
      FEAT_ASSIGN_OR_RETURN(scores, session_->ProxyScores(pool, options_.proxy));
    } else {
      // Without Opt. 1, effectiveness is the real validation metric
      // (expensive: one model training per pool member).
      FEAT_ASSIGN_OR_RETURN(std::vector<SearchSession::ModelOutcome> outcomes,
                            session_->ModelScores(pool));
      for (size_t i = 0; i < outcomes.size(); ++i) scores[i] = -outcomes[i].loss;
    }
    for (size_t i = 0; i < pool.size(); ++i) {
      search.Observe(vs[i], -scores[i]);
      record(pool[i], scores[i]);
    }
    done += b;
  }
  search.AppendObservationState(&observation_state_);
  return node;
}

Result<TemplateIdResult> TemplateIdentifier::Run(
    const QueryTemplate& base, const std::vector<std::string>& candidate_attrs) {
  if (candidate_attrs.empty()) {
    return Status::InvalidArgument("QTI needs candidate WHERE attributes");
  }
  if (candidate_attrs.size() > 63) {
    return Status::InvalidArgument("QTI supports at most 63 candidate attributes");
  }
  WallTimer timer;
  session_->BeginStage(SearchStage::kQti);
  TemplateIdResult result;
  TemplatePredictor predictor(candidate_attrs.size());

  auto make_template = [&](AttrMask mask) {
    QueryTemplate t = base;
    t.where_attrs = MaskToAttrs(mask, candidate_attrs);
    return t;
  };

  struct EvaluatedNode {
    AttrMask mask;
    double score;
  };
  std::vector<EvaluatedNode> all_evaluated;
  std::unordered_set<AttrMask> seen;
  std::unordered_map<AttrMask, NodeEvaluation> node_results;

  // Beam inheritance: a child's seeds are the best queries of its evaluated
  // parents (mask minus one bit), deduplicated, best-first, capped.
  auto gather_seeds = [&](AttrMask mask) {
    std::vector<std::pair<AggQuery, double>> seeds;
    if (!options_.seed_from_parents) return seeds;
    std::unordered_set<std::string> keys;
    for (size_t i = 0; i < candidate_attrs.size(); ++i) {
      const AttrMask bit = AttrMask{1} << i;
      if (!(mask & bit)) continue;
      auto it = node_results.find(mask & ~bit);
      if (it == node_results.end()) continue;
      for (const auto& [q, score] : it->second.top_queries) {
        if (keys.insert(q.CacheKey()).second) seeds.emplace_back(q, score);
      }
    }
    std::sort(seeds.begin(), seeds.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    if (seeds.size() > static_cast<size_t>(options_.seeds_per_node)) {
      seeds.resize(static_cast<size_t>(options_.seeds_per_node));
    }
    return seeds;
  };

  auto evaluate = [&](AttrMask mask) -> Status {
    if (!seen.insert(mask).second) return Status::OK();
    FEAT_ASSIGN_OR_RETURN(NodeEvaluation node,
                          EvaluateNode(make_template(mask), gather_seeds(mask)));
    all_evaluated.push_back(EvaluatedNode{mask, node.score});
    node_results.emplace(mask, std::move(node));
    predictor.AddExample(mask, all_evaluated.back().score);
    ++result.nodes_evaluated;
    return Status::OK();
  };

  // Layer 0 (beam inheritance only): the predicate-free root seeds every
  // singleton with the best unpredicated aggregates.
  if (options_.seed_from_parents) {
    FEAT_RETURN_NOT_OK(evaluate(AttrMask{0}));
  }

  // Layer 1: every singleton is evaluated (this is also the predictor's
  // first batch of training data, per §VI.C).
  std::vector<EvaluatedNode> layer;
  for (size_t i = 0; i < candidate_attrs.size(); ++i) {
    FEAT_RETURN_NOT_OK(evaluate(AttrMask{1} << i));
  }
  for (const auto& node : all_evaluated) {
    if (node.mask != 0) layer.push_back(node);
  }

  const size_t beam = static_cast<size_t>(std::max(1, options_.beam_width));
  for (int depth = 2; depth <= options_.max_depth; ++depth) {
    // Beam: expand the top-beta nodes of the previous layer.
    // Under beam inheritance a child's score is floored at its parents'
    // best, so exact ties mean "the extra attribute added nothing" — break
    // them toward the simpler template (then by mask, for determinism).
    std::sort(layer.begin(), layer.end(),
              [](const EvaluatedNode& a, const EvaluatedNode& b) {
                if (a.score != b.score) return a.score > b.score;
                const int pa = PopCount(a.mask), pb = PopCount(b.mask);
                if (pa != pb) return pa < pb;
                return a.mask < b.mask;
              });
    if (layer.size() > beam) layer.resize(beam);

    // Children: add one unused attribute to a beam node.
    std::vector<AttrMask> children;
    std::unordered_set<AttrMask> child_seen;
    for (const EvaluatedNode& parent : layer) {
      for (size_t i = 0; i < candidate_attrs.size(); ++i) {
        const AttrMask bit = AttrMask{1} << i;
        if (parent.mask & bit) continue;
        const AttrMask child = parent.mask | bit;
        if (seen.count(child) > 0 || !child_seen.insert(child).second) continue;
        children.push_back(child);
      }
    }
    if (children.empty()) break;

    // Opt. 2: rank children by predicted score, evaluate only the top-beta.
    if (options_.use_predictor && predictor.Fit()) {
      std::sort(children.begin(), children.end(), [&](AttrMask a, AttrMask b) {
        return predictor.Predict(a) > predictor.Predict(b);
      });
      if (children.size() > beam) {
        result.nodes_pruned_by_predictor += children.size() - beam;
        children.resize(beam);
      }
    }

    layer.clear();
    for (AttrMask child : children) {
      FEAT_RETURN_NOT_OK(evaluate(child));
      layer.push_back(all_evaluated.back());
    }
  }

  // Top-n templates over everything evaluated (§VI.B: the n most promising
  // templates are picked from all visited nodes, not the last layer).
  std::sort(all_evaluated.begin(), all_evaluated.end(),
            [](const EvaluatedNode& a, const EvaluatedNode& b) {
              if (a.score != b.score) return a.score > b.score;
              const int pa = PopCount(a.mask), pb = PopCount(b.mask);
              if (pa != pb) return pa < pb;
              return a.mask < b.mask;
            });
  // Under beam inheritance a node that exactly ties its best evaluated
  // parent found nothing its parent's pool lacked — its recommendation
  // would be redundant. Prefer improvers; pad with the rest in rank order.
  auto is_improver = [&](const EvaluatedNode& n) {
    if (!options_.seed_from_parents || n.mask == 0) return true;
    double parent_best = -std::numeric_limits<double>::infinity();
    bool any_parent = false;
    for (size_t i = 0; i < candidate_attrs.size(); ++i) {
      const AttrMask bit = AttrMask{1} << i;
      if (!(n.mask & bit)) continue;
      auto it = node_results.find(n.mask & ~bit);
      if (it == node_results.end()) continue;
      any_parent = true;
      parent_best = std::max(parent_best, it->second.score);
    }
    return !any_parent || n.score > parent_best + 1e-12;
  };
  const size_t take = std::min<size_t>(all_evaluated.size(),
                                       static_cast<size_t>(options_.n_templates));
  for (int pass = 0; pass < 2 && result.templates.size() < take; ++pass) {
    for (const EvaluatedNode& node : all_evaluated) {
      if (result.templates.size() >= take) break;
      if ((pass == 0) != is_improver(node)) continue;
      result.templates.push_back(
          ScoredTemplate{make_template(node.mask), node.score});
    }
  }
  result.seconds = timer.Seconds();
  session_->BeginStage(SearchStage::kOther);

  // Durable fit: completed QTI is a durable unit. The digest covers every
  // node search's observations in evaluation order; a resumed fit whose
  // replay diverges fails kDataLoss instead of silently recommending
  // different templates. The forced snapshot makes a kill between QTI and
  // generation lose nothing.
  FEAT_RETURN_NOT_OK(session_->RecordTrajectoryDigest(
      StrFormat("qti_s%llu", static_cast<unsigned long long>(options_.seed)),
      Crc32(observation_state_)));
  FEAT_RETURN_NOT_OK(session_->CheckpointNow());
  return result;
}

}  // namespace featlib

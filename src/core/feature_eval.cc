#include "core/feature_eval.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/str_util.h"
#include "common/thread_pool.h"
#include "ml/linear.h"
#include "stats/stats.h"

namespace featlib {

const char* ProxyKindToString(ProxyKind proxy) {
  switch (proxy) {
    case ProxyKind::kMutualInformation:
      return "MI";
    case ProxyKind::kSpearman:
      return "SC";
    case ProxyKind::kLogisticRegression:
      return "LR";
  }
  return "?";
}

Result<FeatureEvaluator> FeatureEvaluator::Create(
    const Table& training, const std::string& label_col,
    const std::vector<std::string>& base_feature_cols, const Table& relevant,
    TaskKind task, EvaluatorOptions options) {
  // A 0.6/0.2/0.2 split needs at least a handful of rows per part before
  // any trained metric means anything.
  constexpr size_t kMinTrainingRows = 10;
  if (training.num_rows() < kMinTrainingRows) {
    return Status::InvalidArgument(
        StrFormat("training table has %zu rows; need >= %zu to split and train",
                  training.num_rows(), kMinTrainingRows));
  }
  FeatureEvaluator out;
  out.training_ = training;
  out.relevant_ = relevant;
  out.label_col_ = label_col;
  out.options_ = options;
  FEAT_ASSIGN_OR_RETURN(
      out.base_, Dataset::FromTable(training, label_col, base_feature_cols, task));
  out.split_ = MakeSplit(training.num_rows(), options.train_ratio,
                         options.valid_ratio, options.split_seed);
  // The whole search shares the process-wide pool: batched candidate
  // evaluation fans out across cores (FEATLIB_NUM_THREADS / FeatAugConfig).
  out.planner_.set_thread_pool(GlobalThreadPool());
  out.train_labels_.reserve(out.split_.train.size());
  for (uint32_t r : out.split_.train) out.train_labels_.push_back(out.base_.y[r]);
  return out;
}

void FeatureEvaluator::EvictFeaturesFor(size_t incoming) {
  if (feature_cache_bytes_ + incoming <= feature_cache_cap_bytes_) return;
  for (auto it = feature_cache_.begin();
       it != feature_cache_.end() &&
       feature_cache_bytes_ + incoming > feature_cache_cap_bytes_;) {
    if (it->second.used_epoch == feature_epoch_) {  // pinned by this call
      ++it;
      continue;
    }
    feature_cache_bytes_ -= FeatureEntryBytes(it->first, it->second.values);
    it = feature_cache_.erase(it);
    ++feature_cache_evictions_;
  }
}

const std::vector<double>* FeatureEvaluator::InsertFeature(
    std::string key, std::vector<double> values) {
  const size_t bytes = FeatureEntryBytes(key, values);
  EvictFeaturesFor(bytes);
  feature_cache_bytes_ += bytes;
  auto [it, inserted] = feature_cache_.emplace(
      std::move(key), FeatureEntry{std::move(values), feature_epoch_});
  (void)inserted;
  ++num_materializations_;
  return &it->second.values;
}

Result<const std::vector<double>*> FeatureEvaluator::Feature(const AggQuery& q) {
  ++feature_epoch_;
  std::string key = q.CacheKey();
  auto it = feature_cache_.find(key);
  if (it != feature_cache_.end()) {
    it->second.used_epoch = feature_epoch_;
    return &it->second.values;
  }
  FEAT_ASSIGN_OR_RETURN(
      std::vector<double> values,
      planner_.ComputeFeatureColumn(q, training_, relevant_, ctx_));
  return InsertFeature(std::move(key), std::move(values));
}

Result<std::vector<const std::vector<double>*>> FeatureEvaluator::Features(
    const std::vector<AggQuery>& queries) {
  ++feature_epoch_;
  std::vector<AggQuery> missing;
  std::vector<std::string> missing_keys;
  std::unordered_set<std::string> missing_seen;
  for (const AggQuery& q : queries) {
    std::string key = q.CacheKey();
    auto it = feature_cache_.find(key);
    if (it != feature_cache_.end()) {
      it->second.used_epoch = feature_epoch_;  // pin for this batch
      continue;
    }
    if (!missing_seen.insert(key).second) continue;
    missing.push_back(q);
    missing_keys.push_back(std::move(key));
  }
  if (!missing.empty()) {
    FEAT_ASSIGN_OR_RETURN(
        std::vector<std::vector<double>> columns,
        planner_.EvaluateMany(missing, training_, relevant_, ctx_));
    for (size_t i = 0; i < missing.size(); ++i) {
      InsertFeature(std::move(missing_keys[i]), std::move(columns[i]));
    }
  }
  std::vector<const std::vector<double>*> out;
  out.reserve(queries.size());
  for (const AggQuery& q : queries) {
    out.push_back(&feature_cache_.at(q.CacheKey()).values);
  }
  return out;
}

Result<std::vector<FeatureEvaluator::FeatureSlot>>
FeatureEvaluator::FeaturesIsolated(const std::vector<AggQuery>& queries) {
  ++feature_epoch_;
  // Same dedup-against-cache pass as Features(); cache hits resolve
  // immediately, each distinct miss occupies one planner slot.
  std::vector<AggQuery> missing;
  std::vector<std::string> missing_keys;
  std::unordered_set<std::string> missing_seen;
  for (const AggQuery& q : queries) {
    std::string key = q.CacheKey();
    auto it = feature_cache_.find(key);
    if (it != feature_cache_.end()) {
      it->second.used_epoch = feature_epoch_;  // pin for this batch
      continue;
    }
    if (!missing_seen.insert(key).second) continue;
    missing.push_back(q);
    missing_keys.push_back(std::move(key));
  }
  // key -> per-candidate outcome of the planner batch. Failed candidates
  // stay out of the cache so a later call re-attempts them from scratch.
  std::unordered_map<std::string, Status> batch_errors;
  if (!missing.empty()) {
    FEAT_ASSIGN_OR_RETURN(
        std::vector<QueryPlanner::CandidateResult> results,
        planner_.EvaluateManyIsolated(missing, training_, relevant_, ctx_));
    for (size_t i = 0; i < missing.size(); ++i) {
      if (results[i].status.ok()) {
        InsertFeature(std::move(missing_keys[i]),
                      std::move(results[i].values));
      } else {
        batch_errors.emplace(std::move(missing_keys[i]),
                             std::move(results[i].status));
      }
    }
  }
  std::vector<FeatureSlot> out(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const std::string key = queries[i].CacheKey();
    auto hit = feature_cache_.find(key);
    if (hit != feature_cache_.end()) {
      out[i].values = &hit->second.values;
    } else {
      auto err = batch_errors.find(key);
      FEAT_CHECK(err != batch_errors.end(),
                 "isolated batch slot neither cached nor failed");
      out[i].status = err->second;
    }
  }
  return out;
}

Result<double> FeatureEvaluator::ProxyScore(const AggQuery& q, ProxyKind proxy) {
  FEAT_ASSIGN_OR_RETURN(const std::vector<double>* feature, Feature(q));
  ++num_proxy_evals_;
  std::vector<double> train_feature;
  train_feature.reserve(split_.train.size());
  for (uint32_t r : split_.train) train_feature.push_back((*feature)[r]);

  switch (proxy) {
    case ProxyKind::kMutualInformation:
      return MutualInformation(train_feature, train_labels_,
                               task() != TaskKind::kRegression);
    case ProxyKind::kSpearman:
      return SpearmanProxy(train_feature, train_labels_);
    case ProxyKind::kLogisticRegression: {
      // Mini LR on base + candidate feature; proxy = validation metric
      // converted so that higher is always better.
      FEAT_ASSIGN_OR_RETURN(Dataset train, BuildDataset({q}, split_.train));
      FEAT_ASSIGN_OR_RETURN(Dataset valid, BuildDataset({q}, split_.valid));
      LinearModelOptions lr_options;
      lr_options.epochs = 60;
      FEAT_ASSIGN_OR_RETURN(
          double metric,
          TrainAndScore(ModelKind::kLogisticRegression, train, valid,
                        options_.metric, options_.model_seed));
      return -ScoreToLoss(metric);
    }
  }
  return Status::InvalidArgument("unknown proxy kind");
}

Result<Dataset> FeatureEvaluator::BuildDataset(const std::vector<AggQuery>& queries,
                                               const std::vector<uint32_t>& rows) {
  // Materialize all query features first (full-length, cached, batched).
  FEAT_ASSIGN_OR_RETURN(std::vector<const std::vector<double>*> features,
                        Features(queries));
  Dataset full = base_;
  for (size_t i = 0; i < queries.size(); ++i) {
    FEAT_RETURN_NOT_OK(
        full.AddFeature(StrFormat("q%zu", i), *features[i]));
  }
  return full.GatherRows(rows);
}

Result<double> FeatureEvaluator::ModelScore(const std::vector<AggQuery>& queries) {
  FEAT_ASSIGN_OR_RETURN(Dataset train, BuildDataset(queries, split_.train));
  FEAT_ASSIGN_OR_RETURN(Dataset valid, BuildDataset(queries, split_.valid));
  ++num_model_evals_;
  return TrainAndScore(options_.model, train, valid, options_.metric,
                       options_.model_seed);
}

Result<double> FeatureEvaluator::ModelScoreAtFidelity(
    const std::vector<AggQuery>& queries, double fidelity) {
  if (!(fidelity > 0.0) || fidelity > 1.0) {
    return Status::InvalidArgument(
        StrFormat("fidelity must lie in (0, 1], got %g", fidelity));
  }
  if (fidelity >= 1.0) return ModelScore(queries);
  const size_t n = std::max<size_t>(
      2, static_cast<size_t>(std::ceil(fidelity * split_.train.size())));
  std::vector<uint32_t> sub(split_.train.begin(),
                            split_.train.begin() +
                                std::min(n, split_.train.size()));
  FEAT_ASSIGN_OR_RETURN(Dataset train, BuildDataset(queries, sub));
  FEAT_ASSIGN_OR_RETURN(Dataset valid, BuildDataset(queries, split_.valid));
  ++num_model_evals_;
  return TrainAndScore(options_.model, train, valid, options_.metric,
                       options_.model_seed);
}

Result<double> FeatureEvaluator::BaselineModelScore() {
  if (baseline_computed_) return baseline_score_;
  FEAT_ASSIGN_OR_RETURN(Dataset train, BuildDataset({}, split_.train));
  FEAT_ASSIGN_OR_RETURN(Dataset valid, BuildDataset({}, split_.valid));
  FEAT_ASSIGN_OR_RETURN(baseline_score_,
                        TrainAndScore(options_.model, train, valid,
                                      options_.metric, options_.model_seed));
  baseline_computed_ = true;
  return baseline_score_;
}

Result<double> FeatureEvaluator::TestScore(const std::vector<AggQuery>& queries) {
  FEAT_ASSIGN_OR_RETURN(Dataset train, BuildDataset(queries, split_.train));
  FEAT_ASSIGN_OR_RETURN(Dataset test, BuildDataset(queries, split_.test));
  return TrainAndScore(options_.model, train, test, options_.metric,
                       options_.model_seed);
}

}  // namespace featlib

#pragma once

/// \file augmenter.h
/// \brief The public two-phase augmentation API: a polymorphic `Augmenter`
/// that runs the expensive offline search (`Fit`), and the long-lived,
/// thread-safe `FittedAugmenter` serving handle it returns.
///
/// FeatAug's workflow is inherently two-phase — an expensive search over
/// predicate-aware aggregation queries, then cheap repeated application of
/// the winning plan to incoming rows. The interface makes that contract
/// explicit and uniform across every method in the repo:
///
///   std::unique_ptr<Augmenter> aug = MakeFeatAugAugmenter(problem, options);
///   FEAT_ASSIGN_OR_RETURN(auto fitted, aug->Fit());       // fit once
///   FEAT_ASSIGN_OR_RETURN(Table out, fitted->Transform(batch));   // many times
///
/// `FittedAugmenter` owns a warm QueryPlanner per relevant table whose
/// ArtifactStore holds the plan's artifacts (group indexes, predicate
/// masks, value views, bucket materializations) compiled exactly once at
/// creation. `Transform` only binds the batch-dependent training-row maps
/// (call-local) and runs the pure per-candidate kernels, so repeated
/// serving/HPO batches never re-plan, and concurrent `Transform` calls
/// from any number of threads are safe and byte-identical to serial
/// execution (see docs/ARCHITECTURE.md, "API layer").
///
/// Implementations: FeatAug (MakeFeatAugAugmenter), MultiTableFeatAug
/// (MakeMultiTableAugmenter) here; the four baselines (Random,
/// Featuretools+selectors, ARDA, AutoFeature) in baselines/augmenters.h.
/// Serialized plans round-trip into a handle via LoadFittedAugmenter
/// (core/plan_io.h): fit offline, ship the SQL artifact, serve online.

#include <memory>
#include <string>
#include <vector>

#include "core/feataug.h"
#include "core/multi_table.h"
#include "ml/dataset.h"
#include "query/query_planner.h"
#include "table/table.h"

namespace featlib {

class ThreadPool;

/// Search-phase bookkeeping carried over from Fit onto the handle (the
/// scalability experiments' timings and evaluation counters).
struct FitDiagnostics {
  double qti_seconds = 0.0;
  double warmup_seconds = 0.0;
  double generate_seconds = 0.0;
  size_t templates_considered = 0;
  size_t model_evals = 0;
  size_t proxy_evals = 0;
  /// Per-stage split + SearchSession cache reuse (see AugmentationPlan).
  size_t qti_proxy_evals = 0;
  size_t qti_model_evals = 0;
  size_t warmup_proxy_evals = 0;
  size_t warmup_model_evals = 0;
  size_t generation_model_evals = 0;
  size_t proxy_cache_hits = 0;
  size_t model_cache_hits = 0;
  /// Planner-side health counters (see AugmentationPlan): retry pressure on
  /// artifact builds and compile-memo reuse across HPO rounds.
  size_t build_retries = 0;
  size_t compile_cache_hits = 0;
  size_t compile_cache_misses = 0;
  /// Candidates the search skipped via partial-failure isolation (content
  /// key + Status). Carried from AugmentationPlan::failed_candidates so
  /// serving-side monitoring can see the plan was fitted around failures.
  std::vector<SearchSession::FailedCandidate> failed_candidates;
};

/// \brief Long-lived serving handle for a fitted augmentation plan.
///
/// Immutable after Create: all mutable planner state is built there, so
/// every public method is const and safe to call concurrently from multiple
/// threads on one shared instance. Outputs are byte-identical to serial
/// execution at every thread count.
class FittedAugmenter {
 public:
  /// One relevant table's slice of the plan. `name` qualifies feature
  /// columns as "<name>__<feature>" (empty = unqualified, the single-table
  /// case). Missing feature names are regenerated as "feature_<i>"; missing
  /// metrics are NaN.
  struct Source {
    std::string name;
    Table relevant;
    std::vector<AggQuery> queries;
    std::vector<std::string> feature_names;
    std::vector<double> valid_metrics;
  };

  /// Compiles every source's queries into a frozen ServingPlan (the warm
  /// prepare: group indexes, predicate masks, value views and bucket
  /// materializations are built here, once). Feature names are qualified
  /// and deduplicated within the plan (suffix rule "_2", "_3", ...).
  static Result<std::unique_ptr<FittedAugmenter>> Create(
      std::vector<Source> sources, FitDiagnostics diagnostics = {});

  /// Appends the plan's feature columns to `batch` (any table carrying the
  /// join-key columns). Names colliding with existing batch columns are
  /// deterministically deduplicated, never an error. Thread-safe. `ctx`
  /// (optional, not owned) imposes cooperative deadline/cancellation/budget
  /// limits, checked at chunk boundaries of the kernel fan-out.
  Result<Table> Transform(const Table& batch,
                          const ExecContext* ctx = nullptr) const;

  /// Transforms each batch independently; equivalent to calling Transform
  /// per batch (artifacts are shared across the whole run) but fans the
  /// batches out over the thread pool. Fail-fast: the first batch error
  /// fails the call (sibling batches still complete; see
  /// TransformManyIsolated to keep their outputs). Thread-safe.
  Result<std::vector<Table>> TransformMany(
      const std::vector<Table>& batches,
      const ExecContext* ctx = nullptr) const;

  /// One batch's outcome under partial-failure isolation: exactly one of
  /// {table, !status.ok()} holds.
  struct BatchResult {
    Status status;
    Table table;
  };

  /// Partial-failure-isolated TransformMany: each batch succeeds or fails
  /// on its own, and surviving outputs are byte-identical to per-batch
  /// Transform calls. The outer Result fails only batch-wide (a tripped
  /// `ctx`). Thread-safe.
  Result<std::vector<BatchResult>> TransformManyIsolated(
      const std::vector<Table>& batches,
      const ExecContext* ctx = nullptr) const;

  /// Builds the augmented Dataset (base features + plan features) aligned
  /// to `batch` rows, ready for downstream training. Thread-safe.
  Result<Dataset> TransformToDataset(
      const Table& batch, const std::string& label_col,
      const std::vector<std::string>& base_feature_cols, TaskKind task,
      const ExecContext* ctx = nullptr) const;

  /// Raw feature columns aligned to `batch`, in feature_names() order
  /// (benches and tests compare these byte-wise). Thread-safe.
  Result<std::vector<std::vector<double>>> ComputeFeatureColumns(
      const Table& batch, const ExecContext* ctx = nullptr) const;

  /// Qualified, plan-level-deduplicated feature names, one per query across
  /// all sources (the names Transform appends, pre batch-collision dedup).
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  size_t num_features() const { return feature_names_.size(); }
  /// Validation metrics aligned to feature_names() (NaN when unknown).
  const std::vector<double>& valid_metrics() const { return valid_metrics_; }
  /// Every fitted query across all sources, in feature order.
  std::vector<AggQuery> AllQueries() const;
  size_t num_sources() const { return sources_.size(); }
  const FitDiagnostics& diagnostics() const { return diag_; }

  /// Pool for the per-call kernel fan-out (and across TransformMany
  /// batches). Defaults to GlobalThreadPool(); set before sharing the
  /// handle across threads. nullptr = inline execution.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

 private:
  struct PerSource {
    Source src;
    QueryPlanner planner;  // frozen after Create (its store holds the plan)
    ServingPlan serving;
  };

  FittedAugmenter() = default;

  /// Transform with an explicit pool (nullptr inside TransformMany's
  /// fan-out, where ParallelFor must not nest).
  Result<Table> TransformWith(const Table& batch, ThreadPool* pool,
                              const ExecContext* ctx) const;

  std::vector<std::unique_ptr<PerSource>> sources_;
  std::vector<std::string> feature_names_;
  std::vector<double> valid_metrics_;
  FitDiagnostics diag_;
  ThreadPool* pool_ = nullptr;
};

/// \brief The polymorphic fit-phase interface: one API for FeatAug,
/// MultiTableFeatAug and every baseline, so examples, the CLI and the ML
/// evaluation harness program against a single contract.
class Augmenter {
 public:
  virtual ~Augmenter() = default;

  /// Method label ("feataug", "multi_table", "random", ...).
  virtual const char* name() const = 0;

  /// Runs the method's offline search and returns the serving handle.
  virtual Result<std::unique_ptr<FittedAugmenter>> Fit() = 0;

  /// The evaluation context the search used (valid after Fit; test-split
  /// scoring for the benches). Null when the method has no single
  /// evaluator (e.g. multi-table fits one per relevant table).
  virtual FeatureEvaluator* evaluator() { return nullptr; }
};

/// FeatAug behind the Augmenter interface (thin adapter over FeatAug).
std::unique_ptr<Augmenter> MakeFeatAugAugmenter(FeatAugProblem problem,
                                                FeatAugOptions options);

/// MultiTableFeatAug behind the Augmenter interface.
std::unique_ptr<Augmenter> MakeMultiTableAugmenter(MultiTableProblem problem,
                                                   MultiTableOptions options);

/// Wraps a fitted or loaded plan in a serving handle bound to one relevant
/// table (the single-source case; plan_io::LoadFittedAugmenter delegates
/// here after parsing and validating).
Result<std::unique_ptr<FittedAugmenter>> MakeFittedAugmenter(
    AugmentationPlan plan, Table relevant);

}  // namespace featlib

#pragma once

/// \file search_session.h
/// \brief Cross-round, cross-template state of one search (Fit) run.
///
/// The search pipeline is suggest-batch -> pooled evaluate -> observe-all:
/// every optimizer proposes a *pool* of configurations
/// (Optimizer::SuggestBatch), the pool's feature columns are materialized in
/// one FeatureEvaluator::Features / QueryPlanner::EvaluateMany pass, and the
/// scores are observed back in proposal order. The SearchSession owns what
/// must persist *across* those rounds — and across the templates of one Fit:
///
///   - the proxy-score cache (a query's MI/SC/LR proxy is a pure function of
///     its feature column and the split, so QTI nodes and warm-up rounds
///     that re-propose a query pay nothing),
///   - the model-outcome cache (TrainAndScore is deterministic given the
///     model seed, so generation rounds and overlapping template pools reuse
///     trainings),
///   - per-stage evaluation counters (qti / warmup / generation), which flow
///     back into GenerationResult and AugmentationPlan.
///
/// Reduced-fidelity losses (Hyperband/BOHB rungs) are deliberately *not*
/// cached within a run: they are rung-specific training subsets and the
/// sequential driver recomputed repeats too — caching them would change no
/// trajectory but would misstate the cost ledger. They *are* logged for the
/// checkpoint layer, and a restored checkpoint's fidelity entries are
/// consulted on resume (the recomputation is deterministic, so a replay hit
/// returns the identical loss without retraining).
///
/// **Durable fit:** attach a CheckpointWriter (set_checkpoint) and every
/// scoring call becomes a round boundary — the writer snapshots the
/// session's replay state (score caches, fidelity log, failures, trajectory
/// digests) atomically to disk. A killed fit resumed from that snapshot
/// replays the deterministic search from the start; every previously-paid
/// evaluation hits the restored caches, so the replay costs surrogate math
/// only and the continuation is byte-identical to an uninterrupted run.
///
/// A session holds no table data itself; feature columns live in the
/// evaluator's byte-capped feature cache, and evicted columns re-materialize
/// through the planner's memoized compile step.

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/feature_eval.h"

namespace featlib {

class CheckpointWriter;  // core/checkpoint.h

/// Search stages the session attributes evaluation work to.
enum class SearchStage {
  kQti,         // template-identification node scoring
  kWarmup,      // proxy round + top-k promotion of one template's search
  kGeneration,  // real-metric round of one template's search
  kOther,       // anything outside the three named stages
};

const char* SearchStageToString(SearchStage stage);

/// \brief One Fit run's shared search state. Not thread-safe; one search
/// drives it from one thread (its pooled evaluations parallelize internally
/// through the evaluator's planner).
class SearchSession {
 public:
  explicit SearchSession(FeatureEvaluator* evaluator) : evaluator_(evaluator) {}

  /// Evaluation work attributed to one stage. "evals" count distinct
  /// computations at the evaluator (cache hits excluded); "cache_hits"
  /// count pool members served from the session caches.
  struct StageCounters {
    size_t proxy_evals = 0;
    size_t model_evals = 0;
    size_t proxy_cache_hits = 0;
    size_t model_cache_hits = 0;
  };

  /// Routes subsequent counter accrual to `stage`.
  void BeginStage(SearchStage stage) { stage_ = stage; }
  SearchStage current_stage() const { return stage_; }
  const StageCounters& stage(SearchStage s) const {
    return counters_[StageIndex(s)];
  }

  /// Result of one real-model evaluation (metric per the evaluator's
  /// MetricKind; loss in the minimize convention).
  struct ModelOutcome {
    double metric = 0.0;
    double loss = 0.0;
  };

  /// Proxy scores of a pool, in pool order. Uncached members are
  /// materialized through one FeaturesIsolated()/EvaluateManyIsolated pass,
  /// then scored; results are cached by (proxy kind, query content key).
  /// Duplicates in the pool are scored once. When `keys` is non-null it
  /// receives each member's content key (CacheKey) in pool order — the
  /// session computes them anyway, so callers deduplicating by key need not
  /// re-serialize.
  ///
  /// **Partial-failure isolation:** a member whose feature build or scoring
  /// fails is skipped-and-recorded (see failed_candidates()) and scores
  /// -infinity — strictly worse than any real proxy, and safe in the
  /// optimizers' sorts (never NaN). Only batch-fatal statuses (a tripped
  /// ExecContext: kCancelled / kDeadlineExceeded / kResourceExhausted) fail
  /// the call. Failures are never cached; a later pool re-attempts them.
  Result<std::vector<double>> ProxyScores(const std::vector<AggQuery>& pool,
                                          ProxyKind proxy,
                                          std::vector<std::string>* keys = nullptr);

  /// Real-model outcomes of a pool, in pool order. Uncached members share
  /// one FeaturesIsolated() pass; each then pays exactly one model training,
  /// cached by query content key (TrainAndScore is deterministic by seed).
  /// `keys` as in ProxyScores. Failed members are skipped-and-recorded with
  /// outcome {metric = NaN, loss = +infinity} — the loss convention keeps
  /// loss-ascending sorts a strict weak order; batch-fatal statuses as in
  /// ProxyScores.
  Result<std::vector<ModelOutcome>> ModelScores(
      const std::vector<AggQuery>& pool,
      std::vector<std::string>* keys = nullptr);

  /// Reduced-fidelity losses of a rung pool (Hyperband/BOHB), in pool
  /// order. One FeaturesIsolated() pass for the pool; per-member subsample
  /// trainings are never cached (see file comment). Failed members are
  /// skipped-and-recorded with loss +infinity (never promoted by successive
  /// halving); batch-fatal statuses as in ProxyScores.
  Result<std::vector<double>> FidelityLosses(const std::vector<AggQuery>& pool,
                                             double fidelity);

  /// One candidate the session skipped instead of failing its batch:
  /// content key (AggQuery::CacheKey) plus the Status that sank it.
  struct FailedCandidate {
    std::string key;
    Status status;
  };

  /// Every distinct candidate (by content key) skipped-and-recorded so far,
  /// in first-failure order. Flows into GenerationResult / FitDiagnostics.
  const std::vector<FailedCandidate>& failed_candidates() const {
    return failures_;
  }

  FeatureEvaluator* evaluator() { return evaluator_; }
  const FeatureEvaluator* evaluator() const { return evaluator_; }

  /// \name Durable fit: snapshot / restore / checkpoint hooks.
  /// @{

  /// The serializable replay state of a session, in deterministic (sorted)
  /// order. What a CheckpointWriter persists and a resumed fit restores.
  struct Snapshot {
    /// "<proxy>|<query CacheKey>" -> score, sorted by key.
    std::vector<std::pair<std::string, double>> proxy;
    /// query CacheKey -> outcome, sorted by key.
    std::vector<std::pair<std::string, ModelOutcome>> model;
    /// "<fidelity bits as 16 hex>|<query CacheKey>" -> loss, sorted by key.
    std::vector<std::pair<std::string, double>> fidelity;
    /// Skipped candidates in first-failure order (order is part of
    /// FitDiagnostics, so it is preserved, not sorted).
    struct FailureEntry {
      int code = 0;
      std::string message;
      std::string key;
    };
    std::vector<FailureEntry> failures;
    /// Trajectory digests (label -> CRC32 of optimizer observation state),
    /// sorted by label. A restored digest that differs on replay means the
    /// checkpoint belongs to a different trajectory — a typed kDataLoss.
    std::vector<std::pair<std::string, uint32_t>> digests;
  };

  /// Deterministic export of the current replay state.
  Snapshot ExportSnapshot() const;

  /// Restores a snapshot into the session: score caches merge in, fidelity
  /// entries become the replay cache, failures seed the dedup ledger,
  /// digests arm divergence detection. Call before the search starts.
  void RestoreSnapshot(const Snapshot& snapshot);

  /// Attaches a checkpoint writer (not owned; may be null). Every scoring
  /// call then ends with a round boundary: the writer decides whether to
  /// snapshot, and the "checkpoint.kill" fault site fires for crash sweeps.
  void set_checkpoint(CheckpointWriter* checkpoint) { checkpoint_ = checkpoint; }
  CheckpointWriter* checkpoint() { return checkpoint_; }

  /// Forces a snapshot now (template/QTI completion). No-op without a
  /// writer.
  Status CheckpointNow();

  /// Records the CRC32 digest of one search unit's optimizer observation
  /// state under `label`. Against a restored checkpoint, a differing digest
  /// for the same label fails with kDataLoss ("checkpoint divergence")
  /// instead of silently emitting a different plan.
  Status RecordTrajectoryDigest(const std::string& label, uint32_t crc);

  /// Monotone revision of the mutable replay state; a CheckpointWriter
  /// skips snapshots when nothing changed since the last write.
  uint64_t revision() const { return revision_; }
  /// @}

  /// \name Session-cache introspection (tests and benches).
  /// @{
  size_t proxy_cache_size() const { return proxy_cache_.size(); }
  size_t model_cache_size() const { return model_cache_.size(); }
  size_t fidelity_replay_size() const { return fidelity_replay_.size(); }
  /// @}

 private:
  static size_t StageIndex(SearchStage s) { return static_cast<size_t>(s); }
  StageCounters& current() { return counters_[StageIndex(stage_)]; }

  /// Records a skipped candidate (deduplicated by content key).
  void RecordFailure(std::string key, const Status& status);

  /// End-of-scoring-call hook: lets the attached CheckpointWriter snapshot
  /// and fires the crash-sweep kill site. No-op without a writer.
  Status RoundBoundary();

  FeatureEvaluator* evaluator_;
  SearchStage stage_ = SearchStage::kOther;
  StageCounters counters_[4];
  /// "<proxy>|<query CacheKey>" -> proxy score.
  std::unordered_map<std::string, double> proxy_cache_;
  /// query CacheKey -> (metric, loss).
  std::unordered_map<std::string, ModelOutcome> model_cache_;
  std::vector<FailedCandidate> failures_;
  std::unordered_set<std::string> failed_keys_;  // dedups failures_
  /// Fidelity losses restored from a checkpoint: consulted before paying a
  /// rung training on resume. Never written within a run (see file comment).
  std::unordered_map<std::string, double> fidelity_replay_;
  /// Fidelity losses computed this run: logged for the next checkpoint,
  /// never consulted (within-run repeats recompute, keeping the cost ledger
  /// byte-compatible with the non-checkpointed pipeline).
  std::unordered_map<std::string, double> fidelity_log_;
  /// label -> digest recorded this run / restored from the checkpoint.
  std::unordered_map<std::string, uint32_t> digests_;
  std::unordered_map<std::string, uint32_t> restored_digests_;
  CheckpointWriter* checkpoint_ = nullptr;
  uint64_t revision_ = 0;
};

}  // namespace featlib

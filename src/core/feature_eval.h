#pragma once

/// \file feature_eval.h
/// \brief Central evaluation service: materializes query features against
/// (D, R), scores them with low-cost proxies (§V.C, Table VIII) or with the
/// real downstream model (Problem 1's L(A(D_train), D_valid)), and caches
/// feature columns across the search.

#include <string>
#include <unordered_map>
#include <vector>

#include "ml/evaluator.h"
#include "query/query_planner.h"
#include "query/executor.h"

namespace featlib {

/// Low-cost proxies studied in Table VIII.
enum class ProxyKind {
  kMutualInformation,  // "MI" (default)
  kSpearman,           // "SC"
  kLogisticRegression, // "LR" mini-model proxy
};

const char* ProxyKindToString(ProxyKind proxy);

struct EvaluatorOptions {
  ModelKind model = ModelKind::kXgb;
  /// Metric; defaults (per task) applied when unset stays kAuc for binary.
  MetricKind metric = MetricKind::kAuc;
  double train_ratio = 0.6;
  double valid_ratio = 0.2;
  uint64_t split_seed = 7;
  uint64_t model_seed = 13;
};

/// \brief Evaluation context bound to one (D, label, base features, R).
class FeatureEvaluator {
 public:
  /// `base_feature_cols` are D's pre-existing features (the paper's age,
  /// gender, ...); FK columns and the label must not be listed.
  static Result<FeatureEvaluator> Create(const Table& training,
                                         const std::string& label_col,
                                         const std::vector<std::string>& base_feature_cols,
                                         const Table& relevant, TaskKind task,
                                         EvaluatorOptions options);

  /// Materializes (and caches) the feature column of `q` aligned to D.
  /// Uncached candidates run through the shared QueryPlanner, so the
  /// group index and predicate masks are built once across the search.
  /// The returned pointer stays valid until a later Feature/Features call
  /// evicts the entry (the cache is byte-capped; entries touched by the
  /// current call are epoch-pinned and never evicted by it).
  Result<const std::vector<double>*> Feature(const AggQuery& q);

  /// Batched variant: materializes every uncached query in one
  /// QueryPlanner::EvaluateMany pass. Returned pointers point into the
  /// feature cache, with the same validity contract as Feature() — all
  /// entries of one call are pinned against eviction by that call.
  Result<std::vector<const std::vector<double>*>> Features(
      const std::vector<AggQuery>& queries);

  /// One slot of a partial-failure-isolated batch: exactly one of
  /// {values, !status.ok()} holds.
  struct FeatureSlot {
    Status status;
    const std::vector<double>* values = nullptr;  // cache-owned when ok
  };

  /// Partial-failure-isolated variant of Features(): one failing candidate
  /// (bad spec, injected build/kernel fault) fails only its own slot, and the
  /// surviving columns are byte-identical to a fresh Features() of the
  /// survivors. Failed candidates are never cached, so a later retry
  /// re-evaluates them. The outer Result fails only for batch-wide errors —
  /// a tripped ExecContext or exhausted memory budget.
  Result<std::vector<FeatureSlot>> FeaturesIsolated(
      const std::vector<AggQuery>& queries);

  /// Proxy score of the single feature on the training split; higher is
  /// better for every proxy kind.
  Result<double> ProxyScore(const AggQuery& q, ProxyKind proxy);

  /// Real model evaluation: base features plus all `queries` features,
  /// trained on the train split, scored on the validation split.
  Result<double> ModelScore(const std::vector<AggQuery>& queries);

  /// Real model evaluation of the base features plus one query feature.
  Result<double> ModelScoreSingle(const AggQuery& q) {
    return ModelScore({q});
  }

  /// Reduced-fidelity model evaluation for Hyperband/BOHB: trains on the
  /// first ceil(fidelity * |train|) rows of the shuffled train split (a
  /// uniform subsample with the prefix property successive halving wants —
  /// every higher rung's training set contains the lower rung's) and scores
  /// on the full validation split. fidelity must lie in (0, 1];
  /// fidelity = 1 is exactly ModelScore.
  Result<double> ModelScoreAtFidelity(const std::vector<AggQuery>& queries,
                                      double fidelity);

  /// Model metric with base features only (cached after first call).
  Result<double> BaselineModelScore();

  /// Test-split metric for a final feature set (used by benches to report
  /// held-out numbers like the paper's tables).
  Result<double> TestScore(const std::vector<AggQuery>& queries);

  /// Converts a metric value into a loss for minimizing optimizers.
  double ScoreToLoss(double metric_value) const {
    return MetricToLoss(options_.metric, metric_value);
  }

  const Table& training() const { return training_; }
  const Table& relevant() const { return relevant_; }
  TaskKind task() const { return base_.task; }
  const EvaluatorOptions& options() const { return options_; }
  const Dataset& base_dataset() const { return base_; }
  const SplitIndices& split() const { return split_; }

  /// Evaluation counters (reported by the scalability benches).
  size_t num_feature_materializations() const { return num_materializations_; }
  size_t num_proxy_evals() const { return num_proxy_evals_; }
  size_t num_model_evals() const { return num_model_evals_; }

  /// \name Feature-cache accounting. The cache is byte-capped with the
  /// ArtifactStore's epoch-pinning idiom: every Feature/Features call opens
  /// an epoch, entries it touches are stamped, and eviction only removes
  /// entries from older epochs — an in-flight batch can never evict its own
  /// working set (the cache may temporarily exceed the cap instead).
  /// Evicted columns re-materialize through the planner's memoized compile.
  /// @{
  void set_feature_cache_cap_bytes(size_t cap) {
    feature_cache_cap_bytes_ = cap;
  }
  size_t feature_cache_bytes() const { return feature_cache_bytes_; }
  size_t num_feature_cache_evictions() const {
    return feature_cache_evictions_;
  }
  /// @}

  /// The shared candidate-evaluation engine (introspection: PlanStats,
  /// compile-memo hit counters, store counters).
  const QueryPlanner& planner() const { return planner_; }

  /// Cooperative execution limits (deadline / cancellation / memory budget),
  /// checked at chunk and stage boundaries of every evaluation below this
  /// point. Not owned; must outlive the evaluator or be reset to nullptr.
  void set_exec_context(const ExecContext* ctx) { ctx_ = ctx; }
  const ExecContext* exec_context() const { return ctx_; }

  /// \name Out-of-core morsel streaming (query/morsel.h), forwarded to the
  /// shared planner. 0 rows (the default) keeps the in-RAM artifact path;
  /// non-zero streams every uncached materialization below this point in
  /// bounded-memory morsels (bit-identical results).
  /// @{
  void set_morsel_rows(size_t rows) { planner_.set_morsel_rows(rows); }
  void set_morsel_prefetch(bool on) { planner_.set_morsel_prefetch(on); }
  /// @}

 private:
  FeatureEvaluator() = default;

  /// Builds base + query features dataset rows for the given split rows.
  Result<Dataset> BuildDataset(const std::vector<AggQuery>& queries,
                               const std::vector<uint32_t>& rows);

  Table training_;
  Table relevant_;
  std::string label_col_;
  Dataset base_;  // base features over all rows of D
  SplitIndices split_;
  EvaluatorOptions options_;

  struct FeatureEntry {
    std::vector<double> values;
    uint64_t used_epoch = 0;  // == feature_epoch_ => pinned by this call
  };

  /// Approximate heap bytes of one cache entry (map-node overhead folded
  /// into a constant).
  static size_t FeatureEntryBytes(const std::string& key,
                                  const std::vector<double>& values) {
    return key.size() + values.capacity() * sizeof(double) + 64;
  }

  /// Evicts unpinned entries until `incoming` more bytes fit under the cap
  /// (or only pinned entries remain).
  void EvictFeaturesFor(size_t incoming);

  /// Inserts under the byte cap; returns the stable cache-owned pointer.
  const std::vector<double>* InsertFeature(std::string key,
                                           std::vector<double> values);

  /// Shared candidate-evaluation engine; its artifact store caches the
  /// group index and per-predicate selection masks across all Feature()
  /// calls, and its prepare/fan-out phases run on the global thread pool.
  QueryPlanner planner_;
  const ExecContext* ctx_ = nullptr;
  std::unordered_map<std::string, FeatureEntry> feature_cache_;
  uint64_t feature_epoch_ = 0;
  size_t feature_cache_bytes_ = 0;
  size_t feature_cache_cap_bytes_ = 256u << 20;
  size_t feature_cache_evictions_ = 0;
  // Labels restricted to the train split (proxy scoring).
  std::vector<double> train_labels_;
  double baseline_score_ = 0.0;
  bool baseline_computed_ = false;

  size_t num_materializations_ = 0;
  size_t num_proxy_evals_ = 0;
  size_t num_model_evals_ = 0;
};

}  // namespace featlib

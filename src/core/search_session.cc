#include "core/search_session.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/str_util.h"
#include "core/checkpoint.h"

namespace featlib {

namespace {

std::string ProxyKey(ProxyKind proxy, const std::string& content_key) {
  std::string out = ProxyKindToString(proxy);
  out += '|';
  out += content_key;
  return out;
}

/// Replay-cache key for one (fidelity, query) rung evaluation. The fidelity
/// is keyed by exact bit pattern: rung fidelities are computed, not chosen,
/// and the replay must never mix adjacent rungs.
std::string FidelityKey(double fidelity, const std::string& content_key) {
  uint64_t bits = 0;
  std::memcpy(&bits, &fidelity, sizeof(bits));
  std::string out = StrFormat("%016llx", static_cast<unsigned long long>(bits));
  out += '|';
  out += content_key;
  return out;
}

/// A tripped ExecContext is a request to stop the whole batch, never a
/// per-candidate defect to skip around.
bool IsBatchFatal(const Status& s) {
  return s.code() == StatusCode::kCancelled ||
         s.code() == StatusCode::kDeadlineExceeded ||
         s.code() == StatusCode::kResourceExhausted;
}

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

void SearchSession::RecordFailure(std::string key, const Status& status) {
  if (!failed_keys_.insert(key).second) return;
  failures_.push_back(FailedCandidate{std::move(key), status});
  ++revision_;
}

Status SearchSession::RoundBoundary() {
  if (checkpoint_ == nullptr) return Status::OK();
  return checkpoint_->MaybeSnapshot(this, /*force=*/false);
}

Status SearchSession::CheckpointNow() {
  if (checkpoint_ == nullptr) return Status::OK();
  return checkpoint_->MaybeSnapshot(this, /*force=*/true);
}

Status SearchSession::RecordTrajectoryDigest(const std::string& label,
                                             uint32_t crc) {
  auto restored = restored_digests_.find(label);
  if (restored != restored_digests_.end() && restored->second != crc) {
    return Status::DataLoss(StrFormat(
        "checkpoint divergence at trajectory digest '%s': checkpoint %08x, "
        "replay %08x — the checkpoint belongs to a different fit "
        "configuration or data",
        label.c_str(), restored->second, crc));
  }
  if (digests_.emplace(label, crc).second) ++revision_;
  return Status::OK();
}

SearchSession::Snapshot SearchSession::ExportSnapshot() const {
  Snapshot out;
  out.proxy.assign(proxy_cache_.begin(), proxy_cache_.end());
  std::sort(out.proxy.begin(), out.proxy.end());
  out.model.assign(model_cache_.begin(), model_cache_.end());
  std::sort(out.model.begin(), out.model.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  // The fidelity section is the union of what this run computed and what a
  // restored checkpoint carried: entries the replay never touched must
  // survive into the next checkpoint generation.
  std::unordered_map<std::string, double> fidelity = fidelity_replay_;
  for (const auto& [k, v] : fidelity_log_) fidelity[k] = v;
  out.fidelity.assign(fidelity.begin(), fidelity.end());
  std::sort(out.fidelity.begin(), out.fidelity.end());
  out.failures.reserve(failures_.size());
  for (const FailedCandidate& f : failures_) {
    out.failures.push_back(Snapshot::FailureEntry{
        static_cast<int>(f.status.code()), f.status.message(), f.key});
  }
  std::unordered_map<std::string, uint32_t> digests = restored_digests_;
  for (const auto& [k, v] : digests_) digests[k] = v;
  out.digests.assign(digests.begin(), digests.end());
  std::sort(out.digests.begin(), out.digests.end());
  return out;
}

void SearchSession::RestoreSnapshot(const Snapshot& snapshot) {
  for (const auto& [k, v] : snapshot.proxy) proxy_cache_.emplace(k, v);
  for (const auto& [k, v] : snapshot.model) model_cache_.emplace(k, v);
  for (const auto& [k, v] : snapshot.fidelity) fidelity_replay_.emplace(k, v);
  for (const Snapshot::FailureEntry& f : snapshot.failures) {
    if (!failed_keys_.insert(f.key).second) continue;
    failures_.push_back(FailedCandidate{
        f.key, Status(static_cast<StatusCode>(f.code), f.message)});
  }
  for (const auto& [k, v] : snapshot.digests) restored_digests_.emplace(k, v);
  ++revision_;
}

const char* SearchStageToString(SearchStage stage) {
  switch (stage) {
    case SearchStage::kQti:
      return "qti";
    case SearchStage::kWarmup:
      return "warmup";
    case SearchStage::kGeneration:
      return "generation";
    case SearchStage::kOther:
      return "other";
  }
  return "?";
}

Result<std::vector<double>> SearchSession::ProxyScores(
    const std::vector<AggQuery>& pool, ProxyKind proxy,
    std::vector<std::string>* content_keys) {
  StageCounters& counters = current();
  std::vector<double> out(pool.size());
  std::vector<std::string> keys(pool.size());
  std::vector<size_t> missing;
  if (content_keys != nullptr) {
    content_keys->clear();
    content_keys->reserve(pool.size());
  }
  for (size_t i = 0; i < pool.size(); ++i) {
    std::string content_key = pool[i].CacheKey();
    keys[i] = ProxyKey(proxy, content_key);
    if (content_keys != nullptr) content_keys->push_back(std::move(content_key));
    auto it = proxy_cache_.find(keys[i]);
    if (it != proxy_cache_.end()) {
      out[i] = it->second;
      ++counters.proxy_cache_hits;
    } else {
      missing.push_back(i);
    }
  }
  if (missing.empty()) {
    FEAT_RETURN_NOT_OK(RoundBoundary());
    return out;
  }

  // One EvaluateManyIsolated pass materializes every uncached member's
  // feature column; the per-member ProxyScore calls below then hit the
  // feature cache and only pay the statistic. A member whose build failed
  // scores -inf and is recorded, without voiding the rest of the pool.
  std::vector<AggQuery> uncached;
  uncached.reserve(missing.size());
  for (size_t i : missing) uncached.push_back(pool[i]);
  const size_t proxy_before = evaluator_->num_proxy_evals();
  FEAT_ASSIGN_OR_RETURN(std::vector<FeatureEvaluator::FeatureSlot> slots,
                        evaluator_->FeaturesIsolated(uncached));
  for (size_t j = 0; j < missing.size(); ++j) {
    const size_t i = missing[j];
    // Deadlines stay honored even when every feature is already cached and
    // the planner (with its own checks) is never entered.
    FEAT_RETURN_NOT_OK(ExecContext::CheckFor(evaluator_->exec_context()));
    auto it = proxy_cache_.find(keys[i]);
    if (it != proxy_cache_.end()) {  // duplicate earlier in this pool
      out[i] = it->second;
      ++counters.proxy_cache_hits;
      continue;
    }
    if (!slots[j].status.ok()) {
      RecordFailure(pool[i].CacheKey(), slots[j].status);
      out[i] = -kInf;
      continue;
    }
    Result<double> score = evaluator_->ProxyScore(pool[i], proxy);
    if (!score.ok()) {
      if (IsBatchFatal(score.status())) return score.status();
      RecordFailure(pool[i].CacheKey(), score.status());
      out[i] = -kInf;
      continue;
    }
    proxy_cache_.emplace(keys[i], score.value());
    ++revision_;
    out[i] = score.value();
  }
  counters.proxy_evals += evaluator_->num_proxy_evals() - proxy_before;
  FEAT_RETURN_NOT_OK(RoundBoundary());
  return out;
}

Result<std::vector<SearchSession::ModelOutcome>> SearchSession::ModelScores(
    const std::vector<AggQuery>& pool, std::vector<std::string>* content_keys) {
  StageCounters& counters = current();
  std::vector<ModelOutcome> out(pool.size());
  std::vector<std::string> keys(pool.size());
  std::vector<size_t> missing;
  for (size_t i = 0; i < pool.size(); ++i) {
    keys[i] = pool[i].CacheKey();
    auto it = model_cache_.find(keys[i]);
    if (it != model_cache_.end()) {
      out[i] = it->second;
      ++counters.model_cache_hits;
    } else {
      missing.push_back(i);
    }
  }
  if (content_keys != nullptr) *content_keys = keys;
  if (missing.empty()) {
    FEAT_RETURN_NOT_OK(RoundBoundary());
    return out;
  }

  std::vector<AggQuery> uncached;
  uncached.reserve(missing.size());
  for (size_t i : missing) uncached.push_back(pool[i]);
  const size_t model_before = evaluator_->num_model_evals();
  FEAT_ASSIGN_OR_RETURN(std::vector<FeatureEvaluator::FeatureSlot> slots,
                        evaluator_->FeaturesIsolated(uncached));
  // Skipped members get {NaN metric, +inf loss}: +inf keeps loss-ascending
  // sorts a strict weak order (NaN there would corrupt std::sort).
  const ModelOutcome failed{std::numeric_limits<double>::quiet_NaN(), kInf};
  for (size_t j = 0; j < missing.size(); ++j) {
    const size_t i = missing[j];
    // One check per model training: trainings dominate a warm-cache round,
    // so this is the boundary that keeps deadlines responsive.
    FEAT_RETURN_NOT_OK(ExecContext::CheckFor(evaluator_->exec_context()));
    auto it = model_cache_.find(keys[i]);
    if (it != model_cache_.end()) {  // duplicate earlier in this pool
      out[i] = it->second;
      ++counters.model_cache_hits;
      continue;
    }
    if (!slots[j].status.ok()) {
      RecordFailure(keys[i], slots[j].status);
      out[i] = failed;
      continue;
    }
    Result<double> metric = evaluator_->ModelScoreSingle(pool[i]);
    if (!metric.ok()) {
      if (IsBatchFatal(metric.status())) return metric.status();
      RecordFailure(keys[i], metric.status());
      out[i] = failed;
      continue;
    }
    const ModelOutcome outcome{metric.value(),
                               evaluator_->ScoreToLoss(metric.value())};
    model_cache_.emplace(keys[i], outcome);
    ++revision_;
    out[i] = outcome;
  }
  counters.model_evals += evaluator_->num_model_evals() - model_before;
  FEAT_RETURN_NOT_OK(RoundBoundary());
  return out;
}

Result<std::vector<double>> SearchSession::FidelityLosses(
    const std::vector<AggQuery>& pool, double fidelity) {
  StageCounters& counters = current();
  // Replay pass: members whose (fidelity, query) loss a restored checkpoint
  // already carries skip materialization and training entirely — the rung
  // recomputation is deterministic, so the cached loss is the loss the
  // replay would have produced.
  std::vector<double> out(pool.size());
  std::vector<std::string> keys(pool.size());
  std::vector<size_t> missing;
  for (size_t i = 0; i < pool.size(); ++i) {
    keys[i] = FidelityKey(fidelity, pool[i].CacheKey());
    auto it = fidelity_replay_.find(keys[i]);
    if (it != fidelity_replay_.end()) {
      out[i] = it->second;
      ++counters.model_cache_hits;
    } else {
      missing.push_back(i);
    }
  }
  if (missing.empty()) {
    FEAT_RETURN_NOT_OK(RoundBoundary());
    return out;
  }

  std::vector<AggQuery> uncached;
  uncached.reserve(missing.size());
  for (size_t i : missing) uncached.push_back(pool[i]);
  const size_t model_before = evaluator_->num_model_evals();
  FEAT_ASSIGN_OR_RETURN(std::vector<FeatureEvaluator::FeatureSlot> slots,
                        evaluator_->FeaturesIsolated(uncached));
  for (size_t j = 0; j < missing.size(); ++j) {
    const size_t i = missing[j];
    FEAT_RETURN_NOT_OK(ExecContext::CheckFor(evaluator_->exec_context()));
    if (!slots[j].status.ok()) {
      // +inf loss: never promoted by successive halving, never NaN in a
      // loss-ascending sort.
      RecordFailure(pool[i].CacheKey(), slots[j].status);
      out[i] = kInf;
      continue;
    }
    Result<double> metric = evaluator_->ModelScoreAtFidelity({pool[i]}, fidelity);
    if (!metric.ok()) {
      if (IsBatchFatal(metric.status())) return metric.status();
      RecordFailure(pool[i].CacheKey(), metric.status());
      out[i] = kInf;
      continue;
    }
    out[i] = evaluator_->ScoreToLoss(metric.value());
    // Log (never consult within a run): within-run rung repeats recompute,
    // keeping the cost ledger identical to the non-checkpointed pipeline;
    // the log only feeds the next checkpoint.
    if (fidelity_log_.emplace(keys[i], out[i]).second) ++revision_;
  }
  counters.model_evals += evaluator_->num_model_evals() - model_before;
  FEAT_RETURN_NOT_OK(RoundBoundary());
  return out;
}

}  // namespace featlib

#include "core/search_session.h"

namespace featlib {

namespace {

std::string ProxyKey(ProxyKind proxy, const std::string& content_key) {
  std::string out = ProxyKindToString(proxy);
  out += '|';
  out += content_key;
  return out;
}

}  // namespace

const char* SearchStageToString(SearchStage stage) {
  switch (stage) {
    case SearchStage::kQti:
      return "qti";
    case SearchStage::kWarmup:
      return "warmup";
    case SearchStage::kGeneration:
      return "generation";
    case SearchStage::kOther:
      return "other";
  }
  return "?";
}

Result<std::vector<double>> SearchSession::ProxyScores(
    const std::vector<AggQuery>& pool, ProxyKind proxy,
    std::vector<std::string>* content_keys) {
  StageCounters& counters = current();
  std::vector<double> out(pool.size());
  std::vector<std::string> keys(pool.size());
  std::vector<size_t> missing;
  if (content_keys != nullptr) {
    content_keys->clear();
    content_keys->reserve(pool.size());
  }
  for (size_t i = 0; i < pool.size(); ++i) {
    std::string content_key = pool[i].CacheKey();
    keys[i] = ProxyKey(proxy, content_key);
    if (content_keys != nullptr) content_keys->push_back(std::move(content_key));
    auto it = proxy_cache_.find(keys[i]);
    if (it != proxy_cache_.end()) {
      out[i] = it->second;
      ++counters.proxy_cache_hits;
    } else {
      missing.push_back(i);
    }
  }
  if (missing.empty()) return out;

  // One EvaluateMany pass materializes every uncached member's feature
  // column; the per-member ProxyScore calls below then hit the feature
  // cache and only pay the statistic.
  std::vector<AggQuery> uncached;
  uncached.reserve(missing.size());
  for (size_t i : missing) uncached.push_back(pool[i]);
  const size_t proxy_before = evaluator_->num_proxy_evals();
  FEAT_RETURN_NOT_OK(evaluator_->Features(uncached).status());
  for (size_t i : missing) {
    auto it = proxy_cache_.find(keys[i]);
    if (it != proxy_cache_.end()) {  // duplicate earlier in this pool
      out[i] = it->second;
      ++counters.proxy_cache_hits;
      continue;
    }
    FEAT_ASSIGN_OR_RETURN(double score, evaluator_->ProxyScore(pool[i], proxy));
    proxy_cache_.emplace(keys[i], score);
    out[i] = score;
  }
  counters.proxy_evals += evaluator_->num_proxy_evals() - proxy_before;
  return out;
}

Result<std::vector<SearchSession::ModelOutcome>> SearchSession::ModelScores(
    const std::vector<AggQuery>& pool, std::vector<std::string>* content_keys) {
  StageCounters& counters = current();
  std::vector<ModelOutcome> out(pool.size());
  std::vector<std::string> keys(pool.size());
  std::vector<size_t> missing;
  for (size_t i = 0; i < pool.size(); ++i) {
    keys[i] = pool[i].CacheKey();
    auto it = model_cache_.find(keys[i]);
    if (it != model_cache_.end()) {
      out[i] = it->second;
      ++counters.model_cache_hits;
    } else {
      missing.push_back(i);
    }
  }
  if (content_keys != nullptr) *content_keys = keys;
  if (missing.empty()) return out;

  std::vector<AggQuery> uncached;
  uncached.reserve(missing.size());
  for (size_t i : missing) uncached.push_back(pool[i]);
  const size_t model_before = evaluator_->num_model_evals();
  FEAT_RETURN_NOT_OK(evaluator_->Features(uncached).status());
  for (size_t i : missing) {
    auto it = model_cache_.find(keys[i]);
    if (it != model_cache_.end()) {  // duplicate earlier in this pool
      out[i] = it->second;
      ++counters.model_cache_hits;
      continue;
    }
    FEAT_ASSIGN_OR_RETURN(double metric, evaluator_->ModelScoreSingle(pool[i]));
    const ModelOutcome outcome{metric, evaluator_->ScoreToLoss(metric)};
    model_cache_.emplace(keys[i], outcome);
    out[i] = outcome;
  }
  counters.model_evals += evaluator_->num_model_evals() - model_before;
  return out;
}

Result<std::vector<double>> SearchSession::FidelityLosses(
    const std::vector<AggQuery>& pool, double fidelity) {
  StageCounters& counters = current();
  const size_t model_before = evaluator_->num_model_evals();
  FEAT_RETURN_NOT_OK(evaluator_->Features(pool).status());
  std::vector<double> out(pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    FEAT_ASSIGN_OR_RETURN(double metric,
                          evaluator_->ModelScoreAtFidelity({pool[i]}, fidelity));
    out[i] = evaluator_->ScoreToLoss(metric);
  }
  counters.model_evals += evaluator_->num_model_evals() - model_before;
  return out;
}

}  // namespace featlib

#pragma once

/// \file multi_table.h
/// \brief The "multiple relevant tables" scenario of §III: FeatAug run per
/// flattened relevant table, with the feature budget split across tables.
///
/// The paper reduces a schema with several relevant tables to several
/// (D, R) scenarios. MultiTableFeatAug owns that reduction end-to-end: it
/// infers missing template ingredients per table, allocates the total
/// feature budget (equally, or proportionally to a cheap per-table proxy
/// probe), fits one FeatAug per table, and merges the plans into a single
/// augmentation with table-qualified feature names.

#include <memory>
#include <string>
#include <vector>

#include "core/feataug.h"
#include "query/relation_graph.h"

namespace featlib {

/// Heuristically inferred (A, attr) template ingredients for one relevant
/// table (Table II's per-dataset configuration, derived from the schema).
struct TemplateIngredients {
  /// Aggregation attributes: non-FK numeric/bool columns.
  std::vector<std::string> agg_attrs;
  /// WHERE-clause candidates: non-FK columns, skipping string columns whose
  /// cardinality exceeds the cap (predicates on near-unique attributes
  /// carve out singleton groups and overfit).
  std::vector<std::string> where_candidates;
};

/// Infers ingredients from a relevant table's schema. `fk_attrs` are
/// excluded from both roles.
TemplateIngredients InferTemplateIngredients(
    const Table& relevant, const std::vector<std::string>& fk_attrs,
    size_t max_categorical_cardinality = 64);

/// One relevant table's inputs. Empty agg/where vectors are inferred; an
/// empty agg_functions defaults to all 15.
struct RelevantInput {
  std::string name;
  Table relevant;
  std::vector<std::string> fk_attrs;
  std::vector<AggFunction> agg_functions;
  std::vector<std::string> agg_attrs;
  std::vector<std::string> candidate_where_attrs;
};

/// Problem spec: one base table, several relevant tables.
struct MultiTableProblem {
  Table training;
  std::string label_col;
  std::vector<std::string> base_feature_cols;
  TaskKind task = TaskKind::kBinaryClassification;
  std::vector<RelevantInput> relevants;

  /// Builds the relevant inputs from a RelationGraph's scenarios for
  /// `base_name` (ingredients inferred per table).
  static Result<MultiTableProblem> FromGraph(const RelationGraph& graph,
                                             const std::string& base_name,
                                             const std::string& label_col,
                                             TaskKind task);
};

/// How the total feature budget is split across relevant tables.
enum class BudgetAllocation {
  /// total_features / n_tables each (remainder to the first tables).
  kEqual,
  /// Proportional to each table's best unpredicated-aggregate proxy score —
  /// a Featuretools-style probe (COUNT per FK plus AVG of each aggregation
  /// attribute) scored with the configured proxy. Tables whose logs carry
  /// no signal get the minimum share instead of wasting search budget.
  kProxyWeighted,
};

struct MultiTableOptions {
  /// Total features across all tables (paper default 40).
  int total_features = 40;
  /// Queries kept per template (paper default 5); per-table template counts
  /// are derived from the table's share.
  int queries_per_template = 5;
  BudgetAllocation allocation = BudgetAllocation::kEqual;
  /// Floor share per table under kProxyWeighted (features).
  int min_features_per_table = 5;
  /// Per-table FeatAug knobs (n_templates / queries_per_template are
  /// overwritten by the allocation).
  FeatAugOptions per_table;
  uint64_t seed = 42;
};

/// Merged result: per-table plans plus globally unique feature names.
struct MultiTablePlan {
  struct TablePlan {
    std::string name;
    AugmentationPlan plan;
    int budget_features = 0;
    double probe_score = 0.0;  // kProxyWeighted probe value (0 under kEqual)
  };
  std::vector<TablePlan> tables;
  /// Total features produced (== sum over tables of plan.queries.size()).
  size_t total_features = 0;
};

/// \brief FeatAug across several relevant tables.
class MultiTableFeatAug {
 public:
  MultiTableFeatAug(MultiTableProblem problem, MultiTableOptions options);

  /// Allocates the budget, fits one FeatAug per relevant table.
  Result<MultiTablePlan> Fit();

  /// Fit() + MakeFitted(): the Augmenter-interface path.
  Result<std::unique_ptr<FittedAugmenter>> FitAugmenter();

  /// Wraps a merged plan in a serving handle with one source per relevant
  /// table (features qualified "<table>__<feature>"); all tables' artifacts
  /// are compiled once and reused by every Transform.
  Result<std::unique_ptr<FittedAugmenter>> MakeFitted(
      const MultiTablePlan& plan) const;

  /// Appends every table's plan features to `training` (names qualified as
  /// "<table>__<feature>").
  /// \deprecated Shim over MakeFitted()->Transform(): re-plans per call.
  Result<Table> Apply(const MultiTablePlan& plan, const Table& training) const;

  /// Builds the augmented Dataset (base features + every table's plan
  /// features) aligned to `training` rows, ready for downstream training.
  /// \deprecated Shim over MakeFitted()->TransformToDataset().
  Result<Dataset> ApplyToDataset(const MultiTablePlan& plan,
                                 const Table& training) const;

 private:
  /// Probe for kProxyWeighted: best proxy score over the table's
  /// unpredicated aggregate queries.
  Result<double> ProbeTable(const RelevantInput& input) const;

  MultiTableProblem problem_;
  MultiTableOptions options_;
};

}  // namespace featlib

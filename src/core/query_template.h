#pragma once

/// \file query_template.h
/// \brief Query template T = (F, A, P, K) (Def. 1): aggregation functions F,
/// aggregable attributes A, the WHERE-clause attribute combination P, and
/// the foreign-key attributes K.

#include <string>
#include <vector>

#include "common/status.h"
#include "query/aggregate.h"
#include "table/table.h"

namespace featlib {

/// \brief A query template; each template induces a query pool Q_T (Def. 2).
struct QueryTemplate {
  std::vector<AggFunction> agg_functions;  // F
  std::vector<std::string> agg_attrs;      // A
  std::vector<std::string> where_attrs;    // P (fixed attribute combination)
  std::vector<std::string> fk_attrs;       // K

  /// Checks attribute existence/typing against the relevant table.
  Status Validate(const Table& relevant) const;

  /// "(F=[SUM,AVG], A=[pprice], P=[department,ts], K=[cname])"
  std::string ToString() const;

  /// Canonical key over P (the part Query Template Identification varies).
  std::string WhereKey() const;
};

}  // namespace featlib

#include "core/plan_io.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <unordered_set>

#include "common/fault_injection.h"
#include "common/str_util.h"
#include "query/sql_parser.h"

namespace featlib {

namespace {

constexpr const char* kPlanHeader = "-- feataug plan v1";

/// Extracts "-- key: value" metadata lines preceding each statement.
/// Returns per-statement (name, metric) pairs in order of appearance,
/// aligned with the ';'-separated statements of the script.
struct StatementMeta {
  std::string feature_name;
  double valid_metric = std::nan("");
};

std::vector<StatementMeta> CollectMetadata(const std::string& text) {
  std::vector<StatementMeta> out;
  StatementMeta pending;
  bool pending_used = true;
  std::istringstream lines(text);
  std::string line;
  // A statement ends at a line containing ';'. Comments between statements
  // accumulate into the next statement's metadata.
  while (std::getline(lines, line)) {
    const std::string trimmed = StrTrim(line);
    if (trimmed.rfind("--", 0) == 0) {
      const std::string body = StrTrim(trimmed.substr(2));
      if (body.rfind("feature:", 0) == 0) {
        pending.feature_name = StrTrim(body.substr(8));
        pending_used = false;
      } else if (body.rfind("valid_metric:", 0) == 0) {
        double v = 0.0;
        if (ParseDouble(StrTrim(body.substr(13)), &v)) pending.valid_metric = v;
        pending_used = false;
      }
      continue;
    }
    if (trimmed.find(';') != std::string::npos) {
      out.push_back(pending);
      pending = StatementMeta{};
      pending_used = true;
    }
  }
  if (!pending_used) out.push_back(pending);
  return out;
}

}  // namespace

std::string SerializeAugmentationPlan(const AugmentationPlan& plan,
                                      const std::string& relation,
                                      const Table& schema_of) {
  std::string out = std::string(kPlanHeader) + "\n";
  out += StrFormat("-- queries: %zu\n\n", plan.queries.size());
  for (size_t i = 0; i < plan.queries.size(); ++i) {
    if (i < plan.feature_names.size()) {
      out += "-- feature: " + plan.feature_names[i] + "\n";
    }
    if (i < plan.valid_metrics.size() && std::isfinite(plan.valid_metrics[i])) {
      out += StrFormat("-- valid_metric: %.6f\n", plan.valid_metrics[i]);
    }
    out += plan.queries[i].ToSql(relation, schema_of) + ";\n\n";
  }
  return out;
}

Result<AugmentationPlan> ParseAugmentationPlan(const std::string& text) {
  FEAT_RETURN_NOT_OK(FaultPoint("plan_io.parse"));
  // Reject binary junk before tokenizing: a serialized plan is text, so an
  // embedded NUL can only mean a corrupt or truncated-and-rewritten file.
  if (text.find('\0') != std::string::npos) {
    return Status::InvalidArgument(
        "plan script contains NUL bytes (corrupt or binary file)");
  }
  FEAT_ASSIGN_OR_RETURN(std::vector<ParsedAggQuery> parsed,
                        ParseAggQueryScript(text));
  const std::vector<StatementMeta> meta = CollectMetadata(text);
  AugmentationPlan plan;
  std::unordered_set<std::string> used;
  for (size_t i = 0; i < parsed.size(); ++i) {
    plan.queries.push_back(std::move(parsed[i].query));
    std::string name;
    double metric = std::nan("");
    if (i < meta.size()) {
      name = meta[i].feature_name;
      metric = meta[i].valid_metric;
    }
    if (name.empty()) {
      // Prefer the SQL alias when the author supplied a meaningful one.
      name = parsed[i].feature_alias != "feature"
                 ? parsed[i].feature_alias
                 : StrFormat("feature_%zu", i);
    }
    // Hand edits and regenerated "feature_<i>" names may collide; the
    // suffix rule keeps every feature column addressable.
    name = UniquifyName(
        name, [&](const std::string& n) { return used.count(n) > 0; });
    used.insert(name);
    plan.feature_names.push_back(std::move(name));
    plan.valid_metrics.push_back(metric);
  }
  return plan;
}

Result<AugmentationPlan> ParseAugmentationPlan(const std::string& text,
                                               const Table& relevant) {
  FEAT_ASSIGN_OR_RETURN(AugmentationPlan plan, ParseAugmentationPlan(text));
  for (const AggQuery& q : plan.queries) {
    FEAT_RETURN_NOT_OK(q.Validate(relevant));
  }
  return plan;
}

Status WriteAugmentationPlan(const AugmentationPlan& plan,
                             const std::string& relation, const Table& schema_of,
                             const std::string& path) {
  FEAT_RETURN_NOT_OK(FaultPoint("plan_io.write"));
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << SerializeAugmentationPlan(plan, relation, schema_of);
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<AugmentationPlan> ReadAugmentationPlan(const std::string& path) {
  FEAT_RETURN_NOT_OK(FaultPoint("plan_io.read"));
  // ifstream happily "opens" a directory on Linux and then reads as if the
  // file were empty — catch it before that turns into a silently-empty plan.
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    return Status::IOError("path is a directory: " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  // rdbuf() swallows stream errors; bad() distinguishes "short file" from
  // "the read itself failed" (I/O error, directory, ...).
  if (in.bad() || buf.bad()) return Status::IOError("read failed: " + path);
  return ParseAugmentationPlan(buf.str());
}

Result<std::unique_ptr<FittedAugmenter>> LoadFittedAugmenter(
    const std::string& path, const Table& relevant) {
  FEAT_ASSIGN_OR_RETURN(AugmentationPlan plan, ReadAugmentationPlan(path));
  // Schema validation happens in the handle's compile step (every query is
  // Validate()d against `relevant` before any artifact is built).
  return MakeFittedAugmenter(std::move(plan), relevant);
}

}  // namespace featlib

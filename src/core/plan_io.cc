#include "core/plan_io.h"

#include <cmath>
#include <sstream>
#include <unordered_set>

#include "common/fault_injection.h"
#include "common/file_io.h"
#include "common/str_util.h"
#include "query/sql_parser.h"

namespace featlib {

namespace {

/// v1 files (and headerless hand-written scripts) parse leniently — the
/// "reviewable, editable SQL" contract. v2 adds the integrity envelope:
/// a `-- queries: N` count and a CRC32 footer over all preceding bytes,
/// both mandatory, so torn or bit-flipped files fail load with kDataLoss.
constexpr const char* kPlanHeaderV1 = "-- feataug plan v1";
constexpr const char* kPlanHeaderV2 = "-- feataug plan v2";
constexpr const char* kPlanHeaderPrefix = "-- feataug plan";

/// First line of `text` (without the newline).
std::string FirstLine(const std::string& text) {
  const size_t eol = text.find('\n');
  return eol == std::string::npos ? text : text.substr(0, eol);
}

/// Extracts the declared query count from a "-- queries: N" line, or -1.
long DeclaredQueryCount(const std::string& text) {
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const std::string trimmed = StrTrim(line);
    if (trimmed.rfind("-- queries:", 0) == 0) {
      int64_t n = 0;
      if (ParseInt64(StrTrim(trimmed.substr(11)), &n) && n >= 0) {
        return static_cast<long>(n);
      }
      return -1;
    }
  }
  return -1;
}

/// Extracts "-- key: value" metadata lines preceding each statement.
/// Returns per-statement (name, metric) pairs in order of appearance,
/// aligned with the ';'-separated statements of the script.
struct StatementMeta {
  std::string feature_name;
  double valid_metric = std::nan("");
};

std::vector<StatementMeta> CollectMetadata(const std::string& text) {
  std::vector<StatementMeta> out;
  StatementMeta pending;
  bool pending_used = true;
  std::istringstream lines(text);
  std::string line;
  // A statement ends at a line containing ';'. Comments between statements
  // accumulate into the next statement's metadata.
  while (std::getline(lines, line)) {
    const std::string trimmed = StrTrim(line);
    if (trimmed.rfind("--", 0) == 0) {
      const std::string body = StrTrim(trimmed.substr(2));
      if (body.rfind("feature:", 0) == 0) {
        pending.feature_name = StrTrim(body.substr(8));
        pending_used = false;
      } else if (body.rfind("valid_metric:", 0) == 0) {
        double v = 0.0;
        if (ParseDouble(StrTrim(body.substr(13)), &v)) pending.valid_metric = v;
        pending_used = false;
      }
      continue;
    }
    if (trimmed.find(';') != std::string::npos) {
      out.push_back(pending);
      pending = StatementMeta{};
      pending_used = true;
    }
  }
  if (!pending_used) out.push_back(pending);
  return out;
}

}  // namespace

std::string SerializeAugmentationPlan(const AugmentationPlan& plan,
                                      const std::string& relation,
                                      const Table& schema_of) {
  std::string out = std::string(kPlanHeaderV2) + "\n";
  out += StrFormat("-- queries: %zu\n\n", plan.queries.size());
  for (size_t i = 0; i < plan.queries.size(); ++i) {
    if (i < plan.feature_names.size()) {
      out += "-- feature: " + plan.feature_names[i] + "\n";
    }
    if (i < plan.valid_metrics.size() && std::isfinite(plan.valid_metrics[i])) {
      out += StrFormat("-- valid_metric: %.6f\n", plan.valid_metrics[i]);
    }
    out += plan.queries[i].ToSql(relation, schema_of) + ";\n\n";
  }
  // Integrity footer: CRC32 of every byte above, verified on parse. Hand
  // editors who break it can drop the header line to fall back to the
  // lenient legacy format.
  AppendCrcFooter(&out);
  return out;
}

Result<AugmentationPlan> ParseAugmentationPlan(const std::string& text) {
  FEAT_RETURN_NOT_OK(FaultPoint("plan_io.parse"));
  // Reject binary junk before tokenizing: a serialized plan is text, so an
  // embedded NUL can only mean a corrupt or truncated-and-rewritten file.
  if (text.find('\0') != std::string::npos) {
    return Status::InvalidArgument(
        "plan script contains NUL bytes (corrupt or binary file)");
  }
  // Version dispatch on the first line. v2 carries a mandatory integrity
  // envelope; v1 and headerless scripts stay lenient (hand-editable). A
  // header line that names no known version is corruption or a future
  // format — never guess.
  const std::string first = StrTrim(FirstLine(text));
  const bool v2 = first == kPlanHeaderV2;
  if (!v2 && first != kPlanHeaderV1 &&
      first.rfind(kPlanHeaderPrefix, 0) == 0) {
    return Status::DataLoss("unrecognized plan header (corrupt file or "
                            "unsupported version): " +
                            first);
  }
  // Verify the envelope whenever a crc footer is present, not only under a
  // v2 header: a bit flip inside the header line must not demote the file
  // to the lenient legacy path and skip its own checksum.
  const bool has_footer =
      text.find(std::string("\n") + kCrcFooterPrefix) != std::string::npos;
  if (v2 || has_footer) FEAT_RETURN_NOT_OK(CheckCrcFooter(text));
  FEAT_ASSIGN_OR_RETURN(std::vector<ParsedAggQuery> parsed,
                        ParseAggQueryScript(text));
  if (v2) {
    const long declared = DeclaredQueryCount(text);
    if (declared < 0) {
      return Status::DataLoss("v2 plan is missing its '-- queries: N' count");
    }
    if (static_cast<size_t>(declared) != parsed.size()) {
      return Status::DataLoss(
          StrFormat("v2 plan declares %ld queries but %zu parsed "
                    "(truncated or edited without re-checksumming)",
                    declared, parsed.size()));
    }
  }
  const std::vector<StatementMeta> meta = CollectMetadata(text);
  AugmentationPlan plan;
  std::unordered_set<std::string> used;
  for (size_t i = 0; i < parsed.size(); ++i) {
    plan.queries.push_back(std::move(parsed[i].query));
    std::string name;
    double metric = std::nan("");
    if (i < meta.size()) {
      name = meta[i].feature_name;
      metric = meta[i].valid_metric;
    }
    if (name.empty()) {
      // Prefer the SQL alias when the author supplied a meaningful one.
      name = parsed[i].feature_alias != "feature"
                 ? parsed[i].feature_alias
                 : StrFormat("feature_%zu", i);
    }
    // Hand edits and regenerated "feature_<i>" names may collide; the
    // suffix rule keeps every feature column addressable.
    name = UniquifyName(
        name, [&](const std::string& n) { return used.count(n) > 0; });
    used.insert(name);
    plan.feature_names.push_back(std::move(name));
    plan.valid_metrics.push_back(metric);
  }
  return plan;
}

Result<AugmentationPlan> ParseAugmentationPlan(const std::string& text,
                                               const Table& relevant) {
  FEAT_ASSIGN_OR_RETURN(AugmentationPlan plan, ParseAugmentationPlan(text));
  for (const AggQuery& q : plan.queries) {
    FEAT_RETURN_NOT_OK(q.Validate(relevant));
  }
  return plan;
}

Status WriteAugmentationPlan(const AugmentationPlan& plan,
                             const std::string& relation, const Table& schema_of,
                             const std::string& path) {
  FEAT_RETURN_NOT_OK(FaultPoint("plan_io.write"));
  // Atomic: a crash or injected failure anywhere in the save leaves the
  // previous plan at `path` intact; a reader never sees a torn file.
  return AtomicWriteFile(path, SerializeAugmentationPlan(plan, relation,
                                                         schema_of));
}

Result<AugmentationPlan> ReadAugmentationPlan(const std::string& path) {
  FEAT_RETURN_NOT_OK(FaultPoint("plan_io.read"));
  FEAT_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return ParseAugmentationPlan(text);
}

Result<std::unique_ptr<FittedAugmenter>> LoadFittedAugmenter(
    const std::string& path, const Table& relevant) {
  FEAT_ASSIGN_OR_RETURN(AugmentationPlan plan, ReadAugmentationPlan(path));
  // Schema validation happens in the handle's compile step (every query is
  // Validate()d against `relevant` before any artifact is built).
  return MakeFittedAugmenter(std::move(plan), relevant);
}

}  // namespace featlib

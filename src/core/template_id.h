#pragma once

/// \file template_id.h
/// \brief The Query Template Identification component (§VI): beam search
/// over the lattice of WHERE-clause attribute combinations, with
/// Optimization 1 (low-cost proxy scoring of each node) and Optimization 2
/// (a ridge performance predictor over one-hot template encodings that
/// prunes each layer to beta nodes before any proxy evaluation).

#include <memory>
#include <vector>

#include "core/feature_eval.h"
#include "core/query_template.h"
#include "core/search_session.h"

namespace featlib {

struct TemplateIdOptions {
  /// Beam width beta: nodes expanded per layer.
  int beam_width = 2;
  /// Maximum WHERE-clause size explored (tree depth).
  int max_depth = 3;
  /// Number of templates recommended (top-n over all evaluated nodes).
  int n_templates = 8;
  /// Proxy-TPE iterations used to estimate a node's effectiveness (Def. 5
  /// approximated by the best proxy value found in its pool).
  int node_iterations = 20;
  /// Pool size of one suggest-batch -> pooled-evaluate -> observe-all round
  /// of a node's search (see GeneratorOptions::suggest_batch_size). 1
  /// reproduces the sequential trajectory seed-for-seed.
  int suggest_batch_size = 8;
  /// Optimization 1: score nodes with the low-cost proxy instead of real
  /// model training. Disabling makes every node evaluation train models.
  bool use_low_cost_proxy = true;
  /// Optimization 2: predict child scores and only evaluate the top-beta.
  bool use_predictor = true;
  /// Beam inheritance (this implementation's extension): a child template's
  /// pool contains every query of its parents' pools, so the best queries
  /// found while scoring a parent are valid — and already proxy-cached —
  /// observations for the child's search. Seeding them makes short
  /// node_iterations budgets find compound predicates (e.g. department AND
  /// reordered) that a cold search at the same budget misses; see
  /// bench_ablation_design. A root node (no predicates) is evaluated first
  /// to seed layer 1.
  bool seed_from_parents = true;
  /// Best queries carried from each node to its children.
  int seeds_per_node = 4;
  ProxyKind proxy = ProxyKind::kMutualInformation;
  uint64_t seed = 42;
};

struct ScoredTemplate {
  QueryTemplate tmpl;
  /// Node effectiveness estimate (higher is better).
  double score = 0.0;
};

/// Result of scoring one lattice node: its effectiveness estimate plus the
/// best queries found (carried to children under beam inheritance).
struct NodeEvaluation {
  double score = 0.0;
  /// Best-first (query, proxy score) pairs, deduplicated by cache key.
  std::vector<std::pair<AggQuery, double>> top_queries;
};

struct TemplateIdResult {
  /// Top-n templates over all evaluated nodes, best first.
  std::vector<ScoredTemplate> templates;
  double seconds = 0.0;
  size_t nodes_evaluated = 0;
  size_t nodes_pruned_by_predictor = 0;
};

/// \brief Identifies promising query templates for given candidate WHERE
/// attributes (Problem 2).
///
/// Node scoring runs the batched pipeline (SuggestBatch -> one pooled
/// Features/EvaluateMany pass -> observe-all). Construct with a
/// SearchSession to share the proxy-score cache with the rest of a Fit run
/// — lattice nodes overlap heavily, so sibling and child nodes re-proposing
/// a parent's queries are session-cache hits; the evaluator-only
/// constructor owns a private session.
class TemplateIdentifier {
 public:
  TemplateIdentifier(FeatureEvaluator* evaluator, TemplateIdOptions options)
      : owned_session_(std::make_unique<SearchSession>(evaluator)),
        session_(owned_session_.get()),
        options_(options) {}

  TemplateIdentifier(SearchSession* session, TemplateIdOptions options)
      : session_(session), options_(options) {}

  /// `base` supplies F, A and K; its where_attrs are ignored — `candidate_attrs`
  /// is the attr set of Problem 2 from which combinations P are drawn.
  Result<TemplateIdResult> Run(const QueryTemplate& base,
                               const std::vector<std::string>& candidate_attrs);

 private:
  /// Effectiveness estimate of one node (template): short TPE run over its
  /// pool maximizing the proxy (Opt. 1) or the real metric (no Opt. 1).
  /// `seeds` are parent-pool queries warm-starting the search.
  Result<NodeEvaluation> EvaluateNode(
      const QueryTemplate& tmpl,
      const std::vector<std::pair<AggQuery, double>>& seeds);

  std::unique_ptr<SearchSession> owned_session_;
  SearchSession* session_;
  TemplateIdOptions options_;
  /// Canonical encoding of every node search's optimizer observations, in
  /// evaluation order; its CRC is the QTI trajectory digest the durable-fit
  /// checkpoint layer compares on resume.
  std::string observation_state_;
};

}  // namespace featlib

#pragma once

/// \file feataug.h
/// \brief End-to-end FeatAug (Fig. 2): optional Query Template
/// Identification, then SQL Query Generation per selected template, yielding
/// an augmentation plan of predicate-aware queries that Apply() joins onto
/// the training table.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/feature_eval.h"
#include "core/generator.h"
#include "core/template_id.h"

namespace featlib {

class FittedAugmenter;  // core/augmenter.h

struct FeatAugOptions {
  /// Number of promising templates used (paper default 8).
  int n_templates = 8;
  /// Queries kept per template's pool (paper default 5; 8 x 5 = 40 features).
  int queries_per_template = 5;
  /// Disable for the NoQTI ablation: a single template built from all
  /// candidate WHERE attributes is used instead.
  bool enable_qti = true;
  /// Disable for the NoWU ablation (see GeneratorOptions::enable_warmup).
  bool enable_warmup = true;
  ProxyKind proxy = ProxyKind::kMutualInformation;
  GeneratorOptions generator;
  TemplateIdOptions qti;
  EvaluatorOptions evaluator;
  uint64_t seed = 42;
  /// Durable fit (core/checkpoint.h): when `dir` is set, the search
  /// snapshots its session state to "<dir>/fit.ckpt" (or "fit_<tag>.ckpt")
  /// at round boundaries, atomically and checksummed. With `resume` a fit
  /// killed at any point restarts from the freshest checkpoint and — by
  /// replaying the deterministic search against the restored evaluation
  /// caches — produces a plan byte-identical to an uninterrupted run. A
  /// checkpoint written by a different fit (seed, options, or problem
  /// schema) is refused with kDataLoss rather than silently steering this
  /// one; a missing file is simply a fresh start.
  struct CheckpointConfig {
    /// Checkpoint directory; empty disables checkpointing. Must exist.
    std::string dir;
    /// Restore the existing checkpoint (if any) before searching.
    bool resume = false;
    /// Snapshot every N dirty round boundaries (completed search units
    /// always force one). Raise to trade durability for write volume.
    int every_rounds = 1;
    /// Distinguishes fits sharing `dir`; MultiTableFeatAug tags each
    /// per-table fit with the table name.
    std::string tag;
  };
  CheckpointConfig checkpoint;
  /// Cooperative execution limits for the whole Fit (deadline, cancellation,
  /// memory budget), checked at chunk/stage boundaries of every evaluation.
  /// Not owned; must outlive the Fit. A tripped context surfaces as
  /// kCancelled / kDeadlineExceeded / kResourceExhausted from Fit().
  const ExecContext* exec_context = nullptr;
};

/// \brief The fitted augmentation plan: an ordered list of queries plus
/// bookkeeping for the scalability experiments (Figs. 5, 7-9).
struct AugmentationPlan {
  std::vector<AggQuery> queries;
  std::vector<std::string> feature_names;
  std::vector<double> valid_metrics;  // per query, on the validation split
  double qti_seconds = 0.0;
  double warmup_seconds = 0.0;
  double generate_seconds = 0.0;
  size_t templates_considered = 0;
  size_t model_evals = 0;
  size_t proxy_evals = 0;
  /// Per-stage split of the totals above (SearchSession stage counters):
  /// QTI node scoring, warm-up rounds + top-k promotion, generation rounds.
  size_t qti_proxy_evals = 0;
  size_t qti_model_evals = 0;
  size_t warmup_proxy_evals = 0;
  size_t warmup_model_evals = 0;
  size_t generation_model_evals = 0;
  /// Proposals served from the fit-wide SearchSession score caches
  /// (repeat proposals within and across templates). A resumed fit's
  /// pre-crash evaluations reappear here: replay pays them from the
  /// restored caches, so the eval counters above cover only post-resume
  /// work while the hit counters absorb the history.
  size_t proxy_cache_hits = 0;
  size_t model_cache_hits = 0;
  /// Artifact-build re-attempts taken under the planner's RetryPolicy.
  size_t build_retries = 0;
  /// Cumulative compile-memo counters of the fit's planner (candidate
  /// resolutions reused across HPO rounds vs derived fresh).
  size_t compile_cache_hits = 0;
  size_t compile_cache_misses = 0;
  /// Durable fit: snapshots persisted during this run, and whether the
  /// search started from a restored checkpoint.
  size_t checkpoints_written = 0;
  bool resumed_from_checkpoint = false;
  /// Candidates skipped by partial-failure isolation during the search
  /// (content key + the Status that sank each). Skipped candidates score
  /// worst-possible and never enter `queries`; a nonempty list is the signal
  /// that the plan was fitted around per-candidate failures.
  std::vector<SearchSession::FailedCandidate> failed_candidates;
};

/// \brief Problem inputs: tables, label, task and template ingredients.
struct FeatAugProblem {
  Table training;
  std::string label_col;
  /// D's own feature columns (excluded: label, FK columns).
  std::vector<std::string> base_feature_cols;
  Table relevant;
  TaskKind task = TaskKind::kBinaryClassification;
  /// Template ingredients (Table II): F, A, K and the candidate attr set.
  std::vector<AggFunction> agg_functions;
  std::vector<std::string> agg_attrs;
  std::vector<std::string> fk_attrs;
  std::vector<std::string> candidate_where_attrs;
};

/// Fit signature: CRC32 over everything that determines the search
/// trajectory — seed, search options, and problem schema (label, column
/// names, agg functions, attribute sets). A checkpoint stamps this into its
/// header and resume refuses a mismatch, so a checkpoint can never be
/// replayed into a fit it was not written by. Table *contents* are
/// deliberately excluded (hashing every cell would dwarf the snapshot
/// cost); callers mutating data between fit and resume are out of contract.
uint32_t FitSignature(const FeatAugProblem& problem,
                      const FeatAugOptions& options);

/// \brief FeatAug driver.
class FeatAug {
 public:
  FeatAug(FeatAugProblem problem, FeatAugOptions options);

  /// Runs QTI (unless disabled) + query generation; returns the plan.
  Result<AugmentationPlan> Fit();

  /// Fit() + MakeFitted(): the Augmenter-interface path. Runs the search
  /// and returns the long-lived, thread-safe serving handle.
  Result<std::unique_ptr<FittedAugmenter>> FitAugmenter();

  /// Wraps a plan (from Fit or plan_io) in a serving handle bound to this
  /// problem's relevant table. The handle owns a warm QueryPlanner whose
  /// artifacts are compiled once here and reused by every Transform.
  Result<std::unique_ptr<FittedAugmenter>> MakeFitted(
      const AugmentationPlan& plan) const;

  /// Appends the plan's features to a table with the same schema as D.
  /// \deprecated Shim over MakeFitted()->Transform(): copies the relevant
  /// table and re-compiles the plan's artifacts per call. Hold a
  /// FittedAugmenter for repeated application.
  Result<Table> Apply(const AugmentationPlan& plan, const Table& training) const;

  /// Builds the augmented Dataset (base features + plan features) for
  /// downstream training, aligned to `training` rows.
  /// \deprecated Shim over MakeFitted()->TransformToDataset().
  Result<Dataset> ApplyToDataset(const AugmentationPlan& plan,
                                 const Table& training) const;

  /// The evaluator (valid after Fit); exposes split/test scoring.
  FeatureEvaluator* evaluator() {
    return evaluator_.has_value() ? &*evaluator_ : nullptr;
  }

 private:
  FeatAugProblem problem_;
  FeatAugOptions options_;
  std::optional<FeatureEvaluator> evaluator_;
};

}  // namespace featlib

#include "core/query_template.h"

#include <algorithm>

#include "common/str_util.h"

namespace featlib {

Status QueryTemplate::Validate(const Table& relevant) const {
  if (agg_functions.empty()) {
    return Status::InvalidArgument("template needs at least one aggregation fn");
  }
  if (agg_attrs.empty()) {
    return Status::InvalidArgument("template needs at least one agg attribute");
  }
  if (fk_attrs.empty()) {
    return Status::InvalidArgument("template needs at least one FK attribute");
  }
  for (const auto& a : agg_attrs) {
    if (!relevant.HasColumn(a)) {
      return Status::InvalidArgument("agg attribute missing from R: " + a);
    }
  }
  for (const auto& p : where_attrs) {
    if (!relevant.HasColumn(p)) {
      return Status::InvalidArgument("WHERE attribute missing from R: " + p);
    }
  }
  for (const auto& k : fk_attrs) {
    if (!relevant.HasColumn(k)) {
      return Status::InvalidArgument("FK attribute missing from R: " + k);
    }
  }
  return Status::OK();
}

std::string QueryTemplate::ToString() const {
  std::vector<std::string> fns;
  fns.reserve(agg_functions.size());
  for (AggFunction fn : agg_functions) fns.emplace_back(AggFunctionName(fn));
  return "(F=[" + StrJoin(fns, ",") + "], A=[" + StrJoin(agg_attrs, ",") +
         "], P=[" + StrJoin(where_attrs, ",") + "], K=[" + StrJoin(fk_attrs, ",") +
         "])";
}

std::string QueryTemplate::WhereKey() const {
  std::vector<std::string> sorted = where_attrs;
  std::sort(sorted.begin(), sorted.end());
  return StrJoin(sorted, "|");
}

}  // namespace featlib

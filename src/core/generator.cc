#include "core/generator.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "common/timer.h"

namespace featlib {

namespace {

std::unique_ptr<Optimizer> MakeOptimizer(HpoBackend backend,
                                         const SearchSpace& space,
                                         const TpeOptions& tpe_options,
                                         uint64_t seed) {
  switch (backend) {
    case HpoBackend::kTpe: {
      TpeOptions options = tpe_options;
      options.seed = seed;
      return std::make_unique<Tpe>(space, options);
    }
    case HpoBackend::kSmac: {
      SmacOptions options;
      options.seed = seed;
      return std::make_unique<Smac>(space, options);
    }
    case HpoBackend::kRandom:
      return std::make_unique<RandomSearch>(space, seed);
    case HpoBackend::kHyperband:
    case HpoBackend::kBohb:
      // Multi-fidelity backends use the bracketed driver, not the
      // sequential suggest/observe loop; the proxy round falls back to TPE.
      return std::make_unique<Tpe>(space, TpeOptions{.seed = seed});
  }
  return nullptr;
}

bool IsMultiFidelity(HpoBackend backend) {
  return backend == HpoBackend::kHyperband || backend == HpoBackend::kBohb;
}

}  // namespace

const char* HpoBackendToString(HpoBackend backend) {
  switch (backend) {
    case HpoBackend::kTpe:
      return "TPE";
    case HpoBackend::kSmac:
      return "SMAC";
    case HpoBackend::kRandom:
      return "Random";
    case HpoBackend::kHyperband:
      return "Hyperband";
    case HpoBackend::kBohb:
      return "BOHB";
  }
  return "?";
}

Result<GenerationResult> SqlQueryGenerator::Run(const QueryTemplate& tmpl) {
  FEAT_ASSIGN_OR_RETURN(QueryVectorCodec codec,
                        QueryVectorCodec::Create(tmpl, evaluator_->relevant()));
  GenerationResult result;
  const size_t proxy_evals_before = evaluator_->num_proxy_evals();
  const size_t model_evals_before = evaluator_->num_model_evals();

  // Best (vector, model loss) observations that seed and fill round two.
  std::vector<Trial> warm_trials;
  // All real-model-evaluated queries, keyed for dedup.
  std::unordered_map<std::string, GeneratedQuery> evaluated;

  auto evaluate_with_model = [&](const ParamVector& v) -> Status {
    FEAT_ASSIGN_OR_RETURN(AggQuery q, codec.Decode(v));
    const std::string key = q.CacheKey();
    auto it = evaluated.find(key);
    double loss;
    if (it != evaluated.end()) {
      loss = it->second.loss;
    } else {
      FEAT_ASSIGN_OR_RETURN(double metric, evaluator_->ModelScoreSingle(q));
      loss = evaluator_->ScoreToLoss(metric);
      evaluated.emplace(key, GeneratedQuery{std::move(q), metric, loss});
    }
    warm_trials.push_back(Trial{v, loss});
    return Status::OK();
  };

  WallTimer timer;
  if (options_.enable_warmup) {
    // ---- Round one: TPE against the low-cost proxy. ----
    auto proxy_search_ptr =
        MakeOptimizer(options_.backend, codec.space(), options_.tpe, options_.seed);
    Optimizer& proxy_search = *proxy_search_ptr;
    // (vector, proxy) pairs; proxy losses are -score (minimize convention).
    std::vector<std::pair<ParamVector, double>> proxy_history;
    std::unordered_set<std::string> proxy_seen;
    for (int i = 0; i < options_.warmup_iterations; ++i) {
      ParamVector v = proxy_search.Suggest();
      FEAT_ASSIGN_OR_RETURN(AggQuery q, codec.Decode(v));
      FEAT_ASSIGN_OR_RETURN(double score,
                            evaluator_->ProxyScore(q, options_.proxy));
      proxy_search.Observe(v, -score);
      if (proxy_seen.insert(q.CacheKey()).second) {
        proxy_history.emplace_back(std::move(v), -score);
      }
    }
    // Top-k distinct proxy queries get real-model evaluations that
    // initialize the surrogate of round two (knowledge transfer).
    std::sort(proxy_history.begin(), proxy_history.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
    const size_t top_k = std::min<size_t>(
        proxy_history.size(), static_cast<size_t>(options_.warmup_top_k));
    for (size_t i = 0; i < top_k; ++i) {
      FEAT_RETURN_NOT_OK(evaluate_with_model(proxy_history[i].first));
    }
  }
  result.warmup_seconds = options_.enable_warmup ? timer.Seconds() : 0.0;

  // ---- Round two: search against the real validation loss. ----
  timer.Restart();
  int iterations = options_.generation_iterations;
  if (!options_.enable_warmup) {
    // Fair-comparison protocol: the dropped warm-up's model evaluations are
    // granted to plain TPE instead (50 + 40 = 90 in the paper).
    iterations += options_.warmup_top_k;
  }

  if (IsMultiFidelity(options_.backend)) {
    // Bracketed successive halving at equal model-training budget: the cost
    // ledger counts a fidelity-f evaluation as f full evaluations.
    HyperbandOptions hb = options_.hyperband;
    hb.seed = options_.seed + 1;
    hb.model_based = options_.backend == HpoBackend::kBohb;
    hb.max_total_cost = static_cast<double>(iterations);
    Hyperband driver(codec.space(), hb);
    driver.WarmStart(warm_trials);
    auto objective = [&](const ParamVector& v,
                         double fidelity) -> Result<double> {
      FEAT_ASSIGN_OR_RETURN(AggQuery q, codec.Decode(v));
      if (fidelity >= 1.0) {
        // Only full-fidelity losses are reliable enough for the final
        // ranking; they flow into `evaluated` like round-two TPE losses.
        const std::string key = q.CacheKey();
        auto it = evaluated.find(key);
        if (it != evaluated.end()) return it->second.loss;
        FEAT_ASSIGN_OR_RETURN(double metric, evaluator_->ModelScoreSingle(q));
        const double loss = evaluator_->ScoreToLoss(metric);
        evaluated.emplace(key, GeneratedQuery{std::move(q), metric, loss});
        return loss;
      }
      FEAT_ASSIGN_OR_RETURN(double metric,
                            evaluator_->ModelScoreAtFidelity({q}, fidelity));
      return evaluator_->ScoreToLoss(metric);
    };
    FEAT_RETURN_NOT_OK(driver.Run(objective).status());
  } else {
    auto generation_search_ptr = MakeOptimizer(options_.backend, codec.space(),
                                               options_.tpe, options_.seed + 1);
    Optimizer& generation_search = *generation_search_ptr;
    generation_search.WarmStart(warm_trials);
    for (int i = 0; i < iterations; ++i) {
      ParamVector v = generation_search.Suggest();
      FEAT_ASSIGN_OR_RETURN(AggQuery q, codec.Decode(v));
      const std::string key = q.CacheKey();
      double loss;
      auto it = evaluated.find(key);
      if (it != evaluated.end()) {
        loss = it->second.loss;
      } else {
        FEAT_ASSIGN_OR_RETURN(double metric, evaluator_->ModelScoreSingle(q));
        loss = evaluator_->ScoreToLoss(metric);
        evaluated.emplace(key, GeneratedQuery{std::move(q), metric, loss});
      }
      generation_search.Observe(v, loss);
    }
  }
  result.generate_seconds = timer.Seconds();

  result.queries.reserve(evaluated.size());
  for (auto& [key, gq] : evaluated) result.queries.push_back(std::move(gq));
  std::sort(result.queries.begin(), result.queries.end(),
            [](const GeneratedQuery& a, const GeneratedQuery& b) {
              return a.loss < b.loss;
            });
  if (result.queries.size() > static_cast<size_t>(options_.n_queries)) {
    result.queries.resize(static_cast<size_t>(options_.n_queries));
  }
  result.proxy_evals = evaluator_->num_proxy_evals() - proxy_evals_before;
  result.model_evals = evaluator_->num_model_evals() - model_evals_before;
  return result;
}

}  // namespace featlib

#include "core/generator.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "common/file_io.h"
#include "common/str_util.h"
#include "common/timer.h"

namespace featlib {

namespace {

std::unique_ptr<Optimizer> MakeOptimizer(HpoBackend backend,
                                         const SearchSpace& space,
                                         const TpeOptions& tpe_options,
                                         uint64_t seed) {
  switch (backend) {
    case HpoBackend::kTpe: {
      TpeOptions options = tpe_options;
      options.seed = seed;
      return std::make_unique<Tpe>(space, options);
    }
    case HpoBackend::kSmac: {
      SmacOptions options;
      options.seed = seed;
      return std::make_unique<Smac>(space, options);
    }
    case HpoBackend::kRandom:
      return std::make_unique<RandomSearch>(space, seed);
    case HpoBackend::kHyperband:
    case HpoBackend::kBohb:
      // Multi-fidelity backends use the bracketed driver, not the
      // sequential suggest/observe loop; the proxy round falls back to TPE.
      return std::make_unique<Tpe>(space, TpeOptions{.seed = seed});
  }
  return nullptr;
}

bool IsMultiFidelity(HpoBackend backend) {
  return backend == HpoBackend::kHyperband || backend == HpoBackend::kBohb;
}

}  // namespace

const char* HpoBackendToString(HpoBackend backend) {
  switch (backend) {
    case HpoBackend::kTpe:
      return "TPE";
    case HpoBackend::kSmac:
      return "SMAC";
    case HpoBackend::kRandom:
      return "Random";
    case HpoBackend::kHyperband:
      return "Hyperband";
    case HpoBackend::kBohb:
      return "BOHB";
  }
  return "?";
}

Result<GenerationResult> SqlQueryGenerator::Run(const QueryTemplate& tmpl) {
  FeatureEvaluator* evaluator = session_->evaluator();
  FEAT_ASSIGN_OR_RETURN(QueryVectorCodec codec,
                        QueryVectorCodec::Create(tmpl, evaluator->relevant()));
  GenerationResult result;
  const size_t proxy_evals_before = evaluator->num_proxy_evals();
  const size_t model_evals_before = evaluator->num_model_evals();
  const SearchSession::StageCounters warmup_before =
      session_->stage(SearchStage::kWarmup);
  const SearchSession::StageCounters generation_before =
      session_->stage(SearchStage::kGeneration);
  const size_t failures_before = session_->failed_candidates().size();
  const int batch = std::max(1, options_.suggest_batch_size);

  // Best (vector, model loss) observations that seed and fill round two.
  std::vector<Trial> warm_trials;
  // All real-model-evaluated queries, keyed for dedup.
  std::unordered_map<std::string, GeneratedQuery> evaluated;

  // Pooled real-model evaluation: one Features/EvaluateMany pass, one
  // (session-cached) training per distinct member; outcomes land in
  // `evaluated`, and in `warm_trials` when requested.
  std::vector<std::string> pool_keys;
  auto evaluate_pool_with_model = [&](const std::vector<ParamVector>& vs,
                                      const std::vector<AggQuery>& pool,
                                      Optimizer* observer,
                                      bool record_warm) -> Status {
    FEAT_ASSIGN_OR_RETURN(std::vector<SearchSession::ModelOutcome> outcomes,
                          session_->ModelScores(pool, &pool_keys));
    for (size_t i = 0; i < pool.size(); ++i) {
      // Skipped-and-recorded members carry +inf loss: the optimizers may
      // observe that (it just repels the surrogate), but a failed candidate
      // must never enter the reportable result set.
      if (std::isfinite(outcomes[i].loss) &&
          evaluated.find(pool_keys[i]) == evaluated.end()) {
        evaluated.emplace(pool_keys[i],
                          GeneratedQuery{pool[i], outcomes[i].metric,
                                         outcomes[i].loss});
      }
      if (observer != nullptr) observer->Observe(vs[i], outcomes[i].loss);
      if (record_warm) warm_trials.push_back(Trial{vs[i], outcomes[i].loss});
    }
    return Status::OK();
  };

  // Canonical encoding of every optimizer observation this run makes; its
  // CRC becomes the template's trajectory digest (checkpoint divergence
  // detection — see SearchSession::RecordTrajectoryDigest).
  std::string observation_state;

  WallTimer timer;
  if (options_.enable_warmup) {
    // ---- Round one: suggest-batch TPE pools against the low-cost proxy. ----
    session_->BeginStage(SearchStage::kWarmup);
    auto proxy_search_ptr =
        MakeOptimizer(options_.backend, codec.space(), options_.tpe, options_.seed);
    Optimizer& proxy_search = *proxy_search_ptr;
    // (vector, proxy) pairs; proxy losses are -score (minimize convention).
    std::vector<std::pair<ParamVector, double>> proxy_history;
    std::unordered_set<std::string> proxy_seen;
    for (int done = 0; done < options_.warmup_iterations;) {
      const int b = std::min(batch, options_.warmup_iterations - done);
      std::vector<ParamVector> vs = proxy_search.SuggestBatch(b);
      FEAT_ASSIGN_OR_RETURN(std::vector<AggQuery> pool, codec.DecodeAll(vs));
      FEAT_ASSIGN_OR_RETURN(
          std::vector<double> scores,
          session_->ProxyScores(pool, options_.proxy, &pool_keys));
      for (size_t i = 0; i < pool.size(); ++i) {
        proxy_search.Observe(vs[i], -scores[i]);
        if (proxy_seen.insert(std::move(pool_keys[i])).second) {
          proxy_history.emplace_back(std::move(vs[i]), -scores[i]);
        }
      }
      done += b;
    }
    // Top-k distinct proxy queries get real-model evaluations that
    // initialize the surrogate of round two (knowledge transfer); the
    // promotion pool is evaluated in one pass.
    std::sort(proxy_history.begin(), proxy_history.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
    const size_t top_k = std::min<size_t>(
        proxy_history.size(), static_cast<size_t>(options_.warmup_top_k));
    std::vector<ParamVector> promoted;
    promoted.reserve(top_k);
    for (size_t i = 0; i < top_k; ++i) promoted.push_back(proxy_history[i].first);
    FEAT_ASSIGN_OR_RETURN(std::vector<AggQuery> promoted_pool,
                          codec.DecodeAll(promoted));
    FEAT_RETURN_NOT_OK(evaluate_pool_with_model(promoted, promoted_pool,
                                                /*observer=*/nullptr,
                                                /*record_warm=*/true));
    proxy_search.AppendObservationState(&observation_state);
  }
  result.warmup_seconds = options_.enable_warmup ? timer.Seconds() : 0.0;

  // ---- Round two: search against the real validation loss. ----
  timer.Restart();
  session_->BeginStage(SearchStage::kGeneration);
  int iterations = options_.generation_iterations;
  if (!options_.enable_warmup) {
    // Fair-comparison protocol: the dropped warm-up's model evaluations are
    // granted to plain TPE instead (50 + 40 = 90 in the paper).
    iterations += options_.warmup_top_k;
  }

  if (IsMultiFidelity(options_.backend)) {
    // Bracketed successive halving at equal model-training budget: the cost
    // ledger counts a fidelity-f evaluation as f full evaluations. Each
    // rung is evaluated as one pool.
    HyperbandOptions hb = options_.hyperband;
    hb.seed = options_.seed + 1;
    hb.model_based = options_.backend == HpoBackend::kBohb;
    hb.max_total_cost = static_cast<double>(iterations);
    Hyperband driver(codec.space(), hb);
    driver.WarmStart(warm_trials);
    auto objective = [&](const std::vector<ParamVector>& vs,
                         double fidelity) -> Result<std::vector<double>> {
      FEAT_ASSIGN_OR_RETURN(std::vector<AggQuery> pool, codec.DecodeAll(vs));
      if (fidelity >= 1.0) {
        // Only full-fidelity losses are reliable enough for the final
        // ranking; they flow into `evaluated` like round-two losses.
        FEAT_ASSIGN_OR_RETURN(std::vector<SearchSession::ModelOutcome> outcomes,
                              session_->ModelScores(pool, &pool_keys));
        std::vector<double> losses(pool.size());
        for (size_t i = 0; i < pool.size(); ++i) {
          if (std::isfinite(outcomes[i].loss) &&
              evaluated.find(pool_keys[i]) == evaluated.end()) {
            evaluated.emplace(pool_keys[i],
                              GeneratedQuery{pool[i], outcomes[i].metric,
                                             outcomes[i].loss});
          }
          losses[i] = outcomes[i].loss;
        }
        return losses;
      }
      return session_->FidelityLosses(pool, fidelity);
    };
    FEAT_RETURN_NOT_OK(driver.RunBatched(objective).status());
    driver.AppendObservationState(&observation_state);
  } else {
    auto generation_search_ptr = MakeOptimizer(options_.backend, codec.space(),
                                               options_.tpe, options_.seed + 1);
    Optimizer& generation_search = *generation_search_ptr;
    generation_search.WarmStart(warm_trials);
    for (int done = 0; done < iterations;) {
      const int b = std::min(batch, iterations - done);
      std::vector<ParamVector> vs = generation_search.SuggestBatch(b);
      FEAT_ASSIGN_OR_RETURN(std::vector<AggQuery> pool, codec.DecodeAll(vs));
      FEAT_RETURN_NOT_OK(evaluate_pool_with_model(vs, pool, &generation_search,
                                                  /*record_warm=*/false));
      done += b;
    }
    generation_search.AppendObservationState(&observation_state);
  }
  result.generate_seconds = timer.Seconds();
  session_->BeginStage(SearchStage::kOther);

  // Durable fit: a completed template is a natural durable unit. Record its
  // trajectory digest (a resumed fit whose replay diverges from the
  // checkpointed digest fails kDataLoss instead of silently emitting a
  // different plan) and force a snapshot so a kill between templates loses
  // nothing. The label is unique per template — Fit assigns each template a
  // distinct generator seed.
  FEAT_RETURN_NOT_OK(session_->RecordTrajectoryDigest(
      StrFormat("gen_s%llu", static_cast<unsigned long long>(options_.seed)),
      Crc32(observation_state)));
  FEAT_RETURN_NOT_OK(session_->CheckpointNow());

  result.queries.reserve(evaluated.size());
  for (auto& [key, gq] : evaluated) result.queries.push_back(std::move(gq));
  std::sort(result.queries.begin(), result.queries.end(),
            [](const GeneratedQuery& a, const GeneratedQuery& b) {
              return a.loss < b.loss;
            });
  if (result.queries.size() > static_cast<size_t>(options_.n_queries)) {
    result.queries.resize(static_cast<size_t>(options_.n_queries));
  }
  result.proxy_evals = evaluator->num_proxy_evals() - proxy_evals_before;
  result.model_evals = evaluator->num_model_evals() - model_evals_before;
  const SearchSession::StageCounters& warmup_after =
      session_->stage(SearchStage::kWarmup);
  const SearchSession::StageCounters& generation_after =
      session_->stage(SearchStage::kGeneration);
  result.warmup_model_evals = warmup_after.model_evals - warmup_before.model_evals;
  result.generation_model_evals =
      generation_after.model_evals - generation_before.model_evals;
  result.proxy_cache_hits = (warmup_after.proxy_cache_hits -
                             warmup_before.proxy_cache_hits) +
                            (generation_after.proxy_cache_hits -
                             generation_before.proxy_cache_hits);
  result.model_cache_hits = (warmup_after.model_cache_hits -
                             warmup_before.model_cache_hits) +
                            (generation_after.model_cache_hits -
                             generation_before.model_cache_hits);
  result.failed_candidates =
      session_->failed_candidates().size() - failures_before;
  return result;
}

}  // namespace featlib

#pragma once

/// \file codec.h
/// \brief Query-vector codec (§V.A): the bijection-ish mapping between
/// predicate-aware SQL queries in a pool Q_T and points of an HPO search
/// space V.
///
/// Vector layout for T = (F, A, P, K):
///   [0]            categorical over F (aggregation function)
///   [1]            categorical over A (aggregation attribute)
///   per p in P:    categorical attrs -> 1 slot over {values.., None};
///                  numeric/datetime  -> 2 OptionalNumeric slots (lo, hi)
///   per k in K:    categorical {0,1} selection bit
///
/// Decode guarantees a *valid* query for every in-domain vector: lo/hi are
/// swapped when inverted, an all-zero FK selection falls back to the first
/// key, and an aggregation function that is undefined on a categorical
/// aggregation attribute degrades to COUNT (documented lossy repair; TPE
/// simply learns to avoid such corners).

#include <vector>

#include "core/query_template.h"
#include "hpo/space.h"
#include "query/agg_query.h"

namespace featlib {

/// \brief Compiled codec for one (template, relevant table) pair.
class QueryVectorCodec {
 public:
  /// Builds domains from R: distinct dictionary values for categorical
  /// WHERE attributes, observed [min, max] for numeric/datetime ones.
  static Result<QueryVectorCodec> Create(const QueryTemplate& tmpl,
                                         const Table& relevant);

  const SearchSpace& space() const { return space_; }
  const QueryTemplate& query_template() const { return template_; }

  /// Vector -> SQL query. Never fails for vectors valid in space().
  Result<AggQuery> Decode(const ParamVector& v) const;

  /// Decodes a proposal pool in order (the suggest-batch pipeline's
  /// vector-pool -> query-pool step).
  Result<std::vector<AggQuery>> DecodeAll(
      const std::vector<ParamVector>& vs) const;

  /// SQL query -> vector (used by tests and warm-start transfer).
  /// Fails when the query is not expressible under this template.
  Result<ParamVector> Encode(const AggQuery& q) const;

 private:
  struct WhereSlot {
    std::string attr;
    bool categorical = false;
    // Categorical: decoded index -> equality value.
    std::vector<Value> values;
    // Numeric/datetime bounds and snapping.
    double lo = 0.0, hi = 1.0;
    bool integer = false;
    // First dimension index of this slot in the vector.
    size_t dim = 0;
  };

  QueryTemplate template_;
  SearchSpace space_;
  std::vector<WhereSlot> where_slots_;
  std::vector<bool> agg_attr_categorical_;
  size_t fk_dim_begin_ = 0;
};

}  // namespace featlib

#include "core/multi_table.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"
#include "common/thread_pool.h"
#include "core/augmenter.h"
#include "query/query_planner.h"

namespace featlib {

TemplateIngredients InferTemplateIngredients(
    const Table& relevant, const std::vector<std::string>& fk_attrs,
    size_t max_categorical_cardinality) {
  TemplateIngredients out;
  auto is_fk = [&](const std::string& name) {
    return std::find(fk_attrs.begin(), fk_attrs.end(), name) != fk_attrs.end();
  };
  for (size_t c = 0; c < relevant.num_columns(); ++c) {
    const std::string& name = relevant.NameAt(c);
    if (is_fk(name)) continue;
    const Column& col = relevant.ColumnAt(c);
    switch (col.type()) {
      case DataType::kInt64:
      case DataType::kDouble:
      case DataType::kBool:
      case DataType::kDatetime:
        out.agg_attrs.push_back(name);
        out.where_candidates.push_back(name);
        break;
      case DataType::kString:
        // Near-unique categoricals (ids, free text) make poor predicates:
        // equality carves out singleton groups the model memorizes.
        if (col.CountDistinct() <= max_categorical_cardinality) {
          out.where_candidates.push_back(name);
        }
        break;
    }
  }
  return out;
}

Result<MultiTableProblem> MultiTableProblem::FromGraph(
    const RelationGraph& graph, const std::string& base_name,
    const std::string& label_col, TaskKind task) {
  MultiTableProblem out;
  FEAT_ASSIGN_OR_RETURN(const Table* base, graph.GetTable(base_name));
  out.training = *base;
  out.label_col = label_col;
  out.task = task;
  if (!out.training.HasColumn(label_col)) {
    return Status::InvalidArgument("label column " + label_col +
                                   " missing from base table " + base_name);
  }
  FEAT_ASSIGN_OR_RETURN(std::vector<RelevantScenario> scenarios,
                        graph.BuildScenarios(base_name));
  std::vector<std::string> all_fks;
  for (RelevantScenario& s : scenarios) {
    RelevantInput input;
    input.name = s.name;
    input.fk_attrs = s.fk_attrs;
    // Lookup keys consumed by the flatten are structural, not features.
    std::vector<std::string> excluded = s.fk_attrs;
    excluded.insert(excluded.end(), s.join_keys.begin(), s.join_keys.end());
    TemplateIngredients inferred = InferTemplateIngredients(s.relevant, excluded);
    input.agg_attrs = std::move(inferred.agg_attrs);
    input.candidate_where_attrs = std::move(inferred.where_candidates);
    input.agg_functions = AllAggFunctions();
    input.relevant = std::move(s.relevant);
    for (const std::string& k : input.fk_attrs) all_fks.push_back(k);
    out.relevants.push_back(std::move(input));
  }
  // Base features: everything that is not the label or a join key.
  for (size_t c = 0; c < out.training.num_columns(); ++c) {
    const std::string& name = out.training.NameAt(c);
    if (name == label_col) continue;
    if (std::find(all_fks.begin(), all_fks.end(), name) != all_fks.end()) continue;
    out.base_feature_cols.push_back(name);
  }
  return out;
}

MultiTableFeatAug::MultiTableFeatAug(MultiTableProblem problem,
                                     MultiTableOptions options)
    : problem_(std::move(problem)), options_(options) {}

Result<double> MultiTableFeatAug::ProbeTable(const RelevantInput& input) const {
  EvaluatorOptions eval_options = options_.per_table.evaluator;
  FEAT_ASSIGN_OR_RETURN(
      FeatureEvaluator evaluator,
      FeatureEvaluator::Create(problem_.training, problem_.label_col,
                               problem_.base_feature_cols, input.relevant,
                               problem_.task, eval_options));
  // Featuretools-style unpredicated probe: COUNT per entity plus AVG of
  // each aggregation attribute (capped); best proxy score wins.
  std::vector<AggQuery> probes;
  AggQuery count;
  count.agg = AggFunction::kCount;
  count.agg_attr = input.fk_attrs.front();
  count.group_keys = input.fk_attrs;
  probes.push_back(count);
  const size_t kMaxProbedAttrs = 8;
  for (size_t i = 0; i < input.agg_attrs.size() && i < kMaxProbedAttrs; ++i) {
    AggQuery avg;
    avg.agg = AggFunction::kAvg;
    avg.agg_attr = input.agg_attrs[i];
    avg.group_keys = input.fk_attrs;
    probes.push_back(std::move(avg));
  }
  double best = 0.0;
  for (const AggQuery& q : probes) {
    FEAT_ASSIGN_OR_RETURN(double score,
                          evaluator.ProxyScore(q, options_.per_table.proxy));
    best = std::max(best, score);
  }
  return best;
}

Result<MultiTablePlan> MultiTableFeatAug::Fit() {
  const size_t n_tables = problem_.relevants.size();
  if (n_tables == 0) {
    return Status::InvalidArgument("MultiTableFeatAug needs >= 1 relevant table");
  }
  if (options_.queries_per_template <= 0 || options_.total_features <= 0) {
    return Status::InvalidArgument("feature budget must be positive");
  }

  // ---- Resolve inferred ingredients. ----
  for (RelevantInput& input : problem_.relevants) {
    if (input.fk_attrs.empty()) {
      return Status::InvalidArgument("relevant table " + input.name +
                                     " declares no FK attributes");
    }
    if (input.agg_functions.empty()) input.agg_functions = AllAggFunctions();
    if (input.agg_attrs.empty() || input.candidate_where_attrs.empty()) {
      TemplateIngredients inferred =
          InferTemplateIngredients(input.relevant, input.fk_attrs);
      if (input.agg_attrs.empty()) input.agg_attrs = std::move(inferred.agg_attrs);
      if (input.candidate_where_attrs.empty()) {
        input.candidate_where_attrs = std::move(inferred.where_candidates);
      }
    }
    if (input.agg_attrs.empty()) {
      return Status::InvalidArgument("relevant table " + input.name +
                                     " has no aggregable attributes");
    }
  }

  // ---- Allocate the feature budget. ----
  MultiTablePlan result;
  std::vector<int> budgets(n_tables, 0);
  std::vector<double> probe_scores(n_tables, 0.0);
  const int total = options_.total_features;
  const int min_share = std::min(options_.min_features_per_table,
                                 total / static_cast<int>(n_tables));
  bool proxy_weighted = options_.allocation == BudgetAllocation::kProxyWeighted &&
                        n_tables > 1 &&
                        total > static_cast<int>(n_tables) * min_share;
  if (proxy_weighted) {
    double weight_sum = 0.0;
    for (size_t i = 0; i < n_tables; ++i) {
      FEAT_ASSIGN_OR_RETURN(probe_scores[i], ProbeTable(problem_.relevants[i]));
      weight_sum += probe_scores[i];
    }
    if (weight_sum <= 0.0) {
      proxy_weighted = false;  // no signal anywhere; fall back to equal
    } else {
      int allocated = 0;
      const int spread = total - static_cast<int>(n_tables) * min_share;
      for (size_t i = 0; i < n_tables; ++i) {
        budgets[i] = min_share + static_cast<int>(std::floor(
                                     spread * probe_scores[i] / weight_sum));
        allocated += budgets[i];
      }
      // Round-off remainder goes to the strongest table.
      const size_t best = static_cast<size_t>(
          std::max_element(probe_scores.begin(), probe_scores.end()) -
          probe_scores.begin());
      budgets[best] += total - allocated;
    }
  }
  if (!proxy_weighted) {
    const int base = total / static_cast<int>(n_tables);
    int remainder = total % static_cast<int>(n_tables);
    for (size_t i = 0; i < n_tables; ++i) {
      budgets[i] = base + (remainder-- > 0 ? 1 : 0);
    }
  }

  // ---- One FeatAug per relevant table. ----
  for (size_t i = 0; i < n_tables; ++i) {
    const RelevantInput& input = problem_.relevants[i];
    if (budgets[i] <= 0) {
      result.tables.push_back(MultiTablePlan::TablePlan{
          input.name, AugmentationPlan{}, 0, probe_scores[i]});
      continue;
    }
    FeatAugProblem sub;
    sub.training = problem_.training;
    sub.label_col = problem_.label_col;
    sub.base_feature_cols = problem_.base_feature_cols;
    sub.relevant = input.relevant;
    sub.task = problem_.task;
    sub.agg_functions = input.agg_functions;
    sub.agg_attrs = input.agg_attrs;
    sub.fk_attrs = input.fk_attrs;
    sub.candidate_where_attrs = input.candidate_where_attrs;

    FeatAugOptions sub_options = options_.per_table;
    sub_options.queries_per_template = options_.queries_per_template;
    sub_options.n_templates = std::max(
        1, (budgets[i] + options_.queries_per_template - 1) /
               options_.queries_per_template);
    sub_options.seed = options_.seed + 7919 * (i + 1);
    // Each per-table fit checkpoints under its own tag so the files in a
    // shared directory never collide; a killed multi-table fit resumes
    // table-by-table (completed tables replay from their full caches).
    if (!sub_options.checkpoint.dir.empty() &&
        sub_options.checkpoint.tag.empty()) {
      sub_options.checkpoint.tag = input.name;
    }

    FeatAug feataug(std::move(sub), sub_options);
    FEAT_ASSIGN_OR_RETURN(AugmentationPlan plan, feataug.Fit());
    // Trim to the table's budget (templates round the share up).
    if (plan.queries.size() > static_cast<size_t>(budgets[i])) {
      plan.queries.resize(static_cast<size_t>(budgets[i]));
      plan.feature_names.resize(static_cast<size_t>(budgets[i]));
      plan.valid_metrics.resize(static_cast<size_t>(budgets[i]));
    }
    result.total_features += plan.queries.size();
    result.tables.push_back(MultiTablePlan::TablePlan{
        input.name, std::move(plan), budgets[i], probe_scores[i]});
  }
  return result;
}

Result<std::unique_ptr<FittedAugmenter>> MultiTableFeatAug::FitAugmenter() {
  FEAT_ASSIGN_OR_RETURN(MultiTablePlan plan, Fit());
  return MakeFitted(plan);
}

Result<std::unique_ptr<FittedAugmenter>> MultiTableFeatAug::MakeFitted(
    const MultiTablePlan& plan) const {
  std::vector<FittedAugmenter::Source> sources;
  FitDiagnostics diag;
  for (const MultiTablePlan::TablePlan& tp : plan.tables) {
    const RelevantInput* input = nullptr;
    for (const RelevantInput& candidate : problem_.relevants) {
      if (candidate.name == tp.name) {
        input = &candidate;
        break;
      }
    }
    if (input == nullptr) {
      return Status::InvalidArgument("plan references unknown table " + tp.name);
    }
    FittedAugmenter::Source source;
    source.name = tp.name;
    source.relevant = input->relevant;
    source.queries = tp.plan.queries;
    source.feature_names = tp.plan.feature_names;
    source.valid_metrics = tp.plan.valid_metrics;
    sources.push_back(std::move(source));
    diag.qti_seconds += tp.plan.qti_seconds;
    diag.warmup_seconds += tp.plan.warmup_seconds;
    diag.generate_seconds += tp.plan.generate_seconds;
    diag.templates_considered += tp.plan.templates_considered;
    diag.model_evals += tp.plan.model_evals;
    diag.proxy_evals += tp.plan.proxy_evals;
    diag.qti_proxy_evals += tp.plan.qti_proxy_evals;
    diag.qti_model_evals += tp.plan.qti_model_evals;
    diag.warmup_proxy_evals += tp.plan.warmup_proxy_evals;
    diag.warmup_model_evals += tp.plan.warmup_model_evals;
    diag.generation_model_evals += tp.plan.generation_model_evals;
    diag.proxy_cache_hits += tp.plan.proxy_cache_hits;
    diag.model_cache_hits += tp.plan.model_cache_hits;
    diag.build_retries += tp.plan.build_retries;
    diag.compile_cache_hits += tp.plan.compile_cache_hits;
    diag.compile_cache_misses += tp.plan.compile_cache_misses;
    diag.failed_candidates.insert(diag.failed_candidates.end(),
                                  tp.plan.failed_candidates.begin(),
                                  tp.plan.failed_candidates.end());
  }
  return FittedAugmenter::Create(std::move(sources), diag);
}

Result<Dataset> MultiTableFeatAug::ApplyToDataset(const MultiTablePlan& plan,
                                                  const Table& training) const {
  FEAT_ASSIGN_OR_RETURN(std::unique_ptr<FittedAugmenter> fitted,
                        MakeFitted(plan));
  return fitted->TransformToDataset(training, problem_.label_col,
                                    problem_.base_feature_cols, problem_.task);
}

Result<Table> MultiTableFeatAug::Apply(const MultiTablePlan& plan,
                                       const Table& training) const {
  FEAT_ASSIGN_OR_RETURN(std::unique_ptr<FittedAugmenter> fitted,
                        MakeFitted(plan));
  return fitted->Transform(training);
}

}  // namespace featlib

#include "core/feataug.h"

#include <algorithm>
#include <unordered_set>

#include "common/file_io.h"
#include "common/str_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/augmenter.h"
#include "core/checkpoint.h"
#include "query/query_planner.h"

namespace featlib {

namespace {

// Canonical text the fit signature hashes. Every field here changes the
// search trajectory (and therefore invalidates a checkpoint); hex double
// bits keep the encoding locale-independent and lossless.
void AppendField(std::string* out, const char* name, const std::string& v) {
  *out += name;
  *out += '=';
  *out += v;
  *out += '\n';
}
void AppendField(std::string* out, const char* name, uint64_t v) {
  AppendField(out, name, StrFormat("%llu", static_cast<unsigned long long>(v)));
}
void AppendField(std::string* out, const char* name, double v) {
  std::string hex;
  AppendDoubleBits(v, &hex);
  AppendField(out, name, hex);
}
void AppendField(std::string* out, const char* name,
                 const std::vector<std::string>& vs) {
  std::string joined;
  for (const std::string& v : vs) {
    joined += v;
    joined += '\x1f';
  }
  AppendField(out, name, joined);
}

}  // namespace

uint32_t FitSignature(const FeatAugProblem& problem,
                      const FeatAugOptions& options) {
  std::string canon;
  AppendField(&canon, "seed", options.seed);
  AppendField(&canon, "n_templates", static_cast<uint64_t>(options.n_templates));
  AppendField(&canon, "queries_per_template",
              static_cast<uint64_t>(options.queries_per_template));
  AppendField(&canon, "enable_qti", static_cast<uint64_t>(options.enable_qti));
  AppendField(&canon, "enable_warmup",
              static_cast<uint64_t>(options.enable_warmup));
  AppendField(&canon, "proxy", static_cast<uint64_t>(options.proxy));

  const GeneratorOptions& g = options.generator;
  AppendField(&canon, "gen.backend", static_cast<uint64_t>(g.backend));
  AppendField(&canon, "gen.warmup_iterations",
              static_cast<uint64_t>(g.warmup_iterations));
  AppendField(&canon, "gen.warmup_top_k", static_cast<uint64_t>(g.warmup_top_k));
  AppendField(&canon, "gen.generation_iterations",
              static_cast<uint64_t>(g.generation_iterations));
  AppendField(&canon, "gen.suggest_batch_size",
              static_cast<uint64_t>(g.suggest_batch_size));
  AppendField(&canon, "gen.tpe.gamma", g.tpe.gamma);
  AppendField(&canon, "gen.tpe.n_candidates",
              static_cast<uint64_t>(g.tpe.n_candidates));
  AppendField(&canon, "gen.tpe.n_startup", static_cast<uint64_t>(g.tpe.n_startup));
  AppendField(&canon, "gen.tpe.prior_weight", g.tpe.prior_weight);
  AppendField(&canon, "gen.tpe.exploration_fraction",
              g.tpe.exploration_fraction);
  AppendField(&canon, "gen.hb.eta", g.hyperband.eta);
  AppendField(&canon, "gen.hb.min_fidelity", g.hyperband.min_fidelity);
  AppendField(&canon, "gen.hb.random_fraction", g.hyperband.random_fraction);
  AppendField(&canon, "gen.hb.min_model_points",
              static_cast<uint64_t>(g.hyperband.min_model_points));

  const TemplateIdOptions& q = options.qti;
  AppendField(&canon, "qti.beam_width", static_cast<uint64_t>(q.beam_width));
  AppendField(&canon, "qti.max_depth", static_cast<uint64_t>(q.max_depth));
  AppendField(&canon, "qti.node_iterations",
              static_cast<uint64_t>(q.node_iterations));
  AppendField(&canon, "qti.suggest_batch_size",
              static_cast<uint64_t>(q.suggest_batch_size));
  AppendField(&canon, "qti.use_low_cost_proxy",
              static_cast<uint64_t>(q.use_low_cost_proxy));
  AppendField(&canon, "qti.use_predictor",
              static_cast<uint64_t>(q.use_predictor));
  AppendField(&canon, "qti.seed_from_parents",
              static_cast<uint64_t>(q.seed_from_parents));
  AppendField(&canon, "qti.seeds_per_node",
              static_cast<uint64_t>(q.seeds_per_node));

  const EvaluatorOptions& e = options.evaluator;
  AppendField(&canon, "eval.model", static_cast<uint64_t>(e.model));
  AppendField(&canon, "eval.metric", static_cast<uint64_t>(e.metric));
  AppendField(&canon, "eval.train_ratio", e.train_ratio);
  AppendField(&canon, "eval.valid_ratio", e.valid_ratio);
  AppendField(&canon, "eval.split_seed", e.split_seed);
  AppendField(&canon, "eval.model_seed", e.model_seed);

  AppendField(&canon, "problem.label", problem.label_col);
  AppendField(&canon, "problem.task", static_cast<uint64_t>(problem.task));
  AppendField(&canon, "problem.base_features", problem.base_feature_cols);
  std::vector<std::string> aggs;
  aggs.reserve(problem.agg_functions.size());
  for (AggFunction fn : problem.agg_functions) {
    aggs.push_back(AggFunctionName(fn));
  }
  AppendField(&canon, "problem.agg_functions", aggs);
  AppendField(&canon, "problem.agg_attrs", problem.agg_attrs);
  AppendField(&canon, "problem.fk_attrs", problem.fk_attrs);
  AppendField(&canon, "problem.where_attrs", problem.candidate_where_attrs);
  std::vector<std::string> schema;
  schema.reserve(problem.relevant.num_columns());
  for (size_t c = 0; c < problem.relevant.num_columns(); ++c) {
    schema.push_back(problem.relevant.NameAt(c));
  }
  AppendField(&canon, "problem.relevant_columns", schema);
  AppendField(&canon, "problem.relevant_rows",
              static_cast<uint64_t>(problem.relevant.num_rows()));
  AppendField(&canon, "problem.training_rows",
              static_cast<uint64_t>(problem.training.num_rows()));
  return Crc32(canon);
}

FeatAug::FeatAug(FeatAugProblem problem, FeatAugOptions options)
    : problem_(std::move(problem)), options_(std::move(options)) {}

Result<AugmentationPlan> FeatAug::Fit() {
  EvaluatorOptions eval_options = options_.evaluator;
  auto evaluator_result = FeatureEvaluator::Create(
      problem_.training, problem_.label_col, problem_.base_feature_cols,
      problem_.relevant, problem_.task, eval_options);
  if (!evaluator_result.ok()) return evaluator_result.status();
  evaluator_.emplace(std::move(evaluator_result).ValueOrDie());
  evaluator_->set_exec_context(options_.exec_context);

  AugmentationPlan plan;
  QueryTemplate base;
  base.agg_functions = problem_.agg_functions;
  base.agg_attrs = problem_.agg_attrs;
  base.fk_attrs = problem_.fk_attrs;
  FEAT_RETURN_NOT_OK(base.Validate(problem_.relevant));

  // One session spans the whole Fit: QTI nodes, warm-up rounds, and
  // generation rounds of every template share the proxy/model score caches
  // and accrue per-stage counters (template pools overlap heavily under
  // beam inheritance, so the cross-template reuse is substantial).
  SearchSession session(&*evaluator_);

  // ---- Durable fit: attach the checkpoint writer, restore on resume. ----
  // Resume is replay: the restored snapshot only refills the session's
  // content-keyed caches (plus the failure ledger and trajectory digests),
  // and the search below re-runs from the start. Already-paid evaluations
  // hit the caches, so replay costs surrogate/RNG arithmetic only and the
  // continuation is byte-identical to an uninterrupted same-seed run.
  std::unique_ptr<CheckpointWriter> checkpoint;
  bool resumed = false;
  if (!options_.checkpoint.dir.empty()) {
    const uint32_t signature = FitSignature(problem_, options_);
    const std::string path =
        options_.checkpoint.dir + "/" +
        (options_.checkpoint.tag.empty()
             ? std::string("fit.ckpt")
             : StrFormat("fit_%s.ckpt", options_.checkpoint.tag.c_str()));
    if (options_.checkpoint.resume) {
      Result<SearchSession::Snapshot> loaded = LoadCheckpoint(path, signature);
      if (loaded.ok()) {
        session.RestoreSnapshot(loaded.value());
        resumed = true;
      } else if (loaded.status().code() != StatusCode::kNotFound) {
        // Torn, bit-flipped, or foreign (signature-mismatched) checkpoint:
        // refuse loudly. Deleting the file is the operator's decision.
        return loaded.status();
      }
    }
    checkpoint = std::make_unique<CheckpointWriter>(
        path, signature, options_.checkpoint.every_rounds);
    session.set_checkpoint(checkpoint.get());
  }

  // ---- Stage 1: Query Template Identification (optional). ----
  std::vector<QueryTemplate> templates;
  if (options_.enable_qti && !problem_.candidate_where_attrs.empty()) {
    TemplateIdOptions qti_options = options_.qti;
    qti_options.n_templates = options_.n_templates;
    qti_options.proxy = options_.proxy;
    qti_options.seed = options_.seed;
    TemplateIdentifier identifier(&session, qti_options);
    FEAT_ASSIGN_OR_RETURN(TemplateIdResult qti,
                          identifier.Run(base, problem_.candidate_where_attrs));
    plan.qti_seconds = qti.seconds;
    for (auto& scored : qti.templates) templates.push_back(std::move(scored.tmpl));
  } else {
    // NoQTI: the single template formed by all provided attributes.
    QueryTemplate t = base;
    t.where_attrs = problem_.candidate_where_attrs;
    templates.push_back(std::move(t));
  }
  plan.templates_considered = templates.size();

  // ---- Stage 2: SQL Query Generation per template. ----
  GeneratorOptions gen_options = options_.generator;
  gen_options.enable_warmup = options_.enable_warmup;
  gen_options.proxy = options_.proxy;
  gen_options.n_queries = options_.queries_per_template;
  std::unordered_set<std::string> dedup;
  for (size_t t = 0; t < templates.size(); ++t) {
    gen_options.seed = options_.seed + 1000 * (t + 1);
    SqlQueryGenerator generator(&session, gen_options);
    FEAT_ASSIGN_OR_RETURN(GenerationResult gen, generator.Run(templates[t]));
    plan.warmup_seconds += gen.warmup_seconds;
    plan.generate_seconds += gen.generate_seconds;
    for (auto& gq : gen.queries) {
      if (!dedup.insert(gq.query.CacheKey()).second) continue;
      const size_t qi = plan.queries.size();
      plan.feature_names.push_back(
          StrFormat("feataug_%s_%s_t%zu_q%zu", AggFunctionName(gq.query.agg),
                    gq.query.agg_attr.c_str(), t, qi));
      plan.valid_metrics.push_back(gq.model_metric);
      plan.queries.push_back(std::move(gq.query));
    }
  }
  plan.model_evals = evaluator_->num_model_evals();
  plan.proxy_evals = evaluator_->num_proxy_evals();
  const SearchSession::StageCounters& qti_c = session.stage(SearchStage::kQti);
  const SearchSession::StageCounters& warm_c =
      session.stage(SearchStage::kWarmup);
  const SearchSession::StageCounters& gen_c =
      session.stage(SearchStage::kGeneration);
  plan.qti_proxy_evals = qti_c.proxy_evals;
  plan.qti_model_evals = qti_c.model_evals;
  plan.warmup_proxy_evals = warm_c.proxy_evals;
  plan.warmup_model_evals = warm_c.model_evals;
  plan.generation_model_evals = gen_c.model_evals;
  plan.proxy_cache_hits =
      qti_c.proxy_cache_hits + warm_c.proxy_cache_hits + gen_c.proxy_cache_hits;
  plan.model_cache_hits =
      qti_c.model_cache_hits + warm_c.model_cache_hits + gen_c.model_cache_hits;
  plan.failed_candidates = session.failed_candidates();
  plan.build_retries = evaluator_->planner().build_retries_total();
  plan.compile_cache_hits = evaluator_->planner().compile_cache_hits();
  plan.compile_cache_misses = evaluator_->planner().compile_cache_misses();
  plan.resumed_from_checkpoint = resumed;
  if (checkpoint != nullptr) {
    // The completed fit's state stays on disk (a no-op when the last
    // template's forced snapshot already wrote it): resuming a finished fit
    // is then a pure cache replay that re-emits the same plan. Flush makes
    // the background writer's freshest snapshot durable before returning,
    // so callers may read the checkpoint file immediately.
    FEAT_RETURN_NOT_OK(session.CheckpointNow());
    FEAT_RETURN_NOT_OK(checkpoint->Flush());
    plan.checkpoints_written = checkpoint->snapshots_written();
  }
  return plan;
}

Result<std::unique_ptr<FittedAugmenter>> FeatAug::FitAugmenter() {
  FEAT_ASSIGN_OR_RETURN(AugmentationPlan plan, Fit());
  return MakeFitted(plan);
}

Result<std::unique_ptr<FittedAugmenter>> FeatAug::MakeFitted(
    const AugmentationPlan& plan) const {
  return MakeFittedAugmenter(plan, problem_.relevant);
}

Result<Table> FeatAug::Apply(const AugmentationPlan& plan,
                             const Table& training) const {
  // Deprecated shim: builds a transient serving handle per call. The handle
  // compiles the plan's shared artifacts once and is the path to hold on to
  // for repeated application.
  FEAT_ASSIGN_OR_RETURN(std::unique_ptr<FittedAugmenter> fitted,
                        MakeFitted(plan));
  return fitted->Transform(training);
}

Result<Dataset> FeatAug::ApplyToDataset(const AugmentationPlan& plan,
                                        const Table& training) const {
  FEAT_ASSIGN_OR_RETURN(std::unique_ptr<FittedAugmenter> fitted,
                        MakeFitted(plan));
  return fitted->TransformToDataset(training, problem_.label_col,
                                    problem_.base_feature_cols, problem_.task);
}

}  // namespace featlib

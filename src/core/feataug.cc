#include "core/feataug.h"

#include <algorithm>
#include <unordered_set>

#include "common/str_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/augmenter.h"
#include "query/query_planner.h"

namespace featlib {

FeatAug::FeatAug(FeatAugProblem problem, FeatAugOptions options)
    : problem_(std::move(problem)), options_(std::move(options)) {}

Result<AugmentationPlan> FeatAug::Fit() {
  EvaluatorOptions eval_options = options_.evaluator;
  auto evaluator_result = FeatureEvaluator::Create(
      problem_.training, problem_.label_col, problem_.base_feature_cols,
      problem_.relevant, problem_.task, eval_options);
  if (!evaluator_result.ok()) return evaluator_result.status();
  evaluator_.emplace(std::move(evaluator_result).ValueOrDie());
  evaluator_->set_exec_context(options_.exec_context);

  AugmentationPlan plan;
  QueryTemplate base;
  base.agg_functions = problem_.agg_functions;
  base.agg_attrs = problem_.agg_attrs;
  base.fk_attrs = problem_.fk_attrs;
  FEAT_RETURN_NOT_OK(base.Validate(problem_.relevant));

  // One session spans the whole Fit: QTI nodes, warm-up rounds, and
  // generation rounds of every template share the proxy/model score caches
  // and accrue per-stage counters (template pools overlap heavily under
  // beam inheritance, so the cross-template reuse is substantial).
  SearchSession session(&*evaluator_);

  // ---- Stage 1: Query Template Identification (optional). ----
  std::vector<QueryTemplate> templates;
  if (options_.enable_qti && !problem_.candidate_where_attrs.empty()) {
    TemplateIdOptions qti_options = options_.qti;
    qti_options.n_templates = options_.n_templates;
    qti_options.proxy = options_.proxy;
    qti_options.seed = options_.seed;
    TemplateIdentifier identifier(&session, qti_options);
    FEAT_ASSIGN_OR_RETURN(TemplateIdResult qti,
                          identifier.Run(base, problem_.candidate_where_attrs));
    plan.qti_seconds = qti.seconds;
    for (auto& scored : qti.templates) templates.push_back(std::move(scored.tmpl));
  } else {
    // NoQTI: the single template formed by all provided attributes.
    QueryTemplate t = base;
    t.where_attrs = problem_.candidate_where_attrs;
    templates.push_back(std::move(t));
  }
  plan.templates_considered = templates.size();

  // ---- Stage 2: SQL Query Generation per template. ----
  GeneratorOptions gen_options = options_.generator;
  gen_options.enable_warmup = options_.enable_warmup;
  gen_options.proxy = options_.proxy;
  gen_options.n_queries = options_.queries_per_template;
  std::unordered_set<std::string> dedup;
  for (size_t t = 0; t < templates.size(); ++t) {
    gen_options.seed = options_.seed + 1000 * (t + 1);
    SqlQueryGenerator generator(&session, gen_options);
    FEAT_ASSIGN_OR_RETURN(GenerationResult gen, generator.Run(templates[t]));
    plan.warmup_seconds += gen.warmup_seconds;
    plan.generate_seconds += gen.generate_seconds;
    for (auto& gq : gen.queries) {
      if (!dedup.insert(gq.query.CacheKey()).second) continue;
      const size_t qi = plan.queries.size();
      plan.feature_names.push_back(
          StrFormat("feataug_%s_%s_t%zu_q%zu", AggFunctionName(gq.query.agg),
                    gq.query.agg_attr.c_str(), t, qi));
      plan.valid_metrics.push_back(gq.model_metric);
      plan.queries.push_back(std::move(gq.query));
    }
  }
  plan.model_evals = evaluator_->num_model_evals();
  plan.proxy_evals = evaluator_->num_proxy_evals();
  const SearchSession::StageCounters& qti_c = session.stage(SearchStage::kQti);
  const SearchSession::StageCounters& warm_c =
      session.stage(SearchStage::kWarmup);
  const SearchSession::StageCounters& gen_c =
      session.stage(SearchStage::kGeneration);
  plan.qti_proxy_evals = qti_c.proxy_evals;
  plan.qti_model_evals = qti_c.model_evals;
  plan.warmup_proxy_evals = warm_c.proxy_evals;
  plan.warmup_model_evals = warm_c.model_evals;
  plan.generation_model_evals = gen_c.model_evals;
  plan.proxy_cache_hits =
      qti_c.proxy_cache_hits + warm_c.proxy_cache_hits + gen_c.proxy_cache_hits;
  plan.model_cache_hits =
      qti_c.model_cache_hits + warm_c.model_cache_hits + gen_c.model_cache_hits;
  plan.failed_candidates = session.failed_candidates();
  return plan;
}

Result<std::unique_ptr<FittedAugmenter>> FeatAug::FitAugmenter() {
  FEAT_ASSIGN_OR_RETURN(AugmentationPlan plan, Fit());
  return MakeFitted(plan);
}

Result<std::unique_ptr<FittedAugmenter>> FeatAug::MakeFitted(
    const AugmentationPlan& plan) const {
  return MakeFittedAugmenter(plan, problem_.relevant);
}

Result<Table> FeatAug::Apply(const AugmentationPlan& plan,
                             const Table& training) const {
  // Deprecated shim: builds a transient serving handle per call. The handle
  // compiles the plan's shared artifacts once and is the path to hold on to
  // for repeated application.
  FEAT_ASSIGN_OR_RETURN(std::unique_ptr<FittedAugmenter> fitted,
                        MakeFitted(plan));
  return fitted->Transform(training);
}

Result<Dataset> FeatAug::ApplyToDataset(const AugmentationPlan& plan,
                                        const Table& training) const {
  FEAT_ASSIGN_OR_RETURN(std::unique_ptr<FittedAugmenter> fitted,
                        MakeFitted(plan));
  return fitted->TransformToDataset(training, problem_.label_col,
                                    problem_.base_feature_cols, problem_.task);
}

}  // namespace featlib

#pragma once

/// \file checkpoint.h
/// \brief Crash-safe checkpointing of one Fit's search state.
///
/// The durable-fit design is **replay with memoized evaluations**, not
/// mid-round state capture: everything expensive in a fit — feature
/// materialization, proxy statistics, model trainings, rung trainings — is
/// deterministic and flows through the SearchSession's content-keyed
/// caches. A checkpoint therefore persists exactly those caches (plus the
/// failure ledger and per-unit trajectory digests), and resume re-runs the
/// search from the start: every previously-paid evaluation hits the
/// restored caches, so the replay costs only surrogate/RNG arithmetic and
/// the continuation is byte-identical to an uninterrupted same-seed run.
///
/// File format (text, line-based, deterministic bytes):
///
///   -- feataug checkpoint v1
///   -- signature: <8 hex>          fit signature; mismatch refuses resume
///   -- entries: <N>
///   digest <8 hex> <label>         trajectory digest per search unit
///   failed <8 hex idx> <code> <msg> <key>
///   fidelity <16 hex loss> <fidelity-bits|key>
///   model <16 hex metric> <16 hex loss> <key>
///   proxy <16 hex score> <proxy|key>
///   -- crc32: <8 hex>
///
/// Entry lines are sorted; doubles are serialized as raw bit patterns (16
/// hex digits) so every value — including NaN payloads — round-trips
/// bit-exactly. Variable-text fields (keys, labels, messages) are escaped
/// ('\\' -> "\\\\", newline -> "\\n", space -> "\\s") and placed last so
/// lines split unambiguously on spaces. Writes go through AtomicWriteFile
/// and the file carries the shared CRC32 footer: a kill mid-snapshot leaves
/// the previous checkpoint intact, and a torn or bit-flipped checkpoint
/// fails load with kDataLoss.
///
/// Fault-injection sites: "checkpoint.snapshot" (fails the write decision),
/// "checkpoint.kill" (fires at every round boundary after the snapshot —
/// arming its nth call simulates a kill with checkpoints on disk; the
/// kill-resume sweeps in tests/ci drive it).

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "core/search_session.h"

namespace featlib {

/// \brief Snapshots a SearchSession to one checkpoint file at round
/// boundaries. Attached via SearchSession::set_checkpoint.
///
/// Writes happen off the search's critical path: MaybeSnapshot serializes
/// on the calling thread (the bytes must be a consistent view of the
/// session) and hands them to a single background writer that runs the
/// fsync'd AtomicWriteFile. Queued snapshots coalesce latest-wins — if the
/// search outpaces the disk, intermediate states are superseded, never
/// reordered. Call Flush() (or let the destructor run) to guarantee the
/// newest snapshot is durable; a background write failure is sticky and
/// surfaces, typed, from the next MaybeSnapshot/Flush — a fit that cannot
/// persist its progress fails loudly rather than running silently
/// undurable. MaybeSnapshot/Flush themselves must be driven from one
/// thread (the search thread).
class CheckpointWriter {
 public:
  /// `signature` identifies the fit (seed + options + problem schema);
  /// LoadCheckpoint refuses a file whose signature differs. `every_rounds`
  /// rate-limits unforced snapshots (1 = every dirty round boundary).
  CheckpointWriter(std::string path, uint32_t signature, int every_rounds = 1);

  /// Drains pending writes, then joins the writer thread — the freshest
  /// enqueued snapshot is on disk (or its failure recorded) before a dying
  /// fit finishes unwinding.
  ~CheckpointWriter();

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Round-boundary hook: counts the round, snapshots when due (or
  /// `force`d) and the session state changed since the last enqueue, then
  /// fires the "checkpoint.kill" crash site. Returns any sticky failure
  /// from an earlier background write.
  Status MaybeSnapshot(SearchSession* session, bool force);

  /// Blocks until every enqueued snapshot has been written (or failed);
  /// returns the first background write failure, if any. Fit calls this
  /// before returning so callers may read the checkpoint file immediately.
  Status Flush();

  const std::string& path() const { return path_; }
  /// Snapshots enqueued (a superseded, never-written snapshot counts: it
  /// was logically taken).
  size_t snapshots_written() const { return written_; }
  uint64_t rounds_seen() const { return rounds_; }

 private:
  void WriterLoop();
  /// Hands `bytes` to the writer thread (starting it on first use),
  /// superseding any not-yet-started write.
  void Enqueue(std::string bytes);

  std::string path_;
  uint32_t signature_;
  int every_rounds_;
  uint64_t rounds_ = 0;
  uint64_t last_revision_ = ~0ull;  // "nothing enqueued yet"
  size_t written_ = 0;

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals the writer: work or stop
  std::condition_variable drain_cv_;  // signals Flush: queue drained
  std::optional<std::string> pending_;
  bool in_flight_ = false;
  bool stop_ = false;
  Status first_error_;  // sticky first background write failure
  std::thread writer_;  // joinable iff started
};

/// Renders a snapshot to the checkpoint file format (deterministic bytes).
std::string SerializeCheckpoint(const SearchSession::Snapshot& snapshot,
                                uint32_t signature);

/// Parses a checkpoint. Torn/bit-flipped/malformed files fail kDataLoss;
/// `signature` (may be null) receives the embedded fit signature.
Result<SearchSession::Snapshot> ParseCheckpoint(const std::string& text,
                                                uint32_t* signature);

/// Atomic, checksummed save (AtomicWriteFile under the hood).
Status SaveCheckpoint(const std::string& path,
                      const SearchSession::Snapshot& snapshot,
                      uint32_t signature);

/// Loads and verifies a checkpoint file. kNotFound when absent (a fresh
/// resume starts empty), kDataLoss on any integrity failure, and kDataLoss
/// when `expected_signature` differs from the file's — a checkpoint from a
/// different fit must never silently steer this one.
Result<SearchSession::Snapshot> LoadCheckpoint(const std::string& path,
                                               uint32_t expected_signature);

}  // namespace featlib

#pragma once

/// \file generator.h
/// \brief The SQL Query Generation component (§V): TPE search over a query
/// pool with the two-round warm-up strategy of §V.C — round one optimizes a
/// low-cost proxy (MI by default), its top-k queries are evaluated with the
/// real model and seed the surrogate of round two, which optimizes the real
/// validation metric.

#include <memory>
#include <vector>

#include "core/codec.h"
#include "core/feature_eval.h"
#include "core/search_session.h"
#include "hpo/hyperband.h"
#include "hpo/random_search.h"
#include "hpo/smac.h"
#include "hpo/tpe.h"

namespace featlib {

/// Bayesian-optimization engine used by both rounds. TPE is the paper's
/// choice (§V.B); SMAC, Hyperband and BOHB are the future-work comparisons
/// its §II.D / Remark name; Random turns the component into pure random
/// search. The multi-fidelity backends (Hyperband, BOHB) replace the
/// generation round's sequential loop with bracketed successive halving
/// over training-data subsamples; the proxy warm-up round stays TPE (proxy
/// evaluations are already cheap, so early stopping buys nothing there).
enum class HpoBackend {
  kTpe,
  kSmac,
  kRandom,
  kHyperband,
  kBohb,
};

const char* HpoBackendToString(HpoBackend backend);

struct GeneratorOptions {
  /// Search engine for both the warm-up and generation rounds.
  HpoBackend backend = HpoBackend::kTpe;
  /// Round-one (proxy) TPE iterations (paper default 200; repro default
  /// matches it).
  int warmup_iterations = 200;
  /// Top-k proxy queries promoted to real evaluation. Paper value: 50;
  /// repro default: 15 (the synthetic bundles are far smaller than the
  /// paper's datasets, so fewer promotions saturate the surrogate).
  int warmup_top_k = 15;
  /// Round-two (model) iterations. Paper value: 40; repro default: 30
  /// (same scaling rationale as warmup_top_k).
  int generation_iterations = 30;
  /// Pool size of one suggest-batch -> pooled-evaluate -> observe-all
  /// round. Every optimizer proposes this many configurations from one
  /// posterior (Optimizer::SuggestBatch) and the pool's features
  /// materialize in one EvaluateMany pass. 1 reproduces the sequential
  /// suggest/observe trajectory seed-for-seed (pinned by tests).
  int suggest_batch_size = 8;
  /// Disable for the NoWU ablation; round two then runs
  /// warmup_top_k + generation_iterations model-evaluated iterations,
  /// matching the paper's fair-comparison protocol (§VII.D.1).
  bool enable_warmup = true;
  /// Number of best queries reported.
  int n_queries = 5;
  ProxyKind proxy = ProxyKind::kMutualInformation;
  TpeOptions tpe;
  /// Multi-fidelity schedule for the kHyperband / kBohb backends. The cost
  /// budget is derived from generation_iterations (full-eval equivalents),
  /// so backends are comparable at equal model-training time.
  HyperbandOptions hyperband;
  uint64_t seed = 42;
};

/// One generated query with its scores.
struct GeneratedQuery {
  AggQuery query;
  /// Real validation metric (orientation per the evaluator's MetricKind).
  double model_metric = 0.0;
  double loss = 0.0;
};

struct GenerationResult {
  /// Deduplicated, sorted best-first; at most n_queries entries.
  std::vector<GeneratedQuery> queries;
  double warmup_seconds = 0.0;
  double generate_seconds = 0.0;
  /// Distinct evaluations actually computed during this run (proposals
  /// served from the session's score caches are counted as cache hits
  /// below, not here). proxy_evals + proxy_cache_hits equals the number of
  /// warm-up proposals.
  size_t proxy_evals = 0;
  size_t model_evals = 0;
  /// Per-stage split of model_evals: top-k promotion vs generation round.
  size_t warmup_model_evals = 0;
  size_t generation_model_evals = 0;
  /// Proposals served from the SearchSession score caches.
  size_t proxy_cache_hits = 0;
  size_t model_cache_hits = 0;
  /// Distinct candidates skipped-and-recorded (per-candidate build or
  /// scoring failures) during this run. Skipped candidates score -inf /
  /// +inf loss in the search and never appear in `queries`; the full list
  /// with Statuses is on the SearchSession (failed_candidates()).
  size_t failed_candidates = 0;
};

/// \brief Generates effective predicate-aware SQL queries for one template.
///
/// Both rounds run the batched pipeline: SuggestBatch(suggest_batch_size)
/// -> one pooled Features/EvaluateMany pass through the SearchSession ->
/// observe-all. Construct with a SearchSession to share score caches and
/// per-stage counters across templates (FeatAug::Fit does); the
/// evaluator-only constructor owns a private single-template session.
class SqlQueryGenerator {
 public:
  SqlQueryGenerator(FeatureEvaluator* evaluator, GeneratorOptions options)
      : owned_session_(std::make_unique<SearchSession>(evaluator)),
        session_(owned_session_.get()),
        options_(options) {}

  SqlQueryGenerator(SearchSession* session, GeneratorOptions options)
      : session_(session), options_(options) {}

  /// Runs the two-phase search over Q_T.
  Result<GenerationResult> Run(const QueryTemplate& tmpl);

 private:
  std::unique_ptr<SearchSession> owned_session_;
  SearchSession* session_;
  GeneratorOptions options_;
};

}  // namespace featlib

#include "core/augmenter.h"

#include <cmath>
#include <unordered_set>
#include <utility>

#include "common/str_util.h"
#include "common/thread_pool.h"

namespace featlib {

Result<std::unique_ptr<FittedAugmenter>> FittedAugmenter::Create(
    std::vector<Source> sources, FitDiagnostics diagnostics) {
  std::unique_ptr<FittedAugmenter> out(new FittedAugmenter());
  out->diag_ = diagnostics;
  out->pool_ = GlobalThreadPool();
  // Plan-level name dedup: qualified names are unique across all sources
  // (suffix rule), so Transform's per-batch dedup only has to look at the
  // batch's own columns.
  std::unordered_set<std::string> used;
  for (Source& source : sources) {
    auto per = std::make_unique<PerSource>();
    per->src = std::move(source);
    Source& src = per->src;
    for (size_t i = 0; i < src.queries.size(); ++i) {
      std::string base =
          i < src.feature_names.size() && !src.feature_names[i].empty()
              ? src.feature_names[i]
              : StrFormat("feature_%zu", i);
      if (!src.name.empty()) base = src.name + "__" + base;
      const std::string unique = UniquifyName(
          base, [&](const std::string& n) { return used.count(n) > 0; });
      used.insert(unique);
      out->feature_names_.push_back(unique);
      out->valid_metrics_.push_back(
          i < src.valid_metrics.size() ? src.valid_metrics[i] : std::nan(""));
    }
    // The warm prepare: every relevant-side artifact is built and published
    // here, once. The planner is never touched again (all serving reads go
    // through the frozen ServingPlan), which keeps the store's pointers
    // stable and the handle safe to share across threads.
    per->planner.set_thread_pool(GlobalThreadPool());
    FEAT_ASSIGN_OR_RETURN(
        per->serving, per->planner.CompileServingPlan(src.queries, src.relevant));
    out->sources_.push_back(std::move(per));
  }
  return std::move(out);
}

Result<Table> FittedAugmenter::TransformWith(const Table& batch,
                                             ThreadPool* pool,
                                             const ExecContext* ctx) const {
  Table out = batch;
  size_t f = 0;
  for (const auto& per : sources_) {
    FEAT_ASSIGN_OR_RETURN(
        std::vector<std::vector<double>> columns,
        ExecuteServingPlan(per->serving, batch, pool, ctx));
    for (size_t i = 0; i < columns.size(); ++i, ++f) {
      const std::string name =
          UniquifyName(feature_names_[f],
                       [&](const std::string& n) { return out.HasColumn(n); });
      FEAT_RETURN_NOT_OK(out.AddColumn(name, Column::FromDoubles(columns[i])));
    }
  }
  return out;
}

Result<Table> FittedAugmenter::Transform(const Table& batch,
                                         const ExecContext* ctx) const {
  return TransformWith(batch, pool_, ctx);
}

Result<std::vector<FittedAugmenter::BatchResult>>
FittedAugmenter::TransformManyIsolated(const std::vector<Table>& batches,
                                       const ExecContext* ctx) const {
  std::vector<BatchResult> out(batches.size());
  // Across-batch fan-out with inline per-batch execution (ParallelFor does
  // not nest); each slot is written by exactly one task. With a single
  // batch (or no pool) the parallelism moves inside the batch instead.
  const bool fan_out_batches = pool_ != nullptr && batches.size() > 1;
  auto run_one = [&](size_t i) {
    auto transformed =
        TransformWith(batches[i], fan_out_batches ? nullptr : pool_, ctx);
    if (transformed.ok()) {
      out[i].table = std::move(transformed).ValueOrDie();
    } else {
      out[i].status = transformed.status();
    }
  };
  if (fan_out_batches) {
    FEAT_RETURN_NOT_OK(pool_->ParallelFor(batches.size(), run_one, 0, ctx));
  } else {
    for (size_t i = 0; i < batches.size(); ++i) {
      FEAT_RETURN_NOT_OK(ExecContext::CheckFor(ctx));
      run_one(i);
    }
  }
  // A tripped context inside a batch is batch-wide, not a per-slot defect:
  // the slots it reached carry the same kCancelled/kDeadlineExceeded/
  // kResourceExhausted status the caller asked for.
  for (const BatchResult& r : out) {
    if (!r.status.ok() && (r.status.code() == StatusCode::kCancelled ||
                           r.status.code() == StatusCode::kDeadlineExceeded ||
                           r.status.code() == StatusCode::kResourceExhausted)) {
      return r.status;
    }
  }
  return out;
}

Result<std::vector<Table>> FittedAugmenter::TransformMany(
    const std::vector<Table>& batches, const ExecContext* ctx) const {
  FEAT_ASSIGN_OR_RETURN(std::vector<BatchResult> results,
                        TransformManyIsolated(batches, ctx));
  std::vector<Table> out;
  out.reserve(results.size());
  for (BatchResult& r : results) {
    FEAT_RETURN_NOT_OK(r.status);
    out.push_back(std::move(r.table));
  }
  return out;
}

Result<std::vector<std::vector<double>>> FittedAugmenter::ComputeFeatureColumns(
    const Table& batch, const ExecContext* ctx) const {
  std::vector<std::vector<double>> out;
  out.reserve(feature_names_.size());
  for (const auto& per : sources_) {
    FEAT_ASSIGN_OR_RETURN(
        std::vector<std::vector<double>> columns,
        ExecuteServingPlan(per->serving, batch, pool_, ctx));
    for (auto& column : columns) out.push_back(std::move(column));
  }
  return out;
}

Result<Dataset> FittedAugmenter::TransformToDataset(
    const Table& batch, const std::string& label_col,
    const std::vector<std::string>& base_feature_cols, TaskKind task,
    const ExecContext* ctx) const {
  FEAT_ASSIGN_OR_RETURN(
      Dataset ds, Dataset::FromTable(batch, label_col, base_feature_cols, task));
  FEAT_ASSIGN_OR_RETURN(std::vector<std::vector<double>> columns,
                        ComputeFeatureColumns(batch, ctx));
  std::unordered_set<std::string> used(ds.feature_names.begin(),
                                       ds.feature_names.end());
  for (size_t i = 0; i < columns.size(); ++i) {
    const std::string name = UniquifyName(
        feature_names_[i], [&](const std::string& n) { return used.count(n) > 0; });
    used.insert(name);
    FEAT_RETURN_NOT_OK(ds.AddFeature(name, columns[i]));
  }
  return ds;
}

std::vector<AggQuery> FittedAugmenter::AllQueries() const {
  std::vector<AggQuery> out;
  out.reserve(feature_names_.size());
  for (const auto& per : sources_) {
    out.insert(out.end(), per->src.queries.begin(), per->src.queries.end());
  }
  return out;
}

Result<std::unique_ptr<FittedAugmenter>> MakeFittedAugmenter(
    AugmentationPlan plan, Table relevant) {
  FittedAugmenter::Source source;
  source.relevant = std::move(relevant);
  source.queries = std::move(plan.queries);
  source.feature_names = std::move(plan.feature_names);
  source.valid_metrics = std::move(plan.valid_metrics);
  FitDiagnostics diag;
  diag.qti_seconds = plan.qti_seconds;
  diag.warmup_seconds = plan.warmup_seconds;
  diag.generate_seconds = plan.generate_seconds;
  diag.templates_considered = plan.templates_considered;
  diag.model_evals = plan.model_evals;
  diag.proxy_evals = plan.proxy_evals;
  diag.qti_proxy_evals = plan.qti_proxy_evals;
  diag.qti_model_evals = plan.qti_model_evals;
  diag.warmup_proxy_evals = plan.warmup_proxy_evals;
  diag.warmup_model_evals = plan.warmup_model_evals;
  diag.generation_model_evals = plan.generation_model_evals;
  diag.proxy_cache_hits = plan.proxy_cache_hits;
  diag.model_cache_hits = plan.model_cache_hits;
  diag.build_retries = plan.build_retries;
  diag.compile_cache_hits = plan.compile_cache_hits;
  diag.compile_cache_misses = plan.compile_cache_misses;
  diag.failed_candidates = std::move(plan.failed_candidates);
  std::vector<FittedAugmenter::Source> sources;
  sources.push_back(std::move(source));
  return FittedAugmenter::Create(std::move(sources), diag);
}

namespace {

class FeatAugAdapter final : public Augmenter {
 public:
  FeatAugAdapter(FeatAugProblem problem, FeatAugOptions options)
      : impl_(std::move(problem), std::move(options)) {}
  const char* name() const override { return "feataug"; }
  Result<std::unique_ptr<FittedAugmenter>> Fit() override {
    return impl_.FitAugmenter();
  }
  FeatureEvaluator* evaluator() override { return impl_.evaluator(); }

 private:
  FeatAug impl_;
};

class MultiTableAdapter final : public Augmenter {
 public:
  MultiTableAdapter(MultiTableProblem problem, MultiTableOptions options)
      : impl_(std::move(problem), std::move(options)) {}
  const char* name() const override { return "multi_table"; }
  Result<std::unique_ptr<FittedAugmenter>> Fit() override {
    return impl_.FitAugmenter();
  }

 private:
  MultiTableFeatAug impl_;
};

}  // namespace

std::unique_ptr<Augmenter> MakeFeatAugAugmenter(FeatAugProblem problem,
                                                FeatAugOptions options) {
  return std::make_unique<FeatAugAdapter>(std::move(problem),
                                          std::move(options));
}

std::unique_ptr<Augmenter> MakeMultiTableAugmenter(MultiTableProblem problem,
                                                   MultiTableOptions options) {
  return std::make_unique<MultiTableAdapter>(std::move(problem),
                                             std::move(options));
}

}  // namespace featlib

#pragma once

/// \file plan_io.h
/// \brief Persisting an AugmentationPlan as a SQL script and loading it
/// back.
///
/// The serialized form is plain SQL — reviewable, diffable, editable by a
/// data scientist — with the plan metadata (feature names, validation
/// metrics) carried in `--` line comments the parser ignores:
///
///   -- feataug plan v2
///   -- queries: 1
///   -- feature: feataug_AVG_pprice_t0_q0
///   -- valid_metric: 0.7421
///   SELECT cname, AVG(pprice) AS feature
///   FROM relevant
///   WHERE department = 'Electronics'
///   GROUP BY cname;
///   -- crc32: 1a2b3c4d
///
/// v2 files carry an integrity envelope — a mandatory query count and a
/// CRC32 footer over all preceding bytes — so a torn or bit-flipped file
/// fails load with kDataLoss instead of yielding a silent partial plan.
/// Writes are atomic (temp + fsync + rename; see common/file_io.h): a crash
/// mid-save leaves the previous file intact. Hand editors who change a v2
/// file without re-checksumming can drop the header+footer to fall back to
/// the lenient legacy format: v1 and headerless scripts still tolerate
/// extra/removed queries, changed predicates, and missing metadata comments
/// (names are regenerated, metrics become NaN). Loaded plans re-validate
/// against the relevant table before use.

#include <memory>
#include <string>

#include "core/augmenter.h"
#include "core/feataug.h"

namespace featlib {

/// Renders the plan to the SQL script format. `relation` names the FROM
/// table; `schema_of` supplies predicate types for rendering.
std::string SerializeAugmentationPlan(const AugmentationPlan& plan,
                                      const std::string& relation,
                                      const Table& schema_of);

/// Parses a serialized plan. Timing/counter fields are zero; missing
/// feature names are regenerated as "feature_<i>"; missing metrics load as
/// NaN. Names are deduplicated within the plan (suffix rule "_2", "_3", ...)
/// so hand edits can never produce colliding feature columns. Fails on
/// malformed SQL.
Result<AugmentationPlan> ParseAugmentationPlan(const std::string& text);

/// Parses and validates every query against the relevant table's schema.
Result<AugmentationPlan> ParseAugmentationPlan(const std::string& text,
                                               const Table& relevant);

/// File variants.
Status WriteAugmentationPlan(const AugmentationPlan& plan,
                             const std::string& relation, const Table& schema_of,
                             const std::string& path);
Result<AugmentationPlan> ReadAugmentationPlan(const std::string& path);

/// The first-class serving path: reads a serialized plan, validates every
/// query against `relevant`'s schema, and compiles it straight into a warm
/// FittedAugmenter — "fit offline, ship the SQL artifact, serve online".
Result<std::unique_ptr<FittedAugmenter>> LoadFittedAugmenter(
    const std::string& path, const Table& relevant);

}  // namespace featlib

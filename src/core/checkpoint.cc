#include "core/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/fault_injection.h"
#include "common/file_io.h"
#include "common/str_util.h"

namespace featlib {

namespace {

constexpr const char* kCheckpointHeader = "-- feataug checkpoint v1";

std::string DoubleBitsHex(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return StrFormat("%016llx", static_cast<unsigned long long>(bits));
}

bool ParseDoubleBitsHex(const std::string& hex, double* out) {
  if (hex.size() != 16) return false;
  uint64_t bits = 0;
  for (char c : hex) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    bits = (bits << 4) | static_cast<uint64_t>(digit);
  }
  std::memcpy(out, &bits, sizeof(*out));
  return true;
}

bool ParseHex32(const std::string& hex, uint32_t* out) {
  if (hex.size() != 8) return false;
  uint32_t v = 0;
  for (char c : hex) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<uint32_t>(digit);
  }
  *out = v;
  return true;
}

/// Query cache keys (and failure messages) may contain any byte the user's
/// predicate values contain. The escape closes over '\n' (line framing),
/// ' ' (field framing) and '\\' (the escape itself).
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case ' ':
        out += "\\s";
        break;
      default:
        out += c;
    }
  }
  return out;
}

bool Unescape(const std::string& s, std::string* out) {
  out->clear();
  out->reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      *out += s[i];
      continue;
    }
    if (++i == s.size()) return false;
    switch (s[i]) {
      case '\\':
        *out += '\\';
        break;
      case 'n':
        *out += '\n';
        break;
      case 's':
        *out += ' ';
        break;
      default:
        return false;
    }
  }
  return true;
}

Status Corrupt(const std::string& what) {
  return Status::DataLoss("corrupt checkpoint: " + what);
}

}  // namespace

CheckpointWriter::CheckpointWriter(std::string path, uint32_t signature,
                                   int every_rounds)
    : path_(std::move(path)),
      signature_(signature),
      every_rounds_(every_rounds < 1 ? 1 : every_rounds) {}

CheckpointWriter::~CheckpointWriter() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
}

void CheckpointWriter::WriterLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return pending_.has_value() || stop_; });
    // Drain before honoring stop: the destructor's guarantee is that the
    // freshest enqueued snapshot reaches disk even on a dying fit.
    if (!pending_.has_value()) break;
    std::string bytes = std::move(*pending_);
    pending_.reset();
    in_flight_ = true;
    lock.unlock();
    Status st = AtomicWriteFile(path_, bytes);
    lock.lock();
    in_flight_ = false;
    if (!st.ok() && first_error_.ok()) first_error_ = st;
    drain_cv_.notify_all();
  }
}

void CheckpointWriter::Enqueue(std::string bytes) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    pending_ = std::move(bytes);  // latest-wins: supersede an unstarted write
    if (!writer_.joinable()) {
      writer_ = std::thread([this] { WriterLoop(); });
    }
  }
  work_cv_.notify_all();
}

Status CheckpointWriter::MaybeSnapshot(SearchSession* session, bool force) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    FEAT_RETURN_NOT_OK(first_error_);
  }
  ++rounds_;
  const bool due = force || rounds_ % static_cast<uint64_t>(every_rounds_) == 0;
  if (due && session->revision() != last_revision_) {
    FEAT_RETURN_NOT_OK(FaultPoint("checkpoint.snapshot"));
    Enqueue(SerializeCheckpoint(session->ExportSnapshot(), signature_));
    last_revision_ = session->revision();
    ++written_;
  }
  // The kill site fires *after* the snapshot is enqueued, so a crash
  // simulated at boundary N finds a checkpoint no older than the last
  // boundary on disk (the writer drains during unwind) — the sweep then
  // proves resume-equivalence from every such state.
  FEAT_RETURN_NOT_OK(FaultPoint("checkpoint.kill"));
  return Status::OK();
}

Status CheckpointWriter::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] { return !pending_.has_value() && !in_flight_; });
  return first_error_;
}

std::string SerializeCheckpoint(const SearchSession::Snapshot& snapshot,
                                uint32_t signature) {
  std::vector<std::string> lines;
  lines.reserve(snapshot.proxy.size() + snapshot.model.size() +
                snapshot.fidelity.size() + snapshot.failures.size() +
                snapshot.digests.size());
  for (const auto& [key, score] : snapshot.proxy) {
    lines.push_back(StrFormat("proxy %s %s", DoubleBitsHex(score).c_str(),
                              Escape(key).c_str()));
  }
  for (const auto& [key, outcome] : snapshot.model) {
    lines.push_back(StrFormat("model %s %s %s",
                              DoubleBitsHex(outcome.metric).c_str(),
                              DoubleBitsHex(outcome.loss).c_str(),
                              Escape(key).c_str()));
  }
  for (const auto& [key, loss] : snapshot.fidelity) {
    lines.push_back(StrFormat("fidelity %s %s", DoubleBitsHex(loss).c_str(),
                              Escape(key).c_str()));
  }
  for (size_t i = 0; i < snapshot.failures.size(); ++i) {
    const auto& f = snapshot.failures[i];
    // The fixed-width index keeps first-failure order through the sort.
    lines.push_back(StrFormat("failed %08zx %d %s %s", i, f.code,
                              Escape(f.message).c_str(),
                              Escape(f.key).c_str()));
  }
  for (const auto& [label, crc] : snapshot.digests) {
    lines.push_back(
        StrFormat("digest %08x %s", crc, Escape(label).c_str()));
  }
  // Sorted lines + sorted snapshot sections = deterministic bytes for a
  // given state, independent of hash-map iteration order.
  std::sort(lines.begin(), lines.end());

  std::string out = std::string(kCheckpointHeader) + "\n";
  out += StrFormat("-- signature: %08x\n", signature);
  out += StrFormat("-- entries: %zu\n", lines.size());
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  AppendCrcFooter(&out);
  return out;
}

Result<SearchSession::Snapshot> ParseCheckpoint(const std::string& text,
                                                uint32_t* signature) {
  if (text.find('\0') != std::string::npos) {
    return Corrupt("contains NUL bytes");
  }
  FEAT_RETURN_NOT_OK(CheckCrcFooter(text));

  SearchSession::Snapshot out;
  std::vector<std::pair<size_t, SearchSession::Snapshot::FailureEntry>>
      failures;
  bool saw_header = false;
  bool saw_signature = false;
  long declared_entries = -1;
  size_t entries = 0;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    if (!saw_header) {
      if (line != kCheckpointHeader) {
        return Corrupt("bad header line: " + line);
      }
      saw_header = true;
      continue;
    }
    if (line.rfind("-- signature: ", 0) == 0) {
      uint32_t sig = 0;
      if (!ParseHex32(StrTrim(line.substr(14)), &sig)) {
        return Corrupt("bad signature line: " + line);
      }
      if (signature != nullptr) *signature = sig;
      saw_signature = true;
      continue;
    }
    if (line.rfind("-- entries: ", 0) == 0) {
      int64_t n = 0;
      if (!ParseInt64(StrTrim(line.substr(12)), &n) || n < 0) {
        return Corrupt("bad entries line: " + line);
      }
      declared_entries = static_cast<long>(n);
      continue;
    }
    if (line.rfind("-- crc32: ", 0) == 0) continue;  // verified above
    if (line.rfind("--", 0) == 0) continue;          // tolerated comment

    const std::vector<std::string> fields = StrSplit(line, ' ');
    std::string key;
    if (fields[0] == "proxy" && fields.size() == 3) {
      double score = 0.0;
      if (!ParseDoubleBitsHex(fields[1], &score) || !Unescape(fields[2], &key)) {
        return Corrupt("bad proxy entry: " + line);
      }
      out.proxy.emplace_back(std::move(key), score);
    } else if (fields[0] == "model" && fields.size() == 4) {
      SearchSession::ModelOutcome outcome;
      if (!ParseDoubleBitsHex(fields[1], &outcome.metric) ||
          !ParseDoubleBitsHex(fields[2], &outcome.loss) ||
          !Unescape(fields[3], &key)) {
        return Corrupt("bad model entry: " + line);
      }
      out.model.emplace_back(std::move(key), outcome);
    } else if (fields[0] == "fidelity" && fields.size() == 3) {
      double loss = 0.0;
      if (!ParseDoubleBitsHex(fields[1], &loss) || !Unescape(fields[2], &key)) {
        return Corrupt("bad fidelity entry: " + line);
      }
      out.fidelity.emplace_back(std::move(key), loss);
    } else if (fields[0] == "failed" && fields.size() == 5) {
      uint32_t index = 0;
      int64_t code = 0;
      SearchSession::Snapshot::FailureEntry f;
      if (!ParseHex32(fields[1], &index) || !ParseInt64(fields[2], &code) ||
          !Unescape(fields[3], &f.message) || !Unescape(fields[4], &f.key)) {
        return Corrupt("bad failed entry: " + line);
      }
      f.code = static_cast<int>(code);
      failures.emplace_back(index, std::move(f));
    } else if (fields[0] == "digest" && fields.size() == 3) {
      uint32_t crc = 0;
      std::string label;
      if (!ParseHex32(fields[1], &crc) || !Unescape(fields[2], &label)) {
        return Corrupt("bad digest entry: " + line);
      }
      out.digests.emplace_back(std::move(label), crc);
    } else {
      return Corrupt("unknown entry: " + line);
    }
    ++entries;
  }
  if (!saw_header) return Corrupt("empty file");
  if (!saw_signature) return Corrupt("missing signature");
  if (declared_entries < 0) return Corrupt("missing entries count");
  if (static_cast<size_t>(declared_entries) != entries) {
    return Corrupt(StrFormat("declares %ld entries but %zu present",
                             declared_entries, entries));
  }
  std::sort(failures.begin(), failures.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out.failures.reserve(failures.size());
  for (auto& [index, f] : failures) out.failures.push_back(std::move(f));
  return out;
}

Status SaveCheckpoint(const std::string& path,
                      const SearchSession::Snapshot& snapshot,
                      uint32_t signature) {
  return AtomicWriteFile(path, SerializeCheckpoint(snapshot, signature));
}

Result<SearchSession::Snapshot> LoadCheckpoint(const std::string& path,
                                               uint32_t expected_signature) {
  FEAT_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  uint32_t signature = 0;
  FEAT_ASSIGN_OR_RETURN(SearchSession::Snapshot snapshot,
                        ParseCheckpoint(text, &signature));
  if (signature != expected_signature) {
    return Status::DataLoss(StrFormat(
        "checkpoint signature %08x does not match this fit's %08x — it was "
        "written by a different seed, options, or problem (%s)",
        signature, expected_signature, path.c_str()));
  }
  return snapshot;
}

}  // namespace featlib

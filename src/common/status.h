#pragma once

/// \file status.h
/// \brief Arrow/RocksDB-style Status and Result<T> error handling.
///
/// All fallible public APIs in featlib return Status (no useful value) or
/// Result<T> (value or error). Exceptions are reserved for programmer errors
/// surfaced through FEAT_CHECK.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace featlib {

/// Machine-readable category of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kIOError,
  kNotImplemented,
  kInternal,
  kCancelled,
  kDeadlineExceeded,
  kResourceExhausted,
  kDataLoss,
};

/// \brief Returns the canonical lowercase name of a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief A success-or-error outcome carrying a message on failure.
///
/// Cheap to copy in the OK case (no allocation). Modeled after
/// arrow::Status / rocksdb::Status.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// Unrecoverable corruption of durable state: a checksum mismatch, a torn
  /// file, or a checkpoint that no longer matches the fit that wrote it.
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable "<code>: <message>" rendering.
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Holds either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : payload_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (std::get<Status>(payload_).ok()) {
      std::fprintf(stderr, "Result constructed from OK status\n");
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status ok_status = Status::OK();
    return ok() ? ok_status : std::get<Status>(payload_);
  }

  /// Returns the value; aborts if this holds an error. Use only after ok().
  T& value() & {
    DieIfError();
    return std::get<T>(payload_);
  }
  const T& value() const& {
    DieIfError();
    return std::get<T>(payload_);
  }
  T&& value() && {
    DieIfError();
    return std::move(std::get<T>(payload_));
  }

  /// Moves the value out; aborts on error. Convenience for tests/examples.
  T ValueOrDie() && {
    DieIfError();
    return std::move(std::get<T>(payload_));
  }

 private:
  void DieIfError() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   std::get<Status>(payload_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> payload_;
};

}  // namespace featlib

/// Propagates a non-OK Status from the enclosing function.
#define FEAT_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::featlib::Status _feat_status = (expr);     \
    if (!_feat_status.ok()) return _feat_status; \
  } while (0)

#define FEAT_CONCAT_IMPL(a, b) a##b
#define FEAT_CONCAT(a, b) FEAT_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on error propagates the Status, otherwise
/// assigns the value to `lhs` (which may include a declaration).
#define FEAT_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  auto FEAT_CONCAT(_feat_result_, __LINE__) = (rexpr);                \
  if (!FEAT_CONCAT(_feat_result_, __LINE__).ok())                     \
    return FEAT_CONCAT(_feat_result_, __LINE__).status();             \
  lhs = std::move(FEAT_CONCAT(_feat_result_, __LINE__)).ValueOrDie()

/// Aborts with a message when a programmer-error invariant is violated.
#define FEAT_CHECK(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "FEAT_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, (msg));                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#include "common/exec_context.h"

#include "common/str_util.h"

namespace featlib {

Status ExecContext::ChargeMemory(size_t bytes) const {
  const size_t budget = budget_bytes_.load(std::memory_order_relaxed);
  if (budget == 0) {
    const size_t now =
        charged_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    UpdatePeak(now);
    return Status::OK();
  }
  // CAS loop so concurrent chargers never overshoot the budget and a
  // rejected charge leaves the total untouched.
  size_t current = charged_bytes_.load(std::memory_order_relaxed);
  for (;;) {
    if (bytes > budget || current > budget - bytes) {
      return Status::ResourceExhausted(StrFormat(
          "memory budget exceeded: charged %zu + requested %zu > budget "
          "%zu bytes",
          current, bytes, budget));
    }
    if (charged_bytes_.compare_exchange_weak(current, current + bytes,
                                             std::memory_order_relaxed)) {
      UpdatePeak(current + bytes);
      return Status::OK();
    }
  }
}

void ExecContext::ReleaseMemory(size_t bytes) const {
  // Clamp at zero: releasing more than was charged (possible when a caller
  // releases a conservative estimate) must not wrap the counter.
  size_t current = charged_bytes_.load(std::memory_order_relaxed);
  for (;;) {
    const size_t next = bytes > current ? 0 : current - bytes;
    if (charged_bytes_.compare_exchange_weak(current, next,
                                             std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace featlib

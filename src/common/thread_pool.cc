#include "common/thread_pool.h"

#include <algorithm>
#include <exception>

#include "common/config.h"

namespace featlib {

ThreadPool::ThreadPool(int num_threads) {
  const int workers = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this](std::stop_token stop) { WorkerLoop(stop); });
  }
}

ThreadPool::~ThreadPool() {
  // jthread destructors request stop and join; work_cv_ is a
  // condition_variable_any waiting on the stop token, so workers wake.
}

namespace {

/// Converts an in-flight exception into the Status a task failure surfaces
/// as. Exceptions are reserved for programmer errors (FEAT_CHECK aborts), so
/// anything caught here is reported as kInternal.
Status StatusFromCurrentException() {
  try {
    throw;
  } catch (const std::exception& e) {
    return Status::Internal(std::string("task threw: ") + e.what());
  } catch (...) {
    return Status::Internal("task threw a non-std::exception value");
  }
}

}  // namespace

void ThreadPool::RecordError(Job* job, Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (job->error.ok()) job->error = std::move(status);
}

void ThreadPool::RunClaimLoop(Job* job) {
  const size_t chunk = job->chunk;
  for (;;) {
    if (job->stopped.load(std::memory_order_relaxed)) return;
    if (job->ctx != nullptr) {
      Status limit = job->ctx->Check();
      if (!limit.ok()) {
        // Tripped limit: everyone abandons the unclaimed remainder. Unlike a
        // task failure (siblings keep running), a deadline/cancellation is a
        // request to stop doing work at all.
        RecordError(job, std::move(limit));
        job->stopped.store(true, std::memory_order_relaxed);
        return;
      }
    }
    const size_t begin = job->next.fetch_add(chunk, std::memory_order_relaxed);
    if (begin >= job->n) return;
    const size_t end = std::min(begin + chunk, job->n);
    for (size_t i = begin; i < end; ++i) {
      try {
        (*job->fn)(i);
      } catch (...) {
        // Record the first failure and keep going: sibling tasks write
        // disjoint slots, so one bad index must not void the others' work.
        RecordError(job, StatusFromCurrentException());
      }
    }
  }
}

void ThreadPool::WorkerLoop(std::stop_token stop) {
  uint64_t last_job_id = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, stop, [&] {
        return job_ != nullptr && job_->id != last_job_id;
      });
      if (stop.stop_requested()) return;
      job = job_;
      last_job_id = job->id;
    }
    RunClaimLoop(job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++job->acked;
    }
    done_cv_.notify_one();
  }
}

Status ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                               size_t chunk, const ExecContext* ctx) {
  if (n == 0) return ExecContext::CheckFor(ctx);
  if (workers_.empty() || n == 1) {
    // The exact single-threaded code path: plain loop, ascending order.
    // Failure semantics mirror the parallel path — first error recorded,
    // siblings still run; a tripped context abandons the remainder.
    Status first_error;
    for (size_t i = 0; i < n; ++i) {
      if (ctx != nullptr) {
        Status limit = ctx->Check();
        if (!limit.ok()) return first_error.ok() ? limit : first_error;
      }
      try {
        fn(i);
      } catch (...) {
        if (first_error.ok()) first_error = StatusFromCurrentException();
      }
    }
    return first_error;
  }
  if (chunk == 0) {
    // Several chunks per thread: large pools stop hammering the shared
    // counter, while slow indices can still be balanced across threads.
    constexpr size_t kChunksPerThread = 4;
    chunk = std::max<size_t>(
        1, n / (static_cast<size_t>(num_threads()) * kChunksPerThread));
  }
  // One batch owns the workers at a time: a second caller publishing its
  // job before every worker observed the first would strand the first
  // caller waiting for acks that can never arrive.
  std::lock_guard<std::mutex> run_lock(run_mu_);
  Job job;
  job.fn = &fn;
  job.n = n;
  job.chunk = chunk;
  job.ctx = ctx;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job.id = ++next_job_id_;
    job_ = &job;
  }
  work_cv_.notify_all();
  // The caller claims chunks alongside the workers; its failures are
  // recorded like a worker's so the job outlives every reference to it.
  RunClaimLoop(&job);
  // Wait until every worker acknowledged (stopped touching `job`) before the
  // stack frame holding it unwinds. Acks imply all indices completed or
  // were abandoned: a worker acks only after its claim loop returned.
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return job.acked == static_cast<int>(workers_.size());
    });
    job_ = nullptr;
  }
  return job.error;
}

Status ThreadPool::ParallelForStages(const std::vector<Stage>& stages,
                                     const ExecContext* ctx) {
  for (const Stage& stage : stages) {
    if (stage.n > 0) {
      FEAT_RETURN_NOT_OK(ParallelFor(stage.n, stage.run, 0, ctx));
    }
    // A publish-only stage still honors a tripped context: nothing of a
    // cancelled batch may be committed.
    FEAT_RETURN_NOT_OK(ExecContext::CheckFor(ctx));
    // ParallelFor's completion handshake ordered every task write before
    // this point; publish runs alone on the caller thread.
    if (stage.publish) stage.publish();
  }
  return Status::OK();
}

AsyncStage::~AsyncStage() {
  // Join a still-active task so an error-path unwind never leaks the
  // thread; its Status is discarded (the pipeline already failed).
  if (thread_.joinable()) thread_.join();
}

void AsyncStage::Launch(std::function<Status()> fn) {
  FEAT_CHECK(!active_, "AsyncStage::Launch with a task already in flight");
  active_ = true;
  thread_ = std::thread([this, fn = std::move(fn)]() {
    try {
      status_ = fn();
    } catch (...) {
      status_ = StatusFromCurrentException();
    }
  });
}

Status AsyncStage::Await() {
  FEAT_CHECK(active_, "AsyncStage::Await without a launched task");
  thread_.join();  // join orders every task write before the return
  thread_ = std::thread();
  active_ = false;
  return std::move(status_);
}

ThreadPool* GlobalThreadPool() {
  static ThreadPool pool(FeatAugConfig::Global().ResolvedNumThreads());
  return &pool;
}

}  // namespace featlib

#pragma once

/// \file str_util.h
/// \brief Small string helpers shared across modules.

#include <cstdarg>
#include <functional>
#include <string>
#include <vector>

namespace featlib {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts, const std::string& sep);

/// Splits `s` on the single character `sep` (keeps empty fields).
std::vector<std::string> StrSplit(const std::string& s, char sep);

/// Strips ASCII whitespace from both ends.
std::string StrTrim(const std::string& s);

/// ASCII lower-casing.
std::string StrLower(const std::string& s);

/// True when `s` parses fully as a finite double; writes the value to *out.
bool ParseDouble(const std::string& s, double* out);

/// True when `s` parses fully as an int64; writes the value to *out.
bool ParseInt64(const std::string& s, int64_t* out);

/// Deterministic name deduplication: returns `base` when `taken(base)` is
/// false, otherwise the first of "base_2", "base_3", ... that is free. The
/// shared collision rule of feature-column naming (FittedAugmenter::Transform,
/// ParseAugmentationPlan's regenerated names).
std::string UniquifyName(const std::string& base,
                         const std::function<bool(const std::string&)>& taken);

}  // namespace featlib

#pragma once

/// \file timer.h
/// \brief Wall-clock timing for the scalability experiments (Figs. 5, 7-9).

#include <chrono>

namespace featlib {

/// \brief Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the stopwatch to zero.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace featlib

#include "common/config.h"

#include <cstdlib>
#include <string>
#include <thread>

namespace featlib {

FeatAugConfig& FeatAugConfig::Global() {
  static FeatAugConfig config;
  return config;
}

int FeatAugConfig::ResolvedNumThreads() const {
  if (const char* env = std::getenv("FEATLIB_NUM_THREADS")) {
    // Malformed or non-positive values fall through to the config/auto path
    // rather than silently serializing a deployment.
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<int>(parsed);
    }
  }
  if (num_threads > 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace featlib

#include "common/config.h"

#include <cstdlib>
#include <string>
#include <thread>

namespace featlib {

const char* KernelBackendName(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return "scalar";
    case KernelBackend::kSimd:
      return "simd";
    case KernelBackend::kAuto:
      return "auto";
  }
  return "auto";
}

FeatAugConfig& FeatAugConfig::Global() {
  static FeatAugConfig config;
  return config;
}

int FeatAugConfig::ResolvedNumThreads() const {
  if (const char* env = std::getenv("FEATLIB_NUM_THREADS")) {
    // Malformed or non-positive values fall through to the config/auto path
    // rather than silently serializing a deployment.
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<int>(parsed);
    }
  }
  if (num_threads > 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

KernelBackend FeatAugConfig::ResolvedKernelBackend() const {
  if (const char* env = std::getenv("FEATLIB_KERNEL_BACKEND")) {
    const std::string v(env);
    // Unrecognized values fall through to the config field rather than
    // silently changing a deployment's backend.
    if (v == "scalar") return KernelBackend::kScalar;
    if (v == "simd") return KernelBackend::kSimd;
    if (v == "auto") return KernelBackend::kAuto;
  }
  return kernel_backend;
}

size_t FeatAugConfig::ResolvedMorselRows() const {
  if (const char* env = std::getenv("FEATLIB_MORSEL_ROWS")) {
    // Malformed or negative values fall through to the config field rather
    // than silently changing a deployment's execution mode. 0 is a valid
    // explicit override (force single-pass).
    char* end = nullptr;
    const long long parsed = std::strtoll(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 0) {
      return static_cast<size_t>(parsed);
    }
  }
  return morsel_rows;
}

}  // namespace featlib

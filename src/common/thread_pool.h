#pragma once

/// \file thread_pool.h
/// \brief Fixed-size thread pool for the parallel candidate-evaluation
/// fan-out and the staged artifact-prepare phase. No external dependencies:
/// std::jthread workers + one shared work-index counter per ParallelFor.
///
/// Design constraints (see docs/ARCHITECTURE.md, "Parallel execution" and
/// "Failure semantics"):
///  - ParallelFor(n, fn) runs fn(0..n-1) exactly once each and blocks until
///    every call returned. Tasks write disjoint pre-sized output slots, so
///    results are deterministic regardless of scheduling.
///  - Workers claim *chunks* of consecutive indices, not single indices: one
///    atomic RMW buys chunk_size tasks, so candidate pools much larger than
///    the thread count do not serialize on the counter. The chunk size only
///    changes which thread runs an index, never what the index computes, so
///    output bytes are identical at every chunk size.
///  - A pool constructed with num_threads <= 1 spawns no workers at all;
///    ParallelFor then degenerates to a plain inline loop on the caller
///    thread — the exact single-threaded code path, byte for byte.
///  - The caller thread participates in the fan-out (a pool of T threads
///    spawns T-1 workers), so ThreadPool(2) really uses 2 cores, not 3.
///  - **Failure = Status, not poison.** A task body that throws is caught
///    where it ran; the first failure is recorded and returned as a
///    kInternal Status from ParallelFor, and — unlike the retired
///    exception-poisoning contract — sibling tasks still run to completion,
///    so a batch with one failing index still produces every other slot.
///  - **Cooperative limits.** An optional ExecContext is checked at every
///    chunk-claim boundary; a tripped deadline/cancellation *does* stop the
///    batch (remaining chunks are abandoned, in-flight chunks finish), and
///    ParallelFor returns the kCancelled/kDeadlineExceeded Status. Limits
///    are therefore honored within one chunk of work.
///  - ParallelForStages runs dependency layers: within a stage tasks are
///    independent and fan out in parallel; between stages the caller thread
///    runs a sequential `publish` callback (a barrier), which is where the
///    ArtifactStore commits built artifacts before dependents read them. A
///    stage that fails (task error or tripped context) returns *before* its
///    publish runs — a failed stage can never commit partial state.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"

namespace featlib {

class ThreadPool {
 public:
  /// `num_threads` <= 1 means serial (no workers). The pool is fixed-size
  /// for its lifetime.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that execute work, caller included.
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(i) for every i in [0, n); returns after all calls completed.
  /// Chunks of consecutive indices are claimed dynamically (atomic counter);
  /// `chunk` 0 picks an automatic size from n and the thread count (several
  /// chunks per thread, so per-index cost may vary freely without stragglers
  /// idling the pool). Concurrent ParallelFor calls from different threads
  /// are serialized (one batch owns the workers at a time — relevant because
  /// GlobalThreadPool() is shared by every library entry point). Not
  /// reentrant: do not call ParallelFor from inside fn.
  ///
  /// Returns OK when every index ran and none threw. A throwing fn yields
  /// the first failure as a kInternal Status *after all other indices still
  /// completed*. A tripped `ctx` (cancelled / past deadline) abandons the
  /// unclaimed remainder and returns its Status; `ctx` may be null.
  Status ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                     size_t chunk = 0, const ExecContext* ctx = nullptr);

  /// One dependency layer of a staged computation.
  struct Stage {
    /// Number of independent tasks in this stage.
    size_t n = 0;
    /// Task body; invoked exactly once per index in [0, n), possibly in
    /// parallel. Must only read state published by earlier stages.
    std::function<void(size_t)> run;
    /// Sequential barrier step, executed on the caller thread after every
    /// `run` of this stage returned and before the next stage starts. May be
    /// null. This is where single-writer caches commit built artifacts.
    std::function<void()> publish;
  };

  /// Runs the stages in order: all tasks of stage k complete (parallel,
  /// chunk-claimed) before its publish runs, and publish completes before
  /// stage k+1 starts. The completion handshake of each ParallelFor provides
  /// the happens-before edge from every task write to the publish step and
  /// from the publish to the next stage's tasks.
  ///
  /// On a stage failure (task exception or tripped `ctx`) returns that
  /// Status immediately: the failed stage's publish and every later stage
  /// are skipped, so no partial state of the failed layer is ever committed.
  Status ParallelForStages(const std::vector<Stage>& stages,
                           const ExecContext* ctx = nullptr);

 private:
  /// One fan-out, published to the workers by pointer; lives on the
  /// ParallelFor caller's stack. Workers acknowledge completion so the
  /// caller knows when the job may be destroyed. A throwing fn records the
  /// first failure into `error` but does not stop siblings; a tripped
  /// ExecContext sets `stopped` so everyone abandons the unclaimed
  /// remainder within one chunk.
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t n = 0;
    size_t chunk = 1;               // indices claimed per atomic RMW
    uint64_t id = 0;
    const ExecContext* ctx = nullptr;
    std::atomic<size_t> next{0};    // next unclaimed index
    std::atomic<bool> stopped{false};  // ctx tripped: abandon the remainder
    Status error;                   // first failure (guarded by mu_)
    int acked = 0;                  // workers done claiming (guarded by mu_)
  };

  /// Claims and runs chunks of `job` until it is exhausted or its context
  /// trips; records failures into the job. Returns normally always.
  void RunClaimLoop(Job* job);

  /// Records `status` as the job's error if it is the first (mu_-guarded).
  void RecordError(Job* job, Status status);

  void WorkerLoop(std::stop_token stop);

  std::mutex run_mu_;  // serializes concurrent ParallelFor callers
  std::mutex mu_;
  std::condition_variable_any work_cv_;  // workers wait for a new job
  std::condition_variable done_cv_;      // caller waits for all acks
  Job* job_ = nullptr;                   // guarded by mu_
  uint64_t next_job_id_ = 0;
  std::vector<std::jthread> workers_;
};

/// \brief One deferred task on a dedicated thread — the double-buffered
/// prefetch primitive of the morsel pipeline (query/morsel.cc).
///
/// ThreadPool::ParallelFor is not reentrant and serializes concurrent
/// callers, so a prepare stage cannot overlap a fan-out *on the pool*.
/// AsyncStage runs exactly one Status-returning task on its own thread:
/// the pipeline launches "build morsel i+1" here while the pool executes
/// morsel i's combine, then Await()s before touching the built artifacts.
///
/// Happens-before: everything the task wrote is visible to the caller after
/// Await() returns (thread join). The destructor joins a still-active task
/// (discarding its Status), so an error-path unwind can never leave the
/// thread dangling. Launch/Await must alternate and come from one thread;
/// a thrown task surfaces as a kInternal Status from Await().
class AsyncStage {
 public:
  AsyncStage() = default;
  ~AsyncStage();

  AsyncStage(const AsyncStage&) = delete;
  AsyncStage& operator=(const AsyncStage&) = delete;

  /// Starts `fn` on the dedicated thread. Requires no task in flight.
  void Launch(std::function<Status()> fn);

  /// Blocks until the launched task finished and returns its Status.
  /// Requires an active task.
  Status Await();

  /// True between Launch() and the matching Await().
  bool active() const { return active_; }

 private:
  std::thread thread_;
  Status status_;
  bool active_ = false;
};

/// The process-wide shared pool, sized once at first use from
/// FeatAugConfig::Global() (see common/config.h). Never returns nullptr; a
/// 1-thread configuration yields a workerless pool that runs inline.
ThreadPool* GlobalThreadPool();

}  // namespace featlib

#include "common/fault_injection.h"

#ifdef FEATLIB_FAULT_INJECTION

#include <cmath>

#include "common/str_util.h"

namespace featlib {
namespace {

/// SplitMix64 finalizer: a cheap, well-mixed pure hash. The fault decision
/// for (seed, site, call k) depends on nothing else, so a seed reproduces
/// the same fault pattern wherever the per-site call order is deterministic.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashSite(const char* site) {
  // FNV-1a over the site name.
  uint64_t h = 1469598103934665603ull;
  for (const char* p = site; *p != '\0'; ++p) {
    h = (h ^ static_cast<uint8_t>(*p)) * 1099511628211ull;
  }
  return h;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();  // never destroyed
  return *injector;
}

void FaultInjector::EnableRandom(uint64_t seed, double probability) {
  std::lock_guard<std::mutex> lock(mu_);
  random_mode_ = true;
  seed_ = seed;
  const double p = probability < 0.0 ? 0.0 : probability > 1.0 ? 1.0
                                                               : probability;
  // Map p onto [0, 2^64): compare the mixed hash against p * 2^64.
  fail_threshold_ = p >= 1.0
                        ? UINT64_MAX
                        : static_cast<uint64_t>(std::ldexp(p, 64));
  armings_.clear();
  calls_.clear();
  faults_.store(0, std::memory_order_relaxed);
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::ArmSite(const std::string& site, uint64_t nth,
                            uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  random_mode_ = false;
  armings_.push_back(Arming{site, nth, count, nullptr});
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::ArmHook(const std::string& site, uint64_t nth,
                            std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  random_mode_ = false;
  armings_.push_back(Arming{site, nth, 1, std::move(hook)});
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  random_mode_ = false;
  armings_.clear();
  calls_.clear();
  faults_.store(0, std::memory_order_relaxed);
  armed_.store(false, std::memory_order_release);
}

Status FaultInjector::MaybeFail(const char* site) {
  if (!armed_.load(std::memory_order_acquire)) return Status::OK();
  std::function<void()> hook;  // run outside the lock
  uint64_t fail_index = 0;
  bool fail = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
    const uint64_t k = calls_[site]++;
    if (random_mode_) {
      const uint64_t h = Mix64(seed_ ^ Mix64(HashSite(site) ^ Mix64(k)));
      fail = fail_threshold_ == UINT64_MAX || h < fail_threshold_;
    } else {
      for (const Arming& arming : armings_) {
        if (arming.site != site) continue;
        if (arming.hook != nullptr) {
          if (k == arming.nth) hook = arming.hook;
        } else if (k >= arming.nth && k - arming.nth < arming.count) {
          fail = true;
        }
      }
    }
    if (fail) {
      fail_index = k;
      faults_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (hook) hook();
  if (fail) {
    return Status::Internal(
        StrFormat("injected fault at %s #%llu", site,
                  static_cast<unsigned long long>(fail_index)));
  }
  return Status::OK();
}

uint64_t FaultInjector::faults_injected() const {
  return faults_.load(std::memory_order_relaxed);
}

uint64_t FaultInjector::calls(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = calls_.find(site);
  return it == calls_.end() ? 0 : it->second;
}

Status FaultPoint(const char* site) {
  return FaultInjector::Global().MaybeFail(site);
}

}  // namespace featlib

#endif  // FEATLIB_FAULT_INJECTION

#include "common/str_util.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace featlib {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> StrSplit(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string StrTrim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string StrLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size() || !std::isfinite(v)) return false;
  *out = v;
  return true;
}

bool ParseInt64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

std::string UniquifyName(const std::string& base,
                         const std::function<bool(const std::string&)>& taken) {
  if (!taken(base)) return base;
  for (size_t i = 2;; ++i) {
    std::string candidate = base + "_" + std::to_string(i);
    if (!taken(candidate)) return candidate;
  }
}

}  // namespace featlib

#pragma once

/// \file file_io.h
/// \brief Crash-safe file primitives shared by plan and checkpoint
/// persistence.
///
/// AtomicWriteFile implements the classic durable-write protocol: write the
/// full contents to a temp file in the destination directory, fsync the
/// file, rename() it over the destination, then fsync the directory so the
/// rename itself is durable. A reader therefore observes either the old
/// complete file or the new complete file — never a torn mix — and a crash
/// mid-save leaves the previous file intact. Integrity across media faults
/// (bit flips, truncation by other writers) is handled one level up by the
/// CRC32 footer the plan/checkpoint formats embed; Crc32 here is the shared
/// checksum.

#include <cstdint>
#include <string>

#include "common/status.h"

namespace featlib {

/// CRC-32 (IEEE 802.3, the zlib polynomial) over `data`. Table-driven; the
/// checksum of the empty string is 0.
uint32_t Crc32(const std::string& data);

/// Incremental form: feed `crc` = 0 for the first chunk, then chain.
uint32_t Crc32Update(uint32_t crc, const char* data, size_t len);

/// Reads an entire file into a string. Returns kNotFound when the file does
/// not exist, kIOError for directories and read failures.
Result<std::string> ReadFileToString(const std::string& path);

/// Atomically replaces `path` with `contents` via temp file + fsync +
/// rename + directory fsync. On any failure the temp file is unlinked and
/// the previous `path` (if any) is left untouched.
///
/// Fault-injection sites (see fault_injection.h): "file_io.open",
/// "file_io.write" (simulated ENOSPC/short write: a partial prefix reaches
/// the temp file before the failure), "file_io.fsync", "file_io.rename".
Status AtomicWriteFile(const std::string& path, const std::string& contents);

/// The shared integrity-footer convention of plan and checkpoint files: the
/// last line is "-- crc32: <8 hex digits>" checksumming every byte before
/// it. AppendCrcFooter stamps it; CheckCrcFooter verifies it and returns
/// kDataLoss on a missing/malformed footer, trailing content, or a checksum
/// mismatch.
void AppendCrcFooter(std::string* contents);
Status CheckCrcFooter(const std::string& text);

/// The footer line prefix, exposed for format probing ("does this file
/// carry an envelope at all?").
inline constexpr const char* kCrcFooterPrefix = "-- crc32: ";

}  // namespace featlib

#pragma once

/// \file aligned.h
/// \brief Minimal over-aligned allocator for kernel-facing flat buffers.
///
/// The vectorized kernel backend (query/kernels_simd.cc) reads
/// MaterializedValues::flat with 256-bit loads; allocating the flat array at
/// a 64-byte (cache-line) boundary lets slices whose offset is a multiple of
/// the vector width hit aligned loads and keeps any buffer from straddling
/// an extra line. The allocator changes only the *address* of the storage,
/// never its contents, so buffers stay byte-identical to ones backed by the
/// default allocator.

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace featlib {

inline constexpr size_t kKernelAlignment = 64;

template <typename T, size_t Alignment = kKernelAlignment>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two no weaker than alignof(T)");

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// vector<T> whose storage starts on a kernel-alignment boundary.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace featlib

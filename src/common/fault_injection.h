#pragma once

/// \file fault_injection.h
/// \brief Deterministic, seeded fault-injection harness for robustness tests.
///
/// Library code marks fallible operations with named *sites*
/// (`FaultPoint("prepare.mask")`); a site returns OK in production and can be
/// made to fail — deterministically — in tests and CI sweeps. Two arming
/// modes:
///
///   - **Targeted** (ArmSite / ArmHook): fail (or run a hook, e.g.
///     ExecContext::Cancel) at exactly the nth call of one site. The per-site
///     call counters are deterministic in *count*, but which logical artifact
///     observes call #n depends on scheduling when builds run on the
///     ThreadPool — targeted tests therefore drive a serial planner.
///   - **Random sweep** (EnableRandom): every site call fails with
///     probability p, decided by a pure hash of (seed, site name, per-site
///     call index). The same seed reproduces the same fault pattern on a
///     serial run; CI sweeps across seeds assert every injected fault
///     surfaces as a clean typed Status (scripts/ci.sh).
///
/// Compiled in via the FEATLIB_FAULT_INJECTION CMake option (default ON for
/// this research build). When compiled out, FaultPoint/FaultHookPoint are
/// empty inlines and the harness costs literally nothing; when compiled in
/// but disarmed, a site costs one relaxed atomic load.
///
/// Thread-safety: sites are hit concurrently from pool workers; counters are
/// mutex-guarded behind the atomic fast path. Arm*/Reset must not race with
/// in-flight work (tests arm before dispatch, reset after join).

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace featlib {

#ifdef FEATLIB_FAULT_INJECTION

class FaultInjector {
 public:
  /// Process-wide injector (test-only state; the library never arms it).
  static FaultInjector& Global();

  /// Random mode: each site call fails with `probability`, decided by
  /// hash(seed, site, call index). Replaces any previous arming.
  void EnableRandom(uint64_t seed, double probability);

  /// Targeted mode: the `nth` call (0-based) of `site` fails; other sites
  /// and calls pass. `count` consecutive calls fail starting at nth (so a
  /// retry test can exhaust all attempts with count >= max_attempts).
  void ArmSite(const std::string& site, uint64_t nth, uint64_t count = 1);

  /// Targeted hook: runs `hook` at the `nth` call of `site` without failing
  /// it (the mechanism for "cancel mid-stage" tests: the hook flips an
  /// ExecContext). Coexists with ArmSite on a different site.
  void ArmHook(const std::string& site, uint64_t nth,
               std::function<void()> hook);

  /// Disarms everything and zeroes counters and stats.
  void Reset();

  /// The instrumented check: OK unless the current arming says this call
  /// fails, in which case a kInternal "injected fault at <site> #<k>"
  /// Status is returned. Hot path when disarmed: one relaxed atomic load.
  Status MaybeFail(const char* site);

  /// Total faults injected since the last Reset.
  uint64_t faults_injected() const;
  /// Calls observed at `site` since the last Reset (0 if never hit).
  uint64_t calls(const std::string& site) const;

 private:
  FaultInjector() = default;

  /// One targeted arming: fail calls [nth, nth+count) of `site`, or run
  /// `hook` at call nth when `hook` is set (hook armings never fail).
  struct Arming {
    std::string site;
    uint64_t nth = 0;
    uint64_t count = 1;
    std::function<void()> hook;
  };

  /// True (disarmed fast path short-circuits before the mutex) iff any
  /// arming is live.
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> faults_{0};

  mutable std::mutex mu_;
  bool random_mode_ = false;              // guarded by mu_
  uint64_t seed_ = 0;                     // guarded by mu_
  uint64_t fail_threshold_ = 0;           // p mapped onto [0, 2^64)
  std::vector<Arming> armings_;           // guarded by mu_
  std::unordered_map<std::string, uint64_t> calls_;  // per-site call counts
};

/// Returns OK or an injected failure for this named site.
Status FaultPoint(const char* site);

#else  // !FEATLIB_FAULT_INJECTION

/// Compiled-out stub: the optimizer deletes the call entirely.
inline Status FaultPoint(const char* /*site*/) { return Status::OK(); }

#endif  // FEATLIB_FAULT_INJECTION

}  // namespace featlib

#pragma once

/// \file config.h
/// \brief Process-wide FeatAug runtime configuration.
///
/// The first knob is the candidate-evaluation thread count. Resolution
/// order: the FEATLIB_NUM_THREADS environment variable (operators override
/// deployments without a rebuild), then FeatAugConfig::num_threads (embedders
/// set it programmatically before the first use of GlobalThreadPool()), then
/// the hardware concurrency. The shared pool is sized exactly once at first
/// use; later changes only affect pools the caller constructs explicitly.

#include <cstddef>

namespace featlib {

/// Which kernel implementation set the query layer dispatches to (see
/// query/kernel_dispatch.h). Every backend is bit-identical to the scalar
/// oracle — the choice is purely a performance knob.
enum class KernelBackend {
  kScalar,  ///< the reference kernels in query/kernels.cc
  kSimd,    ///< the vectorized set (AVX2 / NEON when detected, else scalar code)
  kAuto,    ///< kSimd when the CPU has a vector ISA, kScalar otherwise
};

/// Canonical lowercase name ("scalar" / "simd" / "auto").
const char* KernelBackendName(KernelBackend backend);

struct FeatAugConfig {
  /// Threads for QueryPlanner::EvaluateMany prepare/fan-out. 0 = auto (hardware
  /// concurrency); 1 = serial (the exact single-threaded code path).
  int num_threads = 0;

  /// Kernel backend for the candidate-evaluation fan-out, predicate-mask
  /// builds, and serving Transform. Resolution order mirrors num_threads:
  /// the FEATLIB_KERNEL_BACKEND environment variable (scalar|simd|auto),
  /// then this field, then auto. Per-planner overrides
  /// (QueryPlanner::set_kernel_backend) beat both.
  KernelBackend kernel_backend = KernelBackend::kAuto;

  /// Relevant-table rows per morsel for the out-of-core streaming executor
  /// (see query/morsel.h). 0 = whole table in one pass (the legacy in-RAM
  /// path, byte-for-byte). Resolution order mirrors the other knobs: the
  /// FEATLIB_MORSEL_ROWS environment variable, then this field; a
  /// per-planner override (QueryPlanner::set_morsel_rows) beats both.
  size_t morsel_rows = 0;

  /// The mutable process-wide instance.
  static FeatAugConfig& Global();

  /// Applies the FEATLIB_NUM_THREADS override and the auto default; always
  /// returns >= 1.
  int ResolvedNumThreads() const;

  /// Applies the FEATLIB_KERNEL_BACKEND override (malformed values fall
  /// through to the config field). May return kAuto — the dispatch layer
  /// maps kAuto to the detected ISA.
  KernelBackend ResolvedKernelBackend() const;

  /// Applies the FEATLIB_MORSEL_ROWS override (malformed values fall through
  /// to the config field). 0 means single-pass whole-table execution.
  size_t ResolvedMorselRows() const;
};

}  // namespace featlib

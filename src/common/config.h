#pragma once

/// \file config.h
/// \brief Process-wide FeatAug runtime configuration.
///
/// The first knob is the candidate-evaluation thread count. Resolution
/// order: the FEATLIB_NUM_THREADS environment variable (operators override
/// deployments without a rebuild), then FeatAugConfig::num_threads (embedders
/// set it programmatically before the first use of GlobalThreadPool()), then
/// the hardware concurrency. The shared pool is sized exactly once at first
/// use; later changes only affect pools the caller constructs explicitly.

namespace featlib {

struct FeatAugConfig {
  /// Threads for QueryPlanner::EvaluateMany prepare/fan-out. 0 = auto (hardware
  /// concurrency); 1 = serial (the exact single-threaded code path).
  int num_threads = 0;

  /// The mutable process-wide instance.
  static FeatAugConfig& Global();

  /// Applies the FEATLIB_NUM_THREADS override and the auto default; always
  /// returns >= 1.
  int ResolvedNumThreads() const;
};

}  // namespace featlib

#pragma once

/// \file rng.h
/// \brief Deterministic, explicitly-seeded random number generation.
///
/// featlib never uses a global RNG: every stochastic component (TPE, model
/// training, data generators, benchmarks) receives a seed and owns an Rng.
/// The generator is xoshiro256** seeded through SplitMix64, which gives
/// high-quality streams from small integer seeds.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace featlib {

/// \brief Small, fast, deterministic PRNG (xoshiro256**).
class Rng {
 public:
  /// Constructs a generator whose stream is fully determined by `seed`.
  explicit Rng(uint64_t seed = 42);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double UniformReal(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Standard normal draw (Box-Muller, one cached spare).
  double Normal();

  /// Normal draw with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Poisson draw. Uses Knuth's method for small lambda and a normal
  /// approximation for lambda > 64.
  int64_t Poisson(double lambda);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Draws an index in [0, weights.size()) proportionally to `weights`.
  /// Non-positive weights are treated as zero; if all are zero, uniform.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k may exceed n, then all n).
  std::vector<size_t> SampleIndices(size_t n, size_t k);

  /// Spawns an independent child generator (distinct stream).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace featlib

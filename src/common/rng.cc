#include "common/rng.h"

#include <cmath>
#include <numeric>

#include "common/status.h"

namespace featlib {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformReal(double lo, double hi) {
  FEAT_CHECK(lo <= hi, "UniformReal requires lo <= hi");
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::UniformInt(uint64_t n) {
  FEAT_CHECK(n > 0, "UniformInt requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  FEAT_CHECK(lo <= hi, "UniformRange requires lo <= hi");
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1ULL));
}

double Rng::Normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586;
  spare_ = mag * std::sin(two_pi * u2);
  has_spare_ = true;
  return mag * std::cos(two_pi * u2);
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * Normal(); }

int64_t Rng::Poisson(double lambda) {
  FEAT_CHECK(lambda >= 0.0, "Poisson requires lambda >= 0");
  if (lambda == 0.0) return 0;
  if (lambda > 64.0) {
    // Normal approximation with continuity correction; adequate for workload
    // generation (we never rely on exact tail behaviour).
    const double draw = Normal(lambda, std::sqrt(lambda));
    return draw < 0.0 ? 0 : static_cast<int64_t>(draw + 0.5);
  }
  const double limit = std::exp(-lambda);
  int64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= Uniform();
  } while (p > limit);
  return k - 1;
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  FEAT_CHECK(!weights.empty(), "Categorical requires non-empty weights");
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return static_cast<size_t>(UniformInt(weights.size()));
  double target = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  std::vector<size_t> all(n);
  std::iota(all.begin(), all.end(), size_t{0});
  if (k >= n) return all;
  // Partial Fisher-Yates: first k slots become the sample.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(UniformInt(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace featlib

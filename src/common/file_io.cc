#include "common/file_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "common/fault_injection.h"
#include "common/str_util.h"

namespace featlib {

namespace {

/// Table for the reflected IEEE polynomial 0xEDB88320 (zlib's crc32).
const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::IOError(
      StrFormat("%s failed for %s: %s", op.c_str(), path.c_str(),
                std::strerror(errno)));
}

/// Writes all of `data`, retrying short writes (signals, pipe semantics).
Status WriteAll(int fd, const char* data, size_t len, const std::string& path) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path);
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, const char* data, size_t len) {
  const uint32_t* table = Crc32Table();
  crc = ~crc;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ static_cast<uint8_t>(data[i])) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32(const std::string& data) {
  return Crc32Update(0, data.data(), data.size());
}

void AppendCrcFooter(std::string* contents) {
  *contents += StrFormat("%s%08x\n", kCrcFooterPrefix, Crc32(*contents));
}

Status CheckCrcFooter(const std::string& text) {
  // The footer must be the final line. Find the last newline-prefixed
  // occurrence (a headered file never puts the footer at offset 0).
  const size_t pos = text.rfind(std::string("\n") + kCrcFooterPrefix);
  if (pos == std::string::npos) {
    return Status::DataLoss("no crc32 footer (torn or truncated file)");
  }
  const size_t line_start = pos + 1;
  const size_t line_end = text.find('\n', line_start);
  const std::string footer =
      StrTrim(line_end == std::string::npos
                  ? text.substr(line_start)
                  : text.substr(line_start, line_end - line_start));
  // Nothing but whitespace may follow the footer line.
  if (line_end != std::string::npos &&
      !StrTrim(text.substr(line_end)).empty()) {
    return Status::DataLoss("content after the crc32 footer (corrupt file)");
  }
  const size_t prefix_len = std::string(kCrcFooterPrefix).size();
  const std::string hex =
      footer.size() > prefix_len ? StrTrim(footer.substr(prefix_len)) : "";
  uint32_t expected = 0;
  {
    std::istringstream in(hex);
    in >> std::hex >> expected;
    if (in.fail() || hex.size() != 8) {
      return Status::DataLoss("crc32 footer is malformed: " + footer);
    }
  }
  const uint32_t actual = Crc32Update(0, text.data(), line_start);
  if (actual != expected) {
    return Status::DataLoss(
        StrFormat("crc32 mismatch: footer %08x, computed %08x "
                  "(bit-flipped or truncated file)",
                  expected, actual));
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  // ifstream happily "opens" a directory on Linux and then reads as if the
  // file were empty — catch it before that turns into silently-empty data.
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    return Status::IOError("path is a directory: " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  // rdbuf() swallows stream errors; bad() distinguishes "short file" from
  // "the read itself failed" (I/O error, device trouble, ...).
  if (in.bad() || buf.bad()) return Status::IOError("read failed: " + path);
  return buf.str();
}

Status AtomicWriteFile(const std::string& path, const std::string& contents) {
  // The temp file must live in the destination directory: rename() is only
  // atomic within a filesystem, and the directory fsync below must cover
  // both the old and the new name.
  const std::filesystem::path dest(path);
  const std::string dir =
      dest.has_parent_path() ? dest.parent_path().string() : std::string(".");
  const std::string tmp = path + ".tmp";

  Status fault = FaultPoint("file_io.open");
  int fd = -1;
  if (fault.ok()) {
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) fault = ErrnoStatus("open", tmp);
  } else {
    fault = Status::IOError("injected open failure: " + tmp + " (" +
                            fault.message() + ")");
  }
  if (!fault.ok()) return fault;

  // Simulated ENOSPC / short write: flush a partial prefix into the temp
  // file before failing, so tests can prove a torn temp never reaches the
  // destination name.
  Status write_status = FaultPoint("file_io.write");
  if (!write_status.ok()) {
    const size_t partial = contents.size() / 2;
    (void)WriteAll(fd, contents.data(), partial, tmp);
    write_status = Status::IOError("injected short write (ENOSPC): " + tmp +
                                   " (" + write_status.message() + ")");
  } else {
    write_status = WriteAll(fd, contents.data(), contents.size(), tmp);
  }

  if (write_status.ok()) {
    Status fsync_status = FaultPoint("file_io.fsync");
    if (fsync_status.ok()) {
      if (::fsync(fd) != 0) fsync_status = ErrnoStatus("fsync", tmp);
    } else {
      fsync_status = Status::IOError("injected fsync failure: " + tmp + " (" +
                                     fsync_status.message() + ")");
    }
    write_status = fsync_status;
  }
  ::close(fd);

  if (write_status.ok()) {
    write_status = FaultPoint("file_io.rename");
    if (write_status.ok()) {
      if (::rename(tmp.c_str(), path.c_str()) != 0) {
        write_status = ErrnoStatus("rename", tmp + " -> " + path);
      }
    } else {
      write_status = Status::IOError("injected rename failure: " + tmp +
                                     " -> " + path + " (" +
                                     write_status.message() + ")");
    }
  }

  if (!write_status.ok()) {
    ::unlink(tmp.c_str());  // never leave a torn temp behind
    return write_status;
  }

  // Durability of the rename itself: fsync the containing directory. Best
  // effort — some filesystems refuse O_RDONLY directory fds; the rename has
  // already happened, so failure here cannot tear anything.
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

}  // namespace featlib

#include "common/status.h"

namespace featlib {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace featlib

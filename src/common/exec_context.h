#pragma once

/// \file exec_context.h
/// \brief Per-request execution context: deadline, cooperative cancellation,
/// and a memory budget, threaded through the execution stack.
///
/// An ExecContext is created by the caller of a fallible entry point
/// (EvaluateMany, Transform*, Fit) and passed down by pointer; a null pointer
/// means "no limits" and costs nothing. The context is checked *between*
/// units of work — at ThreadPool chunk boundaries, between planner DAG
/// stages, between search-loop candidates — never inside a kernel, so a trip
/// is honored within one chunk of work, and a unit either runs to completion
/// or does not run at all (no torn artifacts; see docs/ARCHITECTURE.md,
/// "Failure semantics").
///
/// Thread-safety: all members are atomics. Cancel() may be called from any
/// thread (including a signal-adjacent watchdog) while workers concurrently
/// Check(); ChargeMemory/ReleaseMemory may race freely across workers.
/// The object itself must outlive every call it was passed to; it is
/// neither copyable nor movable (share it by pointer).

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace featlib {

class ExecContext {
 public:
  ExecContext() = default;
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  /// \name Limits (set before dispatch; resettable between requests).
  /// @{

  /// Absolute deadline on the steady clock. Work observed past this instant
  /// fails with kDeadlineExceeded at the next check point.
  void set_deadline(std::chrono::steady_clock::time_point tp) {
    deadline_ns_.store(tp.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }
  /// Convenience: deadline = now + budget.
  void set_deadline_after(std::chrono::nanoseconds budget) {
    set_deadline(std::chrono::steady_clock::now() + budget);
  }
  void clear_deadline() {
    deadline_ns_.store(kNoDeadline, std::memory_order_relaxed);
  }
  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != kNoDeadline;
  }

  /// Caps the bytes chargeable through ChargeMemory. 0 means unlimited.
  void set_memory_budget_bytes(size_t bytes) {
    budget_bytes_.store(bytes, std::memory_order_relaxed);
  }
  size_t memory_budget_bytes() const {
    return budget_bytes_.load(std::memory_order_relaxed);
  }
  /// @}

  /// \name Cancellation (any thread).
  /// @{
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  /// @}

  /// OK while the request may keep running; kCancelled after Cancel(),
  /// kDeadlineExceeded past the deadline. Cancellation wins when both
  /// tripped. Cheap: one relaxed load, plus a clock read only when a
  /// deadline is set.
  Status Check() const {
    if (cancelled_.load(std::memory_order_relaxed)) {
      return Status::Cancelled("execution cancelled");
    }
    const int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline != kNoDeadline &&
        std::chrono::steady_clock::now().time_since_epoch().count() >=
            deadline) {
      return Status::DeadlineExceeded("execution deadline exceeded");
    }
    return Status::OK();
  }

  /// Records `bytes` of planned allocation against the budget. Fails with
  /// kResourceExhausted when the running total would exceed the budget (the
  /// charge is then *not* recorded, so an isolated failing candidate does
  /// not eat budget its siblings could use). Accounting is advisory: callers
  /// charge size *estimates* before building, so the budget bounds planned
  /// footprint, not malloc bytes.
  /// (Const because accounting is execution-side bookkeeping, not logical
  /// object state — downstream layers hold `const ExecContext*` uniformly.)
  Status ChargeMemory(size_t bytes) const;

  /// Returns previously charged bytes to the budget (e.g. when a build is
  /// abandoned after its charge).
  void ReleaseMemory(size_t bytes) const;

  size_t charged_bytes() const {
    return charged_bytes_.load(std::memory_order_relaxed);
  }

  /// High-water mark of charged_bytes() over the context's lifetime. Because
  /// the morsel executor charges each in-flight morsel's artifacts and
  /// releases them after its combine, this is the measured peak *planned*
  /// footprint of a bounded-memory run — the number the morsel bench
  /// compares against the single-pass peak (where nothing is released, so
  /// peak == charged).
  size_t peak_charged_bytes() const {
    return peak_charged_bytes_.load(std::memory_order_relaxed);
  }

  /// \name Null-tolerant helpers: the idiom for optional contexts.
  /// @{
  static Status CheckFor(const ExecContext* ctx) {
    return ctx == nullptr ? Status::OK() : ctx->Check();
  }
  static Status ChargeFor(const ExecContext* ctx, size_t bytes) {
    return ctx == nullptr ? Status::OK() : ctx->ChargeMemory(bytes);
  }
  static void ReleaseFor(const ExecContext* ctx, size_t bytes) {
    if (ctx != nullptr) ctx->ReleaseMemory(bytes);
  }
  /// @}

 private:
  static constexpr int64_t kNoDeadline = INT64_MAX;

  /// CAS-max: lifts the peak to `now` unless a racing charger already did.
  void UpdatePeak(size_t now) const {
    size_t peak = peak_charged_bytes_.load(std::memory_order_relaxed);
    while (now > peak && !peak_charged_bytes_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }

  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{kNoDeadline};  // steady-clock epoch ns
  std::atomic<size_t> budget_bytes_{0};            // 0 = unlimited
  mutable std::atomic<size_t> charged_bytes_{0};
  mutable std::atomic<size_t> peak_charged_bytes_{0};
};

}  // namespace featlib

#include "data/multi_table_data.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/str_util.h"

namespace featlib {

namespace {

/// Z-scores a vector (constant vectors map to all-zero).
std::vector<double> ZScore(const std::vector<double>& v) {
  double mean = 0.0;
  for (double x : v) mean += x;
  mean /= v.empty() ? 1.0 : static_cast<double>(v.size());
  double ss = 0.0;
  for (double x : v) ss += (x - mean) * (x - mean);
  const double sd = std::sqrt(ss / std::max<size_t>(1, v.size()));
  std::vector<double> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    out[i] = sd > 1e-12 ? (v[i] - mean) / sd : 0.0;
  }
  return out;
}

const char* const kDeptNames[] = {"dairy",   "produce", "bakery", "frozen",
                                  "pantry",  "snacks",  "meat",   "deli",
                                  "babies",  "household"};
constexpr size_t kNumDepts = 10;
constexpr size_t kNumProducts = 150;

}  // namespace

Result<RelationGraph> MultiTableBundle::BuildGraph() const {
  RelationGraph graph;
  FEAT_RETURN_NOT_OK(graph.AddTable("training", training));
  FEAT_RETURN_NOT_OK(graph.AddTable("order_items", order_items));
  FEAT_RETURN_NOT_OK(graph.AddTable("products", products));
  FEAT_RETURN_NOT_OK(graph.AddTable("departments", departments));
  FEAT_RETURN_NOT_OK(graph.AddTable("browse_log", browse_log));
  FEAT_RETURN_NOT_OK(graph.AddFact("training", "order_items", fk_attrs));
  FEAT_RETURN_NOT_OK(graph.AddFact("training", "browse_log", fk_attrs));
  FEAT_RETURN_NOT_OK(graph.AddLookup("order_items", "products", {"product_id"}));
  FEAT_RETURN_NOT_OK(
      graph.AddLookup("products", "departments", {"department_id"}));
  return graph;
}

MultiTableBundle MakeInstacartMultiTable(const SyntheticOptions& options) {
  Rng rng(options.seed ^ 0x51aee2b7ULL);
  const size_t n = options.n_train;

  MultiTableBundle bundle;
  bundle.name = "instacart_multi";
  bundle.label_col = "label";
  bundle.task = TaskKind::kBinaryClassification;
  bundle.fk_attrs = {"user_id"};
  bundle.base_features = {"household", "tenure"};

  // ---- departments dimension. ----
  {
    Column id(DataType::kInt64), name(DataType::kString);
    for (size_t d = 0; d < kNumDepts; ++d) {
      id.AppendInt(static_cast<int64_t>(d));
      name.AppendString(kDeptNames[d]);
    }
    FEAT_CHECK(bundle.departments.AddColumn("department_id", std::move(id)).ok(),
               "departments");
    FEAT_CHECK(bundle.departments.AddColumn("department", std::move(name)).ok(),
               "departments");
  }

  // ---- products dimension (dept 0 = dairy gets ~1/6 of products). ----
  std::vector<int64_t> product_dept(kNumProducts);
  std::vector<size_t> dairy_products, other_products;
  {
    Column id(DataType::kInt64), dept(DataType::kInt64);
    Column weight(DataType::kDouble), organic(DataType::kBool);
    Column aisle(DataType::kString);
    for (size_t p = 0; p < kNumProducts; ++p) {
      const int64_t d = rng.Bernoulli(1.0 / 6.0)
                            ? 0
                            : 1 + static_cast<int64_t>(rng.UniformInt(kNumDepts - 1));
      product_dept[p] = d;
      (d == 0 ? dairy_products : other_products).push_back(p);
      id.AppendInt(static_cast<int64_t>(p));
      dept.AppendInt(d);
      weight.AppendDouble(0.1 + 5.0 * rng.Uniform());
      organic.AppendInt(rng.Bernoulli(0.3) ? 1 : 0);
      aisle.AppendString(StrFormat("aisle_%llu",
                                   static_cast<unsigned long long>(rng.UniformInt(12))));
    }
    FEAT_CHECK(bundle.products.AddColumn("product_id", std::move(id)).ok(), "products");
    FEAT_CHECK(bundle.products.AddColumn("weight", std::move(weight)).ok(), "products");
    FEAT_CHECK(bundle.products.AddColumn("organic", std::move(organic)).ok(),
               "products");
    FEAT_CHECK(bundle.products.AddColumn("aisle", std::move(aisle)).ok(), "products");
    FEAT_CHECK(bundle.products.AddColumn("department_id", std::move(dept)).ok(),
               "products");
    // Degenerate seeds could leave one side empty; guarantee both pools.
    FEAT_CHECK(!dairy_products.empty() && !other_products.empty(),
               "product pools must be non-empty");
  }

  // ---- per-entity latents and base features. ----
  std::vector<double> u(n), w(n), base_effect(n);
  std::vector<int64_t> user_id(n);
  std::vector<double> household(n), tenure(n);
  for (size_t e = 0; e < n; ++e) {
    u[e] = rng.Normal();
    w[e] = rng.Normal();
    user_id[e] = static_cast<int64_t>(e);
    household[e] = 1.0 + static_cast<double>(rng.UniformInt(6));
    tenure[e] = 30.0 + 1000.0 * rng.Uniform();
    base_effect[e] =
        0.5 * (household[e] - 3.5) / 2.0 + 0.3 * (tenure[e] - 530.0) / 300.0;
  }

  // ---- order_items fact: strong signal hidden behind the dept chain. ----
  {
    Column f_user(DataType::kInt64), f_product(DataType::kInt64);
    Column f_price(DataType::kDouble), f_cartpos(DataType::kInt64);
    Column f_daygap(DataType::kDouble), f_hour(DataType::kInt64);
    Column f_items(DataType::kInt64), f_reordered(DataType::kBool);
    Column f_dow(DataType::kInt64), f_ts(DataType::kDatetime);
    const int64_t t_start = 1680000000;
    const int64_t t_end = t_start + 180LL * 86400;
    for (size_t e = 0; e < n; ++e) {
      const int64_t n_logs = 1 + rng.Poisson(options.avg_logs_per_entity);
      for (int64_t l = 0; l < n_logs; ++l) {
        const bool dairy = rng.Bernoulli(0.2);
        const bool reordered = rng.Bernoulli(0.55);
        const bool in_golden = dairy && reordered;
        const size_t pid = dairy ? dairy_products[rng.UniformInt(dairy_products.size())]
                                 : other_products[rng.UniformInt(other_products.size())];
        f_user.AppendInt(user_id[e]);
        f_product.AppendInt(static_cast<int64_t>(pid));
        // Golden rows carry +4u. Non-dairy reordered rows carry a -1u
        // counterweight sized so that E[AVG(price) | reordered] = 0.2*4u +
        // 0.8*(-1u) = 0: without the department attribute (two lookups
        // away) no predicate reachable from the raw fact recovers u — the
        // deep-layer flatten is genuinely necessary (see bench_multi_table).
        double price;
        if (in_golden) {
          price = 10.0 + 4.0 * u[e] + rng.Normal(0.0, 1.0);
        } else if (reordered) {
          price = 10.0 - 1.0 * u[e] + rng.Normal(0.0, 4.5);
        } else {
          price = 10.0 + rng.Normal(0.0, 4.5);
        }
        f_price.AppendDouble(price);
        f_cartpos.AppendInt(1 + static_cast<int64_t>(rng.UniformInt(20)));
        f_daygap.AppendDouble(30.0 * rng.Uniform());
        f_hour.AppendInt(static_cast<int64_t>(rng.UniformInt(24)));
        f_items.AppendInt(1 + static_cast<int64_t>(rng.UniformInt(15)));
        f_reordered.AppendInt(reordered ? 1 : 0);
        f_dow.AppendInt(static_cast<int64_t>(rng.UniformInt(7)));
        f_ts.AppendInt(rng.UniformRange(t_start, t_end));
      }
    }
    FEAT_CHECK(bundle.order_items.AddColumn("user_id", std::move(f_user)).ok(), "oi");
    FEAT_CHECK(bundle.order_items.AddColumn("product_id", std::move(f_product)).ok(),
               "oi");
    FEAT_CHECK(bundle.order_items.AddColumn("item_price", std::move(f_price)).ok(),
               "oi");
    FEAT_CHECK(bundle.order_items.AddColumn("cart_position", std::move(f_cartpos)).ok(),
               "oi");
    FEAT_CHECK(bundle.order_items.AddColumn("day_gap", std::move(f_daygap)).ok(), "oi");
    FEAT_CHECK(bundle.order_items.AddColumn("hour", std::move(f_hour)).ok(), "oi");
    FEAT_CHECK(bundle.order_items.AddColumn("total_items", std::move(f_items)).ok(),
               "oi");
    FEAT_CHECK(bundle.order_items.AddColumn("reordered", std::move(f_reordered)).ok(),
               "oi");
    FEAT_CHECK(bundle.order_items.AddColumn("order_dow", std::move(f_dow)).ok(), "oi");
    FEAT_CHECK(bundle.order_items.AddColumn("ts", std::move(f_ts)).ok(), "oi");
  }

  // ---- browse_log fact: row count carries the weak signal w. ----
  {
    Column b_user(DataType::kInt64), b_dwell(DataType::kDouble);
    Column b_clicks(DataType::kInt64), b_pages(DataType::kInt64);
    Column b_ts(DataType::kDatetime);
    const int64_t t_start = 1680000000;
    for (size_t e = 0; e < n; ++e) {
      const int64_t n_logs =
          1 + rng.Poisson(0.6 * options.avg_logs_per_entity * std::exp(0.35 * w[e]));
      for (int64_t l = 0; l < n_logs; ++l) {
        b_user.AppendInt(user_id[e]);
        b_dwell.AppendDouble(5.0 + 120.0 * rng.Uniform());
        b_clicks.AppendInt(static_cast<int64_t>(rng.UniformInt(30)));
        b_pages.AppendInt(1 + static_cast<int64_t>(rng.UniformInt(12)));
        b_ts.AppendInt(t_start + static_cast<int64_t>(rng.UniformInt(180 * 86400)));
      }
    }
    FEAT_CHECK(bundle.browse_log.AddColumn("user_id", std::move(b_user)).ok(), "bl");
    FEAT_CHECK(bundle.browse_log.AddColumn("dwell_seconds", std::move(b_dwell)).ok(),
               "bl");
    FEAT_CHECK(bundle.browse_log.AddColumn("clicks", std::move(b_clicks)).ok(), "bl");
    FEAT_CHECK(bundle.browse_log.AddColumn("pages", std::move(b_pages)).ok(), "bl");
    FEAT_CHECK(bundle.browse_log.AddColumn("ts", std::move(b_ts)).ok(), "bl");
  }

  // ---- label: strong + weak + base + noise (see synthetic.h). ----
  {
    const auto zu = ZScore(u);
    const auto zw = ZScore(w);
    const auto zb = ZScore(base_effect);
    std::vector<double> scores(n);
    for (size_t e = 0; e < n; ++e) {
      scores[e] = options.strong_weight * zu[e] + options.weak_weight * zw[e] +
                  options.base_weight * zb[e] + options.noise * rng.Normal();
    }
    std::vector<double> sorted = scores;
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<ptrdiff_t>(sorted.size() / 2),
                     sorted.end());
    const double median = sorted[sorted.size() / 2];
    std::vector<int64_t> labels(n);
    for (size_t e = 0; e < n; ++e) labels[e] = scores[e] > median ? 1 : 0;

    FEAT_CHECK(bundle.training
                   .AddColumn("user_id", Column::FromInts(DataType::kInt64, user_id))
                   .ok(),
               "train");
    FEAT_CHECK(
        bundle.training.AddColumn("household", Column::FromDoubles(household)).ok(),
        "train");
    FEAT_CHECK(bundle.training.AddColumn("tenure", Column::FromDoubles(tenure)).ok(),
               "train");
    FEAT_CHECK(bundle.training
                   .AddColumn("label", Column::FromInts(DataType::kInt64, labels))
                   .ok(),
               "train");
  }

  // Golden query against the *flattened* order_items chain.
  bundle.golden_query.agg = AggFunction::kAvg;
  bundle.golden_query.agg_attr = "item_price";
  bundle.golden_query.group_keys = {"user_id"};
  bundle.golden_query.predicates = {
      Predicate::Equals("department", Value::Str("dairy")),
      Predicate::Equals("reordered", Value::Bool(true))};
  return bundle;
}

}  // namespace featlib

#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "common/str_util.h"

namespace featlib {

namespace {

/// Z-scores a vector (constant vectors map to all-zero).
std::vector<double> ZScore(const std::vector<double>& v) {
  double mean = 0.0;
  for (double x : v) mean += x;
  mean /= v.empty() ? 1.0 : static_cast<double>(v.size());
  double ss = 0.0;
  for (double x : v) ss += (x - mean) * (x - mean);
  const double sd = std::sqrt(ss / std::max<size_t>(1, v.size()));
  std::vector<double> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    out[i] = sd > 1e-12 ? (v[i] - mean) / sd : 0.0;
  }
  return out;
}

/// Mixes the planted latents into per-entity scores.
std::vector<double> MixScores(const SyntheticOptions& options,
                              const std::vector<double>& strong,
                              const std::vector<double>& weak,
                              const std::vector<double>& base, Rng* rng) {
  const auto zs = ZScore(strong);
  const auto zw = ZScore(weak);
  const auto zb = ZScore(base);
  std::vector<double> out(strong.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = options.strong_weight * zs[i] + options.weak_weight * zw[i] +
             options.base_weight * zb[i] + options.noise * rng->Normal();
  }
  return out;
}

/// Binary labels balanced at the score median.
std::vector<int64_t> BinaryLabels(const std::vector<double>& scores) {
  std::vector<double> sorted = scores;
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<ptrdiff_t>(sorted.size() / 2),
                   sorted.end());
  const double median = sorted[sorted.size() / 2];
  std::vector<int64_t> out(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) out[i] = scores[i] > median ? 1 : 0;
  return out;
}

/// k-class labels by score quantile buckets.
std::vector<int64_t> MulticlassLabels(const std::vector<double>& scores, int k) {
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });
  std::vector<int64_t> out(scores.size());
  for (size_t rank = 0; rank < order.size(); ++rank) {
    out[order[rank]] = static_cast<int64_t>(
        std::min<size_t>(static_cast<size_t>(k) - 1,
                         rank * static_cast<size_t>(k) / order.size()));
  }
  return out;
}

/// Appends `count` uninformative numeric columns to R and registers them as
/// WHERE candidates (the Fig. 7 horizontal widening).
void WidenRelevant(DatasetBundle* bundle, size_t count, Rng* rng) {
  const size_t n = bundle->relevant.num_rows();
  for (size_t c = 0; c < count; ++c) {
    Column col(DataType::kDouble);
    col.Reserve(n);
    for (size_t r = 0; r < n; ++r) col.AppendDouble(rng->Normal());
    const std::string name = StrFormat("extra_%zu", c);
    Status st = bundle->relevant.AddColumn(name, std::move(col));
    FEAT_CHECK(st.ok(), "WidenRelevant AddColumn failed");
    bundle->where_candidates.push_back(name);
  }
}

void FinalizeGoldenTemplate(DatasetBundle* bundle) {
  QueryTemplate t;
  t.agg_functions = bundle->agg_functions;
  t.agg_attrs = bundle->agg_attrs;
  t.fk_attrs = bundle->fk_attrs;
  for (const Predicate& p : bundle->golden_query.predicates) {
    t.where_attrs.push_back(p.attr);
  }
  bundle->golden_template = std::move(t);
}

const char* const kCategories[] = {"electronics", "grocery",  "fashion",
                                   "toys",        "beauty",   "sports",
                                   "books",       "furniture"};
const char* const kDepartments[] = {"dairy",   "produce", "bakery", "frozen",
                                    "pantry",  "snacks",  "meat",   "deli",
                                    "babies",  "household"};
const char* const kChannels[] = {"web", "app", "store", "phone"};
const char* const kRooms[] = {"lobby", "lab", "library", "garden", "attic"};
const char* const kEvents[] = {"navigate", "click",      "error",
                               "dialog",   "checkpoint", "hover"};

}  // namespace

FeatAugProblem DatasetBundle::ToProblem() const {
  FeatAugProblem p;
  p.training = training;
  p.label_col = label_col;
  p.base_feature_cols = base_features;
  p.relevant = relevant;
  p.task = task;
  p.agg_functions = agg_functions;
  p.agg_attrs = agg_attrs;
  p.fk_attrs = fk_attrs;
  p.candidate_where_attrs = where_candidates;
  return p;
}

// ---------------------------------------------------------------------------
// Tmall: repeat-buyer prediction. Compound FK (user_id, merchant_id); the
// golden signal lives in AVG(pprice) over recent purchase rows.
// ---------------------------------------------------------------------------
DatasetBundle MakeTmall(const SyntheticOptions& options) {
  Rng rng(options.seed);
  const size_t n = options.n_train;
  const int64_t t_start = 1660000000;              // ~Aug 2022
  const int64_t t_end = t_start + 365LL * 86400;   // one year of logs
  const int64_t t_recent = t_end - 120LL * 86400;  // last four months

  std::vector<double> u(n), w(n), base_effect(n);
  std::vector<int64_t> user_id(n), merchant_id(n);
  std::vector<double> age(n);
  std::vector<std::string> gender(n);
  for (size_t e = 0; e < n; ++e) {
    u[e] = rng.Normal();
    w[e] = rng.Normal();
    user_id[e] = static_cast<int64_t>(e);
    merchant_id[e] = static_cast<int64_t>(rng.UniformInt(40));
    age[e] = 25.0 + 20.0 * rng.Uniform();
    gender[e] = rng.Bernoulli(0.5) ? "F" : "M";
    base_effect[e] = 0.8 * (age[e] - 35.0) / 10.0 + (gender[e] == "F" ? 0.4 : 0.0);
  }

  // Relevant table: user behaviour logs.
  Column r_user(DataType::kInt64), r_merchant(DataType::kInt64);
  Column r_price(DataType::kDouble), r_quantity(DataType::kInt64);
  Column r_discount(DataType::kDouble), r_hour(DataType::kInt64);
  Column r_dwell(DataType::kDouble), r_pages(DataType::kDouble);
  Column r_category(DataType::kString), r_action(DataType::kString);
  Column r_ts(DataType::kDatetime), r_weekday(DataType::kInt64);
  Column r_channel(DataType::kString);

  std::vector<double> strong(n, 0.0), weak(n, 0.0);
  for (size_t e = 0; e < n; ++e) {
    const int64_t n_logs =
        1 + rng.Poisson(options.avg_logs_per_entity * std::exp(0.25 * w[e]));
    weak[e] = static_cast<double>(n_logs);
    for (int64_t l = 0; l < n_logs; ++l) {
      r_user.AppendInt(user_id[e]);
      // 70% of a user's logs touch "their" merchant.
      r_merchant.AppendInt(rng.Bernoulli(0.7)
                               ? merchant_id[e]
                               : static_cast<int64_t>(rng.UniformInt(40)));
      const bool purchase = rng.Bernoulli(0.35);
      const int64_t ts = rng.UniformRange(t_start, t_end);
      const bool in_golden = purchase && ts >= t_recent;
      r_price.AppendDouble(in_golden ? 50.0 + 18.0 * u[e] + rng.Normal(0.0, 4.0)
                                     : 50.0 + rng.Normal(0.0, 18.0));
      r_quantity.AppendInt(1 + static_cast<int64_t>(rng.UniformInt(5)));
      r_discount.AppendDouble(0.5 * rng.Uniform());
      r_hour.AppendInt(static_cast<int64_t>(rng.UniformInt(24)));
      r_dwell.AppendDouble(5.0 + 120.0 * rng.Uniform());
      r_pages.AppendDouble(1.0 + 12.0 * rng.Uniform());
      r_category.AppendString(kCategories[rng.UniformInt(8)]);
      r_action.AppendString(purchase ? "purchase"
                                     : (rng.Bernoulli(0.4) ? "cart" : "click"));
      r_ts.AppendInt(ts);
      r_weekday.AppendInt(static_cast<int64_t>(rng.UniformInt(7)));
      r_channel.AppendString(kChannels[rng.UniformInt(4)]);
    }
  }

  DatasetBundle bundle;
  bundle.name = "tmall";
  bundle.task = TaskKind::kBinaryClassification;
  bundle.label_col = "label";
  bundle.fk_attrs = {"user_id", "merchant_id"};
  bundle.base_features = {"age", "gender_f"};
  bundle.agg_attrs = {"pprice", "quantity", "discount", "hour", "dwell", "pages"};
  bundle.agg_functions = AllAggFunctions();
  bundle.where_candidates = {"category", "action", "ts", "weekday", "channel"};

  const auto scores = MixScores(options, u, w, base_effect, &rng);
  const auto labels = BinaryLabels(scores);

  Column d_gender_f(DataType::kDouble);
  for (size_t e = 0; e < n; ++e) d_gender_f.AppendDouble(gender[e] == "F" ? 1.0 : 0.0);
  FEAT_CHECK(bundle.training.AddColumn("user_id", Column::FromInts(DataType::kInt64, user_id)).ok(), "tmall D");
  FEAT_CHECK(bundle.training.AddColumn("merchant_id", Column::FromInts(DataType::kInt64, merchant_id)).ok(), "tmall D");
  FEAT_CHECK(bundle.training.AddColumn("age", Column::FromDoubles(age)).ok(), "tmall D");
  FEAT_CHECK(bundle.training.AddColumn("gender_f", std::move(d_gender_f)).ok(), "tmall D");
  FEAT_CHECK(bundle.training.AddColumn("label", Column::FromInts(DataType::kInt64, labels)).ok(), "tmall D");

  FEAT_CHECK(bundle.relevant.AddColumn("user_id", std::move(r_user)).ok(), "tmall R");
  FEAT_CHECK(bundle.relevant.AddColumn("merchant_id", std::move(r_merchant)).ok(), "tmall R");
  FEAT_CHECK(bundle.relevant.AddColumn("pprice", std::move(r_price)).ok(), "tmall R");
  FEAT_CHECK(bundle.relevant.AddColumn("quantity", std::move(r_quantity)).ok(), "tmall R");
  FEAT_CHECK(bundle.relevant.AddColumn("discount", std::move(r_discount)).ok(), "tmall R");
  FEAT_CHECK(bundle.relevant.AddColumn("hour", std::move(r_hour)).ok(), "tmall R");
  FEAT_CHECK(bundle.relevant.AddColumn("dwell", std::move(r_dwell)).ok(), "tmall R");
  FEAT_CHECK(bundle.relevant.AddColumn("pages", std::move(r_pages)).ok(), "tmall R");
  FEAT_CHECK(bundle.relevant.AddColumn("category", std::move(r_category)).ok(), "tmall R");
  FEAT_CHECK(bundle.relevant.AddColumn("action", std::move(r_action)).ok(), "tmall R");
  FEAT_CHECK(bundle.relevant.AddColumn("ts", std::move(r_ts)).ok(), "tmall R");
  FEAT_CHECK(bundle.relevant.AddColumn("weekday", std::move(r_weekday)).ok(), "tmall R");
  FEAT_CHECK(bundle.relevant.AddColumn("channel", std::move(r_channel)).ok(), "tmall R");

  bundle.golden_query.agg = AggFunction::kAvg;
  bundle.golden_query.agg_attr = "pprice";
  bundle.golden_query.group_keys = {"user_id"};
  bundle.golden_query.predicates = {
      Predicate::Equals("action", Value::Str("purchase")),
      Predicate::Range("ts", static_cast<double>(t_recent), std::nullopt)};
  FinalizeGoldenTemplate(&bundle);
  WidenRelevant(&bundle, options.extra_numeric_cols, &rng);
  return bundle;
}

// ---------------------------------------------------------------------------
// Instacart: next-purchase prediction; golden predicate uses a boolean
// attribute (reordered) plus a categorical department.
// ---------------------------------------------------------------------------
DatasetBundle MakeInstacart(const SyntheticOptions& options) {
  Rng rng(options.seed ^ 0x9e3779b9ULL);
  const size_t n = options.n_train;

  std::vector<double> u(n), w(n), base_effect(n);
  std::vector<int64_t> user_id(n);
  std::vector<double> household(n), tenure(n);
  for (size_t e = 0; e < n; ++e) {
    u[e] = rng.Normal();
    w[e] = rng.Normal();
    user_id[e] = static_cast<int64_t>(e);
    household[e] = 1.0 + static_cast<double>(rng.UniformInt(6));
    tenure[e] = 30.0 + 1000.0 * rng.Uniform();
    base_effect[e] = 0.5 * (household[e] - 3.5) / 2.0 + 0.3 * (tenure[e] - 530.0) / 300.0;
  }

  Column r_user(DataType::kInt64), r_price(DataType::kDouble);
  Column r_cartpos(DataType::kInt64), r_daygap(DataType::kDouble);
  Column r_hour(DataType::kInt64), r_items(DataType::kInt64);
  Column r_weight(DataType::kDouble);
  Column r_department(DataType::kString), r_aisle(DataType::kString);
  Column r_reordered(DataType::kBool), r_dow(DataType::kInt64);
  Column r_ts(DataType::kDatetime), r_organic(DataType::kBool);

  const int64_t t_start = 1680000000;
  const int64_t t_end = t_start + 180LL * 86400;
  std::vector<double> strong(n, 0.0), weak(n, 0.0);
  for (size_t e = 0; e < n; ++e) {
    const int64_t n_logs =
        1 + rng.Poisson(options.avg_logs_per_entity * std::exp(0.25 * w[e]));
    weak[e] = static_cast<double>(n_logs);
    for (int64_t l = 0; l < n_logs; ++l) {
      r_user.AppendInt(user_id[e]);
      const bool dairy = rng.Bernoulli(0.2);
      const bool reordered = rng.Bernoulli(0.55);
      const bool in_golden = dairy && reordered;
      r_price.AppendDouble(in_golden ? 10.0 + 4.0 * u[e] + rng.Normal(0.0, 1.0)
                                     : 10.0 + rng.Normal(0.0, 4.5));
      r_cartpos.AppendInt(1 + static_cast<int64_t>(rng.UniformInt(20)));
      r_daygap.AppendDouble(30.0 * rng.Uniform());
      r_hour.AppendInt(static_cast<int64_t>(rng.UniformInt(24)));
      r_items.AppendInt(1 + static_cast<int64_t>(rng.UniformInt(15)));
      r_weight.AppendDouble(0.1 + 5.0 * rng.Uniform());
      r_department.AppendString(dairy ? "dairy" : kDepartments[1 + rng.UniformInt(9)]);
      r_aisle.AppendString(StrFormat("aisle_%llu",
                                     static_cast<unsigned long long>(rng.UniformInt(12))));
      r_reordered.AppendInt(reordered ? 1 : 0);
      r_dow.AppendInt(static_cast<int64_t>(rng.UniformInt(7)));
      r_ts.AppendInt(rng.UniformRange(t_start, t_end));
      r_organic.AppendInt(rng.Bernoulli(0.3) ? 1 : 0);
    }
  }

  DatasetBundle bundle;
  bundle.name = "instacart";
  bundle.task = TaskKind::kBinaryClassification;
  bundle.label_col = "label";
  bundle.fk_attrs = {"user_id"};
  bundle.base_features = {"household", "tenure"};
  bundle.agg_attrs = {"item_price", "cart_position", "day_gap",
                      "hour",       "total_items",   "weight"};
  bundle.agg_functions = AllAggFunctions();
  bundle.where_candidates = {"department", "aisle", "reordered",
                             "order_dow",  "ts",    "organic"};

  const auto scores = MixScores(options, u, w, base_effect, &rng);
  const auto labels = BinaryLabels(scores);

  FEAT_CHECK(bundle.training.AddColumn("user_id", Column::FromInts(DataType::kInt64, user_id)).ok(), "insta D");
  FEAT_CHECK(bundle.training.AddColumn("household", Column::FromDoubles(household)).ok(), "insta D");
  FEAT_CHECK(bundle.training.AddColumn("tenure", Column::FromDoubles(tenure)).ok(), "insta D");
  FEAT_CHECK(bundle.training.AddColumn("label", Column::FromInts(DataType::kInt64, labels)).ok(), "insta D");

  FEAT_CHECK(bundle.relevant.AddColumn("user_id", std::move(r_user)).ok(), "insta R");
  FEAT_CHECK(bundle.relevant.AddColumn("item_price", std::move(r_price)).ok(), "insta R");
  FEAT_CHECK(bundle.relevant.AddColumn("cart_position", std::move(r_cartpos)).ok(), "insta R");
  FEAT_CHECK(bundle.relevant.AddColumn("day_gap", std::move(r_daygap)).ok(), "insta R");
  FEAT_CHECK(bundle.relevant.AddColumn("hour", std::move(r_hour)).ok(), "insta R");
  FEAT_CHECK(bundle.relevant.AddColumn("total_items", std::move(r_items)).ok(), "insta R");
  FEAT_CHECK(bundle.relevant.AddColumn("weight", std::move(r_weight)).ok(), "insta R");
  FEAT_CHECK(bundle.relevant.AddColumn("department", std::move(r_department)).ok(), "insta R");
  FEAT_CHECK(bundle.relevant.AddColumn("aisle", std::move(r_aisle)).ok(), "insta R");
  FEAT_CHECK(bundle.relevant.AddColumn("reordered", std::move(r_reordered)).ok(), "insta R");
  FEAT_CHECK(bundle.relevant.AddColumn("order_dow", std::move(r_dow)).ok(), "insta R");
  FEAT_CHECK(bundle.relevant.AddColumn("ts", std::move(r_ts)).ok(), "insta R");
  FEAT_CHECK(bundle.relevant.AddColumn("organic", std::move(r_organic)).ok(), "insta R");

  bundle.golden_query.agg = AggFunction::kAvg;
  bundle.golden_query.agg_attr = "item_price";
  bundle.golden_query.group_keys = {"user_id"};
  bundle.golden_query.predicates = {
      Predicate::Equals("department", Value::Str("dairy")),
      Predicate::Equals("reordered", Value::Bool(true))};
  FinalizeGoldenTemplate(&bundle);
  WidenRelevant(&bundle, options.extra_numeric_cols, &rng);
  return bundle;
}

// ---------------------------------------------------------------------------
// Student: game-play correctness; the golden feature is a COUNT under an
// event-type + level predicate (count-shaped signal, unlike the AVG ones).
// ---------------------------------------------------------------------------
DatasetBundle MakeStudent(const SyntheticOptions& options) {
  Rng rng(options.seed ^ 0x51ed270bULL);
  const size_t n = options.n_train;

  std::vector<double> u(n), w(n), base_effect(n);
  std::vector<int64_t> session_id(n);
  std::vector<double> grade(n), prior_score(n);
  for (size_t e = 0; e < n; ++e) {
    u[e] = rng.Normal();
    w[e] = rng.Normal();
    session_id[e] = static_cast<int64_t>(e);
    grade[e] = 3.0 + static_cast<double>(rng.UniformInt(10));
    prior_score[e] = 40.0 + 60.0 * rng.Uniform();
    base_effect[e] = 0.6 * (prior_score[e] - 70.0) / 17.0;
  }

  Column r_session(DataType::kInt64), r_elapsed(DataType::kDouble);
  Column r_sx(DataType::kDouble), r_sy(DataType::kDouble);
  Column r_clicks(DataType::kInt64), r_scroll(DataType::kDouble);
  Column r_hover(DataType::kDouble), r_fps(DataType::kDouble);
  Column r_latency(DataType::kDouble), r_delta(DataType::kDouble);
  Column r_event(DataType::kString), r_level(DataType::kInt64);
  Column r_room(DataType::kString), r_ts(DataType::kDatetime);
  Column r_fullscreen(DataType::kBool), r_music(DataType::kBool);

  const int64_t t_start = 1690000000;
  const int64_t t_end = t_start + 30LL * 86400;
  std::vector<double> strong(n, 0.0), weak(n, 0.0);
  auto append_row = [&](size_t e, const char* event, int64_t level) {
    r_session.AppendInt(session_id[e]);
    r_elapsed.AppendDouble(50.0 + 3000.0 * rng.Uniform());
    r_sx.AppendDouble(1920.0 * rng.Uniform());
    r_sy.AppendDouble(1080.0 * rng.Uniform());
    r_clicks.AppendInt(static_cast<int64_t>(rng.UniformInt(10)));
    r_scroll.AppendDouble(100.0 * rng.Uniform());
    r_hover.AppendDouble(500.0 * rng.Uniform());
    r_fps.AppendDouble(30.0 + 30.0 * rng.Uniform());
    r_latency.AppendDouble(10.0 + 190.0 * rng.Uniform());
    r_delta.AppendDouble(rng.Normal());
    r_event.AppendString(event);
    r_level.AppendInt(level);
    r_room.AppendString(kRooms[rng.UniformInt(5)]);
    r_ts.AppendInt(rng.UniformRange(t_start, t_end));
    r_fullscreen.AppendInt(rng.Bernoulli(0.5) ? 1 : 0);
    r_music.AppendInt(rng.Bernoulli(0.5) ? 1 : 0);
  };
  for (size_t e = 0; e < n; ++e) {
    // Deep-level error counts carry the strong signal (more errors when the
    // latent is LOW; the count recovers -u).
    const int64_t n_deep_errors =
        rng.Poisson(3.0 * std::exp(-0.8 * u[e]));
    for (int64_t l = 0; l < n_deep_errors; ++l) {
      append_row(e, "error", 5 + static_cast<int64_t>(rng.UniformInt(4)));
    }
    // Shallow errors are noise.
    const int64_t n_shallow_errors = rng.Poisson(2.0);
    for (int64_t l = 0; l < n_shallow_errors; ++l) {
      append_row(e, "error", 1 + static_cast<int64_t>(rng.UniformInt(4)));
    }
    const int64_t n_other =
        1 + rng.Poisson(options.avg_logs_per_entity * std::exp(0.25 * w[e]));
    weak[e] = static_cast<double>(n_other);
    for (int64_t l = 0; l < n_other; ++l) {
      const char* event = kEvents[rng.UniformInt(6)];
      if (std::string(event) == "error") event = "click";
      append_row(e, event, 1 + static_cast<int64_t>(rng.UniformInt(8)));
    }
  }

  DatasetBundle bundle;
  bundle.name = "student";
  bundle.task = TaskKind::kBinaryClassification;
  bundle.label_col = "label";
  bundle.fk_attrs = {"session_id"};
  bundle.base_features = {"grade", "prior_score"};
  bundle.agg_attrs = {"elapsed_ms", "screen_x", "screen_y", "clicks", "scroll",
                      "hover_ms",   "fps",      "latency",  "score_delta"};
  bundle.agg_functions = AllAggFunctions();
  bundle.where_candidates = {"event_type", "level",      "room",
                             "ts",         "fullscreen", "music"};

  const auto scores = MixScores(options, u, w, base_effect, &rng);
  const auto labels = BinaryLabels(scores);

  FEAT_CHECK(bundle.training.AddColumn("session_id", Column::FromInts(DataType::kInt64, session_id)).ok(), "student D");
  FEAT_CHECK(bundle.training.AddColumn("grade", Column::FromDoubles(grade)).ok(), "student D");
  FEAT_CHECK(bundle.training.AddColumn("prior_score", Column::FromDoubles(prior_score)).ok(), "student D");
  FEAT_CHECK(bundle.training.AddColumn("label", Column::FromInts(DataType::kInt64, labels)).ok(), "student D");

  FEAT_CHECK(bundle.relevant.AddColumn("session_id", std::move(r_session)).ok(), "student R");
  FEAT_CHECK(bundle.relevant.AddColumn("elapsed_ms", std::move(r_elapsed)).ok(), "student R");
  FEAT_CHECK(bundle.relevant.AddColumn("screen_x", std::move(r_sx)).ok(), "student R");
  FEAT_CHECK(bundle.relevant.AddColumn("screen_y", std::move(r_sy)).ok(), "student R");
  FEAT_CHECK(bundle.relevant.AddColumn("clicks", std::move(r_clicks)).ok(), "student R");
  FEAT_CHECK(bundle.relevant.AddColumn("scroll", std::move(r_scroll)).ok(), "student R");
  FEAT_CHECK(bundle.relevant.AddColumn("hover_ms", std::move(r_hover)).ok(), "student R");
  FEAT_CHECK(bundle.relevant.AddColumn("fps", std::move(r_fps)).ok(), "student R");
  FEAT_CHECK(bundle.relevant.AddColumn("latency", std::move(r_latency)).ok(), "student R");
  FEAT_CHECK(bundle.relevant.AddColumn("score_delta", std::move(r_delta)).ok(), "student R");
  FEAT_CHECK(bundle.relevant.AddColumn("event_type", std::move(r_event)).ok(), "student R");
  FEAT_CHECK(bundle.relevant.AddColumn("level", std::move(r_level)).ok(), "student R");
  FEAT_CHECK(bundle.relevant.AddColumn("room", std::move(r_room)).ok(), "student R");
  FEAT_CHECK(bundle.relevant.AddColumn("ts", std::move(r_ts)).ok(), "student R");
  FEAT_CHECK(bundle.relevant.AddColumn("fullscreen", std::move(r_fullscreen)).ok(), "student R");
  FEAT_CHECK(bundle.relevant.AddColumn("music", std::move(r_music)).ok(), "student R");

  bundle.golden_query.agg = AggFunction::kCount;
  bundle.golden_query.agg_attr = "elapsed_ms";
  bundle.golden_query.group_keys = {"session_id"};
  bundle.golden_query.predicates = {
      Predicate::Equals("event_type", Value::Str("error")),
      Predicate::Range("level", 5.0, std::nullopt)};
  FinalizeGoldenTemplate(&bundle);
  WidenRelevant(&bundle, options.extra_numeric_cols, &rng);
  return bundle;
}

// ---------------------------------------------------------------------------
// Merchant (Elo): regression; golden feature is AVG(purchase_amount) under
// a category + month_lag predicate. Paper has 34 aggregable attributes; we
// scale to 8 (documented in DESIGN.md).
// ---------------------------------------------------------------------------
DatasetBundle MakeMerchant(const SyntheticOptions& options) {
  Rng rng(options.seed ^ 0xabcdef12ULL);
  const size_t n = options.n_train;

  std::vector<double> u(n), w(n), base_effect(n);
  std::vector<int64_t> merchant_id(n);
  std::vector<double> city_tier(n), established(n);
  for (size_t e = 0; e < n; ++e) {
    u[e] = rng.Normal();
    w[e] = rng.Normal();
    merchant_id[e] = static_cast<int64_t>(e);
    city_tier[e] = 1.0 + static_cast<double>(rng.UniformInt(3));
    established[e] = 1.0 + 30.0 * rng.Uniform();
    base_effect[e] = 0.4 * (city_tier[e] - 2.0) + 0.2 * (established[e] - 15.0) / 9.0;
  }

  Column r_merchant(DataType::kInt64), r_amount(DataType::kDouble);
  Column r_installments(DataType::kInt64), r_fee(DataType::kDouble);
  Column r_basket(DataType::kDouble), r_margin(DataType::kDouble);
  Column r_units(DataType::kInt64), r_tip(DataType::kDouble);
  Column r_category(DataType::kString), r_month_lag(DataType::kInt64);
  Column r_channel(DataType::kString), r_region(DataType::kString);
  Column r_promo(DataType::kBool), r_ts(DataType::kDatetime);

  const int64_t t_start = 1640000000;
  const int64_t t_end = t_start + 365LL * 86400;
  std::vector<double> strong(n, 0.0), weak(n, 0.0);
  for (size_t e = 0; e < n; ++e) {
    const int64_t n_logs =
        1 + rng.Poisson(options.avg_logs_per_entity * std::exp(0.25 * w[e]));
    weak[e] = static_cast<double>(n_logs);
    for (int64_t l = 0; l < n_logs; ++l) {
      r_merchant.AppendInt(merchant_id[e]);
      const bool grocery = rng.Bernoulli(0.25);
      const int64_t month_lag = -static_cast<int64_t>(rng.UniformInt(13));
      const bool in_golden = grocery && month_lag >= -3;
      r_amount.AppendDouble(in_golden
                                ? 100.0 + 35.0 * u[e] + rng.Normal(0.0, 8.0)
                                : 100.0 + rng.Normal(0.0, 40.0));
      r_installments.AppendInt(1 + static_cast<int64_t>(rng.UniformInt(12)));
      r_fee.AppendDouble(5.0 * rng.Uniform());
      r_basket.AppendDouble(1.0 + 20.0 * rng.Uniform());
      r_margin.AppendDouble(0.05 + 0.4 * rng.Uniform());
      r_units.AppendInt(1 + static_cast<int64_t>(rng.UniformInt(30)));
      r_tip.AppendDouble(3.0 * rng.Uniform());
      r_category.AppendString(grocery ? "grocery" : kCategories[rng.UniformInt(8)]);
      r_month_lag.AppendInt(month_lag);
      r_channel.AppendString(kChannels[rng.UniformInt(4)]);
      r_region.AppendString(StrFormat("region_%llu",
                                      static_cast<unsigned long long>(rng.UniformInt(5))));
      r_promo.AppendInt(rng.Bernoulli(0.2) ? 1 : 0);
      r_ts.AppendInt(rng.UniformRange(t_start, t_end));
    }
  }

  DatasetBundle bundle;
  bundle.name = "merchant";
  bundle.task = TaskKind::kRegression;
  bundle.label_col = "label";
  bundle.fk_attrs = {"merchant_id"};
  bundle.base_features = {"city_tier", "established_years"};
  bundle.agg_attrs = {"purchase_amount", "installments", "fee",   "basket_size",
                      "margin",          "units",        "tip"};
  bundle.agg_functions = AllAggFunctions();
  bundle.where_candidates = {"category", "month_lag", "channel",
                             "region",   "promo",     "ts"};

  // Regression target: loyalty-like continuous score (paper reports RMSE
  // near 4.0; we match the scale).
  const auto mixed = MixScores(options, u, w, base_effect, &rng);
  std::vector<double> target(n);
  for (size_t e = 0; e < n; ++e) target[e] = 1.5 * mixed[e];

  FEAT_CHECK(bundle.training.AddColumn("merchant_id", Column::FromInts(DataType::kInt64, merchant_id)).ok(), "merchant D");
  FEAT_CHECK(bundle.training.AddColumn("city_tier", Column::FromDoubles(city_tier)).ok(), "merchant D");
  FEAT_CHECK(bundle.training.AddColumn("established_years", Column::FromDoubles(established)).ok(), "merchant D");
  FEAT_CHECK(bundle.training.AddColumn("label", Column::FromDoubles(target)).ok(), "merchant D");

  FEAT_CHECK(bundle.relevant.AddColumn("merchant_id", std::move(r_merchant)).ok(), "merchant R");
  FEAT_CHECK(bundle.relevant.AddColumn("purchase_amount", std::move(r_amount)).ok(), "merchant R");
  FEAT_CHECK(bundle.relevant.AddColumn("installments", std::move(r_installments)).ok(), "merchant R");
  FEAT_CHECK(bundle.relevant.AddColumn("fee", std::move(r_fee)).ok(), "merchant R");
  FEAT_CHECK(bundle.relevant.AddColumn("basket_size", std::move(r_basket)).ok(), "merchant R");
  FEAT_CHECK(bundle.relevant.AddColumn("margin", std::move(r_margin)).ok(), "merchant R");
  FEAT_CHECK(bundle.relevant.AddColumn("units", std::move(r_units)).ok(), "merchant R");
  FEAT_CHECK(bundle.relevant.AddColumn("tip", std::move(r_tip)).ok(), "merchant R");
  FEAT_CHECK(bundle.relevant.AddColumn("category", std::move(r_category)).ok(), "merchant R");
  FEAT_CHECK(bundle.relevant.AddColumn("month_lag", std::move(r_month_lag)).ok(), "merchant R");
  FEAT_CHECK(bundle.relevant.AddColumn("channel", std::move(r_channel)).ok(), "merchant R");
  FEAT_CHECK(bundle.relevant.AddColumn("region", std::move(r_region)).ok(), "merchant R");
  FEAT_CHECK(bundle.relevant.AddColumn("promo", std::move(r_promo)).ok(), "merchant R");
  FEAT_CHECK(bundle.relevant.AddColumn("ts", std::move(r_ts)).ok(), "merchant R");

  bundle.golden_query.agg = AggFunction::kAvg;
  bundle.golden_query.agg_attr = "purchase_amount";
  bundle.golden_query.group_keys = {"merchant_id"};
  bundle.golden_query.predicates = {
      Predicate::Equals("category", Value::Str("grocery")),
      Predicate::Range("month_lag", -3.0, std::nullopt)};
  FinalizeGoldenTemplate(&bundle);
  WidenRelevant(&bundle, options.extra_numeric_cols, &rng);
  return bundle;
}

// ---------------------------------------------------------------------------
// One-to-one datasets (Covtype, Household): R holds one row per training
// entity keyed by data_index; aggregation degenerates to attribute lookup,
// which is exactly how the paper reuses FeatAug in §VII.C.
// ---------------------------------------------------------------------------
namespace {

DatasetBundle MakeOneToOne(const SyntheticOptions& options, const char* name,
                           size_t n_numeric, size_t n_categorical,
                           uint64_t seed_salt) {
  Rng rng(options.seed ^ seed_salt);
  const size_t n = options.n_train;
  const int num_classes = 4;

  std::vector<int64_t> data_index(n);
  std::iota(data_index.begin(), data_index.end(), int64_t{0});

  // Base features in D.
  std::vector<std::vector<double>> base_cols(5, std::vector<double>(n));
  for (size_t c = 0; c < base_cols.size(); ++c) {
    for (size_t r = 0; r < n; ++r) base_cols[c][r] = rng.Normal();
  }

  // Numeric R columns; the first two carry the signal.
  std::vector<std::vector<double>> num_cols(n_numeric, std::vector<double>(n));
  for (size_t c = 0; c < n_numeric; ++c) {
    for (size_t r = 0; r < n; ++r) num_cols[c][r] = rng.Normal();
  }
  // Categorical R columns; the first one also carries signal.
  std::vector<std::vector<std::string>> cat_cols(n_categorical,
                                                 std::vector<std::string>(n));
  std::vector<int> cat_signal(n);
  for (size_t c = 0; c < n_categorical; ++c) {
    for (size_t r = 0; r < n; ++r) {
      const int v = static_cast<int>(rng.UniformInt(4));
      if (c == 0) cat_signal[r] = v;
      cat_cols[c][r] = StrFormat("c%d", v);
    }
  }

  std::vector<double> strong(n), weak(n), base_effect(n);
  for (size_t r = 0; r < n; ++r) {
    strong[r] = num_cols.size() > 1
                    ? num_cols[0][r] + 0.6 * num_cols[1][r]
                    : num_cols[0][r];
    if (!cat_cols.empty()) strong[r] += 0.5 * (cat_signal[r] == 2 ? 1.0 : -0.3);
    weak[r] = num_cols.size() > 2 ? num_cols[2][r] : 0.0;
    base_effect[r] = base_cols[0][r];
  }
  const auto scores = MixScores(options, strong, weak, base_effect, &rng);
  const auto labels = MulticlassLabels(scores, num_classes);

  DatasetBundle bundle;
  bundle.name = name;
  bundle.task = TaskKind::kMultiClassification;
  bundle.label_col = "label";
  bundle.fk_attrs = {"data_index"};

  FEAT_CHECK(bundle.training.AddColumn("data_index", Column::FromInts(DataType::kInt64, data_index)).ok(), "o2o D");
  for (size_t c = 0; c < base_cols.size(); ++c) {
    const std::string col_name = StrFormat("base_%zu", c);
    FEAT_CHECK(bundle.training.AddColumn(col_name, Column::FromDoubles(base_cols[c])).ok(), "o2o D");
    bundle.base_features.push_back(col_name);
  }
  FEAT_CHECK(bundle.training.AddColumn("label", Column::FromInts(DataType::kInt64, labels)).ok(), "o2o D");

  FEAT_CHECK(bundle.relevant.AddColumn("data_index", Column::FromInts(DataType::kInt64, data_index)).ok(), "o2o R");
  for (size_t c = 0; c < n_numeric; ++c) {
    const std::string col_name = StrFormat("attr_%zu", c);
    FEAT_CHECK(bundle.relevant.AddColumn(col_name, Column::FromDoubles(num_cols[c])).ok(), "o2o R");
    bundle.agg_attrs.push_back(col_name);
    if (c < 8) bundle.where_candidates.push_back(col_name);
  }
  for (size_t c = 0; c < n_categorical; ++c) {
    const std::string col_name = StrFormat("cat_%zu", c);
    FEAT_CHECK(bundle.relevant.AddColumn(col_name, Column::FromStrings(cat_cols[c])).ok(), "o2o R");
    if (c < 2) bundle.where_candidates.push_back(col_name);
  }
  bundle.agg_functions = AllAggFunctions();

  bundle.golden_query.agg = AggFunction::kAvg;
  bundle.golden_query.agg_attr = "attr_0";
  bundle.golden_query.group_keys = {"data_index"};
  FinalizeGoldenTemplate(&bundle);
  WidenRelevant(&bundle, options.extra_numeric_cols, &rng);
  return bundle;
}

}  // namespace

DatasetBundle MakeCovtype(const SyntheticOptions& options) {
  return MakeOneToOne(options, "covtype", /*n_numeric=*/18, /*n_categorical=*/2,
                      0x5eedc0deULL);
}

DatasetBundle MakeHousehold(const SyntheticOptions& options) {
  return MakeOneToOne(options, "household", /*n_numeric=*/20, /*n_categorical=*/5,
                      0x400531dULL);
}

Result<DatasetBundle> MakeDatasetByName(const std::string& name,
                                        const SyntheticOptions& options) {
  const std::string lower = StrLower(name);
  if (lower == "tmall") return MakeTmall(options);
  if (lower == "instacart") return MakeInstacart(options);
  if (lower == "student") return MakeStudent(options);
  if (lower == "merchant") return MakeMerchant(options);
  if (lower == "covtype") return MakeCovtype(options);
  if (lower == "household") return MakeHousehold(options);
  return Status::InvalidArgument("unknown dataset: " + name);
}

}  // namespace featlib

#pragma once

/// \file synthetic.h
/// \brief Synthetic stand-ins for the paper's six evaluation datasets
/// (Table I/IV). The real datasets are multi-GB Kaggle/Tianchi dumps that
/// cannot be redistributed; these generators mimic each dataset's schema and
/// relationship shape and *plant* a predicate-dependent signal:
///
///   - a per-entity strong latent u is only observable through a "golden"
///     predicate-aware aggregate (e.g. AVG(pprice) WHERE action='purchase'
///     AND ts >= t0) — reachable by FeatAug, diluted for Featuretools;
///   - a weak latent w is observable through an unpredicated aggregate
///     (log counts), reachable by every baseline;
///   - the label mixes strong, weak, base-feature and noise terms.
///
/// Each bundle records the golden query/template so tests can assert the
/// planted structure is recoverable.

#include <string>
#include <vector>

#include "core/feataug.h"
#include "core/query_template.h"
#include "query/agg_query.h"
#include "table/table.h"

namespace featlib {

struct SyntheticOptions {
  /// Rows in the training table D (entities).
  size_t n_train = 2000;
  /// Mean log rows per entity in the relevant table R (Poisson).
  double avg_logs_per_entity = 15.0;
  uint64_t seed = 42;
  /// Extra uninformative numeric columns appended to R (the Student-Wide
  /// horizontal duplication of Fig. 7).
  size_t extra_numeric_cols = 0;
  /// Signal mixing weights.
  double strong_weight = 2.2;
  double weak_weight = 0.7;
  double base_weight = 0.5;
  double noise = 0.8;
};

/// \brief A generated dataset plus everything FeatAug and the baselines
/// need to run on it, mirroring Table II's per-dataset configuration.
struct DatasetBundle {
  std::string name;
  Table training;
  std::string label_col;
  std::vector<std::string> base_features;
  Table relevant;
  std::vector<std::string> fk_attrs;
  std::vector<AggFunction> agg_functions;
  std::vector<std::string> agg_attrs;
  std::vector<std::string> where_candidates;
  TaskKind task = TaskKind::kBinaryClassification;

  /// Ground truth: the planted signal's query and its template.
  AggQuery golden_query;
  QueryTemplate golden_template;

  /// Convenience conversion to the FeatAug driver's input struct.
  FeatAugProblem ToProblem() const;
};

/// Tmall repeat-buyer prediction: D=(user_id, merchant_id, age, gender),
/// R=user/merchant interaction logs, binary AUC task, compound FK.
DatasetBundle MakeTmall(const SyntheticOptions& options);

/// Instacart next-purchase prediction: D=(user_id, ...), R=order items with
/// a boolean `reordered` attribute in the golden predicate, binary AUC task.
DatasetBundle MakeInstacart(const SyntheticOptions& options);

/// Student game-play correctness: D=(session_id, ...), R=event stream; the
/// golden feature is a COUNT under an event-type + level predicate.
DatasetBundle MakeStudent(const SyntheticOptions& options);

/// Merchant (Elo) category recommendation: regression (RMSE); golden
/// feature is AVG(purchase_amount) restricted by category and month_lag.
DatasetBundle MakeMerchant(const SyntheticOptions& options);

/// Covtype (single table -> self relevant table, one-to-one via data_index);
/// 4-class F1 task, as used in §VII.C.
DatasetBundle MakeCovtype(const SyntheticOptions& options);

/// Household poverty (one-to-one; 5 base features kept in D, the rest moved
/// to R); 4-class F1 task.
DatasetBundle MakeHousehold(const SyntheticOptions& options);

/// Generator registry by paper name ("tmall", "instacart", "student",
/// "merchant", "covtype", "household").
Result<DatasetBundle> MakeDatasetByName(const std::string& name,
                                        const SyntheticOptions& options);

}  // namespace featlib

#pragma once

/// \file multi_table_data.h
/// \brief Normalized multi-table synthetic scenario exercising the §III
/// reductions end-to-end.
///
/// The flat generators in synthetic.h pre-join everything (as the paper's
/// experiments do). This bundle instead ships the *raw* Instacart-style
/// schema the paper's §VII.A describes — "we join the historical order
/// table, the product table and the department table into one relevant
/// table" — so RelationGraph / MultiTableFeatAug can be tested against a
/// genuine deep-layer chain:
///
///   training (user_id PK)
///     1-*  order_items (user_id FK, product_id)        [fact #1]
///            *-1  products (product_id)                [lookup]
///                   *-1  departments (department_id)   [second-hop lookup]
///     1-*  browse_log (user_id FK)                     [fact #2]
///
/// The strong planted signal is AVG(item_price) restricted to
/// department = 'dairy' AND reordered = 1 — expressible only after the
/// two-hop flatten. The weak signal is the browse_log row count, so the
/// multiple-relevant-tables scenario finds value in both facts.

#include <string>
#include <vector>

#include "data/synthetic.h"
#include "query/relation_graph.h"

namespace featlib {

/// \brief The raw tables plus planted ground truth.
struct MultiTableBundle {
  std::string name;
  Table training;
  std::string label_col;
  std::vector<std::string> base_features;
  TaskKind task = TaskKind::kBinaryClassification;

  Table order_items;  ///< Fact #1 (user_id FK, product_id ref).
  Table products;     ///< Dimension: product_id -> attrs + department_id.
  Table departments;  ///< Dimension: department_id -> name.
  Table browse_log;   ///< Fact #2 (user_id FK), carries the weak signal.

  std::vector<std::string> fk_attrs;  ///< {"user_id"}

  /// The planted query, valid against the *flattened* order_items table.
  AggQuery golden_query;

  /// Declares the graph above over copies of the tables.
  Result<RelationGraph> BuildGraph() const;
};

/// Generates the bundle. Honors n_train / avg_logs_per_entity / seed /
/// signal weights of SyntheticOptions; extra_numeric_cols is ignored.
MultiTableBundle MakeInstacartMultiTable(const SyntheticOptions& options);

}  // namespace featlib

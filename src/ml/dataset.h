#pragma once

/// \file dataset.h
/// \brief Dense feature-matrix dataset plus split/impute/standardize helpers.

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "table/table.h"

namespace featlib {

/// Downstream task type; drives model heads, metrics and label handling.
enum class TaskKind {
  kBinaryClassification,
  kMultiClassification,
  kRegression,
};

/// \brief A dense, row-major numeric dataset.
///
/// Labels are class indices (0..num_classes-1) for classification or raw
/// targets for regression. Features may contain NaN (missing after the LEFT
/// JOIN); models require imputation first — see ImputeNanInPlace.
struct Dataset {
  size_t n = 0;
  size_t d = 0;
  std::vector<double> x;  // n * d, row-major
  std::vector<double> y;  // n
  std::vector<std::string> feature_names;
  TaskKind task = TaskKind::kBinaryClassification;
  int num_classes = 2;

  double At(size_t row, size_t col) const { return x[row * d + col]; }
  void Set(size_t row, size_t col, double v) { x[row * d + col] = v; }

  /// Creates an empty (zero-feature) dataset with labels.
  static Dataset WithLabels(std::vector<double> labels, TaskKind task,
                            int num_classes = 2);

  /// Appends one feature column (must have n entries).
  Status AddFeature(const std::string& name, const std::vector<double>& values);

  /// Extracts one feature column.
  std::vector<double> FeatureColumn(size_t col) const;

  /// Keeps only the listed feature columns (order preserved as given).
  Dataset SelectFeatures(const std::vector<size_t>& cols) const;

  /// Gathers rows by index.
  Dataset GatherRows(const std::vector<uint32_t>& rows) const;

  /// \brief Builds a dataset from a table.
  ///
  /// `label_col` must be int/bool/double; for classification its distinct
  /// values must be 0..k-1. `feature_cols` must be numeric-viewable columns
  /// (strings map to dictionary codes).
  static Result<Dataset> FromTable(const Table& table, const std::string& label_col,
                                   const std::vector<std::string>& feature_cols,
                                   TaskKind task);
};

/// Train/valid/test row-index partition.
struct SplitIndices {
  std::vector<uint32_t> train;
  std::vector<uint32_t> valid;
  std::vector<uint32_t> test;
};

/// Shuffled split with the given ratios (test gets the remainder).
/// The paper uses 0.6/0.2/0.2.
SplitIndices MakeSplit(size_t n, double train_ratio, double valid_ratio,
                       uint64_t seed);

/// \brief Replaces NaNs per column with the column mean computed over
/// `reference` (pass the training split to avoid leakage). Columns that are
/// all-NaN in the reference impute to 0.
void ImputeNanInPlace(Dataset* target, const Dataset& reference);

/// \brief Z-score standardizer fitted on one dataset, applied to others.
class Standardizer {
 public:
  void Fit(const Dataset& ds);
  void Apply(Dataset* ds) const;

  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stds() const { return stds_; }

 private:
  std::vector<double> means_;
  std::vector<double> stds_;
};

}  // namespace featlib

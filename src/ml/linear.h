#pragma once

/// \file linear.h
/// \brief Linear models: logistic regression (binary + one-vs-rest) and
/// ridge linear regression (closed form via Cholesky).

#include <vector>

#include "ml/model.h"

namespace featlib {

struct LinearModelOptions {
  double l2 = 1e-3;
  int epochs = 200;
  double learning_rate = 0.5;
  uint64_t seed = 42;
};

/// \brief Logistic regression trained with full-batch gradient descent on
/// standardized inputs. Multi-class tasks train one-vs-rest heads.
class LogisticRegressionModel : public Model {
 public:
  explicit LogisticRegressionModel(TaskKind task, LinearModelOptions options = {});

  Status Fit(const Dataset& train) override;
  std::vector<double> PredictScore(const Dataset& ds) const override;
  std::vector<int> PredictClass(const Dataset& ds) const override;

  /// Per-class absolute weights, used by the Featuretools+LR selector.
  std::vector<double> FeatureImportances() const;

 private:
  // One weight vector (+bias at the end) per head.
  std::vector<std::vector<double>> heads_;
  TaskKind task_;
  int num_classes_ = 2;
  LinearModelOptions options_;
  Standardizer standardizer_;
  bool fitted_ = false;

  std::vector<double> HeadScores(const Dataset& std_ds, size_t head) const;
  Dataset Standardized(const Dataset& ds) const;
};

/// \brief Ridge regression solved in closed form (normal equations +
/// Cholesky). Backs "LR" on the paper's regression dataset (Merchant).
class LinearRegressionModel : public Model {
 public:
  explicit LinearRegressionModel(LinearModelOptions options = {});

  Status Fit(const Dataset& train) override;
  std::vector<double> PredictScore(const Dataset& ds) const override;
  std::vector<int> PredictClass(const Dataset& ds) const override;

  std::vector<double> FeatureImportances() const;

 private:
  std::vector<double> weights_;  // d + 1 (bias last)
  LinearModelOptions options_;
  Standardizer standardizer_;
  bool fitted_ = false;
};

/// Solves (A + l2*I) w = b for symmetric positive definite A via Cholesky.
/// `a` is dim x dim row-major and is modified in place.
Status SolveRidgeSystem(std::vector<double>* a, std::vector<double>* b, size_t dim,
                        double l2);

}  // namespace featlib

#include "ml/linear.h"

#include <cmath>

#include "common/str_util.h"

namespace featlib {

namespace {

double Sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

Status SolveRidgeSystem(std::vector<double>* a, std::vector<double>* b, size_t dim,
                        double l2) {
  FEAT_CHECK(a->size() == dim * dim && b->size() == dim, "bad system shape");
  std::vector<double>& m = *a;
  for (size_t i = 0; i < dim; ++i) m[i * dim + i] += l2;
  // In-place Cholesky: m = L L^T (lower triangle).
  for (size_t j = 0; j < dim; ++j) {
    double diag = m[j * dim + j];
    for (size_t k = 0; k < j; ++k) diag -= m[j * dim + k] * m[j * dim + k];
    if (diag <= 1e-12) {
      return Status::InvalidArgument("matrix not positive definite (collinear?)");
    }
    const double root = std::sqrt(diag);
    m[j * dim + j] = root;
    for (size_t i = j + 1; i < dim; ++i) {
      double v = m[i * dim + j];
      for (size_t k = 0; k < j; ++k) v -= m[i * dim + k] * m[j * dim + k];
      m[i * dim + j] = v / root;
    }
  }
  // Forward solve L z = b.
  for (size_t i = 0; i < dim; ++i) {
    double v = (*b)[i];
    for (size_t k = 0; k < i; ++k) v -= m[i * dim + k] * (*b)[k];
    (*b)[i] = v / m[i * dim + i];
  }
  // Back solve L^T w = z.
  for (size_t ii = dim; ii > 0; --ii) {
    const size_t i = ii - 1;
    double v = (*b)[i];
    for (size_t k = i + 1; k < dim; ++k) v -= m[k * dim + i] * (*b)[k];
    (*b)[i] = v / m[i * dim + i];
  }
  return Status::OK();
}

LogisticRegressionModel::LogisticRegressionModel(TaskKind task,
                                                 LinearModelOptions options)
    : task_(task), options_(options) {}

Dataset LogisticRegressionModel::Standardized(const Dataset& ds) const {
  Dataset copy = ds;
  standardizer_.Apply(&copy);
  return copy;
}

Status LogisticRegressionModel::Fit(const Dataset& train) {
  if (task_ == TaskKind::kRegression) {
    return Status::InvalidArgument("LogisticRegressionModel is for classification");
  }
  num_classes_ = task_ == TaskKind::kBinaryClassification ? 2 : train.num_classes;
  standardizer_.Fit(train);
  const Dataset std_train = Standardized(train);
  const size_t n_heads = num_classes_ == 2 ? 1 : static_cast<size_t>(num_classes_);
  heads_.assign(n_heads, std::vector<double>(train.d + 1, 0.0));

  for (size_t head = 0; head < n_heads; ++head) {
    std::vector<double>& w = heads_[head];
    for (int epoch = 0; epoch < options_.epochs; ++epoch) {
      std::vector<double> grad(train.d + 1, 0.0);
      for (size_t r = 0; r < std_train.n; ++r) {
        double z = w[train.d];
        for (size_t c = 0; c < train.d; ++c) z += w[c] * std_train.At(r, c);
        const double target = n_heads == 1
                                  ? (std_train.y[r] >= 0.5 ? 1.0 : 0.0)
                                  : (static_cast<int>(std::llround(std_train.y[r])) ==
                                             static_cast<int>(head)
                                         ? 1.0
                                         : 0.0);
        const double err = Sigmoid(z) - target;
        for (size_t c = 0; c < train.d; ++c) grad[c] += err * std_train.At(r, c);
        grad[train.d] += err;
      }
      const double scale =
          options_.learning_rate / static_cast<double>(std::max<size_t>(1, std_train.n));
      for (size_t c = 0; c <= train.d; ++c) {
        const double reg = c < train.d ? options_.l2 * w[c] : 0.0;
        w[c] -= scale * grad[c] + options_.learning_rate * reg;
      }
    }
  }
  fitted_ = true;
  return Status::OK();
}

std::vector<double> LogisticRegressionModel::HeadScores(const Dataset& std_ds,
                                                        size_t head) const {
  const std::vector<double>& w = heads_[head];
  std::vector<double> out(std_ds.n);
  for (size_t r = 0; r < std_ds.n; ++r) {
    double z = w[std_ds.d];
    for (size_t c = 0; c < std_ds.d; ++c) z += w[c] * std_ds.At(r, c);
    out[r] = Sigmoid(z);
  }
  return out;
}

std::vector<double> LogisticRegressionModel::PredictScore(const Dataset& ds) const {
  FEAT_CHECK(fitted_, "PredictScore before Fit");
  const Dataset std_ds = Standardized(ds);
  if (heads_.size() == 1) return HeadScores(std_ds, 0);
  // Multi-class: report the winning class probability.
  std::vector<double> best(ds.n, 0.0);
  for (size_t head = 0; head < heads_.size(); ++head) {
    const auto scores = HeadScores(std_ds, head);
    for (size_t r = 0; r < ds.n; ++r) best[r] = std::max(best[r], scores[r]);
  }
  return best;
}

std::vector<int> LogisticRegressionModel::PredictClass(const Dataset& ds) const {
  FEAT_CHECK(fitted_, "PredictClass before Fit");
  const Dataset std_ds = Standardized(ds);
  if (heads_.size() == 1) {
    const auto scores = HeadScores(std_ds, 0);
    std::vector<int> out(ds.n);
    for (size_t r = 0; r < ds.n; ++r) out[r] = scores[r] >= 0.5 ? 1 : 0;
    return out;
  }
  std::vector<int> out(ds.n, 0);
  std::vector<double> best(ds.n, -1.0);
  for (size_t head = 0; head < heads_.size(); ++head) {
    const auto scores = HeadScores(std_ds, head);
    for (size_t r = 0; r < ds.n; ++r) {
      if (scores[r] > best[r]) {
        best[r] = scores[r];
        out[r] = static_cast<int>(head);
      }
    }
  }
  return out;
}

std::vector<double> LogisticRegressionModel::FeatureImportances() const {
  FEAT_CHECK(fitted_, "FeatureImportances before Fit");
  const size_t d = heads_[0].size() - 1;
  std::vector<double> out(d, 0.0);
  for (const auto& w : heads_) {
    for (size_t c = 0; c < d; ++c) out[c] += std::fabs(w[c]);
  }
  return out;
}

LinearRegressionModel::LinearRegressionModel(LinearModelOptions options)
    : options_(options) {}

Status LinearRegressionModel::Fit(const Dataset& train) {
  standardizer_.Fit(train);
  Dataset std_train = train;
  standardizer_.Apply(&std_train);
  const size_t dim = train.d + 1;
  std::vector<double> xtx(dim * dim, 0.0);
  std::vector<double> xty(dim, 0.0);
  for (size_t r = 0; r < std_train.n; ++r) {
    for (size_t i = 0; i < dim; ++i) {
      const double xi = i < train.d ? std_train.At(r, i) : 1.0;
      xty[i] += xi * std_train.y[r];
      for (size_t j = i; j < dim; ++j) {
        const double xj = j < train.d ? std_train.At(r, j) : 1.0;
        xtx[i * dim + j] += xi * xj;
      }
    }
  }
  for (size_t i = 0; i < dim; ++i) {
    for (size_t j = 0; j < i; ++j) xtx[i * dim + j] = xtx[j * dim + i];
  }
  FEAT_RETURN_NOT_OK(SolveRidgeSystem(&xtx, &xty, dim, options_.l2 + 1e-8));
  weights_ = std::move(xty);
  fitted_ = true;
  return Status::OK();
}

std::vector<double> LinearRegressionModel::PredictScore(const Dataset& ds) const {
  FEAT_CHECK(fitted_, "PredictScore before Fit");
  Dataset std_ds = ds;
  standardizer_.Apply(&std_ds);
  std::vector<double> out(ds.n);
  for (size_t r = 0; r < ds.n; ++r) {
    double z = weights_[ds.d];
    for (size_t c = 0; c < ds.d; ++c) z += weights_[c] * std_ds.At(r, c);
    out[r] = z;
  }
  return out;
}

std::vector<int> LinearRegressionModel::PredictClass(const Dataset& ds) const {
  const auto scores = PredictScore(ds);
  std::vector<int> out(ds.n);
  for (size_t r = 0; r < ds.n; ++r) out[r] = scores[r] >= 0.5 ? 1 : 0;
  return out;
}

std::vector<double> LinearRegressionModel::FeatureImportances() const {
  FEAT_CHECK(fitted_, "FeatureImportances before Fit");
  std::vector<double> out(weights_.size() - 1);
  for (size_t c = 0; c + 1 < weights_.size(); ++c) out[c] = std::fabs(weights_[c]);
  return out;
}

}  // namespace featlib

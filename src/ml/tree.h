#pragma once

/// \file tree.h
/// \brief CART decision trees: a gradient/hessian regression tree (the GBDT
/// weak learner, XGBoost leaf-weight formulation) and a Gini classification
/// tree with class distributions at the leaves (the RF base learner).

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "ml/dataset.h"

namespace featlib {

struct TreeOptions {
  int max_depth = 6;
  size_t min_samples_leaf = 2;
  size_t min_samples_split = 4;
  /// Number of features examined per split; <= 0 means all features.
  int max_features = -1;
  /// L2 regularization on leaf weights (gradient tree only).
  double lambda = 1.0;
  /// Minimum gain to accept a split (gradient tree only).
  double min_gain = 1e-7;
};

/// \brief Regression tree over (gradient, hessian) statistics.
///
/// Leaf weight = -G/(H + lambda); split gain is the standard second-order
/// formula. With gradients -y and unit hessians this reduces to a
/// mean-predicting variance-reduction CART, which RandomForest reuses for
/// regression.
class GradientTree {
 public:
  void Fit(const Dataset& ds, const std::vector<uint32_t>& rows,
           const std::vector<double>& grad, const std::vector<double>& hess,
           const TreeOptions& options, Rng* rng);

  double PredictRow(const Dataset& ds, size_t row) const;

  /// Total split gain attributed to each feature (importance for the
  /// Featuretools+GBDT selector).
  const std::vector<double>& feature_gains() const { return feature_gains_; }

  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    int feature = -1;       // -1 for leaf
    double threshold = 0.0; // go left when x <= threshold
    int left = -1;
    int right = -1;
    double value = 0.0;     // leaf weight
  };

  int Build(const Dataset& ds, std::vector<uint32_t>* rows, size_t begin,
            size_t end, const std::vector<double>& grad,
            const std::vector<double>& hess, const TreeOptions& options, int depth,
            Rng* rng);

  std::vector<Node> nodes_;
  std::vector<double> feature_gains_;
};

/// \brief Gini-impurity classification tree storing per-leaf class
/// probability vectors.
class ClassificationTree {
 public:
  void Fit(const Dataset& ds, const std::vector<uint32_t>& rows, int num_classes,
           const TreeOptions& options, Rng* rng);

  /// Class-probability vector for one row.
  const std::vector<double>& PredictDistribution(const Dataset& ds, size_t row) const;

  /// Sample-weighted Gini impurity decrease per feature (importances).
  const std::vector<double>& feature_gains() const { return feature_gains_; }

  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    int feature = -1;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    std::vector<double> distribution;  // leaves only
  };

  int Build(const Dataset& ds, std::vector<uint32_t>* rows, size_t begin,
            size_t end, int num_classes, const TreeOptions& options, int depth,
            Rng* rng);

  std::vector<Node> nodes_;
  std::vector<double> feature_gains_;
};

}  // namespace featlib

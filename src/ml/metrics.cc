#include "ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/status.h"
#include "stats/stats.h"

namespace featlib {

const char* MetricKindToString(MetricKind metric) {
  switch (metric) {
    case MetricKind::kAuc:
      return "AUC";
    case MetricKind::kF1Macro:
      return "F1";
    case MetricKind::kRmse:
      return "RMSE";
    case MetricKind::kAccuracy:
      return "ACC";
    case MetricKind::kLogLoss:
      return "LOGLOSS";
  }
  return "?";
}

bool MetricHigherIsBetter(MetricKind metric) {
  switch (metric) {
    case MetricKind::kAuc:
    case MetricKind::kF1Macro:
    case MetricKind::kAccuracy:
      return true;
    case MetricKind::kRmse:
    case MetricKind::kLogLoss:
      return false;
  }
  return true;
}

double Auc(const std::vector<double>& labels, const std::vector<double>& scores) {
  FEAT_CHECK(labels.size() == scores.size(), "AUC: size mismatch");
  size_t n_pos = 0;
  for (double y : labels) {
    if (y >= 0.5) ++n_pos;
  }
  const size_t n = labels.size();
  const size_t n_neg = n - n_pos;
  if (n_pos == 0 || n_neg == 0) return 0.5;
  // Rank statistic: AUC = (sum of positive ranks - n_pos(n_pos+1)/2) /
  // (n_pos * n_neg), with average ranks for ties.
  const std::vector<double> ranks = RankData(scores);
  double pos_rank_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (labels[i] >= 0.5) pos_rank_sum += ranks[i];
  }
  const double np = static_cast<double>(n_pos);
  const double nn = static_cast<double>(n_neg);
  return (pos_rank_sum - np * (np + 1.0) / 2.0) / (np * nn);
}

double F1Macro(const std::vector<int>& labels, const std::vector<int>& predictions,
               int num_classes) {
  FEAT_CHECK(labels.size() == predictions.size(), "F1: size mismatch");
  double f1_sum = 0.0;
  int present = 0;
  for (int cls = 0; cls < num_classes; ++cls) {
    size_t tp = 0;
    size_t fp = 0;
    size_t fn = 0;
    bool in_labels = false;
    for (size_t i = 0; i < labels.size(); ++i) {
      const bool is_true = labels[i] == cls;
      const bool is_pred = predictions[i] == cls;
      if (is_true) in_labels = true;
      if (is_true && is_pred) ++tp;
      if (!is_true && is_pred) ++fp;
      if (is_true && !is_pred) ++fn;
    }
    if (!in_labels) continue;
    ++present;
    const double denom = 2.0 * static_cast<double>(tp) + static_cast<double>(fp) +
                         static_cast<double>(fn);
    f1_sum += denom > 0.0 ? 2.0 * static_cast<double>(tp) / denom : 0.0;
  }
  return present > 0 ? f1_sum / present : 0.0;
}

double F1Binary(const std::vector<int>& labels, const std::vector<int>& predictions) {
  FEAT_CHECK(labels.size() == predictions.size(), "F1: size mismatch");
  size_t tp = 0;
  size_t fp = 0;
  size_t fn = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == 1 && predictions[i] == 1) ++tp;
    if (labels[i] == 0 && predictions[i] == 1) ++fp;
    if (labels[i] == 1 && predictions[i] == 0) ++fn;
  }
  const double denom =
      2.0 * static_cast<double>(tp) + static_cast<double>(fp) + static_cast<double>(fn);
  return denom > 0.0 ? 2.0 * static_cast<double>(tp) / denom : 0.0;
}

double Accuracy(const std::vector<int>& labels, const std::vector<int>& predictions) {
  FEAT_CHECK(labels.size() == predictions.size(), "accuracy: size mismatch");
  if (labels.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == predictions[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

double Rmse(const std::vector<double>& targets,
            const std::vector<double>& predictions) {
  FEAT_CHECK(targets.size() == predictions.size(), "RMSE: size mismatch");
  if (targets.empty()) return 0.0;
  double ss = 0.0;
  for (size_t i = 0; i < targets.size(); ++i) {
    const double d = targets[i] - predictions[i];
    ss += d * d;
  }
  return std::sqrt(ss / static_cast<double>(targets.size()));
}

double LogLoss(const std::vector<double>& labels, const std::vector<double>& probs) {
  FEAT_CHECK(labels.size() == probs.size(), "log-loss: size mismatch");
  if (labels.empty()) return 0.0;
  double loss = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    const double p = std::min(1.0 - 1e-12, std::max(1e-12, probs[i]));
    loss -= labels[i] >= 0.5 ? std::log(p) : std::log(1.0 - p);
  }
  return loss / static_cast<double>(labels.size());
}

}  // namespace featlib

#include "ml/dataset.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/str_util.h"

namespace featlib {

Dataset Dataset::WithLabels(std::vector<double> labels, TaskKind task,
                            int num_classes) {
  Dataset ds;
  ds.n = labels.size();
  ds.d = 0;
  ds.y = std::move(labels);
  ds.task = task;
  ds.num_classes = task == TaskKind::kBinaryClassification ? 2 : num_classes;
  return ds;
}

Status Dataset::AddFeature(const std::string& name,
                           const std::vector<double>& values) {
  if (values.size() != n) {
    return Status::InvalidArgument(
        StrFormat("feature '%s' has %zu rows, dataset has %zu", name.c_str(),
                  values.size(), n));
  }
  std::vector<double> new_x(n * (d + 1));
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < d; ++c) new_x[r * (d + 1) + c] = x[r * d + c];
    new_x[r * (d + 1) + d] = values[r];
  }
  x = std::move(new_x);
  ++d;
  feature_names.push_back(name);
  return Status::OK();
}

std::vector<double> Dataset::FeatureColumn(size_t col) const {
  FEAT_CHECK(col < d, "FeatureColumn out of range");
  std::vector<double> out(n);
  for (size_t r = 0; r < n; ++r) out[r] = At(r, col);
  return out;
}

Dataset Dataset::SelectFeatures(const std::vector<size_t>& cols) const {
  Dataset out;
  out.n = n;
  out.d = cols.size();
  out.y = y;
  out.task = task;
  out.num_classes = num_classes;
  out.x.resize(n * cols.size());
  for (size_t r = 0; r < n; ++r) {
    for (size_t j = 0; j < cols.size(); ++j) {
      FEAT_CHECK(cols[j] < d, "SelectFeatures column out of range");
      out.x[r * cols.size() + j] = At(r, cols[j]);
    }
  }
  for (size_t c : cols) out.feature_names.push_back(feature_names[c]);
  return out;
}

Dataset Dataset::GatherRows(const std::vector<uint32_t>& rows) const {
  Dataset out;
  out.d = d;
  out.n = rows.size();
  out.task = task;
  out.num_classes = num_classes;
  out.feature_names = feature_names;
  out.x.resize(rows.size() * d);
  out.y.resize(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    FEAT_CHECK(rows[i] < n, "GatherRows out of range");
    std::copy(x.begin() + static_cast<ptrdiff_t>(rows[i] * d),
              x.begin() + static_cast<ptrdiff_t>((rows[i] + 1) * d),
              out.x.begin() + static_cast<ptrdiff_t>(i * d));
    out.y[i] = y[rows[i]];
  }
  return out;
}

Result<Dataset> Dataset::FromTable(const Table& table, const std::string& label_col,
                                   const std::vector<std::string>& feature_cols,
                                   TaskKind task) {
  FEAT_ASSIGN_OR_RETURN(const Column* label, table.GetColumn(label_col));
  std::vector<double> y(table.num_rows());
  int max_class = 1;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (label->IsNull(r)) {
      return Status::InvalidArgument("NULL label at row " + StrFormat("%zu", r));
    }
    y[r] = label->AsDouble(r);
    if (task != TaskKind::kRegression) {
      const int cls = static_cast<int>(std::llround(y[r]));
      if (cls < 0) return Status::InvalidArgument("negative class label");
      max_class = std::max(max_class, cls);
    }
  }
  Dataset ds = WithLabels(std::move(y), task, max_class + 1);
  for (const auto& name : feature_cols) {
    FEAT_ASSIGN_OR_RETURN(const Column* col, table.GetColumn(name));
    std::vector<double> values(table.num_rows());
    for (size_t r = 0; r < table.num_rows(); ++r) values[r] = col->AsDouble(r);
    FEAT_RETURN_NOT_OK(ds.AddFeature(name, values));
  }
  return ds;
}

SplitIndices MakeSplit(size_t n, double train_ratio, double valid_ratio,
                       uint64_t seed) {
  FEAT_CHECK(train_ratio > 0.0 && valid_ratio >= 0.0 &&
                 train_ratio + valid_ratio <= 1.0,
             "bad split ratios");
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  Rng rng(seed);
  rng.Shuffle(&order);
  const size_t n_train = static_cast<size_t>(static_cast<double>(n) * train_ratio);
  const size_t n_valid =
      static_cast<size_t>(static_cast<double>(n) * valid_ratio);
  SplitIndices out;
  out.train.assign(order.begin(), order.begin() + static_cast<ptrdiff_t>(n_train));
  out.valid.assign(order.begin() + static_cast<ptrdiff_t>(n_train),
                   order.begin() + static_cast<ptrdiff_t>(n_train + n_valid));
  out.test.assign(order.begin() + static_cast<ptrdiff_t>(n_train + n_valid),
                  order.end());
  return out;
}

void ImputeNanInPlace(Dataset* target, const Dataset& reference) {
  FEAT_CHECK(target->d == reference.d, "impute dimension mismatch");
  for (size_t c = 0; c < reference.d; ++c) {
    double sum = 0.0;
    size_t count = 0;
    for (size_t r = 0; r < reference.n; ++r) {
      const double v = reference.At(r, c);
      if (!std::isnan(v)) {
        sum += v;
        ++count;
      }
    }
    const double mean = count > 0 ? sum / static_cast<double>(count) : 0.0;
    for (size_t r = 0; r < target->n; ++r) {
      if (std::isnan(target->At(r, c))) target->Set(r, c, mean);
    }
  }
}

void Standardizer::Fit(const Dataset& ds) {
  means_.assign(ds.d, 0.0);
  stds_.assign(ds.d, 1.0);
  for (size_t c = 0; c < ds.d; ++c) {
    double sum = 0.0;
    for (size_t r = 0; r < ds.n; ++r) sum += ds.At(r, c);
    const double mean = ds.n > 0 ? sum / static_cast<double>(ds.n) : 0.0;
    double ss = 0.0;
    for (size_t r = 0; r < ds.n; ++r) {
      const double dlt = ds.At(r, c) - mean;
      ss += dlt * dlt;
    }
    const double sd = ds.n > 0 ? std::sqrt(ss / static_cast<double>(ds.n)) : 1.0;
    means_[c] = mean;
    stds_[c] = sd > 1e-12 ? sd : 1.0;
  }
}

void Standardizer::Apply(Dataset* ds) const {
  FEAT_CHECK(ds->d == means_.size(), "standardizer dimension mismatch");
  for (size_t r = 0; r < ds->n; ++r) {
    for (size_t c = 0; c < ds->d; ++c) {
      ds->Set(r, c, (ds->At(r, c) - means_[c]) / stds_[c]);
    }
  }
}

}  // namespace featlib
